#!/usr/bin/env bash
# Repo check: the tier-1 gate plus the sanitizer passes.
#
#   scripts/check.sh            # tier-1 build + full ctest, then TSan + ASan/UBSan passes
#   scripts/check.sh --no-tsan  # skip the ThreadSanitizer pass
#   scripts/check.sh --no-asan  # skip the ASan+UBSan pass
#
# Sanitizer passes:
#   - TSan (-DPARMA_SANITIZE=thread) over the concurrency-sensitive suites
#     (ctest label `tsan`: test_kernels, test_preconditioner, test_exec, test_serve, test_net,
#     test_chaos_net, test_cluster, test_async, test_fault, test_robust)
#     plus the chaos storms (`chaos` label: test_fault's all-points fault
#     storm, test_robust's corruption-recovery suite, and test_async's
#     cancellation storm), the wire-level chaos suite (`chaos-net` label:
#     socket fault points against the reconnecting client), and the
#     multi-process cluster storm (`chaos-cluster` label: kill -9 a sharded
#     worker mid-storm, assert failover keeps replies bit-identical), each
#     under three distinct PARMA_CHAOS_SEED values.
#   - ASan+UBSan (-DPARMA_SANITIZE=address,undefined) over the same suites.
#
# Also runs the solver hot-path bench in --quick mode, which fails (non-zero
# exit) unless the kernel refresh holds its 2x-at-n>=16 speedup over the
# CooBuilder assembly path, the preconditioned kernel solve is >= 4x faster
# end to end than the legacy path, and the default preconditioner cuts CG
# iterations >= 2x vs unpreconditioned CG; the robust-accuracy bench in
# --quick mode,
# which fails unless the robust+masked pipeline stays within 2x of the
# fault-free error at 10% corruption (and plain least squares is measurably
# worse), and the net-throughput bench in --quick mode, which fails unless
# loopback TCP serving stays within 2x of in-process req/s, and the
# net-chaos bench in --quick mode, which fails unless the reconnecting
# client holds >= 90% goodput at a 5% connection-kill rate, and the
# cluster-failover bench in --quick mode, which fails unless the sharded
# cluster holds >= 90% goodput while two workers are SIGKILLed and
# supervised back to life; refreshes bench_results/solver_hotpath.json,
# bench_results/robust_accuracy.json, bench_results/net_throughput.json,
# bench_results/net_chaos.json, and bench_results/cluster_failover.json.
#
# Build trees: ./build (tier-1), ./build-tsan, ./build-asan.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 2)"
run_tsan=1
run_asan=1
for arg in "$@"; do
  [[ "${arg}" == "--no-tsan" ]] && run_tsan=0
  [[ "${arg}" == "--no-asan" ]] && run_asan=0
done

echo "== headers: self-containment (each public header compiles alone) =="
header_tu="$(mktemp --suffix=.cpp)"
trap 'rm -f "${header_tu}"' EXIT
header_fail=0
for header in src/async/*.hpp src/net/*.hpp src/cluster/*.hpp src/serve/status.hpp \
              src/serve/resilience.hpp src/linalg/preconditioner.hpp \
              src/linalg/aligned.hpp src/linalg/iterative.hpp; do
  printf '#include "%s"\n' "${header#src/}" > "${header_tu}"
  if ! c++ -std=c++20 -Wall -Wextra -fsyntax-only -Isrc "${header_tu}"; then
    echo "not self-contained: ${header}"
    header_fail=1
  fi
done
[[ "${header_fail}" == "0" ]] || exit 1

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${jobs}")

echo "== bench: solver_hotpath --quick (2x refresh, 4x preconditioned solve, 2x CG-iteration gates) =="
./build/bench/solver_hotpath --quick

echo "== bench: robust_accuracy --quick (2x dirty-input accuracy gate) =="
./build/bench/robust_accuracy --quick

echo "== bench: net_throughput --quick (2x loopback-transport gate) =="
./build/bench/net_throughput --quick

echo "== bench: net_chaos --quick (90% goodput-under-kill gate) =="
./build/bench/net_chaos --quick

echo "== bench: cluster_failover --quick (90% goodput through worker kills + restarts) =="
./build/bench/cluster_failover --quick

if [[ "${run_tsan}" == "1" ]]; then
  echo "== tsan: configure + build (labels: tsan, chaos) =="
  cmake -B build-tsan -S . -DPARMA_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${jobs}" --target test_kernels test_preconditioner test_exec test_serve test_net test_chaos_net test_cluster cluster_failover test_async test_fault test_robust
  echo "== tsan: ctest -L tsan =="
  (cd build-tsan && ctest -L tsan --output-on-failure -j "${jobs}")
  echo "== tsan: ctest -L chaos (3 seeds) =="
  (cd build-tsan && ctest -L chaos --output-on-failure -j "${jobs}")
  echo "== tsan: ctest -L chaos-net (3 seeds) =="
  (cd build-tsan && ctest -L chaos-net --output-on-failure -j "${jobs}")
  echo "== tsan: ctest -L chaos-cluster (3 seeds) =="
  (cd build-tsan && ctest -L chaos-cluster --output-on-failure -j "${jobs}")
  echo "== tsan: cluster_failover --quick =="
  ./build-tsan/bench/cluster_failover --quick
fi

if [[ "${run_asan}" == "1" ]]; then
  echo "== asan+ubsan: configure + build (labels: tsan, chaos) =="
  cmake -B build-asan -S . -DPARMA_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "${jobs}" --target test_kernels test_preconditioner test_exec test_serve test_net test_chaos_net test_cluster cluster_failover test_async test_fault test_robust
  echo "== asan+ubsan: ctest -L tsan =="
  (cd build-asan && ctest -L tsan --output-on-failure -j "${jobs}")
  echo "== asan+ubsan: ctest -L chaos (3 seeds) =="
  (cd build-asan && ctest -L chaos --output-on-failure -j "${jobs}")
  echo "== asan+ubsan: ctest -L chaos-net (3 seeds) =="
  (cd build-asan && ctest -L chaos-net --output-on-failure -j "${jobs}")
  echo "== asan+ubsan: ctest -L chaos-cluster (3 seeds) =="
  (cd build-asan && ctest -L chaos-cluster --output-on-failure -j "${jobs}")
  echo "== asan+ubsan: cluster_failover --quick =="
  ./build-asan/bench/cluster_failover --quick
fi

echo "OK"

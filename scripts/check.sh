#!/usr/bin/env bash
# Repo check: the tier-1 gate plus the ThreadSanitizer pass over the
# concurrency-sensitive suites (ctest label `tsan`: test_exec, test_serve).
#
#   scripts/check.sh            # tier-1 build + full ctest, then TSan tsan-label run
#   scripts/check.sh --no-tsan  # tier-1 only (fast inner loop)
#
# Build trees: ./build (tier-1) and ./build-tsan (-DPARMA_SANITIZE=thread).
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 2)"
run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${jobs}")

if [[ "${run_tsan}" == "1" ]]; then
  echo "== tsan: configure + build (label: tsan) =="
  cmake -B build-tsan -S . -DPARMA_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${jobs}" --target test_exec test_serve
  echo "== tsan: ctest -L tsan =="
  (cd build-tsan && ctest -L tsan --output-on-failure -j "${jobs}")
fi

echo "OK"

// parma_cluster_worker -- the worker process the cluster::Supervisor
// fork/execs: one serve::Server behind one net::Listener plus the
// notify/shutdown pipe harness. See src/cluster/worker.hpp for the flags.
#include "cluster/worker.hpp"

int main(int argc, char** argv) { return parma::cluster::worker_main(argc, argv); }

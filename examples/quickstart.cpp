// Quickstart: parametrize a small MEA end to end in ~40 lines.
//
//   1. describe the device,
//   2. obtain measurements (here: simulated from a known tissue field),
//   3. let Parma form the joint-constraint system and recover R,
//   4. inspect the result.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/parma.hpp"

int main() {
  using namespace parma;

  // 1. An 8 x 8 microelectrode array driven at the wet lab's 5 V.
  const mea::DeviceSpec device = mea::square_device(8);

  // 2. Simulate a measurement sweep: healthy tissue at ~2,000 kOhm with one
  //    anomalous region near the center peaking at 11,000 kOhm.
  Rng rng(42);
  mea::GeneratorOptions tissue;
  tissue.anomalies.push_back({4.0, 4.0, 1.2, 1.2, 11000.0});
  const circuit::ResistanceGrid truth = mea::generate_field(device, tissue, rng);
  const mea::Measurement sweep = mea::measure_exact(device, truth);

  // 3. Parma: one Session drives topology analysis, real-thread equation
  //    formation, and inverse recovery; repeated sessions on the same device
  //    shape reuse the cached topology and layout.
  const core::Session session = core::Session::on(sweep)
                                    .strategy(core::Strategy::kFineGrained)
                                    .workers(4)
                                    .build();

  const core::TopologyReport topology = session.topology();
  std::cout << "device: " << device.rows << "x" << device.cols << ", joints "
            << topology.num_joints << ", independent Kirchhoff loops (beta_1) "
            << topology.betti1 << "\n";

  const core::FormationResult formation = session.form();
  std::cout << "formed " << formation.system.equations.size()
            << " joint-constraint equations ("
            << device.num_unknowns() << " unknowns) in "
            << formation.generation_seconds * 1e3 << " ms on "
            << formation.effective_workers << " worker threads\n";

  const solver::InverseResult recovery = session.recover();
  std::cout << "recovered R field: converged=" << recovery.converged
            << ", misfit=" << recovery.final_misfit
            << ", max rel. error vs truth=" << recovery.max_relative_error(truth)
            << "\n\n";

  // 4. Detect the anomaly.
  const auto report = mea::detect_anomalies(recovery.recovered, mea::default_threshold());
  std::cout << "anomaly map ('#' = suspicious cell):\n"
            << mea::render_mask(report.detected, device.rows, device.cols);
  return 0;
}

// Quickstart: parametrize a small MEA end to end in ~40 lines.
//
//   1. describe the device,
//   2. obtain measurements (here: simulated from a known tissue field),
//   3. let Parma form the joint-constraint system and recover R,
//   4. inspect the result.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/parma.hpp"

int main() {
  using namespace parma;

  // 1. An 8 x 8 microelectrode array driven at the wet lab's 5 V.
  const mea::DeviceSpec device = mea::square_device(8);

  // 2. Simulate a measurement sweep: healthy tissue at ~2,000 kOhm with one
  //    anomalous region near the center peaking at 11,000 kOhm.
  Rng rng(42);
  mea::GeneratorOptions tissue;
  tissue.anomalies.push_back({4.0, 4.0, 1.2, 1.2, 11000.0});
  const circuit::ResistanceGrid truth = mea::generate_field(device, tissue, rng);
  const mea::Measurement sweep = mea::measure_exact(device, truth);

  // 3. Parma: topology report, equation formation, inverse recovery.
  core::Engine engine(sweep);

  const core::TopologyReport topology = engine.analyze_topology();
  std::cout << "device: " << device.rows << "x" << device.cols << ", joints "
            << topology.num_joints << ", independent Kirchhoff loops (beta_1) "
            << topology.betti1 << "\n";

  core::StrategyOptions strategy;  // fine-grained, 4 workers by default
  const core::FormationResult formation = engine.form_equations(strategy);
  std::cout << "formed " << formation.system.equations.size()
            << " joint-constraint equations ("
            << device.num_unknowns() << " unknowns) in "
            << formation.generation_seconds * 1e3 << " ms\n";

  const solver::InverseResult recovery = engine.recover();
  std::cout << "recovered R field: converged=" << recovery.converged
            << ", misfit=" << recovery.final_misfit
            << ", max rel. error vs truth=" << recovery.max_relative_error(truth)
            << "\n\n";

  // 4. Detect the anomaly.
  const auto report = mea::detect_anomalies(recovery.recovered, mea::default_threshold());
  std::cout << "anomaly map ('#' = suspicious cell):\n"
            << mea::render_mask(report.detected, device.rows, device.cols);
  return 0;
}

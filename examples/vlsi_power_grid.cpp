// VLSI power-delivery scenario (paper Section I: "in electronic engineering,
// similar techniques are applied for the tradeoffs between currents and
// signals in the very-large-scale integration (VLSI) design of CPU chips").
//
// A power-delivery network is the same crossbar mathematics at a different
// operating point: via/contact resistances in the milli-ohm-to-ohm range, a
// 1 V rail, and the anomaly of interest is a *high-resistance defect* (a
// weak via) that starves a region of current. The example parametrizes a
// 16 x 16 grid from its pairwise measurements, localizes the weak-via
// cluster, reports the worst-case IR drop before and after repair, and
// renders the recovered field.
//
// Build & run:  ./build/examples/vlsi_power_grid
#include <iostream>

#include "core/parma.hpp"
#include "mea/field_render.hpp"

int main() {
  using namespace parma;

  // 16 x 16 power mesh at 1 V; healthy via resistance 2 Ohm (in kOhm units:
  // 0.002), a defective cluster at ~20x that.
  mea::DeviceSpec grid_spec{16, 16, 1.0};
  Rng rng(77);
  mea::GeneratorOptions fab;
  fab.healthy_resistance = 0.002;
  fab.jitter_fraction = 0.03;  // process variation
  fab.anomalies.push_back({11.0, 4.0, 1.2, 1.2, 0.04});  // weak-via cluster
  const circuit::ResistanceGrid truth = mea::generate_field(grid_spec, fab, rng);
  const mea::Measurement probe = mea::measure_exact(grid_spec, truth);

  std::cout << "power grid: " << grid_spec.rows << "x" << grid_spec.cols
            << " vias at 1 V; parametrizing from " << grid_spec.num_endpoint_pairs()
            << " pairwise probes...\n";
  core::Engine engine(probe);
  solver::InverseOptions options;
  options.max_iterations = 80;
  const solver::InverseResult recovery = engine.recover(options);
  std::cout << "recovered in " << recovery.iterations << " iterations, misfit "
            << recovery.final_misfit << "\n\n";

  std::cout << "recovered via-resistance heatmap (dark = healthy, bright = weak):\n"
            << mea::render_heatmap(recovery.recovered) << "\n";

  // Defect localization: vias above 4x the median are flagged.
  std::vector<Real> sorted = recovery.recovered.flat();
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2, sorted.end());
  const Real median = sorted[sorted.size() / 2];
  const auto report = mea::detect_anomalies(recovery.recovered, 4.0 * median,
                                            mea::anomaly_mask(truth, 4.0 * median));
  std::cout << "weak vias flagged at >4x median (" << 4.0 * median * 1e3
            << " Ohm): precision " << report.precision() << ", recall " << report.recall()
            << "\n";

  // IR-drop check: worst-case pairwise resistance = worst supply path.
  auto worst_z = [](const linalg::DenseMatrix& z) {
    Real worst = 0.0;
    for (Index i = 0; i < z.rows(); ++i) {
      for (Index j = 0; j < z.cols(); ++j) worst = std::max(worst, z(i, j));
    }
    return worst;
  };
  circuit::ResistanceGrid repaired = recovery.recovered;
  for (std::size_t e = 0; e < repaired.flat().size(); ++e) {
    if (report.detected[e]) repaired.flat()[e] = 0.002;  // re-drop the weak vias
  }
  const Real before = worst_z(probe.z);
  const Real after = worst_z(circuit::measure_all_pairs(repaired));
  std::cout << "worst pairwise supply resistance: " << before * 1e3 << " Ohm before, "
            << after * 1e3 << " Ohm after repairing flagged vias ("
            << (1.0 - after / before) * 100.0 << "% improvement)\n";

  const std::string image = "vlsi_power_grid.pgm";
  mea::write_pgm(image, recovery.recovered);
  std::cout << "field image written to " << image << "\n";
  return 0;
}

// The HDK workflow (the paper's Section I-II context): Parma as the
// training-data factory for a neural Kirchhoff estimator.
//
//   1. generate a labelled dataset of (Z sweep, R field) pairs -- in a wet
//      lab the labels come from Parma's parametrization of measured devices;
//   2. train a from-scratch MLP on it;
//   3. compare the trained estimator against Parma's exact LM recovery on a
//      fresh device: the net answers in microseconds at reduced accuracy,
//      the solver answers exactly at higher cost -- the trade the deep
//      learning line of work ([8], [9]) is about.
//
// Build & run:  ./build/examples/train_estimator
#include <iostream>

#include "core/parma.hpp"

int main() {
  using namespace parma;

  const mea::DeviceSpec device = mea::square_device(4);

  // 1. Dataset.
  ann::DatasetOptions data_options;
  data_options.num_samples = 300;
  data_options.max_anomalies = 2;
  Rng data_rng(2024);
  std::cout << "generating " << data_options.num_samples << " labelled devices ("
            << device.rows << "x" << device.cols << ")...\n";
  Stopwatch data_clock;
  const ann::Dataset dataset = ann::generate_dataset(device, data_options, data_rng);
  std::cout << "  " << dataset.train.size() << " train / " << dataset.test.size()
            << " test samples in " << data_clock.elapsed_seconds() << " s\n\n";

  // 2. Train.
  Rng net_rng(7);
  ann::Mlp net({device.num_resistors(), 64, 64, device.num_resistors()}, net_rng);
  ann::TrainOptions train_options;
  train_options.epochs = 200;
  train_options.learning_rate = 2e-3;
  Rng train_rng(8);
  std::cout << "training MLP (" << net.num_parameters() << " parameters)...\n";
  Stopwatch train_clock;
  const ann::TrainReport report = ann::train(net, dataset, train_options, train_rng);
  std::cout << "  epochs: " << report.train_loss_per_epoch.size()
            << ", first/last train loss: " << report.train_loss_per_epoch.front() << " / "
            << report.train_loss_per_epoch.back()
            << ", test mean rel. error: " << report.test_mean_relative_error << " ("
            << train_clock.elapsed_seconds() << " s)\n\n";

  // 3. Head-to-head on a fresh device.
  Rng eval_rng(9);
  mea::GeneratorOptions scenario = mea::random_scenario(device, 1, eval_rng);
  scenario.jitter_fraction = 0.02;
  const circuit::ResistanceGrid truth = mea::generate_field(device, scenario, eval_rng);
  const mea::Measurement sweep = mea::measure_exact(device, truth);
  std::vector<Real> z_flat;
  for (Index i = 0; i < device.rows; ++i) {
    for (Index j = 0; j < device.cols; ++j) z_flat.push_back(sweep.z(i, j));
  }

  Stopwatch ann_clock;
  const std::vector<Real> ann_r = ann::infer_resistances(net, dataset, z_flat);
  const Real ann_seconds = ann_clock.elapsed_seconds();

  Stopwatch lm_clock;
  core::Engine engine(sweep);
  const solver::InverseResult lm = engine.recover();
  const Real lm_seconds = lm_clock.elapsed_seconds();

  Real ann_err = 0.0;
  for (std::size_t e = 0; e < ann_r.size(); ++e) {
    ann_err = std::max(ann_err, std::abs(ann_r[e] - truth.flat()[e]) / truth.flat()[e]);
  }
  std::cout << "fresh device head-to-head:\n"
            << "  ANN estimator: max rel. error " << ann_err << " in " << ann_seconds * 1e6
            << " us\n"
            << "  Parma LM:      max rel. error " << lm.max_relative_error(truth) << " in "
            << lm_seconds * 1e3 << " ms\n\n"
            << "the estimator trades accuracy for a ~1000x faster answer; Parma is\n"
               "what makes producing its training labels tractable at scale.\n";
  return 0;
}

// Topology explorer: the algebraic-topological machinery of Section III made
// tangible. Builds the wire complex of devices of increasing size (and the
// k-dimensional lattices of Section IV-B), computes chain-group ranks,
// boundary-operator ranks, Betti numbers and the fundamental cycle basis,
// and verifies the identities the paper's parallelization rests on.
//
// Build & run:  ./build/examples/topology_explorer
#include <iostream>

#include "core/parma.hpp"
#include "topology/boundary.hpp"

int main() {
  using namespace parma;
  using namespace parma::topology;

  std::cout << "== 2-D devices: the (n-1)^2 independent Kirchhoff loops ==\n";
  std::cout << "n   joints  edges  chain0  chain1  beta0  beta1  (n-1)^2  cyclomatic\n";
  for (Index n : {2, 3, 4, 5, 6, 8}) {
    const WireComplex wc = build_wire_complex(n, n);
    const ChainGroupRanks c0 = chain_group_ranks(wc.complex, 0);
    const ChainGroupRanks c1 = chain_group_ranks(wc.complex, 1);
    const CycleBasis basis(wc.num_vertices, wc.edges);
    std::cout << n << "   " << wc.num_vertices << "      " << wc.edges.size() << "     "
              << c0.chain_rank << "      " << c1.chain_rank << "      " << c0.betti()
              << "      " << c1.betti() << "      " << expected_betti1_crossbar(n, n)
              << "        " << basis.cyclomatic_number() << "\n";
  }

  std::cout << "\n== the boundary-squared identity and Proposition 1 ==\n";
  const WireComplex demo = build_wire_complex(3, 3);
  std::cout << "3x3 device (Fig. 1): dimension " << demo.complex.dimension()
            << ", boundary.boundary == 0: " << boundary_squared_is_zero(demo.complex)
            << ", Proposition 1 holds: " << satisfies_proposition1(demo) << "\n";

  std::cout << "\none fundamental cycle of the 3x3 device (cf. the paper's example\n"
               "loop 0 -> R11 -> 1 -> 3 -> R12 -> 2 -> 8 -> R22 -> 9 -> 7 -> R21 -> 6 -> 0):\n  ";
  const CycleBasis basis(demo.num_vertices, demo.edges);
  for (Index v : basis.cycles().front().vertices) std::cout << v << " -> ";
  std::cout << basis.cycles().front().vertices.front() << "\n";

  std::cout << "\n== higher-dimensional MEAs (Section IV-B): beta_1 of n^k lattices ==\n";
  std::cout << "n  dims  vertices  edges  beta1(closed form)  beta1(spanning tree)\n";
  for (const auto& [n, dims] : std::vector<std::pair<Index, Index>>{
           {4, 1}, {4, 2}, {4, 3}, {3, 4}}) {
    const LatticeComplex lc = build_lattice_complex(n, dims);
    const CycleBasis lattice_basis(lc.num_vertices, lc.edges);
    std::cout << n << "  " << dims << "     " << lc.num_vertices << "        "
              << lc.edges.size() << "     " << expected_betti1_lattice(n, dims)
              << "                   " << lattice_basis.cyclomatic_number() << "\n";
  }

  std::cout << "\n== what this buys: intrinsic parallelism per device ==\n";
  for (Index n : {10, 20, 50, 100}) {
    std::cout << "  " << n << "x" << n << " device: " << expected_betti1_crossbar(n, n)
              << " independent loops -> theoretical O(n^{k+1})/(n-1)^k = O(n) "
                 "parametrization (Section IV-B)\n";
  }
  return 0;
}

// serve_demo -- minimal tour of the parma::serve layer.
//
// Spins up a serve::Server, submits a burst of parametrization requests over
// mixed device shapes (so batching-by-shape is visible in the stats), shows
// the failure paths the server absorbs without going down -- an
// already-expired deadline, a cancelled ticket, an invalid request -- then
// drains and prints the live Stats snapshot.
//
// Build: cmake --build build --target serve_demo && ./build/examples/serve_demo
#include <chrono>
#include <iostream>
#include <utility>
#include <vector>

#include "core/parma_api.hpp"
#include "mea/anomaly.hpp"
#include "mea/generator.hpp"

using namespace parma;
using namespace std::chrono_literals;

namespace {

serve::ParametrizeRequest make_request(Index n, Rng& rng) {
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  serve::ParametrizeRequest request;
  request.measurement = mea::measure_exact(spec, truth);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 4;
  request.options.keep_system = false;
  request.inverse.max_iterations = 30;
  request.anomaly_threshold = mea::default_threshold();
  return request;
}

}  // namespace

int main() {
  Rng rng(7);
  serve::ServerOptions options;
  options.workers = 2;
  options.max_batch = 4;
  options.queue_capacity = 16;
  serve::Server server(options);

  // A burst over mixed shapes: the server groups same-shape neighbors into
  // batches so each batch reuses one cached topology and one warm executor.
  std::vector<serve::Ticket> tickets;
  for (const Index n : {Index{8}, Index{8}, Index{10}, Index{8}, Index{10}, Index{12}}) {
    serve::Ticket ticket = server.submit(make_request(n, rng), 5s);
    std::cout << "submit " << n << "x" << n << ": "
              << serve::submit_status_name(ticket.admission()) << "\n";
    tickets.push_back(std::move(ticket));
  }

  // Failure paths: none of these take the server down.
  serve::ParametrizeRequest hopeless = make_request(8, rng);
  hopeless.timeout = 0ms;  // expires while queued
  tickets.push_back(server.submit(std::move(hopeless), 5s));

  serve::Ticket cancelled = server.submit(make_request(8, rng), 5s);
  cancelled.cancel();
  tickets.push_back(std::move(cancelled));

  serve::ParametrizeRequest invalid = make_request(8, rng);
  invalid.options.workers = 0;  // rejected at admission, future still completes
  tickets.push_back(server.try_submit(std::move(invalid)));

  server.drain();

  for (serve::Ticket& ticket : tickets) {
    const serve::ParametrizeResult r = ticket.future().get();
    std::cout << serve::request_status_name(r.status);
    if (r.ok()) {
      std::cout << ": " << r.inverse.recovered.rows() << "x"
                << r.inverse.recovered.cols() << " recovered in " << r.inverse.iterations
                << " iterations (batch of " << r.batch_size << ", " << r.anomalies
                << " anomalous joints, form " << r.form_seconds * 1e3 << " ms, solve "
                << r.solve_seconds * 1e3 << " ms)";
    } else {
      std::cout << ": " << r.message;
    }
    std::cout << "\n";
  }

  const serve::Stats stats = server.stats();
  std::cout << "\nstats: submitted " << stats.submitted << ", accepted " << stats.accepted
            << ", ok " << stats.completed_ok << ", deadline-exceeded "
            << stats.deadline_exceeded << ", cancelled " << stats.cancelled
            << ", rejected " << stats.rejected() << "\n"
            << "batches " << stats.batches << " (max " << stats.max_batch << ", mean "
            << stats.mean_batch_size << "), queue high-water " << stats.queue_high_water
            << "\n"
            << "end-to-end p50 " << stats.end_to_end.p50_seconds * 1e3 << " ms, p99 "
            << stats.end_to_end.p99_seconds * 1e3 << " ms\n";
  server.shutdown();
  return 0;
}

// Distributed parametrization over the message-passing runtime: the MPI
// program of Section V-F, written against mpisim's Communicator (a drop-in
// for the mpi4py calls the paper used) and run with in-process ranks.
//
// Rank 0 loads the measurement and broadcasts it; every rank forms the
// equations of its contiguous block of endpoint pairs; equation counts and
// per-rank times are reduced back to rank 0, which also replays the same
// workload on the 1,024-rank virtual cluster for comparison.
//
// Build & run:  ./build/examples/cluster_parametrize [ranks]
#include <atomic>
#include <cstdlib>
#include <iostream>

#include "core/parma.hpp"

int main(int argc, char** argv) {
  using namespace parma;
  const Index ranks = argc > 1 ? std::atoll(argv[1]) : 8;

  // The shared measurement (in a real deployment rank 0 would read the
  // wet-lab file; here it synthesizes one).
  Rng rng(11);
  const mea::DeviceSpec device = mea::square_device(24);
  const auto truth = mea::generate_field(device, mea::random_scenario(device, 2, rng), rng);
  const mea::Measurement sweep = mea::measure_exact(device, truth);
  const equations::UnknownLayout layout(device);

  std::cout << "device " << device.rows << "x" << device.cols << ", "
            << device.num_equations() << " equations over " << ranks << " ranks\n";

  std::atomic<long long> total_equations{0};
  Stopwatch wall;
  mpisim::run_ranks(ranks, [&](mpisim::Communicator& comm) {
    // Flatten Z into a payload and broadcast it (rank 0 is the reader).
    mpisim::Payload z_flat;
    if (comm.rank() == 0) {
      for (Index i = 0; i < device.rows; ++i) {
        for (Index j = 0; j < device.cols; ++j) z_flat.push_back(sweep.z(i, j));
      }
    }
    z_flat = comm.broadcast(0, std::move(z_flat));

    // Rebuild the local measurement view from the broadcast payload.
    mea::Measurement local;
    local.spec = device;
    local.z = linalg::DenseMatrix(device.rows, device.cols);
    local.u = linalg::DenseMatrix(device.rows, device.cols);
    for (Index i = 0; i < device.rows; ++i) {
      for (Index j = 0; j < device.cols; ++j) {
        local.z(i, j) = z_flat[static_cast<std::size_t>(i * device.cols + j)];
        local.u(i, j) = device.drive_voltage;
      }
    }

    // Contiguous block of endpoint pairs per rank.
    const Index pairs = device.num_endpoint_pairs();
    const Index first = pairs * comm.rank() / comm.size();
    const Index last = pairs * (comm.rank() + 1) / comm.size();
    Stopwatch clock;
    long long my_equations = 0;
    for (Index p = first; p < last; ++p) {
      const auto eqs = equations::generate_pair_equations(layout, local, p / device.cols,
                                                          p % device.cols);
      my_equations += static_cast<long long>(eqs.size());
    }
    const Real my_seconds = clock.elapsed_seconds();

    const mpisim::Payload stats = comm.reduce_sum(
        0, {static_cast<Real>(my_equations), my_seconds});
    if (comm.rank() == 0) {
      total_equations.store(static_cast<long long>(stats[0]));
      std::cout << "ranks formed " << static_cast<long long>(stats[0])
                << " equations; mean per-rank compute "
                << stats[1] / static_cast<Real>(comm.size()) * 1e3 << " ms\n";
    }
  });
  std::cout << "wall time with " << ranks << " in-process ranks: "
            << wall.elapsed_seconds() * 1e3 << " ms\n";
  if (total_equations.load() != device.num_equations()) {
    std::cerr << "equation census mismatch!\n";
    return 1;
  }

  // The same workload on the virtual 1,024-rank cluster (Fig. 10 regime).
  core::Engine engine(sweep);
  core::StrategyOptions options;
  options.timing_mode = core::TimingMode::kVirtualReplay;  // Fig. 10 regime
  options.keep_system = false;
  const core::FormationResult formation = engine.form_equations(options);
  for (Index p : {Index{32}, Index{256}, Index{1024}}) {
    const auto r = engine.distributed_formation(formation, p);
    std::cout << "virtual cluster p=" << p << ": " << r.makespan_seconds * 1e3
              << " ms (compute " << r.compute_seconds * 1e3 << " + comm "
              << r.comm_seconds * 1e3 << " + spawn " << r.spawn_seconds * 1e3 << ")\n";
  }
  return 0;
}

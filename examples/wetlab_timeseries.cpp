// Wet-lab time-series pipeline (the paper's Section V-B data regime: one
// device measured at 0, 6, 12 and 24 hours, dumped to text files).
//
// Simulates the four-epoch campaign of a growing anomaly, writes each epoch
// in the wet-lab text format, then replays the *files* through Parma exactly
// the way the paper's prototype consumed its converted Excel dumps --
// reporting how the anomalous area grows across the day.
//
// Build & run:  ./build/examples/wetlab_timeseries [output_dir]
#include <iostream>
#include <optional>
#include <string>

#include "core/parma.hpp"

int main(int argc, char** argv) {
  using namespace parma;
  const std::string dir = argc > 1 ? argv[1] : "wetlab_campaign";

  const mea::DeviceSpec device = mea::square_device(10);
  Rng rng(2022);

  mea::TimeSeriesOptions campaign;
  campaign.scenario.jitter_fraction = 0.01;
  campaign.scenario.anomalies.push_back({3.0, 6.0, 1.0, 1.0, 9000.0});
  campaign.growth_per_hour = 0.04;        // the lesion spreads over the day
  campaign.peak_growth_per_hour = 0.004;  // and intensifies
  campaign.measurement.noise_fraction = 0.003;

  const auto frames = mea::simulate_campaign(device, campaign, rng);
  const auto paths = mea::write_campaign(dir, frames);
  std::cout << "wrote " << paths.size() << " epoch files under " << dir << "/\n\n";

  // Each epoch warm-starts from the previous recovery: the medium changes
  // slowly over the day, so iterations drop after epoch 0.
  std::optional<circuit::ResistanceGrid> previous;
  std::cout << "epoch  iters  misfit    anomalous_cells  peak_R(kOhm)\n";
  for (const auto& path : paths) {
    const mea::LoadedMeasurement loaded = mea::read_measurement(path);
    core::Engine engine(loaded.measurement);
    solver::InverseOptions options;
    options.max_iterations = 50;
    options.initial_grid = previous;
    const solver::InverseResult recovery = engine.recover(options);
    previous = recovery.recovered;

    Index anomalous = 0;
    Real peak = 0.0;
    for (Real v : recovery.recovered.flat()) {
      if (v > 4500.0) ++anomalous;
      peak = std::max(peak, v);
    }
    std::cout << "  " << loaded.epoch_hours << "h    " << recovery.iterations << "      "
              << recovery.final_misfit << "   " << anomalous << "               " << peak
              << "\n";
  }
  std::cout << "\nthe anomalous-cell count grows monotonically across the four\n"
               "epochs: the recovered fields track the simulated lesion growth.\n";
  return 0;
}

// Wound-surface anomaly screening (the paper's Section I scenario: "an MEA
// can be applied to a patient's wound surface and report the anomalies").
//
// Simulates a noisy clinical measurement of a 12 x 12 array with multiple
// anomalous regions, recovers the resistance field, and scores the detection
// against ground truth -- including the precision/recall trade as the
// detection threshold sweeps the healthy-to-anomalous band.
//
// Build & run:  ./build/examples/anomaly_detection [seed]
#include <cstdlib>
#include <iostream>

#include "core/parma.hpp"

int main(int argc, char** argv) {
  using namespace parma;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7u;

  const mea::DeviceSpec device = mea::square_device(12);
  Rng rng(seed);

  // Three anomalies of different sizes; 1% cell jitter and 0.5% instrument
  // noise make this a realistic (not exactly invertible) scenario.
  mea::GeneratorOptions tissue;
  tissue.jitter_fraction = 0.01;
  tissue.anomalies.push_back({2.5, 3.0, 1.3, 1.0, 11000.0});
  tissue.anomalies.push_back({8.0, 8.5, 1.8, 1.4, 9500.0});
  tissue.anomalies.push_back({4.0, 9.5, 0.8, 0.8, 10500.0});
  const circuit::ResistanceGrid truth = mea::generate_field(device, tissue, rng);
  mea::MeasurementOptions instrument;
  instrument.noise_fraction = 0.005;
  const mea::Measurement sweep = mea::measure(device, truth, instrument, rng);

  std::cout << "ground truth ('#' above " << mea::default_threshold() << " kOhm):\n"
            << mea::render_mask(mea::anomaly_mask(truth, mea::default_threshold()),
                                device.rows, device.cols)
            << "\n";

  core::Engine engine(sweep);
  solver::InverseOptions options;
  options.max_iterations = 60;
  const solver::InverseResult recovery = engine.recover(options);
  std::cout << "recovery: " << recovery.iterations << " iterations, misfit "
            << recovery.final_misfit << "\n\n";

  const auto truth_mask = mea::anomaly_mask(truth, mea::default_threshold());
  std::cout << "threshold sweep (kOhm -> precision / recall / F1):\n";
  for (const Real threshold : {4000.0, 5000.0, 6500.0, 8000.0, 9500.0}) {
    const auto report = mea::detect_anomalies(recovery.recovered, threshold, truth_mask);
    std::cout << "  " << threshold << " -> " << report.precision() << " / "
              << report.recall() << " / " << report.f1() << "\n";
  }

  const auto best = mea::detect_anomalies(recovery.recovered, mea::default_threshold(),
                                          truth_mask);
  std::cout << "\ndetected at the default threshold:\n"
            << mea::render_mask(best.detected, device.rows, device.cols);
  return 0;
}

// parma_cli -- command-line front end to the Parma pipeline.
//
//   parma_cli generate  <n> <out.txt> [--anomalies k] [--noise f] [--seed s]
//                       [--truth out_truth.txt]
//       synthesize a measurement file in the wet-lab text format
//   parma_cli topology  <n>
//       print the homology report of an n x n device
//   parma_cli form      <measurement.txt> <out_dir> [--workers k]
//       form the joint-constraint system and write the equation shards
//   parma_cli solve     <measurement.txt> [--threshold kOhm] [--workers k]
//                       [--truth truth.txt]
//       recover the resistance field and print the anomaly map
//   parma_cli render    <measurement.txt> <out.pgm> [--scale s]
//       recover the field and write it as a grayscale image
//   parma_cli serve-bench [--requests r] [--shapes 6,8,10] [--workers k]
//                         [--queue q] [--batch b] [--seed s]
//       drive a serve::Server with synthetic requests and print its stats
//   parma_cli serve-net --listen <host:port|[v6]:port|port> [--workers k]
//                       [--queue q] [--batch b]
//       serve parametrization requests over TCP until stdin closes
//   parma_cli serve-net --connect <host:port|[v6]:port|port> [--requests r]
//                       [--shapes 6,8,10] [--seed s]
//       drive a remote serve-net listener with synthetic requests
//   parma_cli serve-cluster [--cluster-workers n] [--replicas r] [--requests r]
//                           [--shapes 6,8,10] [--seed s] [--kill-worker i]
//                           [--worker-bin path]
//       supervise a sharded worker fleet, route synthetic requests through
//       the consistent-hash ring, and print the merged cluster-wide stats
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime failures.
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/supervisor.hpp"
#include "core/parma.hpp"
#include "net/client.hpp"
#include "net/listener.hpp"

namespace {

using namespace parma;

struct Args {
  std::vector<std::string> positional;
  std::optional<std::string> flag(const std::string& name) const {
    for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
      if (raw[i] == "--" + name) return raw[i + 1];
    }
    return std::nullopt;
  }
  std::vector<std::string> raw;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) args.raw.emplace_back(argv[i]);
  for (std::size_t i = 0; i < args.raw.size(); ++i) {
    if (args.raw[i].rfind("--", 0) == 0) {
      ++i;  // skip the flag's value
    } else {
      args.positional.push_back(args.raw[i]);
    }
  }
  return args;
}

int usage() {
  std::cerr << "usage:\n"
               "  parma_cli generate <n> <out.txt> [--anomalies k] [--noise f]"
               " [--seed s] [--truth out_truth.txt]\n"
               "  parma_cli topology <n>\n"
               "  parma_cli form <measurement.txt> <out_dir> [--workers k]\n"
               "  parma_cli solve <measurement.txt> [--threshold kOhm]"
               " [--workers k] [--truth truth.txt]\n"
               "  parma_cli render <measurement.txt> <out.pgm> [--scale s]\n"
               "  parma_cli serve-bench [--requests r] [--shapes 6,8,10]"
               " [--workers k] [--queue q] [--batch b] [--seed s]\n"
               "  parma_cli serve-net --listen <host:port|[v6]:port|port> [--workers k]"
               " [--queue q] [--batch b]\n"
               "  parma_cli serve-net --connect <host:port|[v6]:port|port> [--requests r]"
               " [--shapes 6,8,10] [--seed s]\n"
               "  parma_cli serve-cluster [--cluster-workers n] [--replicas r]"
               " [--requests r] [--shapes 6,8,10] [--seed s] [--kill-worker i]"
               " [--worker-bin path]\n";
  return 1;
}

int cmd_generate(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const Index n = parse_index(args.positional[0], "n");
  const std::string out = args.positional[1];
  const Index anomalies = args.flag("anomalies") ? parse_index(*args.flag("anomalies"), "anomalies") : 1;
  const Real noise = args.flag("noise") ? parse_real(*args.flag("noise"), "noise") : 0.0;
  const auto seed = static_cast<std::uint64_t>(
      args.flag("seed") ? parse_index(*args.flag("seed"), "seed") : 42);

  Rng rng(seed);
  const mea::DeviceSpec spec = mea::square_device(n);
  mea::GeneratorOptions scenario = mea::random_scenario(spec, anomalies, rng);
  scenario.jitter_fraction = 0.01;
  const circuit::ResistanceGrid truth = mea::generate_field(spec, scenario, rng);
  mea::MeasurementOptions mopt;
  mopt.noise_fraction = noise;
  const mea::Measurement sweep = mea::measure(spec, truth, mopt, rng);
  mea::write_measurement(out, sweep);
  std::cout << "wrote " << out << " (" << n << "x" << n << ", " << anomalies
            << " anomalies, noise " << noise << ")\n";
  if (const auto truth_path = args.flag("truth")) {
    mea::write_truth(*truth_path, spec, truth);
    std::cout << "wrote ground truth " << *truth_path << "\n";
  }
  return 0;
}

int cmd_topology(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const Index n = parse_index(args.positional[0], "n");
  const mea::DeviceSpec spec = mea::square_device(n);
  // A dummy uniform measurement suffices; topology depends only on shape.
  mea::Measurement m;
  m.spec = spec;
  m.z = linalg::DenseMatrix(n, n);
  m.u = linalg::DenseMatrix(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      m.z(i, j) = 1000.0;
      m.u(i, j) = spec.drive_voltage;
    }
  }
  const core::TopologyReport report = core::Engine(m).analyze_topology(n <= 12);
  std::cout << "device " << n << "x" << n << "\n"
            << "  joints (0-simplices)      " << report.num_joints << "\n"
            << "  total simplices           " << report.num_simplices << "\n"
            << "  complex dimension         " << report.complex_dimension << "\n"
            << "  beta_0 (components)       " << report.betti0 << "\n"
            << "  beta_1 (Kirchhoff loops)  " << report.betti1 << "\n"
            << "  cyclomatic number         " << report.cyclomatic_number << "\n"
            << "  intrinsic parallelism     " << report.intrinsic_parallelism << "\n"
            << "  Proposition 1 holds       " << (report.proposition1_holds ? "yes" : "no")
            << "\n";
  return 0;
}

int cmd_form(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const mea::LoadedMeasurement loaded = mea::read_measurement(args.positional[0]);
  const Index workers = args.flag("workers") ? parse_index(*args.flag("workers"), "workers") : 4;

  core::Engine engine(loaded.measurement);
  core::StrategyOptions options;
  options.workers = workers;
  options.keep_system = false;  // shards are streamed
  const core::IoResult io = engine.write_equations(args.positional[1], options);
  std::cout << "formed " << engine.spec().num_equations() << " equations in "
            << io.formation.generation_seconds << " s, wrote " << io.bytes_written
            << " bytes across " << io.shard_paths.size() << " shards ("
            << io.write_seconds << " s)\n"
            << "end-to-end with " << workers << " workers (real threads): "
            << io.virtual_end_to_end << " s\n";
  return 0;
}

int cmd_solve(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const mea::LoadedMeasurement loaded = mea::read_measurement(args.positional[0]);
  const Real threshold = args.flag("threshold") ? parse_real(*args.flag("threshold"), "threshold")
                                                : mea::default_threshold();

  core::Engine engine(loaded.measurement);
  solver::InverseOptions options;
  options.max_iterations = 80;
  if (const auto workers = args.flag("workers")) {
    options.workers = parse_index(*workers, "workers");
  }
  const solver::InverseResult result = engine.recover(options);
  std::cout << "recovery: " << result.iterations << " iterations, misfit "
            << result.final_misfit << (result.converged ? " (converged)" : " (stalled)")
            << "\n";
  const auto report = mea::detect_anomalies(result.recovered, threshold);
  std::cout << "anomalies above " << threshold << " kOhm ('#'):\n"
            << mea::render_mask(report.detected, engine.spec().rows, engine.spec().cols);
  if (const auto truth_path = args.flag("truth")) {
    const circuit::ResistanceGrid truth = mea::read_truth(*truth_path);
    const auto truth_mask = mea::anomaly_mask(truth, threshold);
    const auto scored = mea::detect_anomalies(result.recovered, threshold, truth_mask);
    std::cout << "vs ground truth: precision " << scored.precision() << ", recall "
              << scored.recall() << ", F1 " << scored.f1() << ", max rel. error "
              << result.max_relative_error(truth) << "\n";
  }
  return 0;
}

int cmd_render(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const mea::LoadedMeasurement loaded = mea::read_measurement(args.positional[0]);
  const Index scale = args.flag("scale") ? parse_index(*args.flag("scale"), "scale") : 8;
  core::Engine engine(loaded.measurement);
  solver::InverseOptions options;
  options.max_iterations = 80;
  const solver::InverseResult result = engine.recover(options);
  mea::write_pgm(args.positional[1], result.recovered, scale);
  std::cout << "recovered field (misfit " << result.final_misfit << ") written to "
            << args.positional[1] << "\n"
            << mea::render_heatmap(result.recovered);
  return 0;
}

int cmd_serve_bench(const Args& args) {
  if (!args.positional.empty()) return usage();
  const Index requests =
      args.flag("requests") ? parse_index(*args.flag("requests"), "requests") : 32;
  const auto seed = static_cast<std::uint64_t>(
      args.flag("seed") ? parse_index(*args.flag("seed"), "seed") : 2022);
  std::vector<Index> shapes;
  for (const std::string& tok : split(args.flag("shapes").value_or("6,8,10"), ',')) {
    shapes.push_back(parse_index(tok, "shapes"));
  }
  PARMA_REQUIRE(!shapes.empty(), "serve-bench: --shapes must name at least one size");
  PARMA_REQUIRE(requests >= 1, "serve-bench: --requests must be >= 1");

  serve::ServerOptions sopts;
  if (const auto w = args.flag("workers")) sopts.workers = parse_index(*w, "workers");
  if (const auto q = args.flag("queue")) sopts.queue_capacity = parse_index(*q, "queue");
  if (const auto b = args.flag("batch")) sopts.max_batch = parse_index(*b, "batch");
  serve::Server server(sopts);

  // Pre-generate the measurements so the timed section is pure serving.
  std::vector<serve::ParametrizeRequest> pending;
  pending.reserve(static_cast<std::size_t>(requests));
  Rng rng(seed);
  for (Index i = 0; i < requests; ++i) {
    const Index n = shapes[static_cast<std::size_t>(i) % shapes.size()];
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    serve::ParametrizeRequest request;
    request.measurement = mea::measure_exact(spec, truth);
    request.options.strategy = core::Strategy::kFineGrained;
    request.options.workers = 2;
    request.options.chunk = 4;
    request.options.keep_system = false;
    request.inverse.max_iterations = 20;
    pending.push_back(std::move(request));
  }

  Stopwatch wall;
  std::vector<serve::Ticket> tickets;
  tickets.reserve(pending.size());
  for (serve::ParametrizeRequest& request : pending) {
    tickets.push_back(server.submit(std::move(request), std::chrono::seconds(30)));
  }
  server.drain();
  const Real wall_seconds = wall.elapsed_seconds();
  Index ok = 0;
  for (serve::Ticket& t : tickets) {
    if (t.accepted() && t.future().get().status == serve::RequestStatus::kOk) ++ok;
  }
  server.shutdown();

  const serve::Stats stats = server.stats();
  std::cout << "served " << ok << "/" << requests << " requests in " << wall_seconds
            << " s (" << static_cast<Real>(requests) / wall_seconds << " req/s), "
            << stats.batches << " batches, mean batch " << stats.mean_batch_size
            << ", queue high-water " << stats.queue_high_water << "/"
            << sopts.queue_capacity << "\n";
  Table table({"stage", "count", "mean_ms", "p50_ms", "p99_ms", "max_ms"});
  const auto add_stage = [&table](const char* name, const serve::StageStats& s) {
    table.add(name, static_cast<std::uint64_t>(s.count), s.mean_seconds * 1e3,
              s.p50_seconds * 1e3, s.p99_seconds * 1e3, s.max_seconds * 1e3);
  };
  add_stage("queue_wait", stats.queue_wait);
  add_stage("form", stats.form);
  add_stage("solve", stats.solve);
  add_stage("reconstruct", stats.reconstruct);
  add_stage("end_to_end", stats.end_to_end);
  table.write_pretty(std::cout);

  // Resilience counters: all zero on a healthy run; retries/fallback rungs/
  // breaker events say where the serving layer absorbed trouble.
  std::cout << "resilience: retries " << stats.retries << " (successful "
            << stats.retry_successes << "), solver not-converged "
            << stats.solver_not_converged << ", fallback rungs tikhonov "
            << stats.fallback_tikhonov << " dense " << stats.fallback_dense
            << ", breaker opened " << stats.breaker_opened_events
            << " (open shapes " << stats.breaker_open_shapes
            << "), load-shed " << stats.rejected_load_shed
            << ", degraded entered " << stats.degraded_entered
            << ", invalid input " << stats.invalid_input + stats.rejected_invalid
            << "\n";
  // Input-quality counters: masked / auto-masked Z entries, robustly
  // down-weighted outliers, degraded completions, numerical breakdowns.
  std::cout << "quality: masked entries " << stats.masked_entries << " (auto "
            << stats.auto_masked_entries << "), outliers down-weighted "
            << stats.outliers_downweighted << ", degraded results "
            << stats.degraded_results << ", numerical breakdowns "
            << stats.numerical_breakdowns << "\n";
  return 0;
}

/// "host:port", "[v6host]:port", or bare "port" (host defaults to
/// 127.0.0.1). IPv6 literals need the brackets: "::1:5555" is ambiguous,
/// "[::1]:5555" is not.
std::pair<std::string, std::uint16_t> parse_endpoint(const std::string& spec) {
  std::string host = "127.0.0.1";
  std::string port_str = spec;
  if (!spec.empty() && spec.front() == '[') {
    const std::size_t close = spec.find(']');
    PARMA_REQUIRE(close != std::string::npos && close + 1 < spec.size() &&
                      spec[close + 1] == ':',
                  "serve-net: bracketed endpoints look like [host]:port");
    host = spec.substr(1, close - 1);
    port_str = spec.substr(close + 2);
  } else if (const std::size_t colon = spec.rfind(':'); colon != std::string::npos) {
    PARMA_REQUIRE(spec.find(':') == colon,
                  "serve-net: IPv6 endpoints need brackets: [host]:port");
    host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  const Index port = parse_index(port_str, "port");
  PARMA_REQUIRE(port >= 0 && port <= 65535, "serve-net: port out of range");
  return {host, static_cast<std::uint16_t>(port)};
}

int cmd_serve_net(const Args& args) {
  const auto listen_spec = args.flag("listen");
  const auto connect_spec = args.flag("connect");
  if (static_cast<bool>(listen_spec) == static_cast<bool>(connect_spec)) {
    return usage();  // exactly one of --listen / --connect
  }

  if (listen_spec) {
    const auto [host, port] = parse_endpoint(*listen_spec);
    serve::ServerOptions sopts;
    if (const auto w = args.flag("workers")) sopts.workers = parse_index(*w, "workers");
    if (const auto q = args.flag("queue")) sopts.queue_capacity = parse_index(*q, "queue");
    if (const auto b = args.flag("batch")) sopts.max_batch = parse_index(*b, "batch");
    serve::Server server(sopts);

    net::ListenerOptions lopts;
    lopts.host = host;
    lopts.port = port;
    net::Listener listener(server, lopts);
    listener.start();
    std::cout << "serving on " << host << ":" << listener.port()
              << " (close stdin to stop)\n";

    // Foreground service loop: the listener's I/O thread does the work; the
    // main thread just waits for the operator to close stdin (or EOF under
    // a pipe) and then tears down in order -- graceful drain (in-flight
    // requests finish and their responses flush), then transport, then
    // pipeline.
    while (std::cin.get() != std::char_traits<char>::eof()) {
    }
    if (!listener.drain(std::chrono::seconds(10))) {
      std::cerr << "drain: stragglers remained after 10 s; cutting them off\n";
    }
    listener.stop();
    server.shutdown();

    const net::ListenerCounters c = listener.counters();
    std::cout << "connections " << c.connections_accepted << " (rejected "
              << c.connections_rejected << "), requests " << c.requests_admitted
              << ", responses " << c.responses_enqueued << " (dropped "
              << c.responses_dropped << "), protocol errors " << c.protocol_errors
              << ", disconnects " << c.disconnects << ", pings " << c.pings
              << ", reaped idle/slowloris/write-stall " << c.reaped_idle << "/"
              << c.reaped_slowloris << "/" << c.reaped_write_stall << "\n";
    return 0;
  }

  const auto [host, port] = parse_endpoint(*connect_spec);
  const Index requests =
      args.flag("requests") ? parse_index(*args.flag("requests"), "requests") : 16;
  const auto seed = static_cast<std::uint64_t>(
      args.flag("seed") ? parse_index(*args.flag("seed"), "seed") : 2022);
  std::vector<Index> shapes;
  for (const std::string& tok : split(args.flag("shapes").value_or("6,8,10"), ',')) {
    shapes.push_back(parse_index(tok, "shapes"));
  }
  PARMA_REQUIRE(!shapes.empty(), "serve-net: --shapes must name at least one size");
  PARMA_REQUIRE(requests >= 1, "serve-net: --requests must be >= 1");

  std::vector<serve::ParametrizeRequest> pending;
  pending.reserve(static_cast<std::size_t>(requests));
  Rng rng(seed);
  for (Index i = 0; i < requests; ++i) {
    const Index n = shapes[static_cast<std::size_t>(i) % shapes.size()];
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    serve::ParametrizeRequest request;
    request.measurement = mea::measure_exact(spec, truth);
    request.options.strategy = core::Strategy::kFineGrained;
    request.options.workers = 2;
    request.options.chunk = 4;
    request.options.keep_system = false;
    request.inverse.max_iterations = 20;
    pending.push_back(std::move(request));
  }

  net::Client client;
  net::ClientOptions copts;
  copts.host = host;
  copts.port = port;
  client.connect(copts);
  std::cout << "connected to " << host << ":" << port << "\n";

  Stopwatch wall;
  std::vector<std::uint64_t> ids;
  ids.reserve(pending.size());
  for (serve::ParametrizeRequest& request : pending) {
    ids.push_back(client.send(request));
  }
  Index ok = 0;
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, std::chrono::seconds(60));
    if (!reply) {
      std::cerr << "request " << id << " timed out\n";
      continue;
    }
    if (reply->is_error) {
      std::cerr << "request " << id << ": protocol error "
                << net::proto_code_name(reply->error.code) << " -- "
                << reply->error.message << "\n";
      continue;
    }
    const auto status = reply->response.status();
    if (status == serve::RequestStatus::kOk) {
      ++ok;
    } else {
      std::cerr << "request " << id << ": "
                << (status ? serve::request_status_name(*status) : "unknown status")
                << (reply->response.message.empty() ? "" : " -- " + reply->response.message)
                << "\n";
    }
  }
  const Real wall_seconds = wall.elapsed_seconds();
  std::cout << "served " << ok << "/" << requests << " requests in " << wall_seconds
            << " s (" << static_cast<Real>(requests) / wall_seconds << " req/s)\n";
  return ok == requests ? 0 : 2;
}

/// The worker binary normally sits next to parma_cli (both are built into
/// build/examples/), so resolve it relative to our own image by default.
std::string default_worker_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "./parma_cluster_worker";
  const std::string self(buf, static_cast<std::size_t>(n));
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "./parma_cluster_worker";
  return self.substr(0, slash + 1) + "parma_cluster_worker";
}

int cmd_serve_cluster(const Args& args) {
  if (!args.positional.empty()) return usage();
  const Index workers = args.flag("cluster-workers")
                            ? parse_index(*args.flag("cluster-workers"), "cluster-workers")
                            : 3;
  const Index requests =
      args.flag("requests") ? parse_index(*args.flag("requests"), "requests") : 24;
  const auto seed = static_cast<std::uint64_t>(
      args.flag("seed") ? parse_index(*args.flag("seed"), "seed") : 2022);
  std::vector<Index> shapes;
  for (const std::string& tok : split(args.flag("shapes").value_or("6,8,10"), ',')) {
    shapes.push_back(parse_index(tok, "shapes"));
  }
  PARMA_REQUIRE(workers >= 1, "serve-cluster: --cluster-workers must be >= 1");
  PARMA_REQUIRE(!shapes.empty(), "serve-cluster: --shapes must name at least one size");
  PARMA_REQUIRE(requests >= 1, "serve-cluster: --requests must be >= 1");

  cluster::RouterOptions ropts;
  if (const auto r = args.flag("replicas")) {
    ropts.replicas = static_cast<std::size_t>(parse_index(*r, "replicas"));
  }
  cluster::Router router(ropts);

  cluster::SupervisorOptions sopts;
  sopts.worker_binary = args.flag("worker-bin").value_or(default_worker_binary());
  sopts.workers = static_cast<int>(workers);
  if (const auto w = args.flag("workers")) sopts.server_workers = parse_index(*w, "workers");
  if (const auto q = args.flag("queue")) {
    sopts.queue_capacity = static_cast<std::size_t>(parse_index(*q, "queue"));
  }
  if (const auto b = args.flag("batch")) {
    sopts.max_batch = static_cast<std::size_t>(parse_index(*b, "batch"));
  }
  cluster::Supervisor supervisor(
      sopts, [&router](const cluster::WorkerEndpoint& e) { router.worker_up(e); },
      [&router](Index id) { router.worker_down(id); });
  supervisor.start();
  std::cout << "cluster up: " << router.live_workers() << " workers ("
            << ropts.replicas << "-way placement), worker binary "
            << sopts.worker_binary << "\n";

  std::vector<serve::ParametrizeRequest> pending;
  pending.reserve(static_cast<std::size_t>(requests));
  Rng rng(seed);
  for (Index i = 0; i < requests; ++i) {
    const Index n = shapes[static_cast<std::size_t>(i) % shapes.size()];
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    serve::ParametrizeRequest request;
    request.measurement = mea::measure_exact(spec, truth);
    request.options.strategy = core::Strategy::kFineGrained;
    request.options.workers = 2;
    request.options.chunk = 4;
    request.options.keep_system = false;
    request.inverse.max_iterations = 20;
    pending.push_back(std::move(request));
  }

  // Optional mid-run chaos: SIGKILL one worker after half the requests so an
  // operator can watch failover + supervised restart happen live.
  const std::optional<std::string> kill_flag = args.flag("kill-worker");
  const Index kill_after = static_cast<Index>(pending.size() / 2);

  Stopwatch wall;
  Index ok = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (kill_flag && static_cast<Index>(i) == kill_after) {
      const Index victim = parse_index(*kill_flag, "kill-worker");
      std::cout << "killing worker " << victim << " mid-run\n";
      supervisor.kill_worker(victim);
    }
    const cluster::Router::RouteResult routed = router.dispatch(pending[i]);
    if (routed.ok() && routed.reply.response.status() == serve::RequestStatus::kOk) {
      ++ok;
    } else if (routed.reply.transport != net::ClientError::kNone) {
      std::cerr << "request " << i << ": transport "
                << net::client_error_name(routed.reply.transport) << " after "
                << routed.attempts << " attempts\n";
    } else if (routed.reply.is_error) {
      std::cerr << "request " << i << ": protocol error "
                << net::proto_code_name(routed.reply.error.code) << "\n";
    } else {
      const auto status = routed.reply.response.status();
      std::cerr << "request " << i << ": "
                << (status ? serve::request_status_name(*status) : "unknown status")
                << "\n";
    }
  }
  const Real wall_seconds = wall.elapsed_seconds();

  std::size_t reporting = 0;
  const serve::Stats stats = router.cluster_stats(&reporting);
  const cluster::RouterCounters rc = router.counters();
  std::cout << "served " << ok << "/" << requests << " requests in " << wall_seconds
            << " s (" << static_cast<Real>(requests) / wall_seconds
            << " req/s) across " << reporting << " reporting workers\n";
  std::cout << "routing: dispatched " << rc.dispatched << ", failovers "
            << rc.failovers << ", breaker skips/opened " << rc.breaker_skips << "/"
            << rc.breaker_opened << ", exhausted " << rc.exhausted
            << ", workers lost/joined " << rc.workers_lost << "/"
            << rc.workers_joined << ", restarts " << supervisor.restarts() << "\n";
  std::cout << "cluster-wide: " << stats.submitted << " submitted / "
            << stats.completed_ok << " ok, "
            << stats.batches << " batches, mean batch " << stats.mean_batch_size
            << ", queue high-water " << stats.queue_high_water << "\n";
  Table table({"stage", "count", "mean_ms", "p50_ms", "p99_ms", "max_ms"});
  const auto add_stage = [&table](const char* name, const serve::StageStats& s) {
    table.add(name, static_cast<std::uint64_t>(s.count), s.mean_seconds * 1e3,
              s.p50_seconds * 1e3, s.p99_seconds * 1e3, s.max_seconds * 1e3);
  };
  add_stage("queue_wait", stats.queue_wait);
  add_stage("form", stats.form);
  add_stage("solve", stats.solve);
  add_stage("reconstruct", stats.reconstruct);
  add_stage("end_to_end", stats.end_to_end);
  table.write_pretty(std::cout);

  supervisor.stop();
  return ok == requests ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse(argc, argv);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "topology") return cmd_topology(args);
    if (command == "form") return cmd_form(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "render") return cmd_render(args);
    if (command == "serve-bench") return cmd_serve_bench(args);
    if (command == "serve-net") return cmd_serve_net(args);
    if (command == "serve-cluster") return cmd_serve_cluster(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// Fig. 8 reproduction: CDFs of memory usage during equation formation, per
// device size and parallelism level.
//
// Paper claims to reproduce: (i) "the peak memory usage is about the same
// regardless of data parallelism"; (ii) at large scales higher parallelism
// means the run spends a smaller fraction of its life at low footprint
// (k = 2 sits at low memory ~60% of the time vs ~30% for k = 4 at n = 100);
// (iii) peak memory grows with n and stays under ~20 GB at n = 100.
//
// The trace model: each formed (pair x category) equation block becomes live
// at its task's virtual completion and persists to the end of the run, on
// top of the measurement baseline; a non-scaling terminal phase (the
// write/solve that follows formation) holds peak memory. Output: CDF knots
// per (n, k) plus the summary quantiles the paper narrates.
#include "bench/bench_util.hpp"

using namespace parma;

int main() {
  const parallel::CostModel model;
  bench::print_cost_model(model);

  Table knots({"series", "n", "k", "bytes", "time_fraction"});
  Table summary({"n", "k", "peak_bytes", "frac_time_below_half_peak"});

  const Index ks[] = {2, 4, 8, 16, 32};
  for (const Index n : bench::device_sweep()) {
    const core::Engine engine = bench::make_engine(n);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;
    options.chunk = 4;
    options.timing_mode = core::TimingMode::kVirtualReplay;  // memory trace needs the timeline
    options.keep_system = false;
    const core::FormationResult formation = engine.form_equations(options);
    const std::uint64_t baseline =
        2 * static_cast<std::uint64_t>(n * n) * sizeof(Real);  // Z and U matrices

    // The terminal write phase does not shrink with k; bill it at the
    // single-writer streaming rate (~25 bytes/term => bytes at ~200 MB/s).
    const Real tail_seconds =
        static_cast<Real>(formation.equation_bytes) / 200.0e6;

    for (const Index k : ks) {
      const parallel::ScheduleResult schedule =
          parallel::schedule_dynamic(formation.tasks, k, /*chunk=*/4, model);
      auto trace = schedule.memory_trace(formation.tasks, baseline);
      trace.push_back({schedule.makespan_seconds + tail_seconds, trace.back().bytes});
      const MemoryCdf cdf(std::move(trace));

      // Ten evenly spaced knots keep the CSV plottable without drowning it.
      const auto& points = cdf.points();
      const std::size_t stride = std::max<std::size_t>(points.size() / 10, 1);
      for (std::size_t p = 0; p < points.size(); p += stride) {
        knots.add("n" + std::to_string(n) + "_k" + std::to_string(k), n, k,
                  points[p].first, points[p].second);
      }
      summary.add(n, k, cdf.peak_bytes(),
                  cdf.fraction_at_or_below(cdf.peak_bytes() / 2));
    }
  }
  bench::emit(summary, "fig8_memory_summary");
  knots.save_csv(bench::results_dir() + "/fig8_memory_cdf.csv");
  std::cout << "full CDF knots saved: " << bench::results_dir()
            << "/fig8_memory_cdf.csv\n";

  // PARMA_RSS=1: additionally sample REAL resident-set size during one fully
  // materialized formation (how the paper measured its Python processes).
  // Only meaningful on hosts with memory to spare; n is kept moderate.
  if (const char* env = std::getenv("PARMA_RSS"); env != nullptr && std::string(env) == "1") {
    const Index n = 40;
    const core::Engine engine = bench::make_engine(n);
    RssSampler sampler(0.005);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;
    options.keep_system = true;
    const core::FormationResult r = engine.form_equations(options);
    const MemoryCdf rss_cdf(sampler.stop());
    std::cout << "\nreal-RSS run (n=" << n << "): peak " << rss_cdf.peak_bytes() / 1.0e6
              << " MB sampled vs " << r.equation_bytes / 1.0e6
              << " MB modeled equation footprint\n";
  }

  std::cout << "\nexpected shape (paper Fig. 8): per n, peak_bytes identical across k;"
               "\nfrac_time_below_half_peak shrinks as k grows (shorter warm-up)"
               "\nand the effect is pronounced for n >= 40.\n";
  return 0;
}

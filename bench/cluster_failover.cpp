// Failover goodput bench: a supervised 3-worker cluster serves a request
// storm while one worker is SIGKILLed mid-run and supervised back to life.
// The gate: >= 90% of requests must still complete kOk end to end (goodput),
// and every completed reply must carry a well-formed field.
//
//   cluster_failover [--quick]
//
// --quick shrinks the storm for the CI gate in scripts/check.sh; the full
// run doubles the request count for a steadier goodput estimate. Emits the
// usual CSV + pretty table into bench_results/.
#include <filesystem>
#include <fstream>
#include <string>

#include "bench/bench_util.hpp"
#include "cluster/router.hpp"
#include "cluster/supervisor.hpp"

#ifndef PARMA_CLUSTER_WORKER_BIN
#error "PARMA_CLUSTER_WORKER_BIN must name the worker binary"
#endif

using namespace parma;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const Index requests = quick ? 48 : 96;
  const Index kill_at = requests / 3;       // mid-storm, before the restart lands
  const Index second_kill_at = 2 * requests / 3;

  cluster::RouterOptions ropts;
  ropts.attempt_timeout = std::chrono::seconds(30);
  cluster::Router router(ropts);
  cluster::SupervisorOptions sopts;
  sopts.worker_binary = PARMA_CLUSTER_WORKER_BIN;
  sopts.workers = 3;
  sopts.server_workers = 1;
  cluster::Supervisor supervisor(
      sopts, [&router](const cluster::WorkerEndpoint& e) { router.worker_up(e); },
      [&router](Index id) { router.worker_down(id); });
  supervisor.start();

  // Pre-generate the storm so the timed section is routing + serving only.
  std::vector<serve::ParametrizeRequest> pending;
  pending.reserve(static_cast<std::size_t>(requests));
  Rng rng(2022);
  const std::vector<Index> shapes = {6, 8, 10};
  for (Index i = 0; i < requests; ++i) {
    const Index n = shapes[static_cast<std::size_t>(i) % shapes.size()];
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    serve::ParametrizeRequest request;
    request.measurement = mea::measure_exact(spec, truth);
    request.options.strategy = core::Strategy::kFineGrained;
    request.options.workers = 2;
    request.options.chunk = 4;
    request.options.keep_system = false;
    request.inverse.max_iterations = 20;
    pending.push_back(std::move(request));
  }

  Stopwatch wall;
  Index ok = 0;
  std::uint64_t transport_failures = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    // One kill while the fleet is whole, one while a restart may still be in
    // flight: the router must failover through both windows.
    if (static_cast<Index>(i) == kill_at) supervisor.kill_worker(0);
    if (static_cast<Index>(i) == second_kill_at) supervisor.kill_worker(1);
    const cluster::Router::RouteResult routed = router.dispatch(pending[i]);
    if (routed.ok() && routed.reply.response.status() == serve::RequestStatus::kOk &&
        routed.reply.response.has_field()) {
      ++ok;
    } else if (routed.reply.transport != net::ClientError::kNone) {
      ++transport_failures;
    }
  }
  const Real wall_seconds = wall.elapsed_seconds();
  supervisor.stop();

  const cluster::RouterCounters rc = router.counters();
  const Real goodput = static_cast<Real>(ok) / static_cast<Real>(requests);
  Table table({"metric", "value"});
  table.add("requests", static_cast<std::uint64_t>(requests));
  table.add("ok", static_cast<std::uint64_t>(ok));
  table.add("goodput", goodput);
  table.add("wall_seconds", wall_seconds);
  table.add("req_per_s", static_cast<Real>(requests) / wall_seconds);
  table.add("failovers", rc.failovers);
  table.add("breaker_opened", rc.breaker_opened);
  table.add("breaker_skips", rc.breaker_skips);
  table.add("exhausted", rc.exhausted);
  table.add("transport_failures", transport_failures);
  table.add("workers_lost", rc.workers_lost);
  table.add("workers_joined", rc.workers_joined);
  table.add("restarts", supervisor.restarts());
  bench::emit(table, "cluster_failover");

  const std::string json_path = bench::results_dir() + "/cluster_failover.json";
  std::filesystem::create_directories(
      std::filesystem::path(json_path).parent_path());
  {
    std::ofstream os(json_path);
    os << "{\n  \"bench\": \"cluster_failover\",\n  \"requests\": " << requests
       << ",\n  \"completed_ok\": " << ok << ",\n  \"goodput\": " << goodput
       << ",\n  \"wall_seconds\": " << wall_seconds
       << ",\n  \"failovers\": " << rc.failovers
       << ",\n  \"breaker_opened\": " << rc.breaker_opened
       << ",\n  \"exhausted\": " << rc.exhausted
       << ",\n  \"workers_lost\": " << rc.workers_lost
       << ",\n  \"workers_joined\": " << rc.workers_joined
       << ",\n  \"restarts\": " << supervisor.restarts()
       << ",\n  \"meets_90pct_floor\": " << (goodput >= 0.9 ? "true" : "false")
       << "\n}\n";
  }
  std::cout << "saved: " << json_path << "\n";

  if (goodput < 0.90) {
    std::cerr << "FAIL: goodput " << goodput << " < 0.90 with one worker killed\n";
    return 1;
  }
  if (rc.workers_lost < 2 || supervisor.restarts() < 1) {
    std::cerr << "FAIL: chaos did not land (lost " << rc.workers_lost
              << ", restarts " << supervisor.restarts() << ")\n";
    return 1;
  }
  std::cout << "\nPASS: goodput " << goodput << " >= 0.90 through " << rc.workers_lost
            << " worker deaths and " << supervisor.restarts() << " supervised restarts\n";
  return 0;
}

// Dirty-input accuracy bench: what corrupted measurements cost the
// reconstruction, and what the robustness stack buys back.
//
// Two corruption families, both seeded via fault::Injector so the sweep is
// deterministic and reproducible:
//
//   detectable   the injector's own measurement faults -- dropped entries
//                (NaN) and noised entries (sign flip). The robust+masked
//                pipeline auto-masks them (mask_invalid_entries) and solves
//                with the Huber loss; the plain least-squares path refuses
//                the payload with a typed diagnostic (counted as a failed
//                solve, error reported as the sentinel 1e9).
//   silent       gross multiplicative outliers (Z *= 25) that stay finite
//                and positive, so no mask can catch them. The robust
//                pipeline runs the redescending Tukey loss; plain least
//                squares chases the outliers and diverges.
//
// Per (family, n, corruption fraction) the bench reports the median-of-seeds
// median reconstruction error for the fault-free, robust, and plain
// pipelines. Output: pretty table + CSV via bench_util, plus
// bench_results/robust_accuracy.json.
//
// `--quick` trims the sweep for CI and turns the ISSUE's acceptance criteria
// into exit-code gates:
//   * robust+masked median error at 10% detectable corruption stays within
//     2x of the fault-free error at every n in the sweep;
//   * the plain least-squares path is measurably worse on the same corrupted
//     input (refusal on the detectable family, > 2x the robust error on the
//     silent family);
//   * the preconditioned fallback ladder (block-Jacobi CG) produces the same
//     IRLS convergence classification as the Jacobi ladder on every dirty
//     payload -- preconditioning changes iteration counts, never outcomes.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"

using namespace parma;

namespace {

constexpr Real kFailedSolve = 1e9;  ///< JSON-safe sentinel for a typed refusal

struct SweepPoint {
  std::string family;
  Index n = 0;
  Real fraction = 0.0;
  Real clean_err = 0.0;   ///< fault-free pipeline, same scenario/noise
  Real robust_err = 0.0;  ///< robust+masked (detectable) / Tukey (silent)
  Real plain_err = 0.0;   ///< plain least squares on the corrupted payload
  Index corrupted = 0;    ///< corrupted entries, summed over seeds
  /// Seeds where the preconditioned fallback ladder classified the IRLS solve
  /// differently (converged flag or termination reason) than the Jacobi
  /// ladder on the same dirty payload. Must stay 0: preconditioning may not
  /// change convergence classification. Checked at the gate fraction only.
  Index precond_classification_mismatches = 0;
};

Real median_abs_rel_error(const circuit::ResistanceGrid& recovered,
                          const circuit::ResistanceGrid& truth) {
  std::vector<Real> errs;
  errs.reserve(truth.flat().size());
  for (std::size_t e = 0; e < truth.flat().size(); ++e) {
    errs.push_back(std::fabs(recovered.flat()[e] - truth.flat()[e]) / truth.flat()[e]);
  }
  std::nth_element(errs.begin(), errs.begin() + errs.size() / 2, errs.end());
  return errs[errs.size() / 2];
}

Real median_of(std::vector<Real> values) {
  std::nth_element(values.begin(), values.begin() + values.size() / 2, values.end());
  return values[values.size() / 2];
}

struct Scenario {
  circuit::ResistanceGrid truth{1, 1};
  mea::Measurement measurement;
};

Scenario make_scenario(Index n, std::uint64_t seed) {
  Rng rng(seed);
  const mea::DeviceSpec spec = mea::square_device(n);
  Scenario s{mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng), {}};
  mea::MeasurementOptions mopt;
  mopt.noise_fraction = 0.005;
  s.measurement = mea::measure(spec, s.truth, mopt, rng);
  return s;
}

// Injector-seeded corruption of `fraction` of the entries, split between the
// drop (NaN) and noise (negate / x25) faults. Returns the corrupted count.
Index corrupt(mea::Measurement& m, Real fraction, std::uint64_t seed, bool detectable) {
  fault::Injector injector(seed);
  fault::Schedule schedule;
  schedule.probability = fraction / 2.0;
  injector.arm(fault::Point::kDropMeasurement, schedule);
  injector.arm(fault::Point::kNoiseMeasurement, schedule);
  Index corrupted = 0;
  for (Index i = 0; i < m.z.rows(); ++i) {
    for (Index j = 0; j < m.z.cols(); ++j) {
      if (injector.should_fire(fault::Point::kDropMeasurement)) {
        m.z(i, j) = detectable ? std::numeric_limits<Real>::quiet_NaN() : m.z(i, j) * 25.0;
        ++corrupted;
      } else if (injector.should_fire(fault::Point::kNoiseMeasurement)) {
        m.z(i, j) = detectable ? -m.z(i, j) : m.z(i, j) * 25.0;
        ++corrupted;
      }
    }
  }
  return corrupted;
}

Real solve_err(const mea::Measurement& m, const circuit::ResistanceGrid& truth,
               const solver::InverseOptions& options) {
  try {
    const solver::InverseResult result = solver::recover_resistances(m, options);
    const Real err = median_abs_rel_error(result.recovered, truth);
    return std::isfinite(err) ? err : kFailedSolve;
  } catch (const ContractError&) {
    return kFailedSolve;
  } catch (const NumericalError&) {
    return kFailedSolve;
  }
}

/// Runs the robust solve through the fallback ladder twice -- inline-Jacobi
/// CG vs the block-Jacobi preconditioner -- and reports whether both produce
/// the same IRLS convergence classification (converged flag + termination
/// reason, with typed refusals folded in).
bool classification_matches(const mea::Measurement& m,
                            const solver::InverseOptions& robust) {
  auto classify = [&](linalg::PreconditionerKind kind) -> std::pair<int, bool> {
    solver::InverseOptions options = robust;
    options.use_fallback_ladder = true;
    options.ladder_preconditioner = kind;
    try {
      const solver::InverseResult result = solver::recover_resistances(m, options);
      return {static_cast<int>(result.termination), result.converged};
    } catch (const ContractError&) {
      return {-1, false};
    } catch (const NumericalError&) {
      return {-2, false};
    }
  };
  return classify(linalg::PreconditionerKind::kJacobi) ==
         classify(linalg::PreconditionerKind::kBlockJacobi);
}

SweepPoint run_point(const std::string& family, Index n, Real fraction, int seeds) {
  const bool detectable = family == "detectable";
  SweepPoint point;
  point.family = family;
  point.n = n;
  point.fraction = fraction;

  solver::InverseOptions plain;
  plain.max_iterations = 60;
  solver::InverseOptions robust = plain;
  robust.robust.loss = detectable ? solver::RobustLoss::kHuber : solver::RobustLoss::kTukey;

  std::vector<Real> clean_errs, robust_errs, plain_errs;
  for (int s = 1; s <= seeds; ++s) {
    const Scenario scenario = make_scenario(n, 950 + static_cast<std::uint64_t>(s));
    clean_errs.push_back(solve_err(scenario.measurement, scenario.truth, plain));

    mea::Measurement dirty = scenario.measurement;
    point.corrupted += corrupt(dirty, fraction,
                               static_cast<std::uint64_t>(s) * 7919 + 17, detectable);
    plain_errs.push_back(solve_err(dirty, scenario.truth, plain));

    mea::Measurement masked = dirty;
    if (detectable) mea::mask_invalid_entries(masked);
    robust_errs.push_back(solve_err(masked, scenario.truth, robust));

    // The preconditioned-path gate (checked at the gate fraction to bound
    // cost): same classification with and without the block preconditioner.
    if (fraction == 0.1 && !classification_matches(masked, robust)) {
      ++point.precond_classification_mismatches;
    }
  }
  point.clean_err = median_of(clean_errs);
  point.robust_err = median_of(robust_errs);
  point.plain_err = median_of(plain_errs);
  return point;
}

void write_json(const std::vector<SweepPoint>& points, const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  os << "{\n  \"bench\": \"robust_accuracy\",\n"
     << "  \"failed_solve_sentinel\": " << kFailedSolve << ",\n"
     << "  \"criterion\": \"robust+masked within 2x of fault-free at 10% corruption\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    os << "    {\"family\": \"" << p.family << "\", \"n\": " << p.n
       << ", \"fraction\": " << p.fraction << ", \"corrupted\": " << p.corrupted
       << ", \"clean_err\": " << p.clean_err << ", \"robust_err\": " << p.robust_err
       << ", \"plain_err\": " << p.plain_err
       << ", \"precond_classification_mismatches\": "
       << p.precond_classification_mismatches << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<Index> sizes =
      quick ? std::vector<Index>{8, 16}
            : (bench::full_sweep() ? std::vector<Index>{8, 10, 12, 14, 16, 32}
                                   : std::vector<Index>{8, 12, 16, 32});
  const std::vector<Real> fractions =
      quick ? std::vector<Real>{0.1} : std::vector<Real>{0.1, 0.2, 0.3};
  const int seeds = 3;

  std::vector<SweepPoint> points;
  for (const std::string& family : {std::string("detectable"), std::string("silent")}) {
    for (Index n : sizes) {
      for (Real fraction : fractions) {
        points.push_back(run_point(family, n, fraction, seeds));
      }
    }
  }

  Table table({"family", "n", "fraction", "corrupted", "clean_err", "robust_err",
               "plain_err", "ratio_vs_clean"});
  for (const SweepPoint& p : points) {
    table.add(p.family, p.n, p.fraction, p.corrupted, p.clean_err, p.robust_err,
              p.plain_err, p.robust_err / p.clean_err);
  }
  bench::emit(table, "robust_accuracy");

  const std::string json_path = bench::results_dir() + "/robust_accuracy.json";
  write_json(points, json_path);
  std::cout << "saved: " << json_path << "\n";

  // Acceptance gates (ISSUE 5): enforced in --quick so scripts/check.sh fails
  // loudly when the robustness stack regresses.
  int failures = 0;
  for (const SweepPoint& p : points) {
    if (p.fraction != 0.1) continue;
    if (p.precond_classification_mismatches > 0) {
      std::cout << "GATE FAIL: " << p.family << " n=" << p.n
                << " preconditioned ladder changed the IRLS convergence "
                   "classification on "
                << p.precond_classification_mismatches << " seed(s)\n";
      ++failures;
    }
    if (p.family == "detectable") {
      if (p.robust_err > 2.0 * p.clean_err + 1e-3) {
        std::cout << "GATE FAIL: detectable n=" << p.n << " robust_err=" << p.robust_err
                  << " exceeds 2x clean_err=" << p.clean_err << "\n";
        ++failures;
      }
      if (p.plain_err < kFailedSolve && p.plain_err < 2.0 * p.robust_err) {
        std::cout << "GATE FAIL: detectable n=" << p.n
                  << " plain least squares not measurably worse (plain=" << p.plain_err
                  << ", robust=" << p.robust_err << ")\n";
        ++failures;
      }
    } else {
      if (p.plain_err < 2.0 * p.robust_err) {
        std::cout << "GATE FAIL: silent n=" << p.n
                  << " plain least squares not measurably worse (plain=" << p.plain_err
                  << ", robust=" << p.robust_err << ")\n";
        ++failures;
      }
    }
  }
  if (quick && failures > 0) return 1;
  if (failures == 0) {
    std::cout << "\ngates: robust+masked within 2x of fault-free at 10% corruption, "
                 "plain least squares measurably worse, preconditioned ladder "
                 "classification unchanged -- all hold.\n";
  }
  return 0;
}

// Formulation ablation: the paper's core O(n^n) -> O(n^3) claim, measured.
//
//  * constraint census: paths (n^(n-1) per pair, n^(n+1) total) vs joints
//    (2n per pair, 2n^3 total) -- Section IV-A's "the saving is significant";
//  * measured formation time of both, where the exponential one is feasible;
//  * accuracy: the path-aggregation estimate of Z vs the exact effective
//    resistance (the joint formulation is exact; the baseline is not).
#include <cmath>

#include "bench/bench_util.hpp"

using namespace parma;

int main() {
  Table census({"n", "paths_per_pair", "total_paths", "joints_per_pair",
                "total_joint_equations"});
  for (Index n = 2; n <= 10; ++n) {
    const std::uint64_t per_pair = circuit::count_paths(n, n);
    census.add(n, per_pair, per_pair * static_cast<std::uint64_t>(n * n), 2 * n,
               2 * n * n * n);
  }
  bench::emit(census, "ablation_census");
  std::cout << "\n\n";

  Table accuracy({"n", "max_rel_error_path_aggregation", "max_rel_error_joint"});
  for (Index n = 2; n <= 5; ++n) {
    Rng rng(900 + static_cast<std::uint64_t>(n));
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    const linalg::DenseMatrix exact = circuit::measure_all_pairs(truth);
    const linalg::DenseMatrix joint = equations::forward_model(truth, spec.drive_voltage);
    Real path_err = 0.0;
    Real joint_err = 0.0;
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) {
        const Real estimate = circuit::aggregate_parallel_paths(truth, i, j);
        path_err = std::max(path_err, std::abs(estimate - exact(i, j)) / exact(i, j));
        joint_err =
            std::max(joint_err, std::abs(joint(i, j) - exact(i, j)) / exact(i, j));
      }
    }
    accuracy.add(n, path_err, joint_err);
  }
  bench::emit(accuracy, "ablation_accuracy");
  std::cout << "\nthe joint-constraint model is exact (error at machine precision);"
               "\ntreating paths as independent parallel branches is not, and the"
               "\nerror grows with n -- the reformulation is lossless, the baseline"
               "\nisn't even at the sizes it can reach.\n";
  return 0;
}

// Scheduling ablations for the design choices DESIGN.md calls out:
//  A. Task granularity -- the Betti-aware fine (pair x category) partition vs
//     the coarse (row x category) partition, both dynamically scheduled at
//     k = 32. Isolates the value of the topological decomposition itself.
//  B. Work stealing on/off -- Parallel (category-bound threads) vs Balanced
//     Parallel (LPT rebalance) at 4 workers. Isolates Section IV-C1.
//  C. Chunk size -- fine-grained dynamic self-scheduling with chunk in
//     {1, 4, 16, 64} at k = 32. The chunk-claim overhead vs balance trade.
#include "bench/bench_util.hpp"

using namespace parma;

int main() {
  const parallel::CostModel model;
  bench::print_cost_model(model);

  // --- A. Granularity --------------------------------------------------------
  // What parallelism can each decomposition *expose*? Overheads are zeroed so
  // the comparison isolates partitioning: the Betti-aware fine partition has
  // 4n^2 units (one per endpoint pair per category, cf. the (n-1)^2
  // independent loops), the coarse one only 4n row bundles -- so the coarse
  // speedup saturates near 4n workers while fine keeps scaling.
  parallel::CostModel ideal;  // zero overheads
  ideal.worker_spawn_overhead = 0.0;
  ideal.task_dispatch_overhead = 0.0;
  ideal.chunk_claim_overhead = 0.0;
  ideal.rebalance_overhead = 0.0;

  Table granularity({"series", "n", "k", "speedup_vs_serial"});
  for (const Index n : {Index{20}, Index{40}, Index{60}}) {
    const core::Engine engine = bench::make_engine(n);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;  // builds fine tasks
    options.timing_mode = core::TimingMode::kVirtualReplay;
    options.keep_system = false;
    const core::FormationResult fine = engine.form_equations(options);
    options.strategy = core::Strategy::kBalancedParallel;  // builds coarse tasks
    const core::FormationResult coarse = engine.form_equations(options);
    const Real work = fine.schedule.total_work_seconds;

    for (const Index k : {Index{32}, Index{128}, Index{512}}) {
      granularity.add(
          "fine-pair-tasks", n, k,
          work / parallel::schedule_dynamic(fine.tasks, k, 1, ideal).makespan_seconds);
      granularity.add(
          "coarse-row-tasks", n, k,
          work / parallel::schedule_dynamic(coarse.tasks, k, 1, ideal).makespan_seconds);
    }
  }
  bench::emit(granularity, "ablation_granularity");
  std::cout << "\nfine tasks expose ~4n^2 units vs 4n coarse ones: at k = 512 the"
               "\ncoarse partition's speedup is pinned near its 4n task count while"
               "\nthe fine partition keeps scaling -- the value of decomposing along"
               "\nthe homology classes rather than device rows.\n\n";

  // --- B. Work stealing -------------------------------------------------------
  Table stealing({"series", "n", "seconds", "moved_tasks"});
  for (const Index n : bench::device_sweep(60)) {
    const core::Engine engine = bench::make_engine(n);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kParallel;
    options.workers = 4;
    options.timing_mode = core::TimingMode::kVirtualReplay;
    options.keep_system = false;
    const core::FormationResult r = engine.form_equations(options);
    const auto bound = parallel::schedule_by_category(r.tasks, 4, model);
    const auto stolen = parallel::schedule_balanced_lpt(r.tasks, 4, model);
    stealing.add("category-bound", n, bound.makespan_seconds, bound.moved_tasks);
    stealing.add("work-stealing", n, stolen.makespan_seconds, stolen.moved_tasks);
  }
  bench::emit(stealing, "ablation_work_stealing");
  std::cout << "\nthe intermediate categories hold ~n times the terminal categories'"
               "\nwork (the paper's cubic skew); stealing converts the 2-busy/2-idle"
               "\npattern into ~4-busy.\n\n";

  // --- C. Chunk size -----------------------------------------------------------
  Table chunking({"series", "n", "seconds"});
  for (const Index n : bench::device_sweep(60)) {
    const core::Engine engine = bench::make_engine(n);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;
    options.timing_mode = core::TimingMode::kVirtualReplay;
    options.keep_system = false;
    const core::FormationResult r = engine.form_equations(options);
    for (const Index chunk : {Index{1}, Index{4}, Index{16}, Index{64}}) {
      chunking.add("chunk=" + std::to_string(chunk), n,
                   parallel::schedule_dynamic(r.tasks, 32, chunk, model).makespan_seconds);
    }
  }
  bench::emit(chunking, "ablation_chunking");
  std::cout << "\nsmall chunks pay claim overhead; large chunks approach static"
               "\npartitioning and lose late-run balance. chunk=4 is the default.\n";
  return 0;
}

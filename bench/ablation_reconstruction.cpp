// Reconstruction-method ablation: Parma's exact nonlinear recovery vs the
// Section-I "conventional approaches" (linear back projection, Tikhonov,
// Landweber), on the same exact forward model.
//
// Reports max relative reconstruction error and wall time per method across
// device sizes and noise levels -- quantifying both the accuracy gap and the
// ill-posedness (error growth under noise) the paper cites as motivation.
#include "bench/bench_util.hpp"

using namespace parma;

namespace {

Real max_rel_error(const circuit::ResistanceGrid& got, const circuit::ResistanceGrid& want) {
  Real worst = 0.0;
  for (std::size_t e = 0; e < got.flat().size(); ++e) {
    worst = std::max(worst, std::abs(got.flat()[e] - want.flat()[e]) / want.flat()[e]);
  }
  return worst;
}

}  // namespace

int main() {
  Table table({"method", "n", "noise", "max_rel_error", "seconds"});

  for (const Index n : {Index{6}, Index{10}}) {
    for (const Real noise : {0.0, 0.005, 0.02}) {
      Rng rng(7000 + static_cast<std::uint64_t>(n) + static_cast<std::uint64_t>(noise * 1e4));
      const mea::DeviceSpec spec = mea::square_device(n);
      mea::GeneratorOptions gen;
      gen.jitter_fraction = 0.0;
      gen.anomalies.push_back({static_cast<Real>(n) / 2.0, static_cast<Real>(n) / 3.0, 1.0,
                               1.0, 10000.0});
      const circuit::ResistanceGrid truth = mea::generate_field(spec, gen, rng);
      mea::MeasurementOptions mopt;
      mopt.noise_fraction = noise;
      const mea::Measurement m = mea::measure(spec, truth, mopt, rng);

      {
        Stopwatch clock;
        solver::InverseOptions options;
        options.max_iterations = 60;
        const auto result = solver::recover_resistances(m, options);
        table.add("parma-lm", n, noise, max_rel_error(result.recovered, truth),
                  clock.elapsed_seconds());
      }
      Stopwatch sens_clock;
      const solver::SensitivityModel model = solver::build_sensitivity(m, 2000.0);
      const Real sens_seconds = sens_clock.elapsed_seconds();
      {
        Stopwatch clock;
        const auto grid = solver::linear_back_projection(m, model);
        table.add("back-projection", n, noise, max_rel_error(grid, truth),
                  sens_seconds + clock.elapsed_seconds());
      }
      {
        Stopwatch clock;
        const auto grid = solver::tikhonov_reconstruction(m, model, 1e-3);
        table.add("tikhonov", n, noise, max_rel_error(grid, truth),
                  sens_seconds + clock.elapsed_seconds());
      }
      {
        Stopwatch clock;
        solver::LandweberOptions options;
        options.max_iterations = 150;
        const auto result = solver::landweber(m, model, options);
        table.add("landweber", n, noise, max_rel_error(result.recovered, truth),
                  sens_seconds + clock.elapsed_seconds());
      }
    }
  }
  bench::emit(table, "ablation_reconstruction");

  std::cout << "\nexpected: parma-lm reaches ~1e-6 error noise-free and degrades"
               "\ngracefully (error ~ noise); the linearized classics plateau at"
               "\nmulti-10% error regardless, and their error is dominated by the"
               "\nlinearization, not the data -- the ill-posedness the paper cites.\n";
  return 0;
}

// Heterogeneous-cluster ablation (the paper's future work, Section VII):
// the homogeneous block partition vs the speed-weighted partition on mixed
// fleets, replaying the measured n = 50 formation workload.
#include "bench/bench_util.hpp"

using namespace parma;

int main() {
  const core::Engine engine = bench::make_engine(50);
  core::StrategyOptions options;
  options.timing_mode = core::TimingMode::kVirtualReplay;  // replays the task timeline
  options.keep_system = false;
  const core::FormationResult formation = engine.form_equations(options);
  mpisim::ClusterCostModel model;
  model.task_cost_scale = 500.0;  // paper-regime per-task costs

  Table table({"fleet", "partition", "makespan_seconds", "imbalance"});
  struct Fleet {
    const char* name;
    std::vector<mpisim::RankProfile> ranks;
  };
  const Fleet fleets[] = {
      {"uniform-64", mpisim::uniform_fleet(64)},
      {"half-2x-64", mpisim::two_tier_fleet(64, 0.5, 2.0, 1.0)},
      {"quarter-4x-64", mpisim::two_tier_fleet(64, 0.25, 4.0, 1.0)},
      {"mostly-slow-64", mpisim::two_tier_fleet(64, 0.1, 8.0, 1.0)},
  };

  for (const Fleet& fleet : fleets) {
    const auto block = mpisim::simulate_heterogeneous(
        formation.tasks, fleet.ranks,
        mpisim::block_partition(formation.tasks.size(), static_cast<Index>(fleet.ranks.size())),
        model);
    const auto weighted = mpisim::simulate_heterogeneous(
        formation.tasks, fleet.ranks,
        mpisim::speed_weighted_partition(formation.tasks, fleet.ranks), model);
    table.add(fleet.name, "block", block.makespan_seconds, block.imbalance());
    table.add(fleet.name, "speed-weighted", weighted.makespan_seconds, weighted.imbalance());
  }
  bench::emit(table, "ablation_heterogeneous");

  std::cout << "\non mixed fleets the block partition is gated by the slow tier"
               "\n(imbalance = fast/slow speed ratio); cost-aware weighting restores"
               "\nimbalance ~1 and recovers most of the lost makespan.\n";
  return 0;
}

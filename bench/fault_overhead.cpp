// Fault-machinery overhead bench: what the compiled-in (but disabled)
// robustness stack costs the serve hot path.
//
// Claim under test: the fault-injection points, the retry/breaker/degraded
// orchestration, and the fallback-ladder plumbing cost < 2% serve throughput
// when no faults are armed. Three modes over identical bursts:
//
//   bare        resilience orchestration neutralized (max_attempts = 1,
//               breaker and degraded mode disabled), no injector installed --
//               the closest expressible stand-in for the pre-robustness server;
//   resilient   default ServerOptions (retry + breaker + degraded mode armed),
//               no injector installed -- the production configuration;
//   armed-p0    resilient plus a process-wide injector installed with every
//               point armed at probability 0 -- the full machinery executing
//               its hot-path checks without ever firing.
//
// Each mode runs `repeats` bursts and keeps the best wall time (noise
// floors, not averages, compare hot paths). Output: pretty table + CSV via
// bench_util, plus bench_results/fault_overhead.json recording the overhead
// of each mode against bare.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <utility>

#include "bench/bench_util.hpp"

using namespace parma;

namespace {

struct ModeResult {
  std::string mode;
  Index burst = 0;
  Real wall_seconds = 0.0;
  Real req_per_s = 0.0;
  Real overhead_pct = 0.0;  ///< wall time vs the bare mode (negative = faster)
};

std::vector<serve::ParametrizeRequest> make_burst(Index burst, std::uint64_t seed) {
  const Index shapes[] = {6, 8, 10};
  Rng rng(seed);
  std::vector<serve::ParametrizeRequest> requests;
  requests.reserve(static_cast<std::size_t>(burst));
  for (Index i = 0; i < burst; ++i) {
    const Index n = shapes[i % 3];
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    serve::ParametrizeRequest request;
    request.measurement = mea::measure_exact(spec, truth);
    request.options.strategy = core::Strategy::kFineGrained;
    request.options.workers = 2;
    request.options.chunk = 4;
    request.options.keep_system = false;
    request.inverse.max_iterations = 15;
    requests.push_back(std::move(request));
  }
  return requests;
}

enum class Mode { kBare, kResilient, kArmedP0 };

Real run_once(Mode mode, Index burst) {
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = static_cast<std::size_t>(burst);
  options.max_batch = 8;
  if (mode == Mode::kBare) {
    options.policy.retry.max_attempts = 1;
    options.policy.breaker.failure_threshold = 0;
    options.policy.shedding.high_water = 0.0;
  }

  fault::Injector injector(2022);
  if (mode == Mode::kArmedP0) {
    injector.arm_all({.probability = 0.0});  // machinery live, never fires
    fault::install(&injector);
  }

  serve::Server server(options);
  std::vector<serve::ParametrizeRequest> requests = make_burst(burst, 2022);
  Stopwatch wall;
  std::vector<serve::Ticket> tickets;
  tickets.reserve(requests.size());
  for (serve::ParametrizeRequest& request : requests) {
    tickets.push_back(server.submit(std::move(request), std::chrono::seconds(60)));
  }
  server.drain();
  const Real wall_seconds = wall.elapsed_seconds();
  for (serve::Ticket& ticket : tickets) {
    const serve::ParametrizeResult r = ticket.future().get();
    PARMA_REQUIRE(r.status == serve::RequestStatus::kOk, "bench request failed");
  }
  server.shutdown();
  if (mode == Mode::kArmedP0) {
    PARMA_REQUIRE(injector.total_fires() == 0, "p = 0 schedule must never fire");
    fault::install(nullptr);
  }
  return wall_seconds;
}

ModeResult run_mode(const std::string& name, Mode mode, Index burst, int repeats) {
  Real best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const Real wall = run_once(mode, burst);
    if (r == 0 || wall < best) best = wall;
  }
  ModeResult result;
  result.mode = name;
  result.burst = burst;
  result.wall_seconds = best;
  result.req_per_s = static_cast<Real>(burst) / best;
  return result;
}

void write_json(const std::vector<ModeResult>& results, const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  os << "{\n  \"bench\": \"fault_overhead\",\n  \"target_overhead_pct\": 2.0,\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"burst\": " << r.burst
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"req_per_s\": " << r.req_per_s
       << ", \"overhead_pct\": " << r.overhead_pct << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main() {
  const Index burst = bench::full_sweep() ? 96 : 48;
  const int repeats = bench::full_sweep() ? 5 : 3;

  // Untimed warmup: allocator arenas, lazy pool spin-up, cold caches.
  (void)run_once(Mode::kBare, 8);
  (void)run_once(Mode::kArmedP0, 8);

  std::vector<ModeResult> results;
  results.push_back(run_mode("bare", Mode::kBare, burst, repeats));
  results.push_back(run_mode("resilient", Mode::kResilient, burst, repeats));
  results.push_back(run_mode("armed-p0", Mode::kArmedP0, burst, repeats));
  const Real bare_wall = results.front().wall_seconds;
  for (ModeResult& r : results) {
    r.overhead_pct = (r.wall_seconds / bare_wall - 1.0) * 100.0;
  }

  Table table({"series", "burst", "wall_seconds", "req_per_s", "overhead_pct"});
  for (const ModeResult& r : results) {
    table.add(r.mode, r.burst, r.wall_seconds, r.req_per_s, r.overhead_pct);
  }
  bench::emit(table, "fault_overhead");

  const std::string json_path = bench::results_dir() + "/fault_overhead.json";
  write_json(results, json_path);
  std::cout << "saved: " << json_path << "\n";

  std::cout << "\nexpected shape: resilient and armed-p0 stay within ~2% of bare;"
               "\nthe disabled fault machinery is one relaxed atomic load per"
               "\ninjection point and the retry/breaker bookkeeping is per-request,"
               "\nnot per-equation, so the serve hot path is unchanged.\n";
  return 0;
}

// Goodput-under-chaos bench: the reconnecting client against a listener
// whose connections are being killed by the deterministic fault injector.
//
// Claim under test: wire-level failures are absorbed by typed recovery, not
// amplified into lost work. With kSockReset armed at a 5% per-syscall rate
// (every socket op on either side of the connection may shut it down), the
// reconnecting client's capped-backoff re-dial plus in-order replay must
// deliver >= 90% of requests as completed kOk responses -- in practice
// 100%, since replay makes resets invisible and only attempt exhaustion
// drops a request.
//
// For each kill rate the bench pushes the same mixed-shape burst through a
// fresh server + listener + reconnecting client and reports goodput
// (completed-ok / sent), reconnect count, wall time, and req/s. Output:
// pretty table + CSV via bench_util, plus bench_results/net_chaos.json.
// `--quick` trims the sweep for the CI gate; the exit code enforces the
// 90% floor at the 5% kill rate either way.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "fault/injector.hpp"
#include "net/client.hpp"
#include "net/listener.hpp"

using namespace parma;

namespace {

struct RateResult {
  Real kill_rate = 0.0;
  Index sent = 0;
  Index completed_ok = 0;
  Real goodput = 0.0;
  std::uint64_t reconnects = 0;
  std::uint64_t resets_fired = 0;
  Real wall_seconds = 0.0;
  Real req_per_s = 0.0;
};

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("PARMA_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 7;
}

serve::ServerOptions server_options(Index burst) {
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = static_cast<std::size_t>(burst);
  options.max_batch = 8;
  return options;
}

std::vector<serve::ParametrizeRequest> make_burst(Index burst, std::uint64_t seed) {
  const Index shapes[] = {6, 8};
  Rng rng(seed);
  std::vector<serve::ParametrizeRequest> requests;
  requests.reserve(static_cast<std::size_t>(burst));
  for (Index i = 0; i < burst; ++i) {
    const Index n = shapes[i % 2];
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    serve::ParametrizeRequest request;
    request.measurement = mea::measure_exact(spec, truth);
    request.options.strategy = core::Strategy::kFineGrained;
    request.options.workers = 2;
    request.options.chunk = 4;
    request.options.keep_system = false;
    request.inverse.max_iterations = 5;
    requests.push_back(std::move(request));
  }
  return requests;
}

RateResult run_at_kill_rate(Index burst, Real kill_rate, std::uint64_t seed) {
  // The injector outlives every socket op of this run; a zero rate leaves
  // the point disarmed, which is the production (disabled-shim) path.
  fault::ScopedInjector chaos(seed);
  if (kill_rate > 0.0) chaos->arm(fault::Point::kSockReset, {kill_rate});

  serve::Server server(server_options(burst));
  net::ListenerOptions lopts;
  lopts.max_inflight_per_connection = static_cast<std::size_t>(burst);
  net::Listener listener(server, lopts);
  listener.start();

  std::vector<serve::ParametrizeRequest> requests = make_burst(burst, 2026);

  net::Client client;
  net::ClientOptions copts;
  copts.port = listener.port();
  copts.reconnect = true;
  copts.max_reconnect_attempts = 12;
  copts.reconnect_backoff = std::chrono::milliseconds{1};
  copts.reconnect_backoff_cap = std::chrono::milliseconds{20};
  copts.jitter_seed = seed;
  client.connect(copts);

  Stopwatch wall;
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  for (serve::ParametrizeRequest& request : requests) {
    ids.push_back(client.send(request));
  }
  Index completed_ok = 0;
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, std::chrono::seconds(120));
    PARMA_REQUIRE(reply.has_value(), "a request failed to terminate -- the tier hung");
    if (reply->ok() && reply->response.status() == serve::RequestStatus::kOk) {
      ++completed_ok;
    }
  }
  const Real wall_seconds = wall.elapsed_seconds();

  RateResult result;
  result.kill_rate = kill_rate;
  result.sent = burst;
  result.completed_ok = completed_ok;
  result.goodput = static_cast<Real>(completed_ok) / static_cast<Real>(burst);
  result.reconnects = client.reconnects();
  result.resets_fired = chaos->fires(fault::Point::kSockReset);
  result.wall_seconds = wall_seconds;
  result.req_per_s = static_cast<Real>(burst) / wall_seconds;

  client.disconnect();
  listener.stop();
  server.shutdown();
  return result;
}

void write_json(const std::vector<RateResult>& results, Real gated_goodput,
                const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  os << "{\n  \"bench\": \"net_chaos\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    os << "    {\"kill_rate\": " << r.kill_rate << ", \"sent\": " << r.sent
       << ", \"completed_ok\": " << r.completed_ok << ", \"goodput\": " << r.goodput
       << ", \"reconnects\": " << r.reconnects
       << ", \"resets_fired\": " << r.resets_fired
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"req_per_s\": " << r.req_per_s << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"goodput_at_5pct_kill\": " << gated_goodput
     << ",\n  \"meets_90pct_floor\": " << (gated_goodput >= 0.9 ? "true" : "false")
     << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const std::uint64_t seed = chaos_seed();
  const Index burst = quick ? 24 : 48;
  std::vector<Real> rates{0.0, 0.05};
  if (!quick && bench::full_sweep()) rates.push_back(0.10);

  // Untimed warmup at rate 0: pools, allocator arenas, the connect path.
  (void)run_at_kill_rate(8, 0.0, seed);

  Table table({"kill_rate", "sent", "completed_ok", "goodput", "reconnects",
               "resets_fired", "wall_seconds", "req_per_s"});
  std::vector<RateResult> results;
  Real gated_goodput = 0.0;
  for (const Real rate : rates) {
    const RateResult r = run_at_kill_rate(burst, rate, seed);
    if (rate == 0.05) gated_goodput = r.goodput;
    table.add(r.kill_rate, r.sent, r.completed_ok, r.goodput, r.reconnects,
              r.resets_fired, r.wall_seconds, r.req_per_s);
    results.push_back(r);
  }
  bench::emit(table, "net_chaos");

  const std::string json_path = bench::results_dir() + "/net_chaos.json";
  write_json(results, gated_goodput, json_path);
  std::cout << "saved: " << json_path << "\n";

  std::cout << "\ngoodput at 5% connection-kill rate: " << gated_goodput
            << (gated_goodput >= 0.9 ? " (meets the 90% floor)"
                                     : " (BELOW the 90% floor)")
            << "\nexpected shape: goodput stays at 1.0 -- replay makes resets"
               "\ninvisible, so the kill rate buys wall time (reconnect backoff),"
               "\nnot lost requests.\n";
  return gated_goodput >= 0.9 ? 0 : 1;
}

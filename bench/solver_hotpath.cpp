// Solver hot-path bench: the symbolic/numeric split against the historical
// rebuild-per-iteration assembly.
//
// Claim under test (the kernel layer's reason to exist): refreshing J and
// A = J^T J in place through the precomputed pattern + scatter map is >= 2x
// faster than the CooBuilder path (build + stable sort for J, the
// O(row-nnz^2) triple loop + sort for A) at n >= 16, with bit-identical
// results (asserted in tests/test_kernels.cpp, not here).
//
// Three per-iteration assembly modes, best-of-repeats wall time:
//   legacy    system_jacobian + reference_normal_matrix + multiply_transpose
//             (exactly what the pre-kernel Gauss-Newton step did);
//   kernel    SystemKernels::refresh + multiply_transpose_into, serial;
//   kernel-mt kernel with a work-stealing executor (adds the parallel
//             refresh on top of the allocation/sort savings).
//
// Plus an end-to-end Gauss-Newton comparison (fixed iteration budget) at the
// largest n as context -- there the shared CG work dilutes the assembly win.
//
// Output: pretty table + CSV via bench_util, and
// bench_results/solver_hotpath.json with the measured speedups. `--quick`
// trims the sweep for CI (scripts/check.sh).
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "equations/residual.hpp"
#include "solver/system_kernels.hpp"

using namespace parma;

namespace {

struct HotpathResult {
  Index n = 0;
  Index equations = 0;
  Index unknowns = 0;
  std::size_t j_nnz = 0;
  std::size_t a_nnz = 0;
  Real legacy_seconds = 0.0;       ///< per-iteration legacy assembly
  Real kernel_seconds = 0.0;       ///< per-iteration serial kernel refresh
  Real kernel_mt_seconds = 0.0;    ///< per-iteration parallel kernel refresh
  Real assembly_speedup = 0.0;     ///< legacy / kernel (serial)
  Real assembly_speedup_mt = 0.0;  ///< legacy / kernel-mt
  Real symbolic_seconds = 0.0;     ///< one-time analyze() cost (amortized away)
  Real legacy_solve_seconds = 0.0;  ///< end-to-end GN, largest n only
  Real kernel_solve_seconds = 0.0;
  Real solve_speedup = 0.0;
};

// Best-of-repeats per-iteration wall time of `body` run `iters` times.
template <typename Body>
Real time_per_iteration(int repeats, int iters, const Body& body) {
  Real best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch clock;
    for (int i = 0; i < iters; ++i) body();
    const Real per_iter = clock.elapsed_seconds() / static_cast<Real>(iters);
    if (r == 0 || per_iter < best) best = per_iter;
  }
  return best;
}

HotpathResult run_size(Index n, int repeats, int iters, bool solve_comparison) {
  core::Engine engine = bench::make_engine(n);
  const equations::EquationSystem system =
      equations::generate_system(engine.measurement());
  const std::vector<Real> x = solver::initial_guess(system, engine.measurement());
  const std::vector<Real> residual = equations::system_residual(system, x);

  HotpathResult result;
  result.n = n;
  result.equations = static_cast<Index>(system.equations.size());
  result.unknowns = system.layout.num_unknowns();

  Stopwatch analyze_clock;
  const auto symbolic = solver::SystemSymbolic::analyze(system);
  result.symbolic_seconds = analyze_clock.elapsed_seconds();
  result.j_nnz = symbolic->j_nnz();
  result.a_nnz = symbolic->a_nnz();

  // Legacy per-iteration assembly: rebuild J, form J^T J through the COO
  // triple loop, allocate the transpose product.
  std::vector<Real> sink;
  result.legacy_seconds = time_per_iteration(repeats, iters, [&] {
    const linalg::CsrMatrix jac = equations::system_jacobian(system, x);
    const linalg::CsrMatrix jtj = solver::reference_normal_matrix(jac);
    sink = jac.multiply_transpose(residual);
    PARMA_REQUIRE(jtj.rows() == result.unknowns, "bench sanity");
  });

  // Kernel refresh, serial.
  solver::SystemKernels kernels(system, symbolic);
  result.kernel_seconds = time_per_iteration(repeats, iters, [&] {
    kernels.refresh(x);
    kernels.jacobian().multiply_transpose_into(residual, sink);
  });

  // Kernel refresh, work-stealing executor.
  const auto executor = exec::make_executor(exec::Backend::kStealing, 4);
  result.kernel_mt_seconds = time_per_iteration(repeats, iters, [&] {
    kernels.refresh(x, executor.get());
    kernels.jacobian().multiply_transpose_into(residual, sink);
  });

  result.assembly_speedup = result.legacy_seconds / result.kernel_seconds;
  result.assembly_speedup_mt = result.legacy_seconds / result.kernel_mt_seconds;

  if (solve_comparison) {
    // Fixed-budget Gauss-Newton end to end; the linear solves are shared
    // work, so this understates the assembly win by construction.
    solver::FullSystemOptions options;
    options.max_iterations = 3;
    options.cg_max_iterations = 300;
    options.tolerance = 0.0;  // spend the full iteration budget
    options.use_kernels = false;
    Stopwatch legacy_clock;
    const auto legacy = solver::solve_full_system(system, engine.measurement(), options);
    result.legacy_solve_seconds = legacy_clock.elapsed_seconds();

    options.use_kernels = true;
    solver::KernelContext context;
    context.symbolic = symbolic;
    Stopwatch kernel_clock;
    const auto kernel =
        solver::solve_full_system(system, engine.measurement(), options, context);
    result.kernel_solve_seconds = kernel_clock.elapsed_seconds();
    result.solve_speedup = result.legacy_solve_seconds / result.kernel_solve_seconds;
    PARMA_REQUIRE(kernel.iterations == legacy.iterations, "bench paths diverged");
  }
  return result;
}

void write_json(const std::vector<HotpathResult>& results, const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  os << "{\n  \"bench\": \"solver_hotpath\",\n  \"target_assembly_speedup\": 2.0,\n"
     << "  \"target_n\": 16,\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const HotpathResult& r = results[i];
    os << "    {\"n\": " << r.n << ", \"equations\": " << r.equations
       << ", \"unknowns\": " << r.unknowns << ", \"j_nnz\": " << r.j_nnz
       << ", \"a_nnz\": " << r.a_nnz
       << ", \"symbolic_seconds\": " << r.symbolic_seconds
       << ", \"legacy_assembly_seconds\": " << r.legacy_seconds
       << ", \"kernel_refresh_seconds\": " << r.kernel_seconds
       << ", \"kernel_refresh_mt_seconds\": " << r.kernel_mt_seconds
       << ", \"assembly_speedup\": " << r.assembly_speedup
       << ", \"assembly_speedup_mt\": " << r.assembly_speedup_mt
       << ", \"legacy_solve_seconds\": " << r.legacy_solve_seconds
       << ", \"kernel_solve_seconds\": " << r.kernel_solve_seconds
       << ", \"solve_speedup\": " << r.solve_speedup << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<Index> sweep =
      quick ? std::vector<Index>{8, 16}
            : (bench::full_sweep() ? std::vector<Index>{8, 12, 16, 20, 24}
                                   : std::vector<Index>{8, 12, 16, 20});
  const int repeats = quick ? 2 : 3;

  // Untimed warmup: allocator arenas, cold instruction cache.
  (void)run_size(6, 1, 1, /*solve_comparison=*/false);

  std::vector<HotpathResult> results;
  for (const Index n : sweep) {
    const int iters = n <= 8 ? 10 : (n <= 16 ? 3 : 2);
    const bool solve_comparison = n == sweep.back();
    results.push_back(run_size(n, repeats, iters, solve_comparison));
    std::cout << "n=" << results.back().n << " assembly speedup x"
              << results.back().assembly_speedup << " (mt x"
              << results.back().assembly_speedup_mt << ")\n";
  }

  Table table({"series", "n", "equations", "unknowns", "per_iter_seconds", "speedup"});
  for (const HotpathResult& r : results) {
    table.add("legacy", r.n, r.equations, r.unknowns, r.legacy_seconds, 1.0);
    table.add("kernel", r.n, r.equations, r.unknowns, r.kernel_seconds,
              r.assembly_speedup);
    table.add("kernel-mt", r.n, r.equations, r.unknowns, r.kernel_mt_seconds,
              r.assembly_speedup_mt);
  }
  bench::emit(table, "solver_hotpath");

  const std::string json_path = bench::results_dir() + "/solver_hotpath.json";
  write_json(results, json_path);
  std::cout << "saved: " << json_path << "\n";

  // The acceptance gate: >= 2x serial assembly speedup at n >= 16.
  bool met = false;
  for (const HotpathResult& r : results) {
    if (r.n >= 16 && r.assembly_speedup >= 2.0) met = true;
  }
  std::cout << (met ? "PASS" : "MISS")
            << ": kernel refresh vs CooBuilder assembly at n >= 16 (target 2x)\n";
  return met ? 0 : 1;
}

// Solver hot-path bench: the symbolic/numeric split + preconditioned CG
// against the historical rebuild-per-iteration assembly and inline-Jacobi CG.
//
// Claims under test:
//   * assembly   refreshing J and A = J^T J in place through the precomputed
//                pattern + scatter map is >= 2x faster than the CooBuilder
//                path at n >= 16 (bit-identical results, asserted in
//                tests/test_kernels.cpp, not here);
//   * solve      the kernel path with the default block-Jacobi preconditioner
//                is >= 4x faster END TO END than the legacy path at n >= 16,
//                and cuts CG iterations >= 2x against unpreconditioned CG
//                (the bottleneck the preconditioner exists to remove).
//
// Every size measures BOTH the per-iteration assembly and the end-to-end
// Gauss-Newton solve (fixed outer budget), with per-size CG iteration counts
// for four variants: unpreconditioned (kIdentity), legacy (inline Jacobi),
// kernel + kJacobi (the bit-identical baseline -- same counts as legacy by
// construction), kernel + default preconditioner. All counts land in the
// JSON, so both reduction ratios (vs unpreconditioned and vs the Jacobi
// rung) are inspectable per size.
//
// Sizes where A = J^T J can no longer be formed (~4n^5 nonzeros: ~69 GB of
// values alone at n=64) switch to LINEARIZATION mode: a jacobian-only
// symbolic (AnalyzeOptions{build_normal=false}) plus MatrixFreeNormalOperator
// drive one CG solve of the first Gauss-Newton step, Jacobi vs block-Jacobi
// refreshed straight from J -- proving the preconditioned path runs at the
// paper's n=100 where the explicit-matrix path cannot.
//
// Output: pretty table + CSV via bench_util, and
// bench_results/solver_hotpath.json with speedups and iteration counts.
// `--quick` trims the sweep to {8, 16} for CI (scripts/check.sh);
// PARMA_BENCH_FULL=1 extends to {8, 16, 32, 64, 100}.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "equations/residual.hpp"
#include "linalg/iterative.hpp"
#include "solver/full_system_solver.hpp"
#include "solver/system_kernels.hpp"

using namespace parma;

namespace {

/// Above this n the explicit normal matrix stops fitting in memory; the bench
/// switches to the matrix-free linearization mode.
constexpr Index kLinearizationThreshold = 48;

struct HotpathResult {
  Index n = 0;
  Index equations = 0;
  Index unknowns = 0;
  std::size_t j_nnz = 0;
  std::size_t a_nnz = 0;            ///< 0 in linearization mode (never formed)
  bool linearization_only = false;  ///< n >= 48: matrix-free mode
  Real symbolic_seconds = 0.0;      ///< one-time analyze() cost (amortized away)

  // Full mode: per-iteration assembly comparison.
  Real legacy_seconds = 0.0;       ///< per-iteration legacy assembly
  Real kernel_seconds = 0.0;       ///< per-iteration serial kernel refresh
  Real kernel_mt_seconds = 0.0;    ///< per-iteration parallel kernel refresh
  Real assembly_speedup = 0.0;     ///< legacy / kernel (serial)
  Real assembly_speedup_mt = 0.0;  ///< legacy / kernel-mt

  // Full mode: end-to-end Gauss-Newton solve (fixed outer budget) -- measured
  // at EVERY size, with the CG iteration totals that explain the speedup.
  Real identity_solve_seconds = 0.0;  ///< kernel path, unpreconditioned CG
  Real legacy_solve_seconds = 0.0;    ///< use_kernels=false, inline Jacobi
  Real jacobi_solve_seconds = 0.0;    ///< kernel path, kJacobi (bit-identical)
  Real kernel_solve_seconds = 0.0;    ///< kernel path, default preconditioner
  Real solve_speedup = 0.0;           ///< legacy / kernel-default
  Index identity_cg_iterations = 0;
  Index legacy_cg_iterations = 0;
  Index jacobi_cg_iterations = 0;
  Index precond_cg_iterations = 0;
  Real cg_iteration_reduction = 0.0;  ///< unpreconditioned / default

  // Linearization mode: one matrix-free CG solve of the first GN step.
  Real matfree_identity_seconds = 0.0;
  Real matfree_jacobi_seconds = 0.0;
  Real matfree_precond_seconds = 0.0;  ///< includes the from-J block refresh
  Index matfree_identity_iterations = 0;
  Index matfree_jacobi_iterations = 0;
  Index matfree_precond_iterations = 0;
};

// Best-of-repeats per-iteration wall time of `body` run `iters` times.
template <typename Body>
Real time_per_iteration(int repeats, int iters, const Body& body) {
  Real best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch clock;
    for (int i = 0; i < iters; ++i) body();
    const Real per_iter = clock.elapsed_seconds() / static_cast<Real>(iters);
    if (r == 0 || per_iter < best) best = per_iter;
  }
  return best;
}

/// Fixed-budget Gauss-Newton end to end (3 outer iterations, CG to 1e-10).
/// Returns wall seconds; fills `cg_iterations` with the run's CG total.
Real timed_solve(const equations::EquationSystem& system, const core::Engine& engine,
                 const std::shared_ptr<const solver::SystemSymbolic>& symbolic,
                 bool use_kernels, linalg::PreconditionerKind kind,
                 Index cg_cap, Index& cg_iterations, Index& outer_iterations) {
  solver::FullSystemOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;  // spend the full outer budget
  options.cg_max_iterations = cg_cap;
  options.cg_tolerance = 1e-10;
  options.use_kernels = use_kernels;
  options.preconditioner = kind;
  solver::KernelContext context;
  context.symbolic = symbolic;
  Stopwatch clock;
  const auto result =
      solver::solve_full_system(system, engine.measurement(), options, context);
  const Real seconds = clock.elapsed_seconds();
  cg_iterations = result.diagnostics.cg_iterations;
  outer_iterations = result.iterations;
  return seconds;
}

HotpathResult run_size(Index n, int repeats, int iters) {
  core::Engine engine = bench::make_engine(n);
  const equations::EquationSystem system =
      equations::generate_system(engine.measurement());
  const std::vector<Real> x = solver::initial_guess(system, engine.measurement());
  const std::vector<Real> residual = equations::system_residual(system, x);

  HotpathResult result;
  result.n = n;
  result.equations = static_cast<Index>(system.equations.size());
  result.unknowns = system.layout.num_unknowns();

  Stopwatch analyze_clock;
  const auto symbolic = solver::SystemSymbolic::analyze(system);
  result.symbolic_seconds = analyze_clock.elapsed_seconds();
  result.j_nnz = symbolic->j_nnz();
  result.a_nnz = symbolic->a_nnz();

  // Legacy per-iteration assembly: rebuild J, form J^T J through the COO
  // triple loop, allocate the transpose product.
  std::vector<Real> sink;
  result.legacy_seconds = time_per_iteration(repeats, iters, [&] {
    const linalg::CsrMatrix jac = equations::system_jacobian(system, x);
    const linalg::CsrMatrix jtj = solver::reference_normal_matrix(jac);
    sink = jac.multiply_transpose(residual);
    PARMA_REQUIRE(jtj.rows() == result.unknowns, "bench sanity");
  });

  // Kernel refresh, serial.
  solver::SystemKernels kernels(system, symbolic);
  result.kernel_seconds = time_per_iteration(repeats, iters, [&] {
    kernels.refresh(x);
    kernels.jacobian().multiply_transpose_into(residual, sink);
  });

  // Kernel refresh, work-stealing executor.
  const auto executor = exec::make_executor(exec::Backend::kStealing, 4);
  result.kernel_mt_seconds = time_per_iteration(repeats, iters, [&] {
    kernels.refresh(x, executor.get());
    kernels.jacobian().multiply_transpose_into(residual, sink);
  });

  result.assembly_speedup = result.legacy_seconds / result.kernel_seconds;
  result.assembly_speedup_mt = result.legacy_seconds / result.kernel_mt_seconds;

  // End-to-end Gauss-Newton at EVERY size (a fixed outer budget keeps the
  // three variants comparable; CG iteration totals explain the speedup).
  // n=32's normal matrix has ~134M nonzeros, so cap CG where one solve would
  // otherwise dominate the whole bench; counts that hit the cap report the
  // iteration reduction as a lower bound.
  const Index cg_cap = n >= 32 ? 800 : 2000;
  Index identity_outer = 0, legacy_outer = 0, jacobi_outer = 0, precond_outer = 0;
  result.identity_solve_seconds =
      timed_solve(system, engine, symbolic, /*use_kernels=*/true,
                  linalg::PreconditionerKind::kIdentity, cg_cap,
                  result.identity_cg_iterations, identity_outer);
  result.legacy_solve_seconds =
      timed_solve(system, engine, symbolic, /*use_kernels=*/false,
                  linalg::PreconditionerKind::kJacobi, cg_cap,
                  result.legacy_cg_iterations, legacy_outer);
  result.jacobi_solve_seconds =
      timed_solve(system, engine, symbolic, /*use_kernels=*/true,
                  linalg::PreconditionerKind::kJacobi, cg_cap,
                  result.jacobi_cg_iterations, jacobi_outer);
  result.kernel_solve_seconds =
      timed_solve(system, engine, symbolic, /*use_kernels=*/true,
                  linalg::PreconditionerKind::kBlockJacobi, cg_cap,
                  result.precond_cg_iterations, precond_outer);
  // kJacobi on the kernel path is bit-identical to legacy, so the budgets
  // (and the CG totals) must agree exactly.
  PARMA_REQUIRE(jacobi_outer == legacy_outer, "bench paths diverged");
  PARMA_REQUIRE(result.jacobi_cg_iterations == result.legacy_cg_iterations,
                "bench CG totals diverged");
  result.solve_speedup = result.legacy_solve_seconds / result.kernel_solve_seconds;
  result.cg_iteration_reduction =
      static_cast<Real>(result.identity_cg_iterations) /
      static_cast<Real>(std::max<Index>(result.precond_cg_iterations, 1));
  return result;
}

/// n >= 48: the explicit A never fits, so measure the preconditioned
/// matrix-free CG of the FIRST Gauss-Newton step instead -- Jacobi (the
/// operator's diagonal) vs block-Jacobi refreshed straight from J.
HotpathResult run_linearization(Index n) {
  core::Engine engine = bench::make_engine(n);
  const equations::EquationSystem system =
      equations::generate_system(engine.measurement());
  const std::vector<Real> x = solver::initial_guess(system, engine.measurement());

  HotpathResult result;
  result.n = n;
  result.equations = static_cast<Index>(system.equations.size());
  result.unknowns = system.layout.num_unknowns();
  result.linearization_only = true;

  Stopwatch analyze_clock;
  solver::AnalyzeOptions analyze_options;
  analyze_options.build_normal = false;
  const auto symbolic = solver::SystemSymbolic::analyze(system, analyze_options);
  result.symbolic_seconds = analyze_clock.elapsed_seconds();
  result.j_nnz = symbolic->j_nnz();

  solver::SystemKernels kernels(system, symbolic);
  kernels.refresh_jacobian(x);
  std::vector<Real> residual;
  kernels.residual_into(x, residual);
  std::vector<Real> rhs;
  kernels.jacobian().multiply_transpose_into(residual, rhs);
  for (Real& v : rhs) v = -v;

  const solver::MatrixFreeNormalOperator op(kernels.jacobian(), *symbolic, nullptr);
  linalg::IterativeOptions cg;
  cg.max_iterations = 250;
  cg.tolerance = 1e-10;
  linalg::CgWorkspace ws;

  {
    const linalg::IdentityPreconditioner identity;
    Stopwatch clock;
    const linalg::IterativeResult plain =
        linalg::conjugate_gradient_with(op, rhs, cg, ws, &identity);
    result.matfree_identity_seconds = clock.elapsed_seconds();
    result.matfree_identity_iterations = plain.iterations;
  }
  {
    Stopwatch clock;
    const linalg::IterativeResult jacobi = linalg::conjugate_gradient_with(op, rhs, cg, ws);
    result.matfree_jacobi_seconds = clock.elapsed_seconds();
    result.matfree_jacobi_iterations = jacobi.iterations;
  }
  {
    // The block refresh is part of the preconditioned cost: it reruns per
    // linearization in a full solve.
    Stopwatch clock;
    linalg::BlockJacobiPreconditioner precond(symbolic->precond_block_ptr);
    solver::refresh_block_jacobi_from_jacobian(kernels.jacobian(), *symbolic, precond);
    const linalg::IterativeResult pre =
        linalg::conjugate_gradient_with(op, rhs, cg, ws, &precond);
    result.matfree_precond_seconds = clock.elapsed_seconds();
    result.matfree_precond_iterations = pre.iterations;
  }
  result.cg_iteration_reduction =
      static_cast<Real>(result.matfree_identity_iterations) /
      static_cast<Real>(std::max<Index>(result.matfree_precond_iterations, 1));
  return result;
}

void write_json(const std::vector<HotpathResult>& results, const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  os << "{\n  \"bench\": \"solver_hotpath\",\n  \"target_assembly_speedup\": 2.0,\n"
     << "  \"target_solve_speedup\": 4.0,\n"
     << "  \"target_cg_iteration_reduction\": 2.0,\n"
     << "  \"target_n\": 16,\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const HotpathResult& r = results[i];
    os << "    {\"n\": " << r.n << ", \"mode\": \""
       << (r.linearization_only ? "linearization" : "full")
       << "\", \"equations\": " << r.equations << ", \"unknowns\": " << r.unknowns
       << ", \"j_nnz\": " << r.j_nnz << ", \"a_nnz\": " << r.a_nnz
       << ", \"symbolic_seconds\": " << r.symbolic_seconds;
    if (!r.linearization_only) {
      os << ", \"legacy_assembly_seconds\": " << r.legacy_seconds
         << ", \"kernel_refresh_seconds\": " << r.kernel_seconds
         << ", \"kernel_refresh_mt_seconds\": " << r.kernel_mt_seconds
         << ", \"assembly_speedup\": " << r.assembly_speedup
         << ", \"assembly_speedup_mt\": " << r.assembly_speedup_mt
         << ", \"unpreconditioned_solve_seconds\": " << r.identity_solve_seconds
         << ", \"legacy_solve_seconds\": " << r.legacy_solve_seconds
         << ", \"jacobi_solve_seconds\": " << r.jacobi_solve_seconds
         << ", \"kernel_solve_seconds\": " << r.kernel_solve_seconds
         << ", \"solve_speedup\": " << r.solve_speedup
         << ", \"unpreconditioned_cg_iterations\": " << r.identity_cg_iterations
         << ", \"legacy_cg_iterations\": " << r.legacy_cg_iterations
         << ", \"jacobi_cg_iterations\": " << r.jacobi_cg_iterations
         << ", \"precond_cg_iterations\": " << r.precond_cg_iterations;
    } else {
      os << ", \"matfree_unpreconditioned_seconds\": " << r.matfree_identity_seconds
         << ", \"matfree_jacobi_seconds\": " << r.matfree_jacobi_seconds
         << ", \"matfree_precond_seconds\": " << r.matfree_precond_seconds
         << ", \"matfree_unpreconditioned_iterations\": " << r.matfree_identity_iterations
         << ", \"matfree_jacobi_iterations\": " << r.matfree_jacobi_iterations
         << ", \"matfree_precond_iterations\": " << r.matfree_precond_iterations;
    }
    os << ", \"cg_iteration_reduction\": " << r.cg_iteration_reduction << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<Index> sweep =
      quick ? std::vector<Index>{8, 16}
            : (bench::full_sweep() ? std::vector<Index>{8, 16, 32, 64, 100}
                                   : std::vector<Index>{8, 16, 32});
  const int repeats = quick ? 2 : 3;

  // Untimed warmup: allocator arenas, cold instruction cache.
  (void)run_size(6, 1, 1);

  std::vector<HotpathResult> results;
  for (const Index n : sweep) {
    if (n >= kLinearizationThreshold) {
      results.push_back(run_linearization(n));
      std::cout << "n=" << n << " (linearization) CG iterations "
                << results.back().matfree_identity_iterations << " (plain) / "
                << results.back().matfree_jacobi_iterations << " (jacobi) -> "
                << results.back().matfree_precond_iterations << " (x"
                << results.back().cg_iteration_reduction << ")\n";
      continue;
    }
    const int iters = n <= 8 ? 10 : (n <= 16 ? 3 : 1);
    results.push_back(run_size(n, n >= 32 ? 2 : repeats, iters));
    std::cout << "n=" << results.back().n << " assembly speedup x"
              << results.back().assembly_speedup << " (mt x"
              << results.back().assembly_speedup_mt << "), solve speedup x"
              << results.back().solve_speedup << ", CG iterations "
              << results.back().identity_cg_iterations << " (plain) / "
              << results.back().jacobi_cg_iterations << " (jacobi) -> "
              << results.back().precond_cg_iterations << " (x"
              << results.back().cg_iteration_reduction << ")\n";
  }

  Table table({"series", "n", "equations", "unknowns", "seconds", "speedup"});
  for (const HotpathResult& r : results) {
    if (r.linearization_only) {
      table.add("cg-jacobi", r.n, r.equations, r.unknowns, r.matfree_jacobi_seconds, 1.0);
      table.add("cg-blockjacobi", r.n, r.equations, r.unknowns,
                r.matfree_precond_seconds,
                r.matfree_jacobi_seconds / r.matfree_precond_seconds);
      continue;
    }
    table.add("legacy", r.n, r.equations, r.unknowns, r.legacy_seconds, 1.0);
    table.add("kernel", r.n, r.equations, r.unknowns, r.kernel_seconds,
              r.assembly_speedup);
    table.add("kernel-mt", r.n, r.equations, r.unknowns, r.kernel_mt_seconds,
              r.assembly_speedup_mt);
    table.add("solve-legacy", r.n, r.equations, r.unknowns, r.legacy_solve_seconds, 1.0);
    table.add("solve-kernel", r.n, r.equations, r.unknowns, r.kernel_solve_seconds,
              r.solve_speedup);
  }
  bench::emit(table, "solver_hotpath");

  const std::string json_path = bench::results_dir() + "/solver_hotpath.json";
  write_json(results, json_path);
  std::cout << "saved: " << json_path << "\n";

  // Acceptance gates at n >= 16 (full mode): >= 2x serial assembly speedup,
  // >= 4x end-to-end solve speedup vs legacy, >= 2x CG iteration reduction
  // from the default preconditioner vs unpreconditioned CG.
  bool assembly_met = false, solve_met = false, reduction_met = false;
  for (const HotpathResult& r : results) {
    if (r.linearization_only || r.n < 16) continue;
    if (r.assembly_speedup >= 2.0) assembly_met = true;
    if (r.solve_speedup >= 4.0) solve_met = true;
    if (r.cg_iteration_reduction >= 2.0) reduction_met = true;
  }
  std::cout << (assembly_met ? "PASS" : "MISS")
            << ": kernel refresh vs CooBuilder assembly at n >= 16 (target 2x)\n";
  std::cout << (solve_met ? "PASS" : "MISS")
            << ": preconditioned kernel solve vs legacy at n >= 16 (target 4x)\n";
  std::cout << (reduction_met ? "PASS" : "MISS")
            << ": CG iteration reduction vs unpreconditioned CG at n >= 16 "
               "(target 2x)\n";
  return (assembly_met && solve_met && reduction_met) ? 0 : 1;
}

// Fig. 9 reproduction: end-to-end time to generate the equation system AND
// write it to disk, at parallelism k in {2, 4, 8, 16, 32}.
//
// Paper claims to reproduce: "the time taken to write the set of equations
// to disk exhibit noticeable differences at scales n >= 20 for threads at
// various levels of parallelism" -- i.e. spawning more threads pays off once
// the workload is large enough to amortize the overhead.
//
// Each (n, k) configuration really writes k shard files (streamed pair by
// pair, so memory stays bounded) and measures the write time; the virtual
// end-to-end composes the k-worker formation makespan with the slowest
// shard write. Shards are deleted after each measurement to bound disk use.
// The default sweep stops at n = 60 (a full n = 100 write is ~5 GB per k);
// set PARMA_BENCH_FULL=1 for the paper's full range.
#include <filesystem>

#include "bench/bench_util.hpp"

using namespace parma;

int main() {
  const parallel::CostModel model;
  bench::print_cost_model(model);
  const Index cap = bench::full_sweep() ? 100 : 60;
  const std::string scratch = bench::results_dir() + "/fig9_scratch";

  Table table({"series", "n", "end_to_end_seconds", "write_seconds", "bytes_written"});
  const Index ks[] = {2, 4, 8, 16, 32};

  for (const Index n : bench::device_sweep(cap)) {
    const core::Engine engine = bench::make_engine(n);
    for (const Index k : ks) {
      core::StrategyOptions options;
      options.strategy = core::Strategy::kFineGrained;
      options.workers = k;
      options.chunk = 4;
      options.timing_mode = core::TimingMode::kVirtualReplay;  // modeled k writers
      options.cost_model = model;
      options.keep_system = false;  // stream shards; bound memory
      const core::IoResult io = engine.write_equations(scratch, options);
      table.add("k=" + std::to_string(k), n, io.virtual_end_to_end, io.write_seconds,
                io.bytes_written);
      std::filesystem::remove_all(scratch);
    }
  }
  bench::emit(table, "fig9_io_cost");

  std::cout << "\nexpected shape (paper Fig. 9): k-curves separate from n >= 20;"
               "\nhigher k lowers end-to-end time once formation dominates the"
               "\n(k-sharded) write.\n";
  if (!bench::full_sweep()) {
    std::cout << "note: default sweep capped at n = 60; PARMA_BENCH_FULL=1 extends "
                 "to n = 100 (~5 GB of shard writes per k).\n";
  }
  return 0;
}

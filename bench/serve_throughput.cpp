// Serving-throughput bench: batched shape-grouped serving vs naive
// one-session-per-request serving.
//
// Claim under test: admitting requests through serve::Server's shape-batched
// pipeline (one FormationCache hit + one warm executor per batch) beats a
// naive server that builds a fresh executor and a cold topology cache for
// every request. Both sides run the identical staged pipeline; only batching,
// executor warmth, and cache sharing differ, so the delta is the serving
// architecture, not the solver.
//
// For each burst size the bench submits a mixed-shape burst (round-robin over
// n in {6, 8, 10}), waits for drain, and reports offered load, wall time,
// req/s, and end-to-end p50/p99 from the server's own stats. Output: pretty
// table + CSV via bench_util, plus bench_results/serve_throughput.json for
// dashboards.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <utility>

#include "bench/bench_util.hpp"

using namespace parma;

namespace {

struct ModeResult {
  std::string mode;
  Index burst = 0;
  Real wall_seconds = 0.0;
  Real req_per_s = 0.0;
  Real p50_ms = 0.0;
  Real p99_ms = 0.0;
  std::uint64_t batches = 0;
  Real mean_batch = 0.0;
};

std::vector<serve::ParametrizeRequest> make_burst(Index burst, std::uint64_t seed) {
  const Index shapes[] = {6, 8, 10};
  Rng rng(seed);
  std::vector<serve::ParametrizeRequest> requests;
  requests.reserve(static_cast<std::size_t>(burst));
  for (Index i = 0; i < burst; ++i) {
    const Index n = shapes[i % 3];
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    serve::ParametrizeRequest request;
    request.measurement = mea::measure_exact(spec, truth);
    request.options.strategy = core::Strategy::kFineGrained;
    request.options.workers = 2;
    request.options.chunk = 4;
    request.options.keep_system = false;
    request.inverse.max_iterations = 15;
    requests.push_back(std::move(request));
  }
  return requests;
}

ModeResult run_mode(const std::string& mode, Index burst, bool batched) {
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = static_cast<std::size_t>(burst);
  if (batched) {
    options.max_batch = 8;
    options.warm_executors = true;
    options.share_cache = true;
  } else {
    // Naive one-session-per-request serving: every request pays executor
    // construction and a cold formation cache.
    options.max_batch = 1;
    options.warm_executors = false;
    options.share_cache = false;
  }
  serve::Server server(options);

  std::vector<serve::ParametrizeRequest> requests = make_burst(burst, 2022);
  Stopwatch wall;
  std::vector<serve::Ticket> tickets;
  tickets.reserve(requests.size());
  for (serve::ParametrizeRequest& request : requests) {
    tickets.push_back(server.submit(std::move(request), std::chrono::seconds(60)));
  }
  server.drain();
  const Real wall_seconds = wall.elapsed_seconds();
  for (serve::Ticket& ticket : tickets) {
    const serve::ParametrizeResult r = ticket.future().get();
    PARMA_REQUIRE(r.status == serve::RequestStatus::kOk, "bench request failed");
  }
  server.shutdown();

  const serve::Stats stats = server.stats();
  ModeResult result;
  result.mode = mode;
  result.burst = burst;
  result.wall_seconds = wall_seconds;
  result.req_per_s = static_cast<Real>(burst) / wall_seconds;
  result.p50_ms = stats.end_to_end.p50_seconds * 1e3;
  result.p99_ms = stats.end_to_end.p99_seconds * 1e3;
  result.batches = stats.batches;
  result.mean_batch = stats.mean_batch_size;
  return result;
}

void write_json(const std::vector<ModeResult>& results, const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  os << "{\n  \"bench\": \"serve_throughput\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"burst\": " << r.burst
       << ", \"wall_seconds\": " << r.wall_seconds << ", \"req_per_s\": " << r.req_per_s
       << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
       << ", \"batches\": " << r.batches << ", \"mean_batch\": " << r.mean_batch << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main() {
  std::vector<Index> bursts = {16, 48};
  if (bench::full_sweep()) bursts.push_back(96);

  // Untimed warmup: touch every code path once (allocator arenas, lazy
  // pool spin-up) so the first timed mode doesn't eat the cold start.
  (void)run_mode("warmup", 8, /*batched=*/true);
  (void)run_mode("warmup", 8, /*batched=*/false);

  Table table({"series", "burst", "wall_seconds", "req_per_s", "p50_ms", "p99_ms",
               "batches", "mean_batch"});
  std::vector<ModeResult> results;
  for (const Index burst : bursts) {
    for (const bool batched : {false, true}) {
      const ModeResult r =
          run_mode(batched ? "batched" : "naive", burst, batched);
      table.add(r.mode, r.burst, r.wall_seconds, r.req_per_s, r.p50_ms, r.p99_ms,
                static_cast<std::uint64_t>(r.batches), r.mean_batch);
      results.push_back(r);
    }
  }
  bench::emit(table, "serve_throughput");

  const std::string json_path = bench::results_dir() + "/serve_throughput.json";
  write_json(results, json_path);
  std::cout << "saved: " << json_path << "\n";

  std::cout << "\nexpected shape: the batched server sustains higher req/s and a"
               "\nlower p99 than the naive one-session-per-request server; the gap"
               "\nwidens with burst size as batches fill and topology reuse and"
               "\nexecutor warmth amortize per-request setup.\n";
  return 0;
}

// Fig. 6 reproduction: computation time of the joint-constraint equation
// formation under Parallel, Balanced Parallel, and the PyMP-style
// fine-grained strategy (plus the Single-thread baseline), across device
// sizes n = 10..100.
//
// Paper claims to reproduce: PyMP delivers the highest performance at scales
// n >= 20, "despite of lower performance than Balanced Parallel at n = 10
// where the parallelization overhead outweighs the speedup."
//
// Task costs are measured for real on this machine; the per-strategy timing
// is the virtual k-worker replay (see DESIGN.md Section 2). The paper's
// on-premises server has 32 cores, so PyMP runs with k = 32 while Parallel
// and Balanced Parallel are capped at the 4 constraint categories.
#include "bench/bench_util.hpp"

using namespace parma;

int main() {
  const parallel::CostModel model;  // calibrated defaults
  bench::print_cost_model(model);
  std::cout << "strategy workers: parallel<=4, balanced<=4 (category threads), "
               "pymp=32 (fine-grained)\n\n";

  Table table({"series", "n", "seconds", "equations", "speedup_vs_serial"});
  struct Config {
    const char* name;
    core::Strategy strategy;
    Index workers;
  };
  const Config configs[] = {
      {"single-thread", core::Strategy::kSingleThread, 1},
      {"parallel", core::Strategy::kParallel, 4},
      {"balanced-parallel", core::Strategy::kBalancedParallel, 4},
      {"pymp-32", core::Strategy::kFineGrained, 32},
  };

  for (const Index n : bench::device_sweep()) {
    const core::Engine engine = bench::make_engine(n);
    Real serial_seconds = 0.0;
    for (const Config& config : configs) {
      core::StrategyOptions options;
      options.strategy = config.strategy;
      options.workers = config.workers;
      options.chunk = 4;
      options.timing_mode = core::TimingMode::kVirtualReplay;  // Fig. 6 is virtual time
      options.cost_model = model;
      options.keep_system = false;  // bound memory at large n
      const core::FormationResult result = engine.form_equations(options);
      if (config.strategy == core::Strategy::kSingleThread) {
        serial_seconds = result.virtual_seconds();
      }
      table.add(config.name, n, result.virtual_seconds(),
                static_cast<Index>(engine.spec().num_equations()),
                serial_seconds / result.virtual_seconds());
    }
  }
  bench::emit(table, "fig6_strategies");

  std::cout << "\nexpected shape (paper Fig. 6): balanced-parallel fastest at n=10;"
               "\npymp-32 fastest for n >= 20 and pulling away with n.\n";
  return 0;
}

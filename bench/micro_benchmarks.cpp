// google-benchmark microbenchmarks for Parma's kernels: per-pair equation
// generation, the per-pair nodal solve, effective resistance, GF(2) rank,
// dense Cholesky, sparse matvec/CG, and the work-stealing deque.
#include <benchmark/benchmark.h>

#include "core/parma.hpp"
#include "parallel/work_stealing_deque.hpp"
#include "topology/boundary.hpp"
#include "topology/gf2_matrix.hpp"

namespace {

using namespace parma;

mea::Measurement measurement_for(Index n) {
  Rng rng(5000 + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  return mea::measure_exact(spec, truth);
}

circuit::ResistanceGrid grid_for(Index n) {
  Rng rng(6000 + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  return mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
}

void BM_GeneratePairEquations(benchmark::State& state) {
  const Index n = state.range(0);
  const mea::Measurement m = measurement_for(n);
  const equations::UnknownLayout layout(m.spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(equations::generate_pair_equations(layout, m, n / 2, n / 2));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GeneratePairEquations)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Complexity();

void BM_PairNodalSolve(benchmark::State& state) {
  const Index n = state.range(0);
  const circuit::ResistanceGrid grid = grid_for(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(equations::solve_pair(grid, n / 2, n / 2, 5.0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PairNodalSolve)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Complexity();

void BM_EffectiveResistanceFactor(benchmark::State& state) {
  const Index n = state.range(0);
  const circuit::ResistanceGrid grid = grid_for(n);
  const circuit::ResistorNetwork net = circuit::build_crossbar_network(grid);
  for (auto _ : state) {
    linalg::EffectiveResistance oracle(net.num_nodes(), net.weighted_edges());
    benchmark::DoNotOptimize(oracle.between(0, n));
  }
}
BENCHMARK(BM_EffectiveResistanceFactor)->Arg(5)->Arg(10)->Arg(20);

void BM_Gf2BoundaryRank(benchmark::State& state) {
  const Index n = state.range(0);
  const topology::WireComplex wc = topology::build_wire_complex(n, n);
  const topology::Gf2Matrix d1 = topology::boundary_matrix(wc.complex, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d1.rank());
  }
}
BENCHMARK(BM_Gf2BoundaryRank)->Arg(5)->Arg(10)->Arg(15);

void BM_DenseCholesky(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(7000);
  linalg::DenseMatrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  linalg::DenseMatrix spd = a.multiply(a.transpose());
  for (Index i = 0; i < n; ++i) spd(i, i) += static_cast<Real>(n);
  for (auto _ : state) {
    linalg::CholeskyFactorization chol(spd);
    benchmark::DoNotOptimize(chol.lower());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DenseCholesky)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_SparseMatvec(benchmark::State& state) {
  const Index n = state.range(0);
  const circuit::ResistanceGrid grid = grid_for(n);
  const circuit::ResistorNetwork net = circuit::build_crossbar_network(grid);
  const linalg::CsrMatrix lap = linalg::build_sparse_laplacian(net.num_nodes(),
                                                               net.weighted_edges());
  std::vector<Real> x(static_cast<std::size_t>(lap.cols()), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lap.multiply(x));
  }
}
BENCHMARK(BM_SparseMatvec)->Arg(20)->Arg(50)->Arg(100);

void BM_ConjugateGradientLaplacian(benchmark::State& state) {
  const Index n = state.range(0);
  const circuit::ResistanceGrid grid = grid_for(n);
  const circuit::ResistorNetwork net = circuit::build_crossbar_network(grid);
  linalg::CooBuilder builder(net.num_nodes(), net.num_nodes());
  for (const auto& e : net.weighted_edges()) {
    builder.add(e.u, e.u, e.conductance);
    builder.add(e.v, e.v, e.conductance);
    builder.add(e.u, e.v, -e.conductance);
    builder.add(e.v, e.u, -e.conductance);
  }
  for (Index v = 0; v < net.num_nodes(); ++v) builder.add(v, v, 1e-6);  // regularize
  const linalg::CsrMatrix a = builder.build();
  std::vector<Real> b(static_cast<std::size_t>(a.rows()), 0.0);
  b.front() = 1.0;
  b.back() = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::conjugate_gradient(a, b));
  }
}
BENCHMARK(BM_ConjugateGradientLaplacian)->Arg(20)->Arg(50);

void BM_WorkStealingDequePushPop(benchmark::State& state) {
  parallel::WorkStealingDeque<int> deque;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) deque.push(i);
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(deque.pop());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_WorkStealingDequePushPop);

void BM_VirtualScheduleDynamic(benchmark::State& state) {
  const Index tasks_count = state.range(0);
  std::vector<parallel::VirtualTask> tasks(static_cast<std::size_t>(tasks_count));
  Rng rng(8000);
  for (auto& t : tasks) t = {rng.uniform(1e-6, 1e-4), 0, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::schedule_dynamic(tasks, 32, 4));
  }
  state.SetItemsProcessed(state.iterations() * tasks_count);
}
BENCHMARK(BM_VirtualScheduleDynamic)->Arg(1000)->Arg(10000);

void BM_InverseRecoveryIteration(benchmark::State& state) {
  const Index n = state.range(0);
  const mea::Measurement m = measurement_for(n);
  for (auto _ : state) {
    solver::InverseOptions options;
    options.max_iterations = 1;
    benchmark::DoNotOptimize(solver::recover_resistances(m, options));
  }
}
BENCHMARK(BM_InverseRecoveryIteration)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

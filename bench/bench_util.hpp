// Shared helpers for the figure benchmarks.
//
// Every figure binary:
//  * builds deterministic synthetic devices (seeded per n),
//  * prints its series as `series,x,y[,...]` CSV to stdout AND saves the same
//    CSV under bench_results/ (override with PARMA_RESULTS_DIR),
//  * honors PARMA_BENCH_FULL=1 to extend sweeps to the paper's full n = 100
//    (default sweeps stop earlier where disk/time would dominate a dev loop).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/parma.hpp"

namespace parma::bench {

inline bool full_sweep() {
  const char* env = std::getenv("PARMA_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

inline std::string results_dir() {
  const char* env = std::getenv("PARMA_RESULTS_DIR");
  return env != nullptr ? std::string(env) : std::string("bench_results");
}

/// The paper's workload sweep, n in {10, 20, ..., 100}; `cap` trims it for
/// benches whose cost grows faster than generation (e.g. full disk writes).
inline std::vector<Index> device_sweep(Index cap = 100) {
  std::vector<Index> sweep;
  for (Index n = 10; n <= cap; n += 10) {
    if (n > 60 && n % 20 != 0) continue;  // 10..60, then 80, 100
    sweep.push_back(n);
  }
  return sweep;
}

/// Deterministic engine per device size: two anomaly blobs, mild jitter,
/// exact measurement (the benchmarks measure compute, not noise robustness).
inline core::Engine make_engine(Index n, std::uint64_t seed = 2022) {
  Rng rng(seed + static_cast<std::uint64_t>(n) * 7919);
  const mea::DeviceSpec spec = mea::square_device(n);
  mea::GeneratorOptions options = mea::random_scenario(spec, 2, rng);
  options.jitter_fraction = 0.01;
  const auto truth = mea::generate_field(spec, options, rng);
  return core::Engine(mea::measure_exact(spec, truth));
}

/// Emits the table to stdout (pretty + CSV) and saves the CSV.
inline void emit(const Table& table, const std::string& name) {
  table.write_pretty(std::cout);
  std::cout << "\n--- CSV (" << name << ") ---\n";
  table.write_csv(std::cout);
  const std::string path = results_dir() + "/" + name + ".csv";
  table.save_csv(path);
  std::cout << "saved: " << path << "\n";
}

inline void print_cost_model(const parallel::CostModel& m) {
  std::cout << "cost model: spawn=" << m.worker_spawn_overhead
            << "s/worker (sequential), dispatch=" << m.task_dispatch_overhead
            << "s/task, chunk-claim=" << m.chunk_claim_overhead
            << "s, rebalance=" << m.rebalance_overhead << "s\n";
}

}  // namespace parma::bench

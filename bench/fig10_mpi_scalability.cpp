// Fig. 10 reproduction: strong scaling of the MPI implementation across
// p in {32, 64, ..., 1024} ranks for workloads n in {10, 20, 50, 100}.
//
// Paper claims to reproduce: "a linear strong scalability for practical
// workloads (e.g., 50x50 or larger MEAs). For smaller workloads (e.g., 10x10
// and 20x20 MEAs), the inter-node parallelism is not effective."
//
// Task costs are measured for real; the cluster replay uses the alpha-beta
// model of mpisim/cluster_model.hpp with FDR-InfiniBand-like parameters
// (~2 us latency, ~6.8 GB/s links) documented in the output. The in-process
// message-passing runtime itself is correctness-tested in tests/test_mpisim
// and demonstrated in examples/; 1,024 real ranks do not fit a 1-core host.
//
// The ':ring' series replays the n=50 workload with the cluster tier's
// consistent-hash placement (cluster::ring_assignment) instead of contiguous
// blocks -- the same placement code path src/cluster's Router shards real
// requests with. Near-identical makespans show the ring's slight load spread
// costs little even at 1,024 ranks, which is what lets the serving tier buy
// minimal-movement failover for free.
#include <cmath>

#include "bench/bench_util.hpp"
#include "cluster/hash_ring.hpp"
#include "mpisim/cluster_model.hpp"

using namespace parma;

int main() {
  mpisim::ClusterCostModel model;
  std::cout << "cluster model: spawn=" << model.rank_spawn_overhead
            << "s*log2(p), alpha=" << model.latency_seconds
            << "s, beta=" << model.seconds_per_byte << "s/B (~"
            << 1.0 / model.seconds_per_byte / 1e9 << " GB/s), GPFS client "
            << 1.0 / model.storage_seconds_per_byte / 1e9 << " GB/s\n";
  std::cout << "series suffixed ':paper-regime' replay the same measured tasks at\n"
               "500x cost, approximating the paper's Python-per-task substrate\n"
               "(calibration in EXPERIMENTS.md).\n\n";

  Table table({"series", "ranks", "seconds", "speedup_vs_32", "efficiency_vs_serial"});

  for (const Index n : {Index{10}, Index{20}, Index{50}, Index{100}}) {
    const core::Engine engine = bench::make_engine(n);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;
    options.chunk = 4;
    options.timing_mode = core::TimingMode::kVirtualReplay;
    options.keep_system = false;
    const core::FormationResult formation = engine.form_equations(options);

    for (const Real scale : {1.0, 500.0}) {
      mpisim::ClusterCostModel tuned = model;
      tuned.task_cost_scale = scale;
      const Real serial = formation.generation_seconds * scale;
      const std::string series =
          "n=" + std::to_string(n) + (scale > 1.0 ? ":paper-regime" : ":cpp-native");
      Real at32 = 0.0;
      for (Index p = 32; p <= 1024; p *= 2) {
        const mpisim::ClusterResult r = engine.distributed_formation(formation, p, tuned);
        if (p == 32) at32 = r.makespan_seconds;
        table.add(series, p, r.makespan_seconds, at32 / r.makespan_seconds,
                  r.efficiency(serial, p));
      }
    }
  }

  // Consistent-hash placement series: the exact owner map cluster::Router
  // derives from its ring, routed through the explicit-placement mpisim seam.
  {
    const Index n = 50;
    const core::Engine engine = bench::make_engine(n);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;
    options.chunk = 4;
    options.timing_mode = core::TimingMode::kVirtualReplay;
    options.keep_system = false;
    const core::FormationResult formation = engine.form_equations(options);
    mpisim::ClusterCostModel tuned = model;
    tuned.task_cost_scale = 500.0;
    const Real serial = formation.generation_seconds * 500.0;
    Real at32 = 0.0;
    for (Index p = 32; p <= 1024; p *= 2) {
      const std::vector<Index> owners =
          cluster::ring_assignment(formation.tasks.size(), p);
      const mpisim::ClusterResult r =
          mpisim::simulate_cluster(formation.tasks, p, tuned, owners);
      if (p == 32) at32 = r.makespan_seconds;
      table.add("n=" + std::to_string(n) + ":ring", p, r.makespan_seconds,
                at32 / r.makespan_seconds, r.efficiency(serial, p));
    }
  }
  bench::emit(table, "fig10_mpi_scalability");

  std::cout << "\nexpected shape (paper Fig. 10, the ':paper-regime' series): n=50 and"
               "\nn=100 scale near-linearly (speedup_vs_32 approaching 32x at p=1024);"
               "\nn=10 and n=20 flatten immediately (overhead-bound). The ':cpp-native'"
               "\nseries shows where the C++ kernel is already too fast for inter-node"
               "\nparallelism to pay off -- the paper's own 'intra-node recommended'"
               "\nconclusion, reached earlier because each task is ~500x cheaper.\n";
  return 0;
}

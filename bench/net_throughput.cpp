// Socket-transport throughput bench: loopback TCP serving vs in-process
// serving at the identical server configuration.
//
// Claim under test: the net tier (length-prefixed frames, poll readiness
// loop, writev flushes, Event-bridged completions) adds transport cost but
// not architecture cost -- a loopback client should sustain req/s within 2x
// of submitting the same burst in process, because encode/decode and the
// socket round trip overlap with solve time instead of serializing behind
// it.
//
// For each burst size the bench runs the same mixed-shape burst (round-robin
// n in {6, 8, 10}, 15 LM iterations) through (a) Server::submit in process
// and (b) a pipelined net::Client against a net::Listener on 127.0.0.1, and
// reports wall time, req/s, and end-to-end p50/p99 from the server's own
// stats. Output: pretty table + CSV via bench_util, plus
// bench_results/net_throughput.json with the in-process/loopback ratio.
// `--quick` trims the sweep for CI gates.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "bench/bench_util.hpp"
#include "net/client.hpp"
#include "net/listener.hpp"

using namespace parma;

namespace {

struct ModeResult {
  std::string mode;
  Index burst = 0;
  Real wall_seconds = 0.0;
  Real req_per_s = 0.0;
  Real p50_ms = 0.0;
  Real p99_ms = 0.0;
};

serve::ServerOptions server_options(Index burst) {
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = static_cast<std::size_t>(burst);
  options.max_batch = 8;
  return options;
}

std::vector<serve::ParametrizeRequest> make_burst(Index burst, std::uint64_t seed) {
  const Index shapes[] = {6, 8, 10};
  Rng rng(seed);
  std::vector<serve::ParametrizeRequest> requests;
  requests.reserve(static_cast<std::size_t>(burst));
  for (Index i = 0; i < burst; ++i) {
    const Index n = shapes[i % 3];
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    serve::ParametrizeRequest request;
    request.measurement = mea::measure_exact(spec, truth);
    request.options.strategy = core::Strategy::kFineGrained;
    request.options.workers = 2;
    request.options.chunk = 4;
    request.options.keep_system = false;
    request.inverse.max_iterations = 15;
    requests.push_back(std::move(request));
  }
  return requests;
}

ModeResult run_in_process(Index burst) {
  serve::Server server(server_options(burst));
  std::vector<serve::ParametrizeRequest> requests = make_burst(burst, 2022);

  Stopwatch wall;
  std::vector<serve::Ticket> tickets;
  tickets.reserve(requests.size());
  for (serve::ParametrizeRequest& request : requests) {
    tickets.push_back(server.submit(std::move(request), std::chrono::seconds(60)));
  }
  for (serve::Ticket& ticket : tickets) {
    const serve::ParametrizeResult r = ticket.future().get();
    PARMA_REQUIRE(r.status == serve::RequestStatus::kOk, "in-process request failed");
  }
  const Real wall_seconds = wall.elapsed_seconds();
  server.shutdown();

  const serve::Stats stats = server.stats();
  ModeResult result;
  result.mode = "in-process";
  result.burst = burst;
  result.wall_seconds = wall_seconds;
  result.req_per_s = static_cast<Real>(burst) / wall_seconds;
  result.p50_ms = stats.end_to_end.p50_seconds * 1e3;
  result.p99_ms = stats.end_to_end.p99_seconds * 1e3;
  return result;
}

ModeResult run_loopback(Index burst) {
  serve::Server server(server_options(burst));
  net::ListenerOptions lopts;
  lopts.max_inflight_per_connection = static_cast<std::size_t>(burst);
  net::Listener listener(server, lopts);
  listener.start();

  std::vector<serve::ParametrizeRequest> requests = make_burst(burst, 2022);

  net::Client client;
  net::ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);

  // Same submit-then-collect pattern as the in-process side: the whole burst
  // goes down the pipe, then replies are awaited by id.
  Stopwatch wall;
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  for (serve::ParametrizeRequest& request : requests) {
    ids.push_back(client.send(request));
  }
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, std::chrono::seconds(60));
    PARMA_REQUIRE(reply.has_value(), "loopback request timed out");
    PARMA_REQUIRE(!reply->is_error, "loopback request failed: " + reply->error.message);
    PARMA_REQUIRE(reply->response.status() == serve::RequestStatus::kOk,
                  "loopback request not ok: " + reply->response.message);
  }
  const Real wall_seconds = wall.elapsed_seconds();

  client.disconnect();
  listener.stop();
  server.shutdown();

  const serve::Stats stats = server.stats();
  ModeResult result;
  result.mode = "loopback";
  result.burst = burst;
  result.wall_seconds = wall_seconds;
  result.req_per_s = static_cast<Real>(burst) / wall_seconds;
  result.p50_ms = stats.end_to_end.p50_seconds * 1e3;
  result.p99_ms = stats.end_to_end.p99_seconds * 1e3;
  return result;
}

void write_json(const std::vector<ModeResult>& results, Real worst_ratio,
                const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  os << "{\n  \"bench\": \"net_throughput\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"burst\": " << r.burst
       << ", \"wall_seconds\": " << r.wall_seconds << ", \"req_per_s\": " << r.req_per_s
       << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"worst_inprocess_over_loopback_ratio\": " << worst_ratio
     << ",\n  \"loopback_within_2x\": " << (worst_ratio <= 2.0 ? "true" : "false")
     << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  std::vector<Index> bursts = quick ? std::vector<Index>{12}
                                    : std::vector<Index>{16, 48};
  if (!quick && bench::full_sweep()) bursts.push_back(96);

  // Untimed warmup: allocator arenas, lazy pool spin-up, and the loopback
  // connect path, so the first timed burst doesn't eat the cold start.
  (void)run_in_process(8);
  (void)run_loopback(8);

  Table table({"series", "burst", "wall_seconds", "req_per_s", "p50_ms", "p99_ms"});
  std::vector<ModeResult> results;
  Real worst_ratio = 0.0;
  for (const Index burst : bursts) {
    const ModeResult local = run_in_process(burst);
    const ModeResult remote = run_loopback(burst);
    worst_ratio = std::max(worst_ratio, local.req_per_s / remote.req_per_s);
    for (const ModeResult& r : {local, remote}) {
      table.add(r.mode, r.burst, r.wall_seconds, r.req_per_s, r.p50_ms, r.p99_ms);
      results.push_back(r);
    }
  }
  bench::emit(table, "net_throughput");

  const std::string json_path = bench::results_dir() + "/net_throughput.json";
  write_json(results, worst_ratio, json_path);
  std::cout << "saved: " << json_path << "\n";

  std::cout << "\nworst in-process/loopback req/s ratio: " << worst_ratio
            << (worst_ratio <= 2.0 ? " (within the 2x transport budget)"
                                   : " (EXCEEDS the 2x transport budget)")
            << "\nexpected shape: loopback tracks in-process closely -- the wire"
               "\nadds microseconds of framing to milliseconds of solving, and the"
               "\npipelined client keeps the admission queue as full as direct"
               "\nsubmission does.\n";
  return worst_ratio <= 2.0 ? 0 : 1;
}

// Real-thread scaling of equation formation (the exec::Executor hot path).
//
// Unlike the fig* benches, nothing here is virtual time: every row is a
// wall-clock measurement of forming the n = 40 joint-constraint system
// (128,000 equations) with real worker threads. Serial formation is the
// baseline; the pooled and work-stealing backends are swept over worker
// counts. On a multicore host the 4-worker rows should show >= 2x speedup;
// on a single-core host (hardware_concurrency <= 1) real threads cannot beat
// serial and the table documents that honestly.
#include <algorithm>
#include <thread>

#include "bench/bench_util.hpp"

using namespace parma;

namespace {

Real median_of_three(const core::Engine& engine, const core::StrategyOptions& options) {
  Real samples[3];
  for (Real& s : samples) {
    s = engine.form_equations(options).generation_seconds;
  }
  std::sort(std::begin(samples), std::end(samples));
  return samples[1];
}

}  // namespace

int main() {
  const Index n = 40;
  const unsigned hardware = std::thread::hardware_concurrency();
  const core::Engine engine = bench::make_engine(n);

  std::cout << "real-thread formation scaling, n = " << n << " ("
            << engine.spec().num_equations() << " equations), hardware threads: "
            << hardware << "\n\n";

  core::StrategyOptions serial;
  serial.strategy = core::Strategy::kSingleThread;
  serial.keep_system = false;
  const Real serial_seconds = median_of_three(engine, serial);

  Table table({"series", "workers", "seconds", "speedup_vs_serial"});
  table.add("serial", 1, serial_seconds, 1.0);

  for (const exec::Backend backend : {exec::Backend::kPooled, exec::Backend::kStealing}) {
    for (const Index k : {Index{1}, Index{2}, Index{4}, Index{8}}) {
      core::StrategyOptions options;
      options.strategy = core::Strategy::kFineGrained;
      options.workers = k;
      options.chunk = 4;
      options.backend = backend;
      options.keep_system = false;
      const Real seconds = median_of_three(engine, options);
      table.add(exec::backend_name(backend), k, seconds, serial_seconds / seconds);
    }
  }
  bench::emit(table, "real_threads_scaling");

  if (hardware >= 4) {
    std::cout << "\nexpectation on this host: >= 2x at 4 workers (the acceptance"
                 "\nbar for the real-thread hot path).\n";
  } else {
    std::cout << "\nthis host exposes " << hardware << " hardware thread(s):"
                 "\nreal threads time-slice one core, so speedups cannot exceed ~1x"
                 "\nhere; run on a multicore host to observe the >= 2x bar at 4"
                 "\nworkers. Virtual-replay benches (fig6/fig7) model that regime.\n";
  }
  return 0;
}

// Headline reproduction (abstract / Section V): "the computation time is two
// orders of magnitude faster on up to 1,024 cores with almost linear
// scalability".
//
// Two comparisons:
//  1. Parametrization-formulation cost: the BigData'18-style path-based
//     baseline (exponential, infeasible past n ~ 6 -- reproduced by actually
//     running it where feasible) vs Parma's polynomial joint constraints.
//  2. Parma serial vs Parma on 1,024 simulated cluster ranks: the paper's
//     two-orders-of-magnitude claim.
#include <cmath>

#include "bench/bench_util.hpp"

using namespace parma;

int main() {
  // --- 1. Path-based baseline vs joint constraints -------------------------
  Table formulation({"n", "paths_total", "baseline_seconds", "joint_equations",
                     "joint_seconds", "speedup"});
  for (Index n = 2; n <= 6; ++n) {
    const core::Engine engine = bench::make_engine(n);

    // Baseline: enumerate every path for every endpoint pair and aggregate
    // (what [15] does before equation solving).
    Stopwatch baseline_clock;
    std::uint64_t total_paths = 0;
    const auto truth_z = engine.measurement().z;
    circuit::ResistanceGrid z_as_grid(n, n);
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) z_as_grid.at(i, j) = truth_z(i, j);
    }
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) {
        const auto paths = circuit::enumerate_paths(n, n, i, j);
        total_paths += paths.size();
        // Touch every path the way the baseline's aggregation does.
        Real sink = 0.0;
        for (const auto& p : paths) sink += circuit::path_resistance(z_as_grid, p);
        (void)sink;
      }
    }
    const Real baseline_seconds = baseline_clock.elapsed_seconds();

    core::StrategyOptions options;
    options.strategy = core::Strategy::kSingleThread;
    const core::FormationResult joint = engine.form_equations(options);
    formulation.add(n, total_paths, baseline_seconds,
                    static_cast<Index>(joint.system.equations.size()),
                    joint.generation_seconds,
                    baseline_seconds / std::max(joint.generation_seconds, 1e-9));
  }
  bench::emit(formulation, "headline_formulation");
  std::cout << "\npath count grows as n^(n-1) per pair; the paper (and [15]) report"
               "\nthe path-based approach infeasible for n > 6 -- the speedup column"
               "\nis already diverging by n = 6.\n\n";

  // --- 2. Serial vs 1,024 cluster ranks ------------------------------------
  Table cluster({"series", "n", "serial_seconds", "p1024_seconds", "speedup"});
  for (const Index n : {Index{50}, Index{100}}) {
    const core::Engine engine = bench::make_engine(n);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;
    options.timing_mode = core::TimingMode::kVirtualReplay;  // cluster replay needs tasks
    options.keep_system = false;
    const core::FormationResult formation = engine.form_equations(options);
    for (const Real scale : {1.0, 500.0}) {
      mpisim::ClusterCostModel model;
      model.task_cost_scale = scale;
      const Real serial = formation.generation_seconds * scale;
      const mpisim::ClusterResult wide = engine.distributed_formation(formation, 1024, model);
      cluster.add(scale > 1.0 ? "paper-regime" : "cpp-native", n, serial,
                  wide.makespan_seconds, serial / wide.makespan_seconds);
    }
  }
  bench::emit(cluster, "headline_cluster");
  std::cout << "\nexpected: paper-regime speedup >= 100x at n = 100 (the paper's two"
               "\norders of magnitude on 1,024 cores); cpp-native lands below that"
               "\nbecause each task is ~500x cheaper in C++, so fixed cluster costs"
               "\nbite sooner (Amdahl at the overheads).\n";
  return 0;
}

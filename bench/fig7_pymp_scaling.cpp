// Fig. 7 reproduction: computation time (no I/O) of the fine-grained
// (PyMP-style) strategy at parallelism k in {2, 4, 8, 16, 32}, across device
// sizes.
//
// Paper claims to reproduce: "Applying fine-grained multiprocessing leads to
// a linear decrease in the overall compute time per workload at scales
// n >= 20", with inconsistent behaviour at n = 10 (overhead-dominated).
//
// The formation (and its per-task cost measurement) runs once per n; each k
// is an independent virtual replay of the same measured tasks, exactly like
// re-running the paper's sweep on the same inputs.
#include "bench/bench_util.hpp"

using namespace parma;

int main() {
  const parallel::CostModel model;
  bench::print_cost_model(model);

  Table table({"series", "n", "seconds", "efficiency"});
  const Index ks[] = {2, 4, 8, 16, 32};

  for (const Index n : bench::device_sweep()) {
    const core::Engine engine = bench::make_engine(n);
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;
    options.workers = 2;  // replays below use the measured tasks directly
    options.chunk = 4;
    options.timing_mode = core::TimingMode::kVirtualReplay;
    options.keep_system = false;
    const core::FormationResult formation = engine.form_equations(options);

    for (const Index k : ks) {
      const parallel::ScheduleResult schedule =
          parallel::schedule_dynamic(formation.tasks, k, /*chunk=*/4, model);
      table.add("k=" + std::to_string(k), n, schedule.makespan_seconds,
                schedule.efficiency());
    }
  }
  bench::emit(table, "fig7_pymp_scaling");

  std::cout << "\nexpected shape (paper Fig. 7): for n >= 20 doubling k roughly"
               "\nhalves the compute time; at n = 10 the k-curves collapse/invert.\n";
  return 0;
}

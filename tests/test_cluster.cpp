// The cluster tier: consistent-hash placement, exact stats merging, the
// stats wire frames, worker supervision (real fork/exec'd processes), and
// the failover chaos storm.
//
// The ClusterChaos.* storm reruns under three PARMA_CHAOS_SEED values via
// the `chaos-cluster` ctest label (see tests/CMakeLists.txt); the seed
// varies the request mix while the kill schedule stays fixed, so three
// different storms hit the same failover machinery.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/router.hpp"
#include "cluster/supervisor.hpp"
#include "cluster/worker.hpp"
#include "core/parma.hpp"
#include "net/protocol.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"

#ifndef PARMA_CLUSTER_WORKER_BIN
#error "PARMA_CLUSTER_WORKER_BIN must name the worker binary"
#endif

using namespace parma;
using namespace std::chrono_literals;

namespace {

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("PARMA_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

/// Deterministic key stream for the placement tests.
std::uint64_t key_of(std::size_t i) {
  return cluster::mix64(static_cast<std::uint64_t>(i) * 2654435761u + 17);
}

serve::ParametrizeRequest make_request(Index n, Rng& rng) {
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  serve::ParametrizeRequest request;
  request.measurement = mea::measure_exact(spec, truth);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 4;
  request.options.keep_system = false;
  request.inverse.max_iterations = 20;
  return request;
}

/// Counts up/down callback firings and lets tests block on them.
struct FleetLog {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t ups = 0;
  std::uint64_t downs = 0;

  void up() {
    std::lock_guard lock(mu);
    ++ups;
    cv.notify_all();
  }
  void down() {
    std::lock_guard lock(mu);
    ++downs;
    cv.notify_all();
  }
  bool wait_ups(std::uint64_t target, std::chrono::seconds budget) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, budget, [&] { return ups >= target; });
  }
  bool wait_downs(std::uint64_t target, std::chrono::seconds budget) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, budget, [&] { return downs >= target; });
  }
};

// --------------------------------------------------------------- placement

TEST(HashRing, PlacementIsAPureFunctionOfMembership) {
  cluster::HashRing a;
  cluster::HashRing b;
  for (const Index w : {Index{0}, Index{1}, Index{2}, Index{3}, Index{4}}) a.add(w);
  for (const Index w : {Index{3}, Index{0}, Index{4}, Index{2}, Index{1}}) b.add(w);
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::uint64_t h = key_of(i);
    ASSERT_EQ(a.owner(h), b.owner(h)) << "insertion order changed placement";
    ASSERT_EQ(a.owners(h, 3), b.owners(h, 3));
  }
}

TEST(HashRing, RemovalMovesOnlyTheDepartedWorkersKeys) {
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kKeys = 4096;
  cluster::HashRing ring;
  for (std::size_t w = 0; w < kWorkers; ++w) ring.add(static_cast<Index>(w));

  std::vector<Index> before(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) before[i] = *ring.owner(key_of(i));

  const Index departed = 3;
  ring.remove(departed);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const Index after = *ring.owner(key_of(i));
    if (before[i] == departed) {
      EXPECT_NE(after, departed);
      ++moved;
    } else {
      // The consistent-hashing contract: keys not owned by the departed
      // worker do not move at all.
      EXPECT_EQ(after, before[i]) << "key " << i << " moved without cause";
    }
  }
  // ~1/K of the keyspace belongs to the departed worker; gate at 2/K.
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, 2 * kKeys / kWorkers)
      << "removal moved more than 2/K of the keys";
}

TEST(HashRing, OwnersAreDistinctWithPrimaryFirst) {
  cluster::HashRing ring;
  for (Index w = 0; w < 6; ++w) ring.add(w);
  for (std::size_t i = 0; i < 500; ++i) {
    const std::uint64_t h = key_of(i);
    const std::vector<Index> owners = ring.owners(h, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners[0], *ring.owner(h));
    const std::set<Index> distinct(owners.begin(), owners.end());
    EXPECT_EQ(distinct.size(), owners.size()) << "replica set not disjoint";
  }
  // Asking for more replicas than members yields every member, once each.
  const std::vector<Index> all = ring.owners(key_of(0), 99);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(std::set<Index>(all.begin(), all.end()).size(), 6u);
}

TEST(HashRing, EmptyRingHasNoOwner) {
  cluster::HashRing ring;
  EXPECT_FALSE(ring.owner(key_of(1)).has_value());
  EXPECT_TRUE(ring.owners(key_of(1), 2).empty());
  ring.add(7);
  ring.remove(7);
  EXPECT_FALSE(ring.owner(key_of(1)).has_value());
}

TEST(HashRing, ShardHashGroupsBatchIdentity) {
  const serve::BatchKey a{10, 10, exec::Backend::kSerial, 2};
  const serve::BatchKey b{10, 10, exec::Backend::kSerial, 2};
  const serve::BatchKey c{12, 12, exec::Backend::kSerial, 2};
  EXPECT_EQ(cluster::shard_hash(a), cluster::shard_hash(b));
  EXPECT_NE(cluster::shard_hash(a), cluster::shard_hash(c));
}

TEST(RingAssignment, CoversAllRanksDeterministically) {
  const std::vector<Index> owners = cluster::ring_assignment(4096, 8);
  ASSERT_EQ(owners.size(), 4096u);
  std::set<Index> used;
  for (const Index r : owners) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 8);
    used.insert(r);
  }
  EXPECT_EQ(used.size(), 8u) << "some rank got no work from the ring walk";
  EXPECT_EQ(owners, cluster::ring_assignment(4096, 8));
}

// ------------------------------------------------------------ stats merging

TEST(StatsMerge, HistogramMergeIsExact) {
  serve::LatencyHistogram left;
  serve::LatencyHistogram right;
  serve::LatencyHistogram all;
  Rng rng(chaos_seed());
  for (int i = 0; i < 500; ++i) {
    // Spread samples across many buckets: microseconds to seconds.
    const Real seconds = 1e-6 * std::pow(10.0, 6.0 * rng.uniform());
    (i % 2 == 0 ? left : right).record(seconds);
    all.record(seconds);
  }
  serve::StageStats merged = left.snapshot();
  merged.merge(right.snapshot());
  const serve::StageStats expect = all.snapshot();
  EXPECT_EQ(merged.buckets, expect.buckets);
  EXPECT_EQ(merged.total_nanos, expect.total_nanos);
  EXPECT_EQ(merged.max_nanos, expect.max_nanos);
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_DOUBLE_EQ(merged.mean_seconds, expect.mean_seconds);
  EXPECT_DOUBLE_EQ(merged.p50_seconds, expect.p50_seconds);
  EXPECT_DOUBLE_EQ(merged.p99_seconds, expect.p99_seconds);
  EXPECT_DOUBLE_EQ(merged.max_seconds, expect.max_seconds);
}

TEST(StatsMerge, CountersAddGaugesMaxDegradedOrs) {
  serve::Stats a;
  a.submitted = 10;
  a.accepted = 9;
  a.completed_ok = 8;
  a.retries = 2;
  a.batches = 4;
  a.batched_requests = 8;
  a.max_batch = 3;
  a.queue_high_water = 5;
  a.breaker_open_shapes = 1;
  a.degraded = false;

  serve::Stats b;
  b.submitted = 5;
  b.accepted = 5;
  b.completed_ok = 5;
  b.retries = 1;
  b.batches = 1;
  b.batched_requests = 4;
  b.max_batch = 4;
  b.queue_high_water = 2;
  b.breaker_open_shapes = 2;
  b.degraded = true;

  a.merge(b);
  EXPECT_EQ(a.submitted, 15u);
  EXPECT_EQ(a.accepted, 14u);
  EXPECT_EQ(a.completed_ok, 13u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_EQ(a.batches, 5u);
  EXPECT_EQ(a.batched_requests, 12u);
  // Per-process high-water marks take the max, not the sum.
  EXPECT_EQ(a.max_batch, 4u);
  EXPECT_EQ(a.queue_high_water, 5u);
  // Breaker boards are per-worker, so open-shape counts add; degraded ORs.
  EXPECT_EQ(a.breaker_open_shapes, 3u);
  EXPECT_TRUE(a.degraded);
  // mean re-derived from the exact summed substrate: 12 requests / 5 batches.
  EXPECT_DOUBLE_EQ(a.mean_batch_size, 12.0 / 5.0);
}

TEST(StatsWire, SnapshotSurvivesTheWireExactly) {
  serve::StatsCollector collector;
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    collector.on_submitted();
    collector.on_accepted();
    collector.on_completed_ok();
    collector.end_to_end.record(1e-5 * (i + 1));
    collector.queue_wait.record(1e-6 * (i + 1));
  }
  collector.on_retry();
  collector.on_batch(3);
  collector.on_batch(5);
  serve::Stats original = collector.snapshot(11, 2);
  original.breaker_open_shapes = 2;
  original.degraded = true;

  const std::vector<std::uint8_t> bytes = net::encode_stats_response(99, original);
  net::FrameDecoder decoder;
  decoder.feed(bytes);
  net::Frame frame;
  ASSERT_EQ(decoder.next(frame), net::FrameDecoder::Result::kFrame)
      << decoder.error().message;
  ASSERT_EQ(frame.type, net::FrameType::kStatsResponse);
  ASSERT_TRUE(frame.stats.has_value());
  const serve::Stats& got = *frame.stats;

  EXPECT_EQ(got.submitted, original.submitted);
  EXPECT_EQ(got.completed_ok, original.completed_ok);
  EXPECT_EQ(got.retries, original.retries);
  EXPECT_EQ(got.batches, original.batches);
  EXPECT_EQ(got.batched_requests, original.batched_requests);
  EXPECT_EQ(got.max_batch, original.max_batch);
  EXPECT_EQ(got.queue_high_water, original.queue_high_water);
  EXPECT_EQ(got.breaker_open_shapes, original.breaker_open_shapes);
  EXPECT_EQ(got.degraded, original.degraded);
  EXPECT_EQ(got.end_to_end.buckets, original.end_to_end.buckets);
  EXPECT_EQ(got.end_to_end.total_nanos, original.end_to_end.total_nanos);
  EXPECT_EQ(got.end_to_end.max_nanos, original.end_to_end.max_nanos);
  // Derived summaries are recomputed on decode and must land on the same
  // values the sender computed from the identical substrate.
  EXPECT_DOUBLE_EQ(got.end_to_end.p99_seconds, original.end_to_end.p99_seconds);
  EXPECT_DOUBLE_EQ(got.end_to_end.mean_seconds, original.end_to_end.mean_seconds);
  EXPECT_DOUBLE_EQ(got.mean_batch_size, original.mean_batch_size);
}

// -------------------------------------------------------------- supervision

TEST(Supervisor, SpawnsWorkersAndStopsCleanly) {
  FleetLog log;
  cluster::SupervisorOptions opts;
  opts.worker_binary = PARMA_CLUSTER_WORKER_BIN;
  opts.workers = 2;
  opts.server_workers = 1;
  cluster::Supervisor supervisor(
      opts, [&log](const cluster::WorkerEndpoint&) { log.up(); },
      [&log](Index) { log.down(); });
  supervisor.start();
  EXPECT_TRUE(log.wait_ups(2, 10s));
  const std::vector<cluster::WorkerEndpoint> endpoints = supervisor.endpoints();
  ASSERT_EQ(endpoints.size(), 2u);
  std::set<std::uint16_t> ports;
  for (const cluster::WorkerEndpoint& e : endpoints) {
    EXPECT_NE(e.port, 0);
    EXPECT_EQ(e.generation, 1u);  // generation counts spawns, starting at 1
    ports.insert(e.port);
  }
  EXPECT_EQ(ports.size(), 2u) << "workers share a port";
  supervisor.stop();
  EXPECT_EQ(supervisor.restarts(), 0u);
}

TEST(Supervisor, CrashingWorkerIsDetectedAndRestarted) {
  FleetLog log;
  cluster::SupervisorOptions opts;
  opts.worker_binary = PARMA_CLUSTER_WORKER_BIN;
  opts.workers = 1;
  opts.server_workers = 1;
  // The deterministic injector fires kWorkerCrash on the worker's first
  // watch tick, every generation: a crash-looping worker.
  opts.crash_probability = 1.0;
  opts.crash_max_fires = 1;
  opts.chaos_seed = chaos_seed();
  opts.restart_backoff = 10ms;
  opts.restart_backoff_cap = 50ms;
  cluster::Supervisor supervisor(
      opts, [&log](const cluster::WorkerEndpoint&) { log.up(); },
      [&log](Index) { log.down(); });
  supervisor.start();
  // Initial spawn, then at least two crash -> backoff -> restart -> warm-up
  // cycles observed through the callbacks.
  EXPECT_TRUE(log.wait_downs(2, 20s)) << "crashes not detected";
  EXPECT_TRUE(log.wait_ups(2, 20s)) << "restarts did not warm up";
  EXPECT_GE(supervisor.restarts(), 1u);
  supervisor.stop();
}

TEST(Supervisor, CrashLoopIsAbandonedAfterMaxRestarts) {
  FleetLog log;
  cluster::SupervisorOptions opts;
  opts.worker_binary = PARMA_CLUSTER_WORKER_BIN;
  opts.workers = 1;
  opts.server_workers = 1;
  opts.crash_probability = 1.0;
  opts.crash_max_fires = 1;
  opts.chaos_seed = chaos_seed();
  opts.restart_backoff = 5ms;
  opts.restart_backoff_cap = 10ms;
  opts.max_restarts = 2;
  // Stability is judged at detection time; under a sanitizer the monitor
  // can notice a 20ms-old corpse over a second late, so make the stable
  // window generous enough that a flapping worker can never be mistaken
  // for a stable one.
  opts.stable_uptime = 60s;
  cluster::Supervisor supervisor(
      opts, [&log](const cluster::WorkerEndpoint&) { log.up(); },
      [&log](Index) { log.down(); });
  supervisor.start();
  EXPECT_TRUE(log.wait_downs(3, 30s));  // initial + 2 restarts, all crash
  // Give the monitor a beat to mark the slot abandoned after the last death.
  for (int i = 0; i < 100 && supervisor.abandoned() == 0; ++i) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(supervisor.abandoned(), 1);
  EXPECT_EQ(supervisor.restarts(), 2u);
  supervisor.stop();
}

// ------------------------------------------------------------------ routing

TEST(Router, NoWorkersYieldsTypedTransportVerdict) {
  cluster::Router router;
  Rng rng(1);
  const cluster::Router::RouteResult routed = router.dispatch(make_request(6, rng));
  EXPECT_FALSE(routed.ok());
  EXPECT_NE(routed.reply.transport, net::ClientError::kNone);
  EXPECT_EQ(routed.worker, -1);
  EXPECT_EQ(router.counters().exhausted, 1u);
}

TEST(Router, RouteOfReturnsDistinctAdmittedCandidates) {
  cluster::Router router;
  for (Index w = 0; w < 4; ++w) {
    router.worker_up(cluster::WorkerEndpoint{w, static_cast<std::uint16_t>(9000 + w), 0});
  }
  Rng rng(2);
  const serve::ParametrizeRequest request = make_request(8, rng);
  const std::vector<Index> route = router.route_of(request);
  ASSERT_EQ(route.size(), 2u);  // default replicas = 2
  EXPECT_NE(route[0], route[1]);
  // Same request, same route: placement is deterministic.
  EXPECT_EQ(route, router.route_of(request));
  router.worker_down(route[0]);
  const std::vector<Index> rerouted = router.route_of(request);
  ASSERT_FALSE(rerouted.empty());
  EXPECT_NE(rerouted[0], route[0]) << "downed worker still primary";
}

// ---------------------------------------------------------- the chaos storm

// kill -9 two workers mid-storm (one while the fleet is whole, one while the
// first restart may still be warming up). Every request must complete with a
// definite typed outcome, no request may be lost or answered twice, and
// every reply must be bit-identical to the fault-free baseline.
TEST(ClusterChaos, KillNineMidStormFailsOverBitIdentically) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  constexpr Index kRequests = 24;
  Rng rng(seed);
  std::vector<serve::ParametrizeRequest> requests;
  const std::vector<Index> shapes = {6, 8, 10};
  for (Index i = 0; i < kRequests; ++i) {
    requests.push_back(make_request(shapes[static_cast<std::size_t>(i) % shapes.size()], rng));
  }

  // Fault-free baseline: the same requests through an in-process server,
  // flattened by the same wire mapping the cluster replies use.
  std::vector<std::vector<Real>> baseline;
  {
    serve::ServerOptions sopts;
    sopts.workers = 1;
    serve::Server server(sopts);
    for (const serve::ParametrizeRequest& request : requests) {
      serve::ParametrizeRequest copy = request;
      serve::Ticket ticket = server.submit(std::move(copy), 60s);
      ASSERT_TRUE(ticket.accepted());
      const serve::ParametrizeResult result = ticket.future().get();
      ASSERT_EQ(result.status, serve::RequestStatus::kOk);
      baseline.push_back(net::WireResponse::from_result(0, result).field);
      ASSERT_FALSE(baseline.back().empty());
    }
    server.shutdown();
  }

  cluster::RouterOptions ropts;
  ropts.attempt_timeout = 60s;
  cluster::Router router(ropts);
  cluster::SupervisorOptions sopts;
  sopts.worker_binary = PARMA_CLUSTER_WORKER_BIN;
  sopts.workers = 3;
  sopts.server_workers = 1;
  cluster::Supervisor supervisor(
      sopts, [&router](const cluster::WorkerEndpoint& e) { router.worker_up(e); },
      [&router](Index id) { router.worker_down(id); });
  supervisor.start();
  ASSERT_EQ(router.live_workers(), 3u);

  Index replies = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i == requests.size() / 3) supervisor.kill_worker(0);
    if (i == 2 * requests.size() / 3) supervisor.kill_worker(1);
    const cluster::Router::RouteResult routed = router.dispatch(requests[i]);
    // Definite typed outcome: a server verdict or a typed transport error,
    // never silence. With a 2-way replica set and one death at a time the
    // storm must in fact complete every request.
    ASSERT_TRUE(routed.ok()) << "request " << i << ": transport "
                             << net::client_error_name(routed.reply.transport);
    ASSERT_EQ(routed.reply.response.status(), serve::RequestStatus::kOk);
    ++replies;  // dispatch() returns exactly one reply -- none lost, none duplicated
    const std::vector<Real>& expect = baseline[i];
    ASSERT_EQ(routed.reply.response.field.size(), expect.size());
    EXPECT_EQ(std::memcmp(routed.reply.response.field.data(), expect.data(),
                          expect.size() * sizeof(Real)),
              0)
        << "request " << i << " failed over to a different field";
  }
  EXPECT_EQ(replies, kRequests);

  const cluster::RouterCounters rc = router.counters();
  EXPECT_EQ(rc.dispatched, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(rc.exhausted, 0u);
  EXPECT_EQ(rc.workers_lost, 2u);
  EXPECT_GE(rc.workers_joined, 3u);

  // The supervisor must have noticed both murders; restarts land when the
  // backoff expires (give them a moment before asserting).
  for (int i = 0; i < 200 && supervisor.restarts() < 2; ++i) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_GE(supervisor.restarts(), 2u);
  supervisor.stop();
}

// The aggregated view: stats merged across live workers count every request
// the storm completed on workers that are still alive to report.
TEST(ClusterChaos, ClusterStatsAggregateAcrossWorkers) {
  const std::uint64_t seed = chaos_seed();
  Rng rng(seed + 100);
  cluster::Router router;
  cluster::SupervisorOptions sopts;
  sopts.worker_binary = PARMA_CLUSTER_WORKER_BIN;
  sopts.workers = 3;
  sopts.server_workers = 1;
  cluster::Supervisor supervisor(
      sopts, [&router](const cluster::WorkerEndpoint& e) { router.worker_up(e); },
      [&router](Index id) { router.worker_down(id); });
  supervisor.start();

  constexpr Index kRequests = 9;
  for (Index i = 0; i < kRequests; ++i) {
    const cluster::Router::RouteResult routed =
        router.dispatch(make_request(6 + 2 * (i % 3), rng));
    ASSERT_TRUE(routed.ok());
  }
  std::size_t reporting = 0;
  const serve::Stats stats = router.cluster_stats(&reporting);
  EXPECT_EQ(reporting, 3u);
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.completed_ok, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.end_to_end.count, static_cast<std::uint64_t>(kRequests));
  supervisor.stop();
}

}  // namespace

// Tests for src/parallel: thread pool, work stealing, parallel_for, and the
// virtual-time schedulers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "common/require.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/virtual_scheduler.hpp"
#include "parallel/work_stealing_deque.hpp"
#include "parallel/work_stealing_pool.hpp"

namespace parma::parallel {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] {
      std::this_thread::yield();
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, RejectsZeroWorkers) { EXPECT_THROW(ThreadPool(0), ContractError); }

TEST(WorkStealingDeque, LifoForOwnerFifoForThief) {
  WorkStealingDeque<int> deque;
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.steal().value(), 1);  // oldest from the top
  EXPECT_EQ(deque.pop().value(), 3);    // newest from the bottom
  EXPECT_EQ(deque.pop().value(), 2);
  EXPECT_FALSE(deque.pop().has_value());
  EXPECT_FALSE(deque.steal().has_value());
}

TEST(WorkStealingDeque, GrowsPastInitialCapacity) {
  WorkStealingDeque<int> deque(2);
  for (int i = 0; i < 100; ++i) deque.push(i);
  for (int i = 99; i >= 0; --i) EXPECT_EQ(deque.pop().value(), i);
}

TEST(WorkStealingDeque, ConcurrentStealersReceiveEachItemOnce) {
  WorkStealingDeque<int> deque;
  const int items = 20000;
  std::atomic<long long> sum{0};
  std::atomic<int> taken{0};

  std::vector<std::thread> thieves;
  std::atomic<bool> start{false};
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      while (taken.load() < items) {
        if (auto v = deque.steal()) {
          sum.fetch_add(*v);
          taken.fetch_add(1);
        }
      }
    });
  }
  std::thread owner([&] {
    start.store(true);
    for (int i = 1; i <= items; ++i) deque.push(i);
    // Owner also pops; anything it takes counts too.
    while (taken.load() < items) {
      if (auto v = deque.pop()) {
        sum.fetch_add(*v);
        taken.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
  });
  owner.join();
  for (auto& t : thieves) t.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(items) * (items + 1) / 2);
}

TEST(WorkStealingPool, RunsEveryTask) {
  WorkStealingPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelFor, CoversRangeExactlyOnceAllSchedules) {
  for (const Schedule schedule : {Schedule::kStatic, Schedule::kDynamic, Schedule::kGuided}) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    ForOptions options;
    options.schedule = schedule;
    options.chunk = 7;
    parallel_for(pool, 0, 1000, [&hits](Index i) { hits[static_cast<std::size_t>(i)]++; },
                 options);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&calls](Index) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  ThreadPool pool(4);
  ForOptions options;
  options.schedule = Schedule::kDynamic;
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](Index i) {
                              if (i == 37) throw std::runtime_error("bad index");
                            },
                            options),
               std::runtime_error);
}

TEST(ParallelFor, ChunkedSeesContiguousRanges) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<Index, Index>> chunks;
  ForOptions options;
  options.schedule = Schedule::kGuided;
  options.chunk = 5;
  parallel_for_chunked(pool, 0, 103,
                       [&](Index lo, Index hi) {
                         std::lock_guard lock(mu);
                         chunks.emplace_back(lo, hi);
                       },
                       options);
  Index covered = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 103);
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const Real total =
      parallel_reduce_sum(pool, 1, 101, [](Index i) { return static_cast<Real>(i); });
  EXPECT_DOUBLE_EQ(total, 5050.0);
}

// --- Virtual schedulers ------------------------------------------------------

std::vector<VirtualTask> uniform_tasks(int count, Real cost, Index categories = 4) {
  std::vector<VirtualTask> tasks(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    tasks[static_cast<std::size_t>(i)] = {cost, i % categories, 100};
  }
  return tasks;
}

CostModel zero_overheads() {
  CostModel m;
  m.worker_spawn_overhead = 0.0;
  m.task_dispatch_overhead = 0.0;
  m.chunk_claim_overhead = 0.0;
  m.rebalance_overhead = 0.0;
  return m;
}

TEST(VirtualScheduler, SerialMakespanIsSumPlusOverheads) {
  const auto tasks = uniform_tasks(10, 1.0);
  const ScheduleResult r = schedule_serial(tasks, zero_overheads());
  EXPECT_NEAR(r.makespan_seconds, 10.0, 1e-12);
  EXPECT_NEAR(r.total_work_seconds, 10.0, 1e-12);
  EXPECT_NEAR(r.efficiency(), 1.0, 1e-12);
}

TEST(VirtualScheduler, ByCategoryBoundByLargestCategory) {
  // Category 0 holds 9s of work, the rest 1s each: makespan = 9.
  std::vector<VirtualTask> tasks;
  for (int i = 0; i < 9; ++i) tasks.push_back({1.0, 0, 0});
  for (Index c = 1; c < 4; ++c) tasks.push_back({1.0, c, 0});
  const ScheduleResult r = schedule_by_category(tasks, 4, zero_overheads());
  EXPECT_NEAR(r.makespan_seconds, 9.0, 1e-12);
  // Every task must be on its category worker.
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    EXPECT_EQ(r.assignment[t], tasks[t].category % 4);
  }
}

TEST(VirtualScheduler, LptBeatsCategoryOnSkewedLoad) {
  std::vector<VirtualTask> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back({1.0, 0, 0});  // skewed category
  tasks.push_back({1.0, 1, 0});
  const Real by_cat = schedule_by_category(tasks, 4, zero_overheads()).makespan_seconds;
  const ScheduleResult lpt = schedule_balanced_lpt(tasks, 4, zero_overheads());
  EXPECT_LT(lpt.makespan_seconds, by_cat);
  EXPECT_GT(lpt.moved_tasks, 0);
  // LPT is within 4/3 - 1/(3m) of optimal; optimal here is ceil(9/4) = 3.
  EXPECT_LE(lpt.makespan_seconds, 3.0 + 1e-12);
}

TEST(VirtualScheduler, MakespanLowerBoundsHold) {
  const auto tasks = uniform_tasks(97, 0.01);
  for (Index workers : {1, 2, 4, 8, 16}) {
    for (const auto& r : {schedule_balanced_lpt(tasks, workers, zero_overheads()),
                          schedule_dynamic(tasks, workers, 1, zero_overheads())}) {
      EXPECT_GE(r.makespan_seconds + 1e-12, r.total_work_seconds / static_cast<Real>(workers));
      EXPECT_GE(r.makespan_seconds + 1e-12, 0.01);  // longest task
      EXPECT_LE(r.efficiency(), 1.0 + 1e-12);
    }
  }
}

TEST(VirtualScheduler, DynamicImprovesWithWorkers) {
  const auto tasks = uniform_tasks(256, 0.005);
  Real prev = schedule_dynamic(tasks, 1, 1, zero_overheads()).makespan_seconds;
  for (Index workers : {2, 4, 8, 16}) {
    const Real t = schedule_dynamic(tasks, workers, 1, zero_overheads()).makespan_seconds;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(VirtualScheduler, OverheadsDominateTinyTasks) {
  // When per-task overhead exceeds task cost, adding workers cannot win
  // much -- the n = 10 regime of Fig. 6/7.
  CostModel heavy;
  heavy.worker_spawn_overhead = 1e-2;
  heavy.task_dispatch_overhead = 1e-4;
  heavy.chunk_claim_overhead = 1e-4;
  const auto tasks = uniform_tasks(40, 1e-5);
  const Real serial = schedule_serial(tasks, heavy).makespan_seconds;
  const Real wide = schedule_dynamic(tasks, 32, 1, heavy).makespan_seconds;
  EXPECT_GT(wide, serial * 0.5);  // nowhere near 32x
}

TEST(VirtualScheduler, DeterministicAcrossCalls) {
  const auto tasks = uniform_tasks(100, 0.001);
  const ScheduleResult a = schedule_balanced_lpt(tasks, 8);
  const ScheduleResult b = schedule_balanced_lpt(tasks, 8);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
}

TEST(VirtualScheduler, StartTimesNonOverlappingPerWorker) {
  const auto tasks = uniform_tasks(50, 0.002);
  const ScheduleResult r = schedule_dynamic(tasks, 4, 3, zero_overheads());
  // Group tasks by worker and check intervals do not overlap.
  for (Index w = 0; w < 4; ++w) {
    std::vector<std::pair<Real, Real>> intervals;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (r.assignment[t] == w) {
        intervals.emplace_back(r.start_time[t], r.start_time[t] + tasks[t].cost_seconds);
      }
    }
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t k = 1; k < intervals.size(); ++k) {
      EXPECT_GE(intervals[k].first + 1e-12, intervals[k - 1].second);
    }
  }
}

TEST(VirtualScheduler, MemoryTraceAccumulatesToTotal) {
  const auto tasks = uniform_tasks(10, 0.001);
  const ScheduleResult r = schedule_dynamic(tasks, 2, 1, zero_overheads());
  const auto trace = r.memory_trace(tasks, 1000);
  EXPECT_EQ(trace.front().bytes, 1000u);
  EXPECT_EQ(trace.back().bytes, 1000u + 10u * 100u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].bytes, trace[i - 1].bytes);  // formed equations persist
    EXPECT_GE(trace[i].time_seconds + 1e-12, trace[i - 1].time_seconds);
  }
}

TEST(VirtualScheduler, MoreWorkersReachPeakMemorySooner) {
  // The Fig. 8 phenomenon: peaks match across k, but the formation ramp
  // compresses with more workers while the terminal phase (write/solve, at
  // peak memory) does not scale -- so high-k runs spend a smaller fraction
  // of their life at low footprint.
  const auto tasks = uniform_tasks(64, 0.01);
  const Real tail_seconds = 0.2;  // non-scaling phase at peak memory
  auto cdf_for = [&](Index workers) {
    const ScheduleResult r = schedule_dynamic(tasks, workers, 1, zero_overheads());
    auto trace = r.memory_trace(tasks, 0);
    trace.push_back({r.makespan_seconds + tail_seconds, trace.back().bytes});
    return MemoryCdf(std::move(trace));
  };
  const MemoryCdf cdf_slow = cdf_for(2);
  const MemoryCdf cdf_fast = cdf_for(8);
  EXPECT_EQ(cdf_slow.peak_bytes(), cdf_fast.peak_bytes());
  const std::uint64_t half_peak = cdf_slow.peak_bytes() / 2;
  EXPECT_LT(cdf_fast.fraction_at_or_below(half_peak),
            cdf_slow.fraction_at_or_below(half_peak));
}

TEST(VirtualScheduler, SequentialSpawnGatesWideIdlePools) {
  // Fork-join semantics: even if one task finishes instantly, a 64-worker
  // pool cannot beat 64 sequential spawns -- the mechanism behind the
  // paper's n = 10 inversion.
  CostModel model;
  model.worker_spawn_overhead = 1e-3;
  const std::vector<VirtualTask> tiny{{1e-9, 0, 0}};
  const ScheduleResult wide = schedule_dynamic(tiny, 64, 1, model);
  EXPECT_GE(wide.makespan_seconds, 64.0 * 1e-3 - 1e-12);
  const ScheduleResult narrow = schedule_dynamic(tiny, 1, 1, model);
  EXPECT_LT(narrow.makespan_seconds, wide.makespan_seconds / 10.0);
}

TEST(VirtualScheduler, CategoryDefaultWorkerCountIsCategoryCount) {
  std::vector<VirtualTask> tasks{{1.0, 0, 0}, {1.0, 1, 0}, {1.0, 2, 0}};
  const ScheduleResult r = schedule_by_category(tasks, /*workers=*/0, zero_overheads());
  EXPECT_EQ(r.worker_finish.size(), 3u);
  EXPECT_NEAR(r.makespan_seconds, 1.0, 1e-12);
}

TEST(VirtualScheduler, EmptyTaskListIsHandled) {
  const std::vector<VirtualTask> none;
  EXPECT_NEAR(schedule_serial(none).total_work_seconds, 0.0, 1e-15);
  const ScheduleResult r = schedule_dynamic(none, 4, 1);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_GE(r.makespan_seconds, 0.0);
}

TEST(VirtualScheduler, RejectsInvalidArguments) {
  const auto tasks = uniform_tasks(4, 1.0);
  EXPECT_THROW(schedule_balanced_lpt(tasks, 0), ContractError);
  EXPECT_THROW(schedule_dynamic(tasks, 2, 0), ContractError);
  std::vector<VirtualTask> negative{{-1.0, 0, 0}};
  EXPECT_THROW(schedule_serial(negative), ContractError);
}

}  // namespace
}  // namespace parma::parallel

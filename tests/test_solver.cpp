// Tests for src/solver: inverse recovery by log-space LM and the full-system
// Gauss-Newton, against known ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "equations/generator.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "solver/full_system_solver.hpp"
#include "solver/inverse_solver.hpp"

namespace parma::solver {
namespace {

struct Scenario {
  mea::DeviceSpec spec;
  circuit::ResistanceGrid truth{1, 1};
  mea::Measurement measurement;
};

Scenario make_scenario(Index n, std::uint64_t seed, Index anomalies = 1,
                       Real noise = 0.0) {
  Rng rng(seed);
  Scenario s{mea::square_device(n), circuit::ResistanceGrid(1, 1), {}};
  mea::GeneratorOptions options = mea::random_scenario(s.spec, anomalies, rng);
  options.jitter_fraction = 0.01;
  s.truth = mea::generate_field(s.spec, options, rng);
  mea::MeasurementOptions mopt;
  mopt.noise_fraction = noise;
  s.measurement = mea::measure(s.spec, s.truth, mopt, rng);
  return s;
}

class ExactRecovery : public ::testing::TestWithParam<Index> {};

TEST_P(ExactRecovery, RecoversGroundTruthFromExactMeasurements) {
  const Index n = GetParam();
  const Scenario s = make_scenario(n, 100 + static_cast<std::uint64_t>(n));
  InverseOptions options;
  options.max_iterations = 80;
  options.tolerance = 1e-10;
  const InverseResult result = recover_resistances(s.measurement, options);
  EXPECT_TRUE(result.converged) << "misfit " << result.final_misfit;
  EXPECT_LT(result.max_relative_error(s.truth), 1e-4)
      << "n=" << n << " misfit=" << result.final_misfit;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExactRecovery, ::testing::Values(2, 3, 4, 5, 6));

TEST(Recovery, MisfitHistoryIsMonotoneNonIncreasing) {
  const Scenario s = make_scenario(4, 123);
  const InverseResult result = recover_resistances(s.measurement);
  ASSERT_GE(result.misfit_history.size(), 2u);
  for (std::size_t k = 1; k < result.misfit_history.size(); ++k) {
    EXPECT_LE(result.misfit_history[k], result.misfit_history[k - 1] + 1e-15);
  }
}

TEST(Recovery, NoisyMeasurementsDegradeGracefully) {
  const Scenario s = make_scenario(4, 124, 1, 0.01);
  InverseOptions options;
  options.max_iterations = 60;
  const InverseResult result = recover_resistances(s.measurement, options);
  // Cannot fit below the noise floor, but must stay in its vicinity.
  EXPECT_LT(result.final_misfit, 0.05);
  EXPECT_LT(result.max_relative_error(s.truth), 0.5);
}

TEST(Recovery, RecoveredValuesStayPositive) {
  const Scenario s = make_scenario(5, 125, 2);
  const InverseResult result = recover_resistances(s.measurement);
  for (Real v : result.recovered.flat()) EXPECT_GT(v, 0.0);
}

TEST(Recovery, AnomalyCellsAreLocalized) {
  // Plant a strong anomaly; the recovered field must rank that cell highest.
  Rng rng(126);
  const mea::DeviceSpec spec = mea::square_device(5);
  mea::GeneratorOptions options;
  options.jitter_fraction = 0.0;
  options.anomalies.push_back({3.0, 1.0, 0.7, 0.7, 11000.0});
  const auto truth = mea::generate_field(spec, options, rng);
  const mea::Measurement m = mea::measure_exact(spec, truth);
  const InverseResult result = recover_resistances(m);
  Index argmax = 0;
  for (Index e = 1; e < 25; ++e) {
    if (result.recovered.flat()[static_cast<std::size_t>(e)] >
        result.recovered.flat()[static_cast<std::size_t>(argmax)]) {
      argmax = e;
    }
  }
  EXPECT_EQ(argmax, 3 * 5 + 1);
}

TEST(Recovery, ExplicitInitialGuessIsHonored) {
  const Scenario s = make_scenario(3, 127);
  InverseOptions options;
  options.initial_resistance = 5000.0;
  options.max_iterations = 80;
  options.tolerance = 1e-10;
  const InverseResult result = recover_resistances(s.measurement, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.max_relative_error(s.truth), 1e-3);
}

TEST(Recovery, RejectsBadOptions) {
  const Scenario s = make_scenario(3, 128);
  InverseOptions options;
  options.max_iterations = 0;
  EXPECT_THROW(recover_resistances(s.measurement, options), ContractError);
}

TEST(Recovery, WarmStartConvergesFaster) {
  // The time-series workflow: epoch t's recovery seeds epoch t+1. A warm
  // start from (a slightly perturbed) truth must need fewer iterations than
  // the cold Z-based guess.
  const Scenario s = make_scenario(5, 150);
  InverseOptions cold;
  cold.max_iterations = 60;
  cold.tolerance = 1e-9;
  const InverseResult from_cold = recover_resistances(s.measurement, cold);

  InverseOptions warm = cold;
  circuit::ResistanceGrid near_truth = s.truth;
  for (Real& v : near_truth.flat()) v *= 1.02;
  warm.initial_grid = near_truth;
  const InverseResult from_warm = recover_resistances(s.measurement, warm);

  EXPECT_TRUE(from_warm.converged);
  EXPECT_LT(from_warm.iterations, from_cold.iterations);
  EXPECT_LT(from_warm.max_relative_error(s.truth), 1e-3);
}

TEST(Recovery, WarmStartValidatesShapeAndPositivity) {
  const Scenario s = make_scenario(3, 151);
  InverseOptions options;
  options.initial_grid = circuit::ResistanceGrid(4, 4, 1000.0);  // wrong shape
  EXPECT_THROW(recover_resistances(s.measurement, options), ContractError);
  circuit::ResistanceGrid negative(3, 3, 1000.0);
  negative.at(1, 1) = -5.0;
  options.initial_grid = negative;
  EXPECT_THROW(recover_resistances(s.measurement, options), ContractError);
}

TEST(Recovery, ParallelSweepsAreBitIdenticalToSerial) {
  // The per-pair forward solves are independent; with any worker count the
  // recovery must be exactly the same (determinism is a release criterion).
  const Scenario s = make_scenario(4, 140);
  InverseOptions serial;
  serial.max_iterations = 20;
  InverseOptions threaded = serial;
  threaded.workers = 4;
  const InverseResult a = recover_resistances(s.measurement, serial);
  const InverseResult b = recover_resistances(s.measurement, threaded);
  ASSERT_EQ(a.recovered.flat().size(), b.recovered.flat().size());
  for (std::size_t e = 0; e < a.recovered.flat().size(); ++e) {
    EXPECT_DOUBLE_EQ(a.recovered.flat()[e], b.recovered.flat()[e]);
  }
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.final_misfit, b.final_misfit);
}

TEST(Misfit, ZeroForIdenticalMatrices) {
  linalg::DenseMatrix a{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(impedance_misfit(a, a), 0.0);
}

TEST(Misfit, ScalesWithPerturbation) {
  linalg::DenseMatrix a{{100.0}};
  linalg::DenseMatrix b{{110.0}};
  EXPECT_NEAR(impedance_misfit(b, a), 0.1, 1e-12);
}

// --- Full-system Gauss-Newton ------------------------------------------------

TEST(FullSystem, InitialGuessIsFeasibleAndStructured) {
  const Scenario s = make_scenario(3, 129);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> x0 = initial_guess(system, s.measurement);
  ASSERT_EQ(static_cast<Index>(x0.size()), system.layout.num_unknowns());
  for (Index u = 0; u < system.layout.num_resistors(); ++u) {
    EXPECT_GT(x0[static_cast<std::size_t>(u)], 0.0);
  }
  // Voltage guesses must lie within the rails.
  for (Index u = system.layout.num_resistors(); u < system.layout.num_unknowns(); ++u) {
    EXPECT_GE(x0[static_cast<std::size_t>(u)], 0.0);
    EXPECT_LE(x0[static_cast<std::size_t>(u)], kWetLabVoltage);
  }
}

class FullSystemRecovery : public ::testing::TestWithParam<Index> {};

TEST_P(FullSystemRecovery, DrivesResidualDownAndRecoversR) {
  const Index n = GetParam();
  const Scenario s = make_scenario(n, 130 + static_cast<std::uint64_t>(n));
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  FullSystemOptions options;
  options.max_iterations = 60;
  const FullSystemResult result = solve_full_system(system, s.measurement, options);
  ASSERT_GE(result.residual_history.size(), 2u);
  EXPECT_LT(result.final_residual_rms, result.residual_history.front() * 1e-3);
  // The recovered grid must be close to truth (residual metric is currents,
  // so allow a looser relative bound than the LM path).
  Real worst = 0.0;
  for (std::size_t e = 0; e < s.truth.flat().size(); ++e) {
    worst = std::max(worst, std::abs(result.recovered.flat()[e] - s.truth.flat()[e]) /
                                s.truth.flat()[e]);
  }
  EXPECT_LT(worst, 0.02) << "n=" << n << " rms=" << result.final_residual_rms;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FullSystemRecovery, ::testing::Values(2, 3, 4));

TEST(FullSystem, AgreesWithLevenbergMarquardt) {
  const Scenario s = make_scenario(3, 131);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  FullSystemOptions fopt;
  fopt.max_iterations = 60;
  const FullSystemResult full = solve_full_system(system, s.measurement, fopt);
  InverseOptions iopt;
  iopt.max_iterations = 80;
  iopt.tolerance = 1e-12;
  const InverseResult lm = recover_resistances(s.measurement, iopt);
  for (std::size_t e = 0; e < s.truth.flat().size(); ++e) {
    EXPECT_NEAR(full.recovered.flat()[e], lm.recovered.flat()[e],
                0.02 * lm.recovered.flat()[e]);
  }
}

}  // namespace
}  // namespace parma::solver

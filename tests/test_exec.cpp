// Tests for src/exec: the unified real-thread execution backend -- bulk
// coverage, exception propagation, cost capture, and the cross-backend
// equivalence guarantee (every backend forms bit-identical equation
// systems under every strategy). This suite carries the `tsan` ctest label
// and is the one to run under -DPARMA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/session.hpp"
#include "exec/executor.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"

namespace parma::exec {
namespace {

std::vector<Backend> concrete_backends() {
  return {Backend::kSerial, Backend::kPooled, Backend::kStealing};
}

TEST(Executor, BackendNamesAreStable) {
  EXPECT_STREQ(backend_name(Backend::kAuto), "auto");
  EXPECT_STREQ(backend_name(Backend::kSerial), "serial");
  EXPECT_STREQ(backend_name(Backend::kPooled), "pooled");
  EXPECT_STREQ(backend_name(Backend::kStealing), "stealing");
}

TEST(Executor, FactoryRejectsBadArguments) {
  EXPECT_THROW((void)make_executor(Backend::kAuto, 2), ContractError);
  EXPECT_THROW((void)make_executor(Backend::kPooled, 0), ContractError);
}

TEST(Executor, EveryBackendCoversTheRangeExactlyOnce) {
  for (const Backend backend : concrete_backends()) {
    for (const Index chunk : {Index{1}, Index{3}, Index{64}}) {
      const auto executor = make_executor(backend, 4);
      constexpr Index kSpan = 101;
      std::vector<std::atomic<int>> touched(kSpan);
      for (auto& t : touched) t.store(0);
      const BulkResult r = executor->submit_bulk(0, kSpan, chunk, [&](Index lo, Index hi) {
        ASSERT_LE(hi - lo, chunk);
        for (Index i = lo; i < hi; ++i) touched[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (Index i = 0; i < kSpan; ++i) {
        EXPECT_EQ(touched[static_cast<std::size_t>(i)].load(), 1)
            << backend_name(backend) << " chunk " << chunk << " index " << i;
      }
      EXPECT_GE(r.elapsed_seconds, 0.0);
      EXPECT_TRUE(r.task_costs.empty());  // capture off by default
    }
  }
}

TEST(Executor, EmptyRangeIsANoOp) {
  for (const Backend backend : concrete_backends()) {
    const auto executor = make_executor(backend, 2);
    bool called = false;
    const BulkResult r =
        executor->submit_bulk(5, 5, 1, [&](Index, Index) { called = true; });
    EXPECT_FALSE(called);
    EXPECT_TRUE(r.task_costs.empty());
  }
}

TEST(Executor, RejectsMalformedBulk) {
  const auto executor = make_executor(Backend::kSerial, 1);
  EXPECT_THROW((void)executor->submit_bulk(3, 2, 1, [](Index, Index) {}), ContractError);
  EXPECT_THROW((void)executor->submit_bulk(0, 2, 0, [](Index, Index) {}), ContractError);
}

TEST(Executor, CapturedCostsPartitionTheRange) {
  for (const Backend backend : concrete_backends()) {
    const auto executor = make_executor(backend, 3);
    const BulkResult r = executor->submit_bulk(
        0, 50, 7,
        [](Index lo, Index hi) {
          volatile Real sink = 0.0;
          for (Index i = lo; i < hi; ++i) sink = sink + static_cast<Real>(i);
        },
        /*capture_costs=*/true);
    ASSERT_EQ(r.task_costs.size(), 8u) << backend_name(backend);
    Index expected_begin = 0;
    for (const TaskCost& cost : r.task_costs) {
      EXPECT_EQ(cost.begin, expected_begin);
      EXPECT_GT(cost.end, cost.begin);
      EXPECT_GE(cost.seconds, 0.0);
      expected_begin = cost.end;
    }
    EXPECT_EQ(expected_begin, 50);
    EXPECT_GE(r.cpu_seconds(), 0.0);
  }
}

TEST(Executor, ExceptionsPropagateFromEveryBackend) {
  for (const Backend backend : concrete_backends()) {
    const auto executor = make_executor(backend, 4);
    EXPECT_THROW((void)executor->submit_bulk(0, 40, 1,
                                             [](Index lo, Index) {
                                               if (lo == 17) throw std::runtime_error("boom");
                                             }),
                 std::runtime_error)
        << backend_name(backend);
    // The executor must stay usable after a failed bulk.
    std::atomic<Index> count{0};
    (void)executor->submit_bulk(0, 10, 2, [&](Index lo, Index hi) { count += hi - lo; });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(Executor, WorkerCountsAreReported) {
  EXPECT_EQ(make_executor(Backend::kSerial, 5)->workers(), 1);
  EXPECT_EQ(make_executor(Backend::kPooled, 3)->workers(), 3);
  EXPECT_EQ(make_executor(Backend::kStealing, 3)->workers(), 3);
}

// --- Cross-backend equivalence -------------------------------------------

core::Engine equivalence_engine(Index n) {
  Rng rng(4200 + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  return core::Engine(mea::measure_exact(spec, truth));
}

bool terms_identical(const equations::CurrentTerm& a, const equations::CurrentTerm& b) {
  return a.resistor_unknown == b.resistor_unknown && a.constant == b.constant &&
         a.plus_unknown == b.plus_unknown && a.minus_unknown == b.minus_unknown &&
         a.sign == b.sign;
}

::testing::AssertionResult systems_bit_identical(const equations::EquationSystem& a,
                                                 const equations::EquationSystem& b) {
  if (a.equations.size() != b.equations.size()) {
    return ::testing::AssertionFailure()
           << "equation counts differ: " << a.equations.size() << " vs "
           << b.equations.size();
  }
  for (std::size_t e = 0; e < a.equations.size(); ++e) {
    const auto& ea = a.equations[e];
    const auto& eb = b.equations[e];
    if (ea.category != eb.category || ea.pair_i != eb.pair_i || ea.pair_j != eb.pair_j ||
        ea.rhs != eb.rhs || ea.terms.size() != eb.terms.size()) {
      return ::testing::AssertionFailure() << "equation " << e << " header differs";
    }
    for (std::size_t t = 0; t < ea.terms.size(); ++t) {
      if (!terms_identical(ea.terms[t], eb.terms[t])) {
        return ::testing::AssertionFailure()
               << "equation " << e << " term " << t << " differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct EquivalenceCase {
  Index n;
  core::Strategy strategy;
};

class CrossBackendEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(CrossBackendEquivalence, AllBackendsFormBitIdenticalSystems) {
  const EquivalenceCase c = GetParam();
  const core::Engine engine = equivalence_engine(c.n);

  core::StrategyOptions options;
  options.strategy = c.strategy;
  options.workers = 4;
  options.chunk = 3;
  options.timing_mode = core::TimingMode::kRealThreads;

  options.backend = Backend::kSerial;
  const core::FormationResult reference = engine.form_equations(options);
  ASSERT_EQ(static_cast<Index>(reference.system.equations.size()),
            engine.spec().num_equations());

  for (const Backend backend : {Backend::kPooled, Backend::kStealing}) {
    options.backend = backend;
    const core::FormationResult other = engine.form_equations(options);
    EXPECT_TRUE(systems_bit_identical(reference.system, other.system))
        << "n=" << c.n << " strategy=" << core::strategy_name(c.strategy)
        << " backend=" << backend_name(backend);
    EXPECT_EQ(reference.equation_bytes, other.equation_bytes);
    ASSERT_EQ(reference.tasks.size(), other.tasks.size());
    for (std::size_t t = 0; t < reference.tasks.size(); ++t) {
      EXPECT_EQ(reference.tasks[t].bytes, other.tasks[t].bytes);
      EXPECT_EQ(reference.tasks[t].category, other.tasks[t].category);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSizesAndStrategies, CrossBackendEquivalence,
    ::testing::Values(
        EquivalenceCase{4, core::Strategy::kSingleThread},
        EquivalenceCase{4, core::Strategy::kParallel},
        EquivalenceCase{4, core::Strategy::kBalancedParallel},
        EquivalenceCase{4, core::Strategy::kFineGrained},
        EquivalenceCase{8, core::Strategy::kSingleThread},
        EquivalenceCase{8, core::Strategy::kParallel},
        EquivalenceCase{8, core::Strategy::kBalancedParallel},
        EquivalenceCase{8, core::Strategy::kFineGrained},
        EquivalenceCase{16, core::Strategy::kSingleThread},
        EquivalenceCase{16, core::Strategy::kParallel},
        EquivalenceCase{16, core::Strategy::kBalancedParallel},
        EquivalenceCase{16, core::Strategy::kFineGrained}));

TEST(CrossBackend, StreamingModeCountsAgreeAcrossBackends) {
  // keep_system = false in real mode: metrics must match the materialized
  // run for every backend.
  const core::Engine engine = equivalence_engine(6);
  core::StrategyOptions options;
  options.strategy = core::Strategy::kFineGrained;
  options.workers = 4;
  options.timing_mode = core::TimingMode::kRealThreads;
  options.backend = Backend::kSerial;
  const core::FormationResult materialized = engine.form_equations(options);

  for (const Backend backend : concrete_backends()) {
    options.backend = backend;
    options.keep_system = false;
    const core::FormationResult streamed = engine.form_equations(options);
    EXPECT_TRUE(streamed.system.equations.empty());
    EXPECT_EQ(streamed.equation_bytes, materialized.equation_bytes);
    ASSERT_EQ(streamed.tasks.size(), materialized.tasks.size());
    for (std::size_t t = 0; t < materialized.tasks.size(); ++t) {
      EXPECT_EQ(streamed.tasks[t].bytes, materialized.tasks[t].bytes);
    }
  }
}

}  // namespace
}  // namespace parma::exec

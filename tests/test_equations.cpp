// Tests for src/equations: the joint-constraint formulation itself -- unknown
// layout, equation census, exactness against the independent circuit solvers,
// residual/Jacobian consistency, and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>

#include "circuit/crossbar.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "equations/binary_io.hpp"
#include "equations/generator.hpp"
#include "equations/layout.hpp"
#include "equations/pair_system.hpp"
#include "equations/residual.hpp"
#include "equations/serializer.hpp"
#include "linalg/vector_ops.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"

namespace parma::equations {
namespace {

circuit::ResistanceGrid random_grid(Index rows, Index cols, Rng& rng) {
  circuit::ResistanceGrid grid(rows, cols);
  for (Real& v : grid.flat()) {
    v = rng.uniform(kWetLabMinResistanceKOhm, kWetLabMaxResistanceKOhm);
  }
  return grid;
}

mea::Measurement exact_measurement(Index rows, Index cols, Rng& rng,
                                   circuit::ResistanceGrid* truth_out = nullptr) {
  const mea::DeviceSpec spec{rows, cols, kWetLabVoltage};
  circuit::ResistanceGrid truth = random_grid(rows, cols, rng);
  if (truth_out != nullptr) *truth_out = truth;
  return mea::measure_exact(spec, truth);
}

TEST(Layout, IndicesArePairwiseDistinctAndDense) {
  const mea::DeviceSpec spec{3, 4, 5.0};
  const UnknownLayout layout(spec);
  std::set<Index> seen;
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) seen.insert(layout.r_index(i, j));
  }
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) {
      for (Index k = 0; k < 4; ++k) {
        if (k != j) seen.insert(layout.ua_index(i, j, k));
      }
      for (Index m = 0; m < 3; ++m) {
        if (m != i) seen.insert(layout.ub_index(i, j, m));
      }
    }
  }
  // Dense cover of [0, num_unknowns): no collisions, no gaps.
  EXPECT_EQ(static_cast<Index>(seen.size()), layout.num_unknowns());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), layout.num_unknowns() - 1);
}

TEST(Layout, MatchesDeviceCensus) {
  for (Index n : {2, 3, 7, 10}) {
    const UnknownLayout layout(mea::square_device(n));
    EXPECT_EQ(layout.num_unknowns(), (2 * n - 1) * n * n);
    EXPECT_EQ(layout.voltages_per_pair(), 2 * (n - 1));
  }
}

TEST(Layout, ResistancePredicate) {
  const UnknownLayout layout(mea::square_device(3));
  EXPECT_TRUE(layout.is_resistance(0));
  EXPECT_TRUE(layout.is_resistance(8));
  EXPECT_FALSE(layout.is_resistance(9));
  EXPECT_FALSE(layout.is_resistance(-1));
}

TEST(Generator, PerPairEquationCountAndCategories) {
  Rng rng(61);
  const mea::Measurement m = exact_measurement(4, 3, rng);
  const UnknownLayout layout(m.spec);
  const auto eqs = generate_pair_equations(layout, m, 2, 1);
  // 2 terminal + (cols-1) near-source + (rows-1) near-destination.
  ASSERT_EQ(static_cast<Index>(eqs.size()), 2 + 2 + 3);
  EXPECT_EQ(eqs[0].category, ConstraintCategory::kSource);
  EXPECT_EQ(eqs[1].category, ConstraintCategory::kDestination);
  Index near_source = 0, near_dest = 0;
  for (const auto& eq : eqs) {
    if (eq.category == ConstraintCategory::kNearSource) ++near_source;
    if (eq.category == ConstraintCategory::kNearDestination) ++near_dest;
    EXPECT_EQ(eq.pair_i, 2);
    EXPECT_EQ(eq.pair_j, 1);
  }
  EXPECT_EQ(near_source, 2);
  EXPECT_EQ(near_dest, 3);
}

TEST(Generator, FullSystemCensusMatchesPaper) {
  Rng rng(62);
  for (Index n : {2, 3, 5}) {
    const mea::Measurement m = exact_measurement(n, n, rng);
    const EquationSystem system = generate_system(m);
    EXPECT_EQ(static_cast<Index>(system.equations.size()), 2 * n * n * n);
    const auto census = system.category_census();
    EXPECT_EQ(census[0], n * n);            // one source eq per pair
    EXPECT_EQ(census[1], n * n);            // one destination eq per pair
    EXPECT_EQ(census[2], n * n * (n - 1));  // near-source
    EXPECT_EQ(census[3], n * n * (n - 1));  // near-destination
  }
}

TEST(Generator, IntermediateCategoriesCarryTheCubicSkew) {
  // Section IV-C1: intermediate joints outnumber terminals by ~n.
  Rng rng(63);
  const mea::Measurement m = exact_measurement(10, 10, rng);
  const auto census = generate_system(m).category_census();
  EXPECT_EQ(census[2] / census[0], 9);
}

// The decisive exactness test: the joint-constraint equations are satisfied
// by (and only by) the physically correct voltages, and the implied Z matches
// the independent Laplacian oracle.
class Exactness : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(Exactness, ForwardModelEqualsEffectiveResistance) {
  const auto [rows, cols] = GetParam();
  Rng rng(64 + rows * 13 + cols);
  const circuit::ResistanceGrid grid = random_grid(rows, cols, rng);
  const linalg::DenseMatrix z_oracle = circuit::measure_all_pairs(grid);
  const linalg::DenseMatrix z_joint = forward_model(grid, kWetLabVoltage);
  EXPECT_LT(z_joint.max_abs_diff(z_oracle), 1e-7);
}

TEST_P(Exactness, ResidualVanishesAtThePhysicalSolution) {
  const auto [rows, cols] = GetParam();
  Rng rng(65 + rows * 13 + cols);
  circuit::ResistanceGrid truth(1, 1);
  const mea::Measurement m = [&] {
    const mea::DeviceSpec spec{rows, cols, kWetLabVoltage};
    truth = random_grid(rows, cols, rng);
    return mea::measure_exact(spec, truth);
  }();
  const EquationSystem system = generate_system(m);

  // Pack the exact unknowns: truth resistances + per-pair solved voltages.
  std::vector<Real> voltages;
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      const PairSolution pair = solve_pair(truth, i, j, kWetLabVoltage);
      voltages.insert(voltages.end(), pair.ua.begin(), pair.ua.end());
      voltages.insert(voltages.end(), pair.ub.begin(), pair.ub.end());
    }
  }
  const std::vector<Real> x = pack_unknowns(system.layout, truth.flat(), voltages);
  const std::vector<Real> residual = system_residual(system, x);
  // Residuals are currents (V / kOhm); the drive is 5 V across ~1e3 kOhm.
  EXPECT_LT(linalg::norm_inf(residual), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grids, Exactness,
                         ::testing::Values(std::pair<Index, Index>{2, 2},
                                           std::pair<Index, Index>{3, 3},
                                           std::pair<Index, Index>{2, 5},
                                           std::pair<Index, Index>{5, 3},
                                           std::pair<Index, Index>{6, 6},
                                           std::pair<Index, Index>{8, 8}));

TEST(Exactness, PerturbedResistancesBreakTheResidual) {
  // Soundness in the other direction: a wrong R cannot satisfy the system.
  Rng rng(66);
  circuit::ResistanceGrid truth(1, 1);
  const mea::DeviceSpec spec{3, 3, kWetLabVoltage};
  truth = random_grid(3, 3, rng);
  const mea::Measurement m = mea::measure_exact(spec, truth);
  const EquationSystem system = generate_system(m);

  circuit::ResistanceGrid wrong = truth;
  wrong.at(1, 1) *= 1.5;
  std::vector<Real> voltages;
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      const PairSolution pair = solve_pair(wrong, i, j, kWetLabVoltage);
      voltages.insert(voltages.end(), pair.ua.begin(), pair.ua.end());
      voltages.insert(voltages.end(), pair.ub.begin(), pair.ub.end());
    }
  }
  const std::vector<Real> x = pack_unknowns(system.layout, wrong.flat(), voltages);
  EXPECT_GT(linalg::norm_inf(system_residual(system, x)), 1e-8);
}

TEST(PairSystem, DestinationCurrentBalancesSource) {
  // Current into wire j must equal current out of wire i (global KCL).
  Rng rng(67);
  const circuit::ResistanceGrid grid = random_grid(4, 4, rng);
  const PairSolution pair = solve_pair(grid, 1, 2, 5.0);
  Real into_destination = 5.0 / grid.at(1, 2) * 0.0;  // direct branch below
  into_destination += (pair.horizontal_potential(1) - 0.0) / grid.at(1, 2);
  for (Index m = 0; m < 4; ++m) {
    if (m == 1) continue;
    into_destination += pair.horizontal_potential(m) / grid.at(m, 2);
  }
  EXPECT_NEAR(into_destination, pair.source_current, 1e-10 * pair.source_current);
}

TEST(PairSystem, InternalVoltagesAreBetweenRails) {
  Rng rng(68);
  const circuit::ResistanceGrid grid = random_grid(5, 5, rng);
  const PairSolution pair = solve_pair(grid, 0, 0, 5.0);
  for (Real v : pair.ua) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 5.0);
  }
  for (Real v : pair.ub) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(PairSystem, TwoByTwoClosedForm) {
  // n = 2 is solvable by hand: R_ij direct, plus one detour through three
  // resistors; they are in parallel only via the single internal loop.
  circuit::ResistanceGrid grid(2, 2, 0.0);
  grid.at(0, 0) = 1000.0;
  grid.at(0, 1) = 2000.0;
  grid.at(1, 0) = 3000.0;
  grid.at(1, 1) = 4000.0;
  // Z(0,0) = R00 || (R01 + R11 + R10) = 1000 || 9000 = 900.
  const PairSolution pair = solve_pair(grid, 0, 0, 5.0);
  EXPECT_NEAR(pair.z_model, 900.0, 1e-9);
}

TEST(PairSystem, GradientMatchesFiniteDifferences) {
  Rng rng(69);
  const circuit::ResistanceGrid grid = random_grid(3, 3, rng);
  const PairSolution pair = solve_pair(grid, 1, 1, 5.0);
  const std::vector<Real> grad = impedance_gradient(grid, pair);
  const Real h = 1e-4;
  for (Index e = 0; e < 9; ++e) {
    circuit::ResistanceGrid up = grid;
    circuit::ResistanceGrid down = grid;
    up.flat()[static_cast<std::size_t>(e)] += h;
    down.flat()[static_cast<std::size_t>(e)] -= h;
    const Real fd = (solve_pair(up, 1, 1, 5.0).z_model - solve_pair(down, 1, 1, 5.0).z_model) /
                    (2.0 * h);
    EXPECT_NEAR(grad[static_cast<std::size_t>(e)], fd,
                1e-5 * std::max(std::abs(fd), 1e-8));
  }
}

TEST(Residual, JacobianMatchesFiniteDifferences) {
  Rng rng(70);
  const mea::Measurement m = exact_measurement(3, 3, rng);
  const EquationSystem system = generate_system(m);
  // Arbitrary (not necessarily consistent) positive state.
  std::vector<Real> x(static_cast<std::size_t>(system.layout.num_unknowns()));
  for (std::size_t u = 0; u < x.size(); ++u) {
    x[u] = system.layout.is_resistance(static_cast<Index>(u)) ? rng.uniform(2000.0, 8000.0)
                                                              : rng.uniform(0.5, 4.5);
  }
  const linalg::CsrMatrix jac = system_jacobian(system, x);
  const std::vector<Real> base = system_residual(system, x);
  Rng pick(71);
  for (int probe = 0; probe < 25; ++probe) {
    const Index u = static_cast<Index>(pick.uniform_index(x.size()));
    const Real h = std::max(std::abs(x[static_cast<std::size_t>(u)]) * 1e-6, 1e-9);
    std::vector<Real> xp = x;
    xp[static_cast<std::size_t>(u)] += h;
    const std::vector<Real> bumped = system_residual(system, xp);
    for (std::size_t e = 0; e < base.size(); ++e) {
      const Real fd = (bumped[e] - base[e]) / h;
      const Real analytic = jac.at(static_cast<Index>(e), u);
      EXPECT_NEAR(analytic, fd, 1e-4 * std::max(std::abs(fd), 1e-10))
          << "equation " << e << " unknown " << u;
    }
  }
}

TEST(Serializer, HumanRenderingCoversEveryCategory) {
  Rng rng(81);
  const mea::Measurement m = exact_measurement(3, 3, rng);
  const EquationSystem system = generate_system(m);
  bool saw[kNumCategories] = {false, false, false, false};
  for (const auto& eq : system.equations) {
    const std::string text = render_equation(system.layout, eq);
    EXPECT_NE(text.find(category_name(eq.category)), std::string::npos);
    EXPECT_NE(text.find(")/R["), std::string::npos);  // every term divides by an R
    saw[static_cast<int>(eq.category)] = true;
  }
  for (bool s : saw) EXPECT_TRUE(s);
  // Intermediate equations reference both Ua and Ub voltages by name.
  const std::string near_source =
      render_equation(system.layout, system.equations[2]);  // first near-source
  EXPECT_NE(near_source.find("Ua["), std::string::npos);
  EXPECT_NE(near_source.find("Ub["), std::string::npos);
}

TEST(Serializer, HumanRenderingShowsStructure) {
  Rng rng(72);
  const mea::Measurement m = exact_measurement(2, 2, rng);
  const EquationSystem system = generate_system(m);
  const std::string text = render_equation(system.layout, system.equations[0]);
  EXPECT_NE(text.find("R[0,0]"), std::string::npos);
  EXPECT_NE(text.find("source"), std::string::npos);
  EXPECT_NE(text.find("= "), std::string::npos);
}

TEST(Serializer, SystemRoundTripsThroughDisk) {
  Rng rng(73);
  const mea::Measurement m = exact_measurement(3, 3, rng);
  const EquationSystem system = generate_system(m);
  const std::string path = testing::TempDir() + "parma_eq_test/system.txt";
  const std::uint64_t bytes = save_system(path, system);
  EXPECT_GT(bytes, 1000u);

  const EquationSystem loaded = load_system(path, m.spec);
  ASSERT_EQ(loaded.equations.size(), system.equations.size());
  // Residuals of original and loaded systems agree at a random state.
  std::vector<Real> x(static_cast<std::size_t>(system.layout.num_unknowns()));
  for (std::size_t u = 0; u < x.size(); ++u) {
    x[u] = system.layout.is_resistance(static_cast<Index>(u)) ? 3000.0 : 2.0;
  }
  EXPECT_LT(linalg::relative_error(system_residual(loaded, x), system_residual(system, x)),
            1e-9);
}

TEST(Serializer, LoadRejectsWrongDevice) {
  Rng rng(74);
  const mea::Measurement m = exact_measurement(3, 3, rng);
  const std::string path = testing::TempDir() + "parma_eq_test/mismatch.txt";
  save_system(path, generate_system(m));
  EXPECT_THROW(load_system(path, mea::square_device(4)), ContractError);
  EXPECT_THROW(load_system(path + ".missing", m.spec), IoError);
}

TEST(BinaryIo, SystemRoundTripsExactly) {
  Rng rng(76);
  const mea::Measurement m = exact_measurement(4, 3, rng);
  const EquationSystem system = generate_system(m);
  const std::string path = testing::TempDir() + "parma_eq_test/system.bin";
  const std::uint64_t bytes = save_system_binary(path, system);
  EXPECT_GT(bytes, 100u);

  const EquationSystem loaded = load_system_binary(path, m.spec);
  ASSERT_EQ(loaded.equations.size(), system.equations.size());
  for (std::size_t e = 0; e < system.equations.size(); ++e) {
    const auto& a = system.equations[e];
    const auto& b = loaded.equations[e];
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.pair_i, b.pair_i);
    EXPECT_EQ(a.pair_j, b.pair_j);
    EXPECT_DOUBLE_EQ(a.rhs, b.rhs);
    ASSERT_EQ(a.terms.size(), b.terms.size());
    for (std::size_t t = 0; t < a.terms.size(); ++t) {
      EXPECT_EQ(a.terms[t].resistor_unknown, b.terms[t].resistor_unknown);
      EXPECT_EQ(a.terms[t].plus_unknown, b.terms[t].plus_unknown);
      EXPECT_EQ(a.terms[t].minus_unknown, b.terms[t].minus_unknown);
      EXPECT_DOUBLE_EQ(a.terms[t].constant, b.terms[t].constant);
      EXPECT_DOUBLE_EQ(a.terms[t].sign, b.terms[t].sign);
    }
  }
}

TEST(BinaryIo, BinaryIsSmallerThanText) {
  Rng rng(77);
  const mea::Measurement m = exact_measurement(5, 5, rng);
  const EquationSystem system = generate_system(m);
  const std::string text_path = testing::TempDir() + "parma_eq_test/size.txt";
  const std::string bin_path = testing::TempDir() + "parma_eq_test/size.bin";
  const std::uint64_t text_bytes = save_system(text_path, system);
  const std::uint64_t bin_bytes = save_system_binary(bin_path, system);
  EXPECT_LT(bin_bytes, text_bytes);
}

TEST(BinaryIo, DetectsCorruption) {
  Rng rng(78);
  const mea::Measurement m = exact_measurement(3, 3, rng);
  const EquationSystem system = generate_system(m);
  const std::string path = testing::TempDir() + "parma_eq_test/corrupt.bin";
  save_system_binary(path, system);

  // Wrong device.
  EXPECT_THROW(load_system_binary(path, mea::square_device(4)), ContractError);
  // Truncation.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path + ".trunc", std::ios::binary);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW(load_system_binary(path + ".trunc", m.spec), IoError);
  // Bad magic.
  {
    std::ofstream out(path + ".magic", std::ios::binary);
    out << "NOTPARMA garbage";
  }
  EXPECT_THROW(load_system_binary(path + ".magic", m.spec), IoError);
  EXPECT_THROW(load_system_binary(path + ".missing", m.spec), IoError);
}

TEST(BinaryIo, RandomCorruptionNeverCrashes) {
  // Fuzz-flavoured robustness: flipping bytes anywhere in a valid file must
  // either still parse (flips in float payloads) or throw IoError /
  // ContractError -- never crash or hand back out-of-range indices.
  Rng rng(79);
  const mea::Measurement m = exact_measurement(3, 3, rng);
  const EquationSystem system = generate_system(m);
  const std::string path = testing::TempDir() + "parma_eq_test/fuzz.bin";
  save_system_binary(path, system);
  std::string original;
  {
    std::ifstream in(path, std::ios::binary);
    original.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  Rng fuzz(80);
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = original;
    const std::size_t pos = static_cast<std::size_t>(fuzz.uniform_index(corrupted.size()));
    corrupted[pos] = static_cast<char>(fuzz.uniform_index(256));
    const std::string fuzz_path = path + ".fuzzed";
    {
      std::ofstream out(fuzz_path, std::ios::binary);
      out.write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
    }
    try {
      const EquationSystem loaded = load_system_binary(fuzz_path, m.spec);
      // If it parsed, every index must be in range (the loader's contract).
      for (const auto& eq : loaded.equations) {
        for (const auto& term : eq.terms) {
          EXPECT_GE(term.resistor_unknown, 0);
          EXPECT_LT(term.resistor_unknown, system.layout.num_unknowns());
          EXPECT_LT(term.plus_unknown, system.layout.num_unknowns());
          EXPECT_LT(term.minus_unknown, system.layout.num_unknowns());
        }
      }
    } catch (const IoError&) {
    } catch (const ContractError&) {
    }
  }
}

TEST(Footprint, GrowsWithDeviceSize) {
  Rng rng(75);
  const EquationSystem small = generate_system(exact_measurement(3, 3, rng));
  const EquationSystem large = generate_system(exact_measurement(6, 6, rng));
  // 2n^3 equations x O(n) terms: ~n^4 scaling.
  EXPECT_GT(large.footprint_bytes(), small.footprint_bytes() * 8);
}

}  // namespace
}  // namespace parma::equations

// Tests for solver/system_kernels: the symbolic/numeric split of the
// Gauss-Newton hot path. The load-bearing claims are bit-identity claims:
//  * kernel-refreshed J and J^T J match the CooBuilder-built matrices bitwise;
//  * refreshes, residuals, and the initial guess are bit-identical across
//    serial/pooled/stealing backends and worker counts;
//  * the workspace CG matches the allocate-per-call CG bitwise;
//  * the serial kernel solver path matches the legacy solver path bitwise.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/formation_cache.hpp"
#include "equations/generator.hpp"
#include "equations/residual.hpp"
#include "exec/executor.hpp"
#include "linalg/iterative.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "solver/full_system_solver.hpp"
#include "solver/system_kernels.hpp"

namespace parma::solver {
namespace {

struct Scenario {
  mea::DeviceSpec spec;
  circuit::ResistanceGrid truth{1, 1};
  mea::Measurement measurement;
};

Scenario make_scenario(Index n, std::uint64_t seed, Index anomalies = 1) {
  Rng rng(seed);
  Scenario s{mea::square_device(n), circuit::ResistanceGrid(1, 1), {}};
  mea::GeneratorOptions options = mea::random_scenario(s.spec, anomalies, rng);
  options.jitter_fraction = 0.01;
  s.truth = mea::generate_field(s.spec, options, rng);
  s.measurement = mea::measure(s.spec, s.truth, mea::MeasurementOptions{}, rng);
  return s;
}

void expect_bitwise_equal(const linalg::CsrMatrix& a, const linalg::CsrMatrix& b,
                          const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(a.row_ptr(), b.row_ptr()) << what << ": row_ptr differs";
  ASSERT_EQ(a.col_idx(), b.col_idx()) << what << ": col_idx differs";
  ASSERT_EQ(a.values().size(), b.values().size()) << what;
  for (std::size_t k = 0; k < a.values().size(); ++k) {
    // Bitwise: == on doubles distinguishes everything except 0.0 vs -0.0,
    // which the accumulation-order argument covers anyway; a sign mismatch
    // there would be caught by the cross-path solve comparison.
    ASSERT_EQ(a.values()[k], b.values()[k]) << what << ": value slot " << k;
  }
}

void expect_bitwise_equal(const std::vector<Real>& a, const std::vector<Real>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << ": index " << i;
  }
}

TEST(SymbolicPattern, JacobianRefreshMatchesCooBuilder) {
  const Scenario s = make_scenario(4, 42);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> x = initial_guess(system, s.measurement);

  SystemKernels kernels(system);
  kernels.refresh_jacobian(x);
  const linalg::CsrMatrix reference =
      equations::system_jacobian(system, x, linalg::ZeroPolicy::kKeep);
  expect_bitwise_equal(kernels.jacobian(), reference, "jacobian");
}

TEST(SymbolicPattern, NormalRefreshMatchesCooBuilderReference) {
  const Scenario s = make_scenario(4, 43);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> x = initial_guess(system, s.measurement);

  SystemKernels kernels(system);
  kernels.refresh(x);
  const linalg::CsrMatrix reference =
      reference_normal_matrix(kernels.jacobian(), linalg::ZeroPolicy::kKeep);
  expect_bitwise_equal(kernels.normal(), reference, "normal");
}

TEST(SymbolicPattern, NormalHasStructuralDiagonal) {
  const Scenario s = make_scenario(3, 44);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const auto symbolic = SystemSymbolic::analyze(system);
  ASSERT_EQ(static_cast<Index>(symbolic->a_diag_slot.size()), symbolic->cols);
  for (Index i = 0; i < symbolic->cols; ++i) {
    const Index slot = symbolic->a_diag_slot[static_cast<std::size_t>(i)];
    ASSERT_GE(slot, symbolic->a_row_ptr[static_cast<std::size_t>(i)]);
    ASSERT_LT(slot, symbolic->a_row_ptr[static_cast<std::size_t>(i) + 1]);
    EXPECT_EQ(symbolic->a_col_idx[static_cast<std::size_t>(slot)], i);
  }
}

TEST(SymbolicPattern, ResidualMatchesSystemResidual) {
  const Scenario s = make_scenario(4, 45);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> x = initial_guess(system, s.measurement);

  SystemKernels kernels(system);
  std::vector<Real> r;
  kernels.residual_into(x, r);
  expect_bitwise_equal(r, equations::system_residual(system, x), "residual");
}

TEST(CrossBackend, RefreshAndResidualAreBitIdentical) {
  const Scenario s = make_scenario(4, 46);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> x = initial_guess(system, s.measurement);

  SystemKernels serial_kernels(system);
  serial_kernels.refresh(x);
  std::vector<Real> serial_residual;
  serial_kernels.residual_into(x, serial_residual);

  for (const exec::Backend backend : {exec::Backend::kPooled, exec::Backend::kStealing}) {
    for (const Index workers : {Index{2}, Index{4}}) {
      const auto executor = exec::make_executor(backend, workers);
      SystemKernels kernels(system);
      kernels.refresh(x, executor.get());
      expect_bitwise_equal(kernels.jacobian(), serial_kernels.jacobian(), "jacobian");
      expect_bitwise_equal(kernels.normal(), serial_kernels.normal(), "normal");
      std::vector<Real> r;
      kernels.residual_into(x, r, executor.get());
      expect_bitwise_equal(r, serial_residual, "residual");
    }
  }
}

TEST(WorkspaceCg, MatchesAllocatingCgBitwise) {
  const Scenario s = make_scenario(4, 47);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> x = initial_guess(system, s.measurement);
  const linalg::CsrMatrix jac = equations::system_jacobian(system, x);
  const linalg::CsrMatrix a = reference_normal_matrix(jac);
  std::vector<Real> b = jac.multiply_transpose(equations::system_residual(system, x));
  for (Real& v : b) v = -v;

  linalg::IterativeOptions options;
  options.max_iterations = 500;
  options.tolerance = 1e-12;
  const linalg::IterativeResult legacy = linalg::conjugate_gradient(a, b, options);

  linalg::CgWorkspace workspace;
  const linalg::IterativeResult ws_result = linalg::conjugate_gradient_with(
      linalg::SerialCsrOperator(a), b, options, workspace);
  EXPECT_EQ(ws_result.iterations, legacy.iterations);
  EXPECT_EQ(ws_result.converged, legacy.converged);
  EXPECT_EQ(ws_result.relative_residual, legacy.relative_residual);
  expect_bitwise_equal(ws_result.x, legacy.x, "cg iterate");

  // The executor-backed operator must land on the same bits (ordered
  // reductions, fixed SpMV row partition).
  const auto executor = exec::make_executor(exec::Backend::kStealing, 4);
  const linalg::IterativeResult par_result = linalg::conjugate_gradient_with(
      ParallelCsrOperator(a, executor.get()), b, options, workspace);
  EXPECT_EQ(par_result.iterations, legacy.iterations);
  expect_bitwise_equal(par_result.x, legacy.x, "parallel cg iterate");
}

TEST(WorkspaceLadder, MatchesLegacyLadderOnCgRung) {
  const Scenario s = make_scenario(4, 48);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> x = initial_guess(system, s.measurement);
  const linalg::CsrMatrix jac = equations::system_jacobian(system, x);
  const linalg::CsrMatrix a = reference_normal_matrix(jac);
  std::vector<Real> b = jac.multiply_transpose(equations::system_residual(system, x));
  for (Real& v : b) v = -v;

  FallbackOptions options;
  options.cg.max_iterations = 500;
  options.cg.tolerance = 1e-12;

  SolveDiagnostics legacy_diag;
  const std::vector<Real> legacy = solve_with_fallback(a, b, options, legacy_diag);

  SolveDiagnostics ws_diag;
  LadderWorkspace workspace;
  const std::vector<Real> ws = solve_with_fallback(a, b, options, ws_diag, workspace);
  EXPECT_EQ(ws_diag.highest_rung, legacy_diag.highest_rung);
  EXPECT_EQ(ws_diag.cg_iterations, legacy_diag.cg_iterations);
  expect_bitwise_equal(ws, legacy, "ladder solution");
}

TEST(WorkspaceLadder, MatchesLegacyLadderOnTikhonovRung) {
  const Scenario s = make_scenario(3, 49);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> x = initial_guess(system, s.measurement);
  const linalg::CsrMatrix jac = equations::system_jacobian(system, x);
  const linalg::CsrMatrix a = reference_normal_matrix(jac);
  std::vector<Real> b = jac.multiply_transpose(equations::system_residual(system, x));
  for (Real& v : b) v = -v;

  // Starve rung 1 so both ladders must escalate to the ridged retry.
  FallbackOptions options;
  options.cg.max_iterations = 3;
  options.cg.tolerance = 1e-15;
  options.tikhonov_tolerance_factor = 1e9;

  SolveDiagnostics legacy_diag;
  const std::vector<Real> legacy = solve_with_fallback(a, b, options, legacy_diag);
  ASSERT_GE(legacy_diag.highest_rung, FallbackRung::kTikhonov);

  SolveDiagnostics ws_diag;
  LadderWorkspace workspace;
  const std::vector<Real> ws = solve_with_fallback(a, b, options, ws_diag, workspace);
  EXPECT_EQ(ws_diag.highest_rung, legacy_diag.highest_rung);
  EXPECT_EQ(ws_diag.tikhonov_retries, legacy_diag.tikhonov_retries);
  expect_bitwise_equal(ws, legacy, "ridged ladder solution");
}

TEST(FullSystem, SerialKernelPathMatchesLegacyPathBitwise) {
  for (const Index n : {Index{3}, Index{4}}) {
    const Scenario s = make_scenario(n, 50 + static_cast<std::uint64_t>(n));
    const equations::EquationSystem system = equations::generate_system(s.measurement);

    FullSystemOptions legacy_options;
    legacy_options.max_iterations = 12;
    legacy_options.use_kernels = false;
    // The legacy path has no preconditioner seam: pin the kernel run to the
    // inline Jacobi it has always used so the comparison stays bit-level.
    legacy_options.preconditioner = linalg::PreconditionerKind::kJacobi;
    const FullSystemResult legacy = solve_full_system(system, s.measurement, legacy_options);

    FullSystemOptions kernel_options = legacy_options;
    kernel_options.use_kernels = true;
    const FullSystemResult kernel = solve_full_system(system, s.measurement, kernel_options);

    EXPECT_EQ(kernel.iterations, legacy.iterations);
    EXPECT_EQ(kernel.converged, legacy.converged);
    EXPECT_EQ(kernel.final_residual_rms, legacy.final_residual_rms);
    expect_bitwise_equal(kernel.residual_history, legacy.residual_history, "history");
    expect_bitwise_equal(kernel.unknowns, legacy.unknowns, "unknowns");
  }
}

TEST(FullSystem, ParallelKernelPathMatchesSerialBitwise) {
  const Scenario s = make_scenario(4, 54);
  const equations::EquationSystem system = equations::generate_system(s.measurement);

  FullSystemOptions options;
  options.max_iterations = 12;
  const FullSystemResult serial = solve_full_system(system, s.measurement, options);

  for (const exec::Backend backend : {exec::Backend::kPooled, exec::Backend::kStealing}) {
    const auto executor = exec::make_executor(backend, 4);
    KernelContext context;
    context.executor = executor.get();
    const FullSystemResult parallel =
        solve_full_system(system, s.measurement, options, context);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    expect_bitwise_equal(parallel.unknowns, serial.unknowns, "parallel unknowns");
    expect_bitwise_equal(parallel.residual_history, serial.residual_history,
                         "parallel history");
  }
}

TEST(FullSystem, KernelPathRecoversGroundTruth) {
  const Scenario s = make_scenario(4, 55);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  FullSystemOptions options;
  options.max_iterations = 30;
  const FullSystemResult result = solve_full_system(system, s.measurement, options);
  Real worst = 0.0;
  for (std::size_t e = 0; e < s.truth.flat().size(); ++e) {
    worst = std::max(worst, std::abs(result.recovered.flat()[e] - s.truth.flat()[e]) /
                                std::abs(s.truth.flat()[e]));
  }
  EXPECT_LT(worst, 1e-3) << "rms " << result.final_residual_rms;
}

TEST(InitialGuess, ParallelPairSolvesAreBitIdentical) {
  const Scenario s = make_scenario(5, 56);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const std::vector<Real> serial = initial_guess(system, s.measurement);
  for (const exec::Backend backend : {exec::Backend::kPooled, exec::Backend::kStealing}) {
    for (const Index workers : {Index{2}, Index{4}}) {
      const auto executor = exec::make_executor(backend, workers);
      const std::vector<Real> parallel = initial_guess(system, s.measurement, executor.get());
      expect_bitwise_equal(parallel, serial, "initial guess");
    }
  }
}

TEST(SharedSymbolic, KernelsAcceptCacheSharedStructure) {
  const Scenario s = make_scenario(3, 57);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const auto symbolic = SystemSymbolic::analyze(system);

  SystemKernels own(system);                // analyzes internally
  SystemKernels shared(system, symbolic);   // reuses the cache's analysis
  const std::vector<Real> x = initial_guess(system, s.measurement);
  own.refresh(x);
  shared.refresh(x);
  expect_bitwise_equal(shared.jacobian(), own.jacobian(), "shared jacobian");
  expect_bitwise_equal(shared.normal(), own.normal(), "shared normal");
}

TEST(SharedSymbolic, FormationCacheSharesOneAnalysisPerShape) {
  const Scenario a = make_scenario(3, 58);
  const Scenario b = make_scenario(3, 59);  // same shape, different values
  const Scenario c = make_scenario(4, 60);  // different shape
  const equations::EquationSystem sys_a = equations::generate_system(a.measurement);
  const equations::EquationSystem sys_b = equations::generate_system(b.measurement);
  const equations::EquationSystem sys_c = equations::generate_system(c.measurement);

  core::FormationCache cache;
  const auto sym_a = cache.system_symbolic(sys_a);
  const auto sym_b = cache.system_symbolic(sys_b);
  const auto sym_c = cache.system_symbolic(sys_c);
  EXPECT_EQ(sym_a.get(), sym_b.get()) << "same shape must share the analysis";
  EXPECT_NE(sym_a.get(), sym_c.get());
  const core::FormationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.symbolic_hits, 1u);
  EXPECT_EQ(stats.symbolic_misses, 2u);
}

}  // namespace
}  // namespace parma::solver

// Unit tests for the continuation core (src/async) and its integration into
// the serving pipeline: Task composition, the Scheduler's never-drop shutdown
// contract, TimerQueue expedited drain, retry/breaker/gate/instrument
// adaptors, AsyncScope join ordering (timers flush before the wait -- the
// drain-vs-half-open-probe fix), ExecutorPool leasing, and chaos-seeded
// cancellation storms against a live Server. Carries the `tsan` ctest label;
// the AsyncChaos.* tests rerun under the `chaos` label with distinct
// PARMA_CHAOS_SEED values.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "async/adaptors.hpp"
#include "async/async_scope.hpp"
#include "async/breaker.hpp"
#include "async/event.hpp"
#include "async/retry.hpp"
#include "async/scheduler.hpp"
#include "async/task.hpp"
#include "async/timer_queue.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "fault/injector.hpp"
#include "mea/generator.hpp"
#include "serve/server.hpp"

namespace parma {
namespace {

using namespace std::chrono_literals;
using async::Task;
using async::Try;
using async::Unit;
using serve::ParametrizeRequest;
using serve::ParametrizeResult;
using serve::RequestStatus;
using serve::Server;
using serve::ServerOptions;
using serve::Stats;
using serve::Ticket;

// ---------------------------------------------------------------- Task core

TEST(AsyncTask, JustThenTransformsValues) {
  Try<int> r = async::sync_wait(async::just(2).then([](int x) { return x * 3; }));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), 6);
}

TEST(AsyncTask, VoidStageYieldsUnitAndNullaryStageIsAllowed) {
  int observed = 0;
  Try<Unit> r = async::sync_wait(
      async::just(41).then([&observed](int x) { observed = x + 1; }).then([] {}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(observed, 42);
}

TEST(AsyncTask, ErrorShortCircuitsPlainThenButNotTryThen) {
  bool skipped_ran = false;
  Try<int> r = async::sync_wait(
      async::just(1)
          .then([](int) -> int { throw std::runtime_error("boom"); })
          .then([&skipped_ran](int x) {  // must be skipped: upstream errored
            skipped_ran = true;
            return x;
          })
          .then([](Try<int>&& t) {  // Try-accepting stage sees the error
            EXPECT_FALSE(t.ok());
            try {
              t.get();
            } catch (const std::runtime_error& e) {
              EXPECT_STREQ(e.what(), "boom");
            }
            return 7;  // recovery
          }));
  EXPECT_FALSE(skipped_ran);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), 7);
}

TEST(AsyncTask, ViaRunsDownstreamOnSchedulerThread) {
  async::Scheduler pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  Try<bool> r = async::sync_wait(async::just(Unit{}).via(pool).then(
      [caller] { return std::this_thread::get_id() != caller; }));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.get());
  EXPECT_GE(pool.executed(), 1u);
}

TEST(AsyncTask, WhenAllPreservesOrderAndIsolatesFailures) {
  async::Scheduler pool(3);
  std::vector<Task<int>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(async::schedule(pool).then([i]() -> int {
      if (i == 2) throw std::runtime_error("slot 2 fails");
      return i * 10;
    }));
  }
  Try<std::vector<Try<int>>> all = async::sync_wait(async::when_all(std::move(tasks)));
  ASSERT_TRUE(all.ok());
  std::vector<Try<int>>& slots = all.get();
  ASSERT_EQ(slots.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    if (i == 2) {
      EXPECT_FALSE(slots[2].ok());
    } else {
      ASSERT_TRUE(slots[static_cast<std::size_t>(i)].ok());
      EXPECT_EQ(slots[static_cast<std::size_t>(i)].get(), i * 10);
    }
  }

  Try<std::vector<Try<int>>> empty = async::sync_wait(async::when_all(std::vector<Task<int>>{}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.get().empty());
}

TEST(AsyncTask, SequenceRunsStepsInOrderAndSurvivesStepErrors) {
  std::vector<int> order;
  std::vector<std::function<Task<Unit>()>> steps;
  steps.push_back([&order] { return async::just().then([&order] { order.push_back(1); }); });
  steps.push_back([&order]() -> Task<Unit> {
    return async::just().then([&order]() -> Unit {
      order.push_back(2);
      throw std::runtime_error("step 2 fails");
    });
  });
  steps.push_back([&order] { return async::just().then([&order] { order.push_back(3); }); });
  Try<Unit> r = async::sync_wait(async::sequence(std::move(steps)));
  ASSERT_TRUE(r.ok());  // a failed step never poisons the sequence
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --------------------------------------------------------------- Scheduler

TEST(AsyncScheduler, ExecutesEverythingPostedBeforeStop) {
  async::Scheduler pool(4);
  std::atomic<int> hits{0};
  for (int i = 0; i < 64; ++i) {
    pool.post([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.stop();  // drains, then joins
  EXPECT_EQ(hits.load(), 64);
  EXPECT_EQ(pool.executed(), 64u);
}

TEST(AsyncScheduler, PostAfterStopRunsInlineNeverDrops) {
  async::Scheduler pool(1);
  pool.stop();
  // A continuation posted after stop must still run (inline on this thread):
  // dropping one would leave its chain, and anything joined on it, hanging.
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  pool.post([&ran, caller] {
    ran = true;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_TRUE(ran);
}

// -------------------------------------------------------------- TimerQueue

TEST(AsyncTimerQueue, FiresNaturallyInDueOrder) {
  async::TimerQueue timers;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  const auto push = [&](int tag, bool flushed) {
    std::lock_guard lock(mu);
    EXPECT_FALSE(flushed);  // natural expiry
    order.push_back(tag);
    cv.notify_all();
  };
  timers.schedule_after(20ms, [&push](bool flushed) { push(2, flushed); });
  timers.schedule_after(5ms, [&push](bool flushed) { push(1, flushed); });
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return order.size() == 2; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(timers.fired(), 2u);
  EXPECT_EQ(timers.flushed(), 0u);
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(AsyncTimerQueue, FlushExpeditesPendingAndLatches) {
  async::TimerQueue timers;
  std::promise<bool> first_flushed;
  timers.schedule_after(1h, [&first_flushed](bool flushed) {
    first_flushed.set_value(flushed);
  });
  EXPECT_EQ(timers.pending(), 1u);
  timers.flush();
  std::future<bool> f1 = first_flushed.get_future();
  ASSERT_EQ(f1.wait_for(5s), std::future_status::ready);
  EXPECT_TRUE(f1.get());  // wait cut short

  // The queue is latched expedited: a later long schedule also fires now.
  std::promise<bool> second_flushed;
  timers.schedule_after(1h, [&second_flushed](bool flushed) {
    second_flushed.set_value(flushed);
  });
  std::future<bool> f2 = second_flushed.get_future();
  ASSERT_EQ(f2.wait_for(5s), std::future_status::ready);
  EXPECT_TRUE(f2.get());

  // resume() leaves expedited mode; a short timer then expires naturally.
  timers.resume();
  std::promise<bool> third_flushed;
  timers.schedule_after(1ms, [&third_flushed](bool flushed) {
    third_flushed.set_value(flushed);
  });
  std::future<bool> f3 = third_flushed.get_future();
  ASSERT_EQ(f3.wait_for(5s), std::future_status::ready);
  EXPECT_FALSE(f3.get());
  EXPECT_EQ(timers.fired(), 3u);
  EXPECT_EQ(timers.flushed(), 2u);
}

TEST(AsyncTimerQueue, PeriodicFiresRepeatedlyUntilCancelled) {
  async::TimerQueue timers;
  std::mutex mu;
  std::condition_variable cv;
  int ticks = 0;
  const async::TimerQueue::TimerId id = timers.schedule_every(2ms, [&] {
    std::lock_guard lock(mu);
    ++ticks;
    cv.notify_all();
  });
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return ticks >= 3; }));
  }
  timers.cancel(id);
  // The cancel may race one in-flight tick; after that the cadence is dead.
  std::this_thread::sleep_for(20ms);
  int settled;
  {
    std::lock_guard lock(mu);
    settled = ticks;
  }
  std::this_thread::sleep_for(30ms);
  std::lock_guard lock(mu);
  EXPECT_EQ(ticks, settled) << "the periodic kept firing after cancel()";
  EXPECT_EQ(timers.flushed(), 0u);  // all fires were natural
}

TEST(AsyncTimerQueue, PeriodicMayCancelItselfFromItsOwnCallback) {
  async::TimerQueue timers;
  std::mutex mu;
  std::condition_variable cv;
  int ticks = 0;
  async::TimerQueue::TimerId id = 0;
  {
    std::lock_guard lock(mu);  // publish `id` before the first fire
    id = timers.schedule_every(2ms, [&] {
      std::lock_guard inner(mu);
      if (++ticks == 2) timers.cancel(id);
      cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return ticks >= 2; }));
  lock.unlock();
  std::this_thread::sleep_for(30ms);
  lock.lock();
  EXPECT_EQ(ticks, 2);
}

TEST(AsyncTimerQueue, PeriodicsAreDroppedNotFiredUnderFlushAndStop) {
  // Drain semantics: flush() fires every pending one-shot but must never
  // fire a maintenance tick early, and a queue that is draining (or
  // stopped) registers new periodics as dead letters.
  async::TimerQueue timers;
  std::atomic<int> ticks{0};
  (void)timers.schedule_every(1h, [&] { ticks.fetch_add(1); });
  EXPECT_EQ(timers.pending(), 1u);

  std::promise<bool> one_shot;
  timers.schedule_after(1h, [&one_shot](bool flushed) { one_shot.set_value(flushed); });
  timers.flush();
  std::future<bool> f = one_shot.get_future();
  ASSERT_EQ(f.wait_for(5s), std::future_status::ready);
  EXPECT_TRUE(f.get());        // the one-shot fired, cut short...
  EXPECT_EQ(ticks.load(), 0);  // ...the periodic did not

  // Expedited mode: a new periodic is accepted (the id is handed out) but
  // never fires -- the queue is winding down.
  (void)timers.schedule_every(1ms, [&] { ticks.fetch_add(1); });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(ticks.load(), 0);

  timers.stop();
  EXPECT_EQ(ticks.load(), 0);
}

// ------------------------------------------------------------------- retry

TEST(AsyncRetry, RetriesUntilSuccessWithTwoBasedBackoffAttempts) {
  async::TimerQueue timers;
  std::vector<int> backoff_calls;
  auto attempts_seen = std::make_shared<std::vector<int>>();
  async::RetryOptions<int> options;
  options.max_attempts = 5;
  options.should_retry = [](const Try<int>& t) { return t.get() < 0; };
  options.backoff_for = [&backoff_calls](int next_attempt) {
    backoff_calls.push_back(next_attempt);
    return std::chrono::microseconds{100};
  };
  Try<int> r = async::sync_wait(async::retry_with_backoff<int>(
      [attempts_seen](int attempt) {
        attempts_seen->push_back(attempt);
        return async::just(attempt >= 3 ? attempt : -attempt);
      },
      std::move(options), timers));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), 3);
  EXPECT_EQ(*attempts_seen, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(backoff_calls, (std::vector<int>{2, 3}));  // 2-based: wait before attempt k
}

TEST(AsyncRetry, ExhaustsMaxAttemptsAndReturnsLastOutcome) {
  async::TimerQueue timers;
  int attempts = 0;
  async::RetryOptions<int> options;
  options.max_attempts = 3;
  options.should_retry = [](const Try<int>&) { return true; };
  Try<int> r = async::sync_wait(async::retry_with_backoff<int>(
      [&attempts](int) { return async::just(-(++attempts)); }, std::move(options),
      timers));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), -3);
  EXPECT_EQ(attempts, 3);
}

TEST(AsyncRetry, BeforeWaitVetoGivesUpWithMutatedOutcome) {
  async::TimerQueue timers;
  async::RetryOptions<int> options;
  options.max_attempts = 4;
  options.should_retry = [](const Try<int>&) { return true; };
  options.before_wait = [](int next, std::chrono::microseconds, Try<int>& t) {
    t.get() = 1000 + next;  // e.g. "deadline would pass during retry backoff"
    return false;
  };
  int attempts = 0;
  Try<int> r = async::sync_wait(async::retry_with_backoff<int>(
      [&attempts](int) { return async::just(++attempts); }, std::move(options), timers));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), 1002);  // mutated before the (vetoed) second attempt
  EXPECT_EQ(attempts, 1);
}

TEST(AsyncRetry, AfterWaitVetoGivesUpWithMutatedOutcome) {
  async::TimerQueue timers;
  async::RetryOptions<int> options;
  options.max_attempts = 4;
  options.should_retry = [](const Try<int>&) { return true; };
  options.after_wait = [](int next, Try<int>& t) {
    t.get() = 2000 + next;  // e.g. "cancelled between attempts"
    return false;
  };
  int attempts = 0;
  Try<int> r = async::sync_wait(async::retry_with_backoff<int>(
      [&attempts](int) { return async::just(++attempts); }, std::move(options), timers));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), 2002);
  EXPECT_EQ(attempts, 1);
}

TEST(AsyncRetry, EscapedExceptionIsTerminalDespiteRetryPolicy) {
  async::TimerQueue timers;
  int attempts = 0;
  async::RetryOptions<int> options;
  options.max_attempts = 5;
  options.should_retry = [](const Try<int>&) { return true; };
  Try<int> r = async::sync_wait(async::retry_with_backoff<int>(
      [&attempts](int) {
        return async::just(0).then([&attempts](int) -> int {
          ++attempts;
          throw std::runtime_error("stage bug");
        });
      },
      std::move(options), timers));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(attempts, 1);  // exceptions mean bugs, not retryable faults
}

// ----------------------------------------------------------------- breaker

TEST(AsyncBreaker, RejectionFastFailsWithoutStartingOrReporting) {
  bool started = false;
  int reports = 0;
  async::BreakerHooks<int> hooks;
  hooks.admit = [] { return false; };
  hooks.rejected = [] { return Try<int>::from_value(-99); };
  hooks.classify = [](const Try<int>&) { return async::BreakerOutcome::kSuccess; };
  hooks.report = [&reports](async::BreakerOutcome) { ++reports; };
  Try<int> r = async::sync_wait(async::with_breaker<int>(
      async::just(0).then([&started](int x) {
        started = true;
        return x;
      }),
      std::move(hooks)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), -99);
  EXPECT_FALSE(started);
  EXPECT_EQ(reports, 0);  // fast-fail reports nothing
}

TEST(AsyncBreaker, ClassifiesAndReportsCompletedOutcomes) {
  std::vector<async::BreakerOutcome> reported;
  async::BreakerHooks<int> hooks;
  hooks.admit = [] { return true; };
  hooks.rejected = [] { return Try<int>::from_value(0); };
  hooks.classify = [](const Try<int>& t) {
    return t.get() >= 0 ? async::BreakerOutcome::kSuccess : async::BreakerOutcome::kFailure;
  };
  hooks.report = [&reported](async::BreakerOutcome o) { reported.push_back(o); };
  Try<int> r = async::sync_wait(async::with_breaker<int>(async::just(5), std::move(hooks)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), 5);
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0], async::BreakerOutcome::kSuccess);
}

// -------------------------------------------------- gates + instrumentation

TEST(AsyncAdaptors, GateMutatesOnlyTriggeredSuccesses) {
  // Triggered gate rewrites the outcome in place.
  Try<int> hit = async::sync_wait(async::gate<int>(
      async::just(1), [] { return true; }, [](Try<int>& t) { t.get() = -1; }));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.get(), -1);

  // Untriggered gate passes the value through.
  Try<int> miss = async::sync_wait(async::gate<int>(
      async::just(2), [] { return false; }, [](Try<int>& t) { t.get() = -1; }));
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss.get(), 2);

  // Errors pass through untouched -- gates refine successes.
  bool mutated = false;
  Try<int> err = async::sync_wait(async::gate<int>(
      async::just(0).then([](int) -> int { throw std::runtime_error("x"); }),
      [] { return true; },
      [&mutated](Try<int>&) { mutated = true; }));
  EXPECT_FALSE(err.ok());
  EXPECT_FALSE(mutated);
}

TEST(AsyncAdaptors, InstrumentMeasuresTheWrappedTaskOnly) {
  async::Scheduler pool(1);
  double seconds = -1.0;
  Try<Unit> r = async::sync_wait(async::instrument<Unit>(
      async::schedule(pool).then([] { std::this_thread::sleep_for(10ms); }),
      [&seconds](double s) { seconds = s; }));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(seconds, 0.009);
  EXPECT_LT(seconds, 5.0);
}

// ------------------------------------------------------------------- Event

TEST(AsyncEvent, FireBeforeStartDeliversStashedValue) {
  async::Event<int> event;
  event.fire_value(42);
  EXPECT_TRUE(event.fired());
  Try<int> r = async::sync_wait(event.task().then([](int x) { return x + 1; }));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get(), 43);
}

TEST(AsyncEvent, StartBeforeFireParksTheContinuation) {
  async::Event<std::string> event;
  std::promise<std::string> delivered;
  async::AsyncScope scope;
  scope.spawn(event.task().then(
      [&delivered](std::string s) { delivered.set_value(std::move(s)); }));
  // Nothing runs until the readiness event fires.
  auto fut = delivered.get_future();
  EXPECT_EQ(fut.wait_for(5ms), std::future_status::timeout);
  event.fire_value("frame");
  EXPECT_EQ(fut.get(), "frame");
  scope.join();
}

TEST(AsyncEvent, ErrorOutcomePropagatesThroughTheChain) {
  async::Event<int> event;
  event.fire_error(std::make_exception_ptr(std::runtime_error("peer gone")));
  Try<int> r = async::sync_wait(event.task());
  EXPECT_FALSE(r.ok());
  EXPECT_THROW(r.get(), std::runtime_error);
}

TEST(AsyncEvent, CrossThreadFireCompletesChainOnFiringThread) {
  // The I/O-loop shape: the chain is spawned first, a foreign thread fires
  // later, and the continuation runs without any scheduler involved.
  async::Event<int> event;
  std::atomic<int> seen{0};
  async::AsyncScope scope;
  scope.spawn(event.task().then([&seen](int v) { seen.store(v); }));
  std::thread firer([&event] {
    std::this_thread::sleep_for(2ms);
    event.fire_value(7);
  });
  firer.join();
  scope.join();
  EXPECT_EQ(seen.load(), 7);
}

// -------------------------------------------------------------- AsyncScope

TEST(AsyncScopeTest, JoinWaitsForEverySpawnedChain) {
  async::Scheduler pool(2);
  async::AsyncScope scope;
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    scope.spawn(async::schedule(pool).then([&completed] {
      std::this_thread::sleep_for(1ms);
      completed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  scope.join();
  EXPECT_EQ(completed.load(), 8);
  EXPECT_EQ(scope.in_flight(), 0u);
  EXPECT_EQ(scope.spawned(), 8u);
  scope.join();  // idempotent
}

TEST(AsyncScopeTest, JoinFlushesAttachedTimersBeforeWaiting) {
  // Regression for the drain ordering fix: a chain parked on a long backoff
  // timer must complete promptly at join() (the scope flushes the timers
  // FIRST, then waits), not after the full backoff.
  async::Scheduler pool(1);
  async::TimerQueue timers;
  async::AsyncScope scope;
  scope.attach_timers(timers);

  async::RetryOptions<int> options;
  options.max_attempts = 2;
  options.should_retry = [](const Try<int>&) { return true; };
  options.backoff_for = [](int) { return std::chrono::microseconds{3'600'000'000}; };
  std::atomic<int> attempts{0};
  scope.spawn(async::retry_with_backoff<int>(
                  [&attempts, &pool](int) {
                    return async::schedule(pool).then([&attempts] {
                      return attempts.fetch_add(1, std::memory_order_relaxed);
                    });
                  },
                  std::move(options), timers)
                  .then([](int) {}));

  // Give the first attempt time to land and park in its 1 h backoff.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (attempts.load() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(attempts.load(), 1);

  const auto begin = std::chrono::steady_clock::now();
  scope.join();
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(elapsed, 30s);  // would be ~1 h without the flush
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_GE(timers.flushed(), 1u);
}

// ------------------------------------------------------------ ExecutorPool

TEST(ExecutorPool, ConcurrentLeasesGetDistinctExecutors) {
  exec::ExecutorPool pool;
  exec::ExecutorPool::Lease a = pool.acquire(exec::Backend::kSerial, 1);
  exec::ExecutorPool::Lease b = pool.acquire(exec::Backend::kSerial, 4);
  ASSERT_NE(a.get(), nullptr);
  ASSERT_NE(b.get(), nullptr);
  EXPECT_NE(a.get(), b.get());
  // Serial key collapse: both leases came from the (kSerial, 1) pool.
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.idle(), 0u);

  a.release();
  b.release();
  b.release();  // idempotent
  EXPECT_EQ(pool.idle(), 2u);

  // Reacquiring reuses the warm executor instead of constructing a third.
  exec::ExecutorPool::Lease c = pool.acquire(exec::Backend::kSerial, 1);
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(ExecutorPool, CompletionHookCountsBulkRuns) {
  exec::ExecutorPool pool;
  exec::ExecutorPool::Lease lease = pool.acquire(exec::Backend::kPooled, 2);
  std::atomic<int> cells{0};
  lease.get()->submit_bulk(0, 16, 4, [&cells](Index lo, Index hi) {
    cells.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
  });
  lease.get()->submit_bulk(0, 0, 1, [](Index, Index) {});  // empty range counts too
  EXPECT_EQ(cells.load(), 16);
  EXPECT_EQ(pool.bulk_completions(), 2u);
}

// ----------------------------------------------- server chain integration

mea::Measurement make_measurement(Index n, std::uint64_t seed = 7) {
  Rng rng(seed + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  return mea::measure_exact(spec, truth);
}

ParametrizeRequest make_request(Index n, Index iterations = 2) {
  ParametrizeRequest request;
  request.measurement = make_measurement(n);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 2;
  request.options.keep_system = false;
  request.inverse.max_iterations = iterations;
  return request;
}

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("PARMA_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

TEST(ServeChain, ChainStageHistogramsObserveServedRequests) {
  Server server;
  Ticket ticket = server.try_submit(make_request(5));
  ASSERT_TRUE(ticket.accepted());
  const ParametrizeResult r = ticket.future().get();
  ASSERT_EQ(r.status, RequestStatus::kOk) << r.message;
  server.drain();

  EXPECT_GE(server.chain_stage_latency("form").count, 1u);
  EXPECT_GE(server.chain_stage_latency("solve").count, 1u);
  EXPECT_GE(server.chain_stage_latency("reconstruct").count, 1u);
  EXPECT_EQ(server.chain_stage_latency("bogus").count, 0u);
  // drain() returns when every request has completed; the batch chain's
  // final slot-release step may still be in flight until shutdown joins it.
  server.shutdown();
  EXPECT_EQ(server.inflight_batches(), 0u);
}

TEST(ServeChain, DrainExpeditesRequestsParkedInRetryBackoff) {
  // The drain ordering regression (TSan-checked): with a persistent fault
  // and an hour-long backoff, drain() must expedite the parked retries and
  // return promptly -- including the attempt chains that double as breaker
  // half-open probes -- instead of waiting out the backoff (or worse,
  // leaving a probe pending after shutdown tears the workers down).
  fault::ScopedInjector storm(11);
  storm->arm(fault::Point::kTaskFailure, {.probability = 1.0});  // every attempt fails

  ServerOptions options;
  options.workers = 2;
  options.policy.retry.max_attempts = 3;
  options.policy.retry.backoff = 3'600'000ms;  // 1 h: drain must not wait this out
  options.policy.retry.backoff_cap = 3'600'000ms;
  options.policy.breaker.failure_threshold = 1;  // opens on the first failure
  options.policy.breaker.cooldown = 1ms;         // immediately eligible for half-open
  Server server(options);

  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(server.submit(make_request(5), 500ms));
    ASSERT_TRUE(tickets.back().accepted());
  }

  const auto begin = std::chrono::steady_clock::now();
  server.drain();
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(elapsed, 60s);

  for (Ticket& ticket : tickets) {
    ASSERT_EQ(ticket.future().wait_for(0ms), std::future_status::ready);
    const ParametrizeResult r = ticket.future().get();
    EXPECT_TRUE(r.status == RequestStatus::kSolverFailed ||
                r.status == RequestStatus::kBreakerOpen)
        << serve::request_status_name(r.status) << ": " << r.message;
  }
  const Stats stats = server.stats();
  EXPECT_EQ(stats.completed(), stats.accepted);
  EXPECT_EQ(stats.end_to_end.count, stats.accepted);
  server.shutdown();
}

TEST(ServeChain, CancellationDuringBackoffCompletesBetweenAttempts) {
  fault::ScopedInjector storm(23);
  storm->arm(fault::Point::kTaskFailure, {.probability = 1.0});

  ServerOptions options;
  options.workers = 1;
  options.policy.retry.max_attempts = 3;
  options.policy.retry.backoff = 3'600'000ms;  // parks the retry for an hour
  options.policy.retry.backoff_cap = 3'600'000ms;
  options.policy.breaker.failure_threshold = 100;  // keep the breaker out of the way
  Server server(options);

  Ticket ticket = server.try_submit(make_request(5));
  ASSERT_TRUE(ticket.accepted());

  // Wait until the first attempt failed and the request parked in backoff.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server.stats().retries < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(server.stats().retries, 1u);

  ticket.cancel();
  server.drain();  // flushes the backoff timer; after_wait sees the cancel

  ASSERT_EQ(ticket.future().wait_for(0ms), std::future_status::ready);
  const ParametrizeResult r = ticket.future().get();
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  EXPECT_EQ(r.message, "cancelled between attempts");
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(AsyncChaos, CancellationStormCompletesEveryRequestDefinitely) {
  const std::uint64_t seed = chaos_seed() + 500;
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  // Slow the pipeline down so cancels land mid-form and mid-solve, and mix
  // in transient failures so some land during backoff.
  fault::ScopedInjector chaos(seed);
  chaos->arm(fault::Point::kSlowTask, {.probability = 0.5});
  chaos->arm(fault::Point::kTaskFailure, {.probability = 0.2});
  chaos->stall = 2ms;

  ServerOptions options;
  options.workers = 3;
  options.queue_capacity = 32;
  options.max_batch = 4;
  options.policy.retry.max_attempts = 2;
  options.policy.retry.backoff = 5ms;
  Server server(options);

  constexpr int kRequests = 24;
  Rng rng(seed);
  std::vector<Ticket> tickets;
  tickets.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    tickets.push_back(server.submit(make_request(4 + static_cast<Index>(i % 3), 3), 500ms));
  }
  // Cancel a seeded subset at staggered times: depending on where each chain
  // is, the cancel lands while queued, after formation, after solve, between
  // attempts -- or too late to matter.
  for (int i = 0; i < kRequests; ++i) {
    if (rng.uniform(0.0, 1.0) < 0.6) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::int64_t>(rng.uniform(0.0, 2000.0))));
      tickets[static_cast<std::size_t>(i)].cancel();
    }
  }
  server.drain();

  int cancelled = 0;
  for (Ticket& ticket : tickets) {
    if (!ticket.accepted()) continue;
    ASSERT_EQ(ticket.future().wait_for(0ms), std::future_status::ready);
    const ParametrizeResult r = ticket.future().get();
    switch (r.status) {
      case RequestStatus::kCancelled:
        ++cancelled;
        break;
      case RequestStatus::kOk:
      case RequestStatus::kDeadlineExceeded:
      case RequestStatus::kRejected:
      case RequestStatus::kSolverFailed:
      case RequestStatus::kInvalidInput:
      case RequestStatus::kBreakerOpen:
      case RequestStatus::kDegradedResult:
        break;
      default:
        ADD_FAILURE() << "unknown status " << static_cast<int>(r.status);
    }
  }
  (void)cancelled;  // how many land depends on the seed; conservation must not

  const Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.accepted + stats.rejected(), stats.submitted);
  EXPECT_EQ(stats.completed(), stats.accepted);
  EXPECT_EQ(stats.end_to_end.count, stats.accepted);
}

}  // namespace
}  // namespace parma

// Tests for src/mea: device censuses, synthetic field generation, measurement
// simulation, text I/O, time series, and anomaly detection.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/require.hpp"
#include "mea/anomaly.hpp"
#include "mea/dataset_io.hpp"
#include "mea/device.hpp"
#include "mea/field_render.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "mea/timeseries.hpp"

namespace parma::mea {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "parma_mea_test/" + name;
}

TEST(Device, SquareCensusMatchesPaperFormulas) {
  // Section IV-A: 2n^3 equations, (2n-1) n^2 unknowns; Section II-B: 2n^2
  // joints and n^2 resistors.
  for (Index n : {2, 3, 10, 64, 100}) {
    const DeviceSpec spec = square_device(n);
    EXPECT_EQ(spec.num_joints(), 2 * n * n);
    EXPECT_EQ(spec.num_resistors(), n * n);
    EXPECT_EQ(spec.num_equations(), 2 * n * n * n);
    EXPECT_EQ(spec.num_unknowns(), (2 * n - 1) * n * n);
  }
}

TEST(Device, RectangularCensusGeneralizes) {
  const DeviceSpec spec{3, 5, 5.0};
  EXPECT_EQ(spec.num_equations(), 15 * (2 + 4 + 2));
  EXPECT_EQ(spec.num_unknowns(), 15 * (4 + 2) + 15);
  EXPECT_FALSE(spec.is_square());
}

TEST(Device, KdCensusSpecializesToTwoDim) {
  // The k = 2 instance must reproduce the square device's Section IV-A
  // numbers exactly.
  for (Index n : {2, 3, 10, 100}) {
    const KdDeviceSpec kd = kd_device(n, 2);
    const DeviceSpec flat = square_device(n);
    EXPECT_EQ(kd.num_resistors(), flat.num_resistors());
    EXPECT_EQ(kd.num_equations(), flat.num_equations());
    EXPECT_EQ(kd.num_unknowns(), flat.num_unknowns());
    EXPECT_EQ(kd.equations_per_pair(), 2 * n);
  }
}

TEST(Device, KdCensusGrowsAsNToTheKPlusOne) {
  // Section IV-B: O(n^{k+1}) equations and (n-1)^k parallelism, so the
  // theoretical parallel cost O(n^{k+1})/(n-1)^k stays O(n) for every k.
  for (Index k : {1, 2, 3, 4}) {
    const KdDeviceSpec small = kd_device(8, k);
    const KdDeviceSpec big = kd_device(16, k);
    const Real growth = static_cast<Real>(big.num_equations()) /
                        static_cast<Real>(small.num_equations());
    const Real expected = std::pow(2.0, static_cast<Real>(k + 1));
    EXPECT_NEAR(growth, expected, expected * 0.35) << "k=" << k;

    const Real per_loop = static_cast<Real>(big.num_equations()) /
                          static_cast<Real>(big.intrinsic_parallelism());
    // equations/loops ~ k*n*(n/(n-1))^k: linear in n for fixed k.
    EXPECT_LT(per_loop, 1.5 * static_cast<Real>(k) * 16.0) << "k=" << k;
  }
  EXPECT_THROW(kd_device(1, 2), ContractError);
  EXPECT_THROW(kd_device(4, 0), ContractError);
}

TEST(Device, ValidationRejectsDegenerateSpecs) {
  EXPECT_THROW((DeviceSpec{1, 5, 5.0}).validate(), ContractError);
  EXPECT_THROW((DeviceSpec{3, 3, 0.0}).validate(), ContractError);
  EXPECT_NO_THROW(square_device(2));
}

TEST(Generator, HealthyFieldStaysNearBaseline) {
  Rng rng(41);
  GeneratorOptions options;
  options.jitter_fraction = 0.0;
  const auto grid = generate_field(square_device(6), options, rng);
  for (Real v : grid.flat()) EXPECT_DOUBLE_EQ(v, kWetLabMinResistanceKOhm);
}

TEST(Generator, AnomalyBlobElevatesItsNeighborhood) {
  Rng rng(42);
  GeneratorOptions options;
  options.jitter_fraction = 0.0;
  options.anomalies.push_back({4.0, 4.0, 1.5, 1.5, 11000.0});
  const auto grid = generate_field(square_device(9), options, rng);
  EXPECT_NEAR(grid.at(4, 4), 11000.0, 1.0);
  EXPECT_GT(grid.at(4, 5), grid.at(0, 8));  // near the blob > far corner
  EXPECT_NEAR(grid.at(0, 8), kWetLabMinResistanceKOhm, 200.0);
}

TEST(Generator, ValuesStayWithinWetLabBand) {
  Rng rng(43);
  const DeviceSpec spec = square_device(12);
  const GeneratorOptions options = random_scenario(spec, 3, rng);
  const auto grid = generate_field(spec, options, rng);
  for (Real v : grid.flat()) {
    EXPECT_GT(v, 0.5 * kWetLabMinResistanceKOhm);
    EXPECT_LT(v, 1.5 * kWetLabMaxResistanceKOhm);
  }
}

TEST(Generator, DeterministicUnderSameSeed) {
  const DeviceSpec spec = square_device(8);
  Rng rng_a(44);
  Rng rng_b(44);
  const GeneratorOptions opt_a = random_scenario(spec, 2, rng_a);
  const GeneratorOptions opt_b = random_scenario(spec, 2, rng_b);
  const auto grid_a = generate_field(spec, opt_a, rng_a);
  const auto grid_b = generate_field(spec, opt_b, rng_b);
  EXPECT_EQ(grid_a.flat(), grid_b.flat());
}

TEST(Generator, MaskSelectsElevatedCells) {
  Rng rng(45);
  GeneratorOptions options;
  options.jitter_fraction = 0.0;
  options.anomalies.push_back({1.0, 1.0, 0.8, 0.8, 11000.0});
  const auto grid = generate_field(square_device(4), options, rng);
  const auto mask = anomaly_mask(grid, default_threshold());
  EXPECT_TRUE(mask[1 * 4 + 1]);
  EXPECT_FALSE(mask[3 * 4 + 3]);
}

TEST(Measurement, ExactMeasurementMatchesForwardModel) {
  Rng rng(46);
  const DeviceSpec spec = square_device(4);
  const auto grid = generate_field(spec, random_scenario(spec, 1, rng), rng);
  const Measurement m = measure_exact(spec, grid);
  EXPECT_EQ(m.z.rows(), 4);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_GT(m.z(i, j), 0.0);
      EXPECT_DOUBLE_EQ(m.u(i, j), spec.drive_voltage);
    }
  }
}

TEST(Measurement, NoiseIsBoundedAndSeeded) {
  Rng rng(47);
  const DeviceSpec spec = square_device(4);
  const auto grid = generate_field(spec, {}, rng);
  MeasurementOptions noisy;
  noisy.noise_fraction = 0.02;
  Rng rng_a(1);
  Rng rng_b(1);
  const Measurement a = measure(spec, grid, noisy, rng_a);
  const Measurement b = measure(spec, grid, noisy, rng_b);
  const Measurement clean = measure_exact(spec, grid);
  EXPECT_NEAR(a.z(0, 0), b.z(0, 0), 1e-15);
  EXPECT_NEAR(a.z(1, 2), clean.z(1, 2), 0.15 * clean.z(1, 2));
  EXPECT_THROW(measure(spec, grid, {0.7}, rng_a), ContractError);
}

TEST(DatasetIo, MeasurementRoundTrips) {
  Rng rng(48);
  const DeviceSpec spec = square_device(5);
  const auto grid = generate_field(spec, random_scenario(spec, 1, rng), rng);
  const Measurement m = measure_exact(spec, grid);
  const std::string path = temp_path("roundtrip.txt");
  write_measurement(path, m, 6.0);
  const LoadedMeasurement loaded = read_measurement(path);
  EXPECT_EQ(loaded.epoch_hours, 6.0);
  EXPECT_EQ(loaded.measurement.spec.rows, 5);
  EXPECT_NEAR(loaded.measurement.z.max_abs_diff(m.z), 0.0, 1e-9);
}

TEST(DatasetIo, TruthRoundTrips) {
  Rng rng(49);
  const DeviceSpec spec = square_device(3);
  const auto grid = generate_field(spec, random_scenario(spec, 1, rng), rng);
  const std::string path = temp_path("truth.txt");
  write_truth(path, spec, grid);
  const auto loaded = read_truth(path);
  for (std::size_t e = 0; e < grid.flat().size(); ++e) {
    EXPECT_NEAR(loaded.flat()[e], grid.flat()[e], 1e-9);
  }
}

TEST(DatasetIo, RejectsMalformedFiles) {
  const std::string dir = temp_path("bad");
  std::filesystem::create_directories(dir);
  auto write_file = [&](const std::string& name, const std::string& contents) {
    std::ofstream out(dir + "/" + name);
    out << contents;
    return dir + "/" + name;
  };
  EXPECT_THROW(read_measurement(write_file("magic.txt", "nope\n")), IoError);
  EXPECT_THROW(read_measurement(write_file(
                   "short.txt", "# parma-mea v1\nrows 2\ncols 2\nvoltage 5\n")),
               IoError);
  EXPECT_THROW(read_measurement(write_file("ragged.txt",
                                           "# parma-mea v1\nrows 2\ncols 2\nvoltage 5\n"
                                           "epoch_hours 0\nZ\n1 2\n3\n")),
               IoError);
  EXPECT_THROW(read_measurement(write_file("wrongblock.txt",
                                           "# parma-mea v1\nrows 1\ncols 1\nvoltage 5\n"
                                           "epoch_hours 0\nR\n1\n")),
               IoError);
  EXPECT_THROW(read_measurement(dir + "/does_not_exist.txt"), IoError);
}

TEST(TimeSeries, FourEpochsWithGrowingAnomaly) {
  Rng rng(50);
  const DeviceSpec spec = square_device(6);
  TimeSeriesOptions options;
  options.scenario.jitter_fraction = 0.0;
  options.scenario.anomalies.push_back({2.0, 2.0, 1.0, 1.0, 8000.0});
  const auto frames = simulate_campaign(spec, options, rng);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].hours, 0.0);
  EXPECT_EQ(frames[3].hours, 24.0);
  // The blob's footprint (cells above threshold) must not shrink over time.
  Index prev_count = -1;
  for (const auto& frame : frames) {
    Index count = 0;
    for (bool b : anomaly_mask(frame.truth, 4000.0)) count += b;
    EXPECT_GE(count, prev_count);
    prev_count = count;
  }
  EXPECT_GT(prev_count, 0);
}

TEST(TimeSeries, CampaignFilesRoundTrip) {
  Rng rng(51);
  const DeviceSpec spec = square_device(4);
  TimeSeriesOptions options;
  options.scenario.anomalies.push_back({1.0, 1.0, 1.0, 1.0, 9000.0});
  const auto frames = simulate_campaign(spec, options, rng);
  const std::string dir = temp_path("campaign");
  const auto paths = write_campaign(dir, frames);
  ASSERT_EQ(paths.size(), 4u);
  for (std::size_t f = 0; f < paths.size(); ++f) {
    const LoadedMeasurement loaded = read_measurement(paths[f]);
    EXPECT_EQ(loaded.epoch_hours, frames[f].hours);
    EXPECT_NEAR(loaded.measurement.z.max_abs_diff(frames[f].measurement.z), 0.0, 1e-9);
  }
}

TEST(Anomaly, PerfectRecoveryScoresPerfectly) {
  Rng rng(52);
  GeneratorOptions options;
  options.jitter_fraction = 0.0;
  options.anomalies.push_back({2.0, 2.0, 0.9, 0.9, 11000.0});
  const auto grid = generate_field(square_device(5), options, rng);
  const auto truth = anomaly_mask(grid, default_threshold());
  const DetectionReport report = detect_anomalies(grid, default_threshold(), truth);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.f1(), 1.0);
  EXPECT_EQ(report.false_positives, 0);
}

TEST(Anomaly, MissedAndSpuriousDetectionsCounted) {
  circuit::ResistanceGrid recovered(2, 2, 1000.0);
  recovered.at(0, 0) = 9000.0;  // detected
  // truth says (0,0) healthy and (1,1) anomalous:
  std::vector<bool> truth{false, false, false, true};
  const DetectionReport report = detect_anomalies(recovered, 5000.0, truth);
  EXPECT_EQ(report.true_positives, 0);
  EXPECT_EQ(report.false_positives, 1);
  EXPECT_EQ(report.false_negatives, 1);
  EXPECT_EQ(report.true_negatives, 2);
  EXPECT_DOUBLE_EQ(report.f1(), 0.0);
}

TEST(FieldRender, HeatmapUsesFullRamp) {
  circuit::ResistanceGrid grid(2, 2, 0.0);
  grid.at(0, 0) = 0.0;
  grid.at(0, 1) = 1.0;
  grid.at(1, 0) = 0.5;
  grid.at(1, 1) = 1.0;
  const std::string art = render_heatmap(grid);
  ASSERT_EQ(art.size(), 6u);  // 2 rows x (2 chars + newline)
  EXPECT_EQ(art[0], ' ');     // min maps to lightest
  EXPECT_EQ(art[1], '@');     // max maps to densest
}

TEST(FieldRender, ConstantFieldDoesNotDivideByZero) {
  const circuit::ResistanceGrid grid(3, 3, 42.0);
  const std::string art = render_heatmap(grid);
  EXPECT_EQ(art.size(), 12u);
}

TEST(FieldRender, PgmHasValidHeaderAndSize) {
  circuit::ResistanceGrid grid(3, 4, 1000.0);
  grid.at(1, 2) = 9000.0;
  const std::string path = temp_path("field.pgm");
  write_pgm(path, grid, 4);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  Index width = 0, height = 0, maxval = 0;
  in >> magic >> width >> height >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(width, 16);   // 4 cols x scale 4
  EXPECT_EQ(height, 12);  // 3 rows x scale 4
  EXPECT_EQ(maxval, 255);
  in.get();  // the single whitespace after maxval
  std::string pixels((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(pixels.size(), 16u * 12u);
  EXPECT_THROW(write_pgm(path, grid, 0), ContractError);
}

TEST(Anomaly, RenderMaskDrawsGrid) {
  const std::string art = render_mask({true, false, false, true}, 2, 2);
  EXPECT_EQ(art, "#.\n.#\n");
  EXPECT_THROW(render_mask({true}, 2, 2), ContractError);
}

}  // namespace
}  // namespace parma::mea

// Tests for the classical reconstruction baselines (Section I's conventional
// approaches) and their comparison against Parma's LM recovery.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "solver/classical.hpp"
#include "solver/inverse_solver.hpp"

namespace parma::solver {
namespace {

struct Scene {
  mea::DeviceSpec spec;
  circuit::ResistanceGrid truth{1, 1};
  mea::Measurement measurement;
  Index anomaly_cell = 0;
};

Scene single_anomaly_scene(Index n, Real noise, std::uint64_t seed) {
  Rng rng(seed);
  Scene scene{mea::square_device(n), circuit::ResistanceGrid(1, 1), {}, 0};
  mea::GeneratorOptions gen;
  gen.jitter_fraction = 0.0;
  const Index ai = n / 2;
  const Index aj = n / 3;
  gen.anomalies.push_back({static_cast<Real>(ai), static_cast<Real>(aj), 0.6, 0.6, 9000.0});
  scene.anomaly_cell = ai * n + aj;
  scene.truth = mea::generate_field(scene.spec, gen, rng);
  mea::MeasurementOptions mopt;
  mopt.noise_fraction = noise;
  scene.measurement = mea::measure(scene.spec, scene.truth, mopt, rng);
  return scene;
}

Index argmax_cell(const circuit::ResistanceGrid& grid) {
  Index best = 0;
  for (Index e = 1; e < static_cast<Index>(grid.flat().size()); ++e) {
    if (grid.flat()[static_cast<std::size_t>(e)] > grid.flat()[static_cast<std::size_t>(best)]) {
      best = e;
    }
  }
  return best;
}

TEST(Sensitivity, BackgroundModelIsConsistent) {
  const Scene scene = single_anomaly_scene(5, 0.0, 501);
  const SensitivityModel model = build_sensitivity(scene.measurement, 2000.0);
  // Sensitivities are the adjoint (i/I)^2 values: non-negative, and the
  // direct crossing dominates its own pair's row.
  for (Index p = 0; p < 25; ++p) {
    Index best = 0;
    for (Index e = 0; e < 25; ++e) {
      EXPECT_GE(model.sensitivity(p, e), 0.0);
      if (model.sensitivity(p, e) > model.sensitivity(p, best)) best = e;
    }
    EXPECT_EQ(best, p);  // dZ(i,j) most sensitive to R(i,j)
  }
}

TEST(Sensitivity, AutomaticBackgroundIsReasonable) {
  const Scene scene = single_anomaly_scene(5, 0.0, 502);
  const SensitivityModel model = build_sensitivity(scene.measurement);
  const Real bg = model.background.at(0, 0);
  EXPECT_GT(bg, 500.0);
  EXPECT_LT(bg, 20000.0);
}

TEST(LinearBackProjection, LocalizesTheAnomaly) {
  const Scene scene = single_anomaly_scene(6, 0.0, 503);
  const SensitivityModel model = build_sensitivity(scene.measurement, 2000.0);
  const circuit::ResistanceGrid lbp = linear_back_projection(scene.measurement, model);
  EXPECT_EQ(argmax_cell(lbp), scene.anomaly_cell);
}

TEST(Tikhonov, LocalizesTheAnomalyAndRespectsDamping) {
  const Scene scene = single_anomaly_scene(6, 0.0, 504);
  const SensitivityModel model = build_sensitivity(scene.measurement, 2000.0);
  const circuit::ResistanceGrid light = tikhonov_reconstruction(scene.measurement, model, 1e-4);
  const circuit::ResistanceGrid heavy = tikhonov_reconstruction(scene.measurement, model, 10.0);
  EXPECT_EQ(argmax_cell(light), scene.anomaly_cell);
  // Heavier damping shrinks the update toward the background.
  const Real light_peak = light.flat()[static_cast<std::size_t>(scene.anomaly_cell)];
  const Real heavy_peak = heavy.flat()[static_cast<std::size_t>(scene.anomaly_cell)];
  const Real bg = model.background.at(0, 0);
  EXPECT_GT(light_peak - bg, heavy_peak - bg);
  EXPECT_THROW(tikhonov_reconstruction(scene.measurement, model, 0.0), ContractError);
}

TEST(Landweber, MisfitDecreasesAndAnomalyEmerges) {
  const Scene scene = single_anomaly_scene(5, 0.0, 505);
  const SensitivityModel model = build_sensitivity(scene.measurement, 2000.0);
  LandweberOptions options;
  options.max_iterations = 150;
  const LandweberResult result = landweber(scene.measurement, model, options);
  ASSERT_GE(result.misfit_history.size(), 2u);
  EXPECT_LT(result.final_misfit, result.misfit_history.front() * 0.5);
  EXPECT_EQ(argmax_cell(result.recovered), scene.anomaly_cell);
  for (Real v : result.recovered.flat()) EXPECT_GT(v, 0.0);
}

TEST(Landweber, RejectsBadOptions) {
  const Scene scene = single_anomaly_scene(4, 0.0, 506);
  const SensitivityModel model = build_sensitivity(scene.measurement, 2000.0);
  LandweberOptions bad;
  bad.relaxation = 1.5;
  EXPECT_THROW(landweber(scene.measurement, model, bad), ContractError);
}

TEST(Comparison, ParmaLmBeatsEveryClassicalBaseline) {
  // The paper's core positioning: the conventional linearized methods leave
  // large reconstruction error where the exact nonlinear recovery does not.
  const Scene scene = single_anomaly_scene(5, 0.0, 507);
  const SensitivityModel model = build_sensitivity(scene.measurement, 2000.0);

  auto max_rel_error = [&](const circuit::ResistanceGrid& grid) {
    Real worst = 0.0;
    for (std::size_t e = 0; e < grid.flat().size(); ++e) {
      worst = std::max(worst, std::abs(grid.flat()[e] - scene.truth.flat()[e]) /
                                  scene.truth.flat()[e]);
    }
    return worst;
  };

  InverseOptions lm_options;
  lm_options.max_iterations = 80;
  const Real lm_error = recover_resistances(scene.measurement, lm_options)
                            .max_relative_error(scene.truth);
  const Real lbp_error = max_rel_error(linear_back_projection(scene.measurement, model));
  const Real tik_error = max_rel_error(tikhonov_reconstruction(scene.measurement, model));
  LandweberOptions lw_options;
  lw_options.max_iterations = 150;
  const Real lw_error = max_rel_error(landweber(scene.measurement, model, lw_options).recovered);

  EXPECT_LT(lm_error, 1e-4);
  EXPECT_GT(lbp_error, 10.0 * lm_error);
  EXPECT_GT(tik_error, 10.0 * lm_error);
  EXPECT_GT(lw_error, 10.0 * lm_error);
}

TEST(Comparison, ClassicalMethodsAreNoiseSensitive) {
  // The ill-posedness the paper cites: across noise realizations the
  // linearized reconstructions vary much more than the measurements do.
  const Index n = 5;
  std::vector<Real> tik_peaks;
  for (std::uint64_t seed : {601u, 602u, 603u, 604u}) {
    const Scene scene = single_anomaly_scene(n, 0.01, seed);
    const SensitivityModel model = build_sensitivity(scene.measurement, 2000.0);
    const circuit::ResistanceGrid tik =
        tikhonov_reconstruction(scene.measurement, model, 1e-4);
    tik_peaks.push_back(tik.flat()[static_cast<std::size_t>(scene.anomaly_cell)]);
  }
  Real mean = 0.0;
  for (Real v : tik_peaks) mean += v;
  mean /= static_cast<Real>(tik_peaks.size());
  Real var = 0.0;
  for (Real v : tik_peaks) var += (v - mean) * (v - mean);
  var /= static_cast<Real>(tik_peaks.size());
  // 1% measurement noise is not damped: the recovered peak's spread stays at
  // least at the noise's order of magnitude (the ill-posed amplification the
  // paper cites; a well-posed inversion could average it down).
  EXPECT_GT(std::sqrt(var) / mean, 0.005);
}

}  // namespace
}  // namespace parma::solver

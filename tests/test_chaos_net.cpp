// Wire-level chaos for the socket tier (src/net) under the deterministic
// fault injector (src/fault).
//
// The socket shim (net/socket_ops) carries five named fault points -- torn
// writes, read stalls, connection resets, connect delays, and single-byte
// corruption -- each decided by the (seed, point, index) schedule, so a
// given PARMA_CHAOS_SEED injects a reproducible storm. These tests arm the
// points at production-meaningful rates (>= 5% per point) and hold the tier
// to its contract:
//
//   * every request the client sent terminates with a definite typed
//     outcome -- a response, a typed error frame, or a ClientError verdict;
//     wait() never hangs and nothing leaks (the tsan label reruns this
//     under -DPARMA_SANITIZE=thread);
//   * replay is invisible: parametrization is idempotent, so a request the
//     reconnecting client re-sent after an outage completes with a field
//     bit-identical to the fault-free baseline;
//   * torn writes alone are absorbed by the retry loops -- no reconnect,
//     no failure, partial writes are just TCP.
//
// scripts/check.sh runs the `chaos-net` ctest label, which reruns this
// binary under PARMA_CHAOS_SEED = 1, 2, 3.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "net/client.hpp"
#include "net/listener.hpp"
#include "net/protocol.hpp"
#include "serve/server.hpp"

namespace parma::net {
namespace {

using namespace std::chrono_literals;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("PARMA_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

/// Distinct measurements per (n, seed) so replies are distinguishable.
serve::ParametrizeRequest make_request(Index n, std::uint64_t seed) {
  Rng rng(seed * 977 + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  serve::ParametrizeRequest request;
  request.measurement = mea::measure_exact(spec, truth);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 2;
  request.options.keep_system = false;
  request.inverse.max_iterations = 2;
  return request;
}

serve::ServerOptions small_server() {
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  options.max_batch = 4;
  return options;
}

ClientOptions reconnecting_client(std::uint16_t port, std::uint64_t seed) {
  ClientOptions copts;
  copts.port = port;
  copts.reconnect = true;
  copts.max_reconnect_attempts = 12;
  copts.reconnect_backoff = 1ms;
  copts.reconnect_backoff_cap = 10ms;
  copts.jitter_seed = seed;
  return copts;
}

/// Arms every socket fault point at `probability`.
void arm_socket_points(fault::Injector& injector, Real probability) {
  const fault::Point points[] = {
      fault::Point::kSockTornWrite,   fault::Point::kSockReadStall,
      fault::Point::kSockReset,       fault::Point::kSockConnectDelay,
      fault::Point::kSockCorruptByte,
  };
  for (const fault::Point p : points) injector.arm(p, {probability});
}

TEST(ChaosNet, FullFaultScheduleEveryRequestTerminatesTyped) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  fault::ScopedInjector chaos(seed);
  arm_socket_points(chaos.get(), 0.08);
  chaos->stall = 1ms;

  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  client.connect(reconnecting_client(listener.port(), seed));

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(client.send(make_request(3 + (i % 3), seed + i)));
  }

  int completed = 0;
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, 120'000ms);
    ASSERT_TRUE(reply.has_value())
        << "request " << id << " never terminated -- the tier hung";
    // Definite outcome: a response, a typed error frame, or a transport
    // verdict. Any of the three is a contract-keeping terminal state.
    if (reply->ok()) ++completed;
    if (!reply->ok() && !reply->is_error) {
      EXPECT_NE(reply->transport, ClientError::kNone);
    }
  }
  EXPECT_EQ(client.pending(), 0u) << "terminated ids must leave the pending set";
  EXPECT_GT(completed, 0) << "the storm extinguished every single request";
  // The storm must have been real: the shim queried the armed points across
  // hundreds of syscalls, so a zero here means injection is disconnected.
  EXPECT_GT(chaos->total_fires(), 0u);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(ChaosNet, RepliesUnderChaosAreBitIdenticalToFaultFreeBaseline) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  // Fault-free baseline: the same request set through an undisturbed tier.
  std::map<std::uint64_t, std::vector<Real>> baseline;
  {
    serve::Server server(small_server());
    Listener listener(server);
    listener.start();
    Client client;
    ClientOptions copts;
    copts.port = listener.port();
    client.connect(copts);
    for (std::uint64_t i = 0; i < 6; ++i) {
      const auto reply = client.request(
          WireRequest::from_request(make_request(4, 100 + i), i + 1), 60'000ms);
      ASSERT_TRUE(reply.has_value());
      ASSERT_TRUE(reply->ok()) << client_error_name(reply->transport);
      baseline[i + 1] = reply->response.field;
    }
    client.disconnect();
    listener.stop();
    server.shutdown();
  }

  // The same requests through the storm. Every fault mode is recoverable
  // for a reconnecting client -- resets and corrupted responses trigger
  // replay, corrupted requests are caught by the body checksum and stay
  // pending for replay -- so every reply must complete, and idempotent
  // re-execution must reproduce the baseline field bit for bit.
  fault::ScopedInjector chaos(seed);
  arm_socket_points(chaos.get(), 0.05);
  chaos->stall = 1ms;

  serve::Server server(small_server());
  Listener listener(server);
  listener.start();
  Client client;
  client.connect(reconnecting_client(listener.port(), seed));

  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 6; ++i) {
    ids.push_back(
        client.send(WireRequest::from_request(make_request(4, 100 + i), i + 1)));
  }
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, 120'000ms);
    ASSERT_TRUE(reply.has_value()) << "request " << id << " never terminated";
    ASSERT_TRUE(reply->ok()) << "request " << id << " failed: "
                             << client_error_name(reply->transport) << " / "
                             << reply->error.message;
    const std::vector<Real>& expect = baseline.at(id);
    ASSERT_EQ(reply->response.field.size(), expect.size());
    EXPECT_EQ(std::memcmp(reply->response.field.data(), expect.data(),
                          expect.size() * sizeof(Real)),
              0)
        << "request " << id << " replayed to a different field";
  }

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(ChaosNet, TornWritesAloneAreAbsorbedWithoutReconnect) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  fault::ScopedInjector chaos(seed);
  chaos->arm(fault::Point::kSockTornWrite, {0.3});

  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;  // reconnect OFF: partial writes are ordinary TCP behavior
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(client.send(make_request(4, seed + i)));
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, 120'000ms);
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(reply->ok()) << client_error_name(reply->transport);
  }
  EXPECT_EQ(client.reconnects(), 0u) << "torn writes must not look like outages";

  client.disconnect();
  listener.stop();
  server.shutdown();
}

// Regression: replay used to re-send the whole pipeline atomically after a
// reconnect, so with a deep backlog every recovery round bet on a long
// clean write burst -- at a 5% per-syscall kill rate a 32-deep pipeline
// exhausted the attempt budget and resolved everything kConnectionLost.
// Windowed replay (ClientOptions::replay_window) keeps each round's bet
// small and lets responses drain between windows.
TEST(ChaosNet, DeepPipelineSurvivesSustainedKillsViaWindowedReplay) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  fault::ScopedInjector chaos(seed);
  chaos->arm(fault::Point::kSockReset, {0.05});

  serve::Server server(small_server());
  ListenerOptions lopts;
  lopts.max_inflight_per_connection = 32;
  Listener listener(server, lopts);
  listener.start();

  Client client;
  client.connect(reconnecting_client(listener.port(), seed));

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(client.send(make_request(3, seed + i)));
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, 120'000ms);
    ASSERT_TRUE(reply.has_value()) << "request " << id << " never terminated";
    EXPECT_TRUE(reply->ok()) << "request " << id << " failed: "
                             << client_error_name(reply->transport);
  }

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(ChaosNet, ConnectionKillsRecoverThroughReplay) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  fault::ScopedInjector chaos(seed);
  chaos->arm(fault::Point::kSockReset, {0.1});

  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  client.connect(reconnecting_client(listener.port(), seed));

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(client.send(make_request(4, seed + i)));
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, 120'000ms);
    ASSERT_TRUE(reply.has_value()) << "request " << id << " never terminated";
    EXPECT_TRUE(reply->ok()) << "request " << id << " failed: "
                             << client_error_name(reply->transport);
  }

  client.disconnect();
  listener.stop();
  server.shutdown();
}

}  // namespace
}  // namespace parma::net

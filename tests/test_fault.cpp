// Chaos suite for the robustness stack: the deterministic fault injector
// (src/fault), the CG -> Tikhonov -> dense solver fallback ladder
// (src/solver/fallback), and the resilient serving behaviors built on them
// (retry with backoff, per-shape circuit breaker, degraded-mode shedding,
// typed invalid-input rejection).
//
// The storm tests assert the robustness contract end to end: under any
// armed combination of injection points the server never crashes or hangs,
// every admitted request completes with a definite status exactly once, the
// stats conserve (accepted == completed), and a run whose injected faults
// are all retried away is bit-identical to a fault-free run. Carries the
// `tsan` ctest label; the Chaos.* tests are additionally registered under
// the `chaos` label with three distinct PARMA_CHAOS_SEED values.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/session.hpp"
#include "fault/injector.hpp"
#include "linalg/dense_solve.hpp"
#include "linalg/iterative.hpp"
#include "linalg/sparse_matrix.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "serve/server.hpp"
#include "solver/fallback.hpp"
#include "solver/full_system_solver.hpp"

namespace parma {
namespace {

using namespace std::chrono_literals;
using serve::ParametrizeRequest;
using serve::ParametrizeResult;
using serve::Priority;
using serve::RequestStatus;
using serve::Server;
using serve::ServerOptions;
using serve::SolveMethod;
using serve::Stats;
using serve::SubmitStatus;
using serve::Ticket;

mea::Measurement make_measurement(Index n, std::uint64_t seed = 7) {
  Rng rng(seed + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  return mea::measure_exact(spec, truth);
}

ParametrizeRequest make_request(Index n, Index iterations = 2) {
  ParametrizeRequest request;
  request.measurement = make_measurement(n);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 2;
  request.options.keep_system = false;
  request.inverse.max_iterations = iterations;
  return request;
}

linalg::CsrMatrix spd_tridiagonal(Index n) {
  linalg::CooBuilder coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, 4.0);
    if (i + 1 < n) {
      coo.add(i, i + 1, -1.0);
      coo.add(i + 1, i, -1.0);
    }
  }
  return coo.build();
}

// ---------------------------------------------------------------- injector

TEST(Injector, DisabledByDefaultAndZeroArmed) {
  ASSERT_EQ(fault::installed(), nullptr);
  EXPECT_FALSE(fault::should_fire(fault::Point::kTaskFailure));

  fault::Injector injector(42);  // constructed but nothing armed
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(injector.should_fire(fault::Point::kCgNonConvergence));
  }
  EXPECT_EQ(injector.queries(fault::Point::kCgNonConvergence), 16u);
  EXPECT_EQ(injector.total_fires(), 0u);
}

TEST(Injector, DecisionsAreDeterministicInSeedPointAndQuery) {
  const auto sequence = [](std::uint64_t seed) {
    fault::Injector injector(seed);
    injector.arm(fault::Point::kTaskFailure, {.probability = 0.5});
    std::vector<bool> fired;
    fired.reserve(256);
    for (int i = 0; i < 256; ++i) {
      fired.push_back(injector.should_fire(fault::Point::kTaskFailure));
    }
    return fired;
  };
  EXPECT_EQ(sequence(7), sequence(7));    // same seed, same schedule
  EXPECT_NE(sequence(7), sequence(8));    // different seed, different schedule
}

TEST(Injector, ScheduleBoundsFiring) {
  fault::Injector injector(3);
  fault::Schedule schedule;
  schedule.probability = 1.0;
  schedule.max_fires = 3;
  schedule.skip_first = 2;
  injector.arm(fault::Point::kAllocFailure, schedule);

  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) {
    fired.push_back(injector.should_fire(fault::Point::kAllocFailure));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true,
                                      false, false, false, false, false}));
  EXPECT_EQ(injector.fires(fault::Point::kAllocFailure), 3u);
  EXPECT_EQ(injector.queries(fault::Point::kAllocFailure), 10u);
}

TEST(Injector, ScopedInstallUninstallsOnExit) {
  ASSERT_EQ(fault::installed(), nullptr);
  {
    fault::ScopedInjector chaos(1);
    chaos->arm(fault::Point::kTaskFailure, {.probability = 1.0});
    EXPECT_EQ(fault::installed(), &chaos.get());
    EXPECT_TRUE(fault::should_fire(fault::Point::kTaskFailure));
  }
  EXPECT_EQ(fault::installed(), nullptr);
  EXPECT_FALSE(fault::should_fire(fault::Point::kTaskFailure));
}

TEST(Injector, PointNamesAreStable) {
  EXPECT_STREQ(fault::point_name(fault::Point::kDropMeasurement), "drop-measurement");
  EXPECT_STREQ(fault::point_name(fault::Point::kNoiseMeasurement), "noise-measurement");
  EXPECT_STREQ(fault::point_name(fault::Point::kCgNonConvergence), "cg-non-convergence");
  EXPECT_STREQ(fault::point_name(fault::Point::kTaskFailure), "task-failure");
  EXPECT_STREQ(fault::point_name(fault::Point::kSlowTask), "slow-task");
  EXPECT_STREQ(fault::point_name(fault::Point::kAllocFailure), "alloc-failure");
}

// ---------------------------------------------------------- fallback ladder

TEST(FallbackLadder, BitIdenticalToPlainCgWhenItConverges) {
  const linalg::CsrMatrix a = spd_tridiagonal(12);
  const std::vector<Real> b(12, 1.0);
  solver::FallbackOptions options;

  const linalg::IterativeResult plain = linalg::conjugate_gradient(a, b, options.cg);
  ASSERT_TRUE(plain.converged);

  solver::SolveDiagnostics diagnostics;
  const std::vector<Real> x = solver::solve_with_fallback(a, b, options, diagnostics);
  EXPECT_EQ(diagnostics.highest_rung, solver::FallbackRung::kCg);
  EXPECT_EQ(diagnostics.linear_solves, 1);
  EXPECT_EQ(diagnostics.tikhonov_retries, 0);
  EXPECT_EQ(diagnostics.dense_fallbacks, 0);
  EXPECT_FALSE(diagnostics.degraded());
  ASSERT_EQ(x.size(), plain.x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i], plain.x[i]) << "component " << i;  // bit-identical
  }
}

TEST(FallbackLadder, ForcedCgFailureEscalatesToDense) {
  const Index n = 12;
  const linalg::CsrMatrix a = spd_tridiagonal(n);
  std::vector<Real> b(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) b[static_cast<std::size_t>(i)] = 1.0 + 0.25 * static_cast<Real>(i);

  fault::ScopedInjector chaos(19);
  chaos->arm(fault::Point::kCgNonConvergence, {.probability = 1.0});

  solver::SolveDiagnostics diagnostics;
  const std::vector<Real> x =
      solver::solve_with_fallback(a, b, solver::FallbackOptions{}, diagnostics);

  // Both CG rungs were forced to fail, so the solve came from the dense rung.
  EXPECT_EQ(diagnostics.highest_rung, solver::FallbackRung::kDense);
  EXPECT_EQ(diagnostics.tikhonov_retries, 1);
  EXPECT_EQ(diagnostics.dense_fallbacks, 1);
  EXPECT_TRUE(diagnostics.degraded());

  // And it is still the right answer.
  linalg::DenseMatrix dense(n, n);
  dense(0, 0) = 4.0;
  for (Index i = 1; i < n; ++i) {
    dense(i, i) = 4.0;
    dense(i - 1, i) = -1.0;
    dense(i, i - 1) = -1.0;
  }
  const std::vector<Real> expected = linalg::solve_dense(dense, b);
  ASSERT_EQ(x.size(), expected.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], expected[i], 1e-12);
}

TEST(FallbackLadder, DenseOverloadFollowsTheSameLadder) {
  const Index n = 8;
  linalg::DenseMatrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    a(i, i) = 3.0;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  const std::vector<Real> b(static_cast<std::size_t>(n), 2.0);

  solver::SolveDiagnostics healthy;
  const std::vector<Real> x_healthy =
      solver::solve_with_fallback(a, b, solver::FallbackOptions{}, healthy);
  EXPECT_EQ(healthy.highest_rung, solver::FallbackRung::kCg);

  fault::ScopedInjector chaos(23);
  chaos->arm(fault::Point::kCgNonConvergence, {.probability = 1.0});
  solver::SolveDiagnostics degraded;
  const std::vector<Real> x_degraded =
      solver::solve_with_fallback(a, b, solver::FallbackOptions{}, degraded);
  EXPECT_EQ(degraded.highest_rung, solver::FallbackRung::kDense);
  for (std::size_t i = 0; i < x_degraded.size(); ++i) {
    EXPECT_NEAR(x_degraded[i], x_healthy[i], 1e-10);
  }
}

TEST(FallbackLadder, DiagnosticsMergeTakesWorstRungAndSums) {
  solver::SolveDiagnostics total;
  solver::SolveDiagnostics cg_only;
  cg_only.highest_rung = solver::FallbackRung::kCg;
  cg_only.linear_solves = 2;
  cg_only.cg_iterations = 40;
  solver::SolveDiagnostics dense;
  dense.highest_rung = solver::FallbackRung::kDense;
  dense.linear_solves = 1;
  dense.tikhonov_retries = 1;
  dense.dense_fallbacks = 1;
  dense.converged = false;
  total.merge(cg_only);
  total.merge(dense);
  EXPECT_EQ(total.highest_rung, solver::FallbackRung::kDense);
  EXPECT_EQ(total.linear_solves, 3);
  EXPECT_EQ(total.cg_iterations, 40);
  EXPECT_EQ(total.tikhonov_retries, 1);
  EXPECT_EQ(total.dense_fallbacks, 1);
  EXPECT_FALSE(total.converged);
}

TEST(FullSystemSolver, RecoversThroughDenseRungWhenCgIsForcedToFail) {
  const mea::Measurement measurement = make_measurement(4, 21);
  core::StrategyOptions strategy;  // keep_system = true by default
  const core::Session session = core::Session::on(measurement).options(strategy).build();
  const core::FormationResult formation = session.form();

  solver::FullSystemOptions options;
  options.max_iterations = 20;

  const solver::FullSystemResult healthy =
      solver::solve_full_system(formation.system, measurement, options);
  ASSERT_TRUE(healthy.converged);
  EXPECT_EQ(healthy.diagnostics.highest_rung, solver::FallbackRung::kCg);

  // The acceptance case from the issue: CG alone cannot make progress (every
  // CG call is forced to report non-convergence), but the ladder recovers.
  fault::ScopedInjector chaos(11);
  chaos->arm(fault::Point::kCgNonConvergence, {.probability = 1.0});
  const solver::FullSystemResult degraded =
      solver::solve_full_system(formation.system, measurement, options);
  EXPECT_TRUE(degraded.converged);
  EXPECT_EQ(degraded.diagnostics.highest_rung, solver::FallbackRung::kDense);
  EXPECT_GT(degraded.diagnostics.dense_fallbacks, 0);
  EXPECT_GT(chaos->fires(fault::Point::kCgNonConvergence), 0u);

  ASSERT_EQ(degraded.recovered.rows(), healthy.recovered.rows());
  ASSERT_EQ(degraded.recovered.cols(), healthy.recovered.cols());
  for (Index i = 0; i < healthy.recovered.rows(); ++i) {
    for (Index j = 0; j < healthy.recovered.cols(); ++j) {
      EXPECT_NEAR(degraded.recovered.at(i, j), healthy.recovered.at(i, j), 1e-6)
          << "cell (" << i << ", " << j << ")";
    }
  }
}

// ------------------------------------------------------------ serve: retry

TEST(ServeResilience, FullSystemRequestRecoversViaLadderWhenCgIsForced) {
  fault::ScopedInjector chaos(5);
  chaos->arm(fault::Point::kCgNonConvergence, {.probability = 1.0});

  ServerOptions options;
  options.workers = 1;
  Server server(options);

  ParametrizeRequest request = make_request(4);
  request.solve_method = SolveMethod::kFullSystem;
  request.full_system.max_iterations = 15;
  Ticket ticket = server.try_submit(std::move(request));
  ASSERT_TRUE(ticket.accepted());
  const ParametrizeResult r = ticket.future().get();
  ASSERT_EQ(r.status, RequestStatus::kOk) << r.message;
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.solve_diagnostics.highest_rung, solver::FallbackRung::kDense);
  EXPECT_GT(r.solve_diagnostics.dense_fallbacks, 0);
  server.drain();

  const Stats stats = server.stats();
  EXPECT_EQ(stats.completed_ok, 1u);
  EXPECT_GT(stats.fallback_dense, 0u);
  EXPECT_GT(stats.fallback_tikhonov, 0u);
}

TEST(ServeResilience, FullyRetriedFaultsAreBitIdenticalToFaultFreeRun) {
  ServerOptions options;
  options.workers = 1;
  options.policy.retry.max_attempts = 3;
  options.policy.retry.backoff = 0ms;

  // Fault-free reference run.
  ParametrizeResult reference;
  {
    Server server(options);
    Ticket ticket = server.try_submit(make_request(6, /*iterations=*/8));
    ASSERT_TRUE(ticket.accepted());
    reference = ticket.future().get();
    ASSERT_EQ(reference.status, RequestStatus::kOk) << reference.message;
    EXPECT_EQ(reference.attempts, 1);
  }

  // Storm run: attempt 1 sees an in-flight measurement corruption, attempt 2
  // an injected executor-chunk failure; both budgets are then exhausted, so
  // attempt 3 runs clean and must reproduce the reference bit for bit.
  fault::ScopedInjector chaos(31);
  chaos->arm(fault::Point::kDropMeasurement, {.probability = 1.0, .max_fires = 1});
  chaos->arm(fault::Point::kTaskFailure, {.probability = 1.0, .max_fires = 1});

  Server server(options);
  Ticket ticket = server.try_submit(make_request(6, /*iterations=*/8));
  ASSERT_TRUE(ticket.accepted());
  const ParametrizeResult retried = ticket.future().get();
  ASSERT_EQ(retried.status, RequestStatus::kOk) << retried.message;
  EXPECT_EQ(retried.attempts, 3);
  server.drain();

  EXPECT_EQ(retried.inverse.iterations, reference.inverse.iterations);
  EXPECT_EQ(retried.inverse.converged, reference.inverse.converged);
  EXPECT_EQ(retried.inverse.final_misfit, reference.inverse.final_misfit);
  ASSERT_EQ(retried.inverse.recovered.rows(), reference.inverse.recovered.rows());
  ASSERT_EQ(retried.inverse.recovered.cols(), reference.inverse.recovered.cols());
  for (Index i = 0; i < reference.inverse.recovered.rows(); ++i) {
    for (Index j = 0; j < reference.inverse.recovered.cols(); ++j) {
      EXPECT_EQ(retried.inverse.recovered.at(i, j), reference.inverse.recovered.at(i, j))
          << "cell (" << i << ", " << j << ")";
    }
  }

  const Stats stats = server.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.retry_successes, 1u);
  EXPECT_EQ(stats.completed_ok, 1u);
  EXPECT_EQ(stats.invalid_input, 0u);
  EXPECT_EQ(chaos->fires(fault::Point::kDropMeasurement), 1u);
  EXPECT_EQ(chaos->fires(fault::Point::kTaskFailure), 1u);
}

TEST(ServeResilience, PersistentCorruptionCompletesAsTypedInvalidInput) {
  fault::ScopedInjector chaos(13);
  chaos->arm(fault::Point::kDropMeasurement, {.probability = 1.0});  // every attempt

  ServerOptions options;
  options.workers = 1;
  options.policy.retry.max_attempts = 2;
  options.policy.retry.backoff = 0ms;
  Server server(options);

  Ticket ticket = server.try_submit(make_request(5));
  ASSERT_TRUE(ticket.accepted());
  const ParametrizeResult r = ticket.future().get();
  EXPECT_EQ(r.status, RequestStatus::kInvalidInput);
  EXPECT_NE(r.message.find("non-finite"), std::string::npos) << r.message;
  EXPECT_EQ(r.attempts, 2);
  server.drain();

  const Stats stats = server.stats();
  EXPECT_EQ(stats.invalid_input, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.completed(), stats.accepted);
}

TEST(ServeResilience, AdmissionRejectsNonFiniteAndNegativeZ) {
  Server server;

  ParametrizeRequest nan_z = make_request(5);
  nan_z.measurement.z(1, 2) = std::numeric_limits<Real>::quiet_NaN();
  Ticket t1 = server.try_submit(std::move(nan_z));
  EXPECT_EQ(t1.admission(), SubmitStatus::kInvalidOptions);
  const ParametrizeResult r1 = t1.future().get();
  EXPECT_EQ(r1.status, RequestStatus::kInvalidInput);
  EXPECT_NE(r1.message.find("(1, 2)"), std::string::npos) << r1.message;

  ParametrizeRequest negative_z = make_request(5);
  negative_z.measurement.z(0, 0) = -3.5;
  Ticket t2 = server.try_submit(std::move(negative_z));
  EXPECT_EQ(t2.admission(), SubmitStatus::kInvalidOptions);
  EXPECT_EQ(t2.future().get().status, RequestStatus::kInvalidInput);

  EXPECT_EQ(server.stats().rejected_invalid, 2u);
}

TEST(EngineValidation, RejectsCorruptMeasurementTyped) {
  mea::Measurement bad = make_measurement(5);
  bad.z(2, 3) = std::numeric_limits<Real>::infinity();
  EXPECT_THROW(core::Engine{std::move(bad)}, mea::InvalidMeasurement);

  mea::Measurement negative = make_measurement(5);
  negative.z(0, 1) = 0.0;  // two-point resistance must be strictly positive
  EXPECT_THROW(core::Engine{std::move(negative)}, mea::InvalidMeasurement);
}

// ---------------------------------------------------------- circuit breaker

TEST(CircuitBreaker, LifecycleClosedOpenHalfOpenClosed) {
  const serve::BreakerOptions options{/*failure_threshold=*/2, /*cooldown=*/100ms};
  serve::BreakerBoard board(options);
  const serve::BreakerBoard::Shape shape{5, 5};
  const auto t0 = serve::Clock::now();

  EXPECT_TRUE(board.allow(shape, t0));  // unknown shape: implicitly closed
  board.on_failure(shape, t0);
  EXPECT_EQ(board.state(shape), serve::BreakerState::kClosed);  // 1 < threshold
  board.on_failure(shape, t0);
  EXPECT_EQ(board.state(shape), serve::BreakerState::kOpen);
  EXPECT_EQ(board.opened_events(), 1u);
  EXPECT_EQ(board.open_shapes(), 1u);

  EXPECT_FALSE(board.allow(shape, t0 + 50ms));   // still cooling down
  EXPECT_TRUE(board.allow(shape, t0 + 150ms));   // cooldown over: the probe
  EXPECT_EQ(board.state(shape), serve::BreakerState::kHalfOpen);
  EXPECT_FALSE(board.allow(shape, t0 + 150ms));  // one probe at a time

  board.on_neutral(shape);                       // probe ended without signal
  EXPECT_TRUE(board.allow(shape, t0 + 160ms));   // next probe may go

  board.on_failure(shape, t0 + 170ms);           // probe failed: reopen
  EXPECT_EQ(board.state(shape), serve::BreakerState::kOpen);
  EXPECT_EQ(board.opened_events(), 2u);

  EXPECT_TRUE(board.allow(shape, t0 + 300ms));   // second probe
  board.on_success(shape);
  EXPECT_EQ(board.state(shape), serve::BreakerState::kClosed);
  EXPECT_EQ(board.open_shapes(), 0u);

  // Consecutive-failure counter reset on success: one more failure stays closed.
  board.on_failure(shape, t0 + 310ms);
  EXPECT_EQ(board.state(shape), serve::BreakerState::kClosed);

  // Other shapes are independent.
  EXPECT_TRUE(board.allow({6, 6}, t0));
  EXPECT_EQ(board.state(serve::BreakerBoard::Shape{6, 6}), serve::BreakerState::kClosed);
}

TEST(CircuitBreaker, ZeroThresholdDisables) {
  serve::BreakerBoard board(serve::BreakerOptions{0, 100ms});
  const serve::BreakerBoard::Shape shape{5, 5};
  const auto t0 = serve::Clock::now();
  for (int i = 0; i < 10; ++i) board.on_failure(shape, t0);
  EXPECT_TRUE(board.allow(shape, t0));
  EXPECT_EQ(board.opened_events(), 0u);
}

TEST(ServeResilience, BreakerFastFailsShapeAfterRepeatedSolverFailures) {
  ServerOptions options;
  options.workers = 1;
  options.policy.retry.max_attempts = 1;
  options.policy.breaker.failure_threshold = 2;
  options.policy.breaker.cooldown = 10s;  // stays open for the rest of the test
  Server server(options);

  for (int k = 0; k < 2; ++k) {
    ParametrizeRequest bad = make_request(5);
    bad.inverse.max_iterations = 0;  // solver contract violation: kSolverFailed
    Ticket t = server.try_submit(std::move(bad));
    ASSERT_TRUE(t.accepted());
    EXPECT_EQ(t.future().get().status, RequestStatus::kSolverFailed);
  }
  EXPECT_EQ(server.breaker_state(5, 5), serve::BreakerState::kOpen);

  // Healthy request for the poisoned shape: fast-failed without solving.
  Ticket blocked = server.try_submit(make_request(5));
  ASSERT_TRUE(blocked.accepted());
  const ParametrizeResult r = blocked.future().get();
  EXPECT_EQ(r.status, RequestStatus::kBreakerOpen);
  EXPECT_NE(r.message.find("breaker"), std::string::npos);

  // Other shapes are unaffected.
  Ticket other = server.try_submit(make_request(6));
  ASSERT_TRUE(other.accepted());
  EXPECT_EQ(other.future().get().status, RequestStatus::kOk);
  server.drain();

  const Stats stats = server.stats();
  EXPECT_EQ(stats.solver_failed, 2u);
  EXPECT_EQ(stats.breaker_open, 1u);
  EXPECT_EQ(stats.breaker_opened_events, 1u);
  EXPECT_EQ(stats.breaker_open_shapes, 1u);
  EXPECT_EQ(stats.completed(), stats.accepted);
}

// ------------------------------------------------------------ degraded mode

TEST(ServeResilience, DegradedModeShedsLowPriorityAndRecovers) {
  ServerOptions options;
  options.queue_capacity = 4;
  options.workers = 1;
  options.deferred_start = true;     // stage the queue deterministically
  options.policy.shedding.high_water = 0.5; // threshold: 2 queued
  options.policy.shedding.sustain = 0ms;
  Server server(options);

  Ticket t1 = server.try_submit(make_request(5));
  Ticket t2 = server.try_submit(make_request(5));
  ASSERT_TRUE(t1.accepted());
  ASSERT_TRUE(t2.accepted());

  // Queue sits at the high-water mark: this admission trips degraded mode
  // and, being low priority, is shed.
  ParametrizeRequest low = make_request(5);
  low.priority = Priority::kLow;
  Ticket shed = server.try_submit(std::move(low));
  EXPECT_EQ(shed.admission(), SubmitStatus::kLoadShed);
  EXPECT_EQ(shed.future().get().status, RequestStatus::kRejected);
  EXPECT_TRUE(server.degraded());

  // Normal-priority traffic still gets in under degraded mode.
  Ticket normal = server.try_submit(make_request(5));
  EXPECT_EQ(normal.admission(), SubmitStatus::kAccepted);

  server.start();
  EXPECT_EQ(t1.future().get().status, RequestStatus::kOk);
  EXPECT_EQ(t2.future().get().status, RequestStatus::kOk);
  EXPECT_EQ(normal.future().get().status, RequestStatus::kOk);

  // Queue has fully drained (below half the threshold): the next admission
  // exits degraded mode, so low-priority work flows again.
  ParametrizeRequest low_again = make_request(5);
  low_again.priority = Priority::kLow;
  Ticket recovered = server.try_submit(std::move(low_again));
  EXPECT_EQ(recovered.admission(), SubmitStatus::kAccepted);
  EXPECT_FALSE(server.degraded());
  EXPECT_EQ(recovered.future().get().status, RequestStatus::kOk);

  const Stats stats = server.stats();
  EXPECT_EQ(stats.rejected_load_shed, 1u);
  EXPECT_EQ(stats.degraded_entered, 1u);
  EXPECT_FALSE(stats.degraded);
}

// ------------------------------------------------------------- chaos storms

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("PARMA_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

TEST(Chaos, AllPointsArmedStormCompletesEveryRequestDefinitely) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  fault::ScopedInjector chaos(seed);
  fault::Schedule storm;
  storm.probability = 0.15;
  chaos->arm_all(storm);  // every named point armed at once
  chaos->stall = 1ms;

  ServerOptions options;
  options.workers = 3;
  options.queue_capacity = 16;
  options.max_batch = 4;
  options.policy.retry.max_attempts = 3;
  options.policy.retry.backoff = 0ms;  // keep the storm fast
  options.policy.breaker.failure_threshold = 3;
  options.policy.breaker.cooldown = 5ms;
  options.policy.shedding.high_water = 0.9;
  options.policy.shedding.sustain = 1ms;
  Server server(options);

  constexpr int kRequests = 36;
  std::vector<Ticket> tickets;
  tickets.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ParametrizeRequest request = make_request(4 + static_cast<Index>(i % 3), 3);
    request.priority = (i % 5 == 0) ? Priority::kLow : Priority::kNormal;
    if (i % 6 == 0) {
      request.solve_method = SolveMethod::kFullSystem;
      request.full_system.max_iterations = 4;
    }
    tickets.push_back(server.submit(std::move(request), 500ms));
    if (!tickets.back().accepted()) {
      // Rejected admissions (backpressure/shedding) still complete instantly.
      EXPECT_EQ(tickets.back().future().wait_for(0ms), std::future_status::ready);
    }
  }
  server.drain();  // returning at all proves no request hung

  for (Ticket& ticket : tickets) {
    ASSERT_EQ(ticket.future().wait_for(0ms), std::future_status::ready);
    const ParametrizeResult r = ticket.future().get();
    switch (r.status) {  // every status definite and known
      case RequestStatus::kOk:
      case RequestStatus::kDeadlineExceeded:
      case RequestStatus::kCancelled:
      case RequestStatus::kRejected:
      case RequestStatus::kSolverFailed:
      case RequestStatus::kInvalidInput:
      case RequestStatus::kBreakerOpen:
        break;
      default:
        ADD_FAILURE() << "unknown status " << static_cast<int>(r.status);
    }
    if (r.status == RequestStatus::kOk) {
      EXPECT_GE(r.attempts, 1);
      EXPECT_LE(r.attempts, options.policy.retry.max_attempts);
    }
  }

  // Stat conservation: nothing lost, nothing double-counted.
  const Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.accepted + stats.rejected(), stats.submitted);
  EXPECT_EQ(stats.completed(), stats.accepted);
  EXPECT_EQ(stats.end_to_end.count, stats.accepted);
  EXPECT_GT(chaos->total_fires(), 0u) << "storm never fired; schedule misconfigured?";
}

TEST(Chaos, StormWithRetriesDisabledStillCompletesDefinitely) {
  const std::uint64_t seed = chaos_seed() + 1000;
  fault::ScopedInjector chaos(seed);
  chaos->arm_all({.probability = 0.25});
  chaos->stall = 1ms;

  ServerOptions options;
  options.workers = 2;
  options.policy.retry.max_attempts = 1;  // every fault is terminal: statuses must still be definite
  options.policy.breaker.failure_threshold = 2;
  options.policy.breaker.cooldown = 1ms;
  Server server(options);

  std::vector<Ticket> tickets;
  for (int i = 0; i < 24; ++i) {
    tickets.push_back(server.submit(make_request(5, 2), 500ms));
  }
  server.drain();

  for (Ticket& ticket : tickets) {
    ASSERT_EQ(ticket.future().wait_for(0ms), std::future_status::ready);
    (void)ticket.future().get();
  }
  const Stats stats = server.stats();
  EXPECT_EQ(stats.accepted + stats.rejected(), stats.submitted);
  EXPECT_EQ(stats.completed(), stats.accepted);
}

}  // namespace
}  // namespace parma

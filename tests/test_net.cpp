// Tests for src/net: the socket transport tier in front of serve::Server.
//
// Three layers of coverage: (1) the wire protocol -- encode/decode round
// trips, torn and malformed frames (truncated header, oversized declared
// payload rejected before any allocation, garbage magic, foreign version,
// mid-payload truncation), and a deterministic-seed fuzz loop that must
// never crash the decoder; (2) the readiness-event bridge end to end over
// loopback TCP -- a request served through the socket recovers the same
// field bit-for-bit as one submitted in process; (3) failure modes -- a
// malformed frame answered with a typed kError reply and a clean close, and
// a client that disconnects mid-flight never wedging the dispatcher.
// Carries the `tsan` ctest label; run under -DPARMA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "net/client.hpp"
#include "net/listener.hpp"
#include "net/protocol.hpp"
#include "net/socket_ops.hpp"
#include "serve/server.hpp"

namespace parma::net {
namespace {

using namespace std::chrono_literals;

mea::Measurement make_measurement(Index n, std::uint64_t seed = 7) {
  Rng rng(seed + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  return mea::measure_exact(spec, truth);
}

serve::ParametrizeRequest make_request(Index n, Index iterations = 1) {
  serve::ParametrizeRequest request;
  request.measurement = make_measurement(n);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 2;
  request.options.keep_system = false;
  request.inverse.max_iterations = iterations;
  return request;
}

WireRequest make_wire_request(Index n, std::uint64_t id) {
  return WireRequest::from_request(make_request(n), id);
}

/// Decodes exactly one frame out of `bytes` or fails the test.
Frame decode_one(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame)
      << proto_code_name(decoder.error().code) << ": " << decoder.error().message;
  return frame;
}

// ---------------------------------------------------------------------------
// Protocol round trips.

TEST(NetProtocol, RequestRoundTripPreservesEveryField) {
  WireRequest original = make_wire_request(4, 42);
  original.priority = 2;
  original.solve_method = 1;
  original.strategy = 1;
  original.auto_mask_invalid = true;
  original.deadline_ms = 1500;
  original.form_workers = 3;
  original.form_chunk = 5;
  original.max_iterations = 9;
  original.anomaly_threshold = 0.25;
  original.mask.assign(original.z.size(), 1);
  original.mask[3] = 0;

  const Frame frame = decode_one(encode_request(original));
  ASSERT_EQ(frame.type, FrameType::kRequest);
  ASSERT_TRUE(frame.request.has_value());
  const WireRequest& decoded = *frame.request;

  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.priority, original.priority);
  EXPECT_EQ(decoded.solve_method, original.solve_method);
  EXPECT_EQ(decoded.strategy, original.strategy);
  EXPECT_EQ(decoded.auto_mask_invalid, original.auto_mask_invalid);
  EXPECT_EQ(decoded.deadline_ms, original.deadline_ms);
  EXPECT_EQ(decoded.form_workers, original.form_workers);
  EXPECT_EQ(decoded.form_chunk, original.form_chunk);
  EXPECT_EQ(decoded.max_iterations, original.max_iterations);
  EXPECT_EQ(decoded.rows, original.rows);
  EXPECT_EQ(decoded.cols, original.cols);
  ASSERT_TRUE(decoded.anomaly_threshold.has_value());
  EXPECT_EQ(*decoded.anomaly_threshold, 0.25);
  // Bit-identical payload transport, not approximate.
  ASSERT_EQ(decoded.z.size(), original.z.size());
  EXPECT_EQ(std::memcmp(decoded.z.data(), original.z.data(),
                        original.z.size() * sizeof(Real)), 0);
  EXPECT_EQ(std::memcmp(decoded.u.data(), original.u.data(),
                        original.u.size() * sizeof(Real)), 0);
  EXPECT_EQ(decoded.mask, original.mask);
}

TEST(NetProtocol, ResponseRoundTripPreservesFieldAndTimings) {
  WireResponse original;
  original.request_id = 7;
  original.status_code = serve::status_wire_code(serve::RequestStatus::kOk);
  original.converged = true;
  original.attempts = 2;
  original.iterations = 17;
  original.anomalies = 1;
  original.rows = 3;
  original.cols = 3;
  original.final_misfit = 1e-9;
  original.queue_seconds = 0.5;
  original.form_seconds = 0.25;
  original.solve_seconds = 0.125;
  original.reconstruct_seconds = 0.0625;
  original.message = "ok";
  original.field = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0};

  const Frame frame = decode_one(encode_response(original));
  ASSERT_EQ(frame.type, FrameType::kResponse);
  ASSERT_TRUE(frame.response.has_value());
  const WireResponse& decoded = *frame.response;

  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(decoded.status(), serve::RequestStatus::kOk);
  EXPECT_TRUE(decoded.converged);
  EXPECT_EQ(decoded.attempts, 2);
  EXPECT_EQ(decoded.iterations, 17u);
  EXPECT_EQ(decoded.anomalies, 1u);
  EXPECT_EQ(decoded.final_misfit, 1e-9);
  EXPECT_EQ(decoded.queue_seconds, 0.5);
  EXPECT_EQ(decoded.message, "ok");
  ASSERT_TRUE(decoded.has_field());
  EXPECT_EQ(decoded.field, original.field);
  const circuit::ResistanceGrid grid = decoded.recovered_grid();
  EXPECT_EQ(grid.rows(), 3);
  EXPECT_EQ(grid.at(1, 1), 5.0);
}

TEST(NetProtocol, ErrorRoundTrip) {
  WireError original;
  original.request_id = 99;
  original.code = ProtoCode::kBodyShapeMismatch;
  original.message = "body disagrees with its shape header";

  const Frame frame = decode_one(encode_error(original));
  ASSERT_EQ(frame.type, FrameType::kError);
  ASSERT_TRUE(frame.error.has_value());
  EXPECT_EQ(frame.error->request_id, 99u);
  EXPECT_EQ(frame.error->code, ProtoCode::kBodyShapeMismatch);
  EXPECT_EQ(frame.error->message, original.message);
}

TEST(NetProtocol, ByteAtATimeFeedStillDecodes) {
  // A frame torn across arbitrarily small reads must reassemble exactly.
  const std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 11));
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore)
        << "frame complete after " << (i + 1) << " of " << bytes.size() << " bytes";
  }
  decoder.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.request->request_id, 11u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetProtocol, BackToBackFramesDecodeInOrder) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 1));
  const std::vector<std::uint8_t> second = encode_request(make_wire_request(4, 2));
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.request->request_id, 1u);
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.request->request_id, 2u);
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore);
}

// ---------------------------------------------------------------------------
// Malformed frames.

TEST(NetProtocol, TruncatedHeaderIsNeedMoreNotError) {
  const std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), kHeaderBytes - 1);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore);
}

TEST(NetProtocol, GarbageMagicPoisonsTheDecoder) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  bytes[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadMagic);
  EXPECT_EQ(decoder.error_request_id(), 0u);  // header unreadable: no id
  // Poisoned: the stream has lost sync, further feeds change nothing.
  decoder.feed(encode_request(make_wire_request(3, 6)));
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
}

TEST(NetProtocol, VersionMismatchIsTyped) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  bytes[4] = 0x7F;  // version low byte
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadVersion);
}

TEST(NetProtocol, UnknownFrameTypeIsTyped) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  bytes[6] = 0x77;  // type low byte
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadFrameType);
}

TEST(NetProtocol, OversizedBodyRejectedFromHeaderAloneWithoutBuffering) {
  // A hostile length prefix: header declares far more than the cap. The
  // decoder must reject it the moment the header is readable -- from 20
  // bytes, before any buffer grows toward the declared 512 MiB.
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  const std::uint32_t huge = 512u << 20;
  std::memcpy(&bytes[16], &huge, sizeof huge);

  FrameDecoder decoder(kDefaultMaxBodyBytes);
  decoder.feed(bytes.data(), kHeaderBytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBodyTooLarge);
  EXPECT_EQ(decoder.error_request_id(), 5u);  // header was readable: id known
  EXPECT_LE(decoder.buffered_bytes(), kHeaderBytes);
}

TEST(NetProtocol, MidPayloadTruncationSurfacesWhenBodyArrivesShort) {
  // The declared length is honest but the body lies about its own shape:
  // rows*cols says more samples than the body holds.
  WireRequest request = make_wire_request(3, 5);
  std::vector<std::uint8_t> bytes = encode_request(request);
  const std::uint32_t rows = 64;  // body still carries 3x3 worth of samples
  std::memcpy(&bytes[kHeaderBytes + 16], &rows, sizeof rows);
  patch_body_checksum(bytes);  // keep integrity valid: the SHAPE is the lie

  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBodyShapeMismatch);
}

TEST(NetProtocol, OutOfRangeEnumIsTyped) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  bytes[kHeaderBytes + 0] = 9;  // priority: valid values are 0/1/2
  patch_body_checksum(bytes);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadEnum);
}

TEST(NetProtocol, DegenerateShapeIsTyped) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  const std::uint32_t rows = 1;  // below the 2x2 minimum
  std::memcpy(&bytes[kHeaderBytes + 16], &rows, sizeof rows);
  patch_body_checksum(bytes);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadShape);
}

TEST(NetProtocol, FuzzedFramesNeverCrashTheDecoder) {
  // Deterministic-seed fuzz: random single/multi-byte corruptions of a valid
  // frame, plus pure-garbage streams, fed in random-sized slices. The
  // decoder must always land in kFrame/kNeedMore/kError -- never crash,
  // never allocate toward a hostile length, never loop forever.
  const std::vector<std::uint8_t> valid = encode_request(make_wire_request(4, 77));
  Rng rng(20260809);

  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes = valid;
    const int flips = 1 + static_cast<int>(rng.uniform_index(8));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.uniform_index(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    }

    FrameDecoder decoder;
    std::size_t fed = 0;
    Frame frame;
    bool dead = false;
    while (fed < bytes.size() && !dead) {
      const std::size_t step =
          1 + static_cast<std::size_t>(rng.uniform_index(bytes.size() - fed));
      decoder.feed(&bytes[fed], step);
      fed += step;
      for (;;) {
        const FrameDecoder::Result r = decoder.next(frame);
        if (r == FrameDecoder::Result::kFrame) continue;
        if (r == FrameDecoder::Result::kError) dead = true;
        break;
      }
    }
    // Whatever happened, the decoder still answers (poisoned or hungry).
    (void)decoder.next(frame);
  }

  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder;
    std::vector<std::uint8_t> garbage(64 + rng.uniform_index(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    decoder.feed(garbage);
    Frame frame;
    for (int drain = 0; drain < 64; ++drain) {
      if (decoder.next(frame) != FrameDecoder::Result::kFrame) break;
    }
  }
}

// ---------------------------------------------------------------------------
// End to end over loopback TCP.

serve::ServerOptions small_server() {
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  options.max_batch = 4;
  return options;
}

TEST(NetEndToEnd, LoopbackRequestMatchesInProcessBitForBit) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();
  ASSERT_GT(listener.port(), 0);

  // The same request through both fronts: the wire adds transport, not
  // arithmetic, so the recovered fields must agree bit for bit.
  serve::Ticket local = server.submit(make_request(4, 3), 1000ms);
  ASSERT_TRUE(local.accepted());
  const serve::ParametrizeResult local_result = local.future().get();
  ASSERT_EQ(local_result.status, serve::RequestStatus::kOk);

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);
  const auto reply = client.request(WireRequest::from_request(make_request(4, 3), 0), 10000ms);
  ASSERT_TRUE(reply.has_value()) << "timed out waiting for the response";
  ASSERT_FALSE(reply->is_error) << reply->error.message;
  ASSERT_EQ(reply->response.status(), serve::RequestStatus::kOk);
  ASSERT_TRUE(reply->response.has_field());
  EXPECT_EQ(reply->response.converged, local_result.inverse.converged);

  const std::vector<Real>& remote = reply->response.field;
  const std::vector<Real>& in_process = local_result.inverse.recovered.flat();
  ASSERT_EQ(remote.size(), in_process.size());
  EXPECT_EQ(std::memcmp(remote.data(), in_process.data(),
                        remote.size() * sizeof(Real)), 0);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, PipelinedRequestsCompleteOutOfSubmissionOrder) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);

  // Several requests in flight on one connection; collect by id afterwards.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(client.send(make_request(3 + (i % 2), 2)));
  }
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {  // reversed on purpose
    const auto reply = client.wait(*it, 10000ms);
    ASSERT_TRUE(reply.has_value()) << "request " << *it << " timed out";
    ASSERT_FALSE(reply->is_error);
    EXPECT_EQ(reply->response.request_id, *it);
    EXPECT_EQ(reply->response.status(), serve::RequestStatus::kOk);
  }

  const ListenerCounters counters = listener.counters();
  EXPECT_EQ(counters.requests_admitted, 6u);
  EXPECT_EQ(counters.responses_enqueued, 6u);
  EXPECT_EQ(counters.protocol_errors, 0u);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, InvalidPayloadComesBackAsTypedRejection) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);

  // Structurally valid on the wire, semantically invalid for admission: the
  // transport carries it, the server's validation rejects it, and the
  // rejection crosses back as a typed wire status.
  WireRequest bad = make_wire_request(4, 0);
  for (auto& z : bad.z) z = -z;  // negative impedance magnitudes
  const auto reply = client.request(std::move(bad), 10000ms);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->is_error);
  const auto status = reply->response.status();
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(*status == serve::RequestStatus::kRejected ||
              *status == serve::RequestStatus::kInvalidInput)
      << "unexpected status code " << reply->response.status_code;
  EXPECT_FALSE(reply->response.has_field());

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, MalformedFrameGetsTypedErrorThenClose) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);

  // A healthy request first proves the connection works...
  const auto ok = client.request(make_wire_request(3, 0), 10000ms);
  ASSERT_TRUE(ok.has_value());
  ASSERT_FALSE(ok->is_error);

  // ...then a corrupted frame on a second, raw connection: the server must
  // answer with the typed diagnostic and close, never crash or hang. A
  // request is left in flight on the healthy client to prove the poisoned
  // connection's demise stays scoped to itself.
  std::vector<std::uint8_t> corrupt = encode_request(make_wire_request(3, 123));
  corrupt[0] ^= 0xFF;  // garbage magic
  (void)client.send(make_wire_request(3, 0));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::send(fd, corrupt.data(), corrupt.size(), 0),
            static_cast<ssize_t>(corrupt.size()));

  // The server's reply on that socket must be a kError frame, then EOF.
  FrameDecoder decoder;
  Frame frame;
  std::uint8_t chunk[4096];
  bool got_error = false;
  bool got_eof = false;
  for (int i = 0; i < 200 && !got_eof; ++i) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) {
      got_eof = true;
      break;
    }
    ASSERT_GT(n, 0) << "recv failed: " << std::strerror(errno);
    decoder.feed(chunk, static_cast<std::size_t>(n));
    if (decoder.next(frame) == FrameDecoder::Result::kFrame) {
      ASSERT_EQ(frame.type, FrameType::kError);
      EXPECT_EQ(frame.error->code, ProtoCode::kBadMagic);
      got_error = true;
    }
  }
  EXPECT_TRUE(got_error) << "server never sent the typed diagnostic";
  EXPECT_TRUE(got_eof) << "server never closed the poisoned connection";
  ::close(fd);

  // The original client's in-flight request is unaffected by the other
  // connection's demise.
  const auto probe = client.poll(10000ms);
  ASSERT_TRUE(probe.has_value());
  EXPECT_FALSE(probe->is_error);

  EXPECT_GE(listener.counters().protocol_errors, 1u);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, DisconnectingClientNeverBlocksTheDispatcher) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  // Fire requests and vanish without reading a single reply.
  {
    Client rude;
    ClientOptions copts;
    copts.port = listener.port();
    rude.connect(copts);
    for (int i = 0; i < 4; ++i) (void)rude.send(make_request(4, 3));
    rude.disconnect();
  }

  // The dispatcher must keep serving in-process traffic promptly.
  serve::Ticket ticket = server.submit(make_request(4, 2), 1000ms);
  ASSERT_TRUE(ticket.accepted());
  ASSERT_EQ(ticket.future().wait_for(10s), std::future_status::ready);
  EXPECT_EQ(ticket.future().get().status, serve::RequestStatus::kOk);

  // And the teardown path (drain + scope join) must not wedge either.
  listener.stop();
  EXPECT_GE(listener.counters().disconnects, 1u);
  server.shutdown();
}

TEST(NetEndToEnd, ListenerStopWhileRequestsInFlightJoinsCleanly) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);
  for (int i = 0; i < 3; ++i) (void)client.send(make_request(4, 3));

  // Stop with work still in the pipeline: in-flight requests are cancelled,
  // completions drain through the scope join, nothing leaks or races (the
  // tsan label runs this under -DPARMA_SANITIZE=thread).
  listener.stop();
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Raw-socket helpers for the hygiene and failure-mode tests.

/// Blocking IPv4 loopback connect; fails the test on any syscall error.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

void send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

void send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  send_all(fd, bytes.data(), bytes.size());
}

bool wait_until(const std::function<bool()>& pred, std::chrono::milliseconds limit) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

/// The SIGPIPE witness for the socket-shim regression tests. sig_atomic_t
/// because the handler must stay async-signal-safe.
volatile std::sig_atomic_t g_sigpipe_seen = 0;

// ---------------------------------------------------------------------------
// Socket-shim hygiene: EPIPE stays a typed error, never a signal.

TEST(NetSocketOps, WriteToClosedPeerIsTypedEpipeNotSigpipe) {
  g_sigpipe_seen = 0;
  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = [](int) { g_sigpipe_seen = 1; };
  ASSERT_EQ(::sigaction(SIGPIPE, &sa, &old), 0);

  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  ::close(pair[1]);  // the peer is gone before we write

  // Without MSG_NOSIGNAL in the shim this write raises SIGPIPE (default
  // disposition: process death). The contract is a typed IoCount instead.
  std::uint8_t byte = 0x5a;
  sock::IoCount io = sock::send_some(pair[0], &byte, 1);
  if (!io.failed()) io = sock::send_some(pair[0], &byte, 1);
  EXPECT_TRUE(io.failed());
  EXPECT_EQ(io.err, EPIPE) << std::strerror(io.err);

  // The gathered-write path must carry the same flag.
  iovec iov{&byte, 1};
  const sock::IoCount iov_io = sock::sendv_some(pair[0], &iov, 1);
  EXPECT_TRUE(iov_io.failed());
  EXPECT_EQ(iov_io.err, EPIPE) << std::strerror(iov_io.err);

  EXPECT_EQ(g_sigpipe_seen, 0) << "a socket write raised SIGPIPE";
  ::close(pair[0]);
  ::sigaction(SIGPIPE, &old, nullptr);
}

TEST(NetEndToEnd, PeerVanishingMidPipelineRaisesNoSignalAndServiceContinues) {
  g_sigpipe_seen = 0;
  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = [](int) { g_sigpipe_seen = 1; };
  ASSERT_EQ(::sigaction(SIGPIPE, &sa, &old), 0);

  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  // Pipeline two requests and vanish without reading a byte: whichever
  // response writes race the teardown must surface as typed close paths on
  // the I/O thread, never as a process-killing SIGPIPE.
  int fd = raw_connect(listener.port());
  send_all(fd, encode_request(make_wire_request(5, 1)));
  send_all(fd, encode_request(make_wire_request(5, 2)));
  ::close(fd);

  ASSERT_TRUE(wait_until([&] { return listener.counters().disconnects >= 1; }, 10000ms));

  // Service is unimpaired afterwards.
  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);
  const auto reply = client.request(make_wire_request(4, 0), 10000ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok()) << client_error_name(reply->transport);

  EXPECT_EQ(g_sigpipe_seen, 0) << "a socket write raised SIGPIPE";
  client.disconnect();
  listener.stop();
  server.shutdown();
  ::sigaction(SIGPIPE, &old, nullptr);
}

// ---------------------------------------------------------------------------
// Typed client failure modes.

TEST(NetClient, ServerCloseBetweenSendAndWaitIsTypedConnectionLost) {
  // Regression: an acceptor that takes the request bytes and slams the
  // connection shut used to leave wait() spinning to its timeout with the
  // request parked forever. The outcome must be a typed kConnectionLost
  // reply -- promptly, not after the timeout.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  Client client;
  ClientOptions copts;
  copts.port = ntohs(addr.sin_port);
  client.connect(copts);
  const std::uint64_t id = client.send(make_wire_request(3, 0));

  const int peer = ::accept(lfd, nullptr, nullptr);
  ASSERT_GE(peer, 0);
  std::uint8_t sink[1024];
  (void)::recv(peer, sink, sizeof sink, 0);  // the request starts arriving...
  ::close(peer);                             // ...and the server vanishes
  ::close(lfd);

  const auto reply = client.wait(id, 5000ms);
  ASSERT_TRUE(reply.has_value()) << "wait() ran to its timeout instead of failing";
  EXPECT_EQ(reply->transport, ClientError::kConnectionLost);
  EXPECT_EQ(client.last_error(), ClientError::kConnectionLost);
  EXPECT_EQ(client.pending(), 0u);
}

TEST(NetClient, ConnectToDeadPortThrowsIoError) {
  // Find a port that is free right now by binding and releasing it.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(probe);

  Client client;
  ClientOptions copts;
  copts.port = ntohs(addr.sin_port);
  copts.connect_timeout = 2000ms;
  EXPECT_THROW(client.connect(copts), IoError);
  EXPECT_EQ(client.last_error(), ClientError::kConnectFailed);
}

TEST(NetClient, ReconnectReplaysAndRecoversAfterInjectedReset) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  std::vector<ConnState> states;
  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  copts.reconnect = true;
  copts.reconnect_backoff = 2ms;
  copts.reconnect_backoff_cap = 20ms;
  copts.on_state = [&](ConnState s) { states.push_back(s); };
  client.connect(copts);

  // A clean round trip first (no injector active).
  const auto baseline = client.request(make_wire_request(4, 0), 20000ms);
  ASSERT_TRUE(baseline.has_value());
  ASSERT_TRUE(baseline->ok()) << client_error_name(baseline->transport);

  {
    // Exactly one reset, wherever the schedule lands it (client write,
    // client read, or the server side of the same connection): every path
    // must converge on reconnect + replay + a completed response.
    fault::ScopedInjector chaos(33);
    chaos->arm(fault::Point::kSockReset, {1.0, 1});
    const std::uint64_t id = client.send(make_wire_request(4, 0));
    const auto reply = client.wait(id, 20000ms);
    ASSERT_TRUE(reply.has_value()) << "request never terminated across the reset";
    EXPECT_TRUE(reply->ok()) << client_error_name(reply->transport);
  }

  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_NE(std::find(states.begin(), states.end(), ConnState::kReconnecting),
            states.end());
  EXPECT_EQ(states.back(), ConnState::kConnected);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetClient, DeadlineLapsesAcrossOutageAsTypedDeadlineExceeded) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  copts.reconnect = true;
  copts.max_reconnect_attempts = 2;
  copts.reconnect_backoff = 20ms;
  copts.reconnect_backoff_cap = 40ms;
  client.connect(copts);

  listener.stop();  // the outage -- nothing is listening any more

  WireRequest req = make_wire_request(3, 0);
  req.deadline_ms = 30;  // the clock starts at send() and spans the outage
  const std::uint64_t id = client.send(std::move(req));
  std::this_thread::sleep_for(50ms);

  const auto reply = client.wait(id, 10000ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->transport, ClientError::kDeadlineExceeded)
      << client_error_name(reply->transport);
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Keepalive, dual stack, capacity, drain.

TEST(NetEndToEnd, KeepalivePingRoundTrips) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);
  EXPECT_TRUE(client.ping(5000ms));
  EXPECT_TRUE(client.ping(5000ms));
  EXPECT_EQ(listener.counters().pings, 2u);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, Ipv6LoopbackRoundTripWithBracketedHost) {
  const int probe = ::socket(AF_INET6, SOCK_STREAM, 0);
  if (probe < 0) GTEST_SKIP() << "IPv6 unsupported on this host";
  ::close(probe);

  serve::Server server(small_server());
  ListenerOptions lopts;
  lopts.host = "::1";
  Listener listener(server, lopts);
  try {
    listener.start();
  } catch (const std::exception& e) {
    GTEST_SKIP() << "IPv6 loopback unavailable: " << e.what();
  }

  Client client;
  ClientOptions copts;
  copts.host = "[::1]";  // the bracketed endpoint form parma_cli accepts
  copts.port = listener.port();
  client.connect(copts);
  const auto reply = client.request(make_wire_request(4, 0), 10000ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok()) << client_error_name(reply->transport);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, OverCapConnectionIsRejectedWithTypedBusyFrame) {
  serve::Server server(small_server());
  ListenerOptions lopts;
  lopts.max_connections = 1;
  Listener listener(server, lopts);
  listener.start();

  Client keeper;
  ClientOptions copts;
  copts.port = listener.port();
  keeper.connect(copts);
  const auto ok = keeper.request(make_wire_request(3, 0), 10000ms);
  ASSERT_TRUE(ok.has_value());  // the keeper owns the one slot

  // The over-cap dialer gets a typed kServerBusy diagnostic, then EOF -- not
  // a silent close it cannot distinguish from a crash.
  const int fd = raw_connect(listener.port());
  FrameDecoder decoder;
  Frame frame;
  std::uint8_t chunk[4096];
  bool got_busy = false;
  bool got_eof = false;
  for (int i = 0; i < 200 && !got_eof; ++i) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      got_eof = true;
      break;
    }
    decoder.feed(chunk, static_cast<std::size_t>(n));
    if (decoder.next(frame) == FrameDecoder::Result::kFrame) {
      ASSERT_EQ(frame.type, FrameType::kError);
      EXPECT_EQ(frame.error->code, ProtoCode::kServerBusy);
      got_busy = true;
    }
  }
  EXPECT_TRUE(got_busy) << "no kServerBusy frame before the close";
  EXPECT_TRUE(got_eof);
  ::close(fd);
  EXPECT_EQ(listener.counters().connections_rejected, 1u);

  keeper.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, DrainFlushesInFlightResponsesAndReportsTrue) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(client.send(make_request(4, 2)));

  // Drain only after the server has admitted all three -- drain stops
  // reading, so requests still in the socket would be orphaned by design.
  ASSERT_TRUE(wait_until(
      [&] { return listener.counters().requests_admitted == 3; }, 10000ms));
  EXPECT_TRUE(listener.drain(30000ms)) << "drain timed out with peers attached";
  EXPECT_EQ(listener.connection_count(), 0u);

  // Every response was flushed before the server closed the connection.
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, 5000ms);
    ASSERT_TRUE(reply.has_value()) << "request " << id << " lost in the drain";
    EXPECT_TRUE(reply->ok()) << client_error_name(reply->transport);
  }

  listener.stop();
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Connection hygiene: idle, slowloris, write-stall, backpressure re-arm.

TEST(NetEndToEnd, IdleConnectionIsReaped) {
  serve::Server server(small_server());
  ListenerOptions lopts;
  lopts.idle_timeout = 50ms;
  lopts.read_deadline = 0ms;
  lopts.write_stall_timeout = 0ms;
  lopts.hygiene_tick = 10ms;
  Listener listener(server, lopts);
  listener.start();

  const int fd = raw_connect(listener.port());
  EXPECT_TRUE(wait_until(
      [&] { return listener.counters().reaped_idle >= 1; }, 10000ms));
  // The reap is visible peer-side as a clean EOF.
  std::uint8_t byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, HalfFrameHeldOpenIsReapedAsSlowloris) {
  serve::Server server(small_server());
  ListenerOptions lopts;
  lopts.read_deadline = 50ms;
  lopts.idle_timeout = 0ms;
  lopts.write_stall_timeout = 0ms;
  lopts.hygiene_tick = 10ms;
  Listener listener(server, lopts);
  listener.start();

  // Ten bytes of a valid frame, then silence: a classic slowloris hold. The
  // idle check alone would never fire (it is disabled here); the open frame
  // must carry its own deadline.
  const int fd = raw_connect(listener.port());
  const std::vector<std::uint8_t> frame = encode_request(make_wire_request(3, 9));
  send_all(fd, frame.data(), 10);
  EXPECT_TRUE(wait_until(
      [&] { return listener.counters().reaped_slowloris >= 1; }, 10000ms));
  ::close(fd);

  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, PeerThatStopsReadingIsReapedAsWriteStall) {
  serve::Server server(small_server());
  ListenerOptions lopts;
  lopts.write_stall_timeout = 100ms;
  lopts.read_deadline = 0ms;
  lopts.idle_timeout = 0ms;
  lopts.hygiene_tick = 20ms;
  lopts.sndbuf_bytes = 4096;  // make the stall reachable with one response
  Listener listener(server, lopts);
  listener.start();

  // A peer with a tiny receive window pipelines a dozen requests whose
  // responses (16x16 fields, ~2 KiB each) together overrun both shrunken
  // socket buffers, then never reads a byte of them.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 2048;  // before connect, so the advertised window shrinks
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  for (std::uint64_t id = 1; id <= 12; ++id) {
    send_all(fd, encode_request(make_wire_request(16, id)));
  }

  EXPECT_TRUE(wait_until(
      [&] { return listener.counters().reaped_write_stall >= 1; }, 30000ms));
  ::close(fd);

  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, ReadBackpressureRearmsWhenInFlightSettles) {
  serve::ServerOptions sopts = small_server();
  sopts.deferred_start = true;  // park the pipeline: nothing settles yet
  sopts.queue_capacity = 8;
  serve::Server server(sopts);
  ListenerOptions lopts;
  lopts.max_inflight_per_connection = 2;
  Listener listener(server, lopts);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);
  // Two sends first, and wait for their admission: a single burst could land
  // in one read pass, which decodes every buffered frame regardless of cap.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 2; ++i) ids.push_back(client.send(make_request(4, 1)));
  ASSERT_TRUE(wait_until(
      [&] { return listener.counters().requests_admitted == 2; }, 10000ms));

  // The connection is now at its in-flight cap and the pipeline is parked,
  // so nothing settles: two more requests must sit unread in the socket --
  // POLLIN has been withdrawn.
  for (int i = 0; i < 2; ++i) ids.push_back(client.send(make_request(4, 1)));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(listener.counters().requests_admitted, 2u);

  // Releasing the pipeline settles the first two; the settle must re-arm
  // POLLIN so the remaining two are read and served. The regression mode is
  // a connection that stays deaf after hitting its cap.
  server.start();
  for (const std::uint64_t id : ids) {
    const auto reply = client.wait(id, 30000ms);
    ASSERT_TRUE(reply.has_value()) << "request " << id << " starved at the cap";
    EXPECT_TRUE(reply->ok()) << client_error_name(reply->transport);
  }
  EXPECT_EQ(listener.counters().requests_admitted, 4u);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

}  // namespace
}  // namespace parma::net

// Tests for src/net: the socket transport tier in front of serve::Server.
//
// Three layers of coverage: (1) the wire protocol -- encode/decode round
// trips, torn and malformed frames (truncated header, oversized declared
// payload rejected before any allocation, garbage magic, foreign version,
// mid-payload truncation), and a deterministic-seed fuzz loop that must
// never crash the decoder; (2) the readiness-event bridge end to end over
// loopback TCP -- a request served through the socket recovers the same
// field bit-for-bit as one submitted in process; (3) failure modes -- a
// malformed frame answered with a typed kError reply and a clean close, and
// a client that disconnects mid-flight never wedging the dispatcher.
// Carries the `tsan` ctest label; run under -DPARMA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "net/client.hpp"
#include "net/listener.hpp"
#include "net/protocol.hpp"
#include "serve/server.hpp"

namespace parma::net {
namespace {

using namespace std::chrono_literals;

mea::Measurement make_measurement(Index n, std::uint64_t seed = 7) {
  Rng rng(seed + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  return mea::measure_exact(spec, truth);
}

serve::ParametrizeRequest make_request(Index n, Index iterations = 1) {
  serve::ParametrizeRequest request;
  request.measurement = make_measurement(n);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 2;
  request.options.keep_system = false;
  request.inverse.max_iterations = iterations;
  return request;
}

WireRequest make_wire_request(Index n, std::uint64_t id) {
  return WireRequest::from_request(make_request(n), id);
}

/// Decodes exactly one frame out of `bytes` or fails the test.
Frame decode_one(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame)
      << proto_code_name(decoder.error().code) << ": " << decoder.error().message;
  return frame;
}

// ---------------------------------------------------------------------------
// Protocol round trips.

TEST(NetProtocol, RequestRoundTripPreservesEveryField) {
  WireRequest original = make_wire_request(4, 42);
  original.priority = 2;
  original.solve_method = 1;
  original.strategy = 1;
  original.auto_mask_invalid = true;
  original.deadline_ms = 1500;
  original.form_workers = 3;
  original.form_chunk = 5;
  original.max_iterations = 9;
  original.anomaly_threshold = 0.25;
  original.mask.assign(original.z.size(), 1);
  original.mask[3] = 0;

  const Frame frame = decode_one(encode_request(original));
  ASSERT_EQ(frame.type, FrameType::kRequest);
  ASSERT_TRUE(frame.request.has_value());
  const WireRequest& decoded = *frame.request;

  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.priority, original.priority);
  EXPECT_EQ(decoded.solve_method, original.solve_method);
  EXPECT_EQ(decoded.strategy, original.strategy);
  EXPECT_EQ(decoded.auto_mask_invalid, original.auto_mask_invalid);
  EXPECT_EQ(decoded.deadline_ms, original.deadline_ms);
  EXPECT_EQ(decoded.form_workers, original.form_workers);
  EXPECT_EQ(decoded.form_chunk, original.form_chunk);
  EXPECT_EQ(decoded.max_iterations, original.max_iterations);
  EXPECT_EQ(decoded.rows, original.rows);
  EXPECT_EQ(decoded.cols, original.cols);
  ASSERT_TRUE(decoded.anomaly_threshold.has_value());
  EXPECT_EQ(*decoded.anomaly_threshold, 0.25);
  // Bit-identical payload transport, not approximate.
  ASSERT_EQ(decoded.z.size(), original.z.size());
  EXPECT_EQ(std::memcmp(decoded.z.data(), original.z.data(),
                        original.z.size() * sizeof(Real)), 0);
  EXPECT_EQ(std::memcmp(decoded.u.data(), original.u.data(),
                        original.u.size() * sizeof(Real)), 0);
  EXPECT_EQ(decoded.mask, original.mask);
}

TEST(NetProtocol, ResponseRoundTripPreservesFieldAndTimings) {
  WireResponse original;
  original.request_id = 7;
  original.status_code = serve::status_wire_code(serve::RequestStatus::kOk);
  original.converged = true;
  original.attempts = 2;
  original.iterations = 17;
  original.anomalies = 1;
  original.rows = 3;
  original.cols = 3;
  original.final_misfit = 1e-9;
  original.queue_seconds = 0.5;
  original.form_seconds = 0.25;
  original.solve_seconds = 0.125;
  original.reconstruct_seconds = 0.0625;
  original.message = "ok";
  original.field = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0};

  const Frame frame = decode_one(encode_response(original));
  ASSERT_EQ(frame.type, FrameType::kResponse);
  ASSERT_TRUE(frame.response.has_value());
  const WireResponse& decoded = *frame.response;

  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(decoded.status(), serve::RequestStatus::kOk);
  EXPECT_TRUE(decoded.converged);
  EXPECT_EQ(decoded.attempts, 2);
  EXPECT_EQ(decoded.iterations, 17u);
  EXPECT_EQ(decoded.anomalies, 1u);
  EXPECT_EQ(decoded.final_misfit, 1e-9);
  EXPECT_EQ(decoded.queue_seconds, 0.5);
  EXPECT_EQ(decoded.message, "ok");
  ASSERT_TRUE(decoded.has_field());
  EXPECT_EQ(decoded.field, original.field);
  const circuit::ResistanceGrid grid = decoded.recovered_grid();
  EXPECT_EQ(grid.rows(), 3);
  EXPECT_EQ(grid.at(1, 1), 5.0);
}

TEST(NetProtocol, ErrorRoundTrip) {
  WireError original;
  original.request_id = 99;
  original.code = ProtoCode::kBodyShapeMismatch;
  original.message = "body disagrees with its shape header";

  const Frame frame = decode_one(encode_error(original));
  ASSERT_EQ(frame.type, FrameType::kError);
  ASSERT_TRUE(frame.error.has_value());
  EXPECT_EQ(frame.error->request_id, 99u);
  EXPECT_EQ(frame.error->code, ProtoCode::kBodyShapeMismatch);
  EXPECT_EQ(frame.error->message, original.message);
}

TEST(NetProtocol, ByteAtATimeFeedStillDecodes) {
  // A frame torn across arbitrarily small reads must reassemble exactly.
  const std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 11));
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore)
        << "frame complete after " << (i + 1) << " of " << bytes.size() << " bytes";
  }
  decoder.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.request->request_id, 11u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetProtocol, BackToBackFramesDecodeInOrder) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 1));
  const std::vector<std::uint8_t> second = encode_request(make_wire_request(4, 2));
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.request->request_id, 1u);
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.request->request_id, 2u);
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore);
}

// ---------------------------------------------------------------------------
// Malformed frames.

TEST(NetProtocol, TruncatedHeaderIsNeedMoreNotError) {
  const std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), kHeaderBytes - 1);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore);
}

TEST(NetProtocol, GarbageMagicPoisonsTheDecoder) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  bytes[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadMagic);
  EXPECT_EQ(decoder.error_request_id(), 0u);  // header unreadable: no id
  // Poisoned: the stream has lost sync, further feeds change nothing.
  decoder.feed(encode_request(make_wire_request(3, 6)));
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
}

TEST(NetProtocol, VersionMismatchIsTyped) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  bytes[4] = 0x7F;  // version low byte
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadVersion);
}

TEST(NetProtocol, UnknownFrameTypeIsTyped) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  bytes[6] = 0x77;  // type low byte
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadFrameType);
}

TEST(NetProtocol, OversizedBodyRejectedFromHeaderAloneWithoutBuffering) {
  // A hostile length prefix: header declares far more than the cap. The
  // decoder must reject it the moment the header is readable -- from 20
  // bytes, before any buffer grows toward the declared 512 MiB.
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  const std::uint32_t huge = 512u << 20;
  std::memcpy(&bytes[16], &huge, sizeof huge);

  FrameDecoder decoder(kDefaultMaxBodyBytes);
  decoder.feed(bytes.data(), kHeaderBytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBodyTooLarge);
  EXPECT_EQ(decoder.error_request_id(), 5u);  // header was readable: id known
  EXPECT_LE(decoder.buffered_bytes(), kHeaderBytes);
}

TEST(NetProtocol, MidPayloadTruncationSurfacesWhenBodyArrivesShort) {
  // The declared length is honest but the body lies about its own shape:
  // rows*cols says more samples than the body holds.
  WireRequest request = make_wire_request(3, 5);
  std::vector<std::uint8_t> bytes = encode_request(request);
  const std::uint32_t rows = 64;  // body still carries 3x3 worth of samples
  std::memcpy(&bytes[kHeaderBytes + 16], &rows, sizeof rows);

  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBodyShapeMismatch);
}

TEST(NetProtocol, OutOfRangeEnumIsTyped) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  bytes[kHeaderBytes + 0] = 9;  // priority: valid values are 0/1/2
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadEnum);
}

TEST(NetProtocol, DegenerateShapeIsTyped) {
  std::vector<std::uint8_t> bytes = encode_request(make_wire_request(3, 5));
  const std::uint32_t rows = 1;  // below the 2x2 minimum
  std::memcpy(&bytes[kHeaderBytes + 16], &rows, sizeof rows);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code, ProtoCode::kBadShape);
}

TEST(NetProtocol, FuzzedFramesNeverCrashTheDecoder) {
  // Deterministic-seed fuzz: random single/multi-byte corruptions of a valid
  // frame, plus pure-garbage streams, fed in random-sized slices. The
  // decoder must always land in kFrame/kNeedMore/kError -- never crash,
  // never allocate toward a hostile length, never loop forever.
  const std::vector<std::uint8_t> valid = encode_request(make_wire_request(4, 77));
  Rng rng(20260809);

  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes = valid;
    const int flips = 1 + static_cast<int>(rng.uniform_index(8));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.uniform_index(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    }

    FrameDecoder decoder;
    std::size_t fed = 0;
    Frame frame;
    bool dead = false;
    while (fed < bytes.size() && !dead) {
      const std::size_t step =
          1 + static_cast<std::size_t>(rng.uniform_index(bytes.size() - fed));
      decoder.feed(&bytes[fed], step);
      fed += step;
      for (;;) {
        const FrameDecoder::Result r = decoder.next(frame);
        if (r == FrameDecoder::Result::kFrame) continue;
        if (r == FrameDecoder::Result::kError) dead = true;
        break;
      }
    }
    // Whatever happened, the decoder still answers (poisoned or hungry).
    (void)decoder.next(frame);
  }

  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder;
    std::vector<std::uint8_t> garbage(64 + rng.uniform_index(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    decoder.feed(garbage);
    Frame frame;
    for (int drain = 0; drain < 64; ++drain) {
      if (decoder.next(frame) != FrameDecoder::Result::kFrame) break;
    }
  }
}

// ---------------------------------------------------------------------------
// End to end over loopback TCP.

serve::ServerOptions small_server() {
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  options.max_batch = 4;
  return options;
}

TEST(NetEndToEnd, LoopbackRequestMatchesInProcessBitForBit) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();
  ASSERT_GT(listener.port(), 0);

  // The same request through both fronts: the wire adds transport, not
  // arithmetic, so the recovered fields must agree bit for bit.
  serve::Ticket local = server.submit(make_request(4, 3), 1000ms);
  ASSERT_TRUE(local.accepted());
  const serve::ParametrizeResult local_result = local.future().get();
  ASSERT_EQ(local_result.status, serve::RequestStatus::kOk);

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);
  const auto reply = client.request(WireRequest::from_request(make_request(4, 3), 0), 10000ms);
  ASSERT_TRUE(reply.has_value()) << "timed out waiting for the response";
  ASSERT_FALSE(reply->is_error) << reply->error.message;
  ASSERT_EQ(reply->response.status(), serve::RequestStatus::kOk);
  ASSERT_TRUE(reply->response.has_field());
  EXPECT_EQ(reply->response.converged, local_result.inverse.converged);

  const std::vector<Real>& remote = reply->response.field;
  const std::vector<Real>& in_process = local_result.inverse.recovered.flat();
  ASSERT_EQ(remote.size(), in_process.size());
  EXPECT_EQ(std::memcmp(remote.data(), in_process.data(),
                        remote.size() * sizeof(Real)), 0);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, PipelinedRequestsCompleteOutOfSubmissionOrder) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);

  // Several requests in flight on one connection; collect by id afterwards.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(client.send(make_request(3 + (i % 2), 2)));
  }
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {  // reversed on purpose
    const auto reply = client.wait(*it, 10000ms);
    ASSERT_TRUE(reply.has_value()) << "request " << *it << " timed out";
    ASSERT_FALSE(reply->is_error);
    EXPECT_EQ(reply->response.request_id, *it);
    EXPECT_EQ(reply->response.status(), serve::RequestStatus::kOk);
  }

  const ListenerCounters counters = listener.counters();
  EXPECT_EQ(counters.requests_admitted, 6u);
  EXPECT_EQ(counters.responses_enqueued, 6u);
  EXPECT_EQ(counters.protocol_errors, 0u);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, InvalidPayloadComesBackAsTypedRejection) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);

  // Structurally valid on the wire, semantically invalid for admission: the
  // transport carries it, the server's validation rejects it, and the
  // rejection crosses back as a typed wire status.
  WireRequest bad = make_wire_request(4, 0);
  for (auto& z : bad.z) z = -z;  // negative impedance magnitudes
  const auto reply = client.request(std::move(bad), 10000ms);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->is_error);
  const auto status = reply->response.status();
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(*status == serve::RequestStatus::kRejected ||
              *status == serve::RequestStatus::kInvalidInput)
      << "unexpected status code " << reply->response.status_code;
  EXPECT_FALSE(reply->response.has_field());

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, MalformedFrameGetsTypedErrorThenClose) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);

  // A healthy request first proves the connection works...
  const auto ok = client.request(make_wire_request(3, 0), 10000ms);
  ASSERT_TRUE(ok.has_value());
  ASSERT_FALSE(ok->is_error);

  // ...then a corrupted frame on a second, raw connection: the server must
  // answer with the typed diagnostic and close, never crash or hang. A
  // request is left in flight on the healthy client to prove the poisoned
  // connection's demise stays scoped to itself.
  std::vector<std::uint8_t> corrupt = encode_request(make_wire_request(3, 123));
  corrupt[0] ^= 0xFF;  // garbage magic
  (void)client.send(make_wire_request(3, 0));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::send(fd, corrupt.data(), corrupt.size(), 0),
            static_cast<ssize_t>(corrupt.size()));

  // The server's reply on that socket must be a kError frame, then EOF.
  FrameDecoder decoder;
  Frame frame;
  std::uint8_t chunk[4096];
  bool got_error = false;
  bool got_eof = false;
  for (int i = 0; i < 200 && !got_eof; ++i) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) {
      got_eof = true;
      break;
    }
    ASSERT_GT(n, 0) << "recv failed: " << std::strerror(errno);
    decoder.feed(chunk, static_cast<std::size_t>(n));
    if (decoder.next(frame) == FrameDecoder::Result::kFrame) {
      ASSERT_EQ(frame.type, FrameType::kError);
      EXPECT_EQ(frame.error->code, ProtoCode::kBadMagic);
      got_error = true;
    }
  }
  EXPECT_TRUE(got_error) << "server never sent the typed diagnostic";
  EXPECT_TRUE(got_eof) << "server never closed the poisoned connection";
  ::close(fd);

  // The original client's in-flight request is unaffected by the other
  // connection's demise.
  const auto probe = client.poll(10000ms);
  ASSERT_TRUE(probe.has_value());
  EXPECT_FALSE(probe->is_error);

  EXPECT_GE(listener.counters().protocol_errors, 1u);

  client.disconnect();
  listener.stop();
  server.shutdown();
}

TEST(NetEndToEnd, DisconnectingClientNeverBlocksTheDispatcher) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  // Fire requests and vanish without reading a single reply.
  {
    Client rude;
    ClientOptions copts;
    copts.port = listener.port();
    rude.connect(copts);
    for (int i = 0; i < 4; ++i) (void)rude.send(make_request(4, 3));
    rude.disconnect();
  }

  // The dispatcher must keep serving in-process traffic promptly.
  serve::Ticket ticket = server.submit(make_request(4, 2), 1000ms);
  ASSERT_TRUE(ticket.accepted());
  ASSERT_EQ(ticket.future().wait_for(10s), std::future_status::ready);
  EXPECT_EQ(ticket.future().get().status, serve::RequestStatus::kOk);

  // And the teardown path (drain + scope join) must not wedge either.
  listener.stop();
  EXPECT_GE(listener.counters().disconnects, 1u);
  server.shutdown();
}

TEST(NetEndToEnd, ListenerStopWhileRequestsInFlightJoinsCleanly) {
  serve::Server server(small_server());
  Listener listener(server);
  listener.start();

  Client client;
  ClientOptions copts;
  copts.port = listener.port();
  client.connect(copts);
  for (int i = 0; i < 3; ++i) (void)client.send(make_request(4, 3));

  // Stop with work still in the pipeline: in-flight requests are cancelled,
  // completions drain through the scope join, nothing leaks or races (the
  // tsan label runs this under -DPARMA_SANITIZE=thread).
  listener.stop();
  server.shutdown();
}

}  // namespace
}  // namespace parma::net

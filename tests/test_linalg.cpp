// Tests for src/linalg: dense/sparse matrices, direct and iterative solvers,
// Laplacians and effective resistance.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/dense_solve.hpp"
#include "linalg/iterative.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace parma::linalg {
namespace {

DenseMatrix random_spd(Index n, Rng& rng) {
  // A = B B^T + n I is SPD for any B.
  DenseMatrix b(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  DenseMatrix a = b.multiply(b.transpose());
  for (Index i = 0; i < n; ++i) a(i, i) += static_cast<Real>(n);
  return a;
}

TEST(VectorOps, DotAxpyNorm) {
  std::vector<Real> a{1, 2, 3};
  std::vector<Real> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-7, 2}), 7.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_THROW(dot(a, {1.0}), ContractError);
}

TEST(VectorOps, RelativeError) {
  EXPECT_NEAR(relative_error({1.0, 0.0}, {1.0, 0.0}), 0.0, 1e-15);
  EXPECT_NEAR(relative_error({1.1, 0.0}, {1.0, 0.0}), 0.1, 1e-12);
}

TEST(DenseMatrix, InitializerListAndIndexing) {
  DenseMatrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(DenseMatrix, MultiplyAndTranspose) {
  DenseMatrix a{{1, 2}, {3, 4}};
  const std::vector<Real> ones{1, 1};
  const std::vector<Real> y = a.multiply(ones);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const std::vector<Real> yt = a.multiply_transpose(ones);
  EXPECT_DOUBLE_EQ(yt[0], 4.0);
  EXPECT_DOUBLE_EQ(yt[1], 6.0);
  const DenseMatrix at = a.transpose();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
}

TEST(DenseMatrix, MatmulAgainstIdentity) {
  DenseMatrix a{{1, 2}, {3, 4}};
  const DenseMatrix prod = a.multiply(DenseMatrix::identity(2));
  EXPECT_NEAR(prod.max_abs_diff(a), 0.0, 1e-15);
}

TEST(DenseMatrix, SymmetryPredicate) {
  DenseMatrix s{{2, 1}, {1, 2}};
  DenseMatrix ns{{2, 1}, {0, 2}};
  EXPECT_TRUE(s.is_symmetric());
  EXPECT_FALSE(ns.is_symmetric());
}

TEST(Lu, SolvesKnownSystem) {
  DenseMatrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  const std::vector<Real> x = solve_dense(a, {8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Lu, DeterminantAndSingularDetection) {
  LuFactorization lu(DenseMatrix{{2, 0}, {0, 3}});
  EXPECT_NEAR(lu.determinant(), 6.0, 1e-12);
  EXPECT_THROW(LuFactorization(DenseMatrix{{1, 2}, {2, 4}}), NumericalError);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const Index n = 2 + static_cast<Index>(rng.uniform_index(12));
    DenseMatrix a(n, n);
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
    }
    for (Index i = 0; i < n; ++i) a(i, i) += 4.0;  // keep well-conditioned
    std::vector<Real> x_true(static_cast<std::size_t>(n));
    for (auto& v : x_true) v = rng.uniform(-5.0, 5.0);
    const std::vector<Real> b = a.multiply(x_true);
    const std::vector<Real> x = solve_dense(a, b);
    EXPECT_LT(relative_error(x, x_true), 1e-9);
  }
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  Rng rng(22);
  DenseMatrix a = random_spd(5, rng);
  const DenseMatrix inv = invert(a);
  EXPECT_NEAR(a.multiply(inv).max_abs_diff(DenseMatrix::identity(5)), 0.0, 1e-9);
}

TEST(Cholesky, MatchesLuOnSpd) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = 2 + static_cast<Index>(rng.uniform_index(10));
    const DenseMatrix a = random_spd(n, rng);
    std::vector<Real> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    const CholeskyFactorization chol(a);
    EXPECT_LT(relative_error(chol.solve(b), solve_dense(a, b)), 1e-9);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  EXPECT_THROW(CholeskyFactorization(DenseMatrix{{1, 2}, {2, 1}}), NumericalError);
}

TEST(Csr, BuilderMergesDuplicatesAndDropsZeros) {
  CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 5.0);
  builder.add(1, 1, -5.0);  // cancels to zero -> dropped
  const CsrMatrix m = builder.build();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Csr, MatvecMatchesDense) {
  Rng rng(24);
  const Index n = 12;
  DenseMatrix dense(n, n);
  CooBuilder builder(n, n);
  for (int k = 0; k < 40; ++k) {
    const Index i = static_cast<Index>(rng.uniform_index(n));
    const Index j = static_cast<Index>(rng.uniform_index(n));
    const Real v = rng.uniform(-1.0, 1.0);
    dense(i, j) += v;
    builder.add(i, j, v);
  }
  const CsrMatrix sparse = builder.build();
  std::vector<Real> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  EXPECT_LT(relative_error(sparse.multiply(x), dense.multiply(x)), 1e-12);
  EXPECT_LT(relative_error(sparse.multiply_transpose(x), dense.multiply_transpose(x)), 1e-12);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  CooBuilder builder(3, 2);
  builder.add(0, 1, 2.0);
  builder.add(2, 0, -1.0);
  const CsrMatrix m = builder.build();
  const CsrMatrix mtt = m.transpose().transpose();
  EXPECT_EQ(mtt.rows(), m.rows());
  EXPECT_DOUBLE_EQ(mtt.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(mtt.at(2, 0), -1.0);
}

TEST(ConjugateGradient, SolvesSpdSystem) {
  Rng rng(25);
  const Index n = 30;
  const DenseMatrix a = random_spd(n, rng);
  CooBuilder builder(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (a(i, j) != 0.0) builder.add(i, j, a(i, j));
    }
  }
  std::vector<Real> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  const CsrMatrix sparse = builder.build();
  const std::vector<Real> b = sparse.multiply(x_true);
  const IterativeResult result = conjugate_gradient(sparse, b);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(relative_error(result.x, x_true), 1e-7);
}

TEST(ConjugateGradient, ZeroRhsGivesZero) {
  CooBuilder builder(3, 3);
  for (Index i = 0; i < 3; ++i) builder.add(i, i, 1.0);
  const IterativeResult result = conjugate_gradient(builder.build(), {0, 0, 0});
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(norm2(result.x), 0.0);
}

TEST(GaussSeidel, ConvergesOnDiagonallyDominant) {
  CooBuilder builder(3, 3);
  const Real diag = 10.0;
  for (Index i = 0; i < 3; ++i) {
    builder.add(i, i, diag);
    if (i + 1 < 3) {
      builder.add(i, i + 1, 1.0);
      builder.add(i + 1, i, 1.0);
    }
  }
  const CsrMatrix a = builder.build();
  const std::vector<Real> x_true{1.0, -2.0, 0.5};
  const IterativeResult result = gauss_seidel(a, a.multiply(x_true));
  EXPECT_TRUE(result.converged);
  EXPECT_LT(relative_error(result.x, x_true), 1e-8);
}

// --- Effective resistance: closed-form circuits ----------------------------

TEST(EffectiveResistance, SeriesChain) {
  // 0 -1k- 1 -2k- 2: R(0,2) = 3k.
  const std::vector<WeightedEdge> edges{{0, 1, 1.0 / 1000}, {1, 2, 1.0 / 2000}};
  const EffectiveResistance oracle(3, edges);
  EXPECT_NEAR(oracle.between(0, 2), 3000.0, 1e-6);
  EXPECT_NEAR(oracle.between(0, 1), 1000.0, 1e-6);
}

TEST(EffectiveResistance, ParallelPair) {
  // Two resistors 2k and 3k in parallel: 1.2k.
  const std::vector<WeightedEdge> edges{{0, 1, 1.0 / 2000}, {0, 1, 1.0 / 3000}};
  const EffectiveResistance oracle(2, edges);
  EXPECT_NEAR(oracle.between(0, 1), 1200.0, 1e-6);
}

TEST(EffectiveResistance, BalancedWheatstoneBridge) {
  // All arms 1k, bridge 5k between 1 and 2: balanced, bridge carries nothing,
  // R(0,3) = 1k.
  const std::vector<WeightedEdge> edges{{0, 1, 1e-3}, {0, 2, 1e-3}, {1, 3, 1e-3},
                                        {2, 3, 1e-3}, {1, 2, 1.0 / 5000}};
  const EffectiveResistance oracle(4, edges);
  EXPECT_NEAR(oracle.between(0, 3), 1000.0, 1e-6);
}

TEST(EffectiveResistance, SymmetricAndTriangleInequality) {
  Rng rng(26);
  std::vector<WeightedEdge> edges;
  const Index n = 6;
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      edges.push_back({i, j, rng.uniform(0.1, 2.0)});
    }
  }
  const EffectiveResistance oracle(n, edges);
  for (Index a = 0; a < n; ++a) {
    for (Index b = a + 1; b < n; ++b) {
      EXPECT_NEAR(oracle.between(a, b), oracle.between(b, a), 1e-10);
      for (Index c = 0; c < n; ++c) {
        if (c == a || c == b) continue;
        // Effective resistance is a metric.
        EXPECT_LE(oracle.between(a, b),
                  oracle.between(a, c) + oracle.between(c, b) + 1e-9);
      }
    }
  }
}

TEST(EffectiveResistance, DisconnectedGraphThrows) {
  const std::vector<WeightedEdge> edges{{0, 1, 1.0}};  // node 2 isolated
  EXPECT_THROW(EffectiveResistance(3, edges), NumericalError);
}

TEST(EffectiveResistance, PotentialsSatisfyOhmAndKcl) {
  const std::vector<WeightedEdge> edges{{0, 1, 1e-3}, {1, 2, 1e-3}, {0, 2, 1e-3}};
  const EffectiveResistance oracle(3, edges);
  const std::vector<Real> phi = oracle.potentials(0, 2);
  // Unit current in at 0, out at 2: check KCL at node 1.
  const Real i01 = (phi[0] - phi[1]) * 1e-3;
  const Real i12 = (phi[1] - phi[2]) * 1e-3;
  EXPECT_NEAR(i01, i12, 1e-12);
  // Total drop equals effective resistance for unit current.
  EXPECT_NEAR(phi[0] - phi[2], oracle.between(0, 2), 1e-9);
}

TEST(Laplacian, DenseAndSparseAgree) {
  const std::vector<WeightedEdge> edges{{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 0.5}};
  const DenseMatrix dense = build_dense_laplacian(3, edges);
  const CsrMatrix sparse = build_sparse_laplacian(3, edges);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) EXPECT_NEAR(dense(i, j), sparse.at(i, j), 1e-15);
  }
  // Row sums of a Laplacian vanish.
  const std::vector<Real> ones{1, 1, 1};
  EXPECT_NEAR(norm2(dense.multiply(ones)), 0.0, 1e-12);
}

TEST(Laplacian, RejectsBadEdges) {
  EXPECT_THROW(build_dense_laplacian(2, {{0, 0, 1.0}}), ContractError);
  EXPECT_THROW(build_dense_laplacian(2, {{0, 1, -1.0}}), ContractError);
  EXPECT_THROW(build_dense_laplacian(2, {{0, 5, 1.0}}), ContractError);
}

// A ragged random CSR with an empty row, an empty column, and duplicate COO
// coordinates -- the cases the CsrMatrix accessors have to survive.
CsrMatrix ragged_fixture(DenseMatrix& dense_out) {
  const Index rows = 5;
  const Index cols = 4;
  CooBuilder builder(rows, cols);
  dense_out = DenseMatrix(rows, cols);
  const auto put = [&](Index r, Index c, Real v) {
    builder.add(r, c, v);
    dense_out(r, c) += v;
  };
  // Row 2 and column 3 stay empty; (0, 1) accumulates three duplicates.
  put(0, 1, 1.5);
  put(0, 1, -0.25);
  put(0, 1, 2.0);
  put(0, 0, 3.0);
  put(1, 2, -4.0);
  put(3, 0, 0.5);
  put(3, 1, 1.0);
  put(4, 2, 2.5);
  put(4, 0, -1.0);
  return builder.build();
}

TEST(Csr, TransposeProductMatchesDenseReference) {
  DenseMatrix dense(1, 1);
  const CsrMatrix m = ragged_fixture(dense);
  const std::vector<Real> x{1.0, -2.0, 0.5, 3.0, -0.75};
  const std::vector<Real> expected = dense.transpose().multiply(x);
  const std::vector<Real> got = m.multiply_transpose(x);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-14);
  // The in-place variant reuses a dirty buffer and must fully overwrite it.
  std::vector<Real> buffer(17, 1e9);
  m.multiply_transpose_into(x, buffer);
  ASSERT_EQ(buffer.size(), expected.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) EXPECT_EQ(buffer[i], got[i]);
}

TEST(Csr, TransposeAtDiagonalMatchDenseReference) {
  DenseMatrix dense(1, 1);
  const CsrMatrix m = ragged_fixture(dense);
  const CsrMatrix t = m.transpose();
  ASSERT_EQ(t.rows(), m.cols());
  ASSERT_EQ(t.cols(), m.rows());
  for (Index r = 0; r < m.rows(); ++r) {
    for (Index c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(m.at(r, c), dense(r, c)) << r << "," << c;
      EXPECT_EQ(t.at(c, r), dense(r, c)) << r << "," << c;
    }
  }
  // diagonal() on a square duplicate-accumulating matrix, zero where absent.
  CooBuilder sq(3, 3);
  sq.add(0, 0, 1.0);
  sq.add(0, 0, 2.0);
  sq.add(1, 2, 5.0);
  sq.add(2, 2, -3.0);
  const std::vector<Real> diag = sq.build().diagonal();
  ASSERT_EQ(diag.size(), 3u);
  EXPECT_EQ(diag[0], 3.0);
  EXPECT_EQ(diag[1], 0.0);
  EXPECT_EQ(diag[2], -3.0);
}

TEST(Csr, InPlaceMultiplyMatchesAllocatingMultiply) {
  DenseMatrix dense(1, 1);
  const CsrMatrix m = ragged_fixture(dense);
  const std::vector<Real> x{0.25, -1.0, 2.0, 4.0};
  const std::vector<Real> expected = m.multiply(x);
  std::vector<Real> y(3, -7.0);  // wrong size and dirty on purpose
  m.multiply_into(x, y);
  ASSERT_EQ(y.size(), expected.size());
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], expected[i]);
  // Row-range partition covering [0, rows) reproduces the same bits.
  std::vector<Real> partitioned(static_cast<std::size_t>(m.rows()), 0.0);
  m.multiply_rows_into(x, partitioned, 0, 2);
  m.multiply_rows_into(x, partitioned, 2, m.rows());
  for (std::size_t i = 0; i < partitioned.size(); ++i) EXPECT_EQ(partitioned[i], expected[i]);
}

TEST(Csr, ZeroPolicyControlsExplicitZeroSlots) {
  // The latent pattern-instability bug: with kDrop, coordinates whose values
  // cancel to exactly 0.0 vanish from the pattern, so the sparsity structure
  // depends on the numeric values. kKeep pins the structural pattern.
  CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 2.5);
  builder.add(0, 1, -2.5);  // cancels exactly
  builder.add(1, 1, 4.0);

  const CsrMatrix dropped = builder.build(ZeroPolicy::kDrop);
  EXPECT_EQ(dropped.nnz(), 2u) << "historical behavior: the cancelled slot vanishes";
  EXPECT_EQ(dropped.at(0, 1), 0.0);

  const CsrMatrix kept = builder.build(ZeroPolicy::kKeep);
  EXPECT_EQ(kept.nnz(), 3u) << "structural pattern: the slot stays as explicit zero";
  EXPECT_EQ(kept.at(0, 1), 0.0);
  EXPECT_EQ(kept.row_ptr()[1] - kept.row_ptr()[0], 2);
  // Numerics agree wherever both have a value.
  for (Index r = 0; r < 2; ++r) {
    for (Index c = 0; c < 2; ++c) EXPECT_EQ(kept.at(r, c), dropped.at(r, c));
  }
}

TEST(VectorOps, OrderedDotIsBitIdenticalToDotBelowThreshold) {
  Rng rng(991);
  for (const std::size_t n : {std::size_t{1}, std::size_t{257}, kSerialDotThreshold}) {
    std::vector<Real> a(n);
    std::vector<Real> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.uniform(-1.0, 1.0);
      b[i] = rng.uniform(-1.0, 1.0);
    }
    ASSERT_EQ(dot_chunk_count(n), 1u);
    std::vector<Real> partials;
    EXPECT_EQ(ordered_dot(a, b, partials), dot(a, b)) << "n=" << n;
  }
}

TEST(VectorOps, OrderedDotAboveThresholdSumsFixedChunksInOrder) {
  Rng rng(992);
  const std::size_t n = kSerialDotThreshold + kDotChunk + 17;
  std::vector<Real> a(n);
  std::vector<Real> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0);
    b[i] = rng.uniform(-1.0, 1.0);
  }
  const std::size_t chunks = dot_chunk_count(n);
  ASSERT_GT(chunks, 1u);
  // The deterministic contract: ordered_dot == the in-order sum of the fixed
  // chunk partials, and the partials tile [0, n) exactly.
  std::vector<Real> partials;
  const Real got = ordered_dot(a, b, partials);
  ASSERT_EQ(partials.size(), chunks);
  Real manual = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) manual += dot_chunk_partial(a, b, c);
  EXPECT_EQ(got, manual);
  EXPECT_NEAR(got, dot(a, b), 1e-9 * static_cast<Real>(n));
}

}  // namespace
}  // namespace parma::linalg

// End-to-end integration tests: wet-lab pipeline simulation, cross-module
// consistency, and a real mpisim distributed formation.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "core/parma.hpp"

namespace parma {
namespace {

TEST(Integration, FullAnomalyDetectionPipeline) {
  // Device -> synthetic tissue -> measurement -> file -> Parma -> recovery
  // -> anomaly mask, exactly the Section II-C workload.
  Rng rng(201);
  const mea::DeviceSpec spec = mea::square_device(5);
  mea::GeneratorOptions gen;
  gen.jitter_fraction = 0.0;
  gen.anomalies.push_back({1.0, 3.0, 0.8, 0.8, 11000.0});
  const auto truth = mea::generate_field(spec, gen, rng);
  const auto truth_mask = mea::anomaly_mask(truth, mea::default_threshold());

  // Persist and reload through the wet-lab text format.
  const std::string path = testing::TempDir() + "parma_integration/sweep.txt";
  mea::write_measurement(path, mea::measure_exact(spec, truth));
  const mea::LoadedMeasurement loaded = mea::read_measurement(path);

  core::Engine engine(loaded.measurement);
  solver::InverseOptions options;
  options.max_iterations = 80;
  const solver::InverseResult recovery = engine.recover(options);
  const mea::DetectionReport report =
      mea::detect_anomalies(recovery.recovered, mea::default_threshold(), truth_mask);
  EXPECT_DOUBLE_EQ(report.f1(), 1.0);
}

TEST(Integration, TimeSeriesCampaignShowsAnomalyGrowth) {
  Rng rng(202);
  const mea::DeviceSpec spec = mea::square_device(4);
  mea::TimeSeriesOptions options;
  options.scenario.jitter_fraction = 0.0;
  options.scenario.anomalies.push_back({1.5, 1.5, 0.9, 0.9, 9000.0});
  options.growth_per_hour = 0.05;
  const auto frames = mea::simulate_campaign(spec, options, rng);

  Index previous_detected = -1;
  for (const auto& frame : frames) {
    core::Engine engine(frame.measurement);
    solver::InverseOptions solver_options;
    solver_options.max_iterations = 60;
    const auto recovery = engine.recover(solver_options);
    const auto report = mea::detect_anomalies(recovery.recovered, 4000.0);
    Index detected = 0;
    for (bool b : report.detected) detected += b;
    EXPECT_GE(detected, previous_detected);
    previous_detected = detected;
  }
  EXPECT_GT(previous_detected, 0);
}

TEST(Integration, TopologyPredictsKirchhoffStructure) {
  // The homological invariants must agree with the circuit-level counts on
  // the same device -- the paper's central correspondence.
  Rng rng(203);
  const mea::DeviceSpec spec = mea::square_device(5);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  const core::Engine engine(mea::measure_exact(spec, truth));
  const core::TopologyReport topo = engine.analyze_topology(true);

  const circuit::ResistorNetwork network = circuit::build_crossbar_network(truth);
  // The bipartite electrical graph and the physical wire complex are homotopy
  // equivalent: identical beta_1.
  EXPECT_EQ(network.num_independent_loops(), topo.betti1);
  EXPECT_EQ(circuit::num_independent_kvl_equations(network), topo.intrinsic_parallelism);
}

TEST(Integration, BaselinePathAggregationIsStrictlyWorseThanParma) {
  // The BigData'18 baseline's parallel-path estimate deviates from the
  // measured Z; Parma's joint-constraint model reproduces it exactly.
  Rng rng(204);
  const mea::DeviceSpec spec = mea::square_device(3);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  const mea::Measurement m = mea::measure_exact(spec, truth);

  Real parma_worst = 0.0;
  Real baseline_worst = 0.0;
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      const Real exact = m.z(i, j);
      const Real parma_z = equations::solve_pair(truth, i, j, spec.drive_voltage).z_model;
      const Real baseline_z = circuit::aggregate_parallel_paths(truth, i, j);
      parma_worst = std::max(parma_worst, std::abs(parma_z - exact) / exact);
      baseline_worst = std::max(baseline_worst, std::abs(baseline_z - exact) / exact);
    }
  }
  EXPECT_LT(parma_worst, 1e-10);
  EXPECT_GT(baseline_worst, 1e-3);
}

TEST(Integration, DistributedFormationOverMpisimMatchesSerial) {
  // Actually run the formation over message-passing ranks: root scatters
  // pair indices, every rank generates its shard and reports its equation
  // count; the census must match the serial system.
  Rng rng(205);
  const mea::DeviceSpec spec = mea::square_device(4);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  const mea::Measurement m = mea::measure_exact(spec, truth);
  const equations::UnknownLayout layout(spec);

  const Index ranks = 4;
  std::atomic<Index> total_equations{0};
  std::atomic<long long> term_checksum{0};
  mpisim::run_ranks(ranks, [&](mpisim::Communicator& comm) {
    // Root scatters contiguous pair ranges as (begin, end) payloads.
    std::vector<mpisim::Payload> shards;
    if (comm.rank() == 0) {
      const Index pairs = spec.num_endpoint_pairs();
      for (Index r = 0; r < ranks; ++r) {
        shards.push_back({static_cast<Real>(pairs * r / ranks),
                          static_cast<Real>(pairs * (r + 1) / ranks)});
      }
    }
    const mpisim::Payload range = comm.scatter(0, std::move(shards));
    Index eqs = 0;
    long long terms = 0;
    for (Index p = static_cast<Index>(range[0]); p < static_cast<Index>(range[1]); ++p) {
      const auto pair_eqs = equations::generate_pair_equations(
          layout, m, p / spec.cols, p % spec.cols);
      eqs += static_cast<Index>(pair_eqs.size());
      for (const auto& eq : pair_eqs) terms += static_cast<long long>(eq.terms.size());
    }
    const mpisim::Payload reduced =
        comm.reduce_sum(0, {static_cast<Real>(eqs), static_cast<Real>(terms)});
    if (comm.rank() == 0) {
      total_equations.store(static_cast<Index>(reduced[0]));
      term_checksum.store(static_cast<long long>(reduced[1]));
    }
  });

  const equations::EquationSystem serial = equations::generate_system(m);
  long long serial_terms = 0;
  for (const auto& eq : serial.equations) {
    serial_terms += static_cast<long long>(eq.terms.size());
  }
  EXPECT_EQ(total_equations.load(), static_cast<Index>(serial.equations.size()));
  EXPECT_EQ(term_checksum.load(), serial_terms);
}

TEST(Integration, Figure6OrderingEmergesFromTheEngine) {
  // The Fig. 6 shape under the default cost model: at n = 10 the 32-worker
  // fine-grained strategy pays more in sequential spawns than the work is
  // worth and Balanced Parallel wins; by n = 20 fine-grained is ahead and
  // everything beats serial.
  //
  // To keep the test deterministic under background machine load, each
  // device is formed once and the measured per-task costs are rescaled to a
  // fixed 25 ns per equation term (a typical unloaded rate on this class of
  // hardware); the engine-derived skew and granularity are preserved while
  // machine speed and load cancel out. The benchmarks measure for real.
  const parallel::CostModel model;
  auto run = [&](Index n) {
    Rng rng(300 + static_cast<std::uint64_t>(n));
    const mea::DeviceSpec spec = mea::square_device(n);
    const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
    core::Engine engine(mea::measure_exact(spec, truth));
    core::StrategyOptions options;
    options.strategy = core::Strategy::kFineGrained;
    options.timing_mode = core::TimingMode::kVirtualReplay;
    core::FormationResult formation = engine.form_equations(options);
    std::uint64_t total_terms = 0;
    for (const auto& eq : formation.system.equations) total_terms += eq.terms.size();
    const Real synthetic_total = 25e-9 * static_cast<Real>(total_terms);
    const Real scale = synthetic_total / formation.schedule.total_work_seconds;
    for (auto& task : formation.tasks) task.cost_seconds *= scale;
    auto coarse_tasks =
        engine.build_tasks(formation.system, synthetic_total,
                           core::Engine::TaskGranularity::kCoarseRowCategory);
    struct Times {
      Real serial, balanced4, fine32;
    };
    return Times{
        parallel::schedule_serial(formation.tasks, model).makespan_seconds,
        parallel::schedule_balanced_lpt(coarse_tasks, 4, model).makespan_seconds,
        parallel::schedule_dynamic(formation.tasks, 32, 4, model).makespan_seconds};
  };

  const auto at10 = run(10);
  EXPECT_LT(at10.balanced4, at10.fine32);  // the paper's n = 10 inversion

  const auto at20 = run(20);
  EXPECT_LT(at20.fine32, at20.balanced4);
  EXPECT_LT(at20.balanced4, at20.serial);
}

TEST(Integration, EquationFileFedBackIntoSolver) {
  // Serialize the formed system, reload it, and verify the loaded system's
  // residual detects the true resistances (an end-to-end determinism check
  // across the I/O boundary).
  Rng rng(206);
  const mea::DeviceSpec spec = mea::square_device(3);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  const mea::Measurement m = mea::measure_exact(spec, truth);
  core::Engine engine(m);
  const std::string dir = testing::TempDir() + "parma_integration_io";
  std::filesystem::remove_all(dir);
  core::StrategyOptions options;
  options.workers = 1;
  const core::IoResult io = engine.write_equations(dir, options);
  ASSERT_EQ(io.shard_paths.size(), 1u);

  // Strip the shard banner line so the generic loader accepts it.
  const equations::EquationSystem original = io.formation.system;
  const std::string single = dir + "/full.txt";
  equations::save_system(single, original);
  const equations::EquationSystem loaded = equations::load_system(single, spec);

  std::vector<Real> voltages;
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      const auto pair = equations::solve_pair(truth, i, j, spec.drive_voltage);
      voltages.insert(voltages.end(), pair.ua.begin(), pair.ua.end());
      voltages.insert(voltages.end(), pair.ub.begin(), pair.ub.end());
    }
  }
  const auto x = equations::pack_unknowns(loaded.layout, truth.flat(), voltages);
  EXPECT_LT(linalg::norm_inf(equations::system_residual(loaded, x)), 1e-9);
}

}  // namespace
}  // namespace parma

// Tests for src/ann: the from-scratch MLP, its gradients, the Adam trainer,
// and the HDK-style Z -> R estimator pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "ann/dataset.hpp"
#include "ann/mlp.hpp"
#include "ann/trainer.hpp"
#include "common/require.hpp"
#include "mea/device.hpp"

namespace parma::ann {
namespace {

TEST(Mlp, ShapesAndParameterCount) {
  Rng rng(801);
  const Mlp net({3, 5, 2}, rng);
  EXPECT_EQ(net.input_size(), 3);
  EXPECT_EQ(net.output_size(), 2);
  // (3*5 + 5) + (5*2 + 2) = 32.
  EXPECT_EQ(net.num_parameters(), 32);
  EXPECT_EQ(net.predict({1.0, 2.0, 3.0}).size(), 2u);
  EXPECT_THROW(Mlp({4}, rng), ContractError);
  EXPECT_THROW(Mlp({4, 0, 2}, rng), ContractError);
}

TEST(Mlp, DeterministicInitializationPerSeed) {
  Rng a(802);
  Rng b(802);
  const Mlp net_a({4, 6, 3}, a);
  const Mlp net_b({4, 6, 3}, b);
  EXPECT_EQ(net_a.parameters(), net_b.parameters());
}

TEST(Mlp, GradientsMatchFiniteDifferences) {
  Rng rng(803);
  Mlp net({3, 4, 2}, rng);
  const std::vector<Real> x{0.3, -0.7, 1.1};
  const std::vector<Real> t{0.5, -0.2};

  std::vector<Real> analytic(net.parameters().size(), 0.0);
  net.accumulate_gradients(x, t, analytic);

  const Real h = 1e-6;
  for (std::size_t p = 0; p < net.parameters().size(); ++p) {
    std::vector<Real> dummy(net.parameters().size(), 0.0);
    const Real original = net.parameters()[p];
    net.parameters()[p] = original + h;
    const Real up = net.accumulate_gradients(x, t, dummy);
    net.parameters()[p] = original - h;
    const Real down = net.accumulate_gradients(x, t, dummy);
    net.parameters()[p] = original;
    const Real fd = (up - down) / (2.0 * h);
    EXPECT_NEAR(analytic[p], fd, 1e-4 * std::max(std::abs(fd), 1.0)) << "param " << p;
  }
}

TEST(Mlp, LearnsALinearMap) {
  // Sanity regression: y = 2x0 - x1 learned to high accuracy.
  Rng rng(804);
  Mlp net({2, 8, 1}, rng);
  Dataset dataset;
  dataset.spec = mea::square_device(2);
  dataset.feature_norm.mean = {0.0, 0.0};
  dataset.feature_norm.scale = {1.0, 1.0};
  dataset.label_norm = dataset.feature_norm;
  dataset.label_norm.mean = {0.0};
  dataset.label_norm.scale = {1.0};
  Rng data_rng(805);
  for (int s = 0; s < 128; ++s) {
    const Real x0 = data_rng.uniform(-1.0, 1.0);
    const Real x1 = data_rng.uniform(-1.0, 1.0);
    Sample sample{{x0, x1}, {2.0 * x0 - x1}};
    if (s < 16) dataset.test.push_back(sample);
    else dataset.train.push_back(sample);
  }
  TrainOptions options;
  options.epochs = 300;
  options.learning_rate = 5e-3;
  Rng train_rng(806);
  const TrainReport report = train(net, dataset, options, train_rng);
  EXPECT_LT(report.final_test_loss, 1e-4);
  EXPECT_LT(report.train_loss_per_epoch.back(), report.train_loss_per_epoch.front());
}

TEST(Normalization, RoundTrips) {
  Normalization norm;
  norm.mean = {10.0, -5.0};
  norm.scale = {2.0, 4.0};
  const std::vector<Real> raw{12.0, -1.0};
  const std::vector<Real> normalized = norm.apply(raw);
  EXPECT_DOUBLE_EQ(normalized[0], 1.0);
  EXPECT_DOUBLE_EQ(normalized[1], 1.0);
  const std::vector<Real> back = norm.invert(normalized);
  EXPECT_DOUBLE_EQ(back[0], raw[0]);
  EXPECT_DOUBLE_EQ(back[1], raw[1]);
  EXPECT_THROW(norm.apply({1.0}), ContractError);
}

TEST(Dataset, ShapesSplitsAndDeterminism) {
  const mea::DeviceSpec spec = mea::square_device(4);
  DatasetOptions options;
  options.num_samples = 40;
  options.test_fraction = 0.25;
  Rng rng_a(807);
  Rng rng_b(807);
  const Dataset a = generate_dataset(spec, options, rng_a);
  const Dataset b = generate_dataset(spec, options, rng_b);
  EXPECT_EQ(a.train.size(), 30u);
  EXPECT_EQ(a.test.size(), 10u);
  ASSERT_FALSE(a.train.empty());
  EXPECT_EQ(a.train[0].features.size(), 16u);
  EXPECT_EQ(a.train[0].labels.size(), 16u);
  EXPECT_EQ(a.train[0].features, b.train[0].features);

  // Normalized features are roughly standardized.
  Real mean = 0.0;
  for (const auto& s : a.train) mean += s.features[0];
  mean /= static_cast<Real>(a.train.size());
  EXPECT_LT(std::abs(mean), 1.0);
}

TEST(Estimator, LearnsTheInverseMapBetterThanChance) {
  // The HDK workflow: Parma-labelled data in, an estimator that maps a
  // measured sweep to the resistance field out. With a small device and a
  // few hundred samples the net must clearly beat the untrained baseline
  // and land within tens of percent mean relative error.
  const mea::DeviceSpec spec = mea::square_device(3);
  DatasetOptions data_options;
  data_options.num_samples = 240;
  Rng data_rng(808);
  const Dataset dataset = generate_dataset(spec, data_options, data_rng);

  Rng net_rng(809);
  Mlp net({9, 32, 32, 9}, net_rng);
  const Real untrained_loss = evaluate_loss(net, dataset.test);

  TrainOptions options;
  options.epochs = 150;
  options.learning_rate = 2e-3;
  Rng train_rng(810);
  const TrainReport report = train(net, dataset, options, train_rng);

  EXPECT_LT(report.final_test_loss, untrained_loss * 0.3);
  EXPECT_LT(report.test_mean_relative_error, 0.35);
}

TEST(Estimator, InferenceInvertsNormalization) {
  const mea::DeviceSpec spec = mea::square_device(3);
  DatasetOptions data_options;
  data_options.num_samples = 16;
  Rng rng(811);
  const Dataset dataset = generate_dataset(spec, data_options, rng);
  Rng net_rng(812);
  const Mlp net({9, 8, 9}, net_rng);
  // Any raw feature vector must produce label-scale outputs (kilo-ohms).
  std::vector<Real> raw(9, 1500.0);
  const std::vector<Real> r = infer_resistances(net, dataset, raw);
  ASSERT_EQ(r.size(), 9u);
  for (Real v : r) {
    EXPECT_GT(v, -kWetLabMaxResistanceKOhm);
    EXPECT_LT(v, 3.0 * kWetLabMaxResistanceKOhm);
  }
}

}  // namespace
}  // namespace parma::ann

// Tests for src/manifold: discrete vector calculus and local frames
// (the Section IV-B machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "manifold/calculus.hpp"
#include "manifold/frames.hpp"
#include "manifold/grid_field.hpp"

namespace parma::manifold {
namespace {

ScalarField random_field(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  ScalarField f(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) f.at(i, j) = rng.uniform(-5.0, 5.0);
  }
  return f;
}

EdgeField random_edge_field(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  EdgeField f(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j + 1 < cols; ++j) f.horizontal(i, j) = rng.uniform(-1.0, 1.0);
  }
  for (Index i = 0; i + 1 < rows; ++i) {
    for (Index j = 0; j < cols; ++j) f.vertical(i, j) = rng.uniform(-1.0, 1.0);
  }
  return f;
}

TEST(Fields, BoundsAreEnforced) {
  ScalarField s(3, 4);
  EXPECT_THROW(s.at(3, 0), ContractError);
  EdgeField e(3, 4);
  EXPECT_THROW(e.horizontal(0, 3), ContractError);  // only cols-1 horizontal edges
  EXPECT_THROW(e.vertical(2, 0), ContractError);    // only rows-1 vertical edges
  EXPECT_EQ(e.num_horizontal_edges(), 3 * 3);
  EXPECT_EQ(e.num_vertical_edges(), 2 * 4);
}

TEST(Calculus, GradientOfLinearFieldIsConstant) {
  const ScalarField u = ScalarField::sample(4, 5, [](Real i, Real j) { return 3.0 * i - 2.0 * j; });
  const EdgeField g = gradient(u);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j + 1 < 5; ++j) EXPECT_DOUBLE_EQ(g.horizontal(i, j), -2.0);
  }
  for (Index i = 0; i + 1 < 4; ++i) {
    for (Index j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(g.vertical(i, j), 3.0);
  }
}

TEST(Calculus, GradientFieldsHaveZeroCurlEverywhere) {
  // d.d = 0: the circulation of ANY potential's gradient vanishes on every
  // plaquette -- the discrete version of the paper's conservative-voltage
  // argument (and of KVL).
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const ScalarField u = random_field(6, 7, seed);
    EXPECT_LT(max_gradient_curl(u), 1e-12);
  }
}

TEST(Calculus, GradientCirculationVanishesOnLargeLoopsToo) {
  const ScalarField u = random_field(6, 6, 99);
  const EdgeField g = gradient(u);
  EXPECT_NEAR(circulation(g, {0, 0, 5, 5}), 0.0, 1e-12);
  EXPECT_NEAR(circulation(g, {1, 2, 4, 5}), 0.0, 1e-12);
}

TEST(Calculus, StokesTheoremIsExactForArbitraryEdgeFields) {
  // circulation(F, R) == sum of interior plaquette curls, for EVERY
  // rectangle and every (not necessarily conservative) field.
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    const EdgeField f = random_edge_field(5, 6, seed);
    EXPECT_LT(max_stokes_residual(f), 1e-12);
  }
}

TEST(Calculus, NonConservativeFieldHasNonzeroCurl) {
  EdgeField f(3, 3);
  f.horizontal(0, 0) = 1.0;  // a single rotational edge
  EXPECT_NE(plaquette_curl(f, 0, 0), 0.0);
}

TEST(Calculus, DivergenceDetectsSourcesAndSinks) {
  EdgeField f(3, 3);
  // Unit flow along the top edge: (0,0) is a source, (0,1) carries through.
  f.horizontal(0, 0) = 1.0;
  f.horizontal(0, 1) = 1.0;
  EXPECT_DOUBLE_EQ(divergence(f, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(divergence(f, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(divergence(f, 0, 2), -1.0);
}

TEST(Calculus, TotalDivergenceIsZero) {
  // Sum over all nodes of the divergence telescopes to zero for any field
  // (every edge contributes once positively and once negatively).
  const EdgeField f = random_edge_field(5, 5, 21);
  Real total = 0.0;
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) total += divergence(f, i, j);
  }
  EXPECT_NEAR(total, 0.0, 1e-12);
}

TEST(Calculus, MixedPartialsCommuteExactly) {
  // The paper's d2U/dxdy = d2U/dydx claim holds exactly for the discrete
  // difference operators, for any sampled field.
  const ScalarField u = random_field(5, 5, 31);
  for (Index i = 0; i + 1 < 5; ++i) {
    for (Index j = 0; j + 1 < 5; ++j) {
      const MixedPartials mp = mixed_partials(u, i, j);
      EXPECT_DOUBLE_EQ(mp.dxdy, mp.dydx);
    }
  }
}

TEST(Calculus, RejectsDegenerateRectangles) {
  const EdgeField f = random_edge_field(4, 4, 41);
  EXPECT_THROW(circulation(f, {2, 2, 2, 3}), ContractError);
  EXPECT_THROW(circulation(f, {0, 0, 5, 2}), ContractError);
}

// --- Frames -------------------------------------------------------------------

TEST(Frames, RegularGridIsOrthogonalWithUnitArea) {
  const CurvilinearGrid grid = CurvilinearGrid::regular(4, 4, 2.0);
  for (Index i = 0; i + 1 < 4; ++i) {
    for (Index j = 0; j + 1 < 4; ++j) {
      EXPECT_TRUE(grid.is_orthogonal(i, j));
      EXPECT_NEAR(grid.area_element(i, j), 4.0, 1e-12);  // pitch^2
    }
  }
}

TEST(Frames, ShearedGridIsNotOrthogonalButFramesRecoverGradients) {
  // Embed with a shear: x = v + 0.5 u, y = u. A field linear in physical
  // space must yield its true physical gradient through the Jacobian frame,
  // even though the logical axes are skewed.
  const CurvilinearGrid grid(5, 5, [](Real u, Real v) {
    return Point{v + 0.5 * u, u};
  });
  EXPECT_FALSE(grid.is_orthogonal(0, 0));

  // f(x, y) = 2x + 3y sampled at the physical positions.
  ScalarField f(5, 5);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      const Point p = grid.position(i, j);
      f.at(i, j) = 2.0 * p.x + 3.0 * p.y;
    }
  }
  const std::vector<Real> grad = grid.physical_gradient(f, 2, 2);
  ASSERT_EQ(grad.size(), 2u);
  EXPECT_NEAR(grad[0], 2.0, 1e-10);  // df/dx
  EXPECT_NEAR(grad[1], 3.0, 1e-10);  // df/dy
}

TEST(Frames, MetricEncodesEdgeLengths) {
  const CurvilinearGrid grid(3, 3, [](Real u, Real v) {
    return Point{3.0 * v, 2.0 * u};  // anisotropic but orthogonal
  });
  const auto g = grid.metric(0, 0);
  EXPECT_NEAR(g(0, 0), 4.0, 1e-12);  // |d/du|^2 = 2^2
  EXPECT_NEAR(g(1, 1), 9.0, 1e-12);  // |d/dv|^2 = 3^2
  EXPECT_TRUE(grid.is_orthogonal(0, 0));
}

TEST(Frames, IntegrationWeightsByAreaElement) {
  // A polar-ish warp: cells farther out are bigger; integrating the constant
  // function 1 must give the total physical area.
  const CurvilinearGrid grid(3, 3, [](Real u, Real v) {
    return Point{v * (1.0 + 0.1 * u), u};
  });
  Real expected = 0.0;
  for (Index i = 0; i + 1 < 3; ++i) {
    for (Index j = 0; j + 1 < 3; ++j) expected += grid.area_element(i, j);
  }
  const Real integral = grid.integrate([](Index, Index) { return 1.0; });
  EXPECT_NEAR(integral, expected, 1e-12);
  EXPECT_GT(integral, 0.0);
}

TEST(Frames, StokesHoldsOnWarpedDevices) {
  // The Section IV-B pipeline end-to-end: sample a potential on a warped
  // device, take its (logical) gradient, and verify the circulation /
  // interior-curl identity -- locality survives the warp, which is what
  // justifies per-patch parallel parametrization.
  const CurvilinearGrid grid(6, 6, [](Real u, Real v) {
    return Point{v + 0.3 * std::sin(0.5 * u), u + 0.2 * std::cos(0.4 * v)};
  });
  ScalarField potential(6, 6);
  for (Index i = 0; i < 6; ++i) {
    for (Index j = 0; j < 6; ++j) {
      const Point p = grid.position(i, j);
      potential.at(i, j) = std::exp(-0.1 * (p.x * p.x + p.y * p.y));
    }
  }
  EXPECT_LT(max_gradient_curl(potential), 1e-12);
  EXPECT_LT(max_stokes_residual(gradient(potential)), 1e-12);
}

}  // namespace
}  // namespace parma::manifold

// Tests for src/core: the Parma engine -- topology reports, strategy
// semantics, schedule invariants, I/O, and the distributed replay.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/parma.hpp"
#include "equations/residual.hpp"
#include "linalg/vector_ops.hpp"
#include "mea/generator.hpp"

namespace parma::core {
namespace {

Engine make_engine(Index n, std::uint64_t seed = 7) {
  Rng rng(seed);
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto options = mea::random_scenario(spec, 1, rng);
  const auto truth = mea::generate_field(spec, options, rng);
  return Engine(mea::measure_exact(spec, truth));
}

// The schedule-centric assertions below exercise the paper-figure replay, so
// they opt into kVirtualReplay; real-thread mode (the default) is covered by
// the dedicated tests further down and by tests/test_exec.cpp.
StrategyOptions options_for(Strategy strategy, Index workers, Index chunk = 1) {
  StrategyOptions o;
  o.strategy = strategy;
  o.workers = workers;
  o.chunk = chunk;
  o.timing_mode = TimingMode::kVirtualReplay;
  return o;
}

StrategyOptions real_options_for(Strategy strategy, Index workers, Index chunk = 1) {
  StrategyOptions o = options_for(strategy, workers, chunk);
  o.timing_mode = TimingMode::kRealThreads;
  return o;
}

TEST(Engine, TopologyReportMatchesClosedForms) {
  const Engine engine = make_engine(6);
  const TopologyReport report = engine.analyze_topology(/*exact_homology=*/true);
  EXPECT_EQ(report.num_joints, 2 * 36);
  EXPECT_EQ(report.complex_dimension, 1);
  EXPECT_EQ(report.betti0, 1);
  EXPECT_EQ(report.betti1, 25);  // (6-1)^2
  EXPECT_EQ(report.betti1, report.cyclomatic_number);
  EXPECT_EQ(report.intrinsic_parallelism, 25);
  EXPECT_TRUE(report.proposition1_holds);
}

TEST(Engine, RectangularDeviceTopology) {
  Rng rng(78);
  const mea::DeviceSpec spec{3, 7, 5.0};
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  const Engine engine(mea::measure_exact(spec, truth));
  const TopologyReport report = engine.analyze_topology(true);
  EXPECT_EQ(report.num_joints, 2 * 21);
  EXPECT_EQ(report.betti1, (3 - 1) * (7 - 1));
  EXPECT_EQ(report.intrinsic_parallelism, 12);
  EXPECT_TRUE(report.proposition1_holds);
}

TEST(Engine, FastAndExactTopologyPathsAgree) {
  const Engine engine = make_engine(5);
  const TopologyReport fast = engine.analyze_topology(false);
  const TopologyReport exact = engine.analyze_topology(true);
  EXPECT_EQ(fast.betti0, exact.betti0);
  EXPECT_EQ(fast.betti1, exact.betti1);
}

TEST(Engine, FormationProducesTheFullCensus) {
  const Engine engine = make_engine(5);
  const FormationResult r = engine.form_equations(options_for(Strategy::kFineGrained, 8));
  EXPECT_EQ(static_cast<Index>(r.system.equations.size()), 2 * 5 * 5 * 5);
  EXPECT_GT(r.generation_seconds, 0.0);
  EXPECT_GT(r.equation_bytes, 0u);
  EXPECT_FALSE(r.tasks.empty());
}

TEST(Engine, AllStrategiesGenerateIdenticalSystems) {
  const Engine engine = make_engine(4);
  const FormationResult base = engine.form_equations(options_for(Strategy::kSingleThread, 1));
  for (const Strategy s :
       {Strategy::kParallel, Strategy::kBalancedParallel, Strategy::kFineGrained}) {
    const FormationResult other = engine.form_equations(options_for(s, 8));
    ASSERT_EQ(other.system.equations.size(), base.system.equations.size());
    // Same residual at a common state => same algebraic content.
    std::vector<Real> x(static_cast<std::size_t>(base.system.layout.num_unknowns()));
    for (std::size_t u = 0; u < x.size(); ++u) {
      x[u] = base.system.layout.is_resistance(static_cast<Index>(u)) ? 2500.0 : 1.0;
    }
    EXPECT_LT(linalg::relative_error(equations::system_residual(other.system, x),
                                     equations::system_residual(base.system, x)),
              1e-12);
  }
}

TEST(Engine, ScheduleInvariantsHold) {
  const Engine engine = make_engine(6);
  for (const Strategy s : {Strategy::kSingleThread, Strategy::kParallel,
                           Strategy::kBalancedParallel, Strategy::kFineGrained}) {
    const FormationResult r = engine.form_equations(options_for(s, 8));
    const Real work = r.schedule.total_work_seconds;
    EXPECT_GT(work, 0.0);
    EXPECT_GE(r.schedule.makespan_seconds, work / 8.0 - 1e-12);
    EXPECT_LE(r.schedule.efficiency(), 1.0 + 1e-9);
    // Virtual parallel runs never exceed serial time plus slack.
    const FormationResult serial =
        engine.form_equations(options_for(Strategy::kSingleThread, 1));
    EXPECT_LE(r.schedule.makespan_seconds,
              serial.schedule.makespan_seconds * 1.5 + 0.01);
  }
}

TEST(Engine, ParallelStrategyIsCappedAtFourWorkers) {
  const Engine engine = make_engine(5);
  const FormationResult wide = engine.form_equations(options_for(Strategy::kParallel, 32));
  EXPECT_LE(static_cast<Index>(wide.schedule.worker_finish.size()),
            equations::kNumCategories);
}

TEST(Engine, FineGrainedScalesBeyondCategoryBoundStrategies) {
  // At a practical size, PyMP-style parallelism with k = 32 must beat the
  // 4-thread-capped strategies (the Fig. 6 ordering at n >= 20).
  const Engine engine = make_engine(16);
  const Real parallel4 =
      engine.form_equations(options_for(Strategy::kParallel, 32)).virtual_seconds();
  const Real balanced =
      engine.form_equations(options_for(Strategy::kBalancedParallel, 32)).virtual_seconds();
  const Real fine =
      engine.form_equations(options_for(Strategy::kFineGrained, 32, 4)).virtual_seconds();
  EXPECT_LT(balanced, parallel4 * 1.001);  // balancing never hurts the cap-4 regime
  EXPECT_LT(fine, balanced);               // k >> 4 wins at scale
}

TEST(Engine, MemoryCdfPeaksAtSystemFootprint) {
  const Engine engine = make_engine(5);
  const FormationResult r = engine.form_equations(options_for(Strategy::kFineGrained, 4));
  const MemoryCdf cdf = r.memory_cdf(0);
  EXPECT_EQ(cdf.peak_bytes(), r.equation_bytes);
  EXPECT_NEAR(cdf.fraction_at_or_below(r.equation_bytes), 1.0, 1e-9);
}

TEST(Engine, PeakMemoryIndependentOfWorkerCount) {
  // Fig. 8: "the peak memory usage is about the same regardless of data
  // parallelism".
  const Engine engine = make_engine(6);
  const MemoryCdf k2 = engine.form_equations(options_for(Strategy::kFineGrained, 2)).memory_cdf(0);
  const MemoryCdf k16 =
      engine.form_equations(options_for(Strategy::kFineGrained, 16)).memory_cdf(0);
  EXPECT_EQ(k2.peak_bytes(), k16.peak_bytes());
}

TEST(Engine, WriteEquationsProducesShardsOnDisk) {
  const Engine engine = make_engine(4);
  const std::string dir = testing::TempDir() + "parma_core_io";
  std::filesystem::remove_all(dir);
  const IoResult io = engine.write_equations(dir, options_for(Strategy::kFineGrained, 3));
  EXPECT_EQ(io.shard_paths.size(), 3u);
  EXPECT_GT(io.bytes_written, 0u);
  EXPECT_GT(io.write_seconds, 0.0);
  EXPECT_GE(io.virtual_end_to_end, io.formation.virtual_seconds());
  std::uint64_t on_disk = 0;
  for (const auto& p : io.shard_paths) on_disk += std::filesystem::file_size(p);
  EXPECT_GE(on_disk, io.bytes_written);  // shard headers add a little
}

TEST(Engine, DistributedReplayScalesWithWork) {
  const Engine engine = make_engine(12);
  const FormationResult fine = engine.form_equations(options_for(Strategy::kFineGrained, 32));
  const auto at32 = engine.distributed_formation(fine, 32);
  const auto at1024 = engine.distributed_formation(fine, 1024);
  EXPECT_LT(at1024.compute_seconds, at32.compute_seconds);
  EXPECT_GT(at1024.comm_seconds, 0.0);
  EXPECT_GT(at32.makespan_seconds, 0.0);
}

TEST(Engine, RealThreadExecutionMatchesSerialSystem) {
  const Engine engine = make_engine(4);
  equations::EquationSystem parallel_system{equations::UnknownLayout(engine.spec()), {}};
  const Real elapsed = engine.execute_real_threads(4, &parallel_system);
  EXPECT_GT(elapsed, 0.0);
  const FormationResult serial = engine.form_equations(options_for(Strategy::kSingleThread, 1));
  ASSERT_EQ(parallel_system.equations.size(), serial.system.equations.size());
  std::vector<Real> x(static_cast<std::size_t>(serial.system.layout.num_unknowns()), 3000.0);
  for (Index u = serial.system.layout.num_resistors();
       u < serial.system.layout.num_unknowns(); ++u) {
    x[static_cast<std::size_t>(u)] = 2.0;
  }
  EXPECT_LT(linalg::relative_error(equations::system_residual(parallel_system, x),
                                   equations::system_residual(serial.system, x)),
            1e-12);
}

TEST(Engine, RecoverRoundTripsTheInverseProblem) {
  Rng rng(77);
  const mea::DeviceSpec spec = mea::square_device(4);
  mea::GeneratorOptions gen;
  gen.jitter_fraction = 0.01;
  gen.anomalies.push_back({2.0, 2.0, 1.0, 1.0, 9000.0});
  const auto truth = mea::generate_field(spec, gen, rng);
  const Engine engine(mea::measure_exact(spec, truth));
  solver::InverseOptions options;
  options.max_iterations = 80;
  const solver::InverseResult result = engine.recover(options);
  EXPECT_LT(result.max_relative_error(truth), 1e-3);
}

TEST(Engine, StreamingFormationMatchesMaterializedMetrics) {
  // keep_system = false discards equations after measuring them; every
  // metric (census, footprint, task structure) must match the materialized
  // run, and the system must come back empty.
  const Engine engine = make_engine(6);
  StrategyOptions keep = options_for(Strategy::kFineGrained, 8);
  StrategyOptions stream = keep;
  stream.keep_system = false;
  const FormationResult with = engine.form_equations(keep);
  const FormationResult without = engine.form_equations(stream);
  EXPECT_TRUE(without.system.equations.empty());
  EXPECT_EQ(without.equation_bytes, with.equation_bytes);
  ASSERT_EQ(without.tasks.size(), with.tasks.size());
  for (std::size_t t = 0; t < with.tasks.size(); ++t) {
    EXPECT_EQ(without.tasks[t].bytes, with.tasks[t].bytes);
    EXPECT_EQ(without.tasks[t].category, with.tasks[t].category);
  }
}

TEST(Engine, StreamingWriteMatchesMaterializedBytes) {
  const Engine engine = make_engine(4);
  const std::string dir_a = testing::TempDir() + "parma_stream_a";
  const std::string dir_b = testing::TempDir() + "parma_stream_b";
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
  StrategyOptions keep = options_for(Strategy::kFineGrained, 2);
  StrategyOptions stream = keep;
  stream.keep_system = false;
  const IoResult a = engine.write_equations(dir_a, keep);
  const IoResult b = engine.write_equations(dir_b, stream);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  for (std::size_t s = 0; s < a.shard_paths.size(); ++s) {
    EXPECT_EQ(std::filesystem::file_size(a.shard_paths[s]),
              std::filesystem::file_size(b.shard_paths[s]));
  }
}

TEST(Engine, RealThreadsIsTheDefaultTimingMode) {
  const Engine engine = make_engine(4);
  StrategyOptions defaults;
  EXPECT_EQ(defaults.timing_mode, TimingMode::kRealThreads);
  const FormationResult r = engine.form_equations(defaults);
  EXPECT_EQ(r.timing_mode, TimingMode::kRealThreads);
  EXPECT_EQ(static_cast<Index>(r.system.equations.size()), engine.spec().num_equations());
  EXPECT_GT(r.generation_seconds, 0.0);
  EXPECT_EQ(r.effective_workers, defaults.workers);
  // Real runs report a measured summary, not a virtual per-task timeline.
  EXPECT_TRUE(r.schedule.assignment.empty());
  EXPECT_EQ(r.schedule.makespan_seconds, r.generation_seconds);
}

TEST(Engine, RealModeMatchesVirtualSystemForEveryStrategy) {
  const Engine engine = make_engine(4);
  const FormationResult base = engine.form_equations(options_for(Strategy::kSingleThread, 1));
  for (const Strategy s : {Strategy::kSingleThread, Strategy::kParallel,
                           Strategy::kBalancedParallel, Strategy::kFineGrained}) {
    const FormationResult real = engine.form_equations(real_options_for(s, 3));
    ASSERT_EQ(real.system.equations.size(), base.system.equations.size());
    std::vector<Real> x(static_cast<std::size_t>(base.system.layout.num_unknowns()));
    for (std::size_t u = 0; u < x.size(); ++u) {
      x[u] = base.system.layout.is_resistance(static_cast<Index>(u)) ? 2500.0 : 1.0;
    }
    EXPECT_LT(linalg::relative_error(equations::system_residual(real.system, x),
                                     equations::system_residual(base.system, x)),
              1e-12);
  }
}

TEST(Engine, InvalidOptionsAreRejectedWithTypedError) {
  const Engine engine = make_engine(4);
  StrategyOptions zero_workers;
  zero_workers.workers = 0;
  EXPECT_THROW((void)engine.form_equations(zero_workers), InvalidOptions);
  EXPECT_THROW((void)engine.write_equations(testing::TempDir() + "parma_invalid",
                                            zero_workers),
               InvalidOptions);

  StrategyOptions zero_chunk;
  zero_chunk.chunk = 0;
  EXPECT_THROW((void)engine.form_equations(zero_chunk), InvalidOptions);
  EXPECT_THROW(zero_chunk.validate(), InvalidOptions);

  StrategyOptions negative;
  negative.workers = -3;
  EXPECT_THROW(negative.validate(), InvalidOptions);

  // InvalidOptions stays catchable as the base contract error.
  EXPECT_THROW(zero_workers.validate(), ContractError);
  StrategyOptions fine;
  EXPECT_NO_THROW(fine.validate());
}

TEST(Engine, EffectiveWorkersSurfacesTheCategoryCap) {
  const Engine engine = make_engine(4);
  for (const auto mode : {TimingMode::kRealThreads, TimingMode::kVirtualReplay}) {
    StrategyOptions capped = options_for(Strategy::kParallel, 32);
    capped.timing_mode = mode;
    EXPECT_EQ(engine.form_equations(capped).effective_workers, kCategoryWorkerCap);

    StrategyOptions balanced = options_for(Strategy::kBalancedParallel, 9);
    balanced.timing_mode = mode;
    EXPECT_EQ(engine.form_equations(balanced).effective_workers, kCategoryWorkerCap);

    StrategyOptions fine = options_for(Strategy::kFineGrained, 9);
    fine.timing_mode = mode;
    EXPECT_EQ(engine.form_equations(fine).effective_workers, 9);

    StrategyOptions serial = options_for(Strategy::kSingleThread, 9);
    serial.timing_mode = mode;
    EXPECT_EQ(engine.form_equations(serial).effective_workers, 1);
  }
}

TEST(Engine, MemoryCdfRequiresTheVirtualTimeline) {
  const Engine engine = make_engine(4);
  const FormationResult real = engine.form_equations(real_options_for(Strategy::kFineGrained, 2));
  EXPECT_THROW((void)real.memory_cdf(0), ContractError);
}

TEST(Engine, RealWriteEquationsProducesIdenticalShards) {
  const Engine engine = make_engine(4);
  const std::string dir_virtual = testing::TempDir() + "parma_write_virtual";
  const std::string dir_real = testing::TempDir() + "parma_write_real";
  std::filesystem::remove_all(dir_virtual);
  std::filesystem::remove_all(dir_real);
  const IoResult v = engine.write_equations(dir_virtual, options_for(Strategy::kFineGrained, 3));
  const IoResult r =
      engine.write_equations(dir_real, real_options_for(Strategy::kFineGrained, 3));
  ASSERT_EQ(v.shard_paths.size(), r.shard_paths.size());
  EXPECT_EQ(v.bytes_written, r.bytes_written);
  EXPECT_GE(r.virtual_end_to_end, r.write_seconds);
  for (std::size_t s = 0; s < v.shard_paths.size(); ++s) {
    EXPECT_EQ(std::filesystem::file_size(v.shard_paths[s]),
              std::filesystem::file_size(r.shard_paths[s]));
  }
}

TEST(Session, BuilderFormsAndRecovers) {
  Rng rng(91);
  const mea::DeviceSpec spec = mea::square_device(4);
  mea::GeneratorOptions gen;
  gen.jitter_fraction = 0.01;
  gen.anomalies.push_back({2.0, 2.0, 1.0, 1.0, 9000.0});
  const auto truth = mea::generate_field(spec, gen, rng);

  const core::Session session = core::Session::on(mea::measure_exact(spec, truth))
                                    .strategy(Strategy::kFineGrained)
                                    .workers(2)
                                    .chunk(2)
                                    .build();
  const FormationResult formation = session.form();
  EXPECT_EQ(static_cast<Index>(formation.system.equations.size()), spec.num_equations());
  EXPECT_EQ(formation.timing_mode, TimingMode::kRealThreads);
  EXPECT_EQ(formation.effective_workers, 2);

  solver::InverseOptions inverse;
  inverse.max_iterations = 80;
  const solver::InverseResult recovery = session.recover(inverse);
  EXPECT_LT(recovery.max_relative_error(truth), 1e-3);
}

TEST(Session, BuilderRejectsInvalidOptions) {
  const Engine engine = make_engine(4);
  EXPECT_THROW((void)core::Session::on(engine.measurement()).workers(0).build(),
               InvalidOptions);
  EXPECT_THROW((void)core::Session::on(engine.measurement()).chunk(0).build(),
               InvalidOptions);
}

TEST(Session, FormationCacheIsSharedAcrossSessions) {
  const auto cache = std::make_shared<FormationCache>();
  const Engine proto = make_engine(5);

  const core::Session first =
      core::Session::on(proto.measurement()).cache(cache).build();
  const TopologyReport a = first.topology();
  EXPECT_EQ(cache->stats().topology_misses, 1u);
  EXPECT_EQ(cache->stats().topology_hits, 0u);

  const TopologyReport b = first.topology();  // same session: hit
  EXPECT_EQ(cache->stats().topology_hits, 1u);
  EXPECT_EQ(a.betti1, b.betti1);

  // A second session on the same device shape reuses the analysis.
  const core::Session second =
      core::Session::on(make_engine(5, 99).measurement()).cache(cache).build();
  const TopologyReport c = second.topology();
  EXPECT_EQ(cache->stats().topology_hits, 2u);
  EXPECT_EQ(cache->stats().topology_misses, 1u);
  EXPECT_EQ(c.betti1, a.betti1);

  // Layouts are memoized too, and shared by shape.
  const auto layout1 = first.layout();
  const auto layout2 = second.layout();
  EXPECT_EQ(layout1.get(), layout2.get());
  EXPECT_EQ(cache->stats().layout_misses, 1u);
  EXPECT_EQ(cache->stats().layout_hits, 1u);

  // A different shape misses.
  const core::Session other =
      core::Session::on(make_engine(6).measurement()).cache(cache).build();
  (void)other.topology();
  EXPECT_EQ(cache->stats().topology_misses, 2u);

  cache->clear();
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_EQ(cache->stats().topology_hits, 0u);
}

TEST(Session, DefaultsToTheProcessGlobalCache) {
  const Engine proto = make_engine(4);
  const core::Session session = core::Session::on(proto.measurement()).build();
  EXPECT_EQ(session.cache().get(), FormationCache::global().get());
}

TEST(Engine, StrategyNamesAreStable) {
  EXPECT_STREQ(strategy_name(Strategy::kSingleThread), "single-thread");
  EXPECT_STREQ(strategy_name(Strategy::kParallel), "parallel");
  EXPECT_STREQ(strategy_name(Strategy::kBalancedParallel), "balanced-parallel");
  EXPECT_STREQ(strategy_name(Strategy::kFineGrained), "fine-grained");
  EXPECT_STREQ(timing_mode_name(TimingMode::kRealThreads), "real-threads");
  EXPECT_STREQ(timing_mode_name(TimingMode::kVirtualReplay), "virtual-replay");
}

// Property sweep: schedule invariants must hold for every (strategy, n, k)
// combination, not just the hand-picked cases above.
struct SweepCase {
  Strategy strategy;
  Index n;
  Index workers;
};

class StrategySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(StrategySweep, ScheduleIsWellFormed) {
  const SweepCase c = GetParam();
  const Engine engine = make_engine(c.n, 1000 + static_cast<std::uint64_t>(c.n));
  const FormationResult r = engine.form_equations(options_for(c.strategy, c.workers));

  // Census invariants.
  EXPECT_EQ(static_cast<Index>(r.system.equations.size()), engine.spec().num_equations());
  EXPECT_EQ(r.equation_bytes, r.system.footprint_bytes());

  // Schedule invariants.
  const auto& s = r.schedule;
  EXPECT_GT(s.total_work_seconds, 0.0);
  EXPECT_GE(s.makespan_seconds,
            s.total_work_seconds / static_cast<Real>(s.worker_finish.size()) - 1e-12);
  EXPECT_LE(s.efficiency(), 1.0 + 1e-9);
  ASSERT_EQ(s.assignment.size(), r.tasks.size());
  ASSERT_EQ(s.start_time.size(), r.tasks.size());
  for (std::size_t t = 0; t < r.tasks.size(); ++t) {
    EXPECT_GE(s.assignment[t], 0);
    EXPECT_LT(s.assignment[t], static_cast<Index>(s.worker_finish.size()));
    EXPECT_GE(s.start_time[t], 0.0);
    EXPECT_LE(s.start_time[t] + r.tasks[t].cost_seconds, s.makespan_seconds + 1e-9);
  }
  // Memory trace is monotone and peaks at the footprint.
  const MemoryCdf cdf = r.memory_cdf(0);
  EXPECT_EQ(cdf.peak_bytes(), r.equation_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySweep,
    ::testing::Values(SweepCase{Strategy::kSingleThread, 4, 1},
                      SweepCase{Strategy::kSingleThread, 8, 1},
                      SweepCase{Strategy::kParallel, 4, 4},
                      SweepCase{Strategy::kParallel, 8, 32},
                      SweepCase{Strategy::kBalancedParallel, 4, 4},
                      SweepCase{Strategy::kBalancedParallel, 8, 16},
                      SweepCase{Strategy::kFineGrained, 4, 2},
                      SweepCase{Strategy::kFineGrained, 8, 8},
                      SweepCase{Strategy::kFineGrained, 10, 32}));

TEST(Engine, RejectsMalformedInput) {
  mea::Measurement bad;
  bad.spec = mea::square_device(3);
  bad.z = linalg::DenseMatrix(2, 2);  // wrong shape
  bad.u = linalg::DenseMatrix(2, 2);
  EXPECT_THROW(Engine{bad}, ContractError);
}

}  // namespace
}  // namespace parma::core

// Tests for src/common: RNG, string utilities, tables, memory CDFs,
// contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <sstream>

#include "common/logging.hpp"
#include "common/memory_sampler.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace parma {
namespace {

TEST(Require, ThrowsContractErrorWithContext) {
  try {
    PARMA_REQUIRE(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Require, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(PARMA_REQUIRE(2 + 2 == 4, "never shown"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const Real u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(5.0, 5.0), ContractError);
}

TEST(Rng, UniformIndexCoversAllValuesWithoutBias) {
  Rng rng(9);
  std::vector<int> histogram(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++histogram[rng.uniform_index(10)];
  for (int count : histogram) {
    EXPECT_NEAR(count, draws / 10, draws / 10 * 0.15);
  }
  EXPECT_THROW(rng.uniform_index(0), ContractError);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(10);
  Real sum = 0.0;
  Real sum_sq = 0.0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const Real x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / draws, 1.0, 0.03);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent(11);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  Rng child_a2 = parent.fork(1);
  EXPECT_EQ(child_a.next_u64(), child_a2.next_u64());
  EXPECT_NE(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(12);
  std::vector<Index> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v);
  std::set<Index> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtil, SplitWsDropsEmptyFields) {
  const auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, ParseRealAcceptsScientific) {
  EXPECT_DOUBLE_EQ(parse_real("1.5e3", "test"), 1500.0);
  EXPECT_DOUBLE_EQ(parse_real(" -2.25 ", "test"), -2.25);
}

TEST(StringUtil, ParseRealRejectsGarbage) {
  EXPECT_THROW(parse_real("12abc", "ctx"), IoError);
  EXPECT_THROW(parse_real("", "ctx"), IoError);
}

TEST(StringUtil, ParseIndexRejectsNegativeAndGarbage) {
  EXPECT_EQ(parse_index("42", "ctx"), 42);
  EXPECT_THROW(parse_index("-1", "ctx"), IoError);
  EXPECT_THROW(parse_index("x", "ctx"), IoError);
}

TEST(Table, CsvRoundTripShape) {
  Table t({"series", "x", "y"});
  t.add("a", 1, 2.5);
  t.add("b", Index{2}, 3.5);
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("series,x,y"), std::string::npos);
  EXPECT_NE(csv.find("a,1,2.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsRaggedRowsAndCommas) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
  EXPECT_THROW(t.add_row({"x,y", "z"}), ContractError);
}

TEST(Table, SaveCsvCreatesDirectories) {
  Table t({"v"});
  t.add(1);
  const std::string path = testing::TempDir() + "parma_table_test/deep/out.csv";
  t.save_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "v");
}

TEST(MemorySampler, RssReadsNonZeroOnLinux) {
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

TEST(HeapModel, TracksLiveAndPeak) {
  HeapModel heap;
  heap.allocate(0.0, 100);
  heap.allocate(1.0, 50);
  heap.release(2.0, 100);
  EXPECT_EQ(heap.live_bytes(), 50u);
  EXPECT_EQ(heap.peak_bytes(), 150u);
  EXPECT_THROW(heap.release(3.0, 1000), ContractError);
}

TEST(MemoryCdf, StepFunctionFractions) {
  // 0..1s at 100 bytes, 1..4s at 200 bytes: 25% of time <= 100.
  MemoryCdf cdf({{0.0, 100}, {1.0, 200}, {4.0, 200}});
  EXPECT_NEAR(cdf.fraction_at_or_below(100), 0.25, 1e-12);
  EXPECT_NEAR(cdf.fraction_at_or_below(200), 1.0, 1e-12);
  EXPECT_EQ(cdf.fraction_at_or_below(50), 0.0);
  EXPECT_EQ(cdf.peak_bytes(), 200u);
}

TEST(MemoryCdf, QuantileInvertsFraction) {
  MemoryCdf cdf({{0.0, 10}, {5.0, 90}, {10.0, 90}});
  EXPECT_EQ(cdf.quantile_bytes(0.4), 10u);
  EXPECT_EQ(cdf.quantile_bytes(0.9), 90u);
  EXPECT_THROW((void)cdf.quantile_bytes(1.5), ContractError);
}

TEST(MemoryCdf, HandlesDegenerateTraces) {
  EXPECT_TRUE(MemoryCdf({}).empty());
  MemoryCdf single({{0.0, 42}});
  EXPECT_EQ(single.peak_bytes(), 42u);
  EXPECT_NEAR(single.fraction_at_or_below(42), 1.0, 1e-12);
}

TEST(Logging, LevelThresholdIsRespected) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // Must not crash and must not emit (nothing observable to assert beyond
  // not aborting; the threshold getter round-trips).
  PARMA_LOG_INFO << "suppressed message";
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  PARMA_LOG_DEBUG << "visible at debug";
  set_log_level(original);
}

TEST(Logging, MessagesAreThreadSafe) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);  // exercise the path without spamming stderr
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) PARMA_LOG_WARN << "concurrent " << i;
    });
  }
  for (auto& th : threads) th.join();
  set_log_level(original);
}

TEST(RssSampler, CollectsMonotonicTimestamps) {
  std::vector<MemorySample> samples;
  {
    RssSampler sampler(0.001);
    volatile double burn = 1.0;
    for (int i = 0; i < 2000000; ++i) burn = burn * 1.0000001;
    samples = sampler.stop();
  }
  ASSERT_GE(samples.size(), 1u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].time_seconds, samples[i - 1].time_seconds);
    EXPECT_GT(samples[i].bytes, 0u);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  // Burn a little CPU deterministically.
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  EXPECT_GT(sw.elapsed_seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

}  // namespace
}  // namespace parma

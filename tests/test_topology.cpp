// Tests for src/topology: simplices, complexes, GF(2) algebra, boundary
// operators, Betti numbers, cycle bases, and the MEA abstractions of
// Proposition 1.
#include <gtest/gtest.h>

#include <sstream>

#include "common/require.hpp"
#include "topology/boundary.hpp"
#include "topology/cycle_basis.hpp"
#include "topology/gf2_matrix.hpp"
#include "topology/grid_complex.hpp"
#include "topology/simplex.hpp"
#include "topology/simplicial_complex.hpp"

namespace parma::topology {
namespace {

TEST(Simplex, SortsAndDeduplicates) {
  const Simplex s{3, 1, 2, 1};
  EXPECT_EQ(s.dimension(), 2);
  EXPECT_EQ(s.vertices(), (std::vector<Index>{1, 2, 3}));
}

TEST(Simplex, EmptySimplexHasDimensionMinusOne) {
  EXPECT_EQ(Simplex{}.dimension(), -1);
  EXPECT_TRUE(Simplex{}.facets().empty());
}

TEST(Simplex, FacetsOfTriangle) {
  const Simplex triangle{0, 1, 2};
  const auto facets = triangle.facets();
  ASSERT_EQ(facets.size(), 3u);
  for (const auto& f : facets) EXPECT_EQ(f.dimension(), 1);
}

TEST(Simplex, AllFacesCountsPowerSet) {
  const Simplex triangle{0, 1, 2};
  EXPECT_EQ(triangle.all_faces().size(), 8u);  // incl. empty set
}

TEST(Simplex, FaceAndIntersection) {
  const Simplex tetra{0, 1, 2, 3};
  EXPECT_TRUE(tetra.has_face(Simplex{1, 3}));
  EXPECT_FALSE(Simplex({0, 1}).has_face(tetra));
  EXPECT_EQ(Simplex({0, 1, 2}).intersect(Simplex{1, 2, 3}), (Simplex{1, 2}));
}

TEST(Simplex, StreamRendering) {
  std::ostringstream os;
  os << Simplex{2, 0};
  EXPECT_EQ(os.str(), "{0,2}");
}

TEST(Complex, InsertClosesUnderFaces) {
  SimplicialComplex k;
  k.insert(Simplex{0, 1, 2});
  EXPECT_EQ(k.count(2), 1);
  EXPECT_EQ(k.count(1), 3);
  EXPECT_EQ(k.count(0), 3);
  EXPECT_TRUE(k.contains(Simplex{0, 2}));
  EXPECT_EQ(k.dimension(), 2);
  EXPECT_EQ(k.euler_characteristic(), 1);  // a filled triangle is contractible
}

TEST(Complex, Figure3SoupIsNotAComplex) {
  // Two triangles glued along segment {b, f} that is not an edge of either:
  // vertices a=0 b=1 c=2, d=3 e=4 f=5, shared segment {1, 5}.
  std::vector<Simplex> soup{{0}, {1}, {2}, {3},      {4},    {5},    {0, 1},
                            {1, 2}, {0, 2}, {3, 4}, {3, 5}, {4, 5}, {0, 1, 2},
                            {3, 4, 5}, {1, 5}};
  // With {1,5} listed as a raw segment the face-closure holds, but the two
  // triangles' planes cross it -- the paper's figure. Model the crossing by
  // giving triangle {3,4,5} the extra face {1,5} it geometrically overlaps:
  // the soup without {1,5} listed must fail face-closure once a simplex
  // {1, 3, 5} referencing it exists.
  soup.push_back(Simplex{1, 3, 5});
  soup.push_back(Simplex{1, 3});
  EXPECT_TRUE(SimplicialComplex::soup_is_valid_complex(soup));
  // Remove the shared segment from the listing: intersection {1,5} of
  // {0,1,5}... construct directly the violating pair instead.
  std::vector<Simplex> violating{{0, 1, 5}, {1, 5, 4}, {0, 1}, {0, 5}, {1, 5},
                                 {1, 4},    {5, 4},    {0},    {1},    {5},
                                 {4}};
  EXPECT_TRUE(SimplicialComplex::soup_is_valid_complex(violating));
  // Now a pair whose overlap {1,5} is NOT listed:
  std::vector<Simplex> bad{{0, 1, 5}, {1, 5, 4}, {0, 1}, {0, 5}, {1, 4}, {5, 4},
                           {0},       {1},       {5},    {4}};
  EXPECT_FALSE(SimplicialComplex::soup_is_valid_complex(bad));
}

TEST(Gf2, SetGetAndRowAddition) {
  Gf2Matrix m(2, 70);  // spans two 64-bit words
  m.set(0, 0, true);
  m.set(0, 69, true);
  m.set(1, 69, true);
  m.add_row(0, 1);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_FALSE(m.get(0, 69));  // cancelled mod 2
}

TEST(Gf2, RankOfIdentityAndSingular) {
  Gf2Matrix id(4, 4);
  for (Index i = 0; i < 4; ++i) id.set(i, i, true);
  EXPECT_EQ(id.rank(), 4);

  Gf2Matrix dup(2, 3);
  dup.set(0, 0, true);
  dup.set(0, 1, true);
  dup.set(1, 0, true);
  dup.set(1, 1, true);  // identical rows
  EXPECT_EQ(dup.rank(), 1);
}

TEST(Gf2, NullSpaceSatisfiesRankNullity) {
  Gf2Matrix m(3, 5);
  m.set(0, 0, true);
  m.set(0, 2, true);
  m.set(1, 1, true);
  m.set(1, 2, true);
  m.set(2, 3, true);
  const auto basis = m.null_space_basis();
  EXPECT_EQ(static_cast<Index>(basis.size()), 5 - m.rank());
  // Every basis vector must actually be in the kernel.
  for (const auto& x : basis) {
    for (Index r = 0; r < 3; ++r) {
      bool parity = false;
      for (Index c = 0; c < 5; ++c) {
        parity ^= (m.get(r, c) && x[static_cast<std::size_t>(c)]);
      }
      EXPECT_FALSE(parity);
    }
  }
}

TEST(Gf2, MultiplyAssociatesWithRank) {
  Gf2Matrix a(2, 2);
  a.set(0, 0, true);
  a.set(0, 1, true);
  a.set(1, 1, true);
  const Gf2Matrix a2 = a.multiply(a);
  // a is invertible over GF(2) so a^2 has full rank.
  EXPECT_EQ(a2.rank(), 2);
  EXPECT_FALSE(a2.is_zero());
}

TEST(Boundary, SquaredIsZeroOnFilledTetrahedron) {
  SimplicialComplex k;
  k.insert(Simplex{0, 1, 2, 3});
  EXPECT_TRUE(boundary_squared_is_zero(k));
}

TEST(Boundary, BettiOfPathGraph) {
  SimplicialComplex k;
  k.insert(Simplex{0, 1});
  k.insert(Simplex{1, 2});
  EXPECT_EQ(betti_number(k, 0), 1);  // connected
  EXPECT_EQ(betti_number(k, 1), 0);  // no loop
}

TEST(Boundary, BettiOfCircle) {
  SimplicialComplex k;  // triangle boundary, not filled
  k.insert(Simplex{0, 1});
  k.insert(Simplex{1, 2});
  k.insert(Simplex{0, 2});
  EXPECT_EQ(betti_number(k, 0), 1);
  EXPECT_EQ(betti_number(k, 1), 1);  // one hole
}

TEST(Boundary, FillingTheTriangleKillsTheHole) {
  SimplicialComplex k;
  k.insert(Simplex{0, 1, 2});
  EXPECT_EQ(betti_number(k, 1), 0);
}

TEST(Boundary, BettiOfTwoComponentsWithTwoHoles) {
  SimplicialComplex k;
  // Square cycle 0-1-2-3 and separate triangle cycle 4-5-6.
  k.insert(Simplex{0, 1});
  k.insert(Simplex{1, 2});
  k.insert(Simplex{2, 3});
  k.insert(Simplex{0, 3});
  k.insert(Simplex{4, 5});
  k.insert(Simplex{5, 6});
  k.insert(Simplex{4, 6});
  EXPECT_EQ(betti_number(k, 0), 2);
  EXPECT_EQ(betti_number(k, 1), 2);
}

TEST(Boundary, SphereBoundaryOfTetrahedron) {
  // The four triangular faces of a tetrahedron (not filled) form S^2:
  // beta = (1, 0, 1).
  SimplicialComplex k;
  k.insert(Simplex{0, 1, 2});
  k.insert(Simplex{0, 1, 3});
  k.insert(Simplex{0, 2, 3});
  k.insert(Simplex{1, 2, 3});
  const auto betti = betti_numbers(k);
  ASSERT_EQ(betti.size(), 3u);
  EXPECT_EQ(betti[0], 1);
  EXPECT_EQ(betti[1], 0);
  EXPECT_EQ(betti[2], 1);
}

TEST(Boundary, EulerCharacteristicMatchesAlternatingBetti) {
  SimplicialComplex k;
  k.insert(Simplex{0, 1, 2});
  k.insert(Simplex{2, 3});
  k.insert(Simplex{3, 4});
  k.insert(Simplex{2, 4});
  const auto betti = betti_numbers(k);
  Index chi = 0;
  for (std::size_t d = 0; d < betti.size(); ++d) {
    chi += (d % 2 == 0 ? betti[d] : -betti[d]);
  }
  EXPECT_EQ(chi, k.euler_characteristic());
}

TEST(CycleBasis, TreeHasNoCycles) {
  CycleBasis basis(4, {{0, 1}, {1, 2}, {1, 3}});
  EXPECT_EQ(basis.cyclomatic_number(), 0);
  EXPECT_TRUE(basis.cycles().empty());
  EXPECT_EQ(basis.num_components(), 1);
}

TEST(CycleBasis, SquareHasOneValidCycle) {
  CycleBasis basis(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(basis.cyclomatic_number(), 1);
  ASSERT_EQ(basis.cycles().size(), 1u);
  EXPECT_TRUE(basis.is_valid_cycle(basis.cycles()[0]));
  EXPECT_EQ(basis.cycles()[0].vertices.size(), 4u);
}

TEST(CycleBasis, DisconnectedComponentsCounted) {
  CycleBasis basis(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  EXPECT_EQ(basis.num_components(), 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(basis.cyclomatic_number(), 1);
}

TEST(CycleBasis, FastCountAgreesWithConstruction) {
  const std::vector<GraphEdge> edges{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}};
  EXPECT_EQ(cyclomatic_number(5, edges), CycleBasis(5, edges).cyclomatic_number());
}

TEST(CycleBasis, EveryFundamentalCycleIsValid) {
  // K_{3,3}: 9 edges, 6 vertices, beta_1 = 4.
  const auto edges = build_bipartite_graph(3, 3);
  CycleBasis basis(6, edges);
  EXPECT_EQ(basis.cyclomatic_number(), 4);
  EXPECT_EQ(basis.cycles().size(), 4u);
  for (const auto& c : basis.cycles()) EXPECT_TRUE(basis.is_valid_cycle(c));
}

// --- MEA abstractions -------------------------------------------------------

class WireComplexBetti : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(WireComplexBetti, HomologyMatchesClosedFormAndCyclomatic) {
  const auto [m, n] = GetParam();
  const WireComplex wc = build_wire_complex(m, n);
  EXPECT_EQ(wc.num_vertices, 2 * m * n);
  EXPECT_EQ(wc.complex.count(0), 2 * m * n);
  EXPECT_EQ(static_cast<Index>(wc.resistor_edges.size()), m * n);

  // GF(2) homology, spanning-tree cyclomatic number, and the closed form
  // (m-1)(n-1) must all coincide.
  const Index beta1 = betti_number(wc.complex, 1);
  EXPECT_EQ(beta1, expected_betti1_crossbar(m, n));
  EXPECT_EQ(beta1, CycleBasis(wc.num_vertices, wc.edges).cyclomatic_number());
  EXPECT_EQ(betti_number(wc.complex, 0), 1);
  EXPECT_TRUE(satisfies_proposition1(wc));
  EXPECT_TRUE(boundary_squared_is_zero(wc.complex));
}

INSTANTIATE_TEST_SUITE_P(Devices, WireComplexBetti,
                         ::testing::Values(std::pair<Index, Index>{2, 2},
                                           std::pair<Index, Index>{3, 3},
                                           std::pair<Index, Index>{2, 5},
                                           std::pair<Index, Index>{4, 3},
                                           std::pair<Index, Index>{5, 5}));

TEST(WireComplex, Figure1DeviceHas18Joints) {
  const WireComplex wc = build_wire_complex(3, 3);
  EXPECT_EQ(wc.num_vertices, 18);                           // paper's joints 0..17
  EXPECT_EQ(static_cast<Index>(wc.edges.size()), 9 + 2 * 3 * 2);  // 9 R + 12 segments
  EXPECT_EQ(betti_number(wc.complex, 1), 4);                // (3-1)^2
}

TEST(BipartiteGraph, EdgeOrderMatchesResistorLayout) {
  const auto edges = build_bipartite_graph(2, 3);
  ASSERT_EQ(edges.size(), 6u);
  // Edge (i, j) at index i*n + j joins node i and node m + j.
  EXPECT_EQ(edges[4].u, 1);      // i = 1, j = 1
  EXPECT_EQ(edges[4].v, 2 + 1);  // m + j
}

class LatticeBetti : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(LatticeBetti, MatchesClosedForm) {
  const auto [n, dims] = GetParam();
  const LatticeComplex lc = build_lattice_complex(n, dims);
  const Index beta1 = CycleBasis(lc.num_vertices, lc.edges).cyclomatic_number();
  EXPECT_EQ(beta1, expected_betti1_lattice(n, dims));
  if (lc.num_vertices <= 64) {
    EXPECT_EQ(betti_number(lc.complex, 1), beta1);
  }
}

INSTANTIATE_TEST_SUITE_P(Lattices, LatticeBetti,
                         ::testing::Values(std::pair<Index, Index>{4, 1},
                                           std::pair<Index, Index>{3, 2},
                                           std::pair<Index, Index>{4, 2},
                                           std::pair<Index, Index>{3, 3},
                                           std::pair<Index, Index>{2, 4}));

TEST(Lattice, OneDimensionalChainHasNoLoops) {
  const LatticeComplex lc = build_lattice_complex(7, 1);
  EXPECT_EQ(expected_betti1_lattice(7, 1), 0);
  EXPECT_EQ(CycleBasis(lc.num_vertices, lc.edges).cyclomatic_number(), 0);
}

TEST(WireComplex, RectangularDevicesSatisfyProposition1) {
  for (const auto& [m, n] : std::vector<std::pair<Index, Index>>{{2, 7}, {6, 2}, {4, 5}}) {
    const WireComplex wc = build_wire_complex(m, n);
    EXPECT_TRUE(satisfies_proposition1(wc)) << m << "x" << n;
    EXPECT_EQ(wc.complex.dimension(), 1);
  }
}

TEST(WireComplex, EulerCharacteristicMatchesBettiDifference) {
  // chi = V - E = beta_0 - beta_1 for a 1-complex.
  const WireComplex wc = build_wire_complex(4, 4);
  const Index chi = wc.complex.euler_characteristic();
  EXPECT_EQ(chi, 1 - expected_betti1_crossbar(4, 4));
}

TEST(CycleBasis, MultigraphParallelEdgesFormCycles) {
  // Two parallel edges between the same endpoints are one independent cycle
  // (the circuit-theoretic "parallel resistors" loop).
  CycleBasis basis(2, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(basis.cyclomatic_number(), 2);
}

TEST(Lattice, TwoDimGridBettiIsSquareOfNMinus1) {
  // The paper's (n-1)^k parallelism claim for k = 2.
  EXPECT_EQ(expected_betti1_lattice(10, 2), 81);
  EXPECT_EQ(expected_betti1_crossbar(10, 10), 81);
}

}  // namespace
}  // namespace parma::topology

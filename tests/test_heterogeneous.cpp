// Tests for the heterogeneous-cluster extension (paper future work).
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "mpisim/heterogeneous.hpp"

namespace parma::mpisim {
namespace {

std::vector<parallel::VirtualTask> uniform_work(int count, Real cost) {
  std::vector<parallel::VirtualTask> tasks(static_cast<std::size_t>(count));
  for (auto& t : tasks) t = {cost, 0, 100};
  return tasks;
}

TEST(Fleet, Builders) {
  const auto uniform = uniform_fleet(4, 2.0);
  ASSERT_EQ(uniform.size(), 4u);
  EXPECT_DOUBLE_EQ(uniform[3].speed, 2.0);

  const auto tiered = two_tier_fleet(10, 0.3, 4.0, 1.0);
  Index fast = 0;
  for (const auto& r : tiered) fast += (r.speed == 4.0);
  EXPECT_EQ(fast, 3);
  EXPECT_THROW(two_tier_fleet(4, 1.5, 1.0, 1.0), ContractError);
  EXPECT_THROW(uniform_fleet(0), ContractError);
}

TEST(Partition, BlockCoversAllTasksContiguously) {
  const Partition p = block_partition(103, 8);
  ASSERT_EQ(p.size(), 8u);
  EXPECT_EQ(p.front().first, 0u);
  EXPECT_EQ(p.back().second, 103u);
  for (std::size_t r = 1; r < p.size(); ++r) EXPECT_EQ(p[r].first, p[r - 1].second);
}

TEST(Partition, SpeedWeightedGivesFasterRanksMoreWork) {
  const auto tasks = uniform_work(100, 0.01);
  const auto fleet = two_tier_fleet(4, 0.5, 3.0, 1.0);  // ranks 0,1 fast
  const Partition p = speed_weighted_partition(tasks, fleet);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.back().second, 100u);
  const auto share = [&](std::size_t r) { return p[r].second - p[r].first; };
  EXPECT_GT(share(0), share(2) * 2);  // 3x speed -> ~3x tasks
  EXPECT_NEAR(static_cast<Real>(share(0)), 37.5, 3.0);
}

TEST(Partition, SpeedWeightedReducesToBlockOnUniformFleet) {
  const auto tasks = uniform_work(64, 0.01);
  const Partition weighted = speed_weighted_partition(tasks, uniform_fleet(8));
  const Partition block = block_partition(64, 8);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(static_cast<Real>(weighted[r].second),
                static_cast<Real>(block[r].second), 1.0);
  }
}

TEST(Heterogeneous, BlockPartitionStragglesOnMixedFleet) {
  const auto tasks = uniform_work(400, 0.005);
  const auto fleet = two_tier_fleet(8, 0.5, 4.0, 1.0);
  const auto block = simulate_heterogeneous(tasks, fleet, block_partition(tasks.size(), 8));
  const auto weighted =
      simulate_heterogeneous(tasks, fleet, speed_weighted_partition(tasks, fleet));
  // The slow ranks dominate the block split; weighting fixes it.
  EXPECT_GT(block.imbalance(), 3.0);
  EXPECT_LT(weighted.imbalance(), 1.3);
  EXPECT_LT(weighted.makespan_seconds, block.makespan_seconds * 0.7);
}

TEST(Heterogeneous, UniformFleetMatchesHomogeneousModel) {
  const auto tasks = uniform_work(128, 0.002);
  const auto hetero = simulate_heterogeneous(tasks, uniform_fleet(16),
                                             block_partition(tasks.size(), 16));
  const ClusterResult homo = simulate_cluster(tasks, 16);
  EXPECT_NEAR(hetero.makespan_seconds, homo.makespan_seconds,
              homo.makespan_seconds * 0.05);
}

TEST(Heterogeneous, FasterFleetFinishesSooner) {
  const auto tasks = uniform_work(256, 0.004);
  const auto slow =
      simulate_heterogeneous(tasks, uniform_fleet(8, 1.0), block_partition(tasks.size(), 8));
  const auto fast =
      simulate_heterogeneous(tasks, uniform_fleet(8, 2.0), block_partition(tasks.size(), 8));
  EXPECT_LT(fast.compute_seconds, slow.compute_seconds * 0.6);
}

TEST(Heterogeneous, ValidatesShapes) {
  const auto tasks = uniform_work(10, 0.01);
  EXPECT_THROW(
      simulate_heterogeneous(tasks, uniform_fleet(4), block_partition(tasks.size(), 3)),
      ContractError);
  Partition bad = block_partition(10, 2);
  bad[1].second = 99;
  EXPECT_THROW(simulate_heterogeneous(tasks, uniform_fleet(2), bad), ContractError);
}

}  // namespace
}  // namespace parma::mpisim

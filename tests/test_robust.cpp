// Tests for the robustness layer: measurement masks, IRLS robust losses,
// termination taxonomy, conditioning guardrails, and quality-aware serving.
//
// The two load-bearing contracts:
//   1. bit-identity -- an all-true mask and RobustLoss::kNone change NOTHING:
//      formation, both solvers, and the serve pipeline produce bitwise the
//      same results as the pre-robust code paths;
//   2. graceful degradation -- corrupt or missing entries cost accuracy
//      smoothly (bounded, roughly monotone in the corruption fraction), and
//      the robust+masked configuration beats plain least squares on the same
//      dirty sweep.
// Carries the `tsan` ctest label; RobustChaos.* additionally runs under the
// `chaos` label with three distinct PARMA_CHAOS_SEED values.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "core/formation_cache.hpp"
#include "equations/generator.hpp"
#include "fault/injector.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "serve/server.hpp"
#include "solver/full_system_solver.hpp"
#include "solver/inverse_solver.hpp"
#include "solver/robust.hpp"

namespace parma {
namespace {

using namespace std::chrono_literals;

struct Scenario {
  mea::DeviceSpec spec;
  circuit::ResistanceGrid truth{1, 1};
  mea::Measurement measurement;
};

Scenario make_scenario(Index n, std::uint64_t seed, Real noise = 0.0) {
  Rng rng(seed);
  Scenario s{mea::square_device(n), circuit::ResistanceGrid(1, 1), {}};
  s.truth = mea::generate_field(s.spec, mea::random_scenario(s.spec, 1, rng), rng);
  mea::MeasurementOptions mopt;
  mopt.noise_fraction = noise;
  s.measurement = mea::measure(s.spec, s.truth, mopt, rng);
  return s;
}

// Multiplies `count` deterministic entries of Z by a gross factor -- the
// adversarial single-point corruption a robust loss must absorb.
std::vector<Index> corrupt_entries(mea::Measurement& m, Index count, std::uint64_t seed,
                                   Real factor = 10.0) {
  Rng rng(seed);
  const Index rows = m.z.rows();
  const Index cols = m.z.cols();
  std::vector<Index> corrupted;
  while (static_cast<Index>(corrupted.size()) < count) {
    const Index p = static_cast<Index>(rng.uniform(0.0, 1.0) *
                                       static_cast<Real>(rows * cols));
    const Index clamped = std::min(p, rows * cols - 1);
    if (std::find(corrupted.begin(), corrupted.end(), clamped) != corrupted.end()) continue;
    corrupted.push_back(clamped);
    m.z(clamped / cols, clamped % cols) *= factor;
  }
  std::sort(corrupted.begin(), corrupted.end());
  return corrupted;
}

Real median_abs_rel_error(const circuit::ResistanceGrid& recovered,
                          const circuit::ResistanceGrid& truth) {
  std::vector<Real> errs;
  errs.reserve(truth.flat().size());
  for (std::size_t e = 0; e < truth.flat().size(); ++e) {
    errs.push_back(std::abs(recovered.flat()[e] - truth.flat()[e]) /
                   std::abs(truth.flat()[e]));
  }
  std::nth_element(errs.begin(), errs.begin() + static_cast<std::ptrdiff_t>(errs.size() / 2),
                   errs.end());
  return errs[errs.size() / 2];
}

// ---------------------------------------------------------------- mea layer

TEST(Mask, SignatureContract) {
  mea::MeasurementMask mask(3, 3);
  EXPECT_TRUE(mask.all_valid());
  EXPECT_EQ(mask.signature(), 0u);  // all-valid == "no mask at all"
  mask.drop(1, 2);
  EXPECT_EQ(mask.masked_count(), 1);
  EXPECT_NE(mask.signature(), 0u);
  mea::MeasurementMask other(3, 3);
  other.drop(2, 1);
  EXPECT_NE(mask.signature(), other.signature());
}

TEST(Mask, MaskInvalidEntriesMasksNonFiniteAndNonPositive) {
  Scenario s = make_scenario(3, 900);
  s.measurement.z(0, 0) = std::numeric_limits<Real>::quiet_NaN();
  s.measurement.z(1, 1) = -5.0;
  s.measurement.z(2, 2) = 0.0;
  EXPECT_EQ(mea::mask_invalid_entries(s.measurement), 3);
  EXPECT_EQ(mea::masked_entry_count(s.measurement), 3);
  EXPECT_FALSE(mea::entry_valid(s.measurement, 0, 0));
  EXPECT_FALSE(mea::entry_valid(s.measurement, 1, 1));
  EXPECT_FALSE(mea::entry_valid(s.measurement, 2, 2));
  // Idempotent: the already-masked entries are not re-counted.
  EXPECT_EQ(mea::mask_invalid_entries(s.measurement), 0);
  // The masked payload now validates (the garbage is never read).
  EXPECT_NO_THROW(mea::validate_measurement(s.measurement));
}

TEST(Mask, ValidateMeasurementTypedDiagnostics) {
  Scenario s = make_scenario(3, 901);
  mea::Measurement good = s.measurement;
  EXPECT_NO_THROW(mea::validate_measurement(good));

  mea::Measurement nan_z = s.measurement;
  nan_z.z(1, 0) = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_THROW(mea::validate_measurement(nan_z), mea::InvalidMeasurement);

  mea::Measurement bad_volts = s.measurement;
  bad_volts.spec.drive_voltage = -1.0;
  EXPECT_THROW(mea::validate_measurement(bad_volts), mea::InvalidMeasurement);
  bad_volts.spec.drive_voltage = std::numeric_limits<Real>::infinity();
  EXPECT_THROW(mea::validate_measurement(bad_volts), mea::InvalidMeasurement);

  mea::Measurement bad_mask = s.measurement;
  bad_mask.mask = mea::MeasurementMask(2, 2);  // shape mismatch
  EXPECT_THROW(mea::validate_measurement(bad_mask), mea::InvalidMeasurement);

  mea::Measurement all_masked = s.measurement;
  all_masked.mask = mea::MeasurementMask(3, 3);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) all_masked.mask->drop(i, j);
  }
  EXPECT_THROW(mea::validate_measurement(all_masked), mea::InvalidMeasurement);
}

// ----------------------------------------------------------- formation layer

TEST(MaskedFormation, DropsExactlyTheTerminalEquationsOfMaskedPairs) {
  Scenario s = make_scenario(4, 910);
  const equations::EquationSystem full = equations::generate_system(s.measurement);
  EXPECT_EQ(full.mask_signature, 0u);

  mea::Measurement masked = s.measurement;
  masked.mask = mea::MeasurementMask(4, 4);
  masked.mask->drop(0, 1);
  masked.mask->drop(3, 2);
  const equations::EquationSystem partial = equations::generate_system(masked);
  EXPECT_NE(partial.mask_signature, 0u);
  EXPECT_EQ(static_cast<Index>(partial.equations.size()),
            static_cast<Index>(full.equations.size()) - 4);
  EXPECT_EQ(static_cast<Index>(partial.equations.size()),
            equations::expected_equation_count(masked));
}

TEST(MaskedFormation, AllTrueMaskIsBitIdenticalToUnmasked) {
  Scenario s = make_scenario(4, 911);
  const equations::EquationSystem plain = equations::generate_system(s.measurement);

  mea::Measurement masked = s.measurement;
  masked.mask = mea::MeasurementMask(4, 4);  // every bit set
  const equations::EquationSystem via_mask = equations::generate_system(masked);

  EXPECT_EQ(via_mask.mask_signature, 0u);
  ASSERT_EQ(via_mask.equations.size(), plain.equations.size());
  for (std::size_t e = 0; e < plain.equations.size(); ++e) {
    EXPECT_EQ(via_mask.equations[e].rhs, plain.equations[e].rhs);
    ASSERT_EQ(via_mask.equations[e].terms.size(), plain.equations[e].terms.size());
  }
}

TEST(MaskedFormation, FormationCacheKeysSymbolicsOnMaskSignature) {
  Scenario s = make_scenario(4, 912);
  core::FormationCache cache;
  const equations::EquationSystem plain = equations::generate_system(s.measurement);

  mea::Measurement all_true = s.measurement;
  all_true.mask = mea::MeasurementMask(4, 4);
  const equations::EquationSystem same_shape = equations::generate_system(all_true);

  mea::Measurement holey = s.measurement;
  holey.mask = mea::MeasurementMask(4, 4);
  holey.mask->drop(2, 2);
  const equations::EquationSystem different = equations::generate_system(holey);

  const auto first = cache.system_symbolic(plain);
  const auto second = cache.system_symbolic(same_shape);   // all-true: shares
  const auto third = cache.system_symbolic(different);     // holey: new entry
  EXPECT_EQ(first.get(), second.get());
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(cache.stats().symbolic_hits, 1u);
  EXPECT_EQ(cache.stats().symbolic_misses, 2u);
}

// ------------------------------------------------------------- robust module

TEST(RobustModule, ScaleWeightsAndCost) {
  std::vector<Real> residual{0.0, 0.1, -0.1, 0.05, 100.0};
  std::vector<Real> scratch;
  const Real sigma = solver::robust_scale(residual, scratch, 1e-12);
  EXPECT_GT(sigma, 0.0);
  EXPECT_LT(sigma, 1.0);  // the gross outlier must not inflate the MAD

  std::vector<Real> weights;
  const Index down = solver::robust_weights(residual, sigma, solver::RobustLoss::kHuber,
                                            1.345, weights);
  ASSERT_EQ(weights.size(), residual.size());
  EXPECT_GE(down, 1);
  EXPECT_LT(weights[4], 0.05);          // outlier heavily down-weighted
  EXPECT_DOUBLE_EQ(weights[0], 1.0);    // small residuals untouched

  std::vector<Real> tukey_weights;
  solver::robust_weights(residual, sigma, solver::RobustLoss::kTukey, 4.685, tukey_weights);
  EXPECT_EQ(tukey_weights[4], 0.0);     // redescending: gross outlier killed

  const Real cost = solver::robust_cost(residual, sigma, solver::RobustLoss::kHuber, 1.345);
  EXPECT_TRUE(std::isfinite(cost));
  EXPECT_GT(cost, 0.0);
}

TEST(RobustModule, DiagonalConditionEstimate) {
  EXPECT_DOUBLE_EQ(solver::diagonal_condition_estimate({2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(solver::diagonal_condition_estimate({1.0, 100.0}), 100.0);
  EXPECT_TRUE(std::isinf(solver::diagonal_condition_estimate({1.0, 0.0})));
  EXPECT_TRUE(std::isinf(solver::diagonal_condition_estimate(
      {1.0, std::numeric_limits<Real>::quiet_NaN()})));
}

TEST(RobustModule, NamesAreStable) {
  EXPECT_STREQ(solver::robust_loss_name(solver::RobustLoss::kNone), "none");
  EXPECT_STREQ(solver::robust_loss_name(solver::RobustLoss::kHuber), "huber");
  EXPECT_STREQ(solver::robust_loss_name(solver::RobustLoss::kTukey), "tukey");
  EXPECT_STREQ(solver::termination_reason_name(solver::TerminationReason::kToleranceReached),
               "tolerance-reached");
  EXPECT_STREQ(solver::termination_reason_name(solver::TerminationReason::kMaxIterations),
               "max-iterations");
  EXPECT_STREQ(solver::termination_reason_name(solver::TerminationReason::kStalled),
               "stalled");
  EXPECT_STREQ(
      solver::termination_reason_name(solver::TerminationReason::kNumericalBreakdown),
      "numerical-breakdown");
}

// --------------------------------------------------------------- LM solver

TEST(RobustLm, RobustOffIsBitIdenticalWithAllTrueMask) {
  const Scenario s = make_scenario(4, 920);
  solver::InverseOptions options;
  options.max_iterations = 40;
  const solver::InverseResult plain = solver::recover_resistances(s.measurement, options);

  mea::Measurement masked = s.measurement;
  masked.mask = mea::MeasurementMask(4, 4);
  const solver::InverseResult via_mask = solver::recover_resistances(masked, options);

  ASSERT_EQ(via_mask.recovered.flat().size(), plain.recovered.flat().size());
  for (std::size_t e = 0; e < plain.recovered.flat().size(); ++e) {
    EXPECT_EQ(via_mask.recovered.flat()[e], plain.recovered.flat()[e]) << "entry " << e;
  }
  EXPECT_EQ(via_mask.iterations, plain.iterations);
  EXPECT_EQ(via_mask.final_misfit, plain.final_misfit);
}

TEST(RobustLm, TerminationReasonIsTyped) {
  const Scenario s = make_scenario(3, 921);
  solver::InverseOptions options;
  options.max_iterations = 60;
  options.tolerance = 1e-10;
  const solver::InverseResult converged = solver::recover_resistances(s.measurement, options);
  EXPECT_TRUE(converged.converged);
  EXPECT_EQ(converged.termination, solver::TerminationReason::kToleranceReached);

  solver::InverseOptions one_iter = options;
  one_iter.max_iterations = 1;
  one_iter.tolerance = 0.0;  // unreachable
  const solver::InverseResult capped = solver::recover_resistances(s.measurement, one_iter);
  EXPECT_FALSE(capped.converged);
  EXPECT_EQ(capped.termination, solver::TerminationReason::kMaxIterations);
}

TEST(RobustLm, MaskedRecoveryStaysAccurate) {
  const Scenario s = make_scenario(5, 922);
  mea::Measurement masked = s.measurement;
  masked.mask = mea::MeasurementMask(5, 5);
  masked.mask->drop(0, 3);
  masked.mask->drop(2, 2);
  masked.mask->drop(4, 1);
  // The masked entries' payload must never be read: poison them.
  masked.z(0, 3) = std::numeric_limits<Real>::quiet_NaN();
  masked.z(2, 2) = -1.0;

  solver::InverseOptions options;
  options.max_iterations = 80;
  const solver::InverseResult result = solver::recover_resistances(masked, options);
  EXPECT_EQ(result.robust.masked_entries, 3);
  EXPECT_LT(median_abs_rel_error(result.recovered, s.truth), 0.05);
}

TEST(RobustLm, HuberBeatsPlainLeastSquaresUnderCorruption) {
  const Scenario s = make_scenario(5, 923, /*noise=*/0.005);
  mea::Measurement dirty = s.measurement;
  const std::vector<Index> corrupted = corrupt_entries(dirty, 2, 42);

  solver::InverseOptions plain;
  plain.max_iterations = 60;
  const solver::InverseResult ls = solver::recover_resistances(dirty, plain);

  solver::InverseOptions robust = plain;
  robust.robust.loss = solver::RobustLoss::kHuber;
  const solver::InverseResult huber = solver::recover_resistances(dirty, robust);

  const Real ls_err = median_abs_rel_error(ls.recovered, s.truth);
  const Real huber_err = median_abs_rel_error(huber.recovered, s.truth);
  EXPECT_LT(huber_err, ls_err) << "robust " << huber_err << " vs plain " << ls_err;
  EXPECT_TRUE(huber.robust.enabled);
  EXPECT_GT(huber.robust.final_scale, 0.0);
  // The corrupted entries must be among the flagged outliers.
  for (Index p : corrupted) {
    EXPECT_NE(std::find(huber.robust.downweighted_entries.begin(),
                        huber.robust.downweighted_entries.end(), p),
              huber.robust.downweighted_entries.end())
        << "corrupted entry " << p << " was not flagged";
  }
}

// -------------------------------------------------------- full-system solver

TEST(RobustFullSystem, RobustOffAllTrueMaskBitIdentical) {
  const Scenario s = make_scenario(4, 930);
  const equations::EquationSystem plain_system = equations::generate_system(s.measurement);
  solver::FullSystemOptions options;
  options.max_iterations = 25;
  const solver::FullSystemResult plain =
      solver::solve_full_system(plain_system, s.measurement, options);

  mea::Measurement masked = s.measurement;
  masked.mask = mea::MeasurementMask(4, 4);
  const equations::EquationSystem masked_system = equations::generate_system(masked);
  const solver::FullSystemResult via_mask =
      solver::solve_full_system(masked_system, masked, options);

  ASSERT_EQ(via_mask.unknowns.size(), plain.unknowns.size());
  for (std::size_t u = 0; u < plain.unknowns.size(); ++u) {
    EXPECT_EQ(via_mask.unknowns[u], plain.unknowns[u]) << "unknown " << u;
  }
  EXPECT_EQ(via_mask.final_residual_rms, plain.final_residual_rms);
  EXPECT_FALSE(plain.robust.enabled);
}

TEST(RobustFullSystem, AdaptiveTikhonovOffByDefaultAndHarmlessWhenHealthy) {
  const Scenario s = make_scenario(4, 931);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  solver::FullSystemOptions options;
  options.max_iterations = 25;
  const solver::FullSystemResult base = solver::solve_full_system(system, s.measurement, options);

  solver::FullSystemOptions adaptive = options;
  adaptive.adaptive_tikhonov_target = 1e4;
  const solver::FullSystemResult guarded =
      solver::solve_full_system(system, s.measurement, adaptive);

  // A healthy system never leaves the CG rung, so the adaptive ridge (a
  // rung-2-only effect) cannot change the numerics.
  ASSERT_EQ(guarded.unknowns.size(), base.unknowns.size());
  for (std::size_t u = 0; u < base.unknowns.size(); ++u) {
    EXPECT_EQ(guarded.unknowns[u], base.unknowns[u]);
  }
  EXPECT_GT(guarded.robust.condition_estimate, 0.0);
}

TEST(RobustFullSystem, MaskedSolveRecoversAndReportsMask) {
  const Scenario s = make_scenario(4, 932);
  mea::Measurement masked = s.measurement;
  masked.mask = mea::MeasurementMask(4, 4);
  masked.mask->drop(1, 3);
  masked.mask->drop(3, 0);
  masked.z(1, 3) = std::numeric_limits<Real>::quiet_NaN();  // must never be read

  const equations::EquationSystem system = equations::generate_system(masked);
  solver::FullSystemOptions options;
  options.max_iterations = 30;
  const solver::FullSystemResult result = solver::solve_full_system(system, masked, options);
  EXPECT_EQ(result.robust.masked_entries, 2);
  // Two dropped pairs leave their resistances weakly constrained; the median
  // over the grid must stay close, not exact.
  EXPECT_LT(median_abs_rel_error(result.recovered, s.truth), 0.12);
}

TEST(RobustFullSystem, HuberDownWeightsCorruptedEntries) {
  const Scenario s = make_scenario(4, 933, /*noise=*/0.005);
  mea::Measurement dirty = s.measurement;
  const std::vector<Index> corrupted = corrupt_entries(dirty, 2, 77);
  const equations::EquationSystem system = equations::generate_system(dirty);

  solver::FullSystemOptions plain;
  plain.max_iterations = 30;
  const solver::FullSystemResult ls = solver::solve_full_system(system, dirty, plain);

  solver::FullSystemOptions robust = plain;
  robust.robust.loss = solver::RobustLoss::kHuber;
  const solver::FullSystemResult huber = solver::solve_full_system(system, dirty, robust);

  EXPECT_TRUE(huber.robust.enabled);
  EXPECT_GT(huber.robust.final_scale, 0.0);
  EXPECT_FALSE(huber.robust.downweighted_entries.empty());
  const Real ls_err = median_abs_rel_error(ls.recovered, s.truth);
  const Real huber_err = median_abs_rel_error(huber.recovered, s.truth);
  EXPECT_LT(huber_err, ls_err) << "robust " << huber_err << " vs plain " << ls_err;
}

TEST(RobustFullSystem, RobustLossRequiresKernelPath) {
  const Scenario s = make_scenario(3, 934);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  solver::FullSystemOptions options;
  options.use_kernels = false;
  options.robust.loss = solver::RobustLoss::kHuber;
  EXPECT_THROW(solver::solve_full_system(system, s.measurement, options), ContractError);
}

// ----------------------------------------------------- corruption sweep (LM)

// Error is bounded and roughly monotone as corruption rises 0 -> 30%: each
// level's median error may beat lower levels by luck, but must never blow
// past the bound, and the fault-free level must be the best (within slack).
TEST(RobustSweep, ErrorBoundedAndRoughlyMonotoneInCorruption) {
  const Scenario s = make_scenario(5, 940, /*noise=*/0.005);
  const Index total = 25;
  const std::vector<Real> fractions{0.0, 0.1, 0.2, 0.3};
  std::vector<Real> errors;
  for (const Real fraction : fractions) {
    mea::Measurement dirty = s.measurement;
    // fault::Injector as the deterministic corruption source: one query per
    // entry; armed probability = the corruption fraction.
    fault::Injector injector(4242);
    fault::Schedule schedule;
    schedule.probability = fraction;
    injector.arm(fault::Point::kNoiseMeasurement, schedule);
    Index corrupted = 0;
    for (Index i = 0; i < dirty.z.rows(); ++i) {
      for (Index j = 0; j < dirty.z.cols(); ++j) {
        if (injector.should_fire(fault::Point::kNoiseMeasurement)) {
          dirty.z(i, j) *= 25.0;
          ++corrupted;
        }
      }
    }
    if (fraction > 0.0 && corrupted == 0) continue;  // schedule fired nothing
    EXPECT_LE(corrupted, static_cast<Index>(0.5 * static_cast<Real>(total)));

    solver::InverseOptions options;
    options.max_iterations = 60;
    options.robust.loss = solver::RobustLoss::kTukey;
    const solver::InverseResult result = solver::recover_resistances(dirty, options);
    errors.push_back(median_abs_rel_error(result.recovered, s.truth));
  }
  ASSERT_GE(errors.size(), 3u);
  for (std::size_t k = 0; k < errors.size(); ++k) {
    EXPECT_LT(errors[k], 0.5) << "corruption level " << k << " error unbounded";
  }
  // Rough monotonicity: the clean run is within 2x of every corrupted run.
  for (std::size_t k = 1; k < errors.size(); ++k) {
    EXPECT_LT(errors[0], 2.0 * errors[k] + 0.01)
        << "clean error " << errors[0] << " worse than corrupted " << errors[k];
  }
}

// -------------------------------------------------------------- serve layer

mea::Measurement serve_measurement(Index n, std::uint64_t seed = 7) {
  Rng rng(seed + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  return mea::measure_exact(spec, truth);
}

serve::ParametrizeRequest make_request(Index n, Index iterations = 25) {
  serve::ParametrizeRequest request;
  request.measurement = serve_measurement(n);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 2;
  request.inverse.max_iterations = iterations;
  return request;
}

TEST(RobustServe, StatusNameAndHasResult) {
  EXPECT_STREQ(serve::request_status_name(serve::RequestStatus::kDegradedResult),
               "degraded-result");
  serve::ParametrizeResult r;
  r.status = serve::RequestStatus::kDegradedResult;
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has_result());
  r.status = serve::RequestStatus::kOk;
  EXPECT_TRUE(r.has_result());
}

TEST(RobustServe, AutoMaskAdmitsAndServesCorruptPayload) {
  serve::ServerOptions sopts;
  sopts.workers = 1;
  serve::Server server(sopts);

  serve::ParametrizeRequest request = make_request(4);
  request.measurement.z(1, 2) = std::numeric_limits<Real>::quiet_NaN();
  request.measurement.z(3, 3) = -2.0;
  request.auto_mask_invalid = true;
  request.inverse.robust.loss = solver::RobustLoss::kHuber;

  serve::Ticket ticket = server.submit(std::move(request), 5s);
  ASSERT_TRUE(ticket.accepted());
  const serve::ParametrizeResult result = ticket.future().get();
  EXPECT_EQ(result.status, serve::RequestStatus::kOk) << result.message;
  EXPECT_EQ(result.quality.masked_entries, 2);
  EXPECT_GT(result.quality.masked_fraction, 0.0);
  server.shutdown();
  const serve::Stats stats = server.stats();
  EXPECT_EQ(stats.masked_entries, 2u);
  EXPECT_GE(stats.auto_masked_entries, 2u);
}

TEST(RobustServe, WithoutAutoMaskCorruptPayloadIsStillRejected) {
  serve::ServerOptions sopts;
  sopts.workers = 1;
  serve::Server server(sopts);
  serve::ParametrizeRequest request = make_request(3);
  request.measurement.z(0, 0) = std::numeric_limits<Real>::quiet_NaN();
  serve::Ticket ticket = server.submit(std::move(request), 5s);
  const serve::ParametrizeResult result = ticket.future().get();
  EXPECT_EQ(result.status, serve::RequestStatus::kInvalidInput);
  server.shutdown();
}

TEST(RobustServe, QualityFloorDemotesHeavilyMaskedResult) {
  serve::ServerOptions sopts;
  sopts.workers = 1;
  serve::Server server(sopts);

  serve::ParametrizeRequest request = make_request(4);
  // Corrupt 4/16 entries = 25% masked; floor allows 10%.
  request.measurement.z(0, 0) = -1.0;
  request.measurement.z(1, 1) = -1.0;
  request.measurement.z(2, 2) = std::numeric_limits<Real>::quiet_NaN();
  request.measurement.z(3, 3) = 0.0;
  request.auto_mask_invalid = true;
  request.quality_floor.max_masked_fraction = 0.1;

  serve::Ticket ticket = server.submit(std::move(request), 5s);
  ASSERT_TRUE(ticket.accepted());
  const serve::ParametrizeResult result = ticket.future().get();
  EXPECT_EQ(result.status, serve::RequestStatus::kDegradedResult) << result.message;
  EXPECT_TRUE(result.has_result());
  EXPECT_TRUE(result.quality.degraded);
  EXPECT_GT(result.quality.masked_fraction, 0.2);
  EXPECT_FALSE(result.message.empty());
  // The recovery is still delivered.
  EXPECT_EQ(result.inverse.recovered.rows(), 4);
  server.shutdown();
  const serve::Stats stats = server.stats();
  EXPECT_EQ(stats.degraded_results, 1u);
  EXPECT_EQ(stats.completed(), stats.accepted);
}

TEST(RobustServe, QualityFloorDisabledKeepsOkBehavior) {
  serve::ServerOptions sopts;
  sopts.workers = 1;
  serve::Server server(sopts);
  serve::Ticket ticket = server.submit(make_request(4), 5s);
  const serve::ParametrizeResult result = ticket.future().get();
  EXPECT_EQ(result.status, serve::RequestStatus::kOk);
  EXPECT_FALSE(result.quality.degraded);
  EXPECT_EQ(result.quality.masked_entries, 0);
  server.shutdown();
  EXPECT_EQ(server.stats().degraded_results, 0u);
}

// ------------------------------------------------------------- chaos storms

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("PARMA_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

// Injected measurement faults (NaN drop + sign-flip noise) on every attempt,
// served with auto-masking and a Huber loss: every request must complete
// with a usable result -- the faults are masked away, not retried away.
TEST(RobustChaos, AutoMaskAbsorbsInjectedMeasurementFaults) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  fault::ScopedInjector chaos(seed);
  fault::Schedule always;
  always.probability = 1.0;
  chaos->arm(fault::Point::kDropMeasurement, always);
  chaos->arm(fault::Point::kNoiseMeasurement, always);

  serve::ServerOptions sopts;
  sopts.workers = 2;
  sopts.policy.retry.max_attempts = 1;  // no retries: masking alone must absorb the faults
  serve::Server server(sopts);

  std::vector<serve::Ticket> tickets;
  for (int r = 0; r < 6; ++r) {
    serve::ParametrizeRequest request = make_request(4);
    request.auto_mask_invalid = true;
    request.inverse.robust.loss = solver::RobustLoss::kHuber;
    tickets.push_back(server.submit(std::move(request), 10s));
  }
  Index usable = 0;
  for (serve::Ticket& t : tickets) {
    ASSERT_TRUE(t.accepted());
    const serve::ParametrizeResult result = t.future().get();
    if (result.has_result()) ++usable;
  }
  EXPECT_EQ(usable, 6);
  server.shutdown();
  const serve::Stats stats = server.stats();
  EXPECT_EQ(stats.completed(), stats.accepted);
  EXPECT_EQ(stats.retries, 0u);
  // kNoiseMeasurement negates an entry -> auto-masked, so at least the
  // noise-fault entries show up in the masking census.
  EXPECT_GT(stats.auto_masked_entries, 0u);
}

// The ISSUE's headline robustness criterion: at ~10% corrupted entries
// (dropped -> NaN, noised -> sign flip; both seeded via fault::Injector and
// both detectable), the robust+masked pipeline's median reconstruction error
// stays within 2x of the fault-free pipeline, while plain least squares on
// the same corrupted input is measurably worse (here: a typed refusal on the
// non-finite payload). Asserted at n=8 -- the small end of the ISSUE's
// n=8..16 range, where the masked null space is proportionally largest.
TEST(RobustChaos, TenPercentCorruptionWithinTwiceFaultFreeError) {
  const std::uint64_t seed = chaos_seed();
  SCOPED_TRACE("PARMA_CHAOS_SEED=" + std::to_string(seed));

  const Scenario s = make_scenario(8, 950 + seed, /*noise=*/0.005);
  solver::InverseOptions options;
  options.max_iterations = 60;
  const solver::InverseResult clean = solver::recover_resistances(s.measurement, options);
  const Real clean_err = median_abs_rel_error(clean.recovered, s.truth);

  mea::Measurement dirty = s.measurement;
  fault::Injector injector(seed * 7919 + 17);
  fault::Schedule schedule;
  schedule.probability = 0.05;  // two independent 5% points ~= 10% corrupted
  injector.arm(fault::Point::kDropMeasurement, schedule);
  injector.arm(fault::Point::kNoiseMeasurement, schedule);
  Index corrupted = 0;
  for (Index i = 0; i < dirty.z.rows(); ++i) {
    for (Index j = 0; j < dirty.z.cols(); ++j) {
      if (injector.should_fire(fault::Point::kDropMeasurement)) {
        dirty.z(i, j) = std::numeric_limits<Real>::quiet_NaN();
        ++corrupted;
      } else if (injector.should_fire(fault::Point::kNoiseMeasurement)) {
        dirty.z(i, j) = -dirty.z(i, j);
        ++corrupted;
      }
    }
  }
  if (corrupted == 0) GTEST_SKIP() << "schedule fired no corruption at this seed";

  // Plain least squares on the raw corrupted payload: measurably worse --
  // the NaN / negated entries trip a typed diagnostic (non-finite misfit or
  // the positive-initial-guess contract) instead of producing a result.
  bool typed_refusal = false;
  try {
    (void)solver::recover_resistances(dirty, options);
  } catch (const NumericalError&) {
    typed_refusal = true;
  } catch (const ContractError&) {
    typed_refusal = true;
  }
  EXPECT_TRUE(typed_refusal) << "plain least squares accepted the corrupted payload";

  // Robust+masked pipeline: auto-mask the detectable corruption, solve with
  // the Huber loss guarding the residuals that remain.
  mea::Measurement masked = dirty;
  const Index auto_masked = mea::mask_invalid_entries(masked);
  EXPECT_EQ(auto_masked, corrupted);
  solver::InverseOptions robust = options;
  robust.robust.loss = solver::RobustLoss::kHuber;
  const solver::InverseResult result = solver::recover_resistances(masked, robust);
  EXPECT_EQ(result.robust.masked_entries, corrupted);
  const Real robust_err = median_abs_rel_error(result.recovered, s.truth);
  EXPECT_LT(robust_err, 2.0 * clean_err + 1e-3)
      << "robust+masked " << robust_err << " vs fault-free " << clean_err << " (corrupted "
      << corrupted << " entries)";
}

}  // namespace
}  // namespace parma

// Tests for src/serve: the batched, backpressured parametrization service.
// Backpressure against a bounded queue (nothing lost, nothing
// double-completed), deadline/cancellation paths, drain-then-shutdown
// ordering, failure isolation inside a batch, and the equivalence guarantee
// that a request served through parma::serve recovers bit-identical
// resistances to the same measurement run through a bare core::Session.
// Carries the `tsan` ctest label; run under -DPARMA_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/session.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/server.hpp"

namespace parma::serve {
namespace {

using namespace std::chrono_literals;

mea::Measurement make_measurement(Index n, std::uint64_t seed = 7) {
  Rng rng(seed + static_cast<std::uint64_t>(n));
  const mea::DeviceSpec spec = mea::square_device(n);
  const auto truth = mea::generate_field(spec, mea::random_scenario(spec, 1, rng), rng);
  return mea::measure_exact(spec, truth);
}

ParametrizeRequest make_request(Index n, Index iterations = 1) {
  ParametrizeRequest request;
  request.measurement = make_measurement(n);
  request.options.strategy = core::Strategy::kFineGrained;
  request.options.workers = 2;
  request.options.chunk = 2;
  request.options.keep_system = false;
  request.inverse.max_iterations = iterations;
  return request;
}

TEST(Serve, StatusNamesAreStable) {
  EXPECT_STREQ(request_status_name(RequestStatus::kOk), "ok");
  EXPECT_STREQ(request_status_name(RequestStatus::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(request_status_name(RequestStatus::kCancelled), "cancelled");
  EXPECT_STREQ(request_status_name(RequestStatus::kRejected), "rejected");
  EXPECT_STREQ(request_status_name(RequestStatus::kSolverFailed), "solver-failed");
  EXPECT_STREQ(request_status_name(RequestStatus::kInvalidInput), "invalid-input");
  EXPECT_STREQ(request_status_name(RequestStatus::kBreakerOpen), "breaker-open");
  EXPECT_STREQ(request_status_name(RequestStatus::kDegradedResult), "degraded-result");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kAccepted), "accepted");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kQueueFull), "queue-full");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kShuttingDown), "shutting-down");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kInvalidOptions), "invalid-options");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kLoadShed), "load-shed");
  EXPECT_STREQ(priority_name(Priority::kLow), "low");
  EXPECT_STREQ(priority_name(Priority::kNormal), "normal");
  EXPECT_STREQ(priority_name(Priority::kHigh), "high");
}

TEST(Serve, StatusToStringIsExhaustive) {
  // The switches below have no default, so adding an enumerator without a
  // name trips -Wswitch at compile time; at run time every value must map to
  // a real name, never the "?" fallback.
  const auto check_request = [](RequestStatus s) {
    switch (s) {
      case RequestStatus::kOk:
      case RequestStatus::kDeadlineExceeded:
      case RequestStatus::kCancelled:
      case RequestStatus::kRejected:
      case RequestStatus::kSolverFailed:
      case RequestStatus::kInvalidInput:
      case RequestStatus::kBreakerOpen:
      case RequestStatus::kDegradedResult:
        EXPECT_EQ(to_string(s), request_status_name(s));
        EXPECT_NE(to_string(s), "?");
        return;
    }
    ADD_FAILURE() << "unnamed RequestStatus " << static_cast<int>(s);
  };
  for (int v = 0; v <= static_cast<int>(RequestStatus::kDegradedResult); ++v) {
    check_request(static_cast<RequestStatus>(v));
  }

  const auto check_submit = [](SubmitStatus s) {
    switch (s) {
      case SubmitStatus::kAccepted:
      case SubmitStatus::kQueueFull:
      case SubmitStatus::kShuttingDown:
      case SubmitStatus::kInvalidOptions:
      case SubmitStatus::kLoadShed:
        EXPECT_EQ(to_string(s), submit_status_name(s));
        EXPECT_NE(to_string(s), "?");
        return;
    }
    ADD_FAILURE() << "unnamed SubmitStatus " << static_cast<int>(s);
  };
  for (int v = 0; v <= static_cast<int>(SubmitStatus::kLoadShed); ++v) {
    check_submit(static_cast<SubmitStatus>(v));
  }
}

TEST(Serve, StatusWireCodesRoundTrip) {
  // Wire codes are a cross-process contract: every status must map to a
  // stable nonzero code, distinct within its block, and decode back to
  // itself. The switches have no default, so a new enumerator that is not
  // given a code trips -Wswitch here at compile time.
  const auto check_request = [](RequestStatus s) {
    switch (s) {
      case RequestStatus::kOk:
      case RequestStatus::kDeadlineExceeded:
      case RequestStatus::kCancelled:
      case RequestStatus::kRejected:
      case RequestStatus::kSolverFailed:
      case RequestStatus::kInvalidInput:
      case RequestStatus::kBreakerOpen:
      case RequestStatus::kDegradedResult: {
        const std::uint16_t code = status_wire_code(s);
        EXPECT_GE(code, 100) << request_status_name(s);
        EXPECT_LT(code, 200) << request_status_name(s);
        const auto back = request_status_from_wire(code);
        ASSERT_TRUE(back.has_value()) << request_status_name(s);
        EXPECT_EQ(*back, s);
        return;
      }
    }
    ADD_FAILURE() << "RequestStatus without wire code " << static_cast<int>(s);
  };
  for (int v = 0; v <= static_cast<int>(RequestStatus::kDegradedResult); ++v) {
    check_request(static_cast<RequestStatus>(v));
  }

  const auto check_submit = [](SubmitStatus s) {
    switch (s) {
      case SubmitStatus::kAccepted:
      case SubmitStatus::kQueueFull:
      case SubmitStatus::kShuttingDown:
      case SubmitStatus::kInvalidOptions:
      case SubmitStatus::kLoadShed: {
        const std::uint16_t code = status_wire_code(s);
        EXPECT_GE(code, 200) << submit_status_name(s);
        EXPECT_LT(code, 300) << submit_status_name(s);
        const auto back = submit_status_from_wire(code);
        ASSERT_TRUE(back.has_value()) << submit_status_name(s);
        EXPECT_EQ(*back, s);
        return;
      }
    }
    ADD_FAILURE() << "SubmitStatus without wire code " << static_cast<int>(s);
  };
  for (int v = 0; v <= static_cast<int>(SubmitStatus::kLoadShed); ++v) {
    check_submit(static_cast<SubmitStatus>(v));
  }

  // Unknown codes degrade to nullopt, never to a misdecoded enum.
  EXPECT_FALSE(request_status_from_wire(0).has_value());
  EXPECT_FALSE(request_status_from_wire(199).has_value());
  EXPECT_FALSE(submit_status_from_wire(0).has_value());
  EXPECT_FALSE(submit_status_from_wire(299).has_value());
}

TEST(Serve, ServerOptionsValidate) {
  ServerOptions bad;
  bad.queue_capacity = 0;
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
  bad = ServerOptions{};
  bad.workers = 0;
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
  bad = ServerOptions{};
  bad.max_batch = 0;
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
  EXPECT_THROW(Server{bad}, core::InvalidOptions);
  bad = ServerOptions{};
  bad.max_inflight_batches = -1;
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
  bad = ServerOptions{};
  bad.policy.retry.max_attempts = 0;
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
  bad = ServerOptions{};
  bad.policy.retry.backoff_cap = 0ms;
  bad.policy.retry.backoff = 10ms;  // cap below base
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
  bad = ServerOptions{};
  bad.policy.breaker.failure_threshold = -1;
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
  bad = ServerOptions{};
  bad.policy.shedding.high_water = 1.5;
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
  bad = ServerOptions{};
  bad.policy.default_deadline = 0ms;
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
}

TEST(Serve, DeprecatedResilienceFieldsForwardIntoPolicy) {
  // One release of compatibility: the loose fields still steer the server.
  // A deprecated field changed from its default overrides the policy value;
  // untouched fields leave the policy alone.
  ServerOptions opts;
  opts.policy.retry.backoff = 7ms;  // policy value with no competing override
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  opts.max_attempts = 9;
  opts.retry_jitter_seed = 0xfeed;
  opts.breaker_failure_threshold = 11;
  opts.breaker_cooldown = 321ms;
  opts.degraded_high_water = 0.25;
  opts.degraded_sustain = 13ms;
#pragma GCC diagnostic pop
  const ResiliencePolicy merged = opts.resilience();
  EXPECT_EQ(merged.retry.max_attempts, 9);
  EXPECT_EQ(merged.retry.backoff, 7ms);   // untouched deprecated field: policy wins
  EXPECT_EQ(merged.retry.backoff_cap, 50ms);
  EXPECT_EQ(merged.retry.jitter_seed, 0xfeedu);
  EXPECT_EQ(merged.breaker.failure_threshold, 11);
  EXPECT_EQ(merged.breaker.cooldown, 321ms);
  EXPECT_EQ(merged.shedding.high_water, 0.25);
  EXPECT_EQ(merged.shedding.sustain, 13ms);

  // An invalid value through the deprecated field still fails validation.
  ServerOptions bad;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  bad.max_attempts = 0;
#pragma GCC diagnostic pop
  EXPECT_THROW(bad.validate(), core::InvalidOptions);
}

TEST(BoundedQueue, BackpressureAndBatchedPop) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  EXPECT_FALSE(queue.push(3, 10ms));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.high_water(), 2u);

  const auto batch =
      queue.pop_batch(8, [](const int&, const int&) { return true; });
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);

  queue.close();
  EXPECT_FALSE(queue.try_push(4));
  EXPECT_TRUE(queue.pop_batch(1, [](const int&, const int&) { return true; }).empty());
}

TEST(BoundedQueue, CapacityZeroViolatesTheContract) {
  EXPECT_THROW(BoundedQueue<int>{0}, ContractError);
}

TEST(BoundedQueue, CapacityOneAlternatesPushAndPop) {
  BoundedQueue<int> queue(1);
  const auto any = [](const int&, const int&) { return true; };
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(queue.try_push(v));
    EXPECT_FALSE(queue.try_push(v + 100));  // full at one item
    const auto batch = queue.pop_batch(8, any);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0], v);
  }
  EXPECT_EQ(queue.high_water(), 1u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, BlockedPushIsReleasedByClose) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.try_push(1));  // now full
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread blocked([&] {
    // Blocks for space; close() must wake it with a false verdict well
    // before the timeout.
    push_result.store(queue.push(2, 10'000ms));
    push_returned.store(true);
  });
  std::this_thread::sleep_for(20ms);  // let the thread block
  EXPECT_FALSE(push_returned.load());
  queue.close();
  blocked.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());
  EXPECT_TRUE(queue.closed());
  // The item admitted before the close is still drainable.
  EXPECT_EQ(queue.drain_now(), std::vector<int>{1});
}

TEST(BoundedQueue, ConcurrentTryPushVersusDrainConservesItems) {
  BoundedQueue<int> queue(8);
  constexpr int kPushers = 4;
  constexpr int kPerPusher = 200;
  std::atomic<int> pushed{0};
  std::atomic<int> drained{0};
  std::atomic<bool> stop{false};

  std::thread drainer([&] {
    while (!stop.load()) {
      drained.fetch_add(static_cast<int>(queue.drain_now().size()));
    }
    drained.fetch_add(static_cast<int>(queue.drain_now().size()));
  });
  std::vector<std::thread> pushers;
  pushers.reserve(kPushers);
  for (int t = 0; t < kPushers; ++t) {
    pushers.emplace_back([&] {
      for (int i = 0; i < kPerPusher; ++i) {
        if (queue.try_push(i)) pushed.fetch_add(1);
      }
    });
  }
  for (std::thread& p : pushers) p.join();
  stop.store(true);
  drainer.join();

  // Every successfully admitted item comes back out exactly once.
  EXPECT_EQ(pushed.load(), drained.load());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_LE(queue.high_water(), 8u);
}

TEST(BoundedQueue, PredicateSelectsNonAdjacentItems) {
  BoundedQueue<int> queue(8);
  for (const int v : {1, 1, 2, 1, 2}) EXPECT_TRUE(queue.try_push(v));
  const auto same = [](const int& a, const int& b) { return a == b; };
  const auto ones = queue.pop_batch(8, same);
  EXPECT_EQ(ones, (std::vector<int>{1, 1, 1}));
  const auto twos = queue.pop_batch(8, same);
  EXPECT_EQ(twos, (std::vector<int>{2, 2}));
}

TEST(LatencyHistogram, QuantilesBracketTheSamples) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record(1e-3);
  const StageStats s = histogram.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean_seconds, 1e-3, 1e-5);
  EXPECT_NEAR(s.max_seconds, 1e-3, 1e-5);
  // Bucket-boundary estimates: within the sample's power-of-two bucket.
  EXPECT_GE(s.p50_seconds, 0.5e-3);
  EXPECT_LE(s.p50_seconds, 1.1e-3);
  EXPECT_LE(s.p50_seconds, s.p99_seconds);
}

TEST(Serve, BackpressureIsDeterministicWithDeferredStart) {
  ServerOptions options;
  options.queue_capacity = 2;
  options.workers = 1;
  options.deferred_start = true;
  Server server(options);

  Ticket t1 = server.try_submit(make_request(5));
  Ticket t2 = server.try_submit(make_request(5));
  EXPECT_EQ(t1.admission(), SubmitStatus::kAccepted);
  EXPECT_EQ(t2.admission(), SubmitStatus::kAccepted);

  // Queue is at capacity and no worker is draining it: both the
  // non-blocking and the timed-blocking admission must report kQueueFull,
  // and the rejected futures must still complete (status kRejected).
  Ticket t3 = server.try_submit(make_request(5));
  EXPECT_EQ(t3.admission(), SubmitStatus::kQueueFull);
  const ParametrizeResult r3 = t3.future().get();
  EXPECT_EQ(r3.status, RequestStatus::kRejected);
  EXPECT_EQ(r3.message, "admission queue full");

  Ticket t4 = server.submit(make_request(5), 30ms);
  EXPECT_EQ(t4.admission(), SubmitStatus::kQueueFull);
  EXPECT_EQ(t4.future().get().status, RequestStatus::kRejected);

  server.start();
  EXPECT_EQ(t1.future().get().status, RequestStatus::kOk);
  EXPECT_EQ(t2.future().get().status, RequestStatus::kOk);

  const Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected_queue_full, 2u);
  EXPECT_EQ(stats.completed_ok, 2u);
  EXPECT_EQ(stats.queue_high_water, 2u);
  EXPECT_EQ(stats.end_to_end.count, 2u);
}

TEST(Serve, ConcurrentSubmittersAgainstSmallQueue) {
  ServerOptions options;
  options.queue_capacity = 4;
  options.workers = 2;
  options.max_batch = 4;
  Server server(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::atomic<int> locally_accepted{0};
  std::atomic<int> locally_rejected{0};
  std::atomic<int> completions{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Ticket ticket = server.try_submit(make_request(5, 100 + t));
        if (!ticket.accepted()) {
          // Backpressure observed; fall back to the blocking admission.
          ticket = server.submit(make_request(5, 100 + t), 200ms);
        }
        if (ticket.accepted()) {
          locally_accepted.fetch_add(1);
          const ParametrizeResult r = ticket.future().get();
          EXPECT_NE(r.status, RequestStatus::kRejected);
          completions.fetch_add(1);
        } else {
          locally_rejected.fetch_add(1);
          EXPECT_EQ(ticket.future().get().status, RequestStatus::kRejected);
        }
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  server.drain();

  const Stats stats = server.stats();
  // Conservation: every admission call is accounted for, every accepted
  // request completed exactly once, and nothing was lost.
  EXPECT_EQ(stats.accepted + stats.rejected(), stats.submitted);
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(locally_accepted.load()));
  EXPECT_EQ(stats.completed(), stats.accepted);
  EXPECT_EQ(completions.load(), locally_accepted.load());
  EXPECT_GE(stats.queue_high_water, 1u);
  EXPECT_LE(stats.queue_high_water, options.queue_capacity);
  EXPECT_EQ(stats.end_to_end.count, stats.accepted);
}

TEST(Serve, DeadlineExceededWhileQueued) {
  ServerOptions options;
  options.workers = 1;
  options.deferred_start = true;
  Server server(options);

  ParametrizeRequest request = make_request(5);
  request.timeout = 0ms;  // already expired at admission
  Ticket ticket = server.try_submit(std::move(request));
  ASSERT_TRUE(ticket.accepted());
  server.start();
  const ParametrizeResult r = ticket.future().get();
  EXPECT_EQ(r.status, RequestStatus::kDeadlineExceeded);
  EXPECT_EQ(server.stats().deadline_exceeded, 1u);
}

TEST(Serve, CancellationWhileQueued) {
  ServerOptions options;
  options.workers = 1;
  options.deferred_start = true;
  Server server(options);

  Ticket ticket = server.try_submit(make_request(5));
  ASSERT_TRUE(ticket.accepted());
  ticket.cancel();
  server.start();
  const ParametrizeResult r = ticket.future().get();
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(Serve, InvalidRequestsRejectedAtAdmission) {
  Server server;

  ParametrizeRequest bad_workers = make_request(5);
  bad_workers.options.workers = 0;
  Ticket t1 = server.try_submit(std::move(bad_workers));
  EXPECT_EQ(t1.admission(), SubmitStatus::kInvalidOptions);
  const ParametrizeResult r1 = t1.future().get();
  EXPECT_EQ(r1.status, RequestStatus::kRejected);
  EXPECT_NE(r1.message.find("workers"), std::string::npos);

  ParametrizeRequest bad_mode = make_request(5);
  bad_mode.options.timing_mode = core::TimingMode::kVirtualReplay;
  EXPECT_EQ(server.try_submit(std::move(bad_mode)).admission(),
            SubmitStatus::kInvalidOptions);

  ParametrizeRequest bad_shape = make_request(5);
  bad_shape.measurement.z = linalg::DenseMatrix(2, 2);
  EXPECT_EQ(server.try_submit(std::move(bad_shape)).admission(),
            SubmitStatus::kInvalidOptions);

  EXPECT_EQ(server.stats().rejected_invalid, 3u);
}

TEST(Serve, SolverFailureDoesNotPoisonTheBatch) {
  ServerOptions options;
  options.workers = 1;
  options.max_batch = 8;
  options.deferred_start = true;
  Server server(options);

  // Same shape: both requests ride in one batch; the first one's solve
  // stage throws (max_iterations = 0 violates the solver's contract).
  ParametrizeRequest failing = make_request(5);
  failing.inverse.max_iterations = 0;
  Ticket t1 = server.try_submit(std::move(failing));
  Ticket t2 = server.try_submit(make_request(5));
  ASSERT_TRUE(t1.accepted());
  ASSERT_TRUE(t2.accepted());
  server.start();

  const ParametrizeResult r1 = t1.future().get();
  EXPECT_EQ(r1.status, RequestStatus::kSolverFailed);
  EXPECT_NE(r1.message.find("iteration"), std::string::npos);
  EXPECT_EQ(t2.future().get().status, RequestStatus::kOk);

  const Stats stats = server.stats();
  EXPECT_EQ(stats.solver_failed, 1u);
  EXPECT_EQ(stats.completed_ok, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, 2u);
}

TEST(Serve, BatchesGroupByDeviceShape) {
  ServerOptions options;
  options.workers = 1;
  options.max_batch = 8;
  options.queue_capacity = 8;
  options.deferred_start = true;
  Server server(options);

  std::vector<Ticket> tickets;
  for (const Index n : {Index{5}, Index{5}, Index{6}, Index{5}, Index{6}}) {
    tickets.push_back(server.try_submit(make_request(n)));
    ASSERT_TRUE(tickets.back().accepted());
  }
  server.start();
  server.drain();
  for (Ticket& t : tickets) EXPECT_EQ(t.future().get().status, RequestStatus::kOk);

  // FIFO batching by shape: {5,5,5} then {6,6}.
  const Stats stats = server.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.max_batch, 3u);
  EXPECT_NEAR(stats.mean_batch_size, 2.5, 1e-12);
  EXPECT_EQ(stats.queue_high_water, 5u);
}

TEST(Serve, DrainThenShutdownOrdering) {
  ServerOptions options;
  options.workers = 2;
  Server server(options);

  std::vector<Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    Ticket t = server.submit(make_request(5), 500ms);
    ASSERT_TRUE(t.accepted());
    tickets.push_back(std::move(t));
  }
  server.drain();

  // After drain every accepted future is already completed...
  for (Ticket& t : tickets) {
    ASSERT_EQ(t.future().wait_for(0ms), std::future_status::ready);
    EXPECT_EQ(t.future().get().status, RequestStatus::kOk);
  }
  // ...and admission is closed.
  Ticket late = server.try_submit(make_request(5));
  EXPECT_EQ(late.admission(), SubmitStatus::kShuttingDown);
  EXPECT_EQ(late.future().get().status, RequestStatus::kRejected);

  server.shutdown();
  server.shutdown();  // idempotent
  const Stats stats = server.stats();
  EXPECT_EQ(stats.completed_ok, 6u);
  EXPECT_EQ(stats.rejected_shutting_down, 1u);
}

TEST(Serve, DrainBeforeStartCancelsQueuedRequests) {
  ServerOptions options;
  options.deferred_start = true;
  Server server(options);
  Ticket ticket = server.try_submit(make_request(5));
  ASSERT_TRUE(ticket.accepted());
  server.drain();
  EXPECT_EQ(ticket.future().get().status, RequestStatus::kCancelled);
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(Serve, ServedRequestMatchesBareSessionBitIdentically) {
  const mea::Measurement measurement = make_measurement(8, 99);

  core::StrategyOptions strategy;
  strategy.strategy = core::Strategy::kFineGrained;
  strategy.workers = 4;
  strategy.chunk = 3;
  solver::InverseOptions inverse;
  inverse.max_iterations = 12;
  inverse.workers = 2;

  // Bare Session path.
  const core::Session session =
      core::Session::on(measurement).options(strategy).build();
  const core::FormationResult bare_formation = session.form();
  const solver::InverseResult bare = session.recover(inverse);

  // Serve path: same measurement, same configuration, through the batched
  // pipeline with a warmed executor.
  Server server;
  ParametrizeRequest request;
  request.measurement = measurement;
  request.options = strategy;
  request.inverse = inverse;
  Ticket ticket = server.try_submit(std::move(request));
  ASSERT_TRUE(ticket.accepted());
  const ParametrizeResult served = ticket.future().get();
  ASSERT_EQ(served.status, RequestStatus::kOk) << served.message;

  // Formation summary agrees with the bare run.
  EXPECT_EQ(served.equations, measurement.spec.num_equations());
  EXPECT_EQ(served.equation_bytes, bare_formation.equation_bytes);

  // The recovery must be bit-identical: same iterations, same misfit, and
  // exactly equal resistances everywhere.
  EXPECT_EQ(served.inverse.iterations, bare.iterations);
  EXPECT_EQ(served.inverse.converged, bare.converged);
  EXPECT_EQ(served.inverse.final_misfit, bare.final_misfit);
  ASSERT_EQ(served.inverse.recovered.rows(), bare.recovered.rows());
  ASSERT_EQ(served.inverse.recovered.cols(), bare.recovered.cols());
  for (Index i = 0; i < bare.recovered.rows(); ++i) {
    for (Index j = 0; j < bare.recovered.cols(); ++j) {
      EXPECT_EQ(served.inverse.recovered.at(i, j), bare.recovered.at(i, j))
          << "cell (" << i << ", " << j << ")";
    }
  }

  // Topology report comes from the server's FormationCache.
  EXPECT_EQ(served.topology.intrinsic_parallelism, 49);
  EXPECT_TRUE(served.topology.proposition1_holds);
}

TEST(Serve, AnomalyThresholdCountsInReconstructStage) {
  Server server;
  ParametrizeRequest request = make_request(6, /*iterations=*/25);
  request.anomaly_threshold = 0.0;  // every cell is above 0 kOhm
  Ticket ticket = server.try_submit(std::move(request));
  ASSERT_TRUE(ticket.accepted());
  const ParametrizeResult r = ticket.future().get();
  ASSERT_EQ(r.status, RequestStatus::kOk) << r.message;
  EXPECT_EQ(r.anomalies, 36);
  EXPECT_GT(r.form_seconds, 0.0);
  EXPECT_GT(r.solve_seconds, 0.0);
  EXPECT_EQ(r.batch_size, 1);
}

}  // namespace
}  // namespace parma::serve

// Tests for the preconditioned solve path: linalg/preconditioner (Jacobi,
// identity, block-Jacobi, IC0), the SIMD-friendly PaddedCsrChunks SpMV, the
// mixed-precision CG, and the solver-layer wiring (SystemSymbolic plans,
// NormalPreconditioner, MatrixFreeNormalOperator, the preconditioned fallback
// ladder). The load-bearing claims are the ISSUE's bit-identity contracts:
//  * a refreshed JacobiPreconditioner reproduces the inline-Jacobi CG path
//    bit for bit, and the identity preconditioner reproduces plain CG;
//  * IC0's in-pattern refresh matches a from-scratch rebuild bitwise;
//  * the padded-chunk SpMV matches CsrMatrix::multiply_rows_into bitwise on
//    every backend;
//  * the preconditioned ladder's rung-1 exit is bit-identical to calling
//    preconditioned CG directly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "equations/generator.hpp"
#include "exec/executor.hpp"
#include "linalg/dense_solve.hpp"
#include "linalg/iterative.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/sparse_matrix.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"
#include "solver/fallback.hpp"
#include "solver/full_system_solver.hpp"
#include "solver/system_kernels.hpp"

namespace parma {
namespace {

using linalg::CooBuilder;
using linalg::CsrMatrix;

void expect_bitwise_equal(const std::vector<Real>& a, const std::vector<Real>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ba = 0;
    std::uint64_t bb = 0;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ba, bb) << what << " diverges at " << i << ": " << a[i] << " vs " << b[i];
  }
}

// Sparse SPD test matrix: a diagonally-dominant band matrix with random
// couplings, symmetric by construction, every diagonal structurally present.
CsrMatrix random_sparse_spd(Index n, Index bandwidth, Rng& rng, Real diag_boost = 0.0) {
  CooBuilder builder(n, n);
  std::vector<Real> row_sum(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < std::min(n, i + bandwidth + 1); ++j) {
      const Real v = rng.uniform(-1.0, 1.0);
      builder.add(i, j, v);
      builder.add(j, i, v);
      row_sum[static_cast<std::size_t>(i)] += std::abs(v);
      row_sum[static_cast<std::size_t>(j)] += std::abs(v);
    }
  }
  for (Index i = 0; i < n; ++i) {
    builder.add(i, i, row_sum[static_cast<std::size_t>(i)] + 1.0 + diag_boost +
                          rng.uniform(0.0, 1.0));
  }
  return builder.build(linalg::ZeroPolicy::kKeep);
}

std::vector<Real> random_vector(Index n, Rng& rng) {
  std::vector<Real> v(static_cast<std::size_t>(n));
  for (Real& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

linalg::DenseMatrix densify(const CsrMatrix& a) {
  linalg::DenseMatrix dense(a.rows(), a.cols());
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index k = a.row_ptr()[static_cast<std::size_t>(r)];
         k < a.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      dense(r, a.col_idx()[static_cast<std::size_t>(k)]) =
          a.values()[static_cast<std::size_t>(k)];
    }
  }
  return dense;
}

// ------------------------------------------------------------ Jacobi seam

TEST(JacobiSeam, RefreshedJacobiMatchesInlinePathBitwise) {
  Rng rng(101);
  const CsrMatrix a = random_sparse_spd(64, 4, rng);
  const std::vector<Real> b = random_vector(a.rows(), rng);
  const linalg::SerialCsrOperator op(a);
  linalg::IterativeOptions options;
  options.tolerance = 1e-12;

  linalg::CgWorkspace ws_null;
  const linalg::IterativeResult inline_jacobi =
      linalg::conjugate_gradient_with(op, b, options, ws_null);

  linalg::JacobiPreconditioner jacobi;
  jacobi.refresh(a);
  linalg::CgWorkspace ws_precond;
  const linalg::IterativeResult seam =
      linalg::conjugate_gradient_with(op, b, options, ws_precond, &jacobi);

  EXPECT_TRUE(inline_jacobi.converged);
  EXPECT_EQ(seam.iterations, inline_jacobi.iterations);
  EXPECT_EQ(seam.relative_residual, inline_jacobi.relative_residual);
  expect_bitwise_equal(seam.x, inline_jacobi.x, "Jacobi seam solution");
}

TEST(JacobiSeam, IdentityMatchesPlainCgOnUnitDiagonal) {
  // With A_ii = 1 the inline-Jacobi scaling is exactly 1.0 * r, i.e. plain
  // CG; the identity preconditioner must follow the same trajectory bitwise.
  Rng rng(102);
  CsrMatrix a = random_sparse_spd(48, 3, rng);
  {
    // Normalize to a unit diagonal: D^-1/2 A D^-1/2 stays SPD.
    const std::vector<Real> diag = a.diagonal();
    auto& values = a.values_mut();
    for (Index r = 0; r < a.rows(); ++r) {
      for (Index k = a.row_ptr()[static_cast<std::size_t>(r)];
           k < a.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
        const Index c = a.col_idx()[static_cast<std::size_t>(k)];
        // Pin the diagonal to EXACTLY 1.0 (sqrt(d) * sqrt(d) != d in floating
        // point): the inline-Jacobi scaling must be the literal identity.
        values[static_cast<std::size_t>(k)] =
            (c == r) ? Real{1.0}
                     : values[static_cast<std::size_t>(k)] /
                           (std::sqrt(diag[static_cast<std::size_t>(r)]) *
                            std::sqrt(diag[static_cast<std::size_t>(c)]));
      }
    }
  }
  const std::vector<Real> b = random_vector(a.rows(), rng);
  const linalg::SerialCsrOperator op(a);
  linalg::IterativeOptions options;
  options.tolerance = 1e-12;

  linalg::CgWorkspace ws_null;
  const linalg::IterativeResult plain =
      linalg::conjugate_gradient_with(op, b, options, ws_null);

  const linalg::IdentityPreconditioner identity;
  linalg::CgWorkspace ws_id;
  const linalg::IterativeResult with_identity =
      linalg::conjugate_gradient_with(op, b, options, ws_id, &identity);

  EXPECT_TRUE(plain.converged);
  EXPECT_EQ(with_identity.iterations, plain.iterations);
  expect_bitwise_equal(with_identity.x, plain.x, "identity = plain CG");
}

// ------------------------------------------------------------ block-Jacobi

TEST(BlockJacobi, AppliesExactBlockInverse) {
  // On a block-diagonal matrix, M = A: apply() must reproduce the dense
  // solve per block (up to factorization roundoff) and PCG must converge in
  // O(1) iterations.
  Rng rng(103);
  const Index block = 5;
  const Index blocks = 6;
  const Index n = block * blocks;
  CooBuilder builder(n, n);
  for (Index b = 0; b < blocks; ++b) {
    const Index lo = b * block;
    linalg::DenseMatrix m(block, block);
    for (Index i = 0; i < block; ++i) {
      for (Index j = 0; j < block; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
    }
    const linalg::DenseMatrix spd = m.multiply(m.transpose());
    for (Index i = 0; i < block; ++i) {
      for (Index j = 0; j < block; ++j) {
        builder.add(lo + i, lo + j, spd(i, j) + (i == j ? block : 0));
      }
    }
  }
  const CsrMatrix a = builder.build(linalg::ZeroPolicy::kKeep);

  std::vector<Index> block_ptr;
  for (Index b = 0; b <= blocks; ++b) block_ptr.push_back(b * block);
  auto plan = linalg::BlockJacobiPreconditioner::Plan::analyze(block_ptr, a.row_ptr(),
                                                               a.col_idx());
  linalg::BlockJacobiPreconditioner precond(plan);
  precond.refresh(a);
  EXPECT_EQ(precond.fallback_blocks(), 0);

  const std::vector<Real> r = random_vector(n, rng);
  std::vector<Real> z;
  precond.apply(r, z);
  const std::vector<Real> expect = linalg::solve_dense(densify(a), r);
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(z[static_cast<std::size_t>(i)], expect[static_cast<std::size_t>(i)], 1e-9);
  }

  linalg::IterativeOptions options;
  options.tolerance = 1e-12;
  linalg::CgWorkspace ws;
  const linalg::IterativeResult result = linalg::conjugate_gradient_with(
      linalg::SerialCsrOperator(a), r, options, ws, &precond);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 3);
}

TEST(BlockJacobi, SparsePlanMatchesDenseRefreshBitwise) {
  Rng rng(104);
  const CsrMatrix a = random_sparse_spd(60, 6, rng);
  std::vector<Index> block_ptr{0, 12, 24, 36, 48, 60};

  linalg::BlockJacobiPreconditioner sparse(linalg::BlockJacobiPreconditioner::Plan::analyze(
      block_ptr, a.row_ptr(), a.col_idx()));
  sparse.refresh(a);

  linalg::BlockJacobiPreconditioner dense(block_ptr);
  dense.refresh(densify(a));

  const std::vector<Real> r = random_vector(a.rows(), rng);
  std::vector<Real> z_sparse;
  std::vector<Real> z_dense;
  sparse.apply(r, z_sparse);
  dense.apply(r, z_dense);
  expect_bitwise_equal(z_sparse, z_dense, "sparse-plan vs dense refresh");
}

TEST(BlockJacobi, BreakdownFallsBackToDiagonal) {
  // One zero block breaks its Cholesky; the preconditioner must degrade to
  // the guarded diagonal (z = r on zero diagonals) instead of poisoning z.
  CooBuilder builder(4, 4);
  builder.add(0, 0, 4.0);
  builder.add(1, 1, 0.0);  // explicit structural zero
  builder.add(2, 2, 9.0);
  builder.add(3, 3, 16.0);
  const CsrMatrix a = builder.build(linalg::ZeroPolicy::kKeep);
  linalg::BlockJacobiPreconditioner precond(linalg::BlockJacobiPreconditioner::Plan::analyze(
      {0, 2, 4}, a.row_ptr(), a.col_idx()));
  precond.refresh(a);
  EXPECT_EQ(precond.fallback_blocks(), 1);

  std::vector<Real> z;
  precond.apply({4.0, 7.0, 9.0, 32.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);  // guarded inverse of the zero diagonal is 1
  EXPECT_DOUBLE_EQ(z[2], 1.0);
  EXPECT_DOUBLE_EQ(z[3], 2.0);
}

// ------------------------------------------------------------------- IC0

TEST(Ic0, InPatternRefreshMatchesFullRebuildBitwise) {
  Rng rng(105);
  const CsrMatrix a1 = random_sparse_spd(80, 5, rng);
  CsrMatrix a2 = a1;
  for (Real& v : a2.values_mut()) v *= rng.uniform(0.5, 1.5);
  // Re-symmetrize after the random scaling (transpose shares the pattern).
  {
    const CsrMatrix a2t = a2.transpose();
    auto& values = a2.values_mut();
    for (std::size_t k = 0; k < values.size(); ++k) {
      values[k] = 0.5 * (values[k] + a2t.values()[k]);
    }
  }

  // Long-lived preconditioner refreshed in pattern across value changes...
  linalg::Ic0Preconditioner refreshed(a1);
  refreshed.refresh(a1);
  refreshed.refresh(a2);
  // ...must match a from-scratch factorization of the final values.
  linalg::Ic0Preconditioner rebuilt(a2);
  rebuilt.refresh(a2);

  EXPECT_EQ(refreshed.shift(), rebuilt.shift());
  EXPECT_EQ(refreshed.jacobi_fallback(), rebuilt.jacobi_fallback());
  const std::vector<Real> r = random_vector(a2.rows(), rng);
  std::vector<Real> z_refreshed;
  std::vector<Real> z_rebuilt;
  refreshed.apply(r, z_refreshed);
  rebuilt.apply(r, z_rebuilt);
  expect_bitwise_equal(z_refreshed, z_rebuilt, "IC0 refresh vs rebuild");
}

TEST(Ic0, ReducesIterationsVsJacobi) {
  Rng rng(106);
  // Mildly ill-conditioned: weak diagonal dominance stresses plain Jacobi.
  const CsrMatrix a = random_sparse_spd(120, 8, rng);
  const std::vector<Real> b = random_vector(a.rows(), rng);
  const linalg::SerialCsrOperator op(a);
  linalg::IterativeOptions options;
  options.tolerance = 1e-12;

  linalg::CgWorkspace ws_jacobi;
  const linalg::IterativeResult jacobi =
      linalg::conjugate_gradient_with(op, b, options, ws_jacobi);

  linalg::Ic0Preconditioner ic0(a);
  ic0.refresh(a);
  EXPECT_FALSE(ic0.jacobi_fallback());
  linalg::CgWorkspace ws_ic0;
  const linalg::IterativeResult preconditioned =
      linalg::conjugate_gradient_with(op, b, options, ws_ic0, &ic0);

  EXPECT_TRUE(jacobi.converged);
  EXPECT_TRUE(preconditioned.converged);
  EXPECT_LT(preconditioned.iterations, jacobi.iterations);
}

// ------------------------------------------------------- padded-chunk SpMV

TEST(PaddedCsr, MultiplyMatchesCsrBitwise) {
  Rng rng(107);
  const CsrMatrix a = random_sparse_spd(100, 7, rng);
  const linalg::PaddedCsrChunks padded(a, 16);
  const std::vector<Real> x = random_vector(a.cols(), rng);

  std::vector<Real> y_csr(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<Real> y_padded(static_cast<std::size_t>(a.rows()), 0.0);
  // Exercise chunk-interior and chunk-crossing ranges.
  for (const auto& range : std::vector<std::pair<Index, Index>>{
           {0, a.rows()}, {0, 16}, {16, 32}, {5, 27}, {90, 100}}) {
    a.multiply_rows_into(x, y_csr, range.first, range.second);
    padded.multiply_rows_into(x, y_padded, range.first, range.second);
    expect_bitwise_equal(y_padded, y_csr, "padded SpMV");
  }
}

TEST(PaddedCsr, ChunkRefreshTracksValueChanges) {
  Rng rng(108);
  CsrMatrix a = random_sparse_spd(64, 5, rng);
  linalg::PaddedCsrChunks padded(a, 16);
  for (Real& v : a.values_mut()) v *= 2.0;
  for (Index c = 0; c < padded.chunk_count(); ++c) padded.refresh_chunk_values(a, c);

  const std::vector<Real> x = random_vector(a.cols(), rng);
  std::vector<Real> y_csr(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<Real> y_padded(static_cast<std::size_t>(a.rows()), 0.0);
  a.multiply_rows_into(x, y_csr, 0, a.rows());
  padded.multiply_rows_into(x, y_padded, 0, a.rows());
  expect_bitwise_equal(y_padded, y_csr, "padded SpMV after chunk refresh");
}

// ------------------------------------------------------- mixed precision

TEST(MixedPrecision, ConvergesWithDoubleAccuracyGate) {
  Rng rng(109);
  const CsrMatrix a = random_sparse_spd(96, 6, rng);
  const std::vector<Real> b = random_vector(a.rows(), rng);
  linalg::IterativeOptions options;
  options.tolerance = 1e-10;
  options.mixed_precision = true;

  linalg::MixedPrecisionWorkspace ws;
  const linalg::IterativeResult result = linalg::conjugate_gradient_mixed(a, b, options, ws);
  ASSERT_TRUE(result.converged);

  // Verify the gate's claim in double: the true residual meets the tolerance.
  const std::vector<Real> ax = a.multiply(result.x);
  Real rr = 0.0;
  Real bb = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rr += (b[i] - ax[i]) * (b[i] - ax[i]);
    bb += b[i] * b[i];
  }
  EXPECT_LE(std::sqrt(rr / bb), options.tolerance * (1.0 + 1e-12));
}

TEST(MixedPrecision, ReportsFailureWhenGateUnreachable) {
  Rng rng(110);
  const CsrMatrix a = random_sparse_spd(32, 4, rng);
  const std::vector<Real> b = random_vector(a.rows(), rng);
  linalg::IterativeOptions options;
  options.tolerance = 1e-10;
  options.mixed_precision = true;
  options.max_iterations = 2;  // starve the inner budget
  linalg::MixedPrecisionWorkspace ws;
  const linalg::IterativeResult result = linalg::conjugate_gradient_mixed(a, b, options, ws);
  EXPECT_FALSE(result.converged);
}

// ------------------------------------------------------- fallback ladder

TEST(Ladder, PreconditionedRungOneIsBitIdenticalToDirectCg) {
  Rng rng(111);
  const CsrMatrix a = random_sparse_spd(60, 6, rng);
  const std::vector<Real> b = random_vector(a.rows(), rng);
  std::vector<Index> block_ptr{0, 15, 30, 45, 60};
  linalg::BlockJacobiPreconditioner precond(linalg::BlockJacobiPreconditioner::Plan::analyze(
      block_ptr, a.row_ptr(), a.col_idx()));
  precond.refresh(a);

  solver::FallbackOptions options;
  options.cg.tolerance = 1e-12;
  options.preconditioner = &precond;

  solver::SolveDiagnostics diagnostics;
  solver::LadderWorkspace workspace;
  const std::vector<Real> ladder =
      solver::solve_with_fallback(a, b, options, diagnostics, workspace);
  EXPECT_EQ(diagnostics.highest_rung, solver::FallbackRung::kCg);
  EXPECT_EQ(diagnostics.tikhonov_retries, 0);

  linalg::CgWorkspace ws;
  const linalg::IterativeResult direct = linalg::conjugate_gradient_with(
      solver::ParallelCsrOperator(a, nullptr), b, options.cg, ws, &precond);
  ASSERT_TRUE(direct.converged);
  EXPECT_EQ(diagnostics.cg_iterations, direct.iterations);
  expect_bitwise_equal(ladder, direct.x, "preconditioned ladder rung 1");
}

TEST(Ladder, MixedPrecisionMissFallsThroughToFullDouble) {
  Rng rng(112);
  const CsrMatrix a = random_sparse_spd(40, 4, rng);
  const std::vector<Real> b = random_vector(a.rows(), rng);

  solver::FallbackOptions options;
  options.cg.tolerance = 1e-12;
  options.cg.mixed_precision = true;
  solver::SolveDiagnostics diagnostics;
  solver::LadderWorkspace workspace;
  const std::vector<Real> x =
      solver::solve_with_fallback(a, b, options, diagnostics, workspace);

  // Whether the pre-rung hit or missed its gate, the returned solution must
  // satisfy the double-precision tolerance.
  const std::vector<Real> ax = a.multiply(x);
  Real rr = 0.0;
  Real bb = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rr += (b[i] - ax[i]) * (b[i] - ax[i]);
    bb += b[i] * b[i];
  }
  EXPECT_LE(std::sqrt(rr / bb),
            options.cg.tolerance * options.tikhonov_tolerance_factor * (1.0 + 1e-12));
  EXPECT_EQ(diagnostics.highest_rung, solver::FallbackRung::kCg);
}

// ------------------------------------------------- solver-layer wiring

struct Scenario {
  mea::DeviceSpec spec;
  circuit::ResistanceGrid truth{1, 1};
  mea::Measurement measurement;
};

Scenario make_scenario(Index n, std::uint64_t seed) {
  Rng rng(seed);
  Scenario s{mea::square_device(n), circuit::ResistanceGrid(1, 1), {}};
  mea::GeneratorOptions options = mea::random_scenario(s.spec, /*anomalies=*/1, rng);
  options.jitter_fraction = 0.01;
  s.truth = mea::generate_field(s.spec, options, rng);
  s.measurement = mea::measure(s.spec, s.truth, mea::MeasurementOptions{}, rng);
  return s;
}

TEST(SymbolicPlans, AnalyzeBuildsPreconditionerPlans) {
  const Scenario s = make_scenario(4, 201);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  const auto symbolic = solver::SystemSymbolic::analyze(system);
  ASSERT_TRUE(symbolic->has_normal);
  ASSERT_NE(symbolic->block_plan, nullptr);
  ASSERT_NE(symbolic->ic0_pattern, nullptr);
  EXPECT_EQ(symbolic->precond_block_ptr.front(), 0);
  EXPECT_EQ(symbolic->precond_block_ptr.back(), symbolic->cols);

  solver::AnalyzeOptions jacobian_only;
  jacobian_only.build_normal = false;
  const auto lean = solver::SystemSymbolic::analyze(system, jacobian_only);
  EXPECT_FALSE(lean->has_normal);
  EXPECT_TRUE(lean->a_row_ptr.empty());
  EXPECT_EQ(lean->block_plan, nullptr);
  // The jacobian-side structure must still be complete (CSC view included).
  EXPECT_EQ(lean->jt_col_ptr.size(), static_cast<std::size_t>(lean->cols) + 1);
}

TEST(MatrixFree, NormalOperatorMatchesExplicitNormalMatrix) {
  const Scenario s = make_scenario(4, 202);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  solver::SystemKernels kernels(system, nullptr);
  const std::vector<Real> x0 = solver::initial_guess(system, s.measurement);
  kernels.refresh_jacobian(x0, nullptr);
  kernels.refresh_normal(nullptr);

  const solver::MatrixFreeNormalOperator matrix_free(kernels.jacobian(), kernels.symbolic(),
                                                     nullptr);
  EXPECT_EQ(matrix_free.rows(), kernels.normal().rows());

  Rng rng(203);
  const std::vector<Real> x = random_vector(matrix_free.rows(), rng);
  std::vector<Real> y_free;
  matrix_free.multiply_into(x, y_free);
  const std::vector<Real> y_explicit = kernels.normal().multiply(x);
  // Different summation orders (Jᵀ(Jx) vs (JᵀJ)x): equal to roundoff, not bits.
  for (std::size_t i = 0; i < y_free.size(); ++i) {
    const Real scale = std::max(std::abs(y_explicit[i]), Real{1.0});
    EXPECT_NEAR(y_free[i], y_explicit[i], 1e-9 * scale);
  }

  std::vector<Real> d_free;
  matrix_free.diagonal_into(d_free);
  const std::vector<Real> d_explicit = kernels.normal().diagonal();
  for (std::size_t i = 0; i < d_free.size(); ++i) {
    EXPECT_NEAR(d_free[i], d_explicit[i], 1e-9 * std::max(d_explicit[i], Real{1.0}));
  }
}

TEST(MatrixFree, BlockJacobiRefreshFromJacobianMatchesExplicit) {
  const Scenario s = make_scenario(4, 204);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  solver::SystemKernels kernels(system, nullptr);
  const std::vector<Real> x0 = solver::initial_guess(system, s.measurement);
  kernels.refresh_jacobian(x0, nullptr);
  kernels.refresh_normal(nullptr);
  const solver::SystemSymbolic& symbolic = kernels.symbolic();

  linalg::BlockJacobiPreconditioner from_a(symbolic.block_plan);
  from_a.refresh(kernels.normal());

  linalg::BlockJacobiPreconditioner from_j(symbolic.block_plan);
  solver::refresh_block_jacobi_from_jacobian(kernels.jacobian(), symbolic, from_j, nullptr);

  Rng rng(205);
  const std::vector<Real> r = random_vector(symbolic.cols, rng);
  std::vector<Real> z_a;
  std::vector<Real> z_j;
  from_a.apply(r, z_a);
  from_j.apply(r, z_j);
  // The packed entries are sums in different orders (CSR scatter vs per-row
  // accumulation), so compare to roundoff.
  for (std::size_t i = 0; i < z_a.size(); ++i) {
    EXPECT_NEAR(z_j[i], z_a[i], 1e-8 * std::max(std::abs(z_a[i]), Real{1.0}));
  }
}

TEST(FullSystemPreconditioned, EveryKindRecoversAndBlockJacobiCutsIterations) {
  const Scenario s = make_scenario(5, 206);
  const equations::EquationSystem system = equations::generate_system(s.measurement);

  auto solve_with_kind = [&](linalg::PreconditionerKind kind) {
    solver::FullSystemOptions options;
    options.max_iterations = 20;
    options.preconditioner = kind;
    return solver::solve_full_system(system, s.measurement, options);
  };

  const solver::FullSystemResult jacobi = solve_with_kind(linalg::PreconditionerKind::kJacobi);
  const solver::FullSystemResult block =
      solve_with_kind(linalg::PreconditionerKind::kBlockJacobi);
  const solver::FullSystemResult ic0 = solve_with_kind(linalg::PreconditionerKind::kIc0);
  const solver::FullSystemResult identity =
      solve_with_kind(linalg::PreconditionerKind::kIdentity);

  for (const auto* result : {&jacobi, &block, &ic0, &identity}) {
    EXPECT_TRUE(result->converged);
    EXPECT_EQ(result->diagnostics.highest_rung, solver::FallbackRung::kCg);
  }
  // The ISSUE's iteration-reduction claim, at test scale: the default
  // block-Jacobi must spend strictly fewer CG iterations than inline Jacobi.
  EXPECT_LT(block.diagnostics.cg_iterations, jacobi.diagnostics.cg_iterations);
  EXPECT_LT(ic0.diagnostics.cg_iterations, jacobi.diagnostics.cg_iterations);
}

TEST(FullSystemPreconditioned, BlockJacobiIsBitIdenticalAcrossBackends) {
  // The preconditioned + padded-SpMV hot path must keep the cross-backend
  // bit-identity contract (ordered reductions, fixed chunks, serial apply).
  const Scenario s = make_scenario(4, 207);
  const equations::EquationSystem system = equations::generate_system(s.measurement);
  solver::FullSystemOptions options;
  options.max_iterations = 12;

  const solver::FullSystemResult serial = solver::solve_full_system(system, s.measurement,
                                                                    options);
  for (const exec::Backend backend : {exec::Backend::kPooled, exec::Backend::kStealing}) {
    const auto executor = exec::make_executor(backend, 4);
    solver::KernelContext context;
    context.executor = executor.get();
    const solver::FullSystemResult parallel =
        solver::solve_full_system(system, s.measurement, options, context);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    expect_bitwise_equal(parallel.unknowns, serial.unknowns, "preconditioned backends");
    expect_bitwise_equal(parallel.residual_history, serial.residual_history,
                         "preconditioned history");
  }
}

TEST(FullSystemPreconditioned, MixedPrecisionSolveStaysAccurate) {
  const Scenario s = make_scenario(4, 208);
  const equations::EquationSystem system = equations::generate_system(s.measurement);

  solver::FullSystemOptions options;
  options.max_iterations = 20;
  const solver::FullSystemResult plain = solver::solve_full_system(system, s.measurement,
                                                                   options);
  options.mixed_precision = true;
  const solver::FullSystemResult mixed = solver::solve_full_system(system, s.measurement,
                                                                   options);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(mixed.converged);
  Real worst = 0.0;
  for (std::size_t e = 0; e < s.truth.flat().size(); ++e) {
    worst = std::max(worst, std::abs(mixed.recovered.flat()[e] - s.truth.flat()[e]) /
                                std::abs(s.truth.flat()[e]));
  }
  EXPECT_LT(worst, 1e-3);
}

}  // namespace
}  // namespace parma

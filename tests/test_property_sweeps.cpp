// Cross-module property sweeps: randomized devices driven through the whole
// pipeline, asserting the invariants that tie the modules together. Where
// unit suites test one behaviour each, these parameterized cases assert that
// the *composition* holds on arbitrary inputs:
//
//   P1  joint-constraint forward model == Laplacian oracle == MNA
//   P2  GF(2) homology == spanning-tree cyclomatic count == (m-1)(n-1)
//   P3  LM recovery round-trips exact measurements
//   P4  text and binary serialization both reproduce the system exactly
//   P5  schedules conserve work and respect capacity for random task sets
#include <gtest/gtest.h>

#include <cmath>

#include "core/parma.hpp"
#include "topology/boundary.hpp"

namespace parma {
namespace {

struct DeviceCase {
  Index rows;
  Index cols;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<DeviceCase>& info) {
  return "d" + std::to_string(info.param.rows) + "x" + std::to_string(info.param.cols) +
         "_s" + std::to_string(info.param.seed);
}

circuit::ResistanceGrid random_device(const DeviceCase& c) {
  Rng rng(c.seed);
  circuit::ResistanceGrid grid(c.rows, c.cols);
  for (Real& v : grid.flat()) {
    v = rng.uniform(kWetLabMinResistanceKOhm, kWetLabMaxResistanceKOhm);
  }
  return grid;
}

class DeviceSweep : public ::testing::TestWithParam<DeviceCase> {};

TEST_P(DeviceSweep, P1_ForwardModelsAgree) {
  const DeviceCase c = GetParam();
  const circuit::ResistanceGrid grid = random_device(c);
  const linalg::DenseMatrix oracle = circuit::measure_all_pairs(grid);
  const linalg::DenseMatrix joint = equations::forward_model(grid, kWetLabVoltage);
  EXPECT_LT(joint.max_abs_diff(oracle), 1e-7);

  const circuit::ResistorNetwork net = circuit::build_crossbar_network(grid);
  const circuit::MnaSolution mna = circuit::solve_mna(
      net, circuit::horizontal_node(0), circuit::vertical_node(c.rows, c.cols - 1), 5.0);
  EXPECT_NEAR(mna.equivalent_resistance, oracle(0, c.cols - 1),
              1e-8 * oracle(0, c.cols - 1));
}

TEST_P(DeviceSweep, P2_HomologyAgreesAcrossAlgorithms) {
  const DeviceCase c = GetParam();
  const topology::WireComplex wc = topology::build_wire_complex(c.rows, c.cols);
  const Index closed_form = topology::expected_betti1_crossbar(c.rows, c.cols);
  EXPECT_EQ(topology::CycleBasis(wc.num_vertices, wc.edges).cyclomatic_number(),
            closed_form);
  if (wc.num_vertices <= 60) {
    EXPECT_EQ(topology::betti_number(wc.complex, 1), closed_form);
  }
}

TEST_P(DeviceSweep, P3_RecoveryRoundTripsExactMeasurements) {
  const DeviceCase c = GetParam();
  const circuit::ResistanceGrid truth = random_device(c);
  const mea::DeviceSpec spec{c.rows, c.cols, kWetLabVoltage};
  const mea::Measurement m = mea::measure_exact(spec, truth);
  solver::InverseOptions options;
  options.max_iterations = 80;
  options.tolerance = 1e-11;
  const solver::InverseResult result = solver::recover_resistances(m, options);
  EXPECT_LT(result.max_relative_error(truth), 1e-4)
      << "misfit " << result.final_misfit;
}

TEST_P(DeviceSweep, P4_SerializationFormatsAreLossless) {
  const DeviceCase c = GetParam();
  const circuit::ResistanceGrid truth = random_device(c);
  const mea::DeviceSpec spec{c.rows, c.cols, kWetLabVoltage};
  const mea::Measurement m = mea::measure_exact(spec, truth);
  const equations::EquationSystem system = equations::generate_system(m);

  const std::string base = testing::TempDir() + "parma_sweep_" + std::to_string(c.seed);
  equations::save_system(base + ".txt", system);
  equations::save_system_binary(base + ".bin", system);
  const equations::EquationSystem from_text = equations::load_system(base + ".txt", spec);
  const equations::EquationSystem from_bin =
      equations::load_system_binary(base + ".bin", spec);

  // Identical residuals at a random interior state => identical algebra.
  Rng rng(c.seed ^ 0xABCD);
  std::vector<Real> x(static_cast<std::size_t>(system.layout.num_unknowns()));
  for (std::size_t u = 0; u < x.size(); ++u) {
    x[u] = system.layout.is_resistance(static_cast<Index>(u)) ? rng.uniform(2000.0, 11000.0)
                                                              : rng.uniform(0.0, 5.0);
  }
  const std::vector<Real> reference = equations::system_residual(system, x);
  EXPECT_LT(linalg::relative_error(equations::system_residual(from_text, x), reference),
            1e-12);
  EXPECT_LT(linalg::relative_error(equations::system_residual(from_bin, x), reference),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomDevices, DeviceSweep,
                         ::testing::Values(DeviceCase{2, 2, 1}, DeviceCase{3, 3, 2},
                                           DeviceCase{2, 6, 3}, DeviceCase{6, 2, 4},
                                           DeviceCase{4, 5, 5}, DeviceCase{5, 5, 6},
                                           DeviceCase{7, 3, 7}, DeviceCase{6, 6, 8}),
                         case_name);

// --- P5: schedules conserve work for random task sets ------------------------

class SchedulerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerSweep, WorkIsConservedAndCapacityRespected) {
  Rng rng(GetParam());
  const auto count = 20 + rng.uniform_index(300);
  std::vector<parallel::VirtualTask> tasks(count);
  Real total = 0.0;
  for (auto& t : tasks) {
    t.cost_seconds = rng.uniform(1e-6, 1e-3);
    t.category = static_cast<Index>(rng.uniform_index(4));
    t.bytes = rng.uniform_index(10000);
    total += t.cost_seconds;
  }
  const Index workers = 1 + static_cast<Index>(rng.uniform_index(32));

  parallel::CostModel zero;
  zero.worker_spawn_overhead = 0.0;
  zero.task_dispatch_overhead = 0.0;
  zero.chunk_claim_overhead = 0.0;
  zero.rebalance_overhead = 0.0;

  for (const auto& schedule :
       {parallel::schedule_balanced_lpt(tasks, workers, zero),
        parallel::schedule_dynamic(tasks, workers, 1 + static_cast<Index>(rng.uniform_index(8)),
                                   zero),
        parallel::schedule_by_category(tasks, workers, zero)}) {
    EXPECT_NEAR(schedule.total_work_seconds, total, 1e-12);
    // Per-worker busy time reconstructed from assignments must equal the
    // worker's finish time (no lost or duplicated work).
    std::vector<Real> busy(static_cast<std::size_t>(workers), 0.0);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      busy[static_cast<std::size_t>(schedule.assignment[t])] += tasks[t].cost_seconds;
    }
    Real reconstructed = 0.0;
    for (Real b : busy) reconstructed += b;
    EXPECT_NEAR(reconstructed, total, 1e-12);
    for (Index w = 0; w < workers; ++w) {
      EXPECT_LE(busy[static_cast<std::size_t>(w)],
                schedule.makespan_seconds + 1e-12);
    }
    // Memory trace ends at the byte total.
    std::uint64_t bytes = 0;
    for (const auto& t : tasks) bytes += t.bytes;
    EXPECT_EQ(schedule.memory_trace(tasks, 0).back().bytes, bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace parma

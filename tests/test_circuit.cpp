// Tests for src/circuit: networks, MNA, the crossbar forward model,
// Kirchhoff residuals, and the exponential path baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuit/crossbar.hpp"
#include "circuit/kirchhoff.hpp"
#include "circuit/mna.hpp"
#include "circuit/network.hpp"
#include "circuit/path_enumeration.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "linalg/laplacian.hpp"

namespace parma::circuit {
namespace {

ResistanceGrid random_grid(Index rows, Index cols, Rng& rng) {
  ResistanceGrid grid(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      grid.at(i, j) = rng.uniform(kWetLabMinResistanceKOhm, kWetLabMaxResistanceKOhm);
    }
  }
  return grid;
}

TEST(Network, ValidatesInputs) {
  EXPECT_THROW(ResistorNetwork(2, {{0, 0, 1.0}}), ContractError);
  EXPECT_THROW(ResistorNetwork(2, {{0, 1, -5.0}}), ContractError);
  EXPECT_THROW(ResistorNetwork(2, {{0, 3, 1.0}}), ContractError);
  EXPECT_NO_THROW(ResistorNetwork(2, {{0, 1, 1.0}}));
}

TEST(Network, ConnectivityAndLoops) {
  const ResistorNetwork triangle(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  EXPECT_TRUE(triangle.is_connected());
  EXPECT_EQ(triangle.num_independent_loops(), 1);

  const ResistorNetwork split(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  EXPECT_FALSE(split.is_connected());
  EXPECT_EQ(split.num_independent_loops(), 0);
}

TEST(Mna, VoltageDividerPotentials) {
  // 5 V across 0 -1k- 1 -4k- 2: node 1 sits at 4 V (4k of 5k above ground).
  const ResistorNetwork net(3, {{0, 1, 1000.0}, {1, 2, 4000.0}});
  const MnaSolution sol = solve_mna(net, 0, 2, 5.0);
  EXPECT_NEAR(sol.node_potentials[0], 5.0, 1e-9);
  EXPECT_NEAR(sol.node_potentials[1], 4.0, 1e-9);
  EXPECT_NEAR(sol.node_potentials[2], 0.0, 1e-9);
  EXPECT_NEAR(sol.equivalent_resistance, 5000.0, 1e-6);
  EXPECT_NEAR(sol.source_current, 0.001, 1e-12);  // 5 V / 5 MOhm-in-kOhm units
}

TEST(Mna, ParallelBranchesSplitCurrent) {
  const ResistorNetwork net(2, {{0, 1, 2000.0}, {0, 1, 2000.0}});
  const MnaSolution sol = solve_mna(net, 0, 1, 5.0);
  EXPECT_NEAR(sol.equivalent_resistance, 1000.0, 1e-9);
  EXPECT_NEAR(sol.branch_currents[0], sol.branch_currents[1], 1e-12);
}

TEST(Mna, AgreesWithEffectiveResistanceOnRandomNetworks) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = 4 + static_cast<Index>(rng.uniform_index(5));
    std::vector<Resistor> resistors;
    // Ring + random chords keeps it connected.
    for (Index v = 0; v < n; ++v) {
      resistors.push_back({v, (v + 1) % n, rng.uniform(500.0, 5000.0)});
    }
    for (int c = 0; c < 4; ++c) {
      const Index a = static_cast<Index>(rng.uniform_index(n));
      const Index b = static_cast<Index>(rng.uniform_index(n));
      if (a != b) resistors.push_back({a, b, rng.uniform(500.0, 5000.0)});
    }
    const ResistorNetwork net(n, resistors);
    const linalg::EffectiveResistance oracle(n, net.weighted_edges());
    const Index s = 0;
    const Index t = n / 2;
    const MnaSolution sol = solve_mna(net, s, t, 5.0);
    EXPECT_NEAR(sol.equivalent_resistance, oracle.between(s, t),
                1e-8 * oracle.between(s, t));
  }
}

TEST(Mna, RejectsDisconnectedAndDegenerate) {
  const ResistorNetwork split(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  EXPECT_THROW(solve_mna(split, 0, 3, 5.0), ContractError);
  const ResistorNetwork ok(2, {{0, 1, 1.0}});
  EXPECT_THROW(solve_mna(ok, 0, 0, 5.0), ContractError);
}

TEST(Kirchhoff, ResidualsVanishAtOperatingPoint) {
  Rng rng(32);
  const ResistanceGrid grid = random_grid(4, 4, rng);
  const ResistorNetwork net = build_crossbar_network(grid);
  const MnaSolution sol = solve_mna(net, horizontal_node(1), vertical_node(4, 2), 5.0);
  EXPECT_LT(max_kcl_residual(net, sol, horizontal_node(1), vertical_node(4, 2)), 1e-10);
  EXPECT_LT(max_kvl_residual(net, sol), 1e-10);
}

TEST(Kirchhoff, KvlIsATopologicalIdentity) {
  // KVL holds for ANY potential assignment -- that is the paper's point that
  // loops are homological, not physical. Feed garbage potentials.
  const ResistorNetwork net(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}});
  MnaSolution fake;
  fake.node_potentials = {3.7, -1.2, 99.0, 0.5};
  fake.branch_currents = {0, 0, 0, 0};
  EXPECT_LT(max_kvl_residual(net, fake), 1e-12);
}

TEST(Kirchhoff, IndependentEquationCountsMatchPaper) {
  // Section II-A: |V|-1 independent KCL equations, |E|-|V|+1 KVL equations.
  const ResistanceGrid grid(3, 3, 1000.0);
  const ResistorNetwork net = build_crossbar_network(grid);
  EXPECT_EQ(num_independent_kcl_equations(net), 6 - 1);
  EXPECT_EQ(num_independent_kvl_equations(net), 9 - 6 + 1);
  EXPECT_EQ(num_independent_kcl_equations(net) + num_independent_kvl_equations(net),
            static_cast<Index>(net.resistors().size()));  // |E| unknown currents
}

TEST(Crossbar, UniformGridHasSymmetricMeasurements) {
  const ResistanceGrid grid(3, 3, 3000.0);
  const linalg::DenseMatrix z = measure_all_pairs(grid);
  // All pairs are equivalent by symmetry.
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) EXPECT_NEAR(z(i, j), z(0, 0), 1e-8);
  }
  // The crossbar shunts: measured Z is well below the single resistor.
  EXPECT_LT(z(0, 0), 3000.0);
  EXPECT_GT(z(0, 0), 0.0);
}

TEST(Crossbar, UniformGridClosedForm) {
  // For uniform R on K_{n,n} the pairwise effective resistance has the
  // closed form Z = R (2n - 1) / n^2 (n=1: R; n=2: 3R/4 -- the direct
  // resistor in parallel with the single 3R detour).
  for (Index n : {1, 2, 3, 5, 8, 12}) {
    const Real r = 4000.0;
    const ResistanceGrid grid(n, n, r);
    const Real expected = r * static_cast<Real>(2 * n - 1) / static_cast<Real>(n * n);
    EXPECT_NEAR(measure_pair(grid, 0, 0), expected, 1e-7 * expected) << "n=" << n;
  }
}

TEST(Crossbar, SinglePairMatchesFullSweepAndMna) {
  Rng rng(33);
  const ResistanceGrid grid = random_grid(3, 4, rng);
  const linalg::DenseMatrix z = measure_all_pairs(grid);
  const ResistorNetwork net = build_crossbar_network(grid);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_NEAR(measure_pair(grid, i, j), z(i, j), 1e-9 * z(i, j));
      const MnaSolution sol = solve_mna(net, horizontal_node(i), vertical_node(3, j), 5.0);
      EXPECT_NEAR(sol.equivalent_resistance, z(i, j), 1e-8 * z(i, j));
    }
  }
}

TEST(Crossbar, AnomalyRaisesItsOwnPairMost) {
  ResistanceGrid grid(5, 5, 2000.0);
  const linalg::DenseMatrix base = measure_all_pairs(grid);
  grid.at(2, 3) = 11000.0;
  const linalg::DenseMatrix bumped = measure_all_pairs(grid);
  Real best_gain = 0.0;
  Index best_i = -1, best_j = -1;
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      const Real gain = bumped(i, j) - base(i, j);
      if (gain > best_gain) {
        best_gain = gain;
        best_i = i;
        best_j = j;
      }
    }
  }
  EXPECT_EQ(best_i, 2);
  EXPECT_EQ(best_j, 3);
}

TEST(Crossbar, RayleighMonotonicity) {
  // Physics property test: raising ANY single resistance must not lower ANY
  // pairwise measured resistance (Rayleigh's monotonicity law). This is a
  // strong whole-model invariant the forward solver must respect.
  Rng rng(35);
  const ResistanceGrid grid = random_grid(4, 4, rng);
  const linalg::DenseMatrix base = measure_all_pairs(grid);
  for (Index e = 0; e < 16; ++e) {
    ResistanceGrid bumped = grid;
    bumped.flat()[static_cast<std::size_t>(e)] *= 1.3;
    const linalg::DenseMatrix z = measure_all_pairs(bumped);
    for (Index i = 0; i < 4; ++i) {
      for (Index j = 0; j < 4; ++j) {
        EXPECT_GE(z(i, j), base(i, j) - 1e-9)
            << "raising R(" << e / 4 << ',' << e % 4 << ") lowered Z(" << i << ',' << j << ')';
      }
    }
  }
}

TEST(Crossbar, ReciprocityUnderTranspose) {
  // Transposing the device (swapping wire roles) transposes the measurement:
  // Z(R^T) = Z(R)^T. Catches row/column confusions in the forward model.
  Rng rng(36);
  const ResistanceGrid grid = random_grid(3, 5, rng);
  ResistanceGrid transposed(5, 3);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 5; ++j) transposed.at(j, i) = grid.at(i, j);
  }
  const linalg::DenseMatrix z = measure_all_pairs(grid);
  const linalg::DenseMatrix zt = measure_all_pairs(transposed);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 5; ++j) EXPECT_NEAR(z(i, j), zt(j, i), 1e-9 * z(i, j));
  }
}

TEST(Crossbar, MeasurementBounds) {
  // Z is at most the direct resistor (parallel paths only shunt) and at
  // least the full-parallel lower bound.
  Rng rng(37);
  const ResistanceGrid grid = random_grid(5, 5, rng);
  const linalg::DenseMatrix z = measure_all_pairs(grid);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      EXPECT_LT(z(i, j), grid.at(i, j));
      EXPECT_GT(z(i, j), 0.0);
    }
  }
}

// --- Path enumeration --------------------------------------------------------

TEST(Paths, Figure4CountsNinePathsFor3x3) {
  const auto paths = enumerate_paths(3, 3, 2, 0);  // the paper's C -> I pair
  EXPECT_EQ(paths.size(), 9u);
  EXPECT_EQ(count_paths(3, 3), 9u);
  // Shortest path is the direct crossing.
  bool found_direct = false;
  for (const auto& p : paths) {
    if (p.crossings.size() == 1) {
      EXPECT_EQ(p.crossings[0], (std::pair<Index, Index>{2, 0}));
      found_direct = true;
    }
  }
  EXPECT_TRUE(found_direct);
}

class PathCounts : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(PathCounts, EnumerationMatchesClosedForm) {
  const auto [m, n] = GetParam();
  const auto paths = enumerate_paths(m, n, 0, 0);
  EXPECT_EQ(paths.size(), count_paths(m, n));
  // Every path is simple: no repeated crossings.
  for (const auto& p : paths) {
    std::set<std::pair<Index, Index>> seen(p.crossings.begin(), p.crossings.end());
    EXPECT_EQ(seen.size(), p.crossings.size());
  }
}

INSTANTIATE_TEST_SUITE_P(SmallDevices, PathCounts,
                         ::testing::Values(std::pair<Index, Index>{1, 1},
                                           std::pair<Index, Index>{2, 2},
                                           std::pair<Index, Index>{2, 4},
                                           std::pair<Index, Index>{3, 3},
                                           std::pair<Index, Index>{4, 4},
                                           std::pair<Index, Index>{5, 4}));

TEST(Paths, GrowthIsExponential) {
  // The paper's n^(n-1)-per-pair scaling: n = 5 already has 1,689 paths and
  // n = 6 is 20x that again.
  EXPECT_EQ(count_paths(2, 2), 2u);
  EXPECT_EQ(count_paths(3, 3), 9u);
  EXPECT_EQ(count_paths(4, 4), 82u);  // 1 + 9 + 36 + 36
  EXPECT_GT(count_paths(6, 6), 10000u);
  EXPECT_GT(count_paths(8, 8), 1000000u);
}

TEST(Paths, EnumerationGuardTrips) {
  PathEnumerationOptions options;
  options.max_paths = 5;
  EXPECT_THROW(enumerate_paths(3, 3, 0, 0, options), ContractError);
}

TEST(Paths, SingleCrossingDeviceIsExact) {
  ResistanceGrid grid(1, 1, 4321.0);
  EXPECT_NEAR(aggregate_parallel_paths(grid, 0, 0), 4321.0, 1e-12);
  EXPECT_NEAR(measure_pair(grid, 0, 0), 4321.0, 1e-9);
}

TEST(Paths, ParallelAggregationUnderestimatesTrueResistance) {
  // Treating correlated paths as independent parallel branches over-counts
  // conductance, so the baseline's formula is a strict lower bound -- the
  // quantitative reason the joint-constraint reformulation matters.
  Rng rng(34);
  for (int trial = 0; trial < 5; ++trial) {
    const ResistanceGrid grid = random_grid(3, 3, rng);
    for (Index i = 0; i < 3; ++i) {
      for (Index j = 0; j < 3; ++j) {
        const Real estimate = aggregate_parallel_paths(grid, i, j);
        const Real exact = measure_pair(grid, i, j);
        EXPECT_LT(estimate, exact * 1.0000001);
      }
    }
  }
}

TEST(Paths, PathResistanceSumsCrossings) {
  ResistanceGrid grid(2, 2, 0.0);
  grid.at(0, 0) = 1.0;
  grid.at(0, 1) = 2.0;
  grid.at(1, 0) = 4.0;
  grid.at(1, 1) = 8.0;
  CrossingPath path{{{0, 1}, {1, 1}, {1, 0}}};
  EXPECT_DOUBLE_EQ(path_resistance(grid, path), 14.0);
}

}  // namespace
}  // namespace parma::circuit

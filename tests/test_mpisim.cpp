// Tests for src/mpisim: the in-process message-passing runtime and the
// virtual-time cluster model.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/require.hpp"
#include "mpisim/cluster_model.hpp"
#include "mpisim/communicator.hpp"

namespace parma::mpisim {
namespace {

TEST(Communicator, PointToPointRoundTrip) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, {1.0, 2.0, 3.0});
      const Payload reply = comm.recv(1, 8);
      ASSERT_EQ(reply.size(), 1u);
      EXPECT_DOUBLE_EQ(reply[0], 6.0);
    } else {
      const Payload msg = comm.recv(0, 7);
      Real sum = 0.0;
      for (Real v : msg) sum += v;
      comm.send(0, 8, {sum});
    }
  });
}

TEST(Communicator, TaggedMessagesDoNotCross) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, {1.0});
      comm.send(1, 2, {2.0});
    } else {
      // Receive in reverse tag order; matching must be by tag, not arrival.
      EXPECT_DOUBLE_EQ(comm.recv(0, 2)[0], 2.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 1)[0], 1.0);
    }
  });
}

TEST(Communicator, BarrierSynchronizesPhases) {
  std::atomic<int> phase_one{0};
  std::atomic<bool> violated{false};
  run_ranks(8, [&](Communicator& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    if (phase_one.load() != 8) violated.store(true);
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

class CollectiveSizes : public ::testing::TestWithParam<Index> {};

TEST_P(CollectiveSizes, BroadcastDeliversToAllRanks) {
  const Index p = GetParam();
  std::atomic<int> correct{0};
  run_ranks(p, [&](Communicator& comm) {
    for (Index root = 0; root < std::min<Index>(p, 3); ++root) {
      Payload payload;
      if (comm.rank() == root) payload = {static_cast<Real>(root), 42.0};
      const Payload got = comm.broadcast(root, std::move(payload));
      if (got.size() == 2 && got[0] == static_cast<Real>(root) && got[1] == 42.0) {
        correct.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(correct.load(), p * std::min<Index>(p, 3));
}

TEST_P(CollectiveSizes, ReduceSumAccumulatesEveryRank) {
  const Index p = GetParam();
  run_ranks(p, [p](Communicator& comm) {
    const Payload result =
        comm.reduce_sum(0, {static_cast<Real>(comm.rank()), 1.0});
    if (comm.rank() == 0) {
      ASSERT_EQ(result.size(), 2u);
      EXPECT_DOUBLE_EQ(result[0], static_cast<Real>(p * (p - 1) / 2));
      EXPECT_DOUBLE_EQ(result[1], static_cast<Real>(p));
    } else {
      EXPECT_TRUE(result.empty());
    }
  });
}

TEST_P(CollectiveSizes, AllreduceGivesEveryoneTheSum) {
  const Index p = GetParam();
  std::atomic<int> correct{0};
  run_ranks(p, [&, p](Communicator& comm) {
    const Payload result = comm.allreduce_sum({1.0});
    if (result.size() == 1 && result[0] == static_cast<Real>(p)) correct.fetch_add(1);
  });
  EXPECT_EQ(correct.load(), p);
}

TEST_P(CollectiveSizes, GatherCollectsInRankOrder) {
  const Index p = GetParam();
  run_ranks(p, [p](Communicator& comm) {
    const auto all = comm.gather(0, {static_cast<Real>(comm.rank() * 10)});
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<Index>(all.size()), p);
      for (Index r = 0; r < p; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), 1u);
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)][0], static_cast<Real>(r * 10));
      }
    }
  });
}

TEST_P(CollectiveSizes, ScatterDeliversPerRankShards) {
  const Index p = GetParam();
  run_ranks(p, [p](Communicator& comm) {
    std::vector<Payload> shards;
    if (comm.rank() == 0) {
      for (Index r = 0; r < p; ++r) shards.push_back({static_cast<Real>(r), 7.0});
    }
    const Payload mine = comm.scatter(0, std::move(shards));
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_DOUBLE_EQ(mine[0], static_cast<Real>(comm.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(Communicator, SendrecvRingShiftDoesNotDeadlock) {
  // Every rank sends to its right neighbour and receives from its left --
  // the classic pattern that deadlocks naive unbuffered send/recv.
  const Index p = 8;
  std::atomic<int> correct{0};
  run_ranks(p, [&, p](Communicator& comm) {
    const Index right = (comm.rank() + 1) % p;
    const Index left = (comm.rank() + p - 1) % p;
    const Payload got = comm.sendrecv(right, left, 5, {static_cast<Real>(comm.rank())});
    if (got.size() == 1 && got[0] == static_cast<Real>(left)) correct.fetch_add(1);
  });
  EXPECT_EQ(correct.load(), p);
}

class AlltoallSizes : public ::testing::TestWithParam<Index> {};

TEST_P(AlltoallSizes, TransposesThePayloadMatrix) {
  const Index p = GetParam();
  std::atomic<int> correct{0};
  run_ranks(p, [&, p](Communicator& comm) {
    // outgoing[r] encodes (me, r); after alltoall, incoming[r] must encode
    // (r, me) -- the transpose.
    std::vector<Payload> outgoing;
    for (Index r = 0; r < p; ++r) {
      outgoing.push_back({static_cast<Real>(comm.rank()), static_cast<Real>(r)});
    }
    const auto incoming = comm.alltoall(std::move(outgoing));
    bool ok = static_cast<Index>(incoming.size()) == p;
    for (Index r = 0; ok && r < p; ++r) {
      ok = incoming[static_cast<std::size_t>(r)].size() == 2 &&
           incoming[static_cast<std::size_t>(r)][0] == static_cast<Real>(r) &&
           incoming[static_cast<std::size_t>(r)][1] == static_cast<Real>(comm.rank());
    }
    if (ok) correct.fetch_add(1);
  });
  EXPECT_EQ(correct.load(), p);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, AlltoallSizes, ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(Communicator, AlltoallValidatesShape) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW((void)comm.alltoall({{1.0}}), ContractError);  // wrong size
      // Complete the collective correctly so rank 1 is not left waiting.
      (void)comm.alltoall({{}, {}});
    } else {
      (void)comm.alltoall({{}, {}});
    }
  });
}

TEST(Communicator, ExceptionInRankPropagates) {
  EXPECT_THROW(run_ranks(3,
                         [](Communicator& comm) {
                           if (comm.rank() == 2) throw std::runtime_error("rank failure");
                         }),
               std::runtime_error);
}

TEST(Communicator, RejectsBadArguments) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send(5, 0, {}), ContractError);
      EXPECT_THROW(comm.send(1, -1, {}), ContractError);
    }
    comm.barrier();
  });
}

TEST(Communicator, ManyRanksCollectiveStress) {
  // Well beyond physical cores; exercises oversubscription.
  const Index p = 64;
  std::atomic<int> ok{0};
  run_ranks(p, [&, p](Communicator& comm) {
    const Payload sum = comm.allreduce_sum({static_cast<Real>(comm.rank())});
    if (sum[0] == static_cast<Real>(p * (p - 1) / 2)) ok.fetch_add(1);
  });
  EXPECT_EQ(ok.load(), p);
}

// --- Cluster model -----------------------------------------------------------

std::vector<parallel::VirtualTask> work(int count, Real cost, std::uint64_t bytes = 1000) {
  std::vector<parallel::VirtualTask> tasks(static_cast<std::size_t>(count));
  for (auto& t : tasks) t = {cost, 0, bytes};
  return tasks;
}

TEST(ClusterModel, SingleRankHasNoCommunication) {
  const ClusterResult r = simulate_cluster(work(100, 0.001), 1);
  EXPECT_DOUBLE_EQ(r.comm_seconds, 0.0);
  EXPECT_GT(r.compute_seconds, 0.09);
}

TEST(ClusterModel, StrongScalingOnLargeWork) {
  // 10 s of total work: compute should scale ~linearly through 1,024 ranks.
  const auto tasks = work(10000, 0.001);
  Real prev = simulate_cluster(tasks, 32).makespan_seconds;
  for (Index p : {64, 128, 256, 512, 1024}) {
    const ClusterResult r = simulate_cluster(tasks, p);
    EXPECT_LT(r.makespan_seconds, prev);
    prev = r.makespan_seconds;
  }
  const ClusterResult serial = simulate_cluster(tasks, 1);
  const ClusterResult wide = simulate_cluster(tasks, 1024);
  EXPECT_GT(serial.makespan_seconds / wide.makespan_seconds, 100.0);
}

TEST(ClusterModel, SmallWorkDoesNotScale) {
  // 4 ms of total work: at p = 1024 the spawn/comm overheads dominate and
  // adding ranks stops helping -- the flat n <= 20 curves of Fig. 10.
  const auto tasks = work(40, 0.0001);
  const ClusterResult narrow = simulate_cluster(tasks, 32);
  const ClusterResult wide = simulate_cluster(tasks, 1024);
  EXPECT_LT(narrow.makespan_seconds / wide.makespan_seconds, 3.0);
}

TEST(ClusterModel, ComputeBalancedAcrossRanks) {
  const ClusterResult r = simulate_cluster(work(128, 0.001), 8);
  ASSERT_EQ(r.rank_compute.size(), 8u);
  for (Real c : r.rank_compute) EXPECT_NEAR(c, r.compute_seconds, r.compute_seconds * 0.2);
}

TEST(ClusterModel, StorageCostGrowsWithOutputBytesButScalesWithRanks) {
  const ClusterResult small = simulate_cluster(work(100, 0.001, 10), 64);
  const ClusterResult large = simulate_cluster(work(100, 0.001, 1000000), 64);
  EXPECT_GT(large.storage_seconds, small.storage_seconds);
  // Each rank writes its own shard: more ranks, less per-rank storage time.
  const ClusterResult narrow = simulate_cluster(work(1024, 0.001, 1000000), 8);
  const ClusterResult wide = simulate_cluster(work(1024, 0.001, 1000000), 128);
  EXPECT_GT(narrow.storage_seconds, wide.storage_seconds * 4);
}

TEST(ClusterModel, TaskCostScaleMultipliesCompute) {
  ClusterCostModel scaled;
  scaled.task_cost_scale = 500.0;
  const ClusterResult base = simulate_cluster(work(100, 0.001), 8);
  const ClusterResult python_regime = simulate_cluster(work(100, 0.001), 8, scaled);
  EXPECT_NEAR(python_regime.compute_seconds / base.compute_seconds, 500.0, 25.0);
}

TEST(ClusterModel, EfficiencyIsBoundedByOne) {
  const auto tasks = work(1000, 0.001);
  const Real serial = simulate_cluster(tasks, 1).makespan_seconds;
  for (Index p : {2, 8, 32, 128}) {
    const ClusterResult r = simulate_cluster(tasks, p);
    EXPECT_LE(r.efficiency(serial, p), 1.05);
    EXPECT_GT(r.efficiency(serial, p), 0.0);
  }
}

TEST(ClusterModel, RejectsZeroRanks) {
  EXPECT_THROW(simulate_cluster(work(1, 1.0), 0), ContractError);
}

}  // namespace
}  // namespace parma::mpisim

#include "equations/pair_system.hpp"

#include "common/require.hpp"
#include "linalg/dense_solve.hpp"

namespace parma::equations {

Real PairSolution::horizontal_potential(Index m) const {
  if (m == i) return drive_voltage;
  const Index m_prime = (m < i) ? m : m - 1;
  return ub[static_cast<std::size_t>(m_prime)];
}

Real PairSolution::vertical_potential(Index k) const {
  if (k == j) return 0.0;
  const Index k_prime = (k < j) ? k : k - 1;
  return ua[static_cast<std::size_t>(k_prime)];
}

PairSolution solve_pair(const circuit::ResistanceGrid& r, Index i, Index j, Real volts) {
  const Index rows = r.rows();
  const Index cols = r.cols();
  PARMA_REQUIRE(i >= 0 && i < rows && j >= 0 && j < cols, "pair endpoint out of range");
  PARMA_REQUIRE(volts > 0.0, "drive voltage must be positive");

  const Index na = cols - 1;  // Ua unknowns
  const Index nb = rows - 1;  // Ub unknowns
  const Index dim = na + nb;

  PairSolution solution;
  solution.i = i;
  solution.j = j;
  solution.drive_voltage = volts;
  solution.ua.assign(static_cast<std::size_t>(na), 0.0);
  solution.ub.assign(static_cast<std::size_t>(nb), 0.0);

  if (dim > 0) {
    // Local unknown order: Ua (k' = 0..na-1), then Ub (m' = 0..nb-1).
    linalg::DenseMatrix a(dim, dim);
    std::vector<Real> rhs(static_cast<std::size_t>(dim), 0.0);

    // Ua_k equation: a_k (1/R_ik + sum_m 1/R_mk) - sum_m b_m / R_mk = U / R_ik.
    for (Index k = 0; k < cols; ++k) {
      if (k == j) continue;
      const Index row_idx = (k < j) ? k : k - 1;
      Real diag = 1.0 / r.at(i, k);
      rhs[static_cast<std::size_t>(row_idx)] = volts / r.at(i, k);
      for (Index m = 0; m < rows; ++m) {
        if (m == i) continue;
        const Real g = 1.0 / r.at(m, k);
        diag += g;
        const Index col_idx = na + ((m < i) ? m : m - 1);
        a(row_idx, col_idx) -= g;
      }
      a(row_idx, row_idx) = diag;
    }
    // Ub_m equation: b_m (1/R_mj + sum_k 1/R_mk) - sum_k a_k / R_mk = 0.
    for (Index m = 0; m < rows; ++m) {
      if (m == i) continue;
      const Index row_idx = na + ((m < i) ? m : m - 1);
      Real diag = 1.0 / r.at(m, j);
      for (Index k = 0; k < cols; ++k) {
        if (k == j) continue;
        const Real g = 1.0 / r.at(m, k);
        diag += g;
        const Index col_idx = (k < j) ? k : k - 1;
        a(row_idx, col_idx) -= g;
      }
      a(row_idx, row_idx) = diag;
    }

    // The interior system is SPD (a grounded Laplacian of a connected
    // network); Cholesky both solves it and certifies that property.
    const linalg::CholeskyFactorization chol(a);
    const std::vector<Real> x = chol.solve(rhs);
    for (Index t = 0; t < na; ++t) solution.ua[static_cast<std::size_t>(t)] = x[static_cast<std::size_t>(t)];
    for (Index t = 0; t < nb; ++t) {
      solution.ub[static_cast<std::size_t>(t)] = x[static_cast<std::size_t>(na + t)];
    }
  }

  // Source current: through R_ij directly plus through each detour R_ik.
  Real current = volts / r.at(i, j);
  for (Index k = 0; k < cols; ++k) {
    if (k == j) continue;
    current += (volts - solution.vertical_potential(k)) / r.at(i, k);
  }
  PARMA_REQUIRE(current > 0.0, "non-positive source current");
  solution.source_current = current;
  solution.z_model = volts / current;
  return solution;
}

linalg::DenseMatrix forward_model(const circuit::ResistanceGrid& r, Real volts) {
  linalg::DenseMatrix z(r.rows(), r.cols());
  for (Index i = 0; i < r.rows(); ++i) {
    for (Index j = 0; j < r.cols(); ++j) {
      z(i, j) = solve_pair(r, i, j, volts).z_model;
    }
  }
  return z;
}

std::vector<Real> impedance_gradient(const circuit::ResistanceGrid& r,
                                     const PairSolution& pair) {
  // dR_eff / dR_e = (i_e / I)^2 for every branch e (Maxwell's sensitivity
  // identity; follows from the adjoint of the Laplacian solve).
  std::vector<Real> grad(static_cast<std::size_t>(r.rows() * r.cols()), 0.0);
  const Real total = pair.source_current;
  for (Index m = 0; m < r.rows(); ++m) {
    for (Index k = 0; k < r.cols(); ++k) {
      const Real branch =
          (pair.horizontal_potential(m) - pair.vertical_potential(k)) / r.at(m, k);
      const Real ratio = branch / total;
      grad[static_cast<std::size_t>(m * r.cols() + k)] = ratio * ratio;
    }
  }
  return grad;
}

}  // namespace parma::equations

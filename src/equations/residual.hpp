// Residual and analytic sparse Jacobian of the joint-constraint system.
//
// With the unknown vector x = [R | pair voltages], every equation is a sum of
// branch-current terms sign*(c + x_p - x_q)/x_r minus its rhs. The system is
// nonlinear only through the 1/x_r factors; the Jacobian entries are
//   d/dx_p =  sign / x_r
//   d/dx_q = -sign / x_r
//   d/dx_r = -sign (c + x_p - x_q) / x_r^2
// assembled sparsely (each equation touches O(m + n) unknowns).
#pragma once

#include <vector>

#include "equations/generator.hpp"
#include "linalg/sparse_matrix.hpp"

namespace parma::equations {

/// Value of one term at x.
Real term_value(const CurrentTerm& term, const std::vector<Real>& x);

/// residual_e(x) = sum of terms - rhs, for one equation.
Real equation_residual(const JointEquation& eq, const std::vector<Real>& x);

/// The three partial derivatives of one term at x. Shared (inline, single
/// definition) by system_jacobian and the scatter-map refresh in
/// solver/system_kernels.cpp so both paths run the exact same arithmetic --
/// the precondition for their bit-identity.
struct TermPartials {
  Real d_plus = 0.0;      ///< d/dx_p  =  sign / x_r       (valid if plus_unknown >= 0)
  Real d_minus = 0.0;     ///< d/dx_q  = -sign / x_r       (valid if minus_unknown >= 0)
  Real d_resistor = 0.0;  ///< d/dx_r  = -sign (c + x_p - x_q) / x_r^2
};

inline TermPartials term_partials(const CurrentTerm& term, const std::vector<Real>& x) {
  const Real r = x[static_cast<std::size_t>(term.resistor_unknown)];
  PARMA_REQUIRE(r != 0.0, "zero resistance in Jacobian");
  Real numerator = term.constant;
  if (term.plus_unknown >= 0) numerator += x[static_cast<std::size_t>(term.plus_unknown)];
  if (term.minus_unknown >= 0) numerator -= x[static_cast<std::size_t>(term.minus_unknown)];
  TermPartials p;
  p.d_plus = term.sign / r;
  p.d_minus = -term.sign / r;
  p.d_resistor = -term.sign * numerator / (r * r);
  return p;
}

/// Full residual vector, equation order preserved.
std::vector<Real> system_residual(const EquationSystem& system, const std::vector<Real>& x);

/// Sparse Jacobian at x (rows = equations, cols = unknowns). The default
/// ZeroPolicy::kDrop reproduces the historical pattern (entries whose value
/// is exactly zero vanish -- value-dependent!); kKeep makes the pattern the
/// structural one, a pure function of the equation terms.
linalg::CsrMatrix system_jacobian(const EquationSystem& system, const std::vector<Real>& x,
                                  linalg::ZeroPolicy policy = linalg::ZeroPolicy::kDrop);

/// Builds the unknown vector from a known resistance grid and exact pair
/// voltages (test helper: a consistent x should zero the residual).
std::vector<Real> pack_unknowns(const UnknownLayout& layout,
                                const std::vector<Real>& resistances,
                                const std::vector<Real>& pair_voltages);

}  // namespace parma::equations

// Residual and analytic sparse Jacobian of the joint-constraint system.
//
// With the unknown vector x = [R | pair voltages], every equation is a sum of
// branch-current terms sign*(c + x_p - x_q)/x_r minus its rhs. The system is
// nonlinear only through the 1/x_r factors; the Jacobian entries are
//   d/dx_p =  sign / x_r
//   d/dx_q = -sign / x_r
//   d/dx_r = -sign (c + x_p - x_q) / x_r^2
// assembled sparsely (each equation touches O(m + n) unknowns).
#pragma once

#include <vector>

#include "equations/generator.hpp"
#include "linalg/sparse_matrix.hpp"

namespace parma::equations {

/// Value of one term at x.
Real term_value(const CurrentTerm& term, const std::vector<Real>& x);

/// residual_e(x) = sum of terms - rhs, for one equation.
Real equation_residual(const JointEquation& eq, const std::vector<Real>& x);

/// Full residual vector, equation order preserved.
std::vector<Real> system_residual(const EquationSystem& system, const std::vector<Real>& x);

/// Sparse Jacobian at x (rows = equations, cols = unknowns).
linalg::CsrMatrix system_jacobian(const EquationSystem& system, const std::vector<Real>& x);

/// Builds the unknown vector from a known resistance grid and exact pair
/// voltages (test helper: a consistent x should zero the residual).
std::vector<Real> pack_unknowns(const UnknownLayout& layout,
                                const std::vector<Real>& resistances,
                                const std::vector<Real>& pair_voltages);

}  // namespace parma::equations

// Equation-system serialization (the disk artifact of the Fig. 9 I/O
// experiment: "the overall time taken to generate the set of equations and
// write them to a file in disk").
//
// Two renderings:
//  * human-readable algebra, e.g.
//      (U - Ua[2])/R[1,3] + ... = U/Z    # near-source, pair (1,3)
//  * a compact machine format (one line per equation: category, pair, rhs,
//    then sign:resistor:const:plus:minus term tuples), which is what the
//    benchmark writes because its volume scales like the paper's dumps.
#pragma once

#include <iosfwd>
#include <string>

#include "equations/generator.hpp"

namespace parma::equations {

/// Human-readable rendering of one equation.
std::string render_equation(const UnknownLayout& layout, const JointEquation& eq);

/// Writes one equation in the compact machine format; returns bytes written.
/// Building block for streaming writers that never hold the whole system.
std::uint64_t write_equation_line(std::ostream& os, const JointEquation& eq);

/// Writes the whole system in the compact machine format; returns bytes
/// written.
std::uint64_t write_system(std::ostream& os, const EquationSystem& system);

/// Writes equations [first, last) of the system (a shard, for concurrent
/// writers); returns bytes written.
std::uint64_t write_system_range(std::ostream& os, const EquationSystem& system,
                                 std::size_t first, std::size_t last);

/// Writes the system to `path` (single writer); returns bytes written.
std::uint64_t save_system(const std::string& path, const EquationSystem& system);

/// Reads the compact format back; validates against `layout` and throws
/// parma::IoError on malformed input.
EquationSystem load_system(const std::string& path, const mea::DeviceSpec& spec);

}  // namespace parma::equations

#include "equations/layout.hpp"

// Header-only today; the translation unit anchors the module in the build
// and reserves a home for future non-inline layout logic.

// Structured representation of one Kirchhoff joint equation.
//
// Every equation of Section IV-A has the shape
//     sum_t  sign_t * (const_t + x[plus_t] - x[minus_t]) / x[resistor_t]
//   = rhs
// where x is the global unknown vector (resistances first, then pair
// voltages; see layout.hpp), const_t is the measured end-to-end voltage
// U_ij or 0, and rhs is U_ij / Z_ij or 0. The representation is nonlinear in
// the resistance unknowns (they divide) and linear in the voltage unknowns --
// exactly the structure the paper exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace parma::equations {

/// The paper's four joint categories (Section IV-A): sources and destinations
/// carry 1 equation per pair; the intermediate categories carry n-1 each and
/// dominate the work ("roughly in the cubic order of the former").
enum class ConstraintCategory : std::uint8_t {
  kSource = 0,           ///< KCL at the driven horizontal wire i
  kDestination = 1,      ///< KCL at the grounded vertical wire j
  kNearSource = 2,       ///< KCL at a Ua joint (vertical wire k != j)
  kNearDestination = 3,  ///< KCL at a Ub joint (horizontal wire m != i)
};

inline constexpr int kNumCategories = 4;

const char* category_name(ConstraintCategory category);

/// One branch-current term: sign * (constant + x[plus] - x[minus]) / x[resistor].
struct CurrentTerm {
  Index resistor_unknown = -1;  ///< global index of the R in the denominator
  Real constant = 0.0;          ///< numerator constant (U_ij or 0)
  Index plus_unknown = -1;      ///< numerator + voltage unknown (-1: absent)
  Index minus_unknown = -1;     ///< numerator - voltage unknown (-1: absent)
  Real sign = 1.0;              ///< +1 or -1
};

struct JointEquation {
  ConstraintCategory category = ConstraintCategory::kSource;
  Index pair_i = 0;  ///< driven horizontal wire
  Index pair_j = 0;  ///< grounded vertical wire
  Real rhs = 0.0;    ///< measured U_ij / Z_ij for terminal equations, else 0
  std::vector<CurrentTerm> terms;

  /// Approximate heap footprint, used by the Fig. 8 memory model.
  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return sizeof(JointEquation) + terms.capacity() * sizeof(CurrentTerm);
  }
};

}  // namespace parma::equations

// Per-pair linear solve and forward model.
//
// For a FIXED resistance grid the joint equations of one endpoint pair are
// linear in that pair's Ua/Ub voltages: the interior KCL equations form a
// symmetric positive-definite system of size (n-1) + (m-1). Solving it gives
//  * the pair's internal wire voltages,
//  * the model impedance Z_model(i, j) = U / I_source,
//  * every branch current, and
//  * via the classical adjoint identity dR_eff/dR_e = (i_e / I)^2, the exact
//    gradient of Z_model with respect to every resistance -- the workhorse of
//    the Gauss-Newton inverse solver.
//
// This is also the executable proof that the joint-constraint formulation is
// lossless: tests assert Z_model == the Laplacian effective resistance to
// machine precision for random grids.
#pragma once

#include <vector>

#include "circuit/crossbar.hpp"
#include "linalg/dense_matrix.hpp"
#include "mea/device.hpp"

namespace parma::equations {

struct PairSolution {
  Index i = 0;
  Index j = 0;
  Real drive_voltage = 0.0;
  std::vector<Real> ua;      ///< potentials of vertical wires k != j (k' order)
  std::vector<Real> ub;      ///< potentials of horizontal wires m != i (m' order)
  Real source_current = 0.0; ///< total current leaving wire i
  Real z_model = 0.0;        ///< U / source_current

  /// Potential of horizontal wire m under this pair's drive.
  [[nodiscard]] Real horizontal_potential(Index m) const;
  /// Potential of vertical wire k under this pair's drive.
  [[nodiscard]] Real vertical_potential(Index k) const;
};

/// Solves the pair's interior KCL system for grid `r` with `volts` across
/// (i, j). Throws NumericalError if the local system is singular (cannot
/// happen for positive resistances).
PairSolution solve_pair(const circuit::ResistanceGrid& r, Index i, Index j, Real volts);

/// Z_model for every pair; must agree with circuit::measure_all_pairs.
linalg::DenseMatrix forward_model(const circuit::ResistanceGrid& r, Real volts);

/// dZ(i,j)/dR(x,y) for all (x,y), flattened row-major: the adjoint identity
/// (branch_current / source_current)^2.
std::vector<Real> impedance_gradient(const circuit::ResistanceGrid& r,
                                     const PairSolution& pair);

}  // namespace parma::equations

#include "equations/serializer.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/require.hpp"
#include "common/string_util.hpp"

namespace parma::equations {
namespace {

// Renders an unknown index using the layout's naming.
std::string unknown_name(const UnknownLayout& layout, Index unknown) {
  if (unknown < 0) return "";
  if (layout.is_resistance(unknown)) {
    const Index i = unknown / layout.cols();
    const Index j = unknown % layout.cols();
    std::ostringstream os;
    os << "R[" << i << ',' << j << ']';
    return os.str();
  }
  const Index offset = unknown - layout.num_resistors();
  const Index pair = offset / layout.voltages_per_pair();
  const Index local = offset % layout.voltages_per_pair();
  std::ostringstream os;
  if (local < layout.cols() - 1) {
    os << "Ua[p" << pair << ',' << local << ']';
  } else {
    os << "Ub[p" << pair << ',' << (local - (layout.cols() - 1)) << ']';
  }
  return os.str();
}

}  // namespace

std::string render_equation(const UnknownLayout& layout, const JointEquation& eq) {
  std::ostringstream os;
  bool first = true;
  for (const auto& term : eq.terms) {
    if (!first) os << (term.sign >= 0 ? " + " : " - ");
    else if (term.sign < 0) os << "-";
    first = false;
    os << '(';
    bool numerator_has_content = false;
    if (term.constant != 0.0) {
      os << term.constant;
      numerator_has_content = true;
    }
    if (term.plus_unknown >= 0) {
      if (numerator_has_content) os << " + ";
      os << unknown_name(layout, term.plus_unknown);
      numerator_has_content = true;
    }
    if (term.minus_unknown >= 0) {
      os << " - " << unknown_name(layout, term.minus_unknown);
      numerator_has_content = true;
    }
    if (!numerator_has_content) os << '0';
    os << ")/" << unknown_name(layout, term.resistor_unknown);
  }
  os << " = " << eq.rhs << "    # " << category_name(eq.category) << ", pair (" << eq.pair_i
     << ',' << eq.pair_j << ')';
  return os.str();
}

namespace {

// Thread-local line buffer with std::to_chars formatting: the serializer is
// the hot path of the Fig. 9 experiment and iostream formatting is ~20x
// slower than to_chars for this mix of integers and doubles.
void append_integer(std::string& buf, long long v) {
  char tmp[24];
  const auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  PARMA_ASSERT(ec == std::errc{});
  buf.append(tmp, ptr);
}

void append_real(std::string& buf, Real v) {
  char tmp[40];
  // shortest round-trip representation
  const auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  PARMA_ASSERT(ec == std::errc{});
  buf.append(tmp, ptr);
}

}  // namespace

std::uint64_t write_equation_line(std::ostream& os, const JointEquation& eq) {
  thread_local std::string line;
  line.clear();
  append_integer(line, static_cast<int>(eq.category));
  line += ' ';
  append_integer(line, eq.pair_i);
  line += ' ';
  append_integer(line, eq.pair_j);
  line += ' ';
  append_real(line, eq.rhs);
  for (const auto& t : eq.terms) {
    line += ' ';
    append_real(line, t.sign);
    line += ':';
    append_integer(line, t.resistor_unknown);
    line += ':';
    append_real(line, t.constant);
    line += ':';
    append_integer(line, t.plus_unknown);
    line += ':';
    append_integer(line, t.minus_unknown);
  }
  line += '\n';
  os.write(line.data(), static_cast<std::streamsize>(line.size()));
  return line.size();
}

std::uint64_t write_system_range(std::ostream& os, const EquationSystem& system,
                                 std::size_t first, std::size_t last) {
  PARMA_REQUIRE(first <= last && last <= system.equations.size(), "shard out of range");
  std::uint64_t bytes = 0;
  for (std::size_t e = first; e < last; ++e) {
    bytes += write_equation_line(os, system.equations[e]);
  }
  return bytes;
}

std::uint64_t write_system(std::ostream& os, const EquationSystem& system) {
  os << "# parma-equations v1 " << system.layout.rows() << ' ' << system.layout.cols() << ' '
     << system.equations.size() << '\n';
  return write_system_range(os, system, 0, system.equations.size());
}

std::uint64_t save_system(const std::string& path, const EquationSystem& system) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  const std::uint64_t bytes = write_system(out, system);
  if (!out) throw IoError("write to '" + path + "' failed");
  return bytes;
}

EquationSystem load_system(const std::string& path, const mea::DeviceSpec& spec) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line) || !starts_with(line, "# parma-equations v1")) {
    throw IoError("bad header in '" + path + "'");
  }
  const std::vector<std::string> header = split_ws(line);
  PARMA_REQUIRE(header.size() == 6, "malformed equation header");
  const Index rows = parse_index(header[3], path);
  const Index cols = parse_index(header[4], path);
  const Index count = parse_index(header[5], path);
  PARMA_REQUIRE(rows == spec.rows && cols == spec.cols, "device does not match file");

  EquationSystem system{UnknownLayout(spec), {}};
  system.equations.reserve(static_cast<std::size_t>(count));
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const std::vector<std::string> fields = split_ws(line);
    if (fields.size() < 4) throw IoError("short equation line in '" + path + "'");
    JointEquation eq;
    const Index cat = parse_index(fields[0], path);
    PARMA_REQUIRE(cat >= 0 && cat < kNumCategories, "bad category");
    eq.category = static_cast<ConstraintCategory>(cat);
    eq.pair_i = parse_index(fields[1], path);
    eq.pair_j = parse_index(fields[2], path);
    eq.rhs = parse_real(fields[3], path);
    for (std::size_t f = 4; f < fields.size(); ++f) {
      const std::vector<std::string> tuple = split(fields[f], ':');
      if (tuple.size() != 5) throw IoError("bad term tuple in '" + path + "'");
      CurrentTerm t;
      t.sign = parse_real(tuple[0], path);
      t.resistor_unknown = parse_index(tuple[1], path);
      t.constant = parse_real(tuple[2], path);
      // plus/minus may be -1; parse via signed real then cast.
      t.plus_unknown = static_cast<Index>(parse_real(tuple[3], path));
      t.minus_unknown = static_cast<Index>(parse_real(tuple[4], path));
      eq.terms.push_back(t);
    }
    system.equations.push_back(std::move(eq));
  }
  PARMA_REQUIRE(static_cast<Index>(system.equations.size()) == count,
                "equation count mismatch in file");
  return system;
}

}  // namespace parma::equations

#include "equations/generator.hpp"

#include "common/require.hpp"

namespace parma::equations {

std::vector<Index> EquationSystem::category_census() const {
  std::vector<Index> census(kNumCategories, 0);
  for (const auto& eq : equations) {
    ++census[static_cast<std::size_t>(eq.category)];
  }
  return census;
}

std::uint64_t EquationSystem::footprint_bytes() const {
  std::uint64_t total = 0;
  for (const auto& eq : equations) total += eq.footprint_bytes();
  return total;
}

std::vector<JointEquation> generate_pair_equations(const UnknownLayout& layout,
                                                   const mea::Measurement& measurement,
                                                   Index i, Index j) {
  const Index rows = layout.rows();
  const Index cols = layout.cols();
  PARMA_REQUIRE(i >= 0 && i < rows && j >= 0 && j < cols, "pair endpoint out of range");
  const Real u = measurement.u(i, j);
  // A masked pair contributes no terminal equations (the only two that read
  // Z), so its Z entry -- possibly a NaN placeholder -- is never touched.
  const bool masked = !mea::entry_valid(measurement, i, j);

  std::vector<JointEquation> eqs;
  eqs.reserve(static_cast<std::size_t>((masked ? 0 : 2) + (cols - 1) + (rows - 1)));

  // --- Source joint: U/Z = U/R_ij + sum_k (U - Ua_k)/R_ik -------------------
  if (!masked) {
    const Real z = measurement.z(i, j);
    PARMA_REQUIRE(z > 0.0, "measured Z must be positive");
    {
      JointEquation eq;
      eq.category = ConstraintCategory::kSource;
      eq.pair_i = i;
      eq.pair_j = j;
      eq.rhs = u / z;
      eq.terms.push_back({layout.r_index(i, j), u, -1, -1, 1.0});
      for (Index k = 0; k < cols; ++k) {
        if (k == j) continue;
        eq.terms.push_back({layout.r_index(i, k), u, -1, layout.ua_index(i, j, k), 1.0});
      }
      eqs.push_back(std::move(eq));
    }

    // --- Destination joint: U/Z = U/R_ij + sum_m Ub_m/R_mj ------------------
    {
      JointEquation eq;
      eq.category = ConstraintCategory::kDestination;
      eq.pair_i = i;
      eq.pair_j = j;
      eq.rhs = u / z;
      eq.terms.push_back({layout.r_index(i, j), u, -1, -1, 1.0});
      for (Index m = 0; m < rows; ++m) {
        if (m == i) continue;
        eq.terms.push_back({layout.r_index(m, j), 0.0, layout.ub_index(i, j, m), -1, 1.0});
      }
      eqs.push_back(std::move(eq));
    }
  }

  // --- Near-source joints (Ua): (U - Ua_k)/R_ik = sum_m (Ua_k - Ub_m)/R_mk --
  for (Index k = 0; k < cols; ++k) {
    if (k == j) continue;
    JointEquation eq;
    eq.category = ConstraintCategory::kNearSource;
    eq.pair_i = i;
    eq.pair_j = j;
    eq.rhs = 0.0;
    const Index ua = layout.ua_index(i, j, k);
    // Inflow from the source, moved to the LHS with negative sign.
    eq.terms.push_back({layout.r_index(i, k), u, -1, ua, -1.0});
    for (Index m = 0; m < rows; ++m) {
      if (m == i) continue;
      eq.terms.push_back({layout.r_index(m, k), 0.0, ua, layout.ub_index(i, j, m), 1.0});
    }
    eqs.push_back(std::move(eq));
  }

  // --- Near-destination joints (Ub): Ub_m/R_mj = sum_k (Ua_k - Ub_m)/R_mk ---
  for (Index m = 0; m < rows; ++m) {
    if (m == i) continue;
    JointEquation eq;
    eq.category = ConstraintCategory::kNearDestination;
    eq.pair_i = i;
    eq.pair_j = j;
    eq.rhs = 0.0;
    const Index ub = layout.ub_index(i, j, m);
    // Outflow toward the destination, on the LHS with negative sign.
    eq.terms.push_back({layout.r_index(m, j), 0.0, ub, -1, -1.0});
    for (Index k = 0; k < cols; ++k) {
      if (k == j) continue;
      eq.terms.push_back({layout.r_index(m, k), 0.0, layout.ua_index(i, j, k), ub, 1.0});
    }
    eqs.push_back(std::move(eq));
  }

  return eqs;
}

Index expected_equation_count(const mea::Measurement& measurement) {
  return measurement.spec.num_equations() - 2 * mea::masked_entry_count(measurement);
}

EquationSystem generate_system(const mea::Measurement& measurement) {
  measurement.spec.validate();
  EquationSystem system{UnknownLayout(measurement.spec), {}};
  system.mask_signature = mea::mask_signature(measurement);
  system.equations.reserve(static_cast<std::size_t>(expected_equation_count(measurement)));
  for (Index i = 0; i < measurement.spec.rows; ++i) {
    for (Index j = 0; j < measurement.spec.cols; ++j) {
      std::vector<JointEquation> pair_eqs =
          generate_pair_equations(system.layout, measurement, i, j);
      for (auto& eq : pair_eqs) system.equations.push_back(std::move(eq));
    }
  }
  PARMA_REQUIRE(static_cast<Index>(system.equations.size()) ==
                    expected_equation_count(measurement),
                "equation census mismatch");
  return system;
}

}  // namespace parma::equations

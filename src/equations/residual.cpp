#include "equations/residual.hpp"

#include "common/require.hpp"

namespace parma::equations {

Real term_value(const CurrentTerm& term, const std::vector<Real>& x) {
  PARMA_ASSERT(term.resistor_unknown >= 0 &&
               term.resistor_unknown < static_cast<Index>(x.size()));
  Real numerator = term.constant;
  if (term.plus_unknown >= 0) numerator += x[static_cast<std::size_t>(term.plus_unknown)];
  if (term.minus_unknown >= 0) numerator -= x[static_cast<std::size_t>(term.minus_unknown)];
  const Real r = x[static_cast<std::size_t>(term.resistor_unknown)];
  PARMA_REQUIRE(r != 0.0, "zero resistance in term evaluation");
  return term.sign * numerator / r;
}

Real equation_residual(const JointEquation& eq, const std::vector<Real>& x) {
  Real sum = -eq.rhs;
  for (const auto& term : eq.terms) sum += term_value(term, x);
  return sum;
}

std::vector<Real> system_residual(const EquationSystem& system, const std::vector<Real>& x) {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == system.layout.num_unknowns(),
                "unknown vector size mismatch");
  std::vector<Real> r;
  r.reserve(system.equations.size());
  for (const auto& eq : system.equations) r.push_back(equation_residual(eq, x));
  return r;
}

linalg::CsrMatrix system_jacobian(const EquationSystem& system, const std::vector<Real>& x,
                                  linalg::ZeroPolicy policy) {
  PARMA_REQUIRE(static_cast<Index>(x.size()) == system.layout.num_unknowns(),
                "unknown vector size mismatch");
  linalg::CooBuilder builder(static_cast<Index>(system.equations.size()),
                             system.layout.num_unknowns());
  for (std::size_t row = 0; row < system.equations.size(); ++row) {
    for (const auto& term : system.equations[row].terms) {
      const TermPartials p = term_partials(term, x);
      const Index row_idx = static_cast<Index>(row);
      if (term.plus_unknown >= 0) builder.add(row_idx, term.plus_unknown, p.d_plus);
      if (term.minus_unknown >= 0) builder.add(row_idx, term.minus_unknown, p.d_minus);
      builder.add(row_idx, term.resistor_unknown, p.d_resistor);
    }
  }
  return builder.build(policy);
}

std::vector<Real> pack_unknowns(const UnknownLayout& layout,
                                const std::vector<Real>& resistances,
                                const std::vector<Real>& pair_voltages) {
  PARMA_REQUIRE(static_cast<Index>(resistances.size()) == layout.num_resistors(),
                "resistance vector size mismatch");
  PARMA_REQUIRE(static_cast<Index>(pair_voltages.size()) ==
                    layout.num_pairs() * layout.voltages_per_pair(),
                "pair voltage vector size mismatch");
  std::vector<Real> x;
  x.reserve(static_cast<std::size_t>(layout.num_unknowns()));
  x.insert(x.end(), resistances.begin(), resistances.end());
  x.insert(x.end(), pair_voltages.begin(), pair_voltages.end());
  return x;
}

}  // namespace parma::equations

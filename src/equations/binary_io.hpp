// Binary equation-system format.
//
// The text format (serializer.hpp) matches the paper's human-auditable dumps;
// this binary format is the production path: ~3x smaller and ~10x faster to
// write, with the same streaming (per-equation) granularity so concurrent
// shard writers and bounded-memory pipelines work identically.
//
// Layout (little-endian, as on every supported platform):
//   header:   magic "PARMAEQ1" | u32 rows | u32 cols | u64 equation count
//   equation: u8 category | u32 pair_i | u32 pair_j | f64 rhs | u32 num_terms
//   term:     u8 flags | i32 resistor [| i32 plus][| i32 minus][| f64 const]
// where flags bit0 = sign is negative, bit1 = plus present, bit2 = minus
// present, bit3 = constant present (absent fields default to -1 / 0.0).
// Unknown indices fit i32 for every representable device ((2n-1)n^2 < 2^31
// up to n ~ 1000).
#pragma once

#include <iosfwd>
#include <string>

#include "equations/generator.hpp"

namespace parma::equations {

/// Writes the 24-byte file header; returns bytes written.
std::uint64_t write_binary_header(std::ostream& os, const UnknownLayout& layout,
                                  std::uint64_t equation_count);

/// Appends one equation; returns bytes written.
std::uint64_t write_binary_equation(std::ostream& os, const JointEquation& eq);

/// Whole-system convenience writer; returns total bytes.
std::uint64_t save_system_binary(const std::string& path, const EquationSystem& system);

/// Reads a binary system back; validates the header against `spec` and
/// throws parma::IoError on truncation or corruption.
EquationSystem load_system_binary(const std::string& path, const mea::DeviceSpec& spec);

}  // namespace parma::equations

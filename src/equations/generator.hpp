// Joint-constraint equation generation (the MEA component of the paper's
// implementation: "converts the original exponential all-pair-path problems
// into polynomial ones").
//
// For every endpoint pair (i, j) of an m x n device the generator emits the
// 2 + (n-1) + (m-1) Kirchhoff current-law equations of Section IV-A over the
// unknown layout of layout.hpp. The full system for a square device has 2n^3
// equations in (2n-1) n^2 unknowns.
#pragma once

#include <vector>

#include "equations/equation.hpp"
#include "equations/layout.hpp"
#include "mea/measurement.hpp"

namespace parma::equations {

/// The assembled system plus its layout and census.
struct EquationSystem {
  UnknownLayout layout;
  std::vector<JointEquation> equations;
  /// Signature of the measurement mask the system was generated under
  /// (mea::mask_signature): 0 for a complete sweep. Part of the structural
  /// identity of the system -- masked pairs drop their two terminal
  /// equations, so the sparsity pattern (and any cached symbolic analysis)
  /// is keyed on (shape, mask_signature).
  std::uint64_t mask_signature = 0;

  /// Number of equations per constraint category.
  [[nodiscard]] std::vector<Index> category_census() const;

  /// Total modeled heap footprint of the equation objects.
  [[nodiscard]] std::uint64_t footprint_bytes() const;
};

/// Equations of a single endpoint pair, in category order: source,
/// destination, the (n-1) near-source joints, the (m-1) near-destination
/// joints. When the pair's Z entry is masked out, the source and destination
/// equations (the only two that consume Z) are omitted; the interior joints
/// remain -- (n-1) + (m-1) equations for the pair's (n-1) + (m-1) voltage
/// unknowns, so the pair's voltage system stays square given R.
std::vector<JointEquation> generate_pair_equations(const UnknownLayout& layout,
                                                   const mea::Measurement& measurement,
                                                   Index i, Index j);

/// Equation count the measurement's mask leaves standing: the full census
/// minus two terminal equations per masked pair.
[[nodiscard]] Index expected_equation_count(const mea::Measurement& measurement);

/// The whole system, pairs in row-major order.
EquationSystem generate_system(const mea::Measurement& measurement);

}  // namespace parma::equations

// Joint-constraint equation generation (the MEA component of the paper's
// implementation: "converts the original exponential all-pair-path problems
// into polynomial ones").
//
// For every endpoint pair (i, j) of an m x n device the generator emits the
// 2 + (n-1) + (m-1) Kirchhoff current-law equations of Section IV-A over the
// unknown layout of layout.hpp. The full system for a square device has 2n^3
// equations in (2n-1) n^2 unknowns.
#pragma once

#include <vector>

#include "equations/equation.hpp"
#include "equations/layout.hpp"
#include "mea/measurement.hpp"

namespace parma::equations {

/// The assembled system plus its layout and census.
struct EquationSystem {
  UnknownLayout layout;
  std::vector<JointEquation> equations;

  /// Number of equations per constraint category.
  [[nodiscard]] std::vector<Index> category_census() const;

  /// Total modeled heap footprint of the equation objects.
  [[nodiscard]] std::uint64_t footprint_bytes() const;
};

/// Equations of a single endpoint pair, in category order: source,
/// destination, the (n-1) near-source joints, the (m-1) near-destination
/// joints.
std::vector<JointEquation> generate_pair_equations(const UnknownLayout& layout,
                                                   const mea::Measurement& measurement,
                                                   Index i, Index j);

/// The whole system, pairs in row-major order.
EquationSystem generate_system(const mea::Measurement& measurement);

}  // namespace parma::equations

#include "equations/binary_io.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "common/require.hpp"

namespace parma::equations {
namespace {

constexpr char kMagic[8] = {'P', 'A', 'R', 'M', 'A', 'E', 'Q', '1'};

template <typename T>
void put(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T take(std::istream& is, const char* what) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw IoError(std::string("binary equation file truncated at ") + what);
  return value;
}

}  // namespace

std::uint64_t write_binary_header(std::ostream& os, const UnknownLayout& layout,
                                  std::uint64_t equation_count) {
  os.write(kMagic, sizeof(kMagic));
  put(os, static_cast<std::uint32_t>(layout.rows()));
  put(os, static_cast<std::uint32_t>(layout.cols()));
  put(os, equation_count);
  return sizeof(kMagic) + 2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
}

std::uint64_t write_binary_equation(std::ostream& os, const JointEquation& eq) {
  // Category byte carries bit 7 = "rhs present" (only terminal equations
  // have a nonzero rhs); pairs fit u16 up to n = 65535.
  std::uint8_t category_byte = static_cast<std::uint8_t>(eq.category);
  if (eq.rhs != 0.0) category_byte |= 0x80;
  put(os, category_byte);
  put(os, static_cast<std::uint16_t>(eq.pair_i));
  put(os, static_cast<std::uint16_t>(eq.pair_j));
  std::uint64_t bytes = 1 + 2 * sizeof(std::uint16_t) + sizeof(std::uint16_t);
  if (eq.rhs != 0.0) {
    put(os, eq.rhs);
    bytes += sizeof(Real);
  }
  put(os, static_cast<std::uint16_t>(eq.terms.size()));
  for (const auto& t : eq.terms) {
    std::uint8_t flags = 0;
    if (t.sign < 0.0) flags |= 1;
    if (t.plus_unknown >= 0) flags |= 2;
    if (t.minus_unknown >= 0) flags |= 4;
    if (t.constant != 0.0) flags |= 8;
    put(os, flags);
    put(os, static_cast<std::int32_t>(t.resistor_unknown));
    bytes += 1 + sizeof(std::int32_t);
    if (flags & 2) {
      put(os, static_cast<std::int32_t>(t.plus_unknown));
      bytes += sizeof(std::int32_t);
    }
    if (flags & 4) {
      put(os, static_cast<std::int32_t>(t.minus_unknown));
      bytes += sizeof(std::int32_t);
    }
    if (flags & 8) {
      put(os, t.constant);
      bytes += sizeof(Real);
    }
  }
  return bytes;
}

std::uint64_t save_system_binary(const std::string& path, const EquationSystem& system) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  std::uint64_t bytes =
      write_binary_header(out, system.layout, system.equations.size());
  for (const auto& eq : system.equations) bytes += write_binary_equation(out, eq);
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
  return bytes;
}

EquationSystem load_system_binary(const std::string& path, const mea::DeviceSpec& spec) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw IoError("bad magic in binary equation file '" + path + "'");
  }
  const auto rows = take<std::uint32_t>(in, "rows");
  const auto cols = take<std::uint32_t>(in, "cols");
  const auto count = take<std::uint64_t>(in, "count");
  PARMA_REQUIRE(static_cast<Index>(rows) == spec.rows && static_cast<Index>(cols) == spec.cols,
                "device does not match binary file");

  EquationSystem system{UnknownLayout(spec), {}};
  system.equations.reserve(count);
  const Index max_unknown = system.layout.num_unknowns();
  for (std::uint64_t e = 0; e < count; ++e) {
    JointEquation eq;
    const auto cat_byte = take<std::uint8_t>(in, "category");
    const std::uint8_t cat = cat_byte & 0x7F;
    if (cat >= kNumCategories) throw IoError("corrupt category in '" + path + "'");
    eq.category = static_cast<ConstraintCategory>(cat);
    eq.pair_i = take<std::uint16_t>(in, "pair_i");
    eq.pair_j = take<std::uint16_t>(in, "pair_j");
    if (cat_byte & 0x80) eq.rhs = take<Real>(in, "rhs");
    const auto terms = take<std::uint16_t>(in, "num_terms");
    if (terms > static_cast<std::uint16_t>(std::min<Index>(2 * max_unknown, 65535))) {
      throw IoError("corrupt term count in '" + path + "'");
    }
    eq.terms.reserve(terms);
    for (std::uint32_t t = 0; t < terms; ++t) {
      CurrentTerm term;
      const auto flags = take<std::uint8_t>(in, "flags");
      if (flags & ~std::uint8_t{0x0F}) throw IoError("corrupt term flags in '" + path + "'");
      term.sign = (flags & 1) ? -1.0 : 1.0;
      term.resistor_unknown = take<std::int32_t>(in, "resistor");
      if (flags & 2) term.plus_unknown = take<std::int32_t>(in, "plus");
      if (flags & 4) term.minus_unknown = take<std::int32_t>(in, "minus");
      if (flags & 8) term.constant = take<Real>(in, "constant");
      if (term.resistor_unknown < 0 || term.resistor_unknown >= max_unknown ||
          term.plus_unknown >= max_unknown || term.minus_unknown >= max_unknown) {
        throw IoError("corrupt unknown index in '" + path + "'");
      }
      eq.terms.push_back(term);
    }
    system.equations.push_back(std::move(eq));
  }
  return system;
}

}  // namespace parma::equations

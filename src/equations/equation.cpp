#include "equations/equation.hpp"

namespace parma::equations {

const char* category_name(ConstraintCategory category) {
  switch (category) {
    case ConstraintCategory::kSource: return "source";
    case ConstraintCategory::kDestination: return "destination";
    case ConstraintCategory::kNearSource: return "near-source";
    case ConstraintCategory::kNearDestination: return "near-destination";
  }
  return "?";
}

}  // namespace parma::equations

// Global unknown layout of the joint-constraint system (paper Section IV-A).
//
// For an m x n device the unknown vector is
//   [ R_00 .. R_{m-1,n-1} |  pair(0,0) voltages | pair(0,1) voltages | ... ]
// where each pair (i, j) owns (n-1) Ua voltages (the vertical wires k != j)
// followed by (m-1) Ub voltages (the horizontal wires m' != i). The paper's
// primed subscripts k' = k if k <= j else k-1 (and likewise m') are exactly
// the block-local offsets used here.
//
// Census (square n x n): (2n-1)*n^2 unknowns and 2n^3 equations -- asserted
// by tests against the closed forms in DeviceSpec.
#pragma once

#include "common/require.hpp"
#include "common/types.hpp"
#include "mea/device.hpp"

namespace parma::equations {

class UnknownLayout {
 public:
  explicit UnknownLayout(const mea::DeviceSpec& spec)
      : rows_(spec.rows), cols_(spec.cols) {
    spec.validate();
  }

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }

  [[nodiscard]] Index num_resistors() const { return rows_ * cols_; }
  [[nodiscard]] Index voltages_per_pair() const { return (cols_ - 1) + (rows_ - 1); }
  [[nodiscard]] Index num_pairs() const { return rows_ * cols_; }
  [[nodiscard]] Index num_unknowns() const {
    return num_resistors() + num_pairs() * voltages_per_pair();
  }

  /// Global index of the resistance unknown R(i, j).
  [[nodiscard]] Index r_index(Index i, Index j) const {
    PARMA_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return i * cols_ + j;
  }

  /// Linear pair id of endpoint pair (i, j).
  [[nodiscard]] Index pair_id(Index i, Index j) const { return i * cols_ + j; }

  /// First unknown of the pair's voltage block.
  [[nodiscard]] Index pair_block(Index i, Index j) const {
    return num_resistors() + pair_id(i, j) * voltages_per_pair();
  }

  /// Global index of Ua for vertical wire k (k != j) within pair (i, j);
  /// applies the paper's k' compression.
  [[nodiscard]] Index ua_index(Index i, Index j, Index k) const {
    PARMA_ASSERT(k >= 0 && k < cols_ && k != j);
    const Index k_prime = (k < j) ? k : k - 1;
    return pair_block(i, j) + k_prime;
  }

  /// Global index of Ub for horizontal wire m (m != i) within pair (i, j);
  /// applies the paper's m' compression.
  [[nodiscard]] Index ub_index(Index i, Index j, Index m) const {
    PARMA_ASSERT(m >= 0 && m < rows_ && m != i);
    const Index m_prime = (m < i) ? m : m - 1;
    return pair_block(i, j) + (cols_ - 1) + m_prime;
  }

  /// true if `unknown` is a resistance (vs a pair voltage).
  [[nodiscard]] bool is_resistance(Index unknown) const {
    return unknown >= 0 && unknown < num_resistors();
  }

 private:
  Index rows_;
  Index cols_;
};

}  // namespace parma::equations

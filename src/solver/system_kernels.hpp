// The kernel layer: symbolic/numeric split for the Gauss-Newton hot path.
//
// Every Gauss-Newton outer iteration needs the Jacobian J(x), the normal
// matrix A = JᵀJ, and the residual r(x) of the joint-constraint system. The
// historical path rebuilt all three from scratch per iteration: a CooBuilder
// sort for J, an O(row-nnz²) triple loop plus another sort for A, and fresh
// vectors on every CG product. But the sparsity structure is a pure function
// of the device SHAPE -- the equation terms reference the same unknowns no
// matter what was measured -- so all of that analysis can happen once:
//
//   SystemSymbolic   one-time symbolic analysis (shareable across every
//                    system of the same shape, cached by core::FormationCache):
//                      * the structural CSR pattern of J plus a term -> slot
//                        scatter map (3 slots per term);
//                      * the Gustavson-style pattern of A = JᵀJ, with the
//                        diagonal always structurally present (so a Tikhonov
//                        ridge can be added in place);
//                      * a CSC view of J's pattern (row lists per unknown,
//                        rows ascending) driving the A refresh.
//   SystemKernels    the per-solve numeric workspace: holds J and A with
//                    fixed patterns and refreshes their values in place --
//                    no CooBuilder, no sort, no allocation per refresh.
//
// Refreshes and the residual parallelize over FIXED chunk boundaries (a pure
// function of the row count) on an exec::Executor. Every row is written by
// exactly one chunk and its accumulation order is pinned by the symbolic
// structure, so the results are bit-identical across serial/pooled/stealing
// backends and any worker count -- and, because CooBuilder::build sums
// duplicates stably in insertion order, bit-identical to the CooBuilder path
// itself (asserted in tests/test_kernels.cpp).
#pragma once

#include <memory>
#include <vector>

#include "equations/generator.hpp"
#include "exec/executor.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace parma::solver {

/// What SystemSymbolic::analyze builds beyond the Jacobian structure.
/// build_normal=false is the large-n mode: A = JᵀJ has ≈4n⁵ nonzeros and
/// stops being formable around n=64 (n=100 would need ~640 GB), while J
/// (≈4n⁴) still fits -- kernels built from a jacobian-only symbolic drive
/// CG through MatrixFreeNormalOperator instead of an explicit A.
struct AnalyzeOptions {
  bool build_normal = true;
};

/// Shape-invariant symbolic structure of one EquationSystem. Immutable after
/// analyze(); share one instance across all systems of a shape.
struct SystemSymbolic {
  Index rows = 0;  ///< equations
  Index cols = 0;  ///< unknowns
  bool has_normal = true;  ///< A pattern + preconditioner plans present

  /// Structural CSR pattern of J: every slot a term can touch, kept even
  /// when the numeric value happens to be exactly zero (ZeroPolicy::kKeep
  /// semantics -- the pattern never depends on x).
  std::vector<Index> j_row_ptr;
  std::vector<Index> j_col_idx;

  /// Term -> slot scatter map: 3 consecutive entries per term, flattened in
  /// (equation, term) order: the J-slots of d/dx_plus, d/dx_minus,
  /// d/dx_resistor (-1 where the term has no plus/minus unknown).
  std::vector<Index> term_slots;
  /// First flattened term index of each equation (size rows + 1), so chunked
  /// refreshes can random-access their term range.
  std::vector<Index> term_begin;

  /// CSR pattern of A = JᵀJ (Gustavson union over J's structural pattern),
  /// with A(i, i) forced structurally present for in-place ridge addition.
  std::vector<Index> a_row_ptr;
  std::vector<Index> a_col_idx;
  std::vector<Index> a_diag_slot;  ///< slot of A(i, i) per unknown i

  /// CSC view of J's pattern: for unknown column i, the touching equation
  /// rows (ascending -- this pins the A-refresh summation order) and the
  /// matching J slot.
  std::vector<Index> jt_col_ptr;
  std::vector<Index> jt_row_idx;
  std::vector<Index> jt_slot;

  /// Per-electrode preconditioner blocks over the unknown layout: one block
  /// per device row of resistances (they couple through shared wire
  /// equations), one block per endpoint pair's contiguous voltage group
  /// (those unknowns appear only in that pair's equations). Built even in
  /// jacobian-only mode -- the matrix-free path extracts its block diagonals
  /// straight from J.
  std::vector<Index> precond_block_ptr;
  /// Symbolic preconditioner plans over A's pattern (null without
  /// build_normal): the block-Jacobi CSR-slot scatter map and the IC0
  /// lower-triangular fill pattern. Shared via the same FormationCache entry
  /// as the rest of the symbolic, so per-solve preconditioner construction is
  /// numeric-only.
  std::shared_ptr<const linalg::BlockJacobiPreconditioner::Plan> block_plan;
  std::shared_ptr<const linalg::Ic0Preconditioner::Pattern> ic0_pattern;

  [[nodiscard]] std::size_t j_nnz() const { return j_col_idx.size(); }
  [[nodiscard]] std::size_t a_nnz() const { return a_col_idx.size(); }

  /// One-time symbolic analysis. Only the term/unknown structure of `system`
  /// is read (never measured values), so the result is valid for every
  /// system of the same device shape.
  static std::shared_ptr<const SystemSymbolic> analyze(
      const equations::EquationSystem& system);
  static std::shared_ptr<const SystemSymbolic> analyze(
      const equations::EquationSystem& system, const AnalyzeOptions& options);
};

/// Fixed parallel-chunk sizing (pure functions of the row count; never of
/// the backend or worker count -- the determinism contract).
inline constexpr Index kRowChunk = 256;        ///< J refresh / residual rows per chunk
inline constexpr Index kSpmvRowChunk = 512;    ///< CG SpMV rows per chunk
inline constexpr Index kNormalChunkCount = 16; ///< fixed chunk count of the A refresh
inline constexpr Index kSerialRowThreshold = 2048;  ///< below: skip executor dispatch

/// Per-solve numeric workspace: J and A with immutable patterns, values
/// refreshed in place; per-chunk dense accumulators for the Gustavson
/// refresh preallocated once.
///
/// Holds references to `system` (and reads it on every refresh); the system
/// must outlive the kernels.
class SystemKernels {
 public:
  /// `symbolic` null analyzes here; pass the FormationCache-shared instance
  /// to amortize analysis across requests of one shape.
  explicit SystemKernels(const equations::EquationSystem& system,
                         std::shared_ptr<const SystemSymbolic> symbolic = nullptr);

  [[nodiscard]] const SystemSymbolic& symbolic() const { return *symbolic_; }

  /// J at the x of the last refresh_jacobian (structural pattern, explicit
  /// zeros possible).
  [[nodiscard]] const linalg::CsrMatrix& jacobian() const { return j_; }

  /// A = JᵀJ at the J of the last refresh_normal.
  [[nodiscard]] const linalg::CsrMatrix& normal() const { return a_; }

  /// Cache-line-aligned, chunk-contiguous shadow of A's values, refreshed in
  /// lockstep by refresh_normal: the SIMD-friendly SpMV layout for the CG
  /// rungs (bit-identical products; see linalg::PaddedCsrChunks). Only with a
  /// build_normal symbolic.
  [[nodiscard]] const linalg::PaddedCsrChunks& padded_normal() const { return padded_a_; }

  /// Scatter-map refresh of J's values at x: zero the row's slots, then
  /// accumulate the term partials in term order (the CooBuilder insertion
  /// order). Parallel over kRowChunk blocks; bit-identical for any backend.
  void refresh_jacobian(const std::vector<Real>& x, exec::Executor* executor = nullptr);

  /// Gustavson numeric refresh of A from the current J values, row block per
  /// fixed chunk with a per-chunk dense accumulator. Contributions to A(i, c)
  /// sum over equations r in ascending order -- the same order the reference
  /// CooBuilder path produces.
  void refresh_normal(exec::Executor* executor = nullptr);

  /// Row-weighted refresh: A = J^T W J with W = diag(row_weights), the IRLS
  /// normal equations. Weights are numeric-only -- the pattern, chunking, and
  /// summation order are exactly refresh_normal's (which this equals bit-for-
  /// bit when every weight is 1.0 -- the unweighted entry never reads a
  /// weight, so the robust-off path is untouched).
  void refresh_normal_weighted(const std::vector<Real>& row_weights,
                               exec::Executor* executor = nullptr);

  /// refresh_jacobian followed by refresh_normal.
  void refresh(const std::vector<Real>& x, exec::Executor* executor = nullptr);

  /// Residual r(x) into a preallocated vector, parallel over equations.
  void residual_into(const std::vector<Real>& x, std::vector<Real>& r,
                     exec::Executor* executor = nullptr) const;

 private:
  /// Shared body of refresh_normal / refresh_normal_weighted; `row_weights`
  /// null means unweighted (no per-term multiply at all).
  void refresh_normal_impl(const Real* row_weights, exec::Executor* executor);

  const equations::EquationSystem* system_;
  std::shared_ptr<const SystemSymbolic> symbolic_;
  linalg::CsrMatrix j_;
  linalg::CsrMatrix a_;
  linalg::PaddedCsrChunks padded_a_;  ///< aligned SpMV shadow of a_
  Index normal_chunk_rows_ = 1;
  std::vector<std::vector<Real>> accumulators_;  ///< one per fixed A-refresh chunk
};

/// CG operator over a CsrMatrix with executor-parallel SpMV (row-partitioned,
/// disjoint writes) and ordered chunked dot reductions over the fixed
/// boundaries of linalg::ordered_dot -- the parallel results are
/// bit-identical to linalg::SerialCsrOperator at any worker count. A null
/// executor (or a small system) runs serially.
class ParallelCsrOperator {
 public:
  ParallelCsrOperator(const linalg::CsrMatrix& a, exec::Executor* executor);
  /// With a padded shadow of `a` (same pattern, kSpmvRowChunk chunking), the
  /// SpMV streams the aligned chunk slabs instead -- identical arithmetic
  /// order, identical bits, vectorization-friendly loads.
  ParallelCsrOperator(const linalg::CsrMatrix& a, exec::Executor* executor,
                      const linalg::PaddedCsrChunks* padded);

  [[nodiscard]] Index rows() const { return a_->rows(); }
  void multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const;
  void diagonal_into(std::vector<Real>& d) const;
  [[nodiscard]] Real dot(const std::vector<Real>& a, const std::vector<Real>& b,
                         std::vector<Real>& partials) const;

 private:
  const linalg::CsrMatrix* a_;
  exec::Executor* executor_;
  const linalg::PaddedCsrChunks* padded_ = nullptr;
};

/// Matrix-free normal operator y = Jᵀ(J x) for conjugate_gradient_with: CG at
/// sizes where the explicit A = JᵀJ (≈4n⁵ nonzeros, ~640 GB at n=100) can no
/// longer be formed while J (≈4n⁴) still can. The J x product parallelizes
/// over fixed row chunks (disjoint writes); the Jᵀ t scatter and the dot
/// reductions keep the serial summation orders, so results are bit-identical
/// across backends. diagonal_into computes diag(JᵀJ) = Σ_r J(r, i)² from the
/// symbolic CSC view -- rung-1 Jacobi needs no A either.
class MatrixFreeNormalOperator {
 public:
  MatrixFreeNormalOperator(const linalg::CsrMatrix& j, const SystemSymbolic& symbolic,
                           exec::Executor* executor);

  [[nodiscard]] Index rows() const { return j_->cols(); }
  void multiply_into(const std::vector<Real>& x, std::vector<Real>& y) const;
  void diagonal_into(std::vector<Real>& d) const;
  [[nodiscard]] Real dot(const std::vector<Real>& a, const std::vector<Real>& b,
                         std::vector<Real>& partials) const;

 private:
  const linalg::CsrMatrix* j_;
  const SystemSymbolic* sym_;
  exec::Executor* executor_;
  mutable std::vector<Real> t_;  ///< J x intermediate (equation space)
};

/// Numeric refresh of a block-Jacobi preconditioner straight from J's values
/// (never forming A): packed block (i, c) = Σ_r J(r, i) J(r, c), lower
/// triangles only, then factor. The per-(column, equation) row scans restrict
/// to the block's column range by binary search, so the cost is
/// O(j_nnz · (log row-nnz + intra-block entries)) -- feasible at n=100 where
/// a full JᵀJ product is not. Blocks are independent: executor-parallel with
/// bit-identical results.
void refresh_block_jacobi_from_jacobian(const linalg::CsrMatrix& j,
                                        const SystemSymbolic& symbolic,
                                        linalg::BlockJacobiPreconditioner& precond,
                                        exec::Executor* executor = nullptr);

/// Per-solve preconditioner facade over the symbolic plans: construction
/// picks the implementation (kJacobi maps to a null Preconditioner* -- the
/// historical inline-Jacobi CG path, bit-identical to every prior release);
/// refresh() is the in-pattern numeric phase, called once per outer
/// iteration after refresh_normal.
class NormalPreconditioner {
 public:
  NormalPreconditioner(const SystemSymbolic& symbolic, linalg::PreconditionerKind kind);

  /// Numeric refresh from the current normal matrix. No-op for
  /// kJacobi/kIdentity.
  void refresh(const linalg::CsrMatrix& a);

  /// The pointer to hand FallbackOptions::preconditioner (null for kJacobi).
  [[nodiscard]] const linalg::Preconditioner* get() const { return impl_.get(); }
  [[nodiscard]] linalg::PreconditionerKind kind() const { return kind_; }

 private:
  linalg::PreconditionerKind kind_;
  std::unique_ptr<linalg::Preconditioner> impl_;
  linalg::BlockJacobiPreconditioner* block_ = nullptr;  ///< typed view into impl_
  linalg::Ic0Preconditioner* ic0_ = nullptr;            ///< typed view into impl_
};

/// The pre-kernel JᵀJ construction (CooBuilder with an O(row-nnz²) triple
/// loop plus a sort): the reference the kernel refresh is benchmarked and
/// bit-compared against, and the baseline the legacy solver path still uses.
[[nodiscard]] linalg::CsrMatrix reference_normal_matrix(
    const linalg::CsrMatrix& j, linalg::ZeroPolicy policy = linalg::ZeroPolicy::kDrop);

}  // namespace parma::solver

// The MEA inverse problem: recover the resistance grid R from the measured
// pairwise impedances Z (paper Section II-C).
//
// Parametrization is in log-space (theta = ln R), which enforces R > 0 --
// the paper notes "resistance cannot be non-positive values" -- and evens out
// the 2,000-11,000 kOhm dynamic range. Levenberg-Marquardt iterations use
// the exact adjoint gradient dZ/dR = (i_branch / I)^2 from
// equations/pair_system.hpp, so one forward sweep yields the full dense
// Jacobian row per pair.
#pragma once

#include <optional>
#include <vector>

#include "circuit/crossbar.hpp"
#include "mea/measurement.hpp"
#include "solver/fallback.hpp"
#include "solver/robust.hpp"

namespace parma::solver {

struct InverseOptions {
  Index max_iterations = 50;
  Real tolerance = 1e-8;          ///< stop when relative RMS misfit falls below
  Real initial_lambda = 1e-3;     ///< LM damping start
  Real lambda_shrink = 0.3;       ///< on accepted step
  Real lambda_grow = 4.0;         ///< on rejected step
  Real initial_resistance = 0.0;  ///< starting guess; 0 means "use Z(i,j)"

  /// Worker threads for the forward sweeps (per-pair nodal solves are the
  /// independent units the topology exposes; they dominate each iteration).
  /// 1 = serial. Results are bit-identical for any worker count.
  Index workers = 1;

  /// Warm start: a full starting grid (e.g. the previous epoch's recovery in
  /// the 0/6/12/24-hour campaigns). Takes precedence over
  /// `initial_resistance`; must match the device shape and be positive.
  std::optional<circuit::ResistanceGrid> initial_grid;

  /// Route the damped normal-equation solves through the CG -> Tikhonov ->
  /// dense fallback ladder (fallback.hpp) instead of going straight to the
  /// dense LU. Off by default: the direct dense solve is the established
  /// production numerics; the ladder is for resilient serving, where a
  /// poisoned system should degrade (and be observable) rather than throw.
  bool use_fallback_ladder = false;
  /// Rung 1 CG iteration cap when use_fallback_ladder is set.
  Index ladder_cg_max_iterations = 500;
  /// Rung 1 CG relative tolerance when use_fallback_ladder is set.
  Real ladder_cg_tolerance = 1e-12;
  /// Preconditioner for the ladder's CG rungs (only read with
  /// use_fallback_ladder). kJacobi = the historical inline diagonal,
  /// bit-identical to previous releases. kBlockJacobi factors one dense
  /// cols-sized block per device row of the damped normal matrix, refreshed
  /// every damped attempt. kIc0 is not meaningful on this dense path and is
  /// treated as kBlockJacobi.
  linalg::PreconditionerKind ladder_preconditioner = linalg::PreconditionerKind::kJacobi;

  /// IRLS robust loss over the per-pair impedance residuals (robust.hpp).
  /// kNone keeps the iteration bit-identical to the pre-robust LM. Masked
  /// measurement entries are excluded from the fit either way.
  RobustOptions robust;
  /// When > 0: the diagonal condition estimate of J^T J above this target
  /// scales the fallback ladder's rung-2 ridge (only meaningful with
  /// use_fallback_ladder). 0 = fixed ridge.
  Real adaptive_tikhonov_target = 0.0;

  /// MAP prior strength for masked solves, as a fraction of the median
  /// J^T J diagonal. A masked pair's terminal equations are gone, so its
  /// resistance (and the weakly determined combinations it couples into)
  /// would otherwise drift freely along the data null space; the prior pins
  /// log R to the initial guess with weight mu^2 = strength * median diag.
  /// Only active when the measurement has masked entries -- unmasked solves
  /// stay bit-identical to the legacy iteration. 0 disables it. The default
  /// was tuned on the 10%-corruption sweep: it keeps the masked median error
  /// within 2x of fault-free at n=8..16 (stronger priors over-bias the fit,
  /// weaker ones let the null space drift).
  Real masked_prior_strength = 3e-2;
};

struct InverseResult {
  circuit::ResistanceGrid recovered{1, 1};
  Index iterations = 0;
  bool converged = false;
  Real final_misfit = 0.0;              ///< relative RMS of Z_model vs Z_measured
  std::vector<Real> misfit_history;     ///< one entry per accepted iteration
  /// Linear-solve fallback usage (populated when use_fallback_ladder is on;
  /// otherwise records the dense solves as kDense-free direct solves).
  SolveDiagnostics diagnostics;
  /// Why the LM loop stopped; a non-finite misfit on every damped attempt
  /// reports kNumericalBreakdown instead of looking like a stall.
  TerminationReason termination = TerminationReason::kMaxIterations;
  /// Robust-estimation diagnostics (final scale, flagged outlier entries,
  /// condition estimate, masked-entry count).
  RobustReport robust;

  /// Max relative error against a known ground truth (test/diagnostic).
  [[nodiscard]] Real max_relative_error(const circuit::ResistanceGrid& truth) const;
};

/// Relative RMS misfit between a model's Z and the measurement's Z.
Real impedance_misfit(const linalg::DenseMatrix& z_model, const linalg::DenseMatrix& z_measured);

/// Mask-aware overload: masked entries are excluded from both numerator and
/// denominator. Identical to the matrix overload for a complete sweep.
Real impedance_misfit(const linalg::DenseMatrix& z_model, const mea::Measurement& measurement);

/// Runs log-space Levenberg-Marquardt; throws NumericalError if the normal
/// equations become singular (should not happen for positive damping).
InverseResult recover_resistances(const mea::Measurement& measurement,
                                  const InverseOptions& options = {});

}  // namespace parma::solver

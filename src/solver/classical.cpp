#include "solver/classical.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "equations/pair_system.hpp"
#include "linalg/dense_solve.hpp"
#include "solver/inverse_solver.hpp"

namespace parma::solver {
namespace {

std::vector<Real> impedance_residual(const linalg::DenseMatrix& z_model,
                                     const linalg::DenseMatrix& z_measured) {
  std::vector<Real> r;
  r.reserve(static_cast<std::size_t>(z_model.rows() * z_model.cols()));
  for (Index i = 0; i < z_model.rows(); ++i) {
    for (Index j = 0; j < z_model.cols(); ++j) r.push_back(z_measured(i, j) - z_model(i, j));
  }
  return r;
}

}  // namespace

SensitivityModel build_sensitivity(const mea::Measurement& measurement,
                                   Real background_resistance) {
  measurement.spec.validate();
  const Index rows = measurement.spec.rows;
  const Index cols = measurement.spec.cols;
  const Index pairs = rows * cols;

  Real background = background_resistance;
  if (background <= 0.0) {
    // Practitioner's fallback: Z under-reads R (the crossbar shunts), so the
    // mean measured Z scaled up makes a serviceable uniform background.
    Real mean_z = 0.0;
    for (Index i = 0; i < rows; ++i) {
      for (Index j = 0; j < cols; ++j) mean_z += measurement.z(i, j);
    }
    mean_z /= static_cast<Real>(pairs);
    background = 1.5 * mean_z;
  }

  SensitivityModel model;
  model.background = circuit::ResistanceGrid(rows, cols, background);
  model.z_background = linalg::DenseMatrix(rows, cols);
  model.sensitivity = linalg::DenseMatrix(pairs, pairs);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      const equations::PairSolution pair =
          equations::solve_pair(model.background, i, j, measurement.spec.drive_voltage);
      model.z_background(i, j) = pair.z_model;
      const std::vector<Real> grad = equations::impedance_gradient(model.background, pair);
      for (Index e = 0; e < pairs; ++e) {
        model.sensitivity(i * cols + j, e) = grad[static_cast<std::size_t>(e)];
      }
    }
  }
  return model;
}

circuit::ResistanceGrid linear_back_projection(const mea::Measurement& measurement,
                                               const SensitivityModel& model) {
  const Index rows = measurement.spec.rows;
  const Index cols = measurement.spec.cols;
  const Index pairs = rows * cols;
  PARMA_REQUIRE(model.sensitivity.rows() == pairs, "sensitivity/measurement shape mismatch");

  const std::vector<Real> dz = impedance_residual(model.z_background, measurement.z);
  const std::vector<Real> numerator = model.sensitivity.multiply_transpose(dz);
  circuit::ResistanceGrid out = model.background;
  for (Index e = 0; e < pairs; ++e) {
    Real weight = 0.0;
    for (Index p = 0; p < pairs; ++p) weight += model.sensitivity(p, e);
    const Real delta = (weight > 0.0) ? numerator[static_cast<std::size_t>(e)] / weight : 0.0;
    out.flat()[static_cast<std::size_t>(e)] =
        std::max(out.flat()[static_cast<std::size_t>(e)] + delta, 1.0);
  }
  return out;
}

circuit::ResistanceGrid tikhonov_reconstruction(const mea::Measurement& measurement,
                                                const SensitivityModel& model, Real lambda) {
  PARMA_REQUIRE(lambda > 0.0, "Tikhonov lambda must be positive");
  const Index rows = measurement.spec.rows;
  const Index cols = measurement.spec.cols;
  const Index pairs = rows * cols;
  PARMA_REQUIRE(model.sensitivity.rows() == pairs, "sensitivity/measurement shape mismatch");

  const std::vector<Real> dz = impedance_residual(model.z_background, measurement.z);
  const linalg::DenseMatrix st = model.sensitivity.transpose();
  linalg::DenseMatrix normal = st.multiply(model.sensitivity);
  Real trace = 0.0;
  for (Index d = 0; d < pairs; ++d) trace += normal(d, d);
  const Real damping = lambda * trace / static_cast<Real>(pairs);
  for (Index d = 0; d < pairs; ++d) normal(d, d) += damping;

  const std::vector<Real> delta = linalg::solve_dense(normal, st.multiply(dz));
  circuit::ResistanceGrid out = model.background;
  for (Index e = 0; e < pairs; ++e) {
    out.flat()[static_cast<std::size_t>(e)] =
        std::max(out.flat()[static_cast<std::size_t>(e)] + delta[static_cast<std::size_t>(e)],
                 1.0);
  }
  return out;
}

LandweberResult landweber(const mea::Measurement& measurement, const SensitivityModel& model,
                          const LandweberOptions& options) {
  PARMA_REQUIRE(options.relaxation > 0.0 && options.relaxation < 1.0,
                "Landweber relaxation in (0, 1)");
  PARMA_REQUIRE(options.max_iterations >= 1, "need at least one iteration");
  const Index rows = measurement.spec.rows;
  const Index cols = measurement.spec.cols;
  const Index pairs = rows * cols;

  // Convergence-safe step: alpha = relaxation * 2 / ||S||_F^2 (the Frobenius
  // norm dominates the spectral norm).
  Real frob2 = 0.0;
  for (Index p = 0; p < pairs; ++p) {
    for (Index e = 0; e < pairs; ++e) frob2 += model.sensitivity(p, e) * model.sensitivity(p, e);
  }
  PARMA_REQUIRE(frob2 > 0.0, "degenerate sensitivity matrix");
  const Real alpha = options.relaxation * 2.0 / frob2;

  LandweberResult result;
  result.recovered = model.background;
  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const linalg::DenseMatrix z_model =
        equations::forward_model(result.recovered, measurement.spec.drive_voltage);
    const Real misfit = impedance_misfit(z_model, measurement.z);
    result.misfit_history.push_back(misfit);
    result.final_misfit = misfit;
    if (misfit <= options.tolerance) break;

    const std::vector<Real> dz = impedance_residual(z_model, measurement.z);
    const std::vector<Real> update = model.sensitivity.multiply_transpose(dz);
    for (Index e = 0; e < pairs; ++e) {
      Real& value = result.recovered.flat()[static_cast<std::size_t>(e)];
      value = std::max(value + alpha * update[static_cast<std::size_t>(e)], 1.0);
    }
  }
  return result;
}

}  // namespace parma::solver

#include "solver/system_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "equations/residual.hpp"

namespace parma::solver {
namespace {

// Runs fn over the exact fixed chunk boundaries [lo, min(lo + chunk, rows))
// either inline (null executor or a small system) or via submit_bulk. Both
// dispatches visit the same boundaries -- the chunking is part of the numeric
// contract (the A refresh indexes its accumulator by lo / chunk), never a
// tuning knob the backend may alter.
void run_chunked(exec::Executor* executor, Index rows, Index chunk,
                 const std::function<void(Index, Index)>& fn) {
  if (rows <= 0) return;
  if (executor == nullptr || rows < kSerialRowThreshold) {
    for (Index lo = 0; lo < rows; lo += chunk) fn(lo, std::min(rows, lo + chunk));
    return;
  }
  executor->submit_bulk(0, rows, chunk, fn);
}

// Slot of `col` within the sorted column slice [begin, end) of j_col_idx.
Index find_slot(const std::vector<Index>& col_idx, Index begin, Index end, Index col) {
  const auto first = col_idx.begin() + begin;
  const auto last = col_idx.begin() + end;
  const auto it = std::lower_bound(first, last, col);
  PARMA_ASSERT(it != last && *it == col);
  return static_cast<Index>(it - col_idx.begin());
}

}  // namespace

std::shared_ptr<const SystemSymbolic> SystemSymbolic::analyze(
    const equations::EquationSystem& system) {
  return analyze(system, AnalyzeOptions{});
}

std::shared_ptr<const SystemSymbolic> SystemSymbolic::analyze(
    const equations::EquationSystem& system, const AnalyzeOptions& options) {
  auto sym = std::make_shared<SystemSymbolic>();
  const Index rows = static_cast<Index>(system.equations.size());
  const Index cols = system.layout.num_unknowns();
  sym->rows = rows;
  sym->cols = cols;

  // Flattened term offsets.
  sym->term_begin.resize(static_cast<std::size_t>(rows) + 1);
  sym->term_begin[0] = 0;
  for (Index row = 0; row < rows; ++row) {
    sym->term_begin[static_cast<std::size_t>(row) + 1] =
        sym->term_begin[static_cast<std::size_t>(row)] +
        static_cast<Index>(system.equations[static_cast<std::size_t>(row)].terms.size());
  }
  const Index total_terms = sym->term_begin[static_cast<std::size_t>(rows)];

  // Structural CSR pattern of J: the union of unknowns each row's terms touch.
  sym->j_row_ptr.resize(static_cast<std::size_t>(rows) + 1);
  sym->j_row_ptr[0] = 0;
  std::vector<Index> row_cols;
  for (Index row = 0; row < rows; ++row) {
    row_cols.clear();
    for (const auto& term : system.equations[static_cast<std::size_t>(row)].terms) {
      PARMA_REQUIRE(term.resistor_unknown >= 0 && term.resistor_unknown < cols,
                    "term resistor unknown out of range");
      if (term.plus_unknown >= 0) row_cols.push_back(term.plus_unknown);
      if (term.minus_unknown >= 0) row_cols.push_back(term.minus_unknown);
      row_cols.push_back(term.resistor_unknown);
    }
    std::sort(row_cols.begin(), row_cols.end());
    row_cols.erase(std::unique(row_cols.begin(), row_cols.end()), row_cols.end());
    PARMA_REQUIRE(row_cols.empty() || (row_cols.front() >= 0 && row_cols.back() < cols),
                  "term unknown out of range");
    sym->j_col_idx.insert(sym->j_col_idx.end(), row_cols.begin(), row_cols.end());
    sym->j_row_ptr[static_cast<std::size_t>(row) + 1] = static_cast<Index>(sym->j_col_idx.size());
  }

  // Term -> slot scatter map.
  sym->term_slots.assign(static_cast<std::size_t>(total_terms) * 3, -1);
  for (Index row = 0; row < rows; ++row) {
    const Index begin = sym->j_row_ptr[static_cast<std::size_t>(row)];
    const Index end = sym->j_row_ptr[static_cast<std::size_t>(row) + 1];
    Index t = sym->term_begin[static_cast<std::size_t>(row)];
    for (const auto& term : system.equations[static_cast<std::size_t>(row)].terms) {
      const std::size_t base = static_cast<std::size_t>(t) * 3;
      if (term.plus_unknown >= 0) {
        sym->term_slots[base] = find_slot(sym->j_col_idx, begin, end, term.plus_unknown);
      }
      if (term.minus_unknown >= 0) {
        sym->term_slots[base + 1] = find_slot(sym->j_col_idx, begin, end, term.minus_unknown);
      }
      sym->term_slots[base + 2] = find_slot(sym->j_col_idx, begin, end, term.resistor_unknown);
      ++t;
    }
  }

  // CSC view of J's pattern. Filling in row order makes each column's row
  // list ascending -- the summation order of the A refresh.
  const std::size_t j_nnz = sym->j_col_idx.size();
  sym->jt_col_ptr.assign(static_cast<std::size_t>(cols) + 1, 0);
  for (std::size_t k = 0; k < j_nnz; ++k) {
    ++sym->jt_col_ptr[static_cast<std::size_t>(sym->j_col_idx[k]) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(cols); ++c) {
    sym->jt_col_ptr[c + 1] += sym->jt_col_ptr[c];
  }
  sym->jt_row_idx.resize(j_nnz);
  sym->jt_slot.resize(j_nnz);
  std::vector<Index> cursor(sym->jt_col_ptr.begin(), sym->jt_col_ptr.end() - 1);
  for (Index row = 0; row < rows; ++row) {
    for (Index k = sym->j_row_ptr[static_cast<std::size_t>(row)];
         k < sym->j_row_ptr[static_cast<std::size_t>(row) + 1]; ++k) {
      const Index col = sym->j_col_idx[static_cast<std::size_t>(k)];
      const Index at = cursor[static_cast<std::size_t>(col)]++;
      sym->jt_row_idx[static_cast<std::size_t>(at)] = row;
      sym->jt_slot[static_cast<std::size_t>(at)] = k;
    }
  }

  // Per-electrode preconditioner blocks: device rows of resistances first,
  // then each endpoint pair's contiguous voltage group (see the layout
  // ordering in equations/layout.hpp). Built in both modes -- the matrix-free
  // large-n path factors these blocks straight from J.
  {
    const auto& layout = system.layout;
    sym->precond_block_ptr.push_back(0);
    for (Index i = 0; i < layout.rows(); ++i) {
      sym->precond_block_ptr.push_back(sym->precond_block_ptr.back() + layout.cols());
    }
    const Index vpp = layout.voltages_per_pair();
    if (vpp > 0) {
      for (Index p = 0; p < layout.num_pairs(); ++p) {
        sym->precond_block_ptr.push_back(sym->precond_block_ptr.back() + vpp);
      }
    }
    PARMA_REQUIRE(sym->precond_block_ptr.back() == cols,
                  "preconditioner blocks must tile the unknown vector");
  }

  if (!options.build_normal) {
    sym->has_normal = false;
    return sym;
  }

  // Gustavson symbolic pass for A = J^T J: the pattern of A-row i is the
  // union of J-row patterns over the rows touching column i, plus the forced
  // diagonal (the in-place Tikhonov ridge needs A(i, i) present even when no
  // equation couples unknown i to itself).
  sym->a_row_ptr.resize(static_cast<std::size_t>(cols) + 1);
  sym->a_row_ptr[0] = 0;
  std::vector<Index> marker(static_cast<std::size_t>(cols), -1);
  std::vector<Index> a_cols;
  for (Index i = 0; i < cols; ++i) {
    a_cols.clear();
    for (Index idx = sym->jt_col_ptr[static_cast<std::size_t>(i)];
         idx < sym->jt_col_ptr[static_cast<std::size_t>(i) + 1]; ++idx) {
      const Index r = sym->jt_row_idx[static_cast<std::size_t>(idx)];
      for (Index k = sym->j_row_ptr[static_cast<std::size_t>(r)];
           k < sym->j_row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        const Index c = sym->j_col_idx[static_cast<std::size_t>(k)];
        if (marker[static_cast<std::size_t>(c)] != i) {
          marker[static_cast<std::size_t>(c)] = i;
          a_cols.push_back(c);
        }
      }
    }
    if (marker[static_cast<std::size_t>(i)] != i) {
      marker[static_cast<std::size_t>(i)] = i;
      a_cols.push_back(i);
    }
    std::sort(a_cols.begin(), a_cols.end());
    sym->a_col_idx.insert(sym->a_col_idx.end(), a_cols.begin(), a_cols.end());
    sym->a_row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<Index>(sym->a_col_idx.size());
  }
  sym->a_diag_slot.resize(static_cast<std::size_t>(cols));
  for (Index i = 0; i < cols; ++i) {
    sym->a_diag_slot[static_cast<std::size_t>(i)] =
        find_slot(sym->a_col_idx, sym->a_row_ptr[static_cast<std::size_t>(i)],
                  sym->a_row_ptr[static_cast<std::size_t>(i) + 1], i);
  }

  // Preconditioner plans over the finished A pattern (the symbolic phase of
  // the block-Jacobi and IC0 preconditioners; see linalg/preconditioner.hpp).
  sym->block_plan = linalg::BlockJacobiPreconditioner::Plan::analyze(
      sym->precond_block_ptr, sym->a_row_ptr, sym->a_col_idx);
  sym->ic0_pattern =
      linalg::Ic0Preconditioner::Pattern::analyze(cols, sym->a_row_ptr, sym->a_col_idx);

  return sym;
}

SystemKernels::SystemKernels(const equations::EquationSystem& system,
                             std::shared_ptr<const SystemSymbolic> symbolic)
    : system_(&system),
      symbolic_(symbolic ? std::move(symbolic) : SystemSymbolic::analyze(system)) {
  PARMA_REQUIRE(symbolic_->rows == static_cast<Index>(system.equations.size()) &&
                    symbolic_->cols == system.layout.num_unknowns(),
                "symbolic structure does not match the equation system shape");
  j_ = linalg::CsrMatrix(symbolic_->rows, symbolic_->cols, symbolic_->j_row_ptr,
                         symbolic_->j_col_idx, std::vector<Real>(symbolic_->j_nnz(), 0.0));
  if (!symbolic_->has_normal) return;  // jacobian-only mode: no A, no padded shadow
  a_ = linalg::CsrMatrix(symbolic_->cols, symbolic_->cols, symbolic_->a_row_ptr,
                         symbolic_->a_col_idx, std::vector<Real>(symbolic_->a_nnz(), 0.0));
  padded_a_ = linalg::PaddedCsrChunks(a_, kSpmvRowChunk);
  normal_chunk_rows_ =
      std::max<Index>(1, (symbolic_->cols + kNormalChunkCount - 1) / kNormalChunkCount);
  const Index chunks =
      symbolic_->cols == 0
          ? 0
          : (symbolic_->cols + normal_chunk_rows_ - 1) / normal_chunk_rows_;
  accumulators_.assign(static_cast<std::size_t>(chunks),
                       std::vector<Real>(static_cast<std::size_t>(symbolic_->cols), 0.0));
}

void SystemKernels::refresh_jacobian(const std::vector<Real>& x, exec::Executor* executor) {
  const SystemSymbolic& sym = *symbolic_;
  PARMA_REQUIRE(static_cast<Index>(x.size()) == sym.cols,
                "refresh_jacobian: unknown vector size mismatch");
  auto& vals = j_.values_mut();
  const auto& eqs = system_->equations;
  run_chunked(executor, sym.rows, kRowChunk, [&](Index lo, Index hi) {
    for (Index row = lo; row < hi; ++row) {
      for (Index s = sym.j_row_ptr[static_cast<std::size_t>(row)];
           s < sym.j_row_ptr[static_cast<std::size_t>(row) + 1]; ++s) {
        vals[static_cast<std::size_t>(s)] = 0.0;
      }
      // Accumulate in term order -- the CooBuilder insertion order, which
      // its stable sort preserves: the sums land bit-identical to
      // system_jacobian's.
      Index t = sym.term_begin[static_cast<std::size_t>(row)];
      for (const auto& term : eqs[static_cast<std::size_t>(row)].terms) {
        const equations::TermPartials p = equations::term_partials(term, x);
        const std::size_t base = static_cast<std::size_t>(t) * 3;
        if (term.plus_unknown >= 0) {
          vals[static_cast<std::size_t>(sym.term_slots[base])] += p.d_plus;
        }
        if (term.minus_unknown >= 0) {
          vals[static_cast<std::size_t>(sym.term_slots[base + 1])] += p.d_minus;
        }
        vals[static_cast<std::size_t>(sym.term_slots[base + 2])] += p.d_resistor;
        ++t;
      }
    }
  });
}

void SystemKernels::refresh_normal(exec::Executor* executor) {
  refresh_normal_impl(nullptr, executor);
}

void SystemKernels::refresh_normal_weighted(const std::vector<Real>& row_weights,
                                            exec::Executor* executor) {
  PARMA_REQUIRE(static_cast<Index>(row_weights.size()) == symbolic_->rows,
                "refresh_normal_weighted: weight vector size mismatch");
  refresh_normal_impl(row_weights.data(), executor);
}

void SystemKernels::refresh_normal_impl(const Real* row_weights, exec::Executor* executor) {
  const SystemSymbolic& sym = *symbolic_;
  PARMA_REQUIRE(sym.has_normal,
                "refresh_normal needs a build_normal symbolic (jacobian-only mode "
                "drives CG through MatrixFreeNormalOperator instead)");
  auto& avals = a_.values_mut();
  const auto& jvals = j_.values();
  run_chunked(executor, sym.cols, normal_chunk_rows_, [&](Index lo, Index hi) {
    // One dense accumulator per fixed chunk; entries are zero on entry and
    // re-zeroed sparsely on exit (only the slots of the row pattern were
    // touched), so no O(cols) clear per row.
    auto& acc = accumulators_[static_cast<std::size_t>(lo / normal_chunk_rows_)];
    for (Index i = lo; i < hi; ++i) {
      for (Index idx = sym.jt_col_ptr[static_cast<std::size_t>(i)];
           idx < sym.jt_col_ptr[static_cast<std::size_t>(i) + 1]; ++idx) {
        const Index r = sym.jt_row_idx[static_cast<std::size_t>(idx)];
        // The weighted entry folds w_r into the row coefficient (A(i, c) =
        // sum_r w_r J(r, i) J(r, c)); the unweighted entry performs exactly
        // the historical arithmetic -- no multiply by 1.0.
        const Real j_ri = jvals[static_cast<std::size_t>(sym.jt_slot[static_cast<std::size_t>(idx)])];
        const Real coef =
            (row_weights != nullptr) ? row_weights[static_cast<std::size_t>(r)] * j_ri : j_ri;
        // Equations r arrive ascending (CSC fill order), so each A(i, c)
        // sums its J(r,i)*J(r,c) contributions in exactly the order the
        // stable-sorted CooBuilder reference does.
        for (Index k = sym.j_row_ptr[static_cast<std::size_t>(r)];
             k < sym.j_row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
          acc[static_cast<std::size_t>(sym.j_col_idx[static_cast<std::size_t>(k)])] +=
              coef * jvals[static_cast<std::size_t>(k)];
        }
      }
      for (Index s = sym.a_row_ptr[static_cast<std::size_t>(i)];
           s < sym.a_row_ptr[static_cast<std::size_t>(i) + 1]; ++s) {
        const std::size_t c = static_cast<std::size_t>(sym.a_col_idx[static_cast<std::size_t>(s)]);
        avals[static_cast<std::size_t>(s)] = acc[c];
        acc[c] = 0.0;
      }
    }
  });
  // Keep the aligned SpMV shadow in lockstep (straight value copies -- the
  // padded layout never changes the numbers, only where they live).
  padded_a_.refresh_values(a_);
}

void SystemKernels::refresh(const std::vector<Real>& x, exec::Executor* executor) {
  refresh_jacobian(x, executor);
  refresh_normal(executor);
}

void SystemKernels::residual_into(const std::vector<Real>& x, std::vector<Real>& r,
                                  exec::Executor* executor) const {
  const SystemSymbolic& sym = *symbolic_;
  PARMA_REQUIRE(static_cast<Index>(x.size()) == sym.cols,
                "residual_into: unknown vector size mismatch");
  r.resize(static_cast<std::size_t>(sym.rows));
  const auto& eqs = system_->equations;
  run_chunked(executor, sym.rows, kRowChunk, [&](Index lo, Index hi) {
    for (Index row = lo; row < hi; ++row) {
      r[static_cast<std::size_t>(row)] =
          equations::equation_residual(eqs[static_cast<std::size_t>(row)], x);
    }
  });
}

ParallelCsrOperator::ParallelCsrOperator(const linalg::CsrMatrix& a, exec::Executor* executor)
    : a_(&a), executor_(executor) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
}

ParallelCsrOperator::ParallelCsrOperator(const linalg::CsrMatrix& a, exec::Executor* executor,
                                         const linalg::PaddedCsrChunks* padded)
    : a_(&a), executor_(executor), padded_(padded) {
  PARMA_REQUIRE(a.rows() == a.cols(), "CG needs a square matrix");
  PARMA_REQUIRE(padded == nullptr || (padded->rows() == a.rows() &&
                                      padded->rows_per_chunk() == kSpmvRowChunk),
                "padded shadow does not match the matrix");
}

void ParallelCsrOperator::multiply_into(const std::vector<Real>& x,
                                        std::vector<Real>& y) const {
  const Index n = a_->rows();
  y.resize(static_cast<std::size_t>(n));
  if (executor_ == nullptr || n < kSerialRowThreshold) {
    if (padded_ != nullptr) {
      padded_->multiply_rows_into(x, y, 0, n);
    } else {
      a_->multiply_rows_into(x, y, 0, n);
    }
    return;
  }
  executor_->submit_bulk(0, n, kSpmvRowChunk, [&](Index lo, Index hi) {
    if (padded_ != nullptr) {
      padded_->multiply_rows_into(x, y, lo, hi);
    } else {
      a_->multiply_rows_into(x, y, lo, hi);
    }
  });
}

void ParallelCsrOperator::diagonal_into(std::vector<Real>& d) const {
  // Same linear row scan as linalg::SerialCsrOperator.
  d.assign(static_cast<std::size_t>(a_->rows()), 0.0);
  const auto& row_ptr = a_->row_ptr();
  const auto& col_idx = a_->col_idx();
  const auto& values = a_->values();
  for (Index r = 0; r < a_->rows(); ++r) {
    for (Index k = row_ptr[static_cast<std::size_t>(r)];
         k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      if (col_idx[static_cast<std::size_t>(k)] == r) {
        d[static_cast<std::size_t>(r)] = values[static_cast<std::size_t>(k)];
        break;
      }
    }
  }
}

Real ParallelCsrOperator::dot(const std::vector<Real>& a, const std::vector<Real>& b,
                              std::vector<Real>& partials) const {
  const std::size_t chunks = linalg::dot_chunk_count(a.size());
  if (executor_ == nullptr || chunks == 1) return linalg::ordered_dot(a, b, partials);
  partials.resize(chunks);
  executor_->submit_bulk(0, static_cast<Index>(chunks), 1, [&](Index lo, Index hi) {
    for (Index c = lo; c < hi; ++c) {
      partials[static_cast<std::size_t>(c)] =
          linalg::dot_chunk_partial(a, b, static_cast<std::size_t>(c));
    }
  });
  // The reduction over partials is the serial ordered_dot's: chunk order,
  // independent of which worker computed what.
  Real sum = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) sum += partials[c];
  return sum;
}

MatrixFreeNormalOperator::MatrixFreeNormalOperator(const linalg::CsrMatrix& j,
                                                   const SystemSymbolic& symbolic,
                                                   exec::Executor* executor)
    : j_(&j), sym_(&symbolic), executor_(executor) {
  PARMA_REQUIRE(j.rows() == symbolic.rows && j.cols() == symbolic.cols,
                "jacobian does not match the symbolic shape");
}

void MatrixFreeNormalOperator::multiply_into(const std::vector<Real>& x,
                                             std::vector<Real>& y) const {
  const Index rows = j_->rows();
  t_.resize(static_cast<std::size_t>(rows));
  if (executor_ == nullptr || rows < kSerialRowThreshold) {
    j_->multiply_rows_into(x, t_, 0, rows);
  } else {
    executor_->submit_bulk(0, rows, kSpmvRowChunk, [&](Index lo, Index hi) {
      j_->multiply_rows_into(x, t_, lo, hi);
    });
  }
  // The transpose scatter sums column contributions in ascending equation
  // order -- serial, so the order (and the bits) never depend on the backend.
  j_->multiply_transpose_into(t_, y);
}

void MatrixFreeNormalOperator::diagonal_into(std::vector<Real>& d) const {
  const SystemSymbolic& sym = *sym_;
  const auto& jvals = j_->values();
  d.assign(static_cast<std::size_t>(sym.cols), 0.0);
  for (Index i = 0; i < sym.cols; ++i) {
    Real sum = 0.0;
    for (Index idx = sym.jt_col_ptr[static_cast<std::size_t>(i)];
         idx < sym.jt_col_ptr[static_cast<std::size_t>(i) + 1]; ++idx) {
      const Real v = jvals[static_cast<std::size_t>(sym.jt_slot[static_cast<std::size_t>(idx)])];
      sum += v * v;
    }
    d[static_cast<std::size_t>(i)] = sum;
  }
}

Real MatrixFreeNormalOperator::dot(const std::vector<Real>& a, const std::vector<Real>& b,
                                   std::vector<Real>& partials) const {
  const std::size_t chunks = linalg::dot_chunk_count(a.size());
  if (executor_ == nullptr || chunks == 1) return linalg::ordered_dot(a, b, partials);
  partials.resize(chunks);
  executor_->submit_bulk(0, static_cast<Index>(chunks), 1, [&](Index lo, Index hi) {
    for (Index c = lo; c < hi; ++c) {
      partials[static_cast<std::size_t>(c)] =
          linalg::dot_chunk_partial(a, b, static_cast<std::size_t>(c));
    }
  });
  Real sum = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) sum += partials[c];
  return sum;
}

void refresh_block_jacobi_from_jacobian(const linalg::CsrMatrix& j,
                                        const SystemSymbolic& symbolic,
                                        linalg::BlockJacobiPreconditioner& precond,
                                        exec::Executor* executor) {
  const auto& bp = precond.block_ptr();
  PARMA_REQUIRE(bp.back() == symbolic.cols, "block structure does not match the unknowns");
  const auto& offsets = precond.packed_offset();
  const auto& jvals = j.values();
  const auto& j_row_ptr = j.row_ptr();
  const auto& j_col_idx = j.col_idx();
  auto& packed = precond.packed_mut();
  std::fill(packed.begin(), packed.end(), 0.0);
  const Index blocks = static_cast<Index>(bp.size()) - 1;
  run_chunked(executor, blocks, 1, [&](Index blo, Index bhi) {
    for (Index b = blo; b < bhi; ++b) {
      const Index lo = bp[static_cast<std::size_t>(b)];
      const Index hi = bp[static_cast<std::size_t>(b) + 1];
      const Index bs = hi - lo;
      Real* m = packed.data() + offsets[static_cast<std::size_t>(b)];
      for (Index i = lo; i < hi; ++i) {
        Real* mi = m + (i - lo) * bs - lo;  // block-local row i, global-column indexed
        for (Index idx = symbolic.jt_col_ptr[static_cast<std::size_t>(i)];
             idx < symbolic.jt_col_ptr[static_cast<std::size_t>(i) + 1]; ++idx) {
          const Index r = symbolic.jt_row_idx[static_cast<std::size_t>(idx)];
          const Real j_ri = jvals[static_cast<std::size_t>(
              symbolic.jt_slot[static_cast<std::size_t>(idx)])];
          // Columns of equation row r restricted to [lo, i] by binary search:
          // only the block's lower triangle is accumulated.
          const auto row_begin = j_col_idx.begin() + j_row_ptr[static_cast<std::size_t>(r)];
          const auto row_end = j_col_idx.begin() + j_row_ptr[static_cast<std::size_t>(r) + 1];
          for (auto it = std::lower_bound(row_begin, row_end, lo);
               it != row_end && *it <= i; ++it) {
            const Index k = static_cast<Index>(it - j_col_idx.begin());
            mi[*it] += j_ri * jvals[static_cast<std::size_t>(k)];
          }
        }
      }
    }
  });
  precond.factor_packed();
}

NormalPreconditioner::NormalPreconditioner(const SystemSymbolic& symbolic,
                                           linalg::PreconditionerKind kind)
    : kind_(kind) {
  switch (kind) {
    case linalg::PreconditionerKind::kJacobi:
      break;  // null impl_: conjugate_gradient_with's inline-Jacobi path
    case linalg::PreconditionerKind::kIdentity:
      impl_ = std::make_unique<linalg::IdentityPreconditioner>();
      break;
    case linalg::PreconditionerKind::kBlockJacobi: {
      PARMA_REQUIRE(symbolic.block_plan != nullptr,
                    "block-Jacobi needs a build_normal symbolic");
      auto block = std::make_unique<linalg::BlockJacobiPreconditioner>(symbolic.block_plan);
      block_ = block.get();
      impl_ = std::move(block);
      break;
    }
    case linalg::PreconditionerKind::kIc0: {
      PARMA_REQUIRE(symbolic.ic0_pattern != nullptr, "IC0 needs a build_normal symbolic");
      auto ic0 = std::make_unique<linalg::Ic0Preconditioner>(symbolic.ic0_pattern);
      ic0_ = ic0.get();
      impl_ = std::move(ic0);
      break;
    }
  }
}

void NormalPreconditioner::refresh(const linalg::CsrMatrix& a) {
  if (block_ != nullptr) block_->refresh(a);
  if (ic0_ != nullptr) ic0_->refresh(a);
}

linalg::CsrMatrix reference_normal_matrix(const linalg::CsrMatrix& j,
                                          linalg::ZeroPolicy policy) {
  linalg::CooBuilder builder(j.cols(), j.cols());
  const auto& row_ptr = j.row_ptr();
  const auto& col_idx = j.col_idx();
  const auto& values = j.values();
  for (Index r = 0; r < j.rows(); ++r) {
    for (Index a = row_ptr[static_cast<std::size_t>(r)];
         a < row_ptr[static_cast<std::size_t>(r) + 1]; ++a) {
      for (Index b = row_ptr[static_cast<std::size_t>(r)];
           b < row_ptr[static_cast<std::size_t>(r) + 1]; ++b) {
        builder.add(col_idx[static_cast<std::size_t>(a)], col_idx[static_cast<std::size_t>(b)],
                    values[static_cast<std::size_t>(a)] * values[static_cast<std::size_t>(b)]);
      }
    }
  }
  return builder.build(policy);
}

}  // namespace parma::solver

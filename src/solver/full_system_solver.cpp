#include "solver/full_system_solver.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/require.hpp"
#include "equations/pair_system.hpp"
#include "equations/residual.hpp"
#include "exec/executor.hpp"
#include "linalg/iterative.hpp"
#include "linalg/vector_ops.hpp"

namespace parma::solver {
namespace {

Real residual_rms(const std::vector<Real>& r) {
  if (r.empty()) return 0.0;
  Real sum = 0.0;
  for (Real v : r) sum += v * v;
  return std::sqrt(sum / static_cast<Real>(r.size()));
}

// One endpoint pair per chunk: each per-pair solve is a full linear system,
// coarse enough to schedule individually.
constexpr Index kPairChunk = 1;

// The legacy rebuild-per-iteration Gauss-Newton loop, kept verbatim as the
// benchmark baseline and the bit-identity reference for the kernel path.
FullSystemResult solve_legacy(const equations::EquationSystem& system,
                              const mea::Measurement& measurement,
                              const FullSystemOptions& options, exec::Executor* executor) {
  const auto& layout = system.layout;
  FullSystemResult result;
  result.unknowns = initial_guess(system, measurement, executor);

  std::vector<Real> residual = equations::system_residual(system, result.unknowns);
  Real rms = residual_rms(residual);
  PARMA_REQUIRE(std::isfinite(rms), "full-system solve started from a non-finite residual");
  result.residual_history.push_back(rms);

  FallbackOptions ladder;
  ladder.cg.max_iterations = options.cg_max_iterations;
  ladder.cg.tolerance = options.cg_tolerance;
  ladder.tikhonov_scale = options.tikhonov_scale;
  ladder.tikhonov_tolerance_factor = options.tikhonov_tolerance_factor;

  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (rms <= options.tolerance) {
      result.converged = true;
      break;
    }
    const linalg::CsrMatrix jac = equations::system_jacobian(system, result.unknowns);
    const linalg::CsrMatrix jtj = reference_normal_matrix(jac);
    std::vector<Real> rhs = jac.multiply_transpose(residual);
    for (Real& v : rhs) v = -v;

    // Per-step normal-equation solve through the fallback ladder: plain CG
    // when it converges (bit-identical to the pre-ladder behavior), Tikhonov
    // retry and then a dense direct solve when it does not.
    const std::vector<Real> step =
        solve_with_fallback(jtj, rhs, ladder, result.diagnostics);

    // Damped update with relative clamping; resistances must stay positive.
    std::vector<Real> candidate = result.unknowns;
    for (std::size_t u = 0; u < candidate.size(); ++u) {
      Real delta = step[u];
      const Real scale = std::max(std::abs(candidate[u]), Real{1e-6});
      delta = std::clamp(delta, -options.step_clamp * scale, options.step_clamp * scale);
      candidate[u] += delta;
      if (layout.is_resistance(static_cast<Index>(u)) && candidate[u] <= 0.0) {
        candidate[u] = 0.5 * scale;  // project back into the feasible region
      }
    }
    std::vector<Real> candidate_residual = equations::system_residual(system, candidate);
    const Real candidate_rms = residual_rms(candidate_residual);
    // A non-finite candidate (overflow/NaN from a poisoned step) must never
    // be accepted -- NaN fails every comparison, so test it explicitly.
    if (!std::isfinite(candidate_rms) || candidate_rms >= rms) break;  // stalled
    result.unknowns = std::move(candidate);
    residual = std::move(candidate_residual);
    rms = candidate_rms;
    result.residual_history.push_back(rms);
  }

  result.final_residual_rms = rms;
  result.converged = result.converged || rms <= options.tolerance;
  result.diagnostics.converged = result.converged;
  result.recovered = circuit::ResistanceGrid(layout.rows(), layout.cols());
  for (Index e = 0; e < layout.num_resistors(); ++e) {
    result.recovered.flat()[static_cast<std::size_t>(e)] =
        result.unknowns[static_cast<std::size_t>(e)];
  }
  return result;
}

// The kernel hot path: the same Gauss-Newton iteration with the per-step
// assembly replaced by in-place symbolic/numeric refreshes and the linear
// solves running through the workspace ladder. Serial execution is
// bit-identical to solve_legacy (tests/test_kernels.cpp).
FullSystemResult solve_kernels(const equations::EquationSystem& system,
                               const mea::Measurement& measurement,
                               const FullSystemOptions& options,
                               const KernelContext& context) {
  const auto& layout = system.layout;
  exec::Executor* executor = context.executor;
  FullSystemResult result;
  result.unknowns = initial_guess(system, measurement, executor);

  SystemKernels kernels(system, context.symbolic);
  std::vector<Real> residual;
  kernels.residual_into(result.unknowns, residual, executor);
  Real rms = residual_rms(residual);
  PARMA_REQUIRE(std::isfinite(rms), "full-system solve started from a non-finite residual");
  result.residual_history.push_back(rms);

  FallbackOptions ladder;
  ladder.cg.max_iterations = options.cg_max_iterations;
  ladder.cg.tolerance = options.cg_tolerance;
  ladder.tikhonov_scale = options.tikhonov_scale;
  ladder.tikhonov_tolerance_factor = options.tikhonov_tolerance_factor;
  LadderWorkspace workspace;
  workspace.executor = executor;

  // Buffers outliving the loop: no per-iteration reallocation.
  std::vector<Real> rhs;
  std::vector<Real> candidate;
  std::vector<Real> candidate_residual;

  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (rms <= options.tolerance) {
      result.converged = true;
      break;
    }
    kernels.refresh(result.unknowns, executor);
    kernels.jacobian().multiply_transpose_into(residual, rhs);
    for (Real& v : rhs) v = -v;

    const std::vector<Real> step =
        solve_with_fallback(kernels.normal(), rhs, ladder, result.diagnostics, workspace);

    candidate = result.unknowns;
    for (std::size_t u = 0; u < candidate.size(); ++u) {
      Real delta = step[u];
      const Real scale = std::max(std::abs(candidate[u]), Real{1e-6});
      delta = std::clamp(delta, -options.step_clamp * scale, options.step_clamp * scale);
      candidate[u] += delta;
      if (layout.is_resistance(static_cast<Index>(u)) && candidate[u] <= 0.0) {
        candidate[u] = 0.5 * scale;  // project back into the feasible region
      }
    }
    kernels.residual_into(candidate, candidate_residual, executor);
    const Real candidate_rms = residual_rms(candidate_residual);
    if (!std::isfinite(candidate_rms) || candidate_rms >= rms) break;  // stalled
    std::swap(result.unknowns, candidate);
    std::swap(residual, candidate_residual);
    rms = candidate_rms;
    result.residual_history.push_back(rms);
  }

  result.final_residual_rms = rms;
  result.converged = result.converged || rms <= options.tolerance;
  result.diagnostics.converged = result.converged;
  result.recovered = circuit::ResistanceGrid(layout.rows(), layout.cols());
  for (Index e = 0; e < layout.num_resistors(); ++e) {
    result.recovered.flat()[static_cast<std::size_t>(e)] =
        result.unknowns[static_cast<std::size_t>(e)];
  }
  return result;
}

}  // namespace

std::vector<Real> initial_guess(const equations::EquationSystem& system,
                                const mea::Measurement& measurement,
                                exec::Executor* executor) {
  const auto& layout = system.layout;
  circuit::ResistanceGrid guess(layout.rows(), layout.cols());
  for (Index i = 0; i < layout.rows(); ++i) {
    for (Index j = 0; j < layout.cols(); ++j) guess.at(i, j) = measurement.z(i, j);
  }
  std::vector<Real> x(static_cast<std::size_t>(layout.num_unknowns()), 0.0);
  for (Index e = 0; e < layout.num_resistors(); ++e) {
    x[static_cast<std::size_t>(e)] = guess.flat()[static_cast<std::size_t>(e)];
  }
  // The per-pair solves are independent and write disjoint slots of x (the
  // ua/ub blocks of their own pair), so any chunking / backend gives
  // bit-identical results.
  const Index pairs = layout.rows() * layout.cols();
  const auto solve_pairs = [&](Index lo, Index hi) {
    for (Index p = lo; p < hi; ++p) {
      const Index i = p / layout.cols();
      const Index j = p % layout.cols();
      const equations::PairSolution pair =
          equations::solve_pair(guess, i, j, measurement.spec.drive_voltage);
      for (Index k = 0; k < layout.cols(); ++k) {
        if (k == j) continue;
        x[static_cast<std::size_t>(layout.ua_index(i, j, k))] = pair.vertical_potential(k);
      }
      for (Index m = 0; m < layout.rows(); ++m) {
        if (m == i) continue;
        x[static_cast<std::size_t>(layout.ub_index(i, j, m))] = pair.horizontal_potential(m);
      }
    }
  };
  if (executor == nullptr) {
    solve_pairs(0, pairs);
  } else {
    executor->submit_bulk(0, pairs, kPairChunk, solve_pairs);
  }
  return x;
}

FullSystemResult solve_full_system(const equations::EquationSystem& system,
                                   const mea::Measurement& measurement,
                                   const FullSystemOptions& options) {
  return solve_full_system(system, measurement, options, KernelContext{});
}

FullSystemResult solve_full_system(const equations::EquationSystem& system,
                                   const mea::Measurement& measurement,
                                   const FullSystemOptions& options,
                                   const KernelContext& context) {
  if (!options.use_kernels) {
    return solve_legacy(system, measurement, options, context.executor);
  }
  return solve_kernels(system, measurement, options, context);
}

}  // namespace parma::solver

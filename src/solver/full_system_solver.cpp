#include "solver/full_system_solver.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/require.hpp"
#include "equations/pair_system.hpp"
#include "equations/residual.hpp"
#include "exec/executor.hpp"
#include "linalg/iterative.hpp"
#include "linalg/vector_ops.hpp"

namespace parma::solver {
namespace {

Real residual_rms(const std::vector<Real>& r) {
  if (r.empty()) return 0.0;
  Real sum = 0.0;
  for (Real v : r) sum += v * v;
  return std::sqrt(sum / static_cast<Real>(r.size()));
}

bool all_finite(const std::vector<Real>& v) {
  for (Real x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// Measurement entries whose terminal (Z-consuming) equations ended the solve
// at IRLS weight < 0.5 -- the flagged outlier candidates, one flat index
// (i * cols + j) per entry.
std::vector<Index> flag_downweighted_entries(const equations::EquationSystem& system,
                                             const std::vector<Real>& weights) {
  std::vector<Index> entries;
  const Index cols = system.layout.cols();
  for (std::size_t row = 0; row < system.equations.size(); ++row) {
    const auto& eq = system.equations[row];
    const bool terminal = eq.category == equations::ConstraintCategory::kSource ||
                          eq.category == equations::ConstraintCategory::kDestination;
    if (terminal && weights[row] < 0.5) {
      entries.push_back(eq.pair_i * cols + eq.pair_j);
    }
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  return entries;
}

// One endpoint pair per chunk: each per-pair solve is a full linear system,
// coarse enough to schedule individually.
constexpr Index kPairChunk = 1;

// The legacy rebuild-per-iteration Gauss-Newton loop, kept verbatim as the
// benchmark baseline and the bit-identity reference for the kernel path.
FullSystemResult solve_legacy(const equations::EquationSystem& system,
                              const mea::Measurement& measurement,
                              const FullSystemOptions& options, exec::Executor* executor) {
  const auto& layout = system.layout;
  FullSystemResult result;
  result.unknowns = initial_guess(system, measurement, executor);

  std::vector<Real> residual = equations::system_residual(system, result.unknowns);
  Real rms = residual_rms(residual);
  PARMA_REQUIRE(std::isfinite(rms), "full-system solve started from a non-finite residual");
  result.residual_history.push_back(rms);

  FallbackOptions ladder;
  ladder.cg.max_iterations = options.cg_max_iterations;
  ladder.cg.tolerance = options.cg_tolerance;
  ladder.tikhonov_scale = options.tikhonov_scale;
  ladder.tikhonov_tolerance_factor = options.tikhonov_tolerance_factor;

  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (rms <= options.tolerance) {
      result.converged = true;
      break;
    }
    const linalg::CsrMatrix jac = equations::system_jacobian(system, result.unknowns);
    const linalg::CsrMatrix jtj = reference_normal_matrix(jac);
    std::vector<Real> rhs = jac.multiply_transpose(residual);
    for (Real& v : rhs) v = -v;

    // Per-step normal-equation solve through the fallback ladder: plain CG
    // when it converges (bit-identical to the pre-ladder behavior), Tikhonov
    // retry and then a dense direct solve when it does not.
    const std::vector<Real> step =
        solve_with_fallback(jtj, rhs, ladder, result.diagnostics);

    // Damped update with relative clamping; resistances must stay positive.
    std::vector<Real> candidate = result.unknowns;
    for (std::size_t u = 0; u < candidate.size(); ++u) {
      Real delta = step[u];
      const Real scale = std::max(std::abs(candidate[u]), Real{1e-6});
      delta = std::clamp(delta, -options.step_clamp * scale, options.step_clamp * scale);
      candidate[u] += delta;
      if (layout.is_resistance(static_cast<Index>(u)) && candidate[u] <= 0.0) {
        candidate[u] = 0.5 * scale;  // project back into the feasible region
      }
    }
    std::vector<Real> candidate_residual = equations::system_residual(system, candidate);
    const Real candidate_rms = residual_rms(candidate_residual);
    // A non-finite candidate (overflow/NaN from a poisoned step) must never
    // be accepted -- NaN fails every comparison, so test it explicitly, and
    // report the abort as a numerical breakdown rather than a stall.
    if (!std::isfinite(candidate_rms)) {
      result.termination = TerminationReason::kNumericalBreakdown;
      break;
    }
    if (candidate_rms >= rms) {
      result.termination = TerminationReason::kStalled;
      break;
    }
    result.unknowns = std::move(candidate);
    residual = std::move(candidate_residual);
    rms = candidate_rms;
    result.residual_history.push_back(rms);
  }

  result.final_residual_rms = rms;
  result.converged = result.converged || rms <= options.tolerance;
  if (result.converged) result.termination = TerminationReason::kToleranceReached;
  result.diagnostics.converged = result.converged;
  result.recovered = circuit::ResistanceGrid(layout.rows(), layout.cols());
  for (Index e = 0; e < layout.num_resistors(); ++e) {
    result.recovered.flat()[static_cast<std::size_t>(e)] =
        result.unknowns[static_cast<std::size_t>(e)];
  }
  return result;
}

// The kernel hot path: the same Gauss-Newton iteration with the per-step
// assembly replaced by in-place symbolic/numeric refreshes and the linear
// solves running through the workspace ladder. Serial execution is
// bit-identical to solve_legacy (tests/test_kernels.cpp).
FullSystemResult solve_kernels(const equations::EquationSystem& system,
                               const mea::Measurement& measurement,
                               const FullSystemOptions& options,
                               const KernelContext& context) {
  const auto& layout = system.layout;
  exec::Executor* executor = context.executor;
  FullSystemResult result;
  result.unknowns = initial_guess(system, measurement, executor);

  SystemKernels kernels(system, context.symbolic);
  std::vector<Real> residual;
  kernels.residual_into(result.unknowns, residual, executor);
  Real rms = residual_rms(residual);
  PARMA_REQUIRE(std::isfinite(rms), "full-system solve started from a non-finite residual");
  result.residual_history.push_back(rms);

  FallbackOptions ladder;
  ladder.cg.max_iterations = options.cg_max_iterations;
  ladder.cg.tolerance = options.cg_tolerance;
  ladder.tikhonov_scale = options.tikhonov_scale;
  ladder.tikhonov_tolerance_factor = options.tikhonov_tolerance_factor;
  ladder.adaptive_tikhonov_target = options.adaptive_tikhonov_target;
  ladder.cg.mixed_precision = options.mixed_precision;
  LadderWorkspace workspace;
  workspace.executor = executor;
  workspace.padded = &kernels.padded_normal();

  // Preconditioner against the fixed symbolic pattern, numeric-refreshed per
  // iteration below. kJacobi keeps get() null: the ladder's inline-Jacobi
  // path, bit-identical to every pre-preconditioner release.
  NormalPreconditioner precond(kernels.symbolic(), options.preconditioner);
  ladder.preconditioner = precond.get();

  // IRLS state (robust loss only); the robust-off iteration touches none of
  // it and stays bit-identical to the pre-robust solver.
  const bool robust_on = options.robust.loss != RobustLoss::kNone;
  const Real tuning = effective_tuning(options.robust);
  result.robust.enabled = robust_on;
  result.robust.masked_entries = mea::masked_entry_count(measurement);

  // Buffers outliving the loop: no per-iteration reallocation.
  std::vector<Real> rhs;
  std::vector<Real> candidate;
  std::vector<Real> candidate_residual;
  std::vector<Real> weights;
  std::vector<Real> weighted_residual;
  std::vector<Real> scale_scratch;
  std::vector<Real> a_diag(static_cast<std::size_t>(kernels.symbolic().cols));
  Real sigma = 0.0;  ///< robust scale of the current iterate
  Real cost = 0.0;   ///< robust acceptance metric at sigma
  // Scale floor, tightened after the first iteration to a fraction of the
  // initial sigma -- guards against MAD collapse once the inliers fit almost
  // exactly (RobustOptions::min_scale_fraction).
  Real sigma_floor = options.robust.min_scale;
  bool sigma_floor_set = false;
  const auto floored_scale = [&](const std::vector<Real>& r) {
    const Real raw = robust_scale(r, scale_scratch, sigma_floor);
    if (!sigma_floor_set) {
      sigma_floor = std::max(sigma_floor, raw * options.robust.min_scale_fraction);
      sigma_floor_set = true;
    }
    return raw;
  };

  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (rms <= options.tolerance) {
      result.converged = true;
      break;
    }
    kernels.refresh_jacobian(result.unknowns, executor);
    if (robust_on) {
      // Re-estimate the scale and weights at the current iterate; the normal
      // equations become J^T W J delta = -J^T W r (weights numeric-only, the
      // symbolic pattern and chunking untouched).
      sigma = floored_scale(residual);
      result.robust.final_scale = sigma;
      result.robust.rows_downweighted =
          robust_weights(residual, sigma, options.robust.loss, tuning, weights);
      cost = robust_cost(residual, sigma, options.robust.loss, tuning);
      kernels.refresh_normal_weighted(weights, executor);
      precond.refresh(kernels.normal());
      weighted_residual.resize(residual.size());
      for (std::size_t e = 0; e < residual.size(); ++e) {
        weighted_residual[e] = weights[e] * residual[e];
      }
      kernels.jacobian().multiply_transpose_into(weighted_residual, rhs);
    } else {
      kernels.refresh_normal(executor);
      precond.refresh(kernels.normal());
      kernels.jacobian().multiply_transpose_into(residual, rhs);
    }
    for (Real& v : rhs) v = -v;
    // Conditioning guardrails: abort on a poisoned gradient instead of
    // iterating on garbage, and hand the ladder the cheap diagonal condition
    // estimate so an ill-conditioned J^T W J can draw a stronger ridge.
    if (!all_finite(rhs)) {
      result.termination = TerminationReason::kNumericalBreakdown;
      break;
    }
    {
      const auto& avals = kernels.normal().values();
      const auto& diag_slot = kernels.symbolic().a_diag_slot;
      for (std::size_t i = 0; i < diag_slot.size(); ++i) {
        a_diag[i] = avals[static_cast<std::size_t>(diag_slot[i])];
      }
      const Real condition = diagonal_condition_estimate(a_diag);
      result.robust.condition_estimate =
          std::max(result.robust.condition_estimate, condition);
      ladder.condition_estimate = condition;
    }

    const std::vector<Real> step =
        solve_with_fallback(kernels.normal(), rhs, ladder, result.diagnostics, workspace);

    candidate = result.unknowns;
    for (std::size_t u = 0; u < candidate.size(); ++u) {
      Real delta = step[u];
      const Real scale = std::max(std::abs(candidate[u]), Real{1e-6});
      delta = std::clamp(delta, -options.step_clamp * scale, options.step_clamp * scale);
      candidate[u] += delta;
      if (layout.is_resistance(static_cast<Index>(u)) && candidate[u] <= 0.0) {
        candidate[u] = 0.5 * scale;  // project back into the feasible region
      }
    }
    kernels.residual_into(candidate, candidate_residual, executor);
    const Real candidate_rms = residual_rms(candidate_residual);
    if (!std::isfinite(candidate_rms)) {
      result.termination = TerminationReason::kNumericalBreakdown;
      break;
    }
    if (robust_on) {
      // Step acceptance under the robust objective at the CURRENT sigma: an
      // outlier blowing up its residual must not veto a step that improves
      // the consensus fit.
      const Real candidate_cost =
          robust_cost(candidate_residual, sigma, options.robust.loss, tuning);
      if (!(candidate_cost < cost)) {
        result.termination = TerminationReason::kStalled;
        break;
      }
    } else if (candidate_rms >= rms) {
      result.termination = TerminationReason::kStalled;
      break;
    }
    std::swap(result.unknowns, candidate);
    std::swap(residual, candidate_residual);
    rms = candidate_rms;
    result.residual_history.push_back(rms);
  }

  result.final_residual_rms = rms;
  result.converged = result.converged || rms <= options.tolerance;
  if (result.converged) result.termination = TerminationReason::kToleranceReached;
  result.diagnostics.converged = result.converged;
  if (robust_on) {
    // Final per-entry diagnostics: which measurements the converged fit
    // considers outliers (terminal-equation weight < 0.5 at the final
    // iterate).
    sigma = floored_scale(residual);
    result.robust.final_scale = sigma;
    result.robust.rows_downweighted =
        robust_weights(residual, sigma, options.robust.loss, tuning, weights);
    result.robust.downweighted_entries = flag_downweighted_entries(system, weights);
  }
  result.recovered = circuit::ResistanceGrid(layout.rows(), layout.cols());
  for (Index e = 0; e < layout.num_resistors(); ++e) {
    result.recovered.flat()[static_cast<std::size_t>(e)] =
        result.unknowns[static_cast<std::size_t>(e)];
  }
  return result;
}

}  // namespace

std::vector<Real> initial_guess(const equations::EquationSystem& system,
                                const mea::Measurement& measurement,
                                exec::Executor* executor) {
  const auto& layout = system.layout;
  circuit::ResistanceGrid guess(layout.rows(), layout.cols());
  // Masked entries carry no trustworthy Z (possibly a NaN placeholder); seed
  // them with the mean of the measured ones. A complete sweep never computes
  // the fill and takes exactly the historical R = Z assignment.
  Real fill = 0.0;
  if (mea::masked_entry_count(measurement) > 0) {
    Real sum = 0.0;
    Index count = 0;
    for (Index i = 0; i < layout.rows(); ++i) {
      for (Index j = 0; j < layout.cols(); ++j) {
        if (!mea::entry_valid(measurement, i, j)) continue;
        sum += measurement.z(i, j);
        ++count;
      }
    }
    PARMA_REQUIRE(count > 0, "initial guess needs at least one unmasked entry");
    fill = sum / static_cast<Real>(count);
  }
  for (Index i = 0; i < layout.rows(); ++i) {
    for (Index j = 0; j < layout.cols(); ++j) {
      guess.at(i, j) = mea::entry_valid(measurement, i, j) ? measurement.z(i, j) : fill;
    }
  }
  std::vector<Real> x(static_cast<std::size_t>(layout.num_unknowns()), 0.0);
  for (Index e = 0; e < layout.num_resistors(); ++e) {
    x[static_cast<std::size_t>(e)] = guess.flat()[static_cast<std::size_t>(e)];
  }
  // The per-pair solves are independent and write disjoint slots of x (the
  // ua/ub blocks of their own pair), so any chunking / backend gives
  // bit-identical results.
  const Index pairs = layout.rows() * layout.cols();
  const auto solve_pairs = [&](Index lo, Index hi) {
    for (Index p = lo; p < hi; ++p) {
      const Index i = p / layout.cols();
      const Index j = p % layout.cols();
      const equations::PairSolution pair =
          equations::solve_pair(guess, i, j, measurement.spec.drive_voltage);
      for (Index k = 0; k < layout.cols(); ++k) {
        if (k == j) continue;
        x[static_cast<std::size_t>(layout.ua_index(i, j, k))] = pair.vertical_potential(k);
      }
      for (Index m = 0; m < layout.rows(); ++m) {
        if (m == i) continue;
        x[static_cast<std::size_t>(layout.ub_index(i, j, m))] = pair.horizontal_potential(m);
      }
    }
  };
  if (executor == nullptr) {
    solve_pairs(0, pairs);
  } else {
    executor->submit_bulk(0, pairs, kPairChunk, solve_pairs);
  }
  return x;
}

FullSystemResult solve_full_system(const equations::EquationSystem& system,
                                   const mea::Measurement& measurement,
                                   const FullSystemOptions& options) {
  return solve_full_system(system, measurement, options, KernelContext{});
}

FullSystemResult solve_full_system(const equations::EquationSystem& system,
                                   const mea::Measurement& measurement,
                                   const FullSystemOptions& options,
                                   const KernelContext& context) {
  if (!options.use_kernels) {
    PARMA_REQUIRE(options.robust.loss == RobustLoss::kNone,
                  "robust loss requires the kernel path (use_kernels = true)");
    return solve_legacy(system, measurement, options, context.executor);
  }
  return solve_kernels(system, measurement, options, context);
}

}  // namespace parma::solver

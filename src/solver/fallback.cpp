#include "solver/fallback.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "linalg/dense_solve.hpp"
#include "solver/system_kernels.hpp"

namespace parma::solver {

namespace {

bool all_finite(const std::vector<Real>& v) {
  for (Real x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

Real ridge_for(const std::vector<Real>& diag, Real scale) {
  Real max_abs = 0.0;
  for (Real d : diag) max_abs = std::max(max_abs, std::abs(d));
  return std::max(scale * max_abs, Real{1e-300});
}

// Rung-2 tau with the conditioning-adaptive boost: a system whose diagonal
// condition estimate exceeds the target draws a proportionally stronger
// ridge (capped so a non-finite estimate cannot produce a non-finite tau).
Real adaptive_tau(Real base_tau, const FallbackOptions& options) {
  if (options.adaptive_tikhonov_target <= 0.0) return base_tau;
  if (!(options.condition_estimate > options.adaptive_tikhonov_target)) return base_tau;
  const Real boost = std::isfinite(options.condition_estimate)
                         ? options.condition_estimate / options.adaptive_tikhonov_target
                         : Real{1e6};
  return base_tau * std::min(boost, Real{1e6});
}

linalg::CsrMatrix add_ridge(const linalg::CsrMatrix& a, Real tau) {
  linalg::CooBuilder builder(a.rows(), a.cols());
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index k = row_ptr[static_cast<std::size_t>(r)];
         k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      builder.add(r, col_idx[static_cast<std::size_t>(k)],
                  values[static_cast<std::size_t>(k)]);
    }
  }
  for (Index d = 0; d < a.rows(); ++d) builder.add(d, d, tau);
  return builder.build();
}

linalg::DenseMatrix add_ridge(const linalg::DenseMatrix& a, Real tau) {
  linalg::DenseMatrix ridged = a;
  for (Index d = 0; d < a.rows(); ++d) ridged(d, d) += tau;
  return ridged;
}

linalg::DenseMatrix densify(const linalg::CsrMatrix& a) {
  linalg::DenseMatrix dense(a.rows(), a.cols());
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index k = row_ptr[static_cast<std::size_t>(r)];
         k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      dense(r, col_idx[static_cast<std::size_t>(k)]) = values[static_cast<std::size_t>(k)];
    }
  }
  return dense;
}

const linalg::DenseMatrix& densify(const linalg::DenseMatrix& a) { return a; }

std::vector<Real> diagonal_of(const linalg::CsrMatrix& a) { return a.diagonal(); }

std::vector<Real> diagonal_of(const linalg::DenseMatrix& a) {
  std::vector<Real> diag(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) diag[static_cast<std::size_t>(i)] = a(i, i);
  return diag;
}

// Rung 3 shared by every ladder variant: direct LU, then the ridged retry.
std::vector<Real> dense_rung(const linalg::DenseMatrix& dense, const std::vector<Real>& b,
                             Real tau) {
  try {
    std::vector<Real> x = linalg::solve_dense(dense, b);
    if (all_finite(x)) return x;
  } catch (const NumericalError&) {
    // fall through to the ridged attempt
  }
  std::vector<Real> x = linalg::solve_dense(add_ridge(dense, tau), b);
  if (!all_finite(x)) {
    throw NumericalError("fallback ladder exhausted: dense solve produced non-finite values");
  }
  return x;
}

// Pattern-preserving ridge: copies A and adds tau on the diagonal slots in
// place. Requires every A(i, i) structurally present (kernel-built normal
// matrices force the diagonal); falls back to the CooBuilder rebuild when one
// is missing.
linalg::CsrMatrix add_ridge_in_pattern(const linalg::CsrMatrix& a, Real tau) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  std::vector<Index> diag_slots(static_cast<std::size_t>(a.rows()));
  for (Index r = 0; r < a.rows(); ++r) {
    const auto begin = col_idx.begin() + row_ptr[static_cast<std::size_t>(r)];
    const auto end = col_idx.begin() + row_ptr[static_cast<std::size_t>(r) + 1];
    const auto it = std::lower_bound(begin, end, r);
    if (it == end || *it != r) return add_ridge(a, tau);
    diag_slots[static_cast<std::size_t>(r)] = static_cast<Index>(it - col_idx.begin());
  }
  linalg::CsrMatrix ridged = a;
  auto& values = ridged.values_mut();
  for (Index r = 0; r < a.rows(); ++r) {
    values[static_cast<std::size_t>(diag_slots[static_cast<std::size_t>(r)])] += tau;
  }
  return ridged;
}

template <typename Matrix>
std::vector<Real> ladder(const Matrix& a, const std::vector<Real>& b,
                         const FallbackOptions& options, SolveDiagnostics& diagnostics) {
  PARMA_REQUIRE(a.rows() == a.cols(), "fallback ladder needs a square matrix");
  ++diagnostics.linear_solves;
  const auto note_rung = [&](FallbackRung rung) {
    diagnostics.highest_rung = std::max(diagnostics.highest_rung, rung);
  };

  // Rung 1: plain CG. A converged, finite iterate takes the fast exit with
  // numerics identical to calling conjugate_gradient directly.
  linalg::IterativeResult cg = linalg::conjugate_gradient(a, b, options.cg);
  diagnostics.cg_iterations += cg.iterations;
  if (cg.converged && all_finite(cg.x)) {
    note_rung(FallbackRung::kCg);
    return std::move(cg.x);
  }

  // Rung 2: Tikhonov-regularized retry. The ridge shifts the spectrum away
  // from zero (where CG stalls on near-singular normal equations) and the
  // tolerance is adapted -- an approximate step is enough for the outer
  // iteration to keep descending. Warm-start from rung 1 when it is usable.
  ++diagnostics.tikhonov_retries;
  note_rung(FallbackRung::kTikhonov);
  const Real tau = adaptive_tau(ridge_for(diagonal_of(a), options.tikhonov_scale), options);
  const Matrix ridged = add_ridge(a, tau);
  linalg::IterativeOptions relaxed = options.cg;
  relaxed.tolerance = options.cg.tolerance * options.tikhonov_tolerance_factor;
  std::vector<Real> warm = all_finite(cg.x) ? std::move(cg.x) : std::vector<Real>{};
  linalg::IterativeResult retry =
      linalg::conjugate_gradient(ridged, b, relaxed, std::move(warm));
  diagnostics.cg_iterations += retry.iterations;
  if (retry.converged && all_finite(retry.x)) {
    return std::move(retry.x);
  }

  // Rung 3: direct dense solve -- the last resort that does not depend on
  // conditioning-sensitive iteration at all. A singular matrix gets the same
  // ridge; only if that also fails does the ladder give up.
  ++diagnostics.dense_fallbacks;
  note_rung(FallbackRung::kDense);
  return dense_rung(densify(a), b, tau);
}

// Workspace ladder shared by the sparse and dense overloads: identical rungs
// and escalation rules to `ladder`, with the CG solves running through
// conjugate_gradient_with on a reused CgWorkspace. `make_op` adapts a matrix
// to the CG operator; `ridge` builds the rung-2 system.
template <typename Matrix, typename MakeOp, typename Ridge>
std::vector<Real> workspace_ladder(const Matrix& a, const std::vector<Real>& b,
                                   const FallbackOptions& options,
                                   SolveDiagnostics& diagnostics, linalg::CgWorkspace& ws,
                                   const MakeOp& make_op, const Ridge& ridge) {
  PARMA_REQUIRE(a.rows() == a.cols(), "fallback ladder needs a square matrix");
  ++diagnostics.linear_solves;
  const auto note_rung = [&](FallbackRung rung) {
    diagnostics.highest_rung = std::max(diagnostics.highest_rung, rung);
  };

  linalg::IterativeResult cg = linalg::conjugate_gradient_with(make_op(a), b, options.cg, ws,
                                                               options.preconditioner);
  diagnostics.cg_iterations += cg.iterations;
  if (cg.converged && all_finite(cg.x)) {
    note_rung(FallbackRung::kCg);
    return std::move(cg.x);
  }

  ++diagnostics.tikhonov_retries;
  note_rung(FallbackRung::kTikhonov);
  const Real tau = adaptive_tau(ridge_for(diagonal_of(a), options.tikhonov_scale), options);
  const Matrix ridged = ridge(a, tau);
  linalg::IterativeOptions relaxed = options.cg;
  relaxed.tolerance = options.cg.tolerance * options.tikhonov_tolerance_factor;
  std::vector<Real> warm = all_finite(cg.x) ? std::move(cg.x) : std::vector<Real>{};
  linalg::IterativeResult retry = linalg::conjugate_gradient_with(
      make_op(ridged), b, relaxed, ws, options.preconditioner, std::move(warm));
  diagnostics.cg_iterations += retry.iterations;
  if (retry.converged && all_finite(retry.x)) {
    return std::move(retry.x);
  }

  ++diagnostics.dense_fallbacks;
  note_rung(FallbackRung::kDense);
  return dense_rung(densify(a), b, tau);
}

}  // namespace

const char* fallback_rung_name(FallbackRung rung) {
  switch (rung) {
    case FallbackRung::kNone: return "none";
    case FallbackRung::kCg: return "cg";
    case FallbackRung::kTikhonov: return "tikhonov";
    case FallbackRung::kDense: return "dense";
  }
  return "?";
}

void SolveDiagnostics::merge(const SolveDiagnostics& other) {
  highest_rung = std::max(highest_rung, other.highest_rung);
  linear_solves += other.linear_solves;
  cg_iterations += other.cg_iterations;
  tikhonov_retries += other.tikhonov_retries;
  dense_fallbacks += other.dense_fallbacks;
  converged = converged && other.converged;
}

std::vector<Real> solve_with_fallback(const linalg::CsrMatrix& a,
                                      const std::vector<Real>& b,
                                      const FallbackOptions& options,
                                      SolveDiagnostics& diagnostics) {
  return ladder(a, b, options, diagnostics);
}

std::vector<Real> solve_with_fallback(const linalg::DenseMatrix& a,
                                      const std::vector<Real>& b,
                                      const FallbackOptions& options,
                                      SolveDiagnostics& diagnostics) {
  return ladder(a, b, options, diagnostics);
}

std::vector<Real> solve_with_fallback(const linalg::CsrMatrix& a,
                                      const std::vector<Real>& b,
                                      const FallbackOptions& options,
                                      SolveDiagnostics& diagnostics,
                                      LadderWorkspace& workspace) {
  // Opt-in mixed-precision pre-rung: try the float-inner/double-outer solve
  // first. Its accuracy gate checks the DOUBLE residual, so a success here is
  // as accurate as rung 1; a miss just falls through to the regular ladder
  // (the iterations still count toward diagnostics).
  if (options.cg.mixed_precision) {
    linalg::IterativeResult mixed =
        linalg::conjugate_gradient_mixed(a, b, options.cg, workspace.mixed);
    diagnostics.cg_iterations += mixed.iterations;
    if (mixed.converged) {
      ++diagnostics.linear_solves;
      diagnostics.highest_rung = std::max(diagnostics.highest_rung, FallbackRung::kCg);
      return std::move(mixed.x);
    }
  }
  return workspace_ladder(
      a, b, options, diagnostics, workspace.cg,
      [&](const linalg::CsrMatrix& m) {
        // The padded shadow mirrors `a` only; the ridged rung-2 copy (a
        // different object with fresh values) multiplies through its own CSR.
        const linalg::PaddedCsrChunks* padded = (&m == &a) ? workspace.padded : nullptr;
        return ParallelCsrOperator(m, workspace.executor, padded);
      },
      [](const linalg::CsrMatrix& m, Real tau) { return add_ridge_in_pattern(m, tau); });
}

std::vector<Real> solve_with_fallback(const linalg::DenseMatrix& a,
                                      const std::vector<Real>& b,
                                      const FallbackOptions& options,
                                      SolveDiagnostics& diagnostics,
                                      linalg::CgWorkspace& workspace) {
  return workspace_ladder(
      a, b, options, diagnostics, workspace,
      [](const linalg::DenseMatrix& m) { return linalg::SerialDenseOperator(m); },
      [](const linalg::DenseMatrix& m, Real tau) { return add_ridge(m, tau); });
}

}  // namespace parma::solver

#include "solver/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace parma::solver {

namespace {

constexpr Real kHuberDefault = 1.345;
constexpr Real kTukeyDefault = 4.685;

}  // namespace

const char* robust_loss_name(RobustLoss loss) {
  switch (loss) {
    case RobustLoss::kNone: return "none";
    case RobustLoss::kHuber: return "huber";
    case RobustLoss::kTukey: return "tukey";
  }
  return "?";
}

const char* termination_reason_name(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kToleranceReached: return "tolerance-reached";
    case TerminationReason::kMaxIterations: return "max-iterations";
    case TerminationReason::kStalled: return "stalled";
    case TerminationReason::kNumericalBreakdown: return "numerical-breakdown";
  }
  return "?";
}

Real effective_tuning(const RobustOptions& options) {
  if (options.tuning > 0.0) return options.tuning;
  switch (options.loss) {
    case RobustLoss::kHuber: return kHuberDefault;
    case RobustLoss::kTukey: return kTukeyDefault;
    case RobustLoss::kNone: return 1.0;
  }
  return 1.0;
}

Real robust_scale(const std::vector<Real>& residual, std::vector<Real>& scratch,
                  Real min_scale) {
  if (residual.empty()) return std::max(min_scale, Real{0.0});
  scratch.resize(residual.size());
  for (std::size_t e = 0; e < residual.size(); ++e) scratch[e] = std::abs(residual[e]);
  const std::size_t mid = scratch.size() / 2;
  std::nth_element(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                   scratch.end());
  // 1.4826 makes the median-absolute-deviation consistent with the standard
  // deviation of a Gaussian residual core.
  return std::max(Real{1.4826} * scratch[mid], min_scale);
}

Index robust_weights(const std::vector<Real>& residual, Real scale, RobustLoss loss,
                     Real tuning, std::vector<Real>& weights) {
  PARMA_REQUIRE(scale > 0.0, "robust scale must be positive");
  PARMA_REQUIRE(tuning > 0.0, "robust tuning constant must be positive");
  weights.resize(residual.size());
  if (loss == RobustLoss::kNone) {
    std::fill(weights.begin(), weights.end(), Real{1.0});
    return 0;
  }
  Index downweighted = 0;
  for (std::size_t e = 0; e < residual.size(); ++e) {
    const Real u = std::abs(residual[e]) / scale;
    Real w = 1.0;
    if (loss == RobustLoss::kHuber) {
      if (u > tuning) w = tuning / u;
    } else {  // Tukey biweight
      if (u < tuning) {
        const Real t = 1.0 - (u / tuning) * (u / tuning);
        w = t * t;
      } else {
        w = 0.0;
      }
    }
    if (!std::isfinite(w)) w = 0.0;  // a NaN residual row gets zero vote
    weights[e] = w;
    if (w < 1.0) ++downweighted;
  }
  return downweighted;
}

Real robust_cost(const std::vector<Real>& residual, Real scale, RobustLoss loss,
                 Real tuning) {
  PARMA_REQUIRE(scale > 0.0, "robust scale must be positive");
  Real cost = 0.0;
  for (const Real r : residual) {
    const Real u = std::abs(r) / scale;
    switch (loss) {
      case RobustLoss::kNone:
        cost += 0.5 * u * u;
        break;
      case RobustLoss::kHuber:
        cost += (u <= tuning) ? 0.5 * u * u : tuning * u - 0.5 * tuning * tuning;
        break;
      case RobustLoss::kTukey: {
        const Real c2 = tuning * tuning;
        if (u < tuning) {
          const Real t = 1.0 - (u / tuning) * (u / tuning);
          cost += c2 / 6.0 * (1.0 - t * t * t);
        } else {
          cost += c2 / 6.0;
        }
        break;
      }
    }
  }
  return cost;
}

Real diagonal_condition_estimate(const std::vector<Real>& diag) {
  Real max_d = 0.0;
  Real min_d = std::numeric_limits<Real>::infinity();
  for (const Real d : diag) {
    if (!std::isfinite(d) || d <= 0.0) {
      return std::numeric_limits<Real>::infinity();
    }
    max_d = std::max(max_d, d);
    min_d = std::min(min_d, d);
  }
  if (diag.empty() || min_d <= 0.0) return std::numeric_limits<Real>::infinity();
  return max_d / min_d;
}

}  // namespace parma::solver

// Robust estimation layered on the Gauss-Newton / Levenberg-Marquardt loops:
// iteratively-reweighted least squares (IRLS) with Huber or Tukey weights.
//
// Per outer iteration the solver computes the unweighted residual r, a robust
// scale sigma = 1.4826 * median |r_e| (the MAD estimate, consistent for a
// Gaussian core), and per-row weights w_e = psi(r_e / sigma) / (r_e / sigma).
// The normal equations become J^T W J delta = -J^T W r. The weights are
// numeric-only -- they never change which slots exist -- so the symbolic
// split and the zero-allocation kernel refreshes are preserved; with
// RobustLoss::kNone no weight is ever computed and the plain least-squares
// path is bit-identical to the pre-robust solver.
//
// Also home to the typed termination taxonomy (so a non-finite residual or
// step surfaces as kNumericalBreakdown instead of burning max-iterations) and
// the cheap diagonal condition estimate that drives the adaptive Tikhonov
// strength in the fallback ladder.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace parma::solver {

enum class RobustLoss {
  kNone,   ///< plain least squares (bit-identical to the legacy solver)
  kHuber,  ///< quadratic core, linear tails; weights k/|u| beyond k
  kTukey,  ///< redescending biweight; outliers beyond c get weight 0
};

const char* robust_loss_name(RobustLoss loss);

struct RobustOptions {
  RobustLoss loss = RobustLoss::kNone;
  /// Tuning constant in scale units; 0 selects the textbook 95%-efficiency
  /// default (1.345 for Huber, 4.685 for Tukey).
  Real tuning = 0.0;
  /// Floor for the robust scale, so an (almost) exactly-fitting system does
  /// not divide by zero and declare everything an outlier.
  Real min_scale = 1e-12;
  /// Relative floor: sigma never drops below this fraction of the FIRST
  /// iteration's scale. Guards against MAD collapse when the clean majority
  /// fits (nearly) exactly -- e.g. the square per-pair LM system, where the
  /// inliers interpolate and a collapsed sigma would turn numerical noise
  /// into "outliers" and destabilize the reweighting.
  Real min_scale_fraction = 1e-6;
};

/// The tuning constant in effect (resolves the 0 = default convention).
[[nodiscard]] Real effective_tuning(const RobustOptions& options);

/// Why the outer GN/LM iteration stopped.
enum class TerminationReason {
  kToleranceReached,    ///< converged below the residual tolerance
  kMaxIterations,       ///< iteration budget exhausted while still improving
  kStalled,             ///< no acceptable step found (finite but not better)
  kNumericalBreakdown,  ///< non-finite residual/step: aborted, not iterated on
};

const char* termination_reason_name(TerminationReason reason);

/// Per-solve robust-estimation diagnostics, surfaced end-to-end
/// (solver result -> serve::ParametrizeResult::quality -> serve::Stats).
struct RobustReport {
  bool enabled = false;            ///< a robust loss was active
  Real final_scale = 0.0;          ///< last robust scale sigma
  Index rows_downweighted = 0;     ///< residual rows with final weight < 1
  /// Measurement entries (flat i * cols + j) whose terminal equations ended
  /// the solve at weight < 0.5 -- the flagged outlier candidates.
  std::vector<Index> downweighted_entries;
  Real condition_estimate = 0.0;   ///< worst diagonal condition proxy seen
  Index masked_entries = 0;        ///< entries excluded by the mask
};

/// Robust scale sigma = 1.4826 * median |r_e|, floored at min_scale.
/// `scratch` avoids a per-call allocation (resized to residual.size()).
[[nodiscard]] Real robust_scale(const std::vector<Real>& residual,
                                std::vector<Real>& scratch, Real min_scale);

/// Fills `weights` with w_e = psi(r_e / sigma) / (r_e / sigma) for the given
/// loss; returns the number of rows with weight < 1. kNone fills ones.
Index robust_weights(const std::vector<Real>& residual, Real scale, RobustLoss loss,
                     Real tuning, std::vector<Real>& weights);

/// Robust objective sum_e rho(r_e / sigma) at fixed sigma (the step-acceptance
/// metric of the IRLS outer loop; compares candidates under ONE sigma).
[[nodiscard]] Real robust_cost(const std::vector<Real>& residual, Real scale,
                               RobustLoss loss, Real tuning);

/// Cheap condition proxy of a (near-)SPD matrix from its diagonal:
/// max diag / min positive diag. A lower bound on the true spectral condition
/// number -- cheap enough for every iteration, and large exactly when the
/// normal equations are heading toward the Tikhonov rung. Returns +inf when
/// the diagonal has non-positive or non-finite entries.
[[nodiscard]] Real diagonal_condition_estimate(const std::vector<Real>& diag);

}  // namespace parma::solver

// Gauss-Newton over the FULL joint-constraint system.
//
// Works directly on the 2n^3 equations in (2n-1) n^2 unknowns produced by
// equations::generate_system -- resistances and pair voltages solved jointly,
// exactly the system the paper's Parma forms. The system is overdetermined
// by n^2 rows; each Gauss-Newton step solves the normal equations
// J^T J delta = -J^T r with Jacobi-preconditioned CG on the sparse Jacobian.
//
// Complements inverse_solver.hpp (which eliminates the voltages pair-by-pair
// and is the faster production path); tests assert both recover the same
// grids, which validates the generated equation set end to end.
#pragma once

#include <memory>
#include <vector>

#include "circuit/crossbar.hpp"
#include "equations/generator.hpp"
#include "mea/measurement.hpp"
#include "solver/fallback.hpp"
#include "solver/robust.hpp"
#include "solver/system_kernels.hpp"

namespace parma::solver {

struct FullSystemOptions {
  Index max_iterations = 30;
  Real tolerance = 1e-10;        ///< stop when the residual RMS falls below
  Index cg_max_iterations = 2000;
  Real cg_tolerance = 1e-12;
  Real step_clamp = 0.5;         ///< max |relative| change of any unknown per step
  /// Escalation knobs for the per-step normal-equation solve (the CG ->
  /// Tikhonov -> dense ladder; cg_max_iterations/cg_tolerance configure the
  /// first rung). See fallback.hpp.
  Real tikhonov_scale = 1e-8;
  Real tikhonov_tolerance_factor = 100.0;
  /// Default: the symbolic/numeric kernel hot path (system_kernels.hpp) --
  /// in-place J / J^T J refreshes and workspace CG, bit-identical to the
  /// legacy rebuild-per-iteration path (asserted in tests/test_kernels.cpp).
  /// false selects the legacy path (the benchmark baseline).
  bool use_kernels = true;
  /// IRLS robust loss over the equation residuals (robust.hpp). kNone keeps
  /// the plain least-squares iteration bit-identical to the pre-robust
  /// solver; kHuber/kTukey require use_kernels (the weighted refresh lives in
  /// the kernel layer).
  RobustOptions robust;
  /// When > 0: the per-iteration diagonal condition estimate of J^T J above
  /// this target scales the fallback ladder's rung-2 ridge proportionally
  /// (see FallbackOptions::adaptive_tikhonov_target). 0 = the fixed ridge.
  Real adaptive_tikhonov_target = 0.0;
  /// Preconditioner for the per-step normal-equation CG (kernel path only;
  /// the legacy path keeps its inline Jacobi). Built once against the
  /// symbolic pattern, refreshed in place from the current J^T J values each
  /// Gauss-Newton iteration -- IRLS-weighted refreshes included. kJacobi is
  /// bit-identical to every pre-preconditioner release; kBlockJacobi (the
  /// default) solves one small dense SPD system per electrode row / voltage
  /// group per application, cutting CG iterations at a per-iteration cost
  /// that amortizes against the saved SpMVs (measured in bench/solver_hotpath).
  linalg::PreconditionerKind preconditioner = linalg::PreconditionerKind::kBlockJacobi;
  /// Opt-in mixed-precision pre-rung for the per-step solve (float SpMV
  /// inside double iterative refinement; see IterativeOptions::mixed_precision
  /// for the accuracy gate). Off by default; changes numerics when on.
  bool mixed_precision = false;
};

/// Optional amortization state for solve_full_system: a warm executor to
/// parallelize refreshes, residuals, and CG products (null = serial; the
/// results are bit-identical either way), and the shape-cached symbolic
/// structure (null = analyze on entry; core::FormationCache shares one
/// analysis across every system of a shape).
struct KernelContext {
  exec::Executor* executor = nullptr;
  std::shared_ptr<const SystemSymbolic> symbolic;
};

struct FullSystemResult {
  std::vector<Real> unknowns;  ///< full vector: resistances then pair voltages
  circuit::ResistanceGrid recovered{1, 1};
  Index iterations = 0;
  bool converged = false;
  Real final_residual_rms = 0.0;
  std::vector<Real> residual_history;
  /// Which fallback rungs the per-step linear solves needed (kCg only on a
  /// healthy run; Tikhonov/dense mean the system was ill-conditioned or a
  /// fault was injected).
  SolveDiagnostics diagnostics;
  /// Why the outer iteration stopped; a non-finite residual or step reports
  /// kNumericalBreakdown instead of masquerading as a stall or max-iterations.
  TerminationReason termination = TerminationReason::kMaxIterations;
  /// Robust-estimation diagnostics: final scale, down-weighted entries,
  /// condition estimate, masked-entry count (kernel path; enabled reflects
  /// whether a robust loss ran).
  RobustReport robust;
};

/// Initial guess: R = Z (diagonal-dominant approximation) and pair voltages
/// from the per-pair linear solve under that guess. Masked Z entries take the
/// mean of the unmasked ones instead. The n^2 per-pair solves are independent
/// and write disjoint slots of x, so a non-null executor runs them in
/// parallel with bit-identical results.
std::vector<Real> initial_guess(const equations::EquationSystem& system,
                                const mea::Measurement& measurement,
                                exec::Executor* executor = nullptr);

FullSystemResult solve_full_system(const equations::EquationSystem& system,
                                   const mea::Measurement& measurement,
                                   const FullSystemOptions& options = {});

/// Context-threading overload for serving: reuses a warm executor and the
/// shape-cached symbolic analysis across requests.
FullSystemResult solve_full_system(const equations::EquationSystem& system,
                                   const mea::Measurement& measurement,
                                   const FullSystemOptions& options,
                                   const KernelContext& context);

}  // namespace parma::solver

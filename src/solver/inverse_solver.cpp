#include "solver/inverse_solver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/require.hpp"
#include "equations/pair_system.hpp"
#include "linalg/dense_solve.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace parma::solver {
namespace {

// Forward sweep: model impedances and the dense log-space Jacobian
// J[p][e] = dZ_p/dR_e * R_e (rows = pairs, cols = resistors).
struct ForwardSweep {
  linalg::DenseMatrix z_model{1, 1};
  linalg::DenseMatrix jacobian{1, 1};
};

// Per-pair work is independent (the paper's fine-grained unit), so the sweep
// parallelizes over endpoint pairs; every pair writes disjoint rows, and the
// result is identical for any worker count.
ForwardSweep forward_sweep(const circuit::ResistanceGrid& grid, Real volts,
                           parallel::ThreadPool* pool) {
  const Index rows = grid.rows();
  const Index cols = grid.cols();
  const Index pairs = rows * cols;
  ForwardSweep sweep;
  sweep.z_model = linalg::DenseMatrix(rows, cols);
  sweep.jacobian = linalg::DenseMatrix(pairs, pairs);

  const auto solve_one = [&](Index p) {
    const Index i = p / cols;
    const Index j = p % cols;
    const equations::PairSolution pair = equations::solve_pair(grid, i, j, volts);
    sweep.z_model(i, j) = pair.z_model;
    const std::vector<Real> grad = equations::impedance_gradient(grid, pair);
    for (Index e = 0; e < pairs; ++e) {
      sweep.jacobian(p, e) = grad[static_cast<std::size_t>(e)] *
                             grid.flat()[static_cast<std::size_t>(e)];
    }
  };

  if (pool != nullptr) {
    parallel::ForOptions loop;
    loop.schedule = parallel::Schedule::kDynamic;
    loop.chunk = 4;
    parallel::parallel_for(*pool, 0, pairs, solve_one, loop);
  } else {
    for (Index p = 0; p < pairs; ++p) solve_one(p);
  }
  return sweep;
}

}  // namespace

Real impedance_misfit(const linalg::DenseMatrix& z_model,
                      const linalg::DenseMatrix& z_measured) {
  PARMA_REQUIRE(z_model.rows() == z_measured.rows() && z_model.cols() == z_measured.cols(),
                "impedance shapes differ");
  Real num = 0.0;
  Real den = 0.0;
  for (Index i = 0; i < z_model.rows(); ++i) {
    for (Index j = 0; j < z_model.cols(); ++j) {
      const Real d = z_model(i, j) - z_measured(i, j);
      num += d * d;
      den += z_measured(i, j) * z_measured(i, j);
    }
  }
  PARMA_REQUIRE(den > 0.0, "measured impedances are all zero");
  return std::sqrt(num / den);
}

Real InverseResult::max_relative_error(const circuit::ResistanceGrid& truth) const {
  PARMA_REQUIRE(truth.rows() == recovered.rows() && truth.cols() == recovered.cols(),
                "truth grid shape mismatch");
  Real worst = 0.0;
  for (std::size_t e = 0; e < truth.flat().size(); ++e) {
    worst = std::max(worst, std::abs(recovered.flat()[e] - truth.flat()[e]) /
                                std::abs(truth.flat()[e]));
  }
  return worst;
}

InverseResult recover_resistances(const mea::Measurement& measurement,
                                  const InverseOptions& options) {
  measurement.spec.validate();
  PARMA_REQUIRE(options.max_iterations >= 1, "need at least one iteration");
  const Index rows = measurement.spec.rows;
  const Index cols = measurement.spec.cols;
  const Index pairs = rows * cols;
  const Real volts = measurement.spec.drive_voltage;

  InverseResult result;
  result.recovered = circuit::ResistanceGrid(rows, cols);
  if (options.initial_grid.has_value()) {
    PARMA_REQUIRE(options.initial_grid->rows() == rows && options.initial_grid->cols() == cols,
                  "initial grid shape mismatch");
    result.recovered = *options.initial_grid;
    for (Real v : result.recovered.flat()) {
      PARMA_REQUIRE(v > 0.0, "initial grid must be positive");
    }
  } else {
    // Z(i, j) itself is a decent starting guess: it equals R_ij exactly when
    // every other resistor is infinite, and underestimates otherwise.
    for (Index i = 0; i < rows; ++i) {
      for (Index j = 0; j < cols; ++j) {
        result.recovered.at(i, j) = options.initial_resistance > 0.0
                                        ? options.initial_resistance
                                        : measurement.z(i, j);
        PARMA_REQUIRE(result.recovered.at(i, j) > 0.0, "initial guess must be positive");
      }
    }
  }

  PARMA_REQUIRE(options.workers >= 1, "need at least one worker");
  std::unique_ptr<parallel::ThreadPool> pool;
  if (options.workers > 1) pool = std::make_unique<parallel::ThreadPool>(options.workers);

  Real lambda = options.initial_lambda;
  // One CG workspace reused by every damped ladder solve across all LM
  // iterations and retries (the damped systems share their size).
  linalg::CgWorkspace ladder_workspace;
  ForwardSweep sweep = forward_sweep(result.recovered, volts, pool.get());
  Real misfit = impedance_misfit(sweep.z_model, measurement.z);
  if (!std::isfinite(misfit)) {
    throw NumericalError("inverse solve: non-finite initial misfit (corrupt measurement?)");
  }
  result.misfit_history.push_back(misfit);

  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (misfit <= options.tolerance) {
      result.converged = true;
      break;
    }

    // Residual r_p = Z_model - Z_measured, normal equations in log-space:
    // (J^T J + lambda diag(J^T J)) delta = -J^T r.
    std::vector<Real> residual(static_cast<std::size_t>(pairs));
    for (Index i = 0; i < rows; ++i) {
      for (Index j = 0; j < cols; ++j) {
        residual[static_cast<std::size_t>(i * cols + j)] =
            sweep.z_model(i, j) - measurement.z(i, j);
      }
    }
    const linalg::DenseMatrix jt = sweep.jacobian.transpose();
    linalg::DenseMatrix jtj = jt.multiply(sweep.jacobian);
    std::vector<Real> rhs = jt.multiply(residual);
    for (Real& v : rhs) v = -v;

    bool accepted = false;
    for (int attempt = 0; attempt < 8 && !accepted; ++attempt) {
      linalg::DenseMatrix damped = jtj;
      for (Index d = 0; d < pairs; ++d) {
        damped(d, d) += lambda * std::max(jtj(d, d), Real{1e-12});
      }
      std::vector<Real> delta;
      try {
        if (options.use_fallback_ladder) {
          FallbackOptions ladder;
          ladder.cg.max_iterations = options.ladder_cg_max_iterations;
          ladder.cg.tolerance = options.ladder_cg_tolerance;
          delta = solve_with_fallback(damped, rhs, ladder, result.diagnostics,
                                      ladder_workspace);
        } else {
          delta = linalg::solve_dense(damped, rhs);
          ++result.diagnostics.linear_solves;
        }
      } catch (const NumericalError&) {
        lambda *= options.lambda_grow;
        continue;
      }

      // Apply in log-space with a trust-region style step clamp.
      circuit::ResistanceGrid candidate = result.recovered;
      for (Index e = 0; e < pairs; ++e) {
        const Real step = std::clamp(delta[static_cast<std::size_t>(e)], Real{-2.0}, Real{2.0});
        candidate.flat()[static_cast<std::size_t>(e)] *= std::exp(step);
      }
      ForwardSweep candidate_sweep = forward_sweep(candidate, volts, pool.get());
      const Real candidate_misfit = impedance_misfit(candidate_sweep.z_model, measurement.z);
      // NaN misfit (a poisoned forward solve) must count as a rejected step,
      // not slip through the comparison.
      if (std::isfinite(candidate_misfit) && candidate_misfit < misfit) {
        result.recovered = std::move(candidate);
        sweep = std::move(candidate_sweep);
        misfit = candidate_misfit;
        lambda = std::max(lambda * options.lambda_shrink, Real{1e-12});
        accepted = true;
      } else {
        lambda *= options.lambda_grow;
      }
    }
    result.misfit_history.push_back(misfit);
    if (!accepted) break;  // stalled: LM cannot improve further
  }

  result.final_misfit = misfit;
  result.converged = result.converged || misfit <= options.tolerance;
  result.diagnostics.converged = result.converged;
  return result;
}

}  // namespace parma::solver

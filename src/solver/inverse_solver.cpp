#include "solver/inverse_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "common/require.hpp"
#include "equations/pair_system.hpp"
#include "linalg/dense_solve.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace parma::solver {
namespace {

// Forward sweep: model impedances and the dense log-space Jacobian
// J[p][e] = dZ_p/dR_e * R_e (rows = pairs, cols = resistors).
struct ForwardSweep {
  linalg::DenseMatrix z_model{1, 1};
  linalg::DenseMatrix jacobian{1, 1};
};

// Per-pair work is independent (the paper's fine-grained unit), so the sweep
// parallelizes over endpoint pairs; every pair writes disjoint rows, and the
// result is identical for any worker count.
ForwardSweep forward_sweep(const circuit::ResistanceGrid& grid, Real volts,
                           parallel::ThreadPool* pool) {
  const Index rows = grid.rows();
  const Index cols = grid.cols();
  const Index pairs = rows * cols;
  ForwardSweep sweep;
  sweep.z_model = linalg::DenseMatrix(rows, cols);
  sweep.jacobian = linalg::DenseMatrix(pairs, pairs);

  const auto solve_one = [&](Index p) {
    const Index i = p / cols;
    const Index j = p % cols;
    const equations::PairSolution pair = equations::solve_pair(grid, i, j, volts);
    sweep.z_model(i, j) = pair.z_model;
    const std::vector<Real> grad = equations::impedance_gradient(grid, pair);
    for (Index e = 0; e < pairs; ++e) {
      sweep.jacobian(p, e) = grad[static_cast<std::size_t>(e)] *
                             grid.flat()[static_cast<std::size_t>(e)];
    }
  };

  if (pool != nullptr) {
    parallel::ForOptions loop;
    loop.schedule = parallel::Schedule::kDynamic;
    loop.chunk = 4;
    parallel::parallel_for(*pool, 0, pairs, solve_one, loop);
  } else {
    for (Index p = 0; p < pairs; ++p) solve_one(p);
  }
  return sweep;
}

}  // namespace

Real impedance_misfit(const linalg::DenseMatrix& z_model,
                      const linalg::DenseMatrix& z_measured) {
  PARMA_REQUIRE(z_model.rows() == z_measured.rows() && z_model.cols() == z_measured.cols(),
                "impedance shapes differ");
  Real num = 0.0;
  Real den = 0.0;
  for (Index i = 0; i < z_model.rows(); ++i) {
    for (Index j = 0; j < z_model.cols(); ++j) {
      const Real d = z_model(i, j) - z_measured(i, j);
      num += d * d;
      den += z_measured(i, j) * z_measured(i, j);
    }
  }
  PARMA_REQUIRE(den > 0.0, "measured impedances are all zero");
  return std::sqrt(num / den);
}

Real impedance_misfit(const linalg::DenseMatrix& z_model,
                      const mea::Measurement& measurement) {
  if (mea::masked_entry_count(measurement) == 0) {
    return impedance_misfit(z_model, measurement.z);
  }
  PARMA_REQUIRE(z_model.rows() == measurement.z.rows() &&
                    z_model.cols() == measurement.z.cols(),
                "impedance shapes differ");
  Real num = 0.0;
  Real den = 0.0;
  for (Index i = 0; i < z_model.rows(); ++i) {
    for (Index j = 0; j < z_model.cols(); ++j) {
      if (!mea::entry_valid(measurement, i, j)) continue;
      const Real d = z_model(i, j) - measurement.z(i, j);
      num += d * d;
      den += measurement.z(i, j) * measurement.z(i, j);
    }
  }
  PARMA_REQUIRE(den > 0.0, "every unmasked measured impedance is zero");
  return std::sqrt(num / den);
}

Real InverseResult::max_relative_error(const circuit::ResistanceGrid& truth) const {
  PARMA_REQUIRE(truth.rows() == recovered.rows() && truth.cols() == recovered.cols(),
                "truth grid shape mismatch");
  Real worst = 0.0;
  for (std::size_t e = 0; e < truth.flat().size(); ++e) {
    worst = std::max(worst, std::abs(recovered.flat()[e] - truth.flat()[e]) /
                                std::abs(truth.flat()[e]));
  }
  return worst;
}

InverseResult recover_resistances(const mea::Measurement& measurement,
                                  const InverseOptions& options) {
  measurement.spec.validate();
  PARMA_REQUIRE(options.max_iterations >= 1, "need at least one iteration");
  const Index rows = measurement.spec.rows;
  const Index cols = measurement.spec.cols;
  const Index pairs = rows * cols;
  const Real volts = measurement.spec.drive_voltage;

  InverseResult result;
  result.recovered = circuit::ResistanceGrid(rows, cols);
  if (options.initial_grid.has_value()) {
    PARMA_REQUIRE(options.initial_grid->rows() == rows && options.initial_grid->cols() == cols,
                  "initial grid shape mismatch");
    result.recovered = *options.initial_grid;
    for (Real v : result.recovered.flat()) {
      PARMA_REQUIRE(v > 0.0, "initial grid must be positive");
    }
  } else {
    // Z(i, j) itself is a decent starting guess: it equals R_ij exactly when
    // every other resistor is infinite, and underestimates otherwise. Masked
    // entries (whose Z may be garbage or missing) get the mean of the nearest
    // valid neighbours instead (expanding Chebyshev rings, global mean as the
    // last resort). The fill matters beyond warm-starting: a masked pair's
    // terminal equations are gone, so its resistance sits in a weakly
    // constrained direction that the damped LM steps barely move -- a
    // spatially local fill is what keeps that direction near the truth.
    Real global_fill = 0.0;
    const Index masked_entries = mea::masked_entry_count(measurement);
    if (options.initial_resistance <= 0.0 && masked_entries > 0) {
      Real sum = 0.0;
      Index count = 0;
      for (Index i = 0; i < rows; ++i) {
        for (Index j = 0; j < cols; ++j) {
          if (!mea::entry_valid(measurement, i, j)) continue;
          sum += measurement.z(i, j);
          ++count;
        }
      }
      PARMA_REQUIRE(count > 0, "initial guess needs at least one unmasked entry");
      global_fill = sum / static_cast<Real>(count);
    }
    const auto local_fill = [&](Index i, Index j) {
      const Index max_radius = std::max(rows, cols);
      for (Index radius = 1; radius < max_radius; ++radius) {
        Real sum = 0.0;
        Index count = 0;
        for (Index di = -radius; di <= radius; ++di) {
          for (Index dj = -radius; dj <= radius; ++dj) {
            if (std::max(std::abs(di), std::abs(dj)) != radius) continue;
            const Index ni = i + di;
            const Index nj = j + dj;
            if (ni < 0 || ni >= rows || nj < 0 || nj >= cols) continue;
            if (!mea::entry_valid(measurement, ni, nj)) continue;
            sum += measurement.z(ni, nj);
            ++count;
          }
        }
        if (count > 0) return sum / static_cast<Real>(count);
      }
      return global_fill;
    };
    for (Index i = 0; i < rows; ++i) {
      for (Index j = 0; j < cols; ++j) {
        result.recovered.at(i, j) =
            options.initial_resistance > 0.0
                ? options.initial_resistance
                : (mea::entry_valid(measurement, i, j) ? measurement.z(i, j)
                                                       : local_fill(i, j));
        PARMA_REQUIRE(result.recovered.at(i, j) > 0.0, "initial guess must be positive");
      }
    }
  }

  PARMA_REQUIRE(options.workers >= 1, "need at least one worker");
  std::unique_ptr<parallel::ThreadPool> pool;
  if (options.workers > 1) pool = std::make_unique<parallel::ThreadPool>(options.workers);

  const Index masked = mea::masked_entry_count(measurement);
  const bool robust_on = options.robust.loss != RobustLoss::kNone;
  const Real tuning = effective_tuning(options.robust);
  // Weighted path: masked entries carry weight 0, IRLS multiplies on top.
  // When neither applies, the loop below runs the exact pre-robust arithmetic.
  const bool weighted = robust_on || masked > 0;
  result.robust.enabled = robust_on;
  result.robust.masked_entries = masked;

  // Flat {0, 1} mask weights (row-major pair index p = i * cols + j).
  std::vector<Real> mask_weight;
  if (weighted) {
    mask_weight.assign(static_cast<std::size_t>(pairs), Real{1.0});
    for (Index i = 0; i < rows; ++i) {
      for (Index j = 0; j < cols; ++j) {
        if (!mea::entry_valid(measurement, i, j)) {
          mask_weight[static_cast<std::size_t>(i * cols + j)] = 0.0;
        }
      }
    }
  }

  // Residual over the full pair grid; masked pairs pinned to zero so the
  // weighted products never touch their (possibly garbage) Z.
  const auto residual_of = [&](const linalg::DenseMatrix& z_model, std::vector<Real>& out) {
    out.resize(static_cast<std::size_t>(pairs));
    for (Index i = 0; i < rows; ++i) {
      for (Index j = 0; j < cols; ++j) {
        const std::size_t p = static_cast<std::size_t>(i * cols + j);
        out[p] = (!weighted || mask_weight[p] > 0.0)
                     ? z_model(i, j) - measurement.z(i, j)
                     : Real{0.0};
      }
    }
  };
  // Compacts a residual down to the unmasked entries (robust scale and cost
  // must not see the pinned zeros of masked pairs).
  const auto collect_valid = [&](const std::vector<Real>& residual, std::vector<Real>& out) {
    out.clear();
    for (std::size_t p = 0; p < residual.size(); ++p) {
      if (masked == 0 || mask_weight[p] > 0.0) out.push_back(residual[p]);
    }
  };

  // MAP prior for masked solves: pins log R to the initial guess so the
  // data null space opened by the dropped entries cannot drift (see
  // InverseOptions::masked_prior_strength). Never active unmasked.
  const bool prior_on = masked > 0 && options.masked_prior_strength > 0.0;
  std::vector<Real> log_offset;  // accumulated log-space steps per resistor
  if (prior_on) log_offset.assign(static_cast<std::size_t>(pairs), Real{0.0});

  Real lambda = options.initial_lambda;
  // One CG workspace reused by every damped ladder solve across all LM
  // iterations and retries (the damped systems share their size).
  linalg::CgWorkspace ladder_workspace;
  // Optional block-Jacobi over the damped normal matrix: one dense block per
  // device row of log-resistances, refreshed from each damped attempt.
  // kJacobi leaves this null -- the ladder's historical inline diagonal.
  std::unique_ptr<linalg::BlockJacobiPreconditioner> ladder_precond;
  linalg::IdentityPreconditioner identity_precond;
  if (options.use_fallback_ladder &&
      (options.ladder_preconditioner == linalg::PreconditionerKind::kBlockJacobi ||
       options.ladder_preconditioner == linalg::PreconditionerKind::kIc0)) {
    std::vector<Index> block_ptr;
    block_ptr.reserve(static_cast<std::size_t>(rows) + 1);
    for (Index i = 0; i <= rows; ++i) block_ptr.push_back(i * cols);
    ladder_precond = std::make_unique<linalg::BlockJacobiPreconditioner>(std::move(block_ptr));
  }
  ForwardSweep sweep;
  Real misfit = std::numeric_limits<Real>::quiet_NaN();
  try {
    sweep = forward_sweep(result.recovered, volts, pool.get());
    misfit = impedance_misfit(sweep.z_model, measurement);
  } catch (const ContractError& e) {
    throw NumericalError(std::string("inverse solve: forward model failed on the "
                                     "initial guess (corrupt measurement?): ") +
                         e.what());
  }
  if (!std::isfinite(misfit)) {
    throw NumericalError("inverse solve: non-finite initial misfit (corrupt measurement?)");
  }
  result.misfit_history.push_back(misfit);

  std::vector<Real> residual;
  std::vector<Real> weights;         // combined mask x IRLS weight per pair
  std::vector<Real> valid_scratch;   // compacted residuals for scale/cost
  std::vector<Real> scale_scratch;   // robust_scale's nth_element workspace
  std::vector<Real> irls_weights;
  Real sigma = 0.0;
  // Scale floor, tightened after the first iteration to a fraction of the
  // initial sigma (see RobustOptions::min_scale_fraction).
  Real sigma_floor = options.robust.min_scale;
  bool sigma_floor_set = false;
  const auto floored_scale = [&](const std::vector<Real>& valid) {
    const Real raw = robust_scale(valid, scale_scratch, sigma_floor);
    if (!sigma_floor_set) {
      sigma_floor = std::max(sigma_floor, raw * options.robust.min_scale_fraction);
      sigma_floor_set = true;
    }
    return raw;
  };

  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (misfit <= options.tolerance) {
      result.converged = true;
      break;
    }

    // Residual r_p = Z_model - Z_measured, normal equations in log-space:
    // (J^T W J + lambda diag) delta = -J^T (w o r), with W = I on the plain
    // least-squares path.
    residual_of(sweep.z_model, residual);
    const linalg::DenseMatrix jt = sweep.jacobian.transpose();
    linalg::DenseMatrix jtj{1, 1};
    std::vector<Real> rhs;
    Real cost = 0.0;
    if (weighted) {
      if (robust_on) {
        collect_valid(residual, valid_scratch);
        sigma = floored_scale(valid_scratch);
        result.robust.final_scale = sigma;
        result.robust.rows_downweighted =
            robust_weights(residual, sigma, options.robust.loss, tuning, irls_weights);
        cost = robust_cost(valid_scratch, sigma, options.robust.loss, tuning);
        weights.resize(static_cast<std::size_t>(pairs));
        for (std::size_t p = 0; p < weights.size(); ++p) {
          weights[p] = mask_weight[p] * irls_weights[p];
        }
      } else {
        weights = mask_weight;
      }
      linalg::DenseMatrix wj = sweep.jacobian;
      for (Index p = 0; p < pairs; ++p) {
        const Real w = weights[static_cast<std::size_t>(p)];
        for (Index e = 0; e < pairs; ++e) wj(p, e) *= w;
      }
      jtj = jt.multiply(wj);
      std::vector<Real> wr(static_cast<std::size_t>(pairs));
      for (std::size_t p = 0; p < wr.size(); ++p) wr[p] = weights[p] * residual[p];
      rhs = jt.multiply(wr);
    } else {
      jtj = jt.multiply(sweep.jacobian);
      rhs = jt.multiply(residual);
    }
    for (Real& v : rhs) v = -v;
    if (prior_on) {
      // (J^T W J + mu^2 I) delta = -(J^T W r + mu^2 l), l = log(R / R_init).
      std::vector<Real> diag_copy(static_cast<std::size_t>(pairs));
      for (Index d = 0; d < pairs; ++d) diag_copy[static_cast<std::size_t>(d)] = jtj(d, d);
      std::nth_element(diag_copy.begin(), diag_copy.begin() + diag_copy.size() / 2,
                       diag_copy.end());
      const Real mu2 = options.masked_prior_strength * diag_copy[diag_copy.size() / 2];
      for (Index d = 0; d < pairs; ++d) {
        const std::size_t sd = static_cast<std::size_t>(d);
        jtj(d, d) += mu2;
        rhs[sd] -= mu2 * log_offset[sd];
      }
    }
    bool rhs_finite = true;
    for (Real v : rhs) {
      if (!std::isfinite(v)) { rhs_finite = false; break; }
    }
    if (!rhs_finite) {
      result.termination = TerminationReason::kNumericalBreakdown;
      break;
    }

    // Cheap conditioning proxy of the (weighted) normal matrix; drives the
    // ladder's adaptive ridge and the quality report.
    std::vector<Real> diag(static_cast<std::size_t>(pairs));
    for (Index d = 0; d < pairs; ++d) diag[static_cast<std::size_t>(d)] = jtj(d, d);
    const Real condition = diagonal_condition_estimate(diag);
    result.robust.condition_estimate = std::max(result.robust.condition_estimate, condition);

    bool accepted = false;
    bool any_finite_candidate = false;
    for (int attempt = 0; attempt < 8 && !accepted; ++attempt) {
      linalg::DenseMatrix damped = jtj;
      for (Index d = 0; d < pairs; ++d) {
        damped(d, d) += lambda * std::max(jtj(d, d), Real{1e-12});
      }
      std::vector<Real> delta;
      try {
        if (options.use_fallback_ladder) {
          FallbackOptions ladder;
          ladder.cg.max_iterations = options.ladder_cg_max_iterations;
          ladder.cg.tolerance = options.ladder_cg_tolerance;
          ladder.adaptive_tikhonov_target = options.adaptive_tikhonov_target;
          ladder.condition_estimate = condition;
          if (ladder_precond != nullptr) {
            ladder_precond->refresh(damped);
            ladder.preconditioner = ladder_precond.get();
          } else if (options.ladder_preconditioner ==
                     linalg::PreconditionerKind::kIdentity) {
            ladder.preconditioner = &identity_precond;
          }
          delta = solve_with_fallback(damped, rhs, ladder, result.diagnostics,
                                      ladder_workspace);
        } else {
          delta = linalg::solve_dense(damped, rhs);
          ++result.diagnostics.linear_solves;
        }
      } catch (const NumericalError&) {
        lambda *= options.lambda_grow;
        continue;
      }

      // Apply in log-space with a trust-region style step clamp.
      circuit::ResistanceGrid candidate = result.recovered;
      std::vector<Real> candidate_offset = log_offset;
      for (Index e = 0; e < pairs; ++e) {
        const Real step = std::clamp(delta[static_cast<std::size_t>(e)], Real{-2.0}, Real{2.0});
        candidate.flat()[static_cast<std::size_t>(e)] *= std::exp(step);
        if (prior_on) candidate_offset[static_cast<std::size_t>(e)] += step;
      }
      // A forward model that breaks down at the candidate (roundoff driving a
      // nodal solve or the source-current contract under an extreme iterate)
      // is a rejected step, not a solver crash -- exactly like a NaN misfit.
      ForwardSweep candidate_sweep;
      Real candidate_misfit = std::numeric_limits<Real>::quiet_NaN();
      try {
        candidate_sweep = forward_sweep(candidate, volts, pool.get());
        candidate_misfit = impedance_misfit(candidate_sweep.z_model, measurement);
      } catch (const ContractError&) {
      } catch (const NumericalError&) {
      }
      if (std::isfinite(candidate_misfit)) any_finite_candidate = true;
      // NaN misfit (a poisoned forward solve) must count as a rejected step,
      // not slip through the comparison. With a robust loss active, descent is
      // judged by the robust cost at the frozen scale -- an outlier pair's
      // raw residual must not veto a good step.
      bool improves = false;
      if (std::isfinite(candidate_misfit)) {
        if (robust_on) {
          std::vector<Real> candidate_residual;
          residual_of(candidate_sweep.z_model, candidate_residual);
          collect_valid(candidate_residual, valid_scratch);
          improves = robust_cost(valid_scratch, sigma, options.robust.loss, tuning) < cost;
        } else {
          improves = candidate_misfit < misfit;
        }
      }
      if (improves) {
        result.recovered = std::move(candidate);
        if (prior_on) log_offset = std::move(candidate_offset);
        sweep = std::move(candidate_sweep);
        misfit = candidate_misfit;
        lambda = std::max(lambda * options.lambda_shrink, Real{1e-12});
        accepted = true;
      } else {
        lambda *= options.lambda_grow;
      }
    }
    result.misfit_history.push_back(misfit);
    if (!accepted) {
      // Stalled: LM cannot improve further. If no damped attempt even
      // produced a finite misfit, that is a numerical breakdown, not a stall.
      result.termination = any_finite_candidate ? TerminationReason::kStalled
                                                : TerminationReason::kNumericalBreakdown;
      break;
    }
  }

  result.final_misfit = misfit;
  result.converged = result.converged || misfit <= options.tolerance;
  result.diagnostics.converged = result.converged;
  if (result.converged) result.termination = TerminationReason::kToleranceReached;

  // Final outlier census at the converged state: entries whose IRLS weight
  // ended below 1/2 are the flagged suspects (flat i * cols + j indices).
  if (robust_on) {
    residual_of(sweep.z_model, residual);
    collect_valid(residual, valid_scratch);
    sigma = floored_scale(valid_scratch);
    result.robust.final_scale = sigma;
    result.robust.rows_downweighted =
        robust_weights(residual, sigma, options.robust.loss, tuning, irls_weights);
    result.robust.downweighted_entries.clear();
    for (Index p = 0; p < pairs; ++p) {
      const std::size_t sp = static_cast<std::size_t>(p);
      const bool valid = masked == 0 || mask_weight[sp] > 0.0;
      if (valid && irls_weights[sp] < 0.5) {
        result.robust.downweighted_entries.push_back(p);
      }
    }
    result.robust.rows_downweighted =
        static_cast<Index>(result.robust.downweighted_entries.size());
  }
  return result;
}

}  // namespace parma::solver

// The solver fallback ladder: one linear solve, three escalating attempts.
//
//   rung 1  CG          Jacobi-preconditioned conjugate gradient as-is;
//   rung 2  Tikhonov    CG retried on the ridge-regularized system
//                       (A + tau I) x = b with an adapted (looser) tolerance,
//                       warm-started from rung 1's iterate;
//   rung 3  Dense       direct LU via linalg::solve_dense, with the same
//                       ridge added if the plain matrix is singular.
//
// The ladder is how the iterative joint-constraint solve (paper Section
// IV-A) survives the ill-conditioned or noisy measurements where CG alone
// stalls: escalation happens only on non-convergence or a non-finite
// iterate, so the fast path's numerics are untouched -- when CG converges,
// the result is bit-identical to calling conjugate_gradient directly.
//
// SolveDiagnostics accumulates which rungs ran across the outer iteration
// and is surfaced end-to-end (solver results -> serve::ParametrizeResult ->
// serve::Stats), so a production operator can see "this shape is living on
// the dense rung" before it becomes an outage.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/iterative.hpp"
#include "linalg/sparse_matrix.hpp"

namespace parma::exec {
class Executor;
}

namespace parma::solver {

/// The ladder rung that produced a solution (kNone = no solve ran yet).
enum class FallbackRung : int { kNone = 0, kCg = 1, kTikhonov = 2, kDense = 3 };

const char* fallback_rung_name(FallbackRung rung);

/// Aggregate of every linear solve inside one outer (GN/LM) solve.
struct SolveDiagnostics {
  FallbackRung highest_rung = FallbackRung::kNone;  ///< worst rung needed
  Index linear_solves = 0;      ///< ladder invocations
  Index cg_iterations = 0;      ///< total CG iterations across all rungs
  Index tikhonov_retries = 0;   ///< solves that needed rung 2
  Index dense_fallbacks = 0;    ///< solves that needed rung 3
  bool converged = true;        ///< outer solve converged (set by the solver)

  /// True when any solve escalated past plain CG.
  [[nodiscard]] bool degraded() const { return highest_rung > FallbackRung::kCg; }

  /// Fold another solve's diagnostics in (e.g. per-attempt aggregation).
  void merge(const SolveDiagnostics& other);
};

struct FallbackOptions {
  linalg::IterativeOptions cg;      ///< rung 1 configuration
  /// Rung 2 ridge: tau = tikhonov_scale * max |diag(A)| (floored at 1e-300).
  Real tikhonov_scale = 1e-8;
  /// Rung 2 tolerance = cg.tolerance * tikhonov_tolerance_factor.
  Real tikhonov_tolerance_factor = 100.0;
  /// Adaptive ridge strength: when > 0 and `condition_estimate` exceeds it,
  /// the rung-2 tau is scaled by condition_estimate / target (capped at
  /// 1e6x). 0 = the fixed ridge -- the pre-existing behavior, and since the
  /// ridge only exists on rung 2+, the CG fast path is untouched either way.
  Real adaptive_tikhonov_target = 0.0;
  /// Caller-supplied condition proxy of A (e.g. the solver's per-iteration
  /// diagonal estimate, solver::diagonal_condition_estimate). Only read when
  /// adaptive_tikhonov_target > 0.
  Real condition_estimate = 0.0;
  /// Preconditioner for the CG rungs of the WORKSPACE ladder overloads (the
  /// allocate-per-call overloads keep their historical inline Jacobi). Null =
  /// inline Jacobi, bit-identical to every pre-preconditioner release. The
  /// ladder does not own or refresh it -- the caller refreshes from the
  /// current numeric values before each solve (solver::NormalPreconditioner).
  /// Rung 2 reuses it unrefreshed on the ridged system: the ridge only
  /// strengthens the diagonal, so M stays a valid (slightly stale) SPD
  /// preconditioner there.
  const linalg::Preconditioner* preconditioner = nullptr;
};

/// Runs the ladder on A x = b. Escalates CG -> Tikhonov -> dense; records
/// into `diagnostics`; throws NumericalError only if every rung fails
/// (including the ridged dense solve).
std::vector<Real> solve_with_fallback(const linalg::CsrMatrix& a,
                                      const std::vector<Real>& b,
                                      const FallbackOptions& options,
                                      SolveDiagnostics& diagnostics);

/// Dense overload (the LM normal equations path).
std::vector<Real> solve_with_fallback(const linalg::DenseMatrix& a,
                                      const std::vector<Real>& b,
                                      const FallbackOptions& options,
                                      SolveDiagnostics& diagnostics);

/// Scratch state for the workspace ladder overloads below: one CG workspace
/// reused across every linear solve of an outer iteration (zero allocations
/// per CG iteration) plus the executor driving parallel SpMV / ordered dot
/// reductions inside CG (null = serial; the parallel reductions are
/// bit-identical to serial, see linalg/vector_ops.hpp).
struct LadderWorkspace {
  linalg::CgWorkspace cg;
  exec::Executor* executor = nullptr;
  /// Optional SIMD-friendly shadow of the rung-1 matrix (the caller keeps it
  /// refreshed beside the CSR values; see SystemKernels::padded_normal). Only
  /// consulted when the matrix handed to the ladder IS the one the shadow
  /// mirrors -- the ridged rung-2 copy always multiplies through its own CSR.
  const linalg::PaddedCsrChunks* padded = nullptr;
  /// Scratch for the opt-in mixed-precision pre-rung (cg.mixed_precision).
  linalg::MixedPrecisionWorkspace mixed;
};

/// Workspace ladder on a sparse system. Same three rungs and escalation rules
/// as the allocate-per-call overload; rung 2 reuses A's sparsity pattern and
/// adds the ridge in place when the diagonal is structurally present (it
/// always is for kernel-built normal matrices), instead of rebuilding through
/// a CooBuilder.
std::vector<Real> solve_with_fallback(const linalg::CsrMatrix& a,
                                      const std::vector<Real>& b,
                                      const FallbackOptions& options,
                                      SolveDiagnostics& diagnostics,
                                      LadderWorkspace& workspace);

/// Workspace ladder on a dense system (the LM path: one CgWorkspace threaded
/// through every damped solve).
std::vector<Real> solve_with_fallback(const linalg::DenseMatrix& a,
                                      const std::vector<Real>& b,
                                      const FallbackOptions& options,
                                      SolveDiagnostics& diagnostics,
                                      linalg::CgWorkspace& workspace);

}  // namespace parma::solver

// Classical reconstruction baselines (paper Section I).
//
// "Conventional computational approaches include Landweber method, linear
// back projection, and Tikhonov regularization methods, all of which exhibit
// an ill-posed computational problem: the solution is largely dependent on
// the input and results in an unacceptable variance."
//
// These are the electrical-tomography workhorses the paper positions Parma
// against, implemented on the same exact forward model so the comparison is
// apples-to-apples:
//   * all three linearize around a uniform background via the sensitivity
//     matrix S = dZ/dR (computed with the exact adjoint, not perturbation);
//   * linear back projection is the one-shot normalized transpose;
//   * Tikhonov solves the damped normal equations once;
//   * Landweber iterates R <- R + alpha S^T (Z_meas - f(R)) against the
//     true nonlinear forward model.
// The ablation benchmark quantifies the accuracy/variance gap vs Parma's LM.
#pragma once

#include "circuit/crossbar.hpp"
#include "linalg/dense_matrix.hpp"
#include "mea/measurement.hpp"

namespace parma::solver {

/// Linearization of the forward model around a uniform background.
struct SensitivityModel {
  circuit::ResistanceGrid background{1, 1};
  linalg::DenseMatrix z_background{1, 1};  ///< f(background)
  linalg::DenseMatrix sensitivity{1, 1};   ///< S[p][e] = dZ_p / dR_e at background
};

/// Builds the linearized model. `background_resistance` <= 0 uses the mean of
/// the measured Z as a crude background estimate (what a practitioner without
/// ground truth would do).
SensitivityModel build_sensitivity(const mea::Measurement& measurement,
                                   Real background_resistance = 0.0);

/// One-shot normalized back projection:
/// dR_e = sum_p S[p][e] dZ_p / sum_p S[p][e].
circuit::ResistanceGrid linear_back_projection(const mea::Measurement& measurement,
                                               const SensitivityModel& model);

/// One-shot Tikhonov-regularized linear inversion:
/// dR = (S^T S + lambda * trace(S^T S)/m * I)^-1 S^T dZ.
circuit::ResistanceGrid tikhonov_reconstruction(const mea::Measurement& measurement,
                                                const SensitivityModel& model,
                                                Real lambda = 1e-3);

struct LandweberOptions {
  Index max_iterations = 200;
  /// Relaxation as a fraction of 2 / ||S||^2 (the convergence bound);
  /// values in (0, 1).
  Real relaxation = 0.5;
  Real tolerance = 1e-8;  ///< relative RMS misfit stop
};

struct LandweberResult {
  circuit::ResistanceGrid recovered{1, 1};
  Index iterations = 0;
  Real final_misfit = 0.0;
  std::vector<Real> misfit_history;
};

/// Nonlinear Landweber iteration against the exact forward model, with
/// positivity projection (resistances are clamped above a small floor).
LandweberResult landweber(const mea::Measurement& measurement, const SensitivityModel& model,
                          const LandweberOptions& options = {});

}  // namespace parma::solver

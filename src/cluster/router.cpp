#include "cluster/router.hpp"

#include "common/require.hpp"

namespace parma::cluster {

Router::Router(RouterOptions options)
    : options_(std::move(options)), ring_(options_.ring_vnodes) {
  PARMA_REQUIRE(options_.replicas >= 1, "need at least one candidate per shard");
}

Router::~Router() = default;

Router::Slot& Router::slot_of(Index id) {
  std::lock_guard lock(slots_mu_);
  while (static_cast<std::size_t>(id) >= slots_.size()) {
    slots_.push_back(std::make_unique<Slot>());
  }
  return *slots_[static_cast<std::size_t>(id)];
}

void Router::worker_up(const WorkerEndpoint& endpoint) {
  Slot& slot = slot_of(endpoint.id);
  {
    std::lock_guard lock(slot.mu);
    slot.endpoint = endpoint;
    slot.admitted = true;
    // A (re)joining worker starts with a clean bill of health; its old
    // breaker history belonged to a process that no longer exists.
    slot.breaker = serve::Breaker{};
  }
  {
    std::lock_guard lock(ring_mu_);
    ring_.add(endpoint.id);
  }
  std::lock_guard lock(counters_mu_);
  ++counters_.workers_joined;
}

void Router::worker_down(Index id) {
  Slot& slot = slot_of(id);
  {
    std::lock_guard lock(slot.mu);
    slot.admitted = false;
  }
  {
    std::lock_guard lock(ring_mu_);
    ring_.remove(id);
  }
  std::lock_guard lock(counters_mu_);
  ++counters_.workers_lost;
}

bool Router::ensure_connected(Slot& slot) {
  if (slot.client && slot.client->connected() &&
      slot.connected_generation == slot.endpoint.generation) {
    return true;
  }
  // A fresh client per (re)connect: a new worker generation means a new
  // port, and a timed-out attempt leaves stale pending state behind --
  // either way the old session is not worth resuming.
  slot.client = std::make_unique<net::Client>();
  net::ClientOptions copts;
  copts.host = "127.0.0.1";
  copts.port = slot.endpoint.port;
  copts.connect_timeout = std::chrono::milliseconds(1000);
  copts.reconnect = true;
  copts.max_reconnect_attempts = options_.client_reconnect_attempts;
  copts.reconnect_backoff = options_.client_backoff;
  copts.reconnect_backoff_cap = options_.client_backoff_cap;
  copts.jitter_seed =
      options_.client_jitter_seed ^ mix64(static_cast<std::uint64_t>(slot.endpoint.id) + 1);
  try {
    slot.client->connect(copts);
  } catch (const IoError&) {
    slot.client.reset();
    return false;
  }
  slot.connected_generation = slot.endpoint.generation;
  return true;
}

std::vector<Index> Router::route_of(const serve::ParametrizeRequest& request) const {
  const std::uint64_t h = shard_hash(serve::batch_key(request));
  std::lock_guard lock(ring_mu_);
  return ring_.owners(h, options_.replicas);
}

Router::RouteResult Router::dispatch(const serve::ParametrizeRequest& request) {
  {
    std::lock_guard lock(counters_mu_);
    ++counters_.dispatched;
  }
  const std::uint64_t h = shard_hash(serve::batch_key(request));
  std::vector<Index> candidates;
  {
    std::lock_guard lock(ring_mu_);
    candidates = ring_.owners(h, options_.replicas);
  }

  RouteResult result;
  net::ClientError last_failure = net::ClientError::kConnectionLost;
  for (const Index id : candidates) {
    Slot& slot = slot_of(id);
    std::lock_guard lock(slot.mu);
    if (!slot.admitted) continue;
    if (!slot.breaker.allow(options_.breaker, serve::Clock::now())) {
      std::lock_guard clock(counters_mu_);
      ++counters_.breaker_skips;
      continue;
    }
    if (result.attempts > 0) {
      std::lock_guard clock(counters_mu_);
      ++counters_.failovers;
    }
    ++result.attempts;

    bool transport_failed = false;
    if (!ensure_connected(slot)) {
      transport_failed = true;
      last_failure = net::ClientError::kConnectFailed;
    } else {
      net::WireRequest wire = net::WireRequest::from_request(request, 0);
      std::optional<net::Client::Reply> reply =
          slot.client->request(std::move(wire), options_.attempt_timeout);
      if (!reply) {
        // No verdict within the budget: count it against the worker and
        // drop the session (its pending state is unusable now).
        transport_failed = true;
        slot.client.reset();
      } else if (reply->transport != net::ClientError::kNone) {
        transport_failed = true;
        last_failure = reply->transport;
      } else {
        // The worker answered -- success for the breaker even when the
        // verdict is a rejection; its shard owns the outcome.
        slot.breaker.on_success();
        result.reply = std::move(*reply);
        result.worker = id;
        return result;
      }
    }
    if (transport_failed) {
      if (slot.breaker.on_failure(options_.breaker, serve::Clock::now())) {
        std::lock_guard clock(counters_mu_);
        ++counters_.breaker_opened;
      }
    }
  }

  // Every candidate failed (or was inadmissible): a typed transport
  // verdict, never a silent drop.
  result.reply.transport = last_failure;
  {
    std::lock_guard lock(counters_mu_);
    ++counters_.exhausted;
  }
  return result;
}

serve::Stats Router::cluster_stats(std::size_t* workers_reporting) {
  serve::Stats merged;
  std::size_t reporting = 0;
  std::vector<Slot*> slots;
  {
    std::lock_guard lock(slots_mu_);
    slots.reserve(slots_.size());
    for (const auto& slot : slots_) slots.push_back(slot.get());
  }
  for (Slot* slot : slots) {
    std::lock_guard lock(slot->mu);
    if (!slot->admitted) continue;
    if (!ensure_connected(*slot)) continue;
    const std::optional<serve::Stats> snapshot =
        slot->client->stats(options_.stats_timeout);
    if (!snapshot) continue;
    merged.merge(*snapshot);
    ++reporting;
  }
  if (workers_reporting != nullptr) *workers_reporting = reporting;
  return merged;
}

RouterCounters Router::counters() const {
  std::lock_guard lock(counters_mu_);
  return counters_;
}

std::size_t Router::live_workers() const {
  std::lock_guard lock(ring_mu_);
  return ring_.size();
}

serve::BreakerState Router::breaker_state(Index id) const {
  Router* self = const_cast<Router*>(this);
  Slot& slot = self->slot_of(id);
  std::lock_guard lock(slot.mu);
  return slot.breaker.state;
}

}  // namespace parma::cluster

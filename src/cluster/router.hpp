// parma::cluster::Router -- shard requests across worker processes with
// R-way replica failover.
//
// Placement: a request's shard key is shard_hash(batch_key(request)) -- the
// same shape x backend identity the batch planner groups by, so requests
// that would batch together on one server land on one worker and batching
// efficiency survives sharding. The HashRing maps the key to an ordered
// candidate list (primary, then R-1 distinct replicas); dispatch() tries
// candidates in order.
//
// Health is per WORKER, judged by the transport: a send/wait that ends in a
// typed ClientError (connection lost, no reply) feeds that worker's
// serve::Breaker -- the exact closed -> open -> half-open ladder the server
// runs per shape, reused verbatim at one level up the stack. An open
// breaker takes the worker out of candidate order (failover to the
// replica); after the cooldown one probe request tests the water. Server
// verdicts (kQueueFull, kSolverFailed, ...) are NOT failures -- the worker
// answered; its shard owns the outcome.
//
// Supervision glue: worker_up()/worker_down() are wired to the Supervisor's
// callbacks. A downed worker leaves the ring immediately (the consistent
// hash moves only its arc); a restarted one re-enters with a fresh
// generation and its connection is re-dialed lazily. Each worker's
// net::Client runs with reconnect + windowed replay, so a transient blip
// inside one generation replays in-flight requests bit-identically; a
// crash is surfaced as kConnectionLost and handled by failover instead.
//
// Exactly-once: dispatch() returns one definite RouteResult per call. A
// failover attempt re-sends the request to a different worker only after
// the previous worker's outcome was a transport verdict (no reply ever
// arrived or the connection died); parametrization is idempotent and
// deterministic, so even a request the dead worker half-executed yields a
// bit-identical field from the replica -- the chaos suite asserts exactly
// that against a fault-free baseline.
//
// Thread-safety: dispatch() may run from many threads; each worker slot
// serializes access to its single-threaded net::Client with a per-slot
// mutex, and ring membership sits under its own lock. Supervisor callbacks
// only flip slot metadata -- they never touch a socket, so the monitor
// thread cannot block on the data path.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/supervisor.hpp"
#include "net/client.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/stats.hpp"

namespace parma::cluster {

struct RouterOptions {
  /// Candidate workers per shard (primary + replicas). 2 survives any
  /// single worker death; capped by the live worker count.
  std::size_t replicas = 2;
  /// Virtual points per worker on the ring.
  int ring_vnodes = 64;

  /// Per-worker breaker. A transport failure is a strong signal (the
  /// worker's process or listener is gone), so the default trips on the
  /// first one and probes again after the cooldown.
  serve::BreakerOptions breaker{1, std::chrono::milliseconds(100)};

  /// Per-attempt reply budget: how long dispatch() waits on one worker
  /// before counting a transport failure and failing over.
  std::chrono::milliseconds attempt_timeout{15'000};

  /// Worker-client re-dial policy WITHIN a generation (a restarted worker
  /// gets a fresh connection anyway). Kept short so a dead worker fails
  /// over in tens of milliseconds instead of riding out a long ladder.
  int client_reconnect_attempts = 2;
  std::chrono::milliseconds client_backoff{5};
  std::chrono::milliseconds client_backoff_cap{50};
  std::uint64_t client_jitter_seed = 0x7a17;

  /// Stats aggregation probe budget per worker.
  std::chrono::milliseconds stats_timeout{1000};
};

/// Monotonic router counters (tests / the failover bench / serve-cluster).
struct RouterCounters {
  std::uint64_t dispatched = 0;       ///< dispatch() calls
  std::uint64_t failovers = 0;        ///< attempts re-routed to a replica
  std::uint64_t breaker_skips = 0;    ///< candidates skipped by an open breaker
  std::uint64_t breaker_opened = 0;   ///< per-worker breaker open events
  std::uint64_t exhausted = 0;        ///< dispatches that ran out of candidates
  std::uint64_t workers_lost = 0;     ///< worker_down events
  std::uint64_t workers_joined = 0;   ///< worker_up events (initial + rejoins)
};

class Router {
 public:
  /// One dispatch outcome: the terminal reply (a server frame or a typed
  /// transport verdict when every candidate failed) plus routing facts.
  struct RouteResult {
    net::Client::Reply reply;
    Index worker = -1;   ///< worker that produced the reply (-1: none did)
    int attempts = 0;    ///< workers tried
    [[nodiscard]] bool ok() const { return reply.ok(); }
  };

  explicit Router(RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // -- supervision glue (any thread; never blocks on a socket) --------------

  void worker_up(const WorkerEndpoint& endpoint);
  void worker_down(Index id);

  // -- data path -------------------------------------------------------------

  /// Routes one request: shard placement, per-worker breaker admission,
  /// transport failover across the replica set. Always returns a definite
  /// outcome; reply.transport != kNone means every admitted candidate
  /// failed at the transport layer.
  [[nodiscard]] RouteResult dispatch(const serve::ParametrizeRequest& request);

  /// The candidate workers dispatch() would try for `request` right now, in
  /// order (tests / diagnostics).
  [[nodiscard]] std::vector<Index> route_of(const serve::ParametrizeRequest& request) const;

  /// Cluster-wide stats: per-worker serve::Stats snapshots (kStatsRequest
  /// frames) folded with Stats::merge. Workers that do not answer within
  /// stats_timeout are skipped; `workers_reporting` says how many merged.
  [[nodiscard]] serve::Stats cluster_stats(std::size_t* workers_reporting = nullptr);

  [[nodiscard]] RouterCounters counters() const;
  [[nodiscard]] std::size_t live_workers() const;
  /// This worker's breaker state (tests / serve-cluster display).
  [[nodiscard]] serve::BreakerState breaker_state(Index id) const;

 private:
  struct Slot {
    std::mutex mu;  ///< serializes the single-threaded client + health state
    WorkerEndpoint endpoint;
    bool admitted = false;             ///< in the ring, may take traffic
    std::uint64_t connected_generation = 0;  ///< generation client_ dialed
    std::unique_ptr<net::Client> client;
    serve::Breaker breaker;
  };

  /// The slot for worker `id`, growing the table as needed.
  Slot& slot_of(Index id);
  /// Ensures the slot's client talks to the slot's current generation;
  /// false = connect failed (counts as a transport failure).
  bool ensure_connected(Slot& slot);

  RouterOptions options_;

  mutable std::mutex ring_mu_;
  HashRing ring_;

  mutable std::mutex slots_mu_;  ///< guards the table, not the slots
  std::vector<std::unique_ptr<Slot>> slots_;

  mutable std::mutex counters_mu_;
  RouterCounters counters_;
};

}  // namespace parma::cluster

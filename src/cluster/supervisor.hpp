// parma::cluster::Supervisor -- fork/exec worker processes, detect crashes,
// restart with capped jittered backoff, and re-admit only after a warm-up
// probe.
//
// Each worker slot owns two pipes: a NOTIFY pipe the worker writes its
// "PORT <n>\n" readiness line to (and then holds open -- the pipe's read
// end going POLLHUP is the crash signal, which arrives the instant the
// kernel reaps the process image, no SIGCHLD handler or polling of
// waitpid required), and a SHUTDOWN pipe the supervisor closes to request
// a graceful exit. The monitor thread polls every notify fd; on hangup it
// waitpid()s the corpse, reports the worker down, and schedules a restart
// at now + backoff, where backoff doubles per consecutive crash of that
// slot up to a cap with deterministic seeded jitter (the same discipline
// as net::Client's re-dial and serve's retry ladder -- no thundering herd,
// reproducible schedules).
//
// A restarted worker is NOT immediately back in business: the supervisor
// re-reads its fresh port (ephemeral ports change across restarts), then
// warm-up probes it with a protocol-v2 ping over a throwaway net::Client,
// and only a pong within warmup_timeout triggers the on_up callback that
// re-admits the worker to the router's ring. A worker that crashes more
// than max_restarts times in a row stays down (crash-looping binaries do
// not get to flap the ring forever).
//
// fork() is immediately followed by execv() -- no allocation, locking, or
// stdio between them -- so the supervisor is safe to embed in a threaded,
// sanitized test binary.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace parma::cluster {

/// A live worker's coordinates. `generation` increments per (re)spawn of
/// the slot, so a router can tell a fresh process from the one it was
/// talking to (the port alone could recycle).
struct WorkerEndpoint {
  Index id = 0;
  std::uint16_t port = 0;
  std::uint64_t generation = 0;
};

struct SupervisorOptions {
  /// Path to the parma_cluster_worker binary (execv target). Required.
  std::string worker_binary;
  /// Worker processes to run.
  int workers = 3;

  // Forwarded to each worker's command line.
  Index server_workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t max_batch = 8;
  Real crash_probability = 0.0;    ///< --crash-prob (chaos tests)
  std::uint64_t crash_max_fires = 1;
  std::uint64_t chaos_seed = 0;    ///< worker i gets chaos_seed + i

  /// First restart delay; doubles per consecutive crash up to the cap.
  std::chrono::milliseconds restart_backoff{20};
  std::chrono::milliseconds restart_backoff_cap{500};
  /// Deterministic backoff jitter seed (factor in [0.5, 1)).
  std::uint64_t jitter_seed = 0x7a17;
  /// Consecutive crashes of one slot before it stays down. "Consecutive"
  /// means without an intervening stable stretch: a crash only wipes the
  /// slot's crash count when the worker had been up for at least
  /// `stable_uptime`, so a worker that flaps -- passes warm-up, then dies
  /// moments later, over and over -- still exhausts its budget and stays
  /// down instead of churning the ring forever.
  int max_restarts = 8;
  std::chrono::milliseconds stable_uptime{1000};
  /// Warm-up budget: port line + ping must land within this long of a
  /// (re)spawn or the worker is treated as crashed.
  std::chrono::milliseconds warmup_timeout{5000};
};

class Supervisor {
 public:
  /// `on_up` fires after a worker passes warm-up (initial spawn and every
  /// restart); `on_down` fires the moment a crash (or unresponsive spawn)
  /// is detected. Both run on the monitor thread (start() fires the initial
  /// on_up batch from the calling thread) -- keep them quick and
  /// non-blocking; the router's ring update is the intended body.
  Supervisor(SupervisorOptions options,
             std::function<void(const WorkerEndpoint&)> on_up,
             std::function<void(Index)> on_down);
  ~Supervisor();  // stop()

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every worker, waits for each to pass warm-up (throws IoError if
  /// one cannot start), fires on_up per worker, then starts the monitor
  /// thread.
  void start();

  /// Graceful stop: closes every shutdown pipe, waits for exits (SIGKILL
  /// after a grace period), joins the monitor. Idempotent.
  void stop();

  /// SIGKILLs one worker (chaos tests / the failover bench). The monitor
  /// detects the death like any organic crash and restarts it.
  void kill_worker(Index id);

  /// Live endpoints (passed warm-up, not currently down).
  [[nodiscard]] std::vector<WorkerEndpoint> endpoints() const;
  /// Restarts performed so far (all slots).
  [[nodiscard]] std::uint64_t restarts() const;
  /// Slots that exhausted max_restarts and stay down.
  [[nodiscard]] int abandoned() const;

 private:
  struct Slot {
    pid_t pid = -1;
    int notify_fd = -1;    ///< read end; POLLHUP = worker died
    int shutdown_fd = -1;  ///< write end; closed = please exit
    std::uint16_t port = 0;
    std::uint64_t generation = 0;
    bool alive = false;        ///< passed warm-up, believed running
    std::chrono::steady_clock::time_point up_since{};  ///< last warm-up pass
    int consecutive_crashes = 0;
    std::optional<std::chrono::steady_clock::time_point> restart_due;
    bool abandoned = false;
    std::string pending_line;  ///< partial PORT line across reads
  };

  /// fork/execs slot `id` (fresh pipes, generation bump). Returns false
  /// when the spawn itself failed.
  bool spawn(Index id);
  /// Blocks until the slot's PORT line arrives and a warm-up ping answers;
  /// false = treat as crashed.
  bool warm_up(Index id);
  void reap(Index id);  ///< waitpid + close fds (slot is dead)
  void monitor_loop();
  [[nodiscard]] std::chrono::milliseconds backoff_for(const Slot& slot) const;

  SupervisorOptions options_;
  std::function<void(const WorkerEndpoint&)> on_up_;
  std::function<void(Index)> on_down_;

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::uint64_t restarts_ = 0;

  std::thread monitor_;
  int stop_pipe_[2] = {-1, -1};  ///< wakes the monitor poll for stop()
  bool running_ = false;
};

}  // namespace parma::cluster

#include "cluster/worker.hpp"

#include <poll.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/injector.hpp"
#include "net/listener.hpp"
#include "serve/server.hpp"

namespace parma::cluster {

namespace {

/// "--name=value" parser; returns true and fills `value` on a match.
bool flag_value(const char* arg, const char* name, long& value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  value = std::strtol(arg + n + 1, nullptr, 10);
  return true;
}

bool flag_real(const char* arg, const char* name, double& value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  value = std::strtod(arg + n + 1, nullptr);
  return true;
}

}  // namespace

int worker_main(int argc, char** argv) {
  long notify_fd = -1;
  long shutdown_fd = -1;
  long port = 0;
  long server_workers = 2;
  long queue_capacity = 64;
  long max_batch = 8;
  long crash_max_fires = 1;
  long chaos_seed = 0;
  double crash_prob = 0.0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (flag_value(arg, "--notify-fd", notify_fd)) continue;
    if (flag_value(arg, "--shutdown-fd", shutdown_fd)) continue;
    if (flag_value(arg, "--port", port)) continue;
    if (flag_value(arg, "--server-workers", server_workers)) continue;
    if (flag_value(arg, "--queue-capacity", queue_capacity)) continue;
    if (flag_value(arg, "--max-batch", max_batch)) continue;
    if (flag_value(arg, "--crash-max-fires", crash_max_fires)) continue;
    if (flag_value(arg, "--chaos-seed", chaos_seed)) continue;
    if (flag_real(arg, "--crash-prob", crash_prob)) continue;
    std::fprintf(stderr, "parma_cluster_worker: unknown flag %s\n", arg);
    return 2;
  }
  if (notify_fd < 0 || shutdown_fd < 0) {
    std::fprintf(stderr,
                 "parma_cluster_worker: --notify-fd and --shutdown-fd are required\n");
    return 2;
  }

  // The chaos injector outlives the server so a crash can fire on any tick.
  fault::ScopedInjector chaos(static_cast<std::uint64_t>(chaos_seed));
  if (crash_prob > 0.0) {
    chaos->arm(fault::Point::kWorkerCrash,
               {crash_prob, static_cast<std::uint64_t>(crash_max_fires), 0});
  }

  serve::ServerOptions server_options;
  server_options.workers = static_cast<Index>(server_workers);
  server_options.queue_capacity = static_cast<std::size_t>(queue_capacity);
  server_options.max_batch = static_cast<std::size_t>(max_batch);
  serve::Server server(server_options);

  net::ListenerOptions listen_options;
  listen_options.host = "127.0.0.1";
  listen_options.port = static_cast<std::uint16_t>(port);
  net::Listener listener(server, listen_options);
  listener.start();

  // The port line is the readiness handshake: the supervisor blocks on it
  // before admitting this worker to the ring.
  {
    char line[32];
    const int n = std::snprintf(line, sizeof line, "PORT %u\n",
                                static_cast<unsigned>(listener.port()));
    if (::write(static_cast<int>(notify_fd), line, static_cast<std::size_t>(n)) != n) {
      // Supervisor is already gone; nothing to serve for.
      listener.stop();
      server.shutdown();
      return 0;
    }
  }

  // Shutdown watch: one poll tick at a time so the crash point gets a
  // deterministic query cadence. EOF/byte on the shutdown pipe = graceful.
  pollfd watch{static_cast<int>(shutdown_fd), POLLIN, 0};
  for (;;) {
    const int r = ::poll(&watch, 1, 20);
    if (fault::should_fire(fault::Point::kWorkerCrash)) {
      // Abrupt death, no teardown -- upstream this is exactly kill -9.
      ::_exit(kCrashExitCode);
    }
    if (r > 0 && (watch.revents & (POLLIN | POLLHUP | POLLERR)) != 0) break;
  }

  (void)listener.drain(std::chrono::milliseconds(500));
  listener.stop();
  server.shutdown();
  return 0;
}

}  // namespace parma::cluster

#include "cluster/hash_ring.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace parma::cluster {

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t shard_hash(const serve::BatchKey& key) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(key.rows) + 1);
  h = mix64(h ^ (static_cast<std::uint64_t>(key.cols) + 1));
  h = mix64(h ^ (static_cast<std::uint64_t>(key.backend) + 1));
  h = mix64(h ^ (static_cast<std::uint64_t>(key.workers) + 1));
  return h;
}

namespace {

/// Virtual point v of worker w -- a pure function of (w, v), so every ring
/// with the same membership is byte-identical.
std::uint64_t vnode_point(Index worker, int vnode) {
  return mix64(mix64(static_cast<std::uint64_t>(worker) + 1) ^
               (static_cast<std::uint64_t>(vnode) + 1));
}

}  // namespace

HashRing::HashRing(int vnodes) : vnodes_(vnodes) {
  PARMA_REQUIRE(vnodes >= 1, "a worker needs at least one virtual point");
}

void HashRing::add(Index worker) {
  if (members_.count(worker) != 0) return;
  members_[worker] = true;
  for (int v = 0; v < vnodes_; ++v) {
    // Collisions across workers are astronomically unlikely with 64-bit
    // points; first-come keeps the ring deterministic if one ever happens.
    ring_.emplace(vnode_point(worker, v), worker);
  }
}

void HashRing::remove(Index worker) {
  if (members_.erase(worker) == 0) return;
  for (int v = 0; v < vnodes_; ++v) {
    auto it = ring_.find(vnode_point(worker, v));
    if (it != ring_.end() && it->second == worker) ring_.erase(it);
  }
}

bool HashRing::contains(Index worker) const { return members_.count(worker) != 0; }

std::vector<Index> HashRing::members() const {
  std::vector<Index> out;
  out.reserve(members_.size());
  for (const auto& [worker, alive] : members_) out.push_back(worker);
  return out;
}

std::optional<Index> HashRing::owner(std::uint64_t hash) const {
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(hash);
  if (it == ring_.end()) it = ring_.begin();  // wrap past 2^64 - 1
  return it->second;
}

std::vector<Index> HashRing::owners(std::uint64_t hash, std::size_t replicas) const {
  std::vector<Index> out;
  if (ring_.empty() || replicas == 0) return out;
  const std::size_t want = std::min(replicas, members_.size());
  auto it = ring_.lower_bound(hash);
  // One full lap at most: distinct-worker collection terminates once every
  // member has been seen.
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < want; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    const Index worker = it->second;
    bool seen = false;
    for (const Index w : out) {
      if (w == worker) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(worker);
    ++it;
  }
  return out;
}

std::vector<Index> ring_assignment(std::size_t tasks, Index ranks, int vnodes) {
  PARMA_REQUIRE(ranks >= 1, "need at least one rank");
  HashRing ring(vnodes);
  for (Index r = 0; r < ranks; ++r) ring.add(r);
  std::vector<Index> owner(tasks, 0);
  for (std::size_t i = 0; i < tasks; ++i) {
    owner[i] = *ring.owner(mix64(static_cast<std::uint64_t>(i) + 1));
  }
  return owner;
}

}  // namespace parma::cluster

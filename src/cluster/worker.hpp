// parma::cluster worker process -- one shard of the sharded serving tier.
//
// A worker is nothing new: a serve::Server behind a net::Listener, the PR
// 7/8 transport verbatim. What this header adds is the process harness the
// Supervisor fork/execs: worker_main() parses the supervisor's command
// line, binds an ephemeral port, reports it back over the notify pipe as a
// single "PORT <n>\n" line, and then sits in a shutdown-watch loop until
// the supervisor closes the shutdown pipe (graceful stop) or the process
// dies (crash -- which is the point: the supervisor detects it via the
// notify pipe's hangup and restarts).
//
// Chaos hook: with --crash-prob > 0 the worker installs a fault::Injector
// seeded by --chaos-seed and queries fault::Point::kWorkerCrash once per
// watch tick; a fired point _exit(42)s with no teardown, which is
// indistinguishable from kill -9 to everyone upstream. That makes the
// supervisor's crash/restart ladder testable in-process and deterministic.
#pragma once

namespace parma::cluster {

/// The worker process body. Flags (all optional unless noted):
///   --notify-fd=N    REQUIRED: write end of the supervisor's notify pipe;
///                    the worker writes "PORT <port>\n" once listening and
///                    keeps the fd open as its liveness signal.
///   --shutdown-fd=N  REQUIRED: read end of the shutdown pipe; EOF or a
///                    byte means "drain and exit 0".
///   --port=N         listen port (default 0 = ephemeral).
///   --server-workers=N  pipeline threads (default 2).
///   --queue-capacity=N  admission queue bound (default 64).
///   --max-batch=N    batch size cap (default 8).
///   --crash-prob=P   arm fault::Point::kWorkerCrash with probability P per
///                    watch tick (default 0 = disarmed).
///   --crash-max-fires=N  cap on injected crashes (default 1).
///   --chaos-seed=S   injector seed (default 0).
/// Returns the process exit code (0 graceful, 2 bad usage; an injected
/// crash _exit(42)s without returning).
int worker_main(int argc, char** argv);

/// Exit code of an injected kWorkerCrash (tests assert the supervisor saw
/// an abnormal exit, not a graceful 0).
inline constexpr int kCrashExitCode = 42;

}  // namespace parma::cluster

#include "cluster/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "cluster/hash_ring.hpp"  // mix64
#include "common/require.hpp"
#include "net/client.hpp"

namespace parma::cluster {

namespace {

using Clock = std::chrono::steady_clock;

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options,
                       std::function<void(const WorkerEndpoint&)> on_up,
                       std::function<void(Index)> on_down)
    : options_(std::move(options)), on_up_(std::move(on_up)), on_down_(std::move(on_down)) {
  PARMA_REQUIRE(!options_.worker_binary.empty(), "worker_binary path is required");
  PARMA_REQUIRE(options_.workers >= 1, "need at least one worker");
}

Supervisor::~Supervisor() { stop(); }

bool Supervisor::spawn(Index id) {
  Slot& slot = slots_[static_cast<std::size_t>(id)];
  int notify[2];   // worker writes, supervisor reads
  int shutdown[2]; // supervisor writes/closes, worker reads
  if (::pipe(notify) != 0) return false;
  if (::pipe(shutdown) != 0) {
    ::close(notify[0]);
    ::close(notify[1]);
    return false;
  }
  // Parent-kept ends never leak into workers spawned later.
  set_cloexec(notify[0]);
  set_cloexec(shutdown[1]);

  // Everything the child needs is materialized BEFORE fork: between fork
  // and execv only async-signal-safe calls run (close/execv/_exit).
  std::vector<std::string> args;
  args.push_back(options_.worker_binary);
  args.push_back("--notify-fd=" + std::to_string(notify[1]));
  args.push_back("--shutdown-fd=" + std::to_string(shutdown[0]));
  args.push_back("--server-workers=" + std::to_string(options_.server_workers));
  args.push_back("--queue-capacity=" + std::to_string(options_.queue_capacity));
  args.push_back("--max-batch=" + std::to_string(options_.max_batch));
  if (options_.crash_probability > 0.0) {
    char prob[32];
    std::snprintf(prob, sizeof prob, "--crash-prob=%.6f", options_.crash_probability);
    args.push_back(prob);
    args.push_back("--crash-max-fires=" + std::to_string(options_.crash_max_fires));
    args.push_back("--chaos-seed=" +
                   std::to_string(options_.chaos_seed + static_cast<std::uint64_t>(id)));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(notify[0]);
    ::close(notify[1]);
    ::close(shutdown[0]);
    ::close(shutdown[1]);
    return false;
  }
  if (pid == 0) {
    // Child: drop the supervisor's ends, then become the worker.
    ::close(notify[0]);
    ::close(shutdown[1]);
    ::execv(options_.worker_binary.c_str(), argv.data());
    ::_exit(127);  // exec failed; the parent sees a prompt POLLHUP
  }

  ::close(notify[1]);
  ::close(shutdown[0]);
  {
    std::lock_guard lock(mu_);
    slot.pid = pid;
    slot.notify_fd = notify[0];
    slot.shutdown_fd = shutdown[1];
    slot.port = 0;
    ++slot.generation;
    slot.alive = false;
    slot.pending_line.clear();
  }
  return true;
}

bool Supervisor::warm_up(Index id) {
  Slot& slot = slots_[static_cast<std::size_t>(id)];
  const Clock::time_point deadline = Clock::now() + options_.warmup_timeout;

  // Phase 1: the PORT line.
  std::string line;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{slot.notify_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    if ((pfd.revents & POLLIN) != 0) {
      char buf[64];
      const ssize_t n = ::read(slot.notify_fd, buf, sizeof buf);
      if (n <= 0) return false;
      line.append(buf, static_cast<std::size_t>(n));
      const std::size_t nl = line.find('\n');
      if (nl == std::string::npos) continue;
      unsigned port = 0;
      if (std::sscanf(line.c_str(), "PORT %u", &port) != 1 || port == 0) return false;
      {
        std::lock_guard lock(mu_);
        slot.port = static_cast<std::uint16_t>(port);
      }
      break;
    }
    if ((pfd.revents & (POLLHUP | POLLERR)) != 0) return false;  // died mid-boot
  }

  // Phase 2: a protocol-v2 ping must answer before the worker takes
  // traffic -- "the process exists" is not "the listener serves".
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;
    try {
      net::Client probe;
      net::ClientOptions copts;
      copts.host = "127.0.0.1";
      copts.port = slot.port;
      copts.connect_timeout = std::min<std::chrono::milliseconds>(left, std::chrono::milliseconds(500));
      probe.connect(copts);
      if (probe.ping(std::min<std::chrono::milliseconds>(left, std::chrono::milliseconds(500)))) {
        return true;
      }
    } catch (const IoError&) {
      // Listener not accepting yet; retry within the warm-up budget.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void Supervisor::reap(Index id) {
  Slot& slot = slots_[static_cast<std::size_t>(id)];
  pid_t pid;
  {
    std::lock_guard lock(mu_);
    pid = slot.pid;
    slot.pid = -1;
    slot.alive = false;
    close_fd(slot.notify_fd);
    close_fd(slot.shutdown_fd);
  }
  if (pid > 0) {
    int status = 0;
    (void)::waitpid(pid, &status, 0);
  }
}

std::chrono::milliseconds Supervisor::backoff_for(const Slot& slot) const {
  // Doubling per consecutive crash, capped, with deterministic jitter in
  // [0.5, 1) -- the same ladder as the client re-dial and serve retries.
  std::uint64_t factor = 1;
  for (int i = 1; i < slot.consecutive_crashes && factor < 1024; ++i) factor *= 2;
  auto delay = options_.restart_backoff * factor;
  if (delay > options_.restart_backoff_cap) delay = options_.restart_backoff_cap;
  const std::uint64_t draw =
      mix64(options_.jitter_seed ^ (static_cast<std::uint64_t>(slot.generation) << 8) ^
            static_cast<std::uint64_t>(slot.consecutive_crashes));
  const double jitter = 0.5 + 0.5 * static_cast<double>(draw >> 11) * 0x1.0p-53;
  return std::chrono::milliseconds(
      static_cast<std::int64_t>(static_cast<double>(delay.count()) * jitter));
}

void Supervisor::start() {
  {
    std::lock_guard lock(mu_);
    if (running_) return;
    running_ = true;
    slots_.assign(static_cast<std::size_t>(options_.workers), Slot{});
  }
  PARMA_REQUIRE(::pipe(stop_pipe_) == 0, "supervisor stop pipe");
  set_cloexec(stop_pipe_[0]);
  set_cloexec(stop_pipe_[1]);

  for (Index id = 0; id < static_cast<Index>(options_.workers); ++id) {
    if (!spawn(id) || !warm_up(id)) {
      throw IoError("cluster worker " + std::to_string(id) + " failed to start (" +
                    options_.worker_binary + ")");
    }
    WorkerEndpoint endpoint;
    {
      std::lock_guard lock(mu_);
      Slot& slot = slots_[static_cast<std::size_t>(id)];
      slot.alive = true;
      slot.up_since = Clock::now();
      slot.consecutive_crashes = 0;
      endpoint = {id, slot.port, slot.generation};
    }
    if (on_up_) on_up_(endpoint);
  }

  monitor_ = std::thread([this] { monitor_loop(); });
}

void Supervisor::monitor_loop() {
  for (;;) {
    // Assemble the poll set: the stop pipe plus every live notify fd.
    std::vector<pollfd> fds;
    std::vector<Index> owner;
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    std::optional<Clock::time_point> next_due;
    {
      std::lock_guard lock(mu_);
      if (!running_) return;
      for (Index id = 0; id < static_cast<Index>(slots_.size()); ++id) {
        const Slot& slot = slots_[static_cast<std::size_t>(id)];
        if (slot.notify_fd >= 0) {
          fds.push_back({slot.notify_fd, POLLIN, 0});
          owner.push_back(id);
        }
        if (slot.restart_due && (!next_due || *slot.restart_due < *next_due)) {
          next_due = slot.restart_due;
        }
      }
    }
    int timeout_ms = 200;
    if (next_due) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          *next_due - Clock::now());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(0, until.count()));
      timeout_ms = std::min(timeout_ms, 200);
    }
    const int r = ::poll(fds.data(), fds.size(), timeout_ms);
    if (r < 0 && errno != EINTR) return;

    if ((fds[0].revents & POLLIN) != 0) return;  // stop() poked us

    // Crash detection: the notify pipe hangs up the instant the worker's
    // process image dies -- kill -9, injected _exit, anything.
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const Index id = owner[i - 1];
      Slot& slot = slots_[static_cast<std::size_t>(id)];
      if ((fds[i].revents & POLLIN) != 0) {
        // Stray output after the port line; drain and ignore.
        char buf[64];
        while (::read(fds[i].fd, buf, sizeof buf) > 0) {
        }
      }
      if ((fds[i].revents & (POLLHUP | POLLERR)) != 0) {
        const bool was_alive = slot.alive;
        const bool was_stable =
            was_alive && Clock::now() - slot.up_since >= options_.stable_uptime;
        reap(id);
        if (was_alive && on_down_) on_down_(id);
        std::lock_guard lock(mu_);
        // A stable stretch forgives past crashes; a flapping worker (up,
        // then dead within stable_uptime) keeps accumulating toward
        // max_restarts.
        if (was_stable) slot.consecutive_crashes = 0;
        ++slot.consecutive_crashes;
        if (slot.consecutive_crashes > options_.max_restarts) {
          slot.abandoned = true;
          slot.restart_due.reset();
        } else {
          slot.restart_due = Clock::now() + backoff_for(slot);
        }
      }
    }

    // Restarts that have come due.
    for (Index id = 0; id < static_cast<Index>(slots_.size()); ++id) {
      Slot& slot = slots_[static_cast<std::size_t>(id)];
      bool due;
      {
        std::lock_guard lock(mu_);
        if (!running_) return;
        due = slot.restart_due && *slot.restart_due <= Clock::now();
        if (due) slot.restart_due.reset();
      }
      if (!due) continue;
      if (spawn(id) && warm_up(id)) {
        WorkerEndpoint endpoint;
        {
          std::lock_guard lock(mu_);
          slot.alive = true;
          // The crash count survives a successful warm-up on purpose: only
          // staying up for stable_uptime (judged at the next crash) clears
          // it. Warm-up proves the process can start, not that it can serve.
          slot.up_since = Clock::now();
          ++restarts_;
          endpoint = {id, slot.port, slot.generation};
        }
        if (on_up_) on_up_(endpoint);
      } else {
        // Spawn or warm-up failed: treat as another crash of this slot.
        reap(id);
        std::lock_guard lock(mu_);
        ++slot.consecutive_crashes;
        if (slot.consecutive_crashes > options_.max_restarts) {
          slot.abandoned = true;
        } else {
          slot.restart_due = Clock::now() + backoff_for(slot);
        }
      }
    }
  }
}

void Supervisor::stop() {
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  if (stop_pipe_[1] >= 0) {
    const std::uint8_t byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
  if (monitor_.joinable()) monitor_.join();

  // Graceful phase: closing the shutdown pipe asks each worker to drain.
  std::vector<pid_t> pids;
  {
    std::lock_guard lock(mu_);
    for (Slot& slot : slots_) {
      close_fd(slot.shutdown_fd);
      if (slot.pid > 0) pids.push_back(slot.pid);
    }
  }
  const Clock::time_point grace = Clock::now() + std::chrono::milliseconds(2000);
  for (const pid_t pid : pids) {
    for (;;) {
      int status = 0;
      const pid_t w = ::waitpid(pid, &status, WNOHANG);
      if (w == pid || (w < 0 && errno == ECHILD)) break;
      if (Clock::now() >= grace) {
        ::kill(pid, SIGKILL);
        (void)::waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::lock_guard lock(mu_);
  for (Slot& slot : slots_) {
    close_fd(slot.notify_fd);
    slot.pid = -1;
    slot.alive = false;
  }
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
}

void Supervisor::kill_worker(Index id) {
  pid_t pid = -1;
  {
    std::lock_guard lock(mu_);
    PARMA_REQUIRE(id >= 0 && id < static_cast<Index>(slots_.size()),
                  "kill_worker: no such worker");
    pid = slots_[static_cast<std::size_t>(id)].pid;
  }
  if (pid > 0) ::kill(pid, SIGKILL);
  // The monitor sees the notify POLLHUP and runs the standard crash path.
}

std::vector<WorkerEndpoint> Supervisor::endpoints() const {
  std::lock_guard lock(mu_);
  std::vector<WorkerEndpoint> out;
  for (Index id = 0; id < static_cast<Index>(slots_.size()); ++id) {
    const Slot& slot = slots_[static_cast<std::size_t>(id)];
    if (slot.alive) out.push_back({id, slot.port, slot.generation});
  }
  return out;
}

std::uint64_t Supervisor::restarts() const {
  std::lock_guard lock(mu_);
  return restarts_;
}

int Supervisor::abandoned() const {
  std::lock_guard lock(mu_);
  int n = 0;
  for (const Slot& slot : slots_) {
    if (slot.abandoned) ++n;
  }
  return n;
}

}  // namespace parma::cluster

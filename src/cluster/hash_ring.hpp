// parma::cluster::HashRing -- consistent-hash placement for the sharded
// serving tier.
//
// The ring maps shard keys (hashes of serve::BatchKey -- one shard per
// device shape x backend, the same unit the batch planner groups by) onto
// worker ids. Each worker contributes `vnodes` virtual points, placed by a
// SplitMix64-style hash of (worker, vnode), so placement is a pure function
// of the membership set: two routers with the same members agree on every
// assignment, and a test can replay a routing decision offline.
//
// Consistent hashing is the failover-friendly property the cluster tier is
// built on: when one of K workers leaves, only the keys whose ring arc
// belonged to it move (~1/K of the keyspace; the placement test asserts
// <= 2/K), so a worker crash invalidates one shard's routing, not the whole
// cluster's. owners() walks the ring clockwise collecting *distinct*
// workers, which gives R-way replica placement with the replicas guaranteed
// disjoint from the primary.
//
// The same placement runs through the mpisim seam: ring_assignment() maps a
// task list onto simulated ranks with the identical ring walk, so
// bench/fig10_mpi_scalability exercises the code path the real router
// shards with.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "serve/batch_planner.hpp"

namespace parma::cluster {

/// SplitMix64 finalizer (the repo's standard mixing function; see
/// fault/injector.cpp and async backoff jitter).
[[nodiscard]] std::uint64_t mix64(std::uint64_t z);

/// The shard key of a request: a well-mixed hash of its batch identity
/// (rows x cols x backend x workers) -- requests that would batch together
/// on one server route to the same worker.
[[nodiscard]] std::uint64_t shard_hash(const serve::BatchKey& key);

class HashRing {
 public:
  /// `vnodes` virtual points per worker; more points smooth the load split
  /// at the cost of a larger map. 64 keeps the max/min arc ratio tight for
  /// single-digit worker counts.
  explicit HashRing(int vnodes = 64);

  /// Inserts a worker's virtual points. Re-adding is a no-op.
  void add(Index worker);
  /// Removes a worker's virtual points. Removing an absent worker is a
  /// no-op.
  void remove(Index worker);
  [[nodiscard]] bool contains(Index worker) const;

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] std::vector<Index> members() const;

  /// The worker owning `hash`: the first virtual point clockwise from it.
  /// nullopt on an empty ring.
  [[nodiscard]] std::optional<Index> owner(std::uint64_t hash) const;

  /// Up to `replicas` DISTINCT workers walking clockwise from `hash`; the
  /// first entry is the primary, the rest are its failover replicas (all
  /// disjoint by construction). Fewer than `replicas` members yields all of
  /// them.
  [[nodiscard]] std::vector<Index> owners(std::uint64_t hash,
                                          std::size_t replicas) const;

 private:
  int vnodes_;
  std::map<std::uint64_t, Index> ring_;  ///< virtual point -> worker
  std::map<Index, bool> members_;
};

/// The mpisim placement seam: assigns `tasks` task indices onto `ranks`
/// ranks by the same ring walk the router uses (rank r joins the ring as
/// worker r; task i routes by mix64(i + 1)). Feed the result to
/// mpisim::simulate_cluster's explicit-placement overload.
[[nodiscard]] std::vector<Index> ring_assignment(std::size_t tasks, Index ranks,
                                                 int vnodes = 64);

}  // namespace parma::cluster

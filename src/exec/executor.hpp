// parma::exec -- the unified real-thread execution backend.
//
// Everything that runs work for real (as opposed to the virtual-time replay
// in parallel/virtual_scheduler.hpp) goes through one interface:
//
//   Executor::submit_bulk(begin, end, chunk, fn)
//
// runs fn(lo, hi) over chunked subranges covering [begin, end) and blocks
// until every chunk has finished. Three concrete backends implement it:
//
//   SerialExecutor    -- the calling thread, chunks in order (the baseline);
//   PooledExecutor    -- a fixed ThreadPool with dynamic chunk claiming
//                        (the PyMP-style self-scheduling runtime);
//   StealingExecutor  -- a WorkStealingPool (the Balanced Parallel runtime).
//
// All backends are interchangeable: for a pure bulk loop they produce the
// same side effects, and the engine's cross-backend equivalence tests assert
// bit-identical equation systems. Per-chunk wall times can be captured
// (capture_costs) to feed the virtual schedulers and the cluster replay with
// costs measured under real concurrency.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing_pool.hpp"

namespace parma::exec {

/// The available real-thread backends. kAuto defers the choice to the caller
/// (the engine maps each core::Strategy to a backend; see strategy.hpp).
enum class Backend { kAuto, kSerial, kPooled, kStealing };

const char* backend_name(Backend backend);

/// Wall-clock cost of one executed chunk [begin, end).
struct TaskCost {
  Index begin = 0;
  Index end = 0;
  Real seconds = 0.0;
};

/// Outcome of one submit_bulk call.
struct BulkResult {
  Real elapsed_seconds = 0.0;        ///< wall-clock of the whole bulk run
  std::vector<TaskCost> task_costs;  ///< per chunk, sorted by begin (when captured)

  /// Aggregate CPU-side work: the sum of per-chunk wall times across all
  /// workers (>= elapsed_seconds on a multi-core run of a parallel backend).
  [[nodiscard]] Real cpu_seconds() const;
};

/// Abstract real-thread executor. Implementations own their workers; one
/// executor can serve many submit_bulk calls (workers persist between calls).
class Executor {
 public:
  virtual ~Executor() = default;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] virtual Backend backend() const = 0;

  /// Number of worker threads this executor runs chunks on (1 for serial).
  [[nodiscard]] virtual Index workers() const = 0;

  [[nodiscard]] const char* name() const { return backend_name(backend()); }

  /// Runs fn(lo, hi) over subranges of size <= chunk covering [begin, end)
  /// exactly once each, blocking until all have completed. Exceptions thrown
  /// by fn propagate to the caller (first one wins). With capture_costs the
  /// result carries one TaskCost per chunk.
  BulkResult submit_bulk(Index begin, Index end, Index chunk,
                         const std::function<void(Index, Index)>& fn,
                         bool capture_costs = false);

  /// Observer invoked at the end of every successful submit_bulk (not on the
  /// exception path), on the submitting thread, with the completed result.
  /// One hook per executor; setting a new one replaces the previous (an empty
  /// function clears it). Not synchronized with concurrent submit_bulk calls
  /// -- set it while the executor is idle (e.g. at pool check-in/creation).
  void set_completion_hook(std::function<void(const BulkResult&)> hook) {
    completion_hook_ = std::move(hook);
  }

 protected:
  Executor() = default;

  /// Backend-specific chunk dispatch; must cover [begin, end) exactly once
  /// and block until done.
  virtual void run_chunks(Index begin, Index end, Index chunk,
                          const std::function<void(Index, Index)>& fn) = 0;

 private:
  std::function<void(const BulkResult&)> completion_hook_;
};

/// Runs every chunk on the calling thread, in range order.
class SerialExecutor final : public Executor {
 public:
  SerialExecutor() = default;
  [[nodiscard]] Backend backend() const override { return Backend::kSerial; }
  [[nodiscard]] Index workers() const override { return 1; }

 protected:
  void run_chunks(Index begin, Index end, Index chunk,
                  const std::function<void(Index, Index)>& fn) override;
};

/// Shared-queue thread pool with dynamic chunk self-scheduling (the real
/// runtime behind the paper's fine-grained PyMP-style strategy).
class PooledExecutor final : public Executor {
 public:
  explicit PooledExecutor(Index workers);
  [[nodiscard]] Backend backend() const override { return Backend::kPooled; }
  [[nodiscard]] Index workers() const override { return pool_.num_threads(); }

 protected:
  void run_chunks(Index begin, Index end, Index chunk,
                  const std::function<void(Index, Index)>& fn) override;

 private:
  parallel::ThreadPool pool_;
};

/// Chase-Lev work-stealing pool (the real runtime behind Balanced Parallel).
class StealingExecutor final : public Executor {
 public:
  explicit StealingExecutor(Index workers);
  [[nodiscard]] Backend backend() const override { return Backend::kStealing; }
  [[nodiscard]] Index workers() const override { return pool_.num_threads(); }

  /// Successful deque steals since construction (diagnostics).
  [[nodiscard]] std::uint64_t steal_count() const { return pool_.steal_count(); }

 protected:
  void run_chunks(Index begin, Index end, Index chunk,
                  const std::function<void(Index, Index)>& fn) override;

 private:
  parallel::WorkStealingPool pool_;
};

/// Factory. `backend` must be concrete (not kAuto); workers >= 1 (ignored by
/// kSerial).
std::unique_ptr<Executor> make_executor(Backend backend, Index workers);

/// Keeps executors warm across calls: get() constructs one executor per
/// (backend, workers) pair and returns the same instance thereafter, so a
/// serving worker reuses spawned threads across batches instead of paying
/// pool construction per request. NOT thread-safe -- intended to be owned by
/// one thread (each serve pipeline worker carries its own cache).
class ExecutorCache {
 public:
  /// The warmed executor for this configuration (constructed on first use).
  [[nodiscard]] Executor& get(Backend backend, Index workers);

  /// Distinct executor configurations constructed so far.
  [[nodiscard]] std::size_t size() const { return cache_.size(); }

 private:
  std::map<std::pair<Backend, Index>, std::unique_ptr<Executor>> cache_;
};

/// Thread-safe pool of warm executors for the async serving pipeline.
///
/// Pipeline stages of one batch hop between scheduler threads, so exclusive
/// executor use cannot come from thread ownership (ExecutorCache's model).
/// Instead a batch checks an executor out for its whole chain (acquire ->
/// Lease) and the lease returns it at chain end; two batches of the same
/// (backend, workers) configuration running concurrently get two distinct
/// executors. Executors are constructed on demand and kept warm for the
/// pool's lifetime.
class ExecutorPool {
 public:
  /// RAII check-out: the holder has exclusive use of get() until release()
  /// (or destruction). Movable, not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease();  // release()

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    /// The leased executor; nullptr for an empty/released lease.
    [[nodiscard]] Executor* get() const { return executor_; }

    /// Returns the executor to its pool; idempotent.
    void release();

   private:
    friend class ExecutorPool;
    Lease(ExecutorPool* pool, std::pair<Backend, Index> key, Executor* executor)
        : pool_(pool), key_(key), executor_(executor) {}

    ExecutorPool* pool_ = nullptr;
    std::pair<Backend, Index> key_{Backend::kAuto, 0};
    Executor* executor_ = nullptr;
  };

  ExecutorPool() = default;

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  /// Checks out an idle executor for this configuration, constructing a new
  /// one when none is free. `backend` must be concrete (not kAuto).
  [[nodiscard]] Lease acquire(Backend backend, Index workers);

  /// Executors constructed so far (across all configurations).
  [[nodiscard]] std::size_t created() const;
  /// Executors currently checked in (idle).
  [[nodiscard]] std::size_t idle() const;
  /// submit_bulk completions observed across all pooled executors (via the
  /// completion hook; diagnostics for the serving pipeline).
  [[nodiscard]] std::uint64_t bulk_completions() const {
    return bulk_completions_.load(std::memory_order_relaxed);
  }

 private:
  void give_back(const std::pair<Backend, Index>& key, Executor* executor);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Executor>> owned_;
  std::map<std::pair<Backend, Index>, std::vector<Executor*>> idle_;
  std::atomic<std::uint64_t> bulk_completions_{0};
};

}  // namespace parma::exec

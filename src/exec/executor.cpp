#include "exec/executor.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "common/require.hpp"
#include "common/stopwatch.hpp"
#include "fault/injector.hpp"
#include "parallel/parallel_for.hpp"

namespace parma::exec {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kSerial: return "serial";
    case Backend::kPooled: return "pooled";
    case Backend::kStealing: return "stealing";
  }
  return "?";
}

Real BulkResult::cpu_seconds() const {
  Real total = 0.0;
  for (const TaskCost& cost : task_costs) total += cost.seconds;
  return total;
}

BulkResult Executor::submit_bulk(Index begin, Index end, Index chunk,
                                 const std::function<void(Index, Index)>& fn,
                                 bool capture_costs) {
  PARMA_REQUIRE(begin <= end, "submit_bulk: begin must not exceed end");
  PARMA_REQUIRE(chunk >= 1, "submit_bulk: chunk must be >= 1");
  BulkResult result;
  Stopwatch clock;
  if (begin == end) {
    result.elapsed_seconds = clock.elapsed_seconds();
    if (completion_hook_) completion_hook_(result);
    return result;
  }

  // Chaos hooks: with an injector installed, each chunk may stall (slow-task
  // simulation) or throw InjectedFault (spurious worker failure, surfaced to
  // the caller through the normal exception path). The wrapper exists only
  // while an injector is live -- the disabled path runs `fn` untouched, so
  // production pays one atomic load per submit_bulk, not per chunk.
  std::function<void(Index, Index)> chaos_fn;
  const std::function<void(Index, Index)>* run = &fn;
  if (fault::installed() != nullptr) {
    chaos_fn = [&fn](Index lo, Index hi) {
      if (fault::should_fire(fault::Point::kSlowTask)) {
        if (fault::Injector* injector = fault::installed()) {
          std::this_thread::sleep_for(injector->stall);
        }
      }
      if (fault::should_fire(fault::Point::kTaskFailure)) {
        throw fault::InjectedFault("injected task failure");
      }
      fn(lo, hi);
    };
    run = &chaos_fn;
  }
  const std::function<void(Index, Index)>& fn_maybe_chaotic = *run;

  if (!capture_costs) {
    run_chunks(begin, end, chunk, fn_maybe_chaotic);
  } else {
    std::mutex mu;
    std::vector<TaskCost> costs;
    costs.reserve(static_cast<std::size_t>((end - begin + chunk - 1) / chunk));
    run_chunks(begin, end, chunk, [&](Index lo, Index hi) {
      Stopwatch chunk_clock;
      fn_maybe_chaotic(lo, hi);
      const Real seconds = chunk_clock.elapsed_seconds();
      std::lock_guard lock(mu);
      costs.push_back({lo, hi, seconds});
    });
    std::sort(costs.begin(), costs.end(),
              [](const TaskCost& a, const TaskCost& b) { return a.begin < b.begin; });
    result.task_costs = std::move(costs);
  }
  result.elapsed_seconds = clock.elapsed_seconds();
  if (completion_hook_) completion_hook_(result);
  return result;
}

void SerialExecutor::run_chunks(Index begin, Index end, Index chunk,
                                const std::function<void(Index, Index)>& fn) {
  for (Index lo = begin; lo < end; lo += chunk) {
    fn(lo, std::min(end, lo + chunk));
  }
}

PooledExecutor::PooledExecutor(Index workers) : pool_(workers) {}

void PooledExecutor::run_chunks(Index begin, Index end, Index chunk,
                                const std::function<void(Index, Index)>& fn) {
  parallel::ForOptions options;
  options.schedule = parallel::Schedule::kDynamic;
  options.chunk = chunk;
  parallel::parallel_for_chunked(pool_, begin, end, fn, options);
}

StealingExecutor::StealingExecutor(Index workers) : pool_(workers) {}

void StealingExecutor::run_chunks(Index begin, Index end, Index chunk,
                                  const std::function<void(Index, Index)>& fn) {
  // WorkStealingPool tasks must not throw; capture the first exception and
  // rethrow it once the bulk completes (mirrors parallel_for semantics).
  std::mutex error_mu;
  std::exception_ptr error;
  for (Index lo = begin; lo < end; lo += chunk) {
    const Index hi = std::min(end, lo + chunk);
    pool_.submit([&fn, &error_mu, &error, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  pool_.wait_idle();
  if (error) std::rethrow_exception(error);
}

std::unique_ptr<Executor> make_executor(Backend backend, Index workers) {
  PARMA_REQUIRE(backend != Backend::kAuto, "make_executor needs a concrete backend");
  PARMA_REQUIRE(workers >= 1, "executor needs at least one worker");
  switch (backend) {
    case Backend::kSerial: return std::make_unique<SerialExecutor>();
    case Backend::kPooled: return std::make_unique<PooledExecutor>(workers);
    case Backend::kStealing: return std::make_unique<StealingExecutor>(workers);
    case Backend::kAuto: break;
  }
  PARMA_REQUIRE(false, "unreachable backend");
  return nullptr;
}

Executor& ExecutorCache::get(Backend backend, Index workers) {
  // Serial executors ignore the worker count; collapse them onto one key so
  // the cache never holds redundant instances.
  const std::pair<Backend, Index> key{backend,
                                      backend == Backend::kSerial ? Index{1} : workers};
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, make_executor(key.first, key.second)).first;
  }
  return *it->second;
}

ExecutorPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), key_(other.key_), executor_(other.executor_) {
  other.pool_ = nullptr;
  other.executor_ = nullptr;
}

ExecutorPool::Lease& ExecutorPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    key_ = other.key_;
    executor_ = other.executor_;
    other.pool_ = nullptr;
    other.executor_ = nullptr;
  }
  return *this;
}

ExecutorPool::Lease::~Lease() { release(); }

void ExecutorPool::Lease::release() {
  if (pool_ != nullptr && executor_ != nullptr) {
    pool_->give_back(key_, executor_);
  }
  pool_ = nullptr;
  executor_ = nullptr;
}

ExecutorPool::Lease ExecutorPool::acquire(Backend backend, Index workers) {
  // Same key collapse as ExecutorCache: serial ignores the worker count.
  const std::pair<Backend, Index> key{backend,
                                      backend == Backend::kSerial ? Index{1} : workers};
  {
    std::lock_guard lock(mu_);
    std::vector<Executor*>& free_list = idle_[key];
    if (!free_list.empty()) {
      Executor* executor = free_list.back();
      free_list.pop_back();
      return Lease(this, key, executor);
    }
  }
  // Construct outside the lock (pool construction spawns threads); the new
  // executor is handed straight to the caller, registered for ownership.
  std::unique_ptr<Executor> fresh = make_executor(key.first, key.second);
  fresh->set_completion_hook([this](const BulkResult&) {
    bulk_completions_.fetch_add(1, std::memory_order_relaxed);
  });
  Executor* executor = fresh.get();
  {
    std::lock_guard lock(mu_);
    owned_.push_back(std::move(fresh));
  }
  return Lease(this, key, executor);
}

std::size_t ExecutorPool::created() const {
  std::lock_guard lock(mu_);
  return owned_.size();
}

std::size_t ExecutorPool::idle() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, free_list] : idle_) total += free_list.size();
  return total;
}

void ExecutorPool::give_back(const std::pair<Backend, Index>& key, Executor* executor) {
  std::lock_guard lock(mu_);
  idle_[key].push_back(executor);
}

}  // namespace parma::exec

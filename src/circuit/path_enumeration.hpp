// Exponential all-paths baseline (paper Section II-C; Niu et al. BigData'18).
//
// Enumerates every simple path between a horizontal and a vertical wire node
// of the crossbar's bipartite abstraction. The count between one endpoint
// pair of an n x n array is sum_{k=0}^{n-1} [ (n-1)!/(n-1-k)! ]^2 ... for the
// alternating structure it reduces to the closed form verified in tests
// (9 paths for n = 3, matching the paper's Fig. 4 listing). The space and
// time are exponential -- the paper reports the approach is infeasible for
// n > 6 -- so callers must respect the `max_paths` guard.
//
// Also implements the baseline's parallel-path aggregation
//   Z_ij^{-1} = sum_k P_k(R)^{-1}
// which treats paths as independent parallel branches. That formula is an
// approximation (shared resistors correlate paths); tests quantify its error
// against the exact effective resistance, explaining why the joint-constraint
// formulation is not merely faster but also exact.
#pragma once

#include <vector>

#include "circuit/crossbar.hpp"
#include "common/types.hpp"

namespace parma::circuit {

/// One end-to-end path, as the ordered list of (row, col) resistor crossings
/// it traverses.
struct CrossingPath {
  std::vector<std::pair<Index, Index>> crossings;
};

struct PathEnumerationOptions {
  /// Hard cap; enumeration throws ContractError past it (exponential guard).
  std::uint64_t max_paths = 10'000'000;
};

/// All simple alternating paths between horizontal wire i and vertical wire j
/// of an m x n crossbar.
std::vector<CrossingPath> enumerate_paths(Index rows, Index cols, Index i, Index j,
                                          const PathEnumerationOptions& options = {});

/// Closed-form count of such paths (no enumeration):
/// sum over path lengths of falling-factorial products.
std::uint64_t count_paths(Index rows, Index cols);

/// The baseline estimate Z_ij ~= (sum_k 1/P_k)^-1 where P_k sums the
/// resistances along path k.
Real aggregate_parallel_paths(const ResistanceGrid& grid, Index i, Index j,
                              const PathEnumerationOptions& options = {});

/// Sum of resistances along one path.
Real path_resistance(const ResistanceGrid& grid, const CrossingPath& path);

}  // namespace parma::circuit

// Kirchhoff-law residual checks (paper Section II-A).
//
// Given a network plus a solved operating point, these helpers verify
//   L1 (KCL): net current at every node other than the source terminals is 0;
//   L2 (KVL): the voltage drop around every independent loop is 0,
// with the independent loops supplied by the topology module's fundamental
// cycle basis -- making the homology/Kirchhoff correspondence executable.
#pragma once

#include <vector>

#include "circuit/mna.hpp"
#include "circuit/network.hpp"
#include "common/types.hpp"

namespace parma::circuit {

/// Max |net current| over all non-terminal nodes (should be ~0 for a valid
/// operating point).
Real max_kcl_residual(const ResistorNetwork& network, const MnaSolution& solution,
                      Index positive_node, Index negative_node);

/// Max |sum of signed voltage drops| over the fundamental cycles of the
/// network (should be ~0 for ANY potential assignment -- KVL is a topological
/// identity, which is exactly the paper's point).
Real max_kvl_residual(const ResistorNetwork& network, const MnaSolution& solution);

/// Number of independent KVL equations = cyclomatic number = beta_1.
Index num_independent_kvl_equations(const ResistorNetwork& network);

/// Number of independent KCL equations = |V| - #components.
Index num_independent_kcl_equations(const ResistorNetwork& network);

}  // namespace parma::circuit

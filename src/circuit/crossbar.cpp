#include "circuit/crossbar.hpp"

#include "common/require.hpp"
#include "linalg/laplacian.hpp"

namespace parma::circuit {

ResistanceGrid::ResistanceGrid(Index rows, Index cols, Real initial)
    : rows_(rows),
      cols_(cols),
      values_(static_cast<std::size_t>(rows * cols), initial) {
  PARMA_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
}

Real& ResistanceGrid::at(Index i, Index j) {
  PARMA_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_, "grid index out of range");
  return values_[static_cast<std::size_t>(i * cols_ + j)];
}

Real ResistanceGrid::at(Index i, Index j) const {
  PARMA_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_, "grid index out of range");
  return values_[static_cast<std::size_t>(i * cols_ + j)];
}

Index horizontal_node(Index i) { return i; }
Index vertical_node(Index rows, Index j) { return rows + j; }

ResistorNetwork build_crossbar_network(const ResistanceGrid& grid) {
  std::vector<Resistor> resistors;
  resistors.reserve(static_cast<std::size_t>(grid.rows() * grid.cols()));
  for (Index i = 0; i < grid.rows(); ++i) {
    for (Index j = 0; j < grid.cols(); ++j) {
      resistors.push_back(
          {horizontal_node(i), vertical_node(grid.rows(), j), grid.at(i, j)});
    }
  }
  return ResistorNetwork(grid.rows() + grid.cols(), std::move(resistors));
}

linalg::DenseMatrix measure_all_pairs(const ResistanceGrid& grid) {
  const ResistorNetwork network = build_crossbar_network(grid);
  const linalg::EffectiveResistance oracle(network.num_nodes(), network.weighted_edges());
  linalg::DenseMatrix z(grid.rows(), grid.cols());
  for (Index i = 0; i < grid.rows(); ++i) {
    for (Index j = 0; j < grid.cols(); ++j) {
      z(i, j) = oracle.between(horizontal_node(i), vertical_node(grid.rows(), j));
    }
  }
  return z;
}

Real measure_pair(const ResistanceGrid& grid, Index i, Index j) {
  const ResistorNetwork network = build_crossbar_network(grid);
  const linalg::EffectiveResistance oracle(network.num_nodes(), network.weighted_edges());
  return oracle.between(horizontal_node(i), vertical_node(grid.rows(), j));
}

}  // namespace parma::circuit

#include "circuit/network.hpp"

#include <queue>

#include "common/require.hpp"

namespace parma::circuit {

ResistorNetwork::ResistorNetwork(Index num_nodes, std::vector<Resistor> resistors)
    : num_nodes_(num_nodes), resistors_(std::move(resistors)) {
  PARMA_REQUIRE(num_nodes >= 1, "network needs at least one node");
  for (const auto& r : resistors_) {
    PARMA_REQUIRE(r.node_a >= 0 && r.node_a < num_nodes && r.node_b >= 0 && r.node_b < num_nodes,
                  "resistor endpoint out of range");
    PARMA_REQUIRE(r.node_a != r.node_b, "resistor endpoints must differ");
    PARMA_REQUIRE(r.resistance > 0.0, "resistance must be positive");
  }
}

std::vector<linalg::WeightedEdge> ResistorNetwork::weighted_edges() const {
  std::vector<linalg::WeightedEdge> out;
  out.reserve(resistors_.size());
  for (const auto& r : resistors_) {
    out.push_back({r.node_a, r.node_b, 1.0 / r.resistance});
  }
  return out;
}

std::vector<topology::GraphEdge> ResistorNetwork::graph_edges() const {
  std::vector<topology::GraphEdge> out;
  out.reserve(resistors_.size());
  for (const auto& r : resistors_) out.push_back({r.node_a, r.node_b});
  return out;
}

Index ResistorNetwork::num_independent_loops() const {
  return topology::cyclomatic_number(num_nodes_, graph_edges());
}

bool ResistorNetwork::is_connected() const {
  if (num_nodes_ == 0) return true;
  std::vector<std::vector<Index>> adj(static_cast<std::size_t>(num_nodes_));
  for (const auto& r : resistors_) {
    adj[static_cast<std::size_t>(r.node_a)].push_back(r.node_b);
    adj[static_cast<std::size_t>(r.node_b)].push_back(r.node_a);
  }
  std::vector<bool> seen(static_cast<std::size_t>(num_nodes_), false);
  std::queue<Index> frontier;
  frontier.push(0);
  seen[0] = true;
  Index visited = 1;
  while (!frontier.empty()) {
    const Index u = frontier.front();
    frontier.pop();
    for (Index v : adj[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == num_nodes_;
}

}  // namespace parma::circuit

// Modified nodal analysis (MNA) for resistor networks with one ideal
// voltage source.
//
// Independent of the Laplacian effective-resistance path: MNA augments the
// conductance matrix with the source's current unknown and solves
//   [ G  b ] [ phi ]   [ 0 ]
//   [ b' 0 ] [ i_s ] = [ V ]
// The tests use it to cross-check both the forward crossbar model and the
// joint-constraint nodal equations.
#pragma once

#include <vector>

#include "circuit/network.hpp"
#include "common/types.hpp"

namespace parma::circuit {

struct MnaSolution {
  std::vector<Real> node_potentials;  ///< volts, ground node fixed at 0
  Real source_current = 0.0;          ///< through the voltage source (mA if kOhm/V)
  Real equivalent_resistance = 0.0;   ///< V / source_current

  /// Branch current through each resistor (same order as the network's
  /// resistor list, positive from node_a to node_b).
  std::vector<Real> branch_currents;
};

/// Drives `volts` across (positive_node, negative_node); the negative node is
/// the ground reference. Requires a connected network and distinct terminals.
MnaSolution solve_mna(const ResistorNetwork& network, Index positive_node,
                      Index negative_node, Real volts);

}  // namespace parma::circuit

#include "circuit/kirchhoff.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "topology/cycle_basis.hpp"

namespace parma::circuit {

Real max_kcl_residual(const ResistorNetwork& network, const MnaSolution& solution,
                      Index positive_node, Index negative_node) {
  PARMA_REQUIRE(solution.branch_currents.size() == network.resistors().size(),
                "solution does not match network");
  std::vector<Real> net(static_cast<std::size_t>(network.num_nodes()), 0.0);
  for (std::size_t k = 0; k < network.resistors().size(); ++k) {
    const auto& r = network.resistors()[k];
    const Real i = solution.branch_currents[k];
    net[static_cast<std::size_t>(r.node_a)] -= i;  // current leaves node_a
    net[static_cast<std::size_t>(r.node_b)] += i;  // and enters node_b
  }
  Real worst = 0.0;
  for (Index v = 0; v < network.num_nodes(); ++v) {
    if (v == positive_node || v == negative_node) continue;  // terminals carry source current
    worst = std::max(worst, std::abs(net[static_cast<std::size_t>(v)]));
  }
  return worst;
}

Real max_kvl_residual(const ResistorNetwork& network, const MnaSolution& solution) {
  PARMA_REQUIRE(solution.node_potentials.size() ==
                    static_cast<std::size_t>(network.num_nodes()),
                "solution does not match network");
  const topology::CycleBasis basis(network.num_nodes(), network.graph_edges());
  Real worst = 0.0;
  for (const auto& cycle : basis.cycles()) {
    Real drop = 0.0;
    for (std::size_t step = 0; step < cycle.vertices.size(); ++step) {
      const Index from = cycle.vertices[step];
      const Index to = cycle.vertices[(step + 1) % cycle.vertices.size()];
      drop += solution.node_potentials[static_cast<std::size_t>(from)] -
              solution.node_potentials[static_cast<std::size_t>(to)];
    }
    worst = std::max(worst, std::abs(drop));
  }
  return worst;
}

Index num_independent_kvl_equations(const ResistorNetwork& network) {
  return network.num_independent_loops();
}

Index num_independent_kcl_equations(const ResistorNetwork& network) {
  const topology::CycleBasis basis(network.num_nodes(), network.graph_edges());
  return network.num_nodes() - basis.num_components();
}

}  // namespace parma::circuit

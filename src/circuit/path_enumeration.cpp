#include "circuit/path_enumeration.hpp"

#include "common/require.hpp"

namespace parma::circuit {
namespace {

struct DfsState {
  Index rows = 0;
  Index cols = 0;
  Index target_col = 0;
  std::uint64_t max_paths = 0;
  std::vector<bool> row_used;
  std::vector<bool> col_used;
  std::vector<std::pair<Index, Index>> current;
  std::vector<CrossingPath> paths;
};

// From horizontal wire `row`, either finish through R(row, target) or detour
// through an unused vertical wire and then an unused horizontal wire.
void dfs_from_row(DfsState& s, Index row) {
  // Terminal move: cross to the target vertical wire.
  s.current.emplace_back(row, s.target_col);
  PARMA_REQUIRE(s.paths.size() < s.max_paths, "path enumeration exceeded max_paths");
  s.paths.push_back({s.current});
  s.current.pop_back();

  // Detours: cross to vertical wire c (!= target, unused), then to another
  // horizontal wire r (unused), and recurse.
  for (Index c = 0; c < s.cols; ++c) {
    if (c == s.target_col || s.col_used[static_cast<std::size_t>(c)]) continue;
    s.col_used[static_cast<std::size_t>(c)] = true;
    s.current.emplace_back(row, c);
    for (Index r = 0; r < s.rows; ++r) {
      if (s.row_used[static_cast<std::size_t>(r)]) continue;
      s.row_used[static_cast<std::size_t>(r)] = true;
      s.current.emplace_back(r, c);
      dfs_from_row(s, r);
      s.current.pop_back();
      s.row_used[static_cast<std::size_t>(r)] = false;
    }
    s.current.pop_back();
    s.col_used[static_cast<std::size_t>(c)] = false;
  }
}

}  // namespace

std::vector<CrossingPath> enumerate_paths(Index rows, Index cols, Index i, Index j,
                                          const PathEnumerationOptions& options) {
  PARMA_REQUIRE(rows >= 1 && cols >= 1, "crossbar dimensions must be positive");
  PARMA_REQUIRE(i >= 0 && i < rows && j >= 0 && j < cols, "endpoint out of range");
  DfsState s;
  s.rows = rows;
  s.cols = cols;
  s.target_col = j;
  s.max_paths = options.max_paths;
  s.row_used.assign(static_cast<std::size_t>(rows), false);
  s.col_used.assign(static_cast<std::size_t>(cols), false);
  s.row_used[static_cast<std::size_t>(i)] = true;
  dfs_from_row(s, i);
  return s.paths;
}

std::uint64_t count_paths(Index rows, Index cols) {
  // sum over detour count k of P(rows-1, k) * P(cols-1, k), where P is the
  // falling factorial (ordered choices of the intermediate wires).
  const Index kmax = std::min(rows - 1, cols - 1);
  std::uint64_t total = 0;
  std::uint64_t rows_ff = 1;
  std::uint64_t cols_ff = 1;
  for (Index k = 0; k <= kmax; ++k) {
    if (k > 0) {
      rows_ff *= static_cast<std::uint64_t>(rows - k);
      cols_ff *= static_cast<std::uint64_t>(cols - k);
    }
    total += rows_ff * cols_ff;
  }
  return total;
}

Real path_resistance(const ResistanceGrid& grid, const CrossingPath& path) {
  Real sum = 0.0;
  for (const auto& [r, c] : path.crossings) sum += grid.at(r, c);
  return sum;
}

Real aggregate_parallel_paths(const ResistanceGrid& grid, Index i, Index j,
                              const PathEnumerationOptions& options) {
  const std::vector<CrossingPath> paths =
      enumerate_paths(grid.rows(), grid.cols(), i, j, options);
  Real inverse_sum = 0.0;
  for (const auto& p : paths) inverse_sum += 1.0 / path_resistance(grid, p);
  PARMA_REQUIRE(inverse_sum > 0.0, "no conducting path between endpoints");
  return 1.0 / inverse_sum;
}

}  // namespace parma::circuit

// Resistor network: an undirected multigraph of nodes joined by resistors.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "linalg/laplacian.hpp"
#include "topology/cycle_basis.hpp"

namespace parma::circuit {

/// A two-terminal resistor between circuit nodes.
struct Resistor {
  Index node_a = 0;
  Index node_b = 0;
  Real resistance = 0.0;  ///< kilo-ohm, must be positive
};

class ResistorNetwork {
 public:
  ResistorNetwork(Index num_nodes, std::vector<Resistor> resistors);

  [[nodiscard]] Index num_nodes() const { return num_nodes_; }
  [[nodiscard]] const std::vector<Resistor>& resistors() const { return resistors_; }

  /// Conductance-weighted edges for Laplacian construction.
  [[nodiscard]] std::vector<linalg::WeightedEdge> weighted_edges() const;

  /// Plain graph edges for topological analysis.
  [[nodiscard]] std::vector<topology::GraphEdge> graph_edges() const;

  /// Number of independent Kirchhoff voltage loops (= beta_1 of the network's
  /// 1-complex = Maxwell's cyclomatic number).
  [[nodiscard]] Index num_independent_loops() const;

  [[nodiscard]] bool is_connected() const;

 private:
  Index num_nodes_ = 0;
  std::vector<Resistor> resistors_;
};

}  // namespace parma::circuit

// Crossbar forward model: the electrical behaviour of an m x n MEA.
//
// With ideal wires each horizontal wire i and vertical wire j is one
// electrical node, and the device is the complete bipartite resistor network
// K_{m,n} with R(i, j) joining them (paper Fig. 2). The *measurement* the
// wet lab performs -- pairwise resistance Z_ij between the end-points of
// wire i and wire j with everything else floating -- is the two-point
// effective resistance of that network, which this module computes exactly.
#pragma once

#include <vector>

#include "circuit/network.hpp"
#include "common/types.hpp"
#include "linalg/dense_matrix.hpp"

namespace parma::circuit {

/// Dense m x n field of crossing resistances (kilo-ohm).
class ResistanceGrid {
 public:
  ResistanceGrid(Index rows, Index cols, Real initial = 0.0);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }

  Real& at(Index i, Index j);
  [[nodiscard]] Real at(Index i, Index j) const;

  /// Row-major flat view, entry (i, j) at i*cols + j (the R_ij layout used by
  /// the equation generator and the solvers).
  [[nodiscard]] const std::vector<Real>& flat() const { return values_; }
  [[nodiscard]] std::vector<Real>& flat() { return values_; }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Real> values_;
};

/// Node numbering of the bipartite network: horizontal wire i -> node i,
/// vertical wire j -> node rows + j.
Index horizontal_node(Index i);
Index vertical_node(Index rows, Index j);

/// Builds the K_{m,n} resistor network of a grid. Requires all entries > 0.
ResistorNetwork build_crossbar_network(const ResistanceGrid& grid);

/// Exact forward measurement: Z(i, j) = effective resistance between wire
/// nodes h_i and v_j, for all m*n pairs. One Laplacian factorization serves
/// every pair.
linalg::DenseMatrix measure_all_pairs(const ResistanceGrid& grid);

/// Single-pair variant (refactors the same oracle; prefer measure_all_pairs
/// in loops).
Real measure_pair(const ResistanceGrid& grid, Index i, Index j);

}  // namespace parma::circuit

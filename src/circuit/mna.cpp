#include "circuit/mna.hpp"

#include <cmath>

#include "common/require.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/dense_solve.hpp"

namespace parma::circuit {

MnaSolution solve_mna(const ResistorNetwork& network, Index positive_node,
                      Index negative_node, Real volts) {
  const Index n = network.num_nodes();
  PARMA_REQUIRE(positive_node >= 0 && positive_node < n, "positive node out of range");
  PARMA_REQUIRE(negative_node >= 0 && negative_node < n, "negative node out of range");
  PARMA_REQUIRE(positive_node != negative_node, "terminals must differ");
  PARMA_REQUIRE(network.is_connected(), "MNA requires a connected network");

  // Unknowns: potentials of all nodes except ground (negative_node), plus the
  // source current. Map node -> unknown index.
  std::vector<Index> unknown_of_node(static_cast<std::size_t>(n), -1);
  Index next = 0;
  for (Index v = 0; v < n; ++v) {
    if (v != negative_node) unknown_of_node[static_cast<std::size_t>(v)] = next++;
  }
  const Index num_potentials = n - 1;
  const Index dim = num_potentials + 1;  // + source current
  linalg::DenseMatrix a(dim, dim);
  std::vector<Real> rhs(static_cast<std::size_t>(dim), 0.0);

  // Stamp resistor conductances.
  for (const auto& r : network.resistors()) {
    const Real g = 1.0 / r.resistance;
    const Index ua = unknown_of_node[static_cast<std::size_t>(r.node_a)];
    const Index ub = unknown_of_node[static_cast<std::size_t>(r.node_b)];
    if (ua >= 0) a(ua, ua) += g;
    if (ub >= 0) a(ub, ub) += g;
    if (ua >= 0 && ub >= 0) {
      a(ua, ub) -= g;
      a(ub, ua) -= g;
    }
  }
  // Stamp the voltage source between positive_node and ground.
  const Index up = unknown_of_node[static_cast<std::size_t>(positive_node)];
  const Index source_row = num_potentials;
  // KCL at the positive node gains the source current flowing in.
  a(up, source_row) -= 1.0;
  // Source constraint: phi(positive) = volts.
  a(source_row, up) = 1.0;
  rhs[static_cast<std::size_t>(source_row)] = volts;

  const std::vector<Real> x = linalg::solve_dense(a, rhs);

  MnaSolution solution;
  solution.node_potentials.assign(static_cast<std::size_t>(n), 0.0);
  for (Index v = 0; v < n; ++v) {
    const Index u = unknown_of_node[static_cast<std::size_t>(v)];
    if (u >= 0) solution.node_potentials[static_cast<std::size_t>(v)] = x[static_cast<std::size_t>(u)];
  }
  solution.source_current = x[static_cast<std::size_t>(source_row)];
  PARMA_REQUIRE(std::abs(solution.source_current) > 1e-300, "open circuit: no current flows");
  solution.equivalent_resistance = volts / solution.source_current;

  solution.branch_currents.reserve(network.resistors().size());
  for (const auto& r : network.resistors()) {
    const Real va = solution.node_potentials[static_cast<std::size_t>(r.node_a)];
    const Real vb = solution.node_potentials[static_cast<std::size_t>(r.node_b)];
    solution.branch_currents.push_back((va - vb) / r.resistance);
  }
  return solution;
}

}  // namespace parma::circuit

// Virtual-time schedule replay.
//
// The paper's figures were produced on a 32-core server and a 1,024-core
// cluster; this harness has one physical core, so wall-clock speedups cannot
// be observed directly at any worker count. Parma therefore separates *what
// the tasks cost* (measured for real, single-threaded, on this machine) from
// *when a k-worker runtime would run them* (replayed deterministically by the
// schedulers below, with explicit overhead knobs). DESIGN.md Section 2
// documents this substitution.
//
// Each scheduler consumes a task list and produces per-task start times, a
// per-worker timeline, and the makespan. The strategy semantics mirror
// Section IV of the paper:
//   * schedule_serial        -- the Single-thread baseline;
//   * schedule_by_category   -- "Parallel": one worker per constraint
//                               category, no balancing (<= 4 useful workers);
//   * schedule_balanced_lpt  -- "Balanced Parallel": deterministic
//                               work-stealing-style rebalance (LPT greedy);
//   * schedule_dynamic       -- "PyMP-k": fine-grained self-scheduling with
//                               chunk claiming, any k.
#pragma once

#include <cstdint>
#include <vector>

#include "common/memory_sampler.hpp"
#include "common/types.hpp"

namespace parma::parallel {

/// One unit of simulated work (e.g. "form the equations of pair (i,j)").
struct VirtualTask {
  Real cost_seconds = 0.0;   ///< measured single-thread execution cost
  Index category = 0;        ///< constraint category (Section IV-A: 4 kinds)
  std::uint64_t bytes = 0;   ///< memory the task's output occupies once formed
};

/// Overhead knobs of the simulated runtime, in seconds. Workers are spawned
/// *sequentially* by the master (as fork-based runtimes like PyMP do), so
/// worker w only becomes available at (w+1) * worker_spawn_overhead -- this
/// is what makes very wide configurations lose on small workloads (the
/// n = 10 inversion of the paper's Fig. 6). Defaults are calibrated to
/// commodity hardware (lightweight spawn ~20 us, dispatch ~0.5 us); the
/// benchmarks print the model they used.
struct CostModel {
  Real worker_spawn_overhead = 2e-5;   ///< per worker, paid sequentially at startup
  Real task_dispatch_overhead = 5e-7;  ///< paid per task by every scheduler
  Real chunk_claim_overhead = 2e-6;    ///< paid per chunk claim (dynamic)
  Real rebalance_overhead = 1e-5;      ///< paid per task moved off its category worker
};

struct ScheduleResult {
  Real makespan_seconds = 0.0;
  Real total_work_seconds = 0.0;        ///< sum of task costs (no overheads)
  std::vector<Real> worker_finish;      ///< per-worker last completion time
  std::vector<Index> assignment;        ///< task index -> worker
  std::vector<Real> start_time;         ///< task index -> virtual start
  Index moved_tasks = 0;                ///< tasks executed off their category worker

  /// Parallel efficiency: total work / (workers * makespan).
  [[nodiscard]] Real efficiency() const;

  /// Memory-over-time trace implied by the schedule: each task's bytes become
  /// live at its completion and stay live to the end of the run (formed
  /// equations accumulate), on top of `baseline_bytes`.
  [[nodiscard]] std::vector<MemorySample> memory_trace(
      const std::vector<VirtualTask>& tasks, std::uint64_t baseline_bytes) const;
};

/// All tasks on one worker, in order.
ScheduleResult schedule_serial(const std::vector<VirtualTask>& tasks,
                               const CostModel& model = {});

/// One worker per category (worker = category % workers); no balancing.
/// `workers` defaults to the number of distinct categories when <= 0.
ScheduleResult schedule_by_category(const std::vector<VirtualTask>& tasks, Index workers,
                                    const CostModel& model = {});

/// Deterministic longest-processing-time greedy onto `workers` workers;
/// models the paper's deterministic work-stealing rebalance.
ScheduleResult schedule_balanced_lpt(const std::vector<VirtualTask>& tasks, Index workers,
                                     const CostModel& model = {});

/// Dynamic self-scheduling: workers claim `chunk` tasks at a time in input
/// order (event-driven simulation over worker availability).
ScheduleResult schedule_dynamic(const std::vector<VirtualTask>& tasks, Index workers,
                                Index chunk = 1, const CostModel& model = {});

}  // namespace parma::parallel

// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; memory orders per
// Le et al., PPoPP'13 "Correct and Efficient Work-Stealing for Weak Memory
// Models").
//
// Single owner pushes/pops at the bottom; any number of thieves steal from
// the top. Used by WorkStealingPool to implement the paper's Balanced
// Parallel strategy faithfully in the real runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/require.hpp"

namespace parma::parallel {

template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 64)
      : buffer_(std::make_shared<Buffer>(initial_capacity)) {
    PARMA_REQUIRE(initial_capacity > 0 && (initial_capacity & (initial_capacity - 1)) == 0,
                  "capacity must be a power of two");
  }

  /// Owner-only: push a task at the bottom. Grows the buffer when full.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    std::shared_ptr<Buffer> buf = std::atomic_load_explicit(&buffer_, std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity()) - 1) {
      buf = buf->grow(t, b);
      std::atomic_store_explicit(&buffer_, buf, std::memory_order_release);
    }
    buf->put(b, std::move(item));
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pop from the bottom (LIFO). Empty optional if none left.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    std::shared_ptr<Buffer> buf = std::atomic_load_explicit(&buffer_, std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thief: steal from the top (FIFO). Empty optional on miss.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    std::shared_ptr<Buffer> buf = std::atomic_load_explicit(&buffer_, std::memory_order_consume);
    T item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race
    }
    return item;
  }

  /// Approximate size (racy; for heuristics/diagnostics only).
  [[nodiscard]] std::int64_t size_estimate() const {
    return bottom_.load(std::memory_order_relaxed) - top_.load(std::memory_order_relaxed);
  }

 private:
  // Circular buffer with power-of-two capacity; old buffers are kept alive by
  // shared_ptr until concurrent thieves are done with them.
  class Buffer {
   public:
    explicit Buffer(std::size_t capacity) : mask_(capacity - 1), slots_(capacity) {}

    [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

    void put(std::int64_t index, T item) {
      slots_[static_cast<std::size_t>(index) & mask_] = std::move(item);
    }
    T get(std::int64_t index) const {
      return slots_[static_cast<std::size_t>(index) & mask_];
    }

    std::shared_ptr<Buffer> grow(std::int64_t top, std::int64_t bottom) const {
      auto bigger = std::make_shared<Buffer>(capacity() * 2);
      for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, get(i));
      return bigger;
    }

   private:
    std::size_t mask_;
    std::vector<T> slots_;
  };

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::shared_ptr<Buffer> buffer_;  // accessed via std::atomic_load/store
};

}  // namespace parma::parallel

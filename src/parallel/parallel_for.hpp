// OpenMP-style parallel loop over an index range, with the three classic
// scheduling policies. Mirrors the PyMP work-sharing constructs the paper's
// prototype relied on (Section IV-C2) for real multi-core execution.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "parallel/thread_pool.hpp"

namespace parma::parallel {

enum class Schedule {
  kStatic,   ///< contiguous blocks, one per worker
  kDynamic,  ///< fixed-size chunks claimed from a shared counter
  kGuided,   ///< exponentially shrinking chunks (remaining / workers)
};

struct ForOptions {
  Schedule schedule = Schedule::kStatic;
  Index chunk = 1;  ///< minimum chunk size for dynamic/guided
};

/// Runs body(i) for every i in [begin, end) on the pool's workers and waits
/// for completion. Exceptions thrown by the body propagate to the caller
/// (first one wins).
void parallel_for(ThreadPool& pool, Index begin, Index end,
                  const std::function<void(Index)>& body, const ForOptions& options = {});

/// Range-chunk variant: body(chunk_begin, chunk_end) to amortize dispatch.
void parallel_for_chunked(ThreadPool& pool, Index begin, Index end,
                          const std::function<void(Index, Index)>& body,
                          const ForOptions& options = {});

/// Parallel sum-reduction of body(i) over [begin, end).
Real parallel_reduce_sum(ThreadPool& pool, Index begin, Index end,
                         const std::function<Real(Index)>& body,
                         const ForOptions& options = {});

}  // namespace parma::parallel

#include "parallel/thread_pool.hpp"

#include "common/require.hpp"

namespace parma::parallel {

ThreadPool::ThreadPool(Index num_threads) {
  PARMA_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (Index i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    PARMA_REQUIRE(!shutting_down_, "submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down with nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace parma::parallel

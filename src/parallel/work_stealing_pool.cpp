#include "parallel/work_stealing_pool.hpp"

#include "common/require.hpp"
#include "common/rng.hpp"

namespace parma::parallel {

WorkStealingPool::WorkStealingPool(Index num_threads) : count_(num_threads) {
  PARMA_REQUIRE(num_threads >= 1, "work-stealing pool needs at least one worker");
  deques_.reserve(static_cast<std::size_t>(num_threads));
  for (Index i = 0; i < num_threads; ++i) {
    deques_.push_back(std::make_unique<WorkStealingDeque<std::function<void()>>>());
  }
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (Index i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  shutting_down_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard lock(injector_mu_);
  injector_.push_back(std::move(task));
}

void WorkStealingPool::wait_idle() {
  while (pending_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

bool WorkStealingPool::take_from_injector(std::function<void()>& out) {
  std::lock_guard lock(injector_mu_);
  if (injector_.empty()) return false;
  out = std::move(injector_.front());
  injector_.pop_front();
  return true;
}

void WorkStealingPool::worker_loop(Index worker_id) {
  Rng rng(0xC0FFEEULL + static_cast<std::uint64_t>(worker_id));
  auto& own = *deques_[static_cast<std::size_t>(worker_id)];
  const Index n = num_threads();

  for (;;) {
    std::optional<std::function<void()>> task = own.pop();
    if (!task && n > 1) {
      // Local miss: try random victims, up to two rounds.
      for (Index attempt = 0; attempt < 2 * n && !task; ++attempt) {
        const Index victim = static_cast<Index>(rng.uniform_index(static_cast<std::uint64_t>(n)));
        if (victim == worker_id) continue;
        task = deques_[static_cast<std::size_t>(victim)]->steal();
        if (task) steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!task) {
      std::function<void()> injected;
      if (take_from_injector(injected)) task = std::move(injected);
    }
    if (task) {
      (*task)();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (shutting_down_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    std::this_thread::yield();
  }
}

}  // namespace parma::parallel

#include "parallel/virtual_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/require.hpp"

namespace parma::parallel {
namespace {

Real sum_costs(const std::vector<VirtualTask>& tasks) {
  Real total = 0.0;
  for (const auto& t : tasks) {
    PARMA_REQUIRE(t.cost_seconds >= 0.0, "task cost must be non-negative");
    total += t.cost_seconds;
  }
  return total;
}

Index distinct_categories(const std::vector<VirtualTask>& tasks) {
  Index max_cat = -1;
  for (const auto& t : tasks) {
    PARMA_REQUIRE(t.category >= 0, "category must be non-negative");
    max_cat = std::max(max_cat, t.category);
  }
  return max_cat + 1;
}

void init_result(ScheduleResult& r, std::size_t num_tasks, Index workers) {
  r.worker_finish.assign(static_cast<std::size_t>(workers), 0.0);
  r.assignment.assign(num_tasks, 0);
  r.start_time.assign(num_tasks, 0.0);
}

// Fork-join semantics: the master spawns every worker sequentially and joins
// all of them, so even an idle worker contributes its spawn slot to the
// critical path (this is what makes very wide pools lose on tiny workloads).
void finalize_parallel_makespan(ScheduleResult& r, const CostModel& model) {
  const Real join_floor = model.worker_spawn_overhead *
                          static_cast<Real>(r.worker_finish.size());
  r.makespan_seconds =
      std::max(*std::max_element(r.worker_finish.begin(), r.worker_finish.end()),
               join_floor);
}

}  // namespace

Real ScheduleResult::efficiency() const {
  if (worker_finish.empty() || makespan_seconds <= 0.0) return 0.0;
  return total_work_seconds /
         (static_cast<Real>(worker_finish.size()) * makespan_seconds);
}

std::vector<MemorySample> ScheduleResult::memory_trace(
    const std::vector<VirtualTask>& tasks, std::uint64_t baseline_bytes) const {
  PARMA_REQUIRE(tasks.size() == assignment.size(), "schedule/task size mismatch");
  // Completion events sorted by time; live memory is the running sum.
  std::vector<std::pair<Real, std::uint64_t>> completions;
  completions.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    completions.emplace_back(start_time[i] + tasks[i].cost_seconds, tasks[i].bytes);
  }
  std::sort(completions.begin(), completions.end());

  std::vector<MemorySample> trace;
  trace.reserve(tasks.size() + 2);
  trace.push_back({0.0, baseline_bytes});
  std::uint64_t live = baseline_bytes;
  for (const auto& [t, bytes] : completions) {
    live += bytes;
    trace.push_back({t, live});
  }
  trace.push_back({makespan_seconds, live});
  return trace;
}

ScheduleResult schedule_serial(const std::vector<VirtualTask>& tasks, const CostModel& model) {
  ScheduleResult r;
  init_result(r, tasks.size(), 1);
  r.total_work_seconds = sum_costs(tasks);
  Real clock = model.worker_spawn_overhead;  // one worker: one spawn
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    clock += model.task_dispatch_overhead;
    r.start_time[i] = clock;
    clock += tasks[i].cost_seconds;
  }
  r.worker_finish[0] = clock;
  r.makespan_seconds = clock;
  return r;
}

ScheduleResult schedule_by_category(const std::vector<VirtualTask>& tasks, Index workers,
                                    const CostModel& model) {
  const Index categories = distinct_categories(tasks);
  if (workers <= 0) workers = std::max<Index>(categories, 1);
  ScheduleResult r;
  init_result(r, tasks.size(), workers);
  r.total_work_seconds = sum_costs(tasks);
  for (std::size_t w = 0; w < r.worker_finish.size(); ++w) {
    // Sequential spawning: worker w is live after w+1 spawn intervals.
    r.worker_finish[w] = model.worker_spawn_overhead * static_cast<Real>(w + 1);
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Index w = tasks[i].category % workers;
    Real& clock = r.worker_finish[static_cast<std::size_t>(w)];
    clock += model.task_dispatch_overhead;
    r.assignment[i] = w;
    r.start_time[i] = clock;
    clock += tasks[i].cost_seconds;
  }
  finalize_parallel_makespan(r, model);
  return r;
}

ScheduleResult schedule_balanced_lpt(const std::vector<VirtualTask>& tasks, Index workers,
                                     const CostModel& model) {
  PARMA_REQUIRE(workers >= 1, "need at least one worker");
  ScheduleResult r;
  init_result(r, tasks.size(), workers);
  r.total_work_seconds = sum_costs(tasks);

  // Longest processing time first, deterministic tie-break on index.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&tasks](std::size_t a, std::size_t b) {
    return tasks[a].cost_seconds > tasks[b].cost_seconds;
  });

  // Min-heap over (finish time, worker id).
  using Slot = std::pair<Real, Index>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (Index w = 0; w < workers; ++w) {
    heap.emplace(model.worker_spawn_overhead * static_cast<Real>(w + 1), w);
  }

  for (std::size_t idx : order) {
    auto [clock, w] = heap.top();
    heap.pop();
    clock += model.task_dispatch_overhead;
    // Work executed off its home (category) worker pays the re-balance cost,
    // modeling the migration a work-stealing runtime performs.
    if (tasks[idx].category % workers != w) {
      clock += model.rebalance_overhead;
      ++r.moved_tasks;
    }
    r.assignment[idx] = w;
    r.start_time[idx] = clock;
    clock += tasks[idx].cost_seconds;
    r.worker_finish[static_cast<std::size_t>(w)] = clock;
    heap.emplace(clock, w);
  }
  finalize_parallel_makespan(r, model);
  return r;
}

ScheduleResult schedule_dynamic(const std::vector<VirtualTask>& tasks, Index workers,
                                Index chunk, const CostModel& model) {
  PARMA_REQUIRE(workers >= 1, "need at least one worker");
  PARMA_REQUIRE(chunk >= 1, "chunk must be >= 1");
  ScheduleResult r;
  init_result(r, tasks.size(), workers);
  r.total_work_seconds = sum_costs(tasks);

  using Slot = std::pair<Real, Index>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (Index w = 0; w < workers; ++w) {
    heap.emplace(model.worker_spawn_overhead * static_cast<Real>(w + 1), w);
  }

  std::size_t next = 0;
  while (next < tasks.size()) {
    auto [clock, w] = heap.top();
    heap.pop();
    clock += model.chunk_claim_overhead;
    const std::size_t end = std::min(tasks.size(), next + static_cast<std::size_t>(chunk));
    for (std::size_t i = next; i < end; ++i) {
      clock += model.task_dispatch_overhead;
      r.assignment[i] = w;
      r.start_time[i] = clock;
      clock += tasks[i].cost_seconds;
      if (tasks[i].category % workers != w) ++r.moved_tasks;
    }
    next = end;
    r.worker_finish[static_cast<std::size_t>(w)] = clock;
    heap.emplace(clock, w);
  }
  finalize_parallel_makespan(r, model);
  return r;
}

}  // namespace parma::parallel

// Work-stealing executor: one Chase-Lev deque per worker, random victim
// selection on miss. Implements the runtime behind the paper's Balanced
// Parallel strategy (Section IV-C1) in real threads.
//
// External submissions land in a mutex-protected injector queue (a Chase-Lev
// deque only permits owner-side pushes); each worker drains the injector into
// its own deque when local work and stealing both miss, so the steady-state
// fast path stays lock-free.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "parallel/work_stealing_deque.hpp"

namespace parma::parallel {

class WorkStealingPool {
 public:
  explicit WorkStealingPool(Index num_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Submit a task. Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have been executed.
  void wait_idle();

  [[nodiscard]] Index num_threads() const { return count_; }

  /// Number of successful deque steals since construction (diagnostics).
  [[nodiscard]] std::uint64_t steal_count() const { return steals_.load(); }

 private:
  void worker_loop(Index worker_id);
  bool take_from_injector(std::function<void()>& out);

  // Fixed worker count, set before any thread launches: workers must not read
  // threads_.size() while the constructor is still emplacing into threads_.
  Index count_ = 0;
  std::vector<std::unique_ptr<WorkStealingDeque<std::function<void()>>>> deques_;
  std::mutex injector_mu_;
  std::deque<std::function<void()>> injector_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<Index> pending_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace parma::parallel

// Fixed-size thread pool with a shared FIFO queue.
//
// This is the *real* shared-memory runtime (used by the FineGrained strategy
// when Parma runs on a multi-core host and by the correctness tests). The
// figure benchmarks use VirtualScheduler instead, because the harness
// machine exposes a single core -- see DESIGN.md Section 2.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace parma::parallel {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(Index num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>>;

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  [[nodiscard]] Index num_threads() const { return static_cast<Index>(workers_.size()); }

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  Index in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

template <typename F>
auto ThreadPool::submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
  std::future<R> result = task->get_future();
  enqueue([task] { (*task)(); });
  return result;
}

}  // namespace parma::parallel

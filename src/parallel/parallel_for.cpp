#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "common/require.hpp"

namespace parma::parallel {
namespace {

// Shared loop state: chunk claiming + first-exception capture.
struct LoopState {
  std::atomic<Index> next{0};
  Index end = 0;
  std::mutex error_mu;
  std::exception_ptr error;

  void capture_exception() {
    std::lock_guard lock(error_mu);
    if (!error) error = std::current_exception();
  }
};

Index claim_chunk(LoopState& state, Schedule schedule, Index chunk, Index workers,
                  Index& out_begin) {
  // Returns chunk length (0 when exhausted) and writes its begin.
  for (;;) {
    const Index current = state.next.load(std::memory_order_relaxed);
    if (current >= state.end) return 0;
    Index len = chunk;
    if (schedule == Schedule::kGuided) {
      const Index remaining = state.end - current;
      len = std::max(chunk, remaining / (2 * workers));
    }
    len = std::min(len, state.end - current);
    Index expected = current;
    if (state.next.compare_exchange_weak(expected, current + len, std::memory_order_relaxed)) {
      out_begin = current;
      return len;
    }
  }
}

}  // namespace

void parallel_for_chunked(ThreadPool& pool, Index begin, Index end,
                          const std::function<void(Index, Index)>& body,
                          const ForOptions& options) {
  PARMA_REQUIRE(begin <= end, "parallel_for: begin must not exceed end");
  PARMA_REQUIRE(options.chunk >= 1, "parallel_for: chunk must be >= 1");
  if (begin == end) return;
  const Index workers = pool.num_threads();
  const Index span = end - begin;

  auto state = std::make_shared<LoopState>();
  state->end = span;

  std::vector<std::future<void>> futures;
  if (options.schedule == Schedule::kStatic) {
    // Contiguous blocks of ~span/workers.
    const Index block = (span + workers - 1) / workers;
    for (Index w = 0; w < workers; ++w) {
      const Index lo = w * block;
      const Index hi = std::min(span, lo + block);
      if (lo >= hi) break;
      futures.push_back(pool.submit([&body, state, begin, lo, hi] {
        try {
          body(begin + lo, begin + hi);
        } catch (...) {
          state->capture_exception();
        }
      }));
    }
  } else {
    const Schedule schedule = options.schedule;
    const Index chunk = options.chunk;
    for (Index w = 0; w < workers; ++w) {
      futures.push_back(pool.submit([&body, state, begin, schedule, chunk, workers] {
        Index lo = 0;
        Index len = 0;
        while ((len = claim_chunk(*state, schedule, chunk, workers, lo)) > 0) {
          try {
            body(begin + lo, begin + lo + len);
          } catch (...) {
            state->capture_exception();
            return;
          }
        }
      }));
    }
  }
  for (auto& f : futures) f.get();
  if (state->error) {
    // Move the exception out of the shared state before rethrowing: pool
    // workers may still hold `state` and would otherwise perform the final
    // release of the exception object on their own thread, concurrent with
    // the caller inspecting what() after catching the rethrow.
    std::exception_ptr error = std::exchange(state->error, nullptr);
    std::rethrow_exception(std::move(error));
  }
}

void parallel_for(ThreadPool& pool, Index begin, Index end,
                  const std::function<void(Index)>& body, const ForOptions& options) {
  parallel_for_chunked(
      pool, begin, end,
      [&body](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) body(i);
      },
      options);
}

Real parallel_reduce_sum(ThreadPool& pool, Index begin, Index end,
                         const std::function<Real(Index)>& body, const ForOptions& options) {
  std::mutex mu;
  Real total = 0.0;
  parallel_for_chunked(
      pool, begin, end,
      [&](Index lo, Index hi) {
        Real local = 0.0;
        for (Index i = lo; i < hi; ++i) local += body(i);
        std::lock_guard lock(mu);
        total += local;
      },
      options);
  return total;
}

}  // namespace parma::parallel

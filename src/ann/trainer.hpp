// Mini-batch Adam trainer for the MEA estimator.
#pragma once

#include "ann/dataset.hpp"
#include "ann/mlp.hpp"

namespace parma::ann {

struct TrainOptions {
  Index epochs = 200;
  Index batch_size = 16;
  Real learning_rate = 1e-3;
  Real beta1 = 0.9;
  Real beta2 = 0.999;
  Real epsilon = 1e-8;
  Real weight_decay = 0.0;  ///< decoupled L2 (AdamW style)
};

struct TrainReport {
  std::vector<Real> train_loss_per_epoch;  ///< mean per-sample loss
  Real final_test_loss = 0.0;

  /// Mean relative error of de-normalized predictions on the test split.
  Real test_mean_relative_error = 0.0;
};

/// Mean 0.5*||y - t||^2 loss over a sample set.
Real evaluate_loss(const Mlp& network, const std::vector<Sample>& samples);

/// Trains in place; deterministic for a given rng (shuffling uses it).
TrainReport train(Mlp& network, const Dataset& dataset, const TrainOptions& options, Rng& rng);

/// De-normalized prediction: raw Z in, raw R out.
std::vector<Real> infer_resistances(const Mlp& network, const Dataset& dataset,
                                    const std::vector<Real>& raw_features);

}  // namespace parma::ann

// Multi-layer perceptron, from scratch.
//
// The paper's context (Sections I-II): the state of the art estimates MEA
// resistances with neural networks (CNN [9], the authors' HDK ANN [8]), and
// Parma's raison d'etre is producing the labelled (Z -> R) training data such
// estimators need at scale. This module supplies the estimator side of that
// pipeline: a dense feed-forward network with ReLU hidden layers, linear
// output, Xavier initialization and reverse-mode gradients, deliberately
// dependency-free and deterministic (seeded Rng).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace parma::ann {

/// Dense feed-forward network: layers[0] inputs -> ... -> layers.back() outputs.
class Mlp {
 public:
  /// `layer_sizes` includes input and output widths (>= 2 entries, all > 0).
  Mlp(std::vector<Index> layer_sizes, Rng& rng);

  [[nodiscard]] Index input_size() const { return layer_sizes_.front(); }
  [[nodiscard]] Index output_size() const { return layer_sizes_.back(); }
  [[nodiscard]] Index num_parameters() const;

  /// Forward pass.
  [[nodiscard]] std::vector<Real> predict(const std::vector<Real>& input) const;

  /// Forward + backward for one sample under 0.5*||y - target||^2 loss;
  /// accumulates parameter gradients into `gradients` (same shape as
  /// parameters(); caller zeroes between batches) and returns the loss.
  Real accumulate_gradients(const std::vector<Real>& input,
                            const std::vector<Real>& target,
                            std::vector<Real>& gradients) const;

  /// Flat parameter vector (weights then biases, layer by layer).
  [[nodiscard]] const std::vector<Real>& parameters() const { return params_; }
  [[nodiscard]] std::vector<Real>& parameters() { return params_; }

 private:
  struct LayerView {
    Index in = 0;
    Index out = 0;
    std::size_t weights_offset = 0;  ///< out x in row-major block
    std::size_t bias_offset = 0;     ///< out entries
  };

  /// Forward pass keeping pre-activations and activations for backprop.
  void forward_trace(const std::vector<Real>& input,
                     std::vector<std::vector<Real>>& activations) const;

  std::vector<Index> layer_sizes_;
  std::vector<LayerView> layers_;
  std::vector<Real> params_;
};

}  // namespace parma::ann

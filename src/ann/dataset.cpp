#include "ann/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "mea/generator.hpp"
#include "mea/measurement.hpp"

namespace parma::ann {
namespace {

Normalization fit_normalization(const std::vector<std::vector<Real>>& rows) {
  PARMA_REQUIRE(!rows.empty(), "cannot normalize an empty dataset");
  const std::size_t dim = rows.front().size();
  Normalization norm;
  norm.mean.assign(dim, 0.0);
  norm.scale.assign(dim, 1.0);
  for (const auto& row : rows) {
    for (std::size_t d = 0; d < dim; ++d) norm.mean[d] += row[d];
  }
  for (Real& m : norm.mean) m /= static_cast<Real>(rows.size());
  for (std::size_t d = 0; d < dim; ++d) {
    Real var = 0.0;
    for (const auto& row : rows) {
      const Real diff = row[d] - norm.mean[d];
      var += diff * diff;
    }
    norm.scale[d] = std::max(std::sqrt(var / static_cast<Real>(rows.size())), Real{1e-9});
  }
  return norm;
}

}  // namespace

std::vector<Real> Normalization::apply(const std::vector<Real>& raw) const {
  PARMA_REQUIRE(raw.size() == mean.size(), "normalization dimension mismatch");
  std::vector<Real> out(raw.size());
  for (std::size_t d = 0; d < raw.size(); ++d) out[d] = (raw[d] - mean[d]) / scale[d];
  return out;
}

std::vector<Real> Normalization::invert(const std::vector<Real>& normalized) const {
  PARMA_REQUIRE(normalized.size() == mean.size(), "normalization dimension mismatch");
  std::vector<Real> out(normalized.size());
  for (std::size_t d = 0; d < normalized.size(); ++d) {
    out[d] = normalized[d] * scale[d] + mean[d];
  }
  return out;
}

Dataset generate_dataset(const mea::DeviceSpec& spec, const DatasetOptions& options, Rng& rng) {
  spec.validate();
  PARMA_REQUIRE(options.num_samples >= 4, "need at least 4 samples");
  PARMA_REQUIRE(options.test_fraction > 0.0 && options.test_fraction < 1.0,
                "test fraction in (0, 1)");

  std::vector<std::vector<Real>> features;
  std::vector<std::vector<Real>> labels;
  features.reserve(static_cast<std::size_t>(options.num_samples));
  labels.reserve(static_cast<std::size_t>(options.num_samples));

  for (Index s = 0; s < options.num_samples; ++s) {
    Rng sample_rng = rng.fork(static_cast<std::uint64_t>(s) + 1);
    const Index anomalies =
        static_cast<Index>(sample_rng.uniform_index(
            static_cast<std::uint64_t>(options.max_anomalies) + 1));
    mea::GeneratorOptions gen = mea::random_scenario(spec, anomalies, sample_rng);
    gen.jitter_fraction = 0.02;
    const circuit::ResistanceGrid truth = mea::generate_field(spec, gen, sample_rng);
    mea::MeasurementOptions mopt;
    mopt.noise_fraction = options.measurement_noise;
    const mea::Measurement m = mea::measure(spec, truth, mopt, sample_rng);

    std::vector<Real> z;
    z.reserve(static_cast<std::size_t>(spec.rows * spec.cols));
    for (Index i = 0; i < spec.rows; ++i) {
      for (Index j = 0; j < spec.cols; ++j) z.push_back(m.z(i, j));
    }
    features.push_back(std::move(z));
    labels.push_back(truth.flat());
  }

  Dataset dataset;
  dataset.spec = spec;
  dataset.feature_norm = fit_normalization(features);
  dataset.label_norm = fit_normalization(labels);

  const auto test_count = static_cast<std::size_t>(
      std::max<Real>(1.0, options.test_fraction * static_cast<Real>(options.num_samples)));
  for (std::size_t s = 0; s < features.size(); ++s) {
    Sample sample{dataset.feature_norm.apply(features[s]),
                  dataset.label_norm.apply(labels[s])};
    if (s < test_count) {
      dataset.test.push_back(std::move(sample));
    } else {
      dataset.train.push_back(std::move(sample));
    }
  }
  return dataset;
}

}  // namespace parma::ann

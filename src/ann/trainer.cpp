#include "ann/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace parma::ann {

Real evaluate_loss(const Mlp& network, const std::vector<Sample>& samples) {
  if (samples.empty()) return 0.0;
  Real total = 0.0;
  for (const auto& sample : samples) {
    const std::vector<Real> y = network.predict(sample.features);
    for (std::size_t o = 0; o < y.size(); ++o) {
      const Real diff = y[o] - sample.labels[o];
      total += 0.5 * diff * diff;
    }
  }
  return total / static_cast<Real>(samples.size());
}

TrainReport train(Mlp& network, const Dataset& dataset, const TrainOptions& options, Rng& rng) {
  PARMA_REQUIRE(!dataset.train.empty(), "training split is empty");
  PARMA_REQUIRE(options.epochs >= 1 && options.batch_size >= 1, "bad training options");
  PARMA_REQUIRE(options.learning_rate > 0.0, "learning rate must be positive");

  const std::size_t num_params = network.parameters().size();
  std::vector<Real> gradients(num_params, 0.0);
  std::vector<Real> m(num_params, 0.0);  // first moment
  std::vector<Real> v(num_params, 0.0);  // second moment
  std::vector<Index> order(dataset.train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<Index>(i);

  TrainReport report;
  std::uint64_t step = 0;
  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    Real epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(options.batch_size));
      std::fill(gradients.begin(), gradients.end(), 0.0);
      for (std::size_t k = start; k < end; ++k) {
        const Sample& sample = dataset.train[static_cast<std::size_t>(order[k])];
        epoch_loss += network.accumulate_gradients(sample.features, sample.labels, gradients);
      }
      const Real batch_scale = 1.0 / static_cast<Real>(end - start);

      // Adam update with bias correction (and optional decoupled decay).
      ++step;
      const Real bc1 = 1.0 - std::pow(options.beta1, static_cast<Real>(step));
      const Real bc2 = 1.0 - std::pow(options.beta2, static_cast<Real>(step));
      std::vector<Real>& params = network.parameters();
      for (std::size_t p = 0; p < num_params; ++p) {
        const Real g = gradients[p] * batch_scale;
        m[p] = options.beta1 * m[p] + (1.0 - options.beta1) * g;
        v[p] = options.beta2 * v[p] + (1.0 - options.beta2) * g * g;
        const Real m_hat = m[p] / bc1;
        const Real v_hat = v[p] / bc2;
        params[p] -= options.learning_rate *
                     (m_hat / (std::sqrt(v_hat) + options.epsilon) +
                      options.weight_decay * params[p]);
      }
    }
    report.train_loss_per_epoch.push_back(epoch_loss /
                                          static_cast<Real>(dataset.train.size()));
  }

  report.final_test_loss = evaluate_loss(network, dataset.test);

  // De-normalized relative error on the test split.
  Real rel_sum = 0.0;
  std::size_t rel_count = 0;
  for (const auto& sample : dataset.test) {
    const std::vector<Real> predicted =
        dataset.label_norm.invert(network.predict(sample.features));
    const std::vector<Real> truth = dataset.label_norm.invert(sample.labels);
    for (std::size_t o = 0; o < predicted.size(); ++o) {
      rel_sum += std::abs(predicted[o] - truth[o]) / std::max(std::abs(truth[o]), Real{1e-9});
      ++rel_count;
    }
  }
  report.test_mean_relative_error =
      rel_count == 0 ? 0.0 : rel_sum / static_cast<Real>(rel_count);
  return report;
}

std::vector<Real> infer_resistances(const Mlp& network, const Dataset& dataset,
                                    const std::vector<Real>& raw_features) {
  return dataset.label_norm.invert(
      network.predict(dataset.feature_norm.apply(raw_features)));
}

}  // namespace parma::ann

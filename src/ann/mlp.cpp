#include "ann/mlp.hpp"

#include <cmath>

#include "common/require.hpp"

namespace parma::ann {

Mlp::Mlp(std::vector<Index> layer_sizes, Rng& rng) : layer_sizes_(std::move(layer_sizes)) {
  PARMA_REQUIRE(layer_sizes_.size() >= 2, "network needs input and output layers");
  for (Index width : layer_sizes_) PARMA_REQUIRE(width >= 1, "layer widths must be positive");

  std::size_t offset = 0;
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    LayerView view;
    view.in = layer_sizes_[l];
    view.out = layer_sizes_[l + 1];
    view.weights_offset = offset;
    offset += static_cast<std::size_t>(view.in * view.out);
    view.bias_offset = offset;
    offset += static_cast<std::size_t>(view.out);
    layers_.push_back(view);
  }
  params_.resize(offset);

  // Xavier/Glorot uniform initialization; biases start at zero.
  for (const auto& layer : layers_) {
    const Real bound = std::sqrt(6.0 / static_cast<Real>(layer.in + layer.out));
    for (Index w = 0; w < layer.in * layer.out; ++w) {
      params_[layer.weights_offset + static_cast<std::size_t>(w)] = rng.uniform(-bound, bound);
    }
  }
}

Index Mlp::num_parameters() const { return static_cast<Index>(params_.size()); }

void Mlp::forward_trace(const std::vector<Real>& input,
                        std::vector<std::vector<Real>>& activations) const {
  PARMA_REQUIRE(static_cast<Index>(input.size()) == input_size(), "input size mismatch");
  activations.clear();
  activations.push_back(input);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    const std::vector<Real>& x = activations.back();
    std::vector<Real> y(static_cast<std::size_t>(layer.out));
    for (Index o = 0; o < layer.out; ++o) {
      Real sum = params_[layer.bias_offset + static_cast<std::size_t>(o)];
      const Real* w = params_.data() + layer.weights_offset +
                      static_cast<std::size_t>(o * layer.in);
      for (Index i = 0; i < layer.in; ++i) sum += w[i] * x[static_cast<std::size_t>(i)];
      // ReLU on hidden layers, identity on the output layer.
      const bool is_output = (l + 1 == layers_.size());
      y[static_cast<std::size_t>(o)] = is_output ? sum : std::max(sum, Real{0.0});
    }
    activations.push_back(std::move(y));
  }
}

std::vector<Real> Mlp::predict(const std::vector<Real>& input) const {
  std::vector<std::vector<Real>> activations;
  forward_trace(input, activations);
  return activations.back();
}

Real Mlp::accumulate_gradients(const std::vector<Real>& input,
                               const std::vector<Real>& target,
                               std::vector<Real>& gradients) const {
  PARMA_REQUIRE(static_cast<Index>(target.size()) == output_size(), "target size mismatch");
  PARMA_REQUIRE(gradients.size() == params_.size(), "gradient buffer size mismatch");

  std::vector<std::vector<Real>> activations;
  forward_trace(input, activations);
  const std::vector<Real>& output = activations.back();

  // Loss and its gradient at the (linear) output layer.
  Real loss = 0.0;
  std::vector<Real> delta(output.size());
  for (std::size_t o = 0; o < output.size(); ++o) {
    const Real diff = output[o] - target[o];
    loss += 0.5 * diff * diff;
    delta[o] = diff;
  }

  // Reverse pass.
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const auto& layer = layers_[l];
    const std::vector<Real>& x = activations[l];
    std::vector<Real> next_delta(static_cast<std::size_t>(layer.in), 0.0);
    for (Index o = 0; o < layer.out; ++o) {
      const Real d = delta[static_cast<std::size_t>(o)];
      if (d == 0.0) continue;
      gradients[layer.bias_offset + static_cast<std::size_t>(o)] += d;
      Real* gw = gradients.data() + layer.weights_offset +
                 static_cast<std::size_t>(o * layer.in);
      const Real* w = params_.data() + layer.weights_offset +
                      static_cast<std::size_t>(o * layer.in);
      for (Index i = 0; i < layer.in; ++i) {
        gw[i] += d * x[static_cast<std::size_t>(i)];
        next_delta[static_cast<std::size_t>(i)] += d * w[i];
      }
    }
    if (l > 0) {
      // Pass through the previous layer's ReLU: zero where it was inactive.
      const std::vector<Real>& activated = activations[l];
      for (std::size_t i = 0; i < next_delta.size(); ++i) {
        if (activated[i] <= 0.0) next_delta[i] = 0.0;
      }
    }
    delta = std::move(next_delta);
  }
  return loss;
}

}  // namespace parma::ann

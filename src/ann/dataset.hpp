// Training-data generation for the neural estimator.
//
// This is the workload the paper exists to accelerate (Section I): "While
// the ANN can be efficiently trained, how to collect the training data,
// i.e., parameterizing the MEAs, at such scales pose unprecedented
// challenges in terms of computation cost." Each sample pairs a measured
// impedance sweep (the network input) with the ground-truth resistance field
// (the label) -- in a wet lab the labels come from Parma's parametrization;
// here the synthetic generator provides them directly, which is equivalent
// because Parma's recovery is exact on noise-free data (tested).
//
// Features and labels are normalized to zero-mean/unit-scale per dimension;
// the normalization is part of the dataset so inference can invert it.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "mea/device.hpp"

namespace parma::ann {

struct Sample {
  std::vector<Real> features;  ///< normalized flattened Z
  std::vector<Real> labels;    ///< normalized flattened R
};

struct Normalization {
  std::vector<Real> mean;
  std::vector<Real> scale;  ///< stddev floored away from zero

  [[nodiscard]] std::vector<Real> apply(const std::vector<Real>& raw) const;
  [[nodiscard]] std::vector<Real> invert(const std::vector<Real>& normalized) const;
};

struct Dataset {
  mea::DeviceSpec spec;
  std::vector<Sample> train;
  std::vector<Sample> test;
  Normalization feature_norm;
  Normalization label_norm;
};

struct DatasetOptions {
  Index num_samples = 200;
  Real test_fraction = 0.2;
  Index max_anomalies = 2;
  Real measurement_noise = 0.0;
};

/// Generates `num_samples` random devices, measures them, and splits into
/// train/test. Deterministic for a given rng seed.
Dataset generate_dataset(const mea::DeviceSpec& spec, const DatasetOptions& options, Rng& rng);

}  // namespace parma::ann

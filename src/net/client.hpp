// parma::net::Client -- the blocking, reconnecting client half of the
// socket transport.
//
// A deliberately simple synchronous library for tools, benchmarks, and
// tests: connect() opens one TCP connection (resolving the host via
// getaddrinfo and trying IPv6 candidates before IPv4), send() fires an
// encoded request frame (assigning a request id when the caller left it 0),
// and poll()/wait() block -- with a timeout -- until the server's reply
// frames arrive. Because the server completes requests in pipeline order,
// not submission order, replies for ids the caller is not currently waiting
// on are stashed and handed out when their id is asked for; a pipelined
// load generator can keep dozens of requests in flight on one connection.
//
// Failure handling is typed, not thrown: every request the caller sent
// terminates with a definite Reply. A reply either carries a frame from the
// server (a response, or a protocol kError diagnostic with is_error set) or
// a transport verdict (ClientError) when the wire itself failed -- the
// connection died between send and wait (kConnectionLost), the peer spoke
// garbage (kProtocol), or the request's own deadline lapsed across the
// outage (kDeadlineExceeded). wait()/poll() returning nullopt means only
// "not yet within the call's timeout"; it never swallows an outcome.
//
// With options.reconnect enabled the client survives connection loss on its
// own: a broken connection is re-dialed under capped exponential backoff
// with deterministic jitter (seeded -- two clients with different
// jitter_seeds do not stampede in lockstep), and in-flight requests are
// re-sent on the fresh connection in request-id order, a replay_window at
// a time so a deep pipeline never bets a recovery round on one long clean
// write burst. Replay is safe
// because parametrization is idempotent: re-executing a request yields the
// same recovered field, which the chaos suite asserts bit-identically.
// Per-request deadlines (WireRequest::deadline_ms) keep their meaning
// across reconnects: the clock starts at send() and an outage does not
// reset it. options.on_state observes the connection lifecycle
// (kConnected/kDisconnected/kReconnecting).
//
// The client is single-threaded by contract: all calls from one thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/protocol.hpp"
#include "serve/request.hpp"

namespace parma::net {

/// Typed transport verdicts. kNone means "the reply below is a real frame".
enum class ClientError : int {
  kNone = 0,
  kConnectFailed,     ///< no candidate address accepted the connection
  kConnectionLost,    ///< the connection died and reconnect is off/exhausted
  kProtocol,          ///< the peer sent bytes that do not parse as frames
  kDeadlineExceeded,  ///< the request's own deadline_ms lapsed
};

const char* client_error_name(ClientError error);

/// Connection lifecycle events for ClientOptions::on_state.
enum class ConnState : int {
  kConnected = 0,   ///< a connection is established (initial or re-dial)
  kDisconnected,    ///< the connection was lost or torn down
  kReconnecting,    ///< a re-dial attempt is about to start
};

struct ClientOptions {
  /// Host name or literal address; "::1" and "[::1]" both work.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Bound on each candidate address's connect attempt.
  std::chrono::milliseconds connect_timeout{5000};
  std::uint32_t max_body_bytes = kDefaultMaxBodyBytes;

  /// Survive connection loss: re-dial and replay in-flight requests.
  bool reconnect = false;
  /// Re-dial attempts per outage before pending requests resolve
  /// kConnectionLost.
  int max_reconnect_attempts = 6;
  /// First re-dial delay; doubles per attempt up to the cap.
  std::chrono::milliseconds reconnect_backoff{5};
  std::chrono::milliseconds reconnect_backoff_cap{250};
  /// Seeds the deterministic backoff jitter (factor in [0.5, 1)).
  std::uint64_t jitter_seed = 0x7a17;
  /// After a reconnect, at most this many pending requests are replayed
  /// before responses start draining; the rest follow in id order as
  /// earlier ones terminate. A deep pipeline replayed atomically would
  /// make every recovery round bet on a long clean write burst -- under
  /// sustained faults that turns one flaky link into total exhaustion.
  std::size_t replay_window = 8;
  /// Observes connection state transitions (invoked from the calling
  /// thread, never concurrently).
  std::function<void(ConnState)> on_state;
};

class Client {
 public:
  /// One terminated request: a server frame (response or protocol error)
  /// when transport == kNone, otherwise a transport verdict.
  struct Reply {
    std::uint64_t request_id = 0;
    ClientError transport = ClientError::kNone;
    bool is_error = false;  ///< kError frame (only when transport == kNone)
    WireResponse response;
    WireError error;

    /// True for a completed response frame.
    [[nodiscard]] bool ok() const {
      return transport == ClientError::kNone && !is_error;
    }
  };

  Client() = default;
  ~Client();  // disconnect()

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Opens the connection. Throws IoError when no resolved candidate
  /// address can be reached within options.connect_timeout each.
  void connect(const ClientOptions& options);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void disconnect();

  /// Encodes one request frame, records it for replay, and writes it out.
  /// A request_id of 0 is replaced with a fresh id; either way the id on
  /// the wire is returned. A write failure does NOT throw: the id stays
  /// pending and wait() delivers the typed outcome (reconnect + replay, or
  /// kConnectionLost).
  std::uint64_t send(WireRequest request);
  /// Convenience: wraps a serve-layer request (request_id auto-assigned).
  std::uint64_t send(const serve::ParametrizeRequest& request);

  /// Blocks until the reply for `request_id` arrives, up to `timeout`.
  /// nullopt = not yet (the request is still pending; call again). The id
  /// must be one send() returned and not yet consumed.
  [[nodiscard]] std::optional<Reply> wait(std::uint64_t request_id,
                                          std::chrono::milliseconds timeout);

  /// Blocks until any reply arrives, up to `timeout`. Replies stashed by an
  /// earlier wait() for a different id are drained first.
  [[nodiscard]] std::optional<Reply> poll(std::chrono::milliseconds timeout);

  /// send() + wait() in one call.
  [[nodiscard]] std::optional<Reply> request(WireRequest req,
                                             std::chrono::milliseconds timeout);

  /// Round-trips one keepalive ping. False = no pong within `timeout` (or
  /// the connection is down and could not be re-established).
  [[nodiscard]] bool ping(std::chrono::milliseconds timeout);

  /// Round-trips one stats snapshot request (the cluster router's
  /// aggregation probe). nullopt = no reply within `timeout` or the
  /// connection is down and could not be re-established.
  [[nodiscard]] std::optional<serve::Stats> stats(std::chrono::milliseconds timeout);

  /// Requests sent but not yet terminated.
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  /// Successful re-dials performed so far.
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
  /// The most recent transport failure (kNone when the connection is
  /// healthy and always has been).
  [[nodiscard]] ClientError last_error() const { return last_error_; }

 private:
  struct Pending {
    std::vector<std::uint8_t> bytes;  ///< the encoded frame, for replay
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// Fully written on the *current* connection. Cleared on reconnect;
    /// pump() tops up un-replayed requests in id order as responses drain.
    bool on_wire = false;
  };

  enum class Pump { kIdle, kProgress, kDown };

  /// Reads whatever arrives within `budget`, decoding frames into ready_.
  Pump pump(std::chrono::milliseconds budget);
  /// Blocking write of one encoded frame; false = connection marked down.
  bool write_all(const std::vector<std::uint8_t>& bytes);
  /// Closes the socket and records the failure (state callback fires).
  void mark_down(ClientError cause);
  /// Re-dials under backoff and replays the oldest `replay_window` pending
  /// requests; false = outage stands (attempts exhausted or reconnect
  /// disabled) -- pending_ has been resolved with `cause`-typed replies.
  bool recover(ClientError cause);
  /// Writes not-yet-on-wire pending requests, oldest first, until
  /// `replay_window` are in flight on the current connection; false =
  /// connection marked down mid-write.
  bool replenish_wire();
  /// Resolves every pending request with a transport-verdict reply.
  void resolve_all_pending(ClientError cause);
  /// Resolves pending requests whose deadline has passed.
  void resolve_expired_deadlines();
  /// One dial attempt over all resolved candidates; -1 = all failed.
  int dial_once(std::string* diagnostic);
  void notify(ConnState state);

  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_id_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t outages_ = 0;  ///< jitter stream selector
  ClientError last_error_ = ClientError::kNone;
  FrameDecoder decoder_{kDefaultMaxBodyBytes};
  /// Sent-not-terminated requests in id order (replay preserves send order).
  std::map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, Reply> ready_;
  std::unordered_set<std::uint64_t> pongs_;
  std::unordered_map<std::uint64_t, serve::Stats> stats_replies_;
  /// A request-id-0 error frame: the server lost frame sync; with reconnect
  /// off, every wait from here on returns this diagnostic.
  std::optional<WireError> fatal_;
};

}  // namespace parma::net

// parma::net::Client -- the blocking client half of the socket transport.
//
// A deliberately simple synchronous library for tools, benchmarks, and
// tests: connect() opens one TCP connection, send() fires an encoded
// request frame (assigning a request id when the caller left it 0), and
// poll()/wait() block -- with a timeout -- until the server's reply frames
// arrive. Because the server completes requests in pipeline order, not
// submission order, replies for ids the caller is not currently waiting on
// are stashed and handed out when their id is asked for; a pipelined load
// generator can keep dozens of requests in flight on one connection.
//
// Transport failures (refused connection, mid-reply disconnect) throw
// IoError. Protocol-level kError frames do NOT throw: they come back as a
// Reply with is_error set, carrying the server's typed ProtoCode
// diagnostic; a connection-level error (request id 0 -- the server lost
// frame sync and is closing) poisons every subsequent wait.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/protocol.hpp"
#include "serve/request.hpp"

namespace parma::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::chrono::milliseconds connect_timeout{5000};
  std::uint32_t max_body_bytes = kDefaultMaxBodyBytes;
};

class Client {
 public:
  /// One reply frame: a completion (response) or a protocol diagnostic
  /// (error), never both.
  struct Reply {
    bool is_error = false;
    WireResponse response;
    WireError error;
  };

  Client() = default;
  ~Client();  // disconnect()

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Opens the connection. Throws IoError when the server cannot be
  /// reached within options.connect_timeout.
  void connect(const ClientOptions& options);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void disconnect();

  /// Encodes and writes one request frame; blocks until the kernel accepted
  /// all bytes. A request_id of 0 is replaced with a fresh id; either way
  /// the id on the wire is returned. Throws IoError on a broken connection.
  std::uint64_t send(WireRequest request);
  /// Convenience: wraps a serve-layer request (request_id auto-assigned).
  std::uint64_t send(const serve::ParametrizeRequest& request);

  /// Blocks until the reply for `request_id` arrives, up to `timeout`.
  /// nullopt = timed out (the reply may still arrive; call again).
  [[nodiscard]] std::optional<Reply> wait(std::uint64_t request_id,
                                          std::chrono::milliseconds timeout);

  /// Blocks until any reply arrives, up to `timeout`. Replies stashed by an
  /// earlier wait() for a different id are drained first.
  [[nodiscard]] std::optional<Reply> poll(std::chrono::milliseconds timeout);

  /// send() + wait() in one call.
  [[nodiscard]] std::optional<Reply> request(WireRequest req,
                                             std::chrono::milliseconds timeout);

 private:
  /// Reads whatever arrives within `budget`, decoding frames into ready_.
  /// False = nothing arrived in time.
  bool pump(std::chrono::milliseconds budget);

  int fd_ = -1;
  std::uint64_t next_id_ = 0;
  FrameDecoder decoder_{kDefaultMaxBodyBytes};
  std::unordered_map<std::uint64_t, Reply> ready_;
  /// A request-id-0 error frame: the server lost frame sync; every wait
  /// from here on returns this diagnostic.
  std::optional<WireError> fatal_;
};

}  // namespace parma::net

// parma::net::sock -- the fault-aware socket shim under every net syscall.
//
// All reads and writes in src/net go through these wrappers instead of raw
// recv/send/writev. The shim gives three guarantees the call sites used to
// re-implement (inconsistently) by hand:
//
//   1. EINTR never escapes: every operation retries the syscall.
//   2. SIGPIPE never fires: sends use MSG_NOSIGNAL (writev becomes sendmsg),
//      so a peer that died mid-write surfaces as EPIPE, a typed error the
//      caller handles, instead of killing the process.
//   3. Deterministic wire chaos: when a fault::Injector is installed, the
//      socket fault points (torn writes, read stalls, injected resets,
//      connect delays, byte corruption) apply here, driven by the same
//      (seed, point, index) schedule as the in-process points. Disabled
//      cost is one relaxed atomic load per operation -- the production
//      configuration stays the production configuration.
//
// Results carry the errno out-of-band (`err`) so callers never read a
// clobbered global after the shim's own cleanup syscalls.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>

#include <cerrno>
#include <cstddef>

namespace parma::net::sock {

/// One socket operation's outcome: `n` is the byte count (0 = EOF on reads),
/// negative means failure with the reason in `err`.
struct IoCount {
  ssize_t n = 0;
  int err = 0;

  [[nodiscard]] bool failed() const { return n < 0; }
  [[nodiscard]] bool would_block() const {
    return n < 0 && (err == EAGAIN || err == EWOULDBLOCK);
  }
};

/// send(fd, data, len, MSG_NOSIGNAL) with EINTR retry. Fault points:
/// kSockReset (shuts the socket down, returns ECONNRESET), kSockTornWrite
/// (delivers only a prefix -- callers must already handle short writes).
[[nodiscard]] IoCount send_some(int fd, const void* data, std::size_t len);

/// writev as sendmsg(..., MSG_NOSIGNAL) with EINTR retry; same fault points
/// as send_some (a torn write truncates the gather list to a prefix).
[[nodiscard]] IoCount sendv_some(int fd, const iovec* iov, int iov_count);

/// recv(fd, data, len) with EINTR retry. Fault points: kSockReadStall
/// (sleeps the injector's stall first), kSockReset, kSockCorruptByte (one
/// received byte arrives flipped -- the frame checksum catches it).
[[nodiscard]] IoCount recv_some(int fd, void* data, std::size_t len);

/// connect(fd, addr, len) with EINTR retry (EINTR on connect means the
/// attempt continues asynchronously, so it maps to EINPROGRESS). Fault
/// point: kSockConnectDelay sleeps the injector's stall before the attempt.
[[nodiscard]] IoCount connect_begin(int fd, const sockaddr* addr, socklen_t len);

}  // namespace parma::net::sock

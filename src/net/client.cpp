#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/require.hpp"

namespace parma::net {
namespace {

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds remaining(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? left : std::chrono::milliseconds{0};
}

}  // namespace

Client::~Client() { disconnect(); }

void Client::connect(const ClientOptions& options) {
  PARMA_REQUIRE(fd_ < 0, "client is already connected");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    throw IoError("not a valid IPv4 address: " + options.host);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw IoError("socket() failed");

  // Non-blocking connect bounded by connect_timeout, then back to blocking
  // mode -- the client's contract is synchronous calls with poll() timeouts.
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd);
      throw IoError("connect to " + options.host + ":" +
                    std::to_string(options.port) + " failed: " + std::strerror(err));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(options.connect_timeout.count()));
    int so_error = 0;
    socklen_t len = sizeof so_error;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (ready <= 0 || so_error != 0) {
      ::close(fd);
      throw IoError("connect to " + options.host + ":" +
                    std::to_string(options.port) +
                    (ready <= 0 ? " timed out"
                                : std::string(" failed: ") + std::strerror(so_error)));
    }
  }

  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  fd_ = fd;
  decoder_ = FrameDecoder(options.max_body_bytes);
  ready_.clear();
  fatal_.reset();
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t Client::send(WireRequest request) {
  PARMA_REQUIRE(fd_ >= 0, "client is not connected");
  if (request.request_id == 0) request.request_id = ++next_id_;
  const std::uint64_t id = request.request_id;

  const std::vector<std::uint8_t> bytes = encode_request(request);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      disconnect();
      throw IoError(std::string("send failed: ") + std::strerror(err));
    }
    sent += static_cast<std::size_t>(n);
  }
  return id;
}

std::uint64_t Client::send(const serve::ParametrizeRequest& request) {
  return send(WireRequest::from_request(request, 0));
}

std::optional<Client::Reply> Client::wait(std::uint64_t request_id,
                                          std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    if (const auto it = ready_.find(request_id); it != ready_.end()) {
      Reply reply = std::move(it->second);
      ready_.erase(it);
      return reply;
    }
    if (fatal_) {
      Reply reply;
      reply.is_error = true;
      reply.error = *fatal_;
      return reply;
    }
    const std::chrono::milliseconds budget = remaining(deadline);
    if (budget.count() == 0) return std::nullopt;
    if (!pump(budget)) return std::nullopt;
  }
}

std::optional<Client::Reply> Client::poll(std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    if (!ready_.empty()) {
      const auto it = ready_.begin();
      Reply reply = std::move(it->second);
      ready_.erase(it);
      return reply;
    }
    if (fatal_) {
      Reply reply;
      reply.is_error = true;
      reply.error = *fatal_;
      return reply;
    }
    const std::chrono::milliseconds budget = remaining(deadline);
    if (budget.count() == 0) return std::nullopt;
    if (!pump(budget)) return std::nullopt;
  }
}

std::optional<Client::Reply> Client::request(WireRequest req,
                                             std::chrono::milliseconds timeout) {
  const std::uint64_t id = send(std::move(req));
  return wait(id, timeout);
}

bool Client::pump(std::chrono::milliseconds budget) {
  PARMA_REQUIRE(fd_ >= 0, "client is not connected");

  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(budget.count()));
  if (ready == 0) return false;
  if (ready < 0) {
    if (errno == EINTR) return false;  // caller's wait loop re-budgets
    disconnect();
    throw IoError(std::string("poll failed: ") + std::strerror(errno));
  }

  std::uint8_t chunk[64 * 1024];
  const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
  if (n == 0) {
    disconnect();
    if (fatal_) return true;  // the error frame explains the close
    throw IoError("connection closed by server");
  }
  if (n < 0) {
    if (errno == EINTR) return true;
    const int err = errno;
    disconnect();
    throw IoError(std::string("recv failed: ") + std::strerror(err));
  }
  decoder_.feed(chunk, static_cast<std::size_t>(n));

  Frame frame;
  for (;;) {
    const FrameDecoder::Result r = decoder_.next(frame);
    if (r == FrameDecoder::Result::kNeedMore) return true;
    if (r == FrameDecoder::Result::kError) {
      disconnect();
      throw IoError("malformed frame from server: " + decoder_.error().message);
    }
    if (frame.type == FrameType::kResponse && frame.response) {
      Reply reply;
      reply.response = std::move(*frame.response);
      ready_.insert_or_assign(reply.response.request_id, std::move(reply));
    } else if (frame.type == FrameType::kError && frame.error) {
      if (frame.error->request_id == 0) {
        fatal_ = std::move(*frame.error);
      } else {
        Reply reply;
        reply.is_error = true;
        reply.error = std::move(*frame.error);
        ready_.insert_or_assign(reply.error.request_id, std::move(reply));
      }
    }
    // A request frame from the server would be nonsense; dropped.
  }
}

}  // namespace parma::net

#include "net/client.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "common/require.hpp"
#include "net/socket_ops.hpp"

namespace parma::net {
namespace {

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds remaining(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? left : std::chrono::milliseconds{0};
}

/// SplitMix64 finalizer (same construction as fault::Injector's hash): the
/// jitter draw for (jitter_seed, outage, attempt) is a pure function, so a
/// reconnect storm under a fixed seed replays the same pacing.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Capped exponential backoff with deterministic jitter: delay =
/// min(backoff * 2^(attempt-1), cap) * factor, factor in [0.5, 1).
std::chrono::milliseconds backoff_delay(const ClientOptions& options,
                                        std::uint64_t outage, int attempt) {
  double base = static_cast<double>(options.reconnect_backoff.count()) *
                std::ldexp(1.0, attempt - 1);
  base = std::min(base, static_cast<double>(options.reconnect_backoff_cap.count()));
  const std::uint64_t draw =
      mix64(mix64(options.jitter_seed ^ outage) + static_cast<std::uint64_t>(attempt));
  const double factor = 0.5 + 0.5 * (static_cast<double>(draw >> 11) * 0x1.0p-53);
  return std::chrono::milliseconds(static_cast<long long>(std::llround(base * factor)));
}

/// "[::1]" and "::1" are the same host; the brackets are URI syntax.
std::string strip_brackets(const std::string& host) {
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']') {
    return host.substr(1, host.size() - 2);
  }
  return host;
}

}  // namespace

const char* client_error_name(ClientError error) {
  switch (error) {
    case ClientError::kNone: return "none";
    case ClientError::kConnectFailed: return "connect-failed";
    case ClientError::kConnectionLost: return "connection-lost";
    case ClientError::kProtocol: return "protocol";
    case ClientError::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

Client::~Client() { disconnect(); }

void Client::connect(const ClientOptions& options) {
  PARMA_REQUIRE(fd_ < 0, "client is already connected");
  options_ = options;

  std::string diagnostic;
  const int fd = dial_once(&diagnostic);
  if (fd < 0) {
    last_error_ = ClientError::kConnectFailed;
    throw IoError(diagnostic);
  }

  fd_ = fd;
  decoder_ = FrameDecoder(options.max_body_bytes);
  pending_.clear();
  ready_.clear();
  pongs_.clear();
  stats_replies_.clear();
  fatal_.reset();
  last_error_ = ClientError::kNone;
  notify(ConnState::kConnected);
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    notify(ConnState::kDisconnected);
  }
}

int Client::dial_once(std::string* diagnostic) {
  const std::string host = strip_brackets(options_.host);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(options_.port).c_str(),
                               &hints, &resolved);
  if (rc != 0) {
    *diagnostic = "resolving '" + host + "' failed: " + ::gai_strerror(rc);
    return -1;
  }

  // Happy-Eyeballs-flavoured ordering: try every IPv6 candidate, then every
  // IPv4 one, each attempt bounded by connect_timeout. Sequential (not
  // racing) keeps the client single-threaded; the fallback property is what
  // matters for dual-stack hosts whose v6 route is dead.
  std::vector<addrinfo*> candidates;
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family == AF_INET6) candidates.push_back(ai);
  }
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family != AF_INET6) candidates.push_back(ai);
  }

  std::string last_failure = "no addresses resolved";
  int connected_fd = -1;
  for (addrinfo* ai : candidates) {
    const int fd = ::socket(ai->ai_family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      last_failure = std::string("socket() failed: ") + std::strerror(errno);
      continue;
    }
    // Non-blocking connect bounded by connect_timeout, then back to blocking
    // mode -- the client's contract is synchronous calls with poll() budgets.
    const sock::IoCount begun =
        sock::connect_begin(fd, ai->ai_addr, static_cast<socklen_t>(ai->ai_addrlen));
    bool established = !begun.failed();
    if (!established && begun.err == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, static_cast<int>(options_.connect_timeout.count()));
      } while (ready < 0 && errno == EINTR);
      int so_error = 0;
      socklen_t len = sizeof so_error;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (ready > 0 && so_error == 0) {
        established = true;
      } else {
        last_failure = ready <= 0 ? "connect timed out"
                                  : std::string("connect failed: ") +
                                        std::strerror(so_error);
      }
    } else if (!established) {
      last_failure = std::string("connect failed: ") + std::strerror(begun.err);
    }
    if (established) {
      connected_fd = fd;
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(resolved);

  if (connected_fd < 0) {
    *diagnostic = "connect to " + options_.host + ":" +
                  std::to_string(options_.port) + " failed: " + last_failure;
    return -1;
  }
  const int flags = ::fcntl(connected_fd, F_GETFL, 0);
  ::fcntl(connected_fd, F_SETFL, flags & ~O_NONBLOCK);
  const int one = 1;
  ::setsockopt(connected_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return connected_fd;
}

std::uint64_t Client::send(WireRequest request) {
  PARMA_REQUIRE(fd_ >= 0 || options_.reconnect, "client is not connected");
  if (request.request_id == 0) request.request_id = ++next_id_;
  next_id_ = std::max(next_id_, request.request_id);
  const std::uint64_t id = request.request_id;

  Pending record;
  if (request.deadline_ms > 0) {
    record.deadline = Clock::now() + std::chrono::milliseconds(request.deadline_ms);
  }
  record.bytes = encode_request(request);
  const auto [it, inserted] = pending_.emplace(id, std::move(record));
  PARMA_REQUIRE(inserted, "request id is already in flight");

  // A write failure is not an exception: the request stays pending and
  // wait() delivers the typed outcome (replay after reconnect, or a
  // kConnectionLost verdict).
  if (fd_ >= 0) it->second.on_wire = write_all(it->second.bytes);
  return id;
}

std::uint64_t Client::send(const serve::ParametrizeRequest& request) {
  return send(WireRequest::from_request(request, 0));
}

std::optional<Client::Reply> Client::wait(std::uint64_t request_id,
                                          std::chrono::milliseconds timeout) {
  PARMA_REQUIRE(ready_.count(request_id) != 0 || pending_.count(request_id) != 0,
                "waiting on an unknown request id");
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    if (const auto it = ready_.find(request_id); it != ready_.end()) {
      Reply reply = std::move(it->second);
      ready_.erase(it);
      return reply;
    }
    if (fatal_) {
      Reply reply;
      reply.request_id = request_id;
      reply.is_error = true;
      reply.error = *fatal_;
      pending_.erase(request_id);
      return reply;
    }
    if (fd_ < 0) {
      resolve_expired_deadlines();
      if (ready_.count(request_id) != 0) continue;
      (void)recover(last_error_ == ClientError::kNone ? ClientError::kConnectionLost
                                                      : last_error_);
      continue;  // success resumes pumping; failure stocked ready_
    }
    const std::chrono::milliseconds budget = remaining(deadline);
    if (budget.count() == 0) return std::nullopt;
    (void)pump(budget);
  }
}

std::optional<Client::Reply> Client::poll(std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    if (!ready_.empty()) {
      const auto it = ready_.begin();
      Reply reply = std::move(it->second);
      ready_.erase(it);
      return reply;
    }
    if (fatal_) {
      Reply reply;
      reply.request_id = fatal_->request_id;
      reply.is_error = true;
      reply.error = *fatal_;
      return reply;
    }
    if (fd_ < 0) {
      if (pending_.empty()) return std::nullopt;
      resolve_expired_deadlines();
      if (!ready_.empty()) continue;
      (void)recover(last_error_ == ClientError::kNone ? ClientError::kConnectionLost
                                                      : last_error_);
      continue;
    }
    const std::chrono::milliseconds budget = remaining(deadline);
    if (budget.count() == 0) return std::nullopt;
    (void)pump(budget);
  }
}

std::optional<Client::Reply> Client::request(WireRequest req,
                                             std::chrono::milliseconds timeout) {
  const std::uint64_t id = send(std::move(req));
  return wait(id, timeout);
}

bool Client::ping(std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  if (fd_ < 0) {
    if (!options_.reconnect) return false;
    if (!recover(last_error_ == ClientError::kNone ? ClientError::kConnectionLost
                                                   : last_error_)) {
      return false;
    }
  }
  const std::uint64_t id = ++next_id_;
  if (!write_all(encode_ping(id))) return false;
  while (pongs_.count(id) == 0) {
    const std::chrono::milliseconds budget = remaining(deadline);
    if (budget.count() == 0) return false;
    if (pump(budget) == Pump::kDown) return false;
  }
  pongs_.erase(id);
  return true;
}

std::optional<serve::Stats> Client::stats(std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  if (fd_ < 0) {
    if (!options_.reconnect) return std::nullopt;
    if (!recover(last_error_ == ClientError::kNone ? ClientError::kConnectionLost
                                                   : last_error_)) {
      return std::nullopt;
    }
  }
  const std::uint64_t id = ++next_id_;
  if (!write_all(encode_stats_request(id))) return std::nullopt;
  while (stats_replies_.count(id) == 0) {
    const std::chrono::milliseconds budget = remaining(deadline);
    if (budget.count() == 0) return std::nullopt;
    if (pump(budget) == Pump::kDown) return std::nullopt;
  }
  serve::Stats snapshot = std::move(stats_replies_.at(id));
  stats_replies_.erase(id);
  return snapshot;
}

bool Client::write_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const sock::IoCount io =
        sock::send_some(fd_, bytes.data() + sent, bytes.size() - sent);
    if (io.failed()) {
      mark_down(ClientError::kConnectionLost);
      return false;
    }
    sent += static_cast<std::size_t>(io.n);
  }
  return true;
}

void Client::mark_down(ClientError cause) {
  last_error_ = cause;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    notify(ConnState::kDisconnected);
  }
}

bool Client::recover(ClientError cause) {
  if (!options_.reconnect) {
    resolve_all_pending(cause);
    return false;
  }
  ++outages_;
  for (int attempt = 1; attempt <= options_.max_reconnect_attempts; ++attempt) {
    notify(ConnState::kReconnecting);
    std::this_thread::sleep_for(backoff_delay(options_, outages_, attempt));
    std::string diagnostic;
    const int fd = dial_once(&diagnostic);
    if (fd < 0) continue;

    fd_ = fd;
    decoder_ = FrameDecoder(options_.max_body_bytes);
    fatal_.reset();
    ++reconnects_;
    notify(ConnState::kConnected);

    // Replay in id (= send) order, but only a window of it: the remainder
    // follows from pump() as responses drain. Replaying a deep pipeline
    // atomically would make this round succeed only if every write in a
    // long burst survives -- under sustained faults that exhausts the
    // attempt budget even though each connection makes real progress.
    // Requests whose deadline lapsed during the outage resolve instead of
    // replaying. Parametrization is idempotent, so a request the server
    // already executed (response lost with the old connection) re-executes
    // to a bit-identical response.
    resolve_expired_deadlines();
    for (auto& [id, record] : pending_) record.on_wire = false;
    if (replenish_wire()) return true;  // died mid-replay: next attempt re-dials
  }
  last_error_ = cause;
  resolve_all_pending(cause);
  return false;
}

bool Client::replenish_wire() {
  std::size_t on_wire = 0;
  for (const auto& [id, record] : pending_) {
    if (record.on_wire) ++on_wire;
  }
  for (auto& [id, record] : pending_) {
    if (on_wire >= options_.replay_window) break;
    if (record.on_wire) continue;
    if (!write_all(record.bytes)) return false;
    record.on_wire = true;
    ++on_wire;
  }
  return true;
}

void Client::resolve_all_pending(ClientError cause) {
  for (const auto& [id, record] : pending_) {
    Reply reply;
    reply.request_id = id;
    reply.transport = cause;
    ready_.insert_or_assign(id, std::move(reply));
  }
  pending_.clear();
}

void Client::resolve_expired_deadlines() {
  const Clock::time_point now = Clock::now();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.deadline && *it->second.deadline <= now) {
      Reply reply;
      reply.request_id = it->first;
      reply.transport = ClientError::kDeadlineExceeded;
      ready_.insert_or_assign(it->first, std::move(reply));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void Client::notify(ConnState state) {
  if (options_.on_state) options_.on_state(state);
}

Client::Pump Client::pump(std::chrono::milliseconds budget) {
  PARMA_REQUIRE(fd_ >= 0, "client is not connected");

  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(budget.count()));
  if (ready == 0) return Pump::kIdle;
  if (ready < 0) {
    if (errno == EINTR) return Pump::kIdle;  // caller's loop re-budgets
    mark_down(ClientError::kConnectionLost);
    return Pump::kDown;
  }

  std::uint8_t chunk[64 * 1024];
  const sock::IoCount io = sock::recv_some(fd_, chunk, sizeof chunk);
  if (io.failed() || io.n == 0) {
    mark_down(ClientError::kConnectionLost);
    return Pump::kDown;
  }
  decoder_.feed(chunk, static_cast<std::size_t>(io.n));

  Frame frame;
  for (;;) {
    const FrameDecoder::Result r = decoder_.next(frame);
    if (r == FrameDecoder::Result::kNeedMore) {
      // Terminated requests freed replay-window slots; put the next
      // not-yet-replayed requests on the wire in id order.
      if (!replenish_wire()) return Pump::kDown;
      return Pump::kProgress;
    }
    if (r == FrameDecoder::Result::kError) {
      // The stream lost frame sync (corruption en route, or a hostile
      // peer). Recoverable by reconnecting -- the replacement connection
      // starts frame-aligned.
      mark_down(ClientError::kProtocol);
      return Pump::kDown;
    }
    switch (frame.type) {
      case FrameType::kResponse:
        if (frame.response && pending_.erase(frame.response->request_id) > 0) {
          Reply reply;
          reply.request_id = frame.response->request_id;
          reply.response = std::move(*frame.response);
          ready_.insert_or_assign(reply.request_id, std::move(reply));
        }
        // else: a stale duplicate (the request already terminated); dropped.
        break;
      case FrameType::kError:
        if (!frame.error) break;
        if (frame.error->request_id == 0) {
          // The server lost frame sync on our bytes and is closing. With
          // reconnect on, a fresh connection + replay beats poisoning --
          // unless the peer speaks another protocol version, which a
          // reconnect cannot fix.
          if (options_.reconnect && frame.error->code != ProtoCode::kBadVersion) {
            mark_down(ClientError::kConnectionLost);
            return Pump::kDown;
          }
          fatal_ = std::move(*frame.error);
        } else if (frame.error->code == ProtoCode::kBadChecksum &&
                   options_.reconnect &&
                   pending_.count(frame.error->request_id) != 0) {
          // The request's bytes were mangled in transit -- the server's body
          // checksum caught it and the connection is closing. Transport
          // damage, not a semantic rejection: keep the request pending so
          // the reconnect replays it over the clean connection.
        } else if (pending_.erase(frame.error->request_id) > 0) {
          Reply reply;
          reply.request_id = frame.error->request_id;
          reply.is_error = true;
          reply.error = std::move(*frame.error);
          ready_.insert_or_assign(reply.request_id, std::move(reply));
        }
        break;
      case FrameType::kPing:
        // The server probes liveness; answer in place.
        if (!write_all(encode_pong(frame.request_id))) return Pump::kDown;
        break;
      case FrameType::kPong:
        pongs_.insert(frame.request_id);
        break;
      case FrameType::kStatsResponse:
        if (frame.stats) stats_replies_.insert_or_assign(frame.request_id, *frame.stats);
        break;
      case FrameType::kRequest:
      case FrameType::kStatsRequest:
        break;  // server-bound frames from the server would be nonsense; dropped
    }
  }
}

}  // namespace parma::net

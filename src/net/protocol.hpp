// parma::net -- the compact length-prefixed binary protocol of the socket
// transport tier.
//
// Every frame is a fixed 24-byte header followed by a typed body:
//
//   offset  size  field
//        0     4  magic      0x414D5250 ("PRMA", little-endian on the wire)
//        4     2  version    kProtocolVersion
//        6     2  type       FrameType
//        8     8  request_id caller-chosen; echoed verbatim on the response
//       16     4  body_len   bytes that follow the header
//       20     4  body_sum   FNV-1a checksum of those bytes (v2)
//
// All integers are little-endian fixed-width; floating point is IEEE-754
// binary64 bit-copied (the native representation on every supported target),
// so a recovered field survives the wire bit-identically. A request body
// carries the shape header (rows/cols/drive voltage), the serving knobs the
// remote caller may set (priority, deadline, solver selection, formation
// workers/chunk, iteration cap), the Z and U sweeps, and the optional
// measurement mask; a response body carries the typed wire status
// (serve/status.hpp stable codes -- never raw enum ordinals), stage timings,
// and the recovered field for kOk/kDegradedResult. Ping/pong keepalive
// frames (v2) are header-only: body_len 0, request_id as the echo token.
//
// Decoding is exception-free by contract: malformed input -- truncation,
// garbage magic, a foreign version, an oversized declared body, a corrupted
// byte caught by the checksum, a body that disagrees with its own shape
// header -- comes back as a typed ProtocolError diagnostic, never a throw
// and never a crash. An oversized declared body is rejected from the 24
// header bytes alone, before any buffer grows toward it, so a hostile 4 GiB
// length prefix costs the server nothing. The checksum is what turns wire
// corruption (a flipped bit in a Z sample would otherwise decode fine) into
// a typed, recoverable teardown instead of a silently wrong answer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"
#include "serve/status.hpp"

namespace parma::net {

inline constexpr std::uint32_t kMagic = 0x414D5250u;  // "PRMA"
/// v2: +body checksum in the header, ping/pong keepalive frames, typed
/// kServerBusy connection rejects.
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kHeaderBytes = 24;

/// Hard ceiling on rows/cols in a request shape header: large enough for any
/// device the paper contemplates (wet-lab data tops out at 100 x 100), small
/// enough that rows * cols arithmetic can never overflow the size checks.
inline constexpr std::uint32_t kMaxWireDim = 4096;

/// Default cap on body_len; a listener/client may lower it. A full
/// kMaxWireDim^2 double payload does not fit by design -- the cap is a
/// transport-level budget, not the shape ceiling.
inline constexpr std::uint32_t kDefaultMaxBodyBytes = 64u << 20;  // 64 MiB

enum class FrameType : std::uint16_t {
  kRequest = 1,   ///< client -> server parametrization request
  kResponse = 2,  ///< server -> client completion (ParametrizeResult wire form)
  kError = 3,     ///< server -> client protocol-level error diagnostic
  kPing = 4,      ///< either direction: keepalive probe (header-only)
  kPong = 5,      ///< either direction: keepalive echo (header-only)
  kStatsRequest = 6,   ///< client -> server: snapshot serve::Stats (header-only)
  kStatsResponse = 7,  ///< server -> client: the serialized Stats snapshot
};

/// Typed decode diagnostics. Stable numeric values: they travel inside
/// kError frames.
enum class ProtoCode : std::uint16_t {
  kOk = 0,
  kBadMagic = 1,         ///< first 4 bytes are not "PRMA"
  kBadVersion = 2,       ///< peer speaks a different protocol version
  kBadFrameType = 3,     ///< type field names no known frame
  kBodyTooLarge = 4,     ///< declared body_len exceeds the configured cap
  kBodyShapeMismatch = 5,///< body_len disagrees with the body's own header
  kBadEnum = 6,          ///< enum field (priority/strategy/...) out of range
  kBadShape = 7,         ///< rows/cols outside [2, kMaxWireDim]
  kTruncatedBody = 8,    ///< body ended mid-field
  kBadChecksum = 9,      ///< body bytes disagree with the header checksum
  kServerBusy = 10,      ///< connection rejected: the listener is at capacity
};

const char* proto_code_name(ProtoCode code);

/// FNV-1a 32-bit over the body bytes -- the header's body_sum field. Cheap
/// enough to run on every frame, strong enough to catch the single-byte
/// corruption real links (and the chaos injector) produce. Exposed so tests
/// that hand-corrupt encoded bodies can re-patch the header to keep (or
/// break) frame integrity deliberately.
[[nodiscard]] std::uint32_t body_checksum(const std::uint8_t* data, std::size_t size);

/// Rewrites the header checksum at `frame[20]` to match the body bytes that
/// follow the header. For tests that mutate an encoded frame's body and
/// still want it to pass integrity checking.
void patch_body_checksum(std::vector<std::uint8_t>& frame);

/// One decode failure: what went wrong plus a human-readable detail.
struct ProtocolError {
  ProtoCode code = ProtoCode::kOk;
  std::string message;

  [[nodiscard]] bool ok() const { return code == ProtoCode::kOk; }
};

// ---------------------------------------------------------------------------
// Wire-level request/response records.

/// A parametrization request as it crosses the wire. Field-for-field
/// convertible with serve::ParametrizeRequest (to_request/from_request);
/// solver configuration the protocol does not carry stays at server
/// defaults.
struct WireRequest {
  std::uint64_t request_id = 0;
  std::uint8_t priority = 1;      ///< serve::Priority wire value (0/1/2)
  std::uint8_t solve_method = 0;  ///< 0 = LM, 1 = full system
  std::uint8_t strategy = 3;      ///< core::Strategy wire value (0..3)
  bool auto_mask_invalid = false;
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
  std::uint16_t form_workers = 0; ///< 0 = server default
  std::uint16_t form_chunk = 0;   ///< 0 = server default
  std::uint16_t max_iterations = 0;  ///< 0 = server default
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  Real drive_voltage = 0.0;
  std::optional<Real> anomaly_threshold;
  std::vector<Real> z;               ///< row-major rows*cols
  std::vector<Real> u;               ///< row-major rows*cols
  std::vector<std::uint8_t> mask;    ///< row-major rows*cols, or empty

  /// Builds the serve-layer request (shape, payload, knobs). The caller owns
  /// validation -- admission rejects what the transport happily carried.
  [[nodiscard]] serve::ParametrizeRequest to_request() const;

  /// Captures a serve-layer request for transport.
  static WireRequest from_request(const serve::ParametrizeRequest& request,
                                  std::uint64_t request_id);
};

/// A completion record as it crosses the wire.
struct WireResponse {
  std::uint64_t request_id = 0;
  std::uint16_t status_code = 0;  ///< serve::status_wire_code(RequestStatus)
  bool converged = false;
  std::uint16_t attempts = 0;
  std::uint32_t iterations = 0;
  std::uint32_t anomalies = 0;
  std::uint32_t rows = 0;  ///< recovered-field shape; 0 x 0 when absent
  std::uint32_t cols = 0;
  Real final_misfit = 0.0;
  Real queue_seconds = 0.0;
  Real form_seconds = 0.0;
  Real solve_seconds = 0.0;
  Real reconstruct_seconds = 0.0;
  std::string message;
  std::vector<Real> field;  ///< row-major recovered resistances (kOhm)

  /// The decoded terminal status; nullopt when the peer sent a code this
  /// build does not know.
  [[nodiscard]] std::optional<serve::RequestStatus> status() const {
    return serve::request_status_from_wire(status_code);
  }
  [[nodiscard]] bool has_field() const { return !field.empty(); }

  /// Rebuilds the recovered resistance field (requires has_field()).
  [[nodiscard]] circuit::ResistanceGrid recovered_grid() const;

  static WireResponse from_result(std::uint64_t request_id,
                                  const serve::ParametrizeResult& result);
};

/// A protocol-level error frame (the server's reply to a structurally
/// malformed request whose header was still readable).
struct WireError {
  std::uint64_t request_id = 0;  ///< offending frame's id when known, else 0
  ProtoCode code = ProtoCode::kOk;
  std::string message;
};

// ---------------------------------------------------------------------------
// Encoding (infallible: the in-memory records are valid by construction).

[[nodiscard]] std::vector<std::uint8_t> encode_request(const WireRequest& request);
[[nodiscard]] std::vector<std::uint8_t> encode_response(const WireResponse& response);
[[nodiscard]] std::vector<std::uint8_t> encode_error(const WireError& error);
/// Header-only keepalive frames; `request_id` is the echo token.
[[nodiscard]] std::vector<std::uint8_t> encode_ping(std::uint64_t request_id);
[[nodiscard]] std::vector<std::uint8_t> encode_pong(std::uint64_t request_id);
/// Stats snapshot exchange (the cluster router's aggregation probe). The
/// request is header-only; the response body carries only the merge
/// substrate of serve::Stats (raw counters and histogram buckets) -- derived
/// summaries (mean/p50/p99, mean_batch_size) are recomputed on decode, so a
/// snapshot survives the wire exactly.
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_response(std::uint64_t request_id,
                                                              const serve::Stats& stats);

// ---------------------------------------------------------------------------
// Decoding.

/// A parsed frame header (already validated: magic, version, known type,
/// body_len within the cap).
struct FrameHeader {
  FrameType type = FrameType::kRequest;
  std::uint64_t request_id = 0;
  std::uint32_t body_len = 0;
  std::uint32_t body_sum = 0;
};

/// One decoded frame of any type. `request_id` is always the header id --
/// for ping/pong (which have no body record) it is the only payload.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint64_t request_id = 0;
  std::optional<WireRequest> request;
  std::optional<WireResponse> response;
  std::optional<WireError> error;
  std::optional<serve::Stats> stats;  ///< kStatsResponse payload
};

/// Validates the 24 header bytes. Never reads past kHeaderBytes.
[[nodiscard]] ProtocolError decode_header(const std::uint8_t* data, std::size_t size,
                                          std::uint32_t max_body_bytes,
                                          FrameHeader& out);

/// Decodes one body of the given type; `data`/`size` cover exactly the body.
[[nodiscard]] ProtocolError decode_request_body(const std::uint8_t* data,
                                                std::size_t size, WireRequest& out);
[[nodiscard]] ProtocolError decode_response_body(const std::uint8_t* data,
                                                 std::size_t size, WireResponse& out);
[[nodiscard]] ProtocolError decode_error_body(const std::uint8_t* data,
                                              std::size_t size, WireError& out);
[[nodiscard]] ProtocolError decode_stats_body(const std::uint8_t* data,
                                              std::size_t size, serve::Stats& out);

/// Incremental frame reassembly over a byte stream: feed() whatever the
/// socket produced, then drain next() until it stops yielding kFrame.
///
/// The decoder validates the header as soon as 24 bytes are buffered -- a
/// hostile length prefix is rejected (kBodyTooLarge) before any allocation
/// approaches the declared size -- and holds at most one in-progress frame.
/// After the first error the decoder is poisoned: the stream has lost frame
/// sync, so the connection must be torn down (next() keeps returning kError).
class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< `frame` holds one complete decoded frame
    kNeedMore,  ///< buffered bytes do not complete a frame yet
    kError,     ///< stream is malformed; see error()
  };

  explicit FrameDecoder(std::uint32_t max_body_bytes = kDefaultMaxBodyBytes)
      : max_body_bytes_(max_body_bytes) {}

  /// Appends received bytes (bounded by what was actually read -- the
  /// decoder never reserves toward a declared length).
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const std::vector<std::uint8_t>& data) { feed(data.data(), data.size()); }

  /// Extracts the next complete frame, if any.
  [[nodiscard]] Result next(Frame& frame);

  /// The poisoning diagnostic after next() returned kError.
  [[nodiscard]] const ProtocolError& error() const { return error_; }
  /// Request id of the frame being decoded when the error hit (0 when the
  /// header itself was unreadable) -- lets the server address its kError
  /// reply.
  [[nodiscard]] std::uint64_t error_request_id() const { return error_request_id_; }

  /// Bytes currently buffered (tests: proves oversized bodies are rejected
  /// without buffering toward body_len).
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// True while a validated header is waiting for (part of) its body, or a
  /// partial header is buffered -- i.e. the peer owes us bytes to finish a
  /// frame. The listener's slowloris deadline keys off this: a peer that
  /// holds a frame open past the read deadline is stalling on purpose.
  [[nodiscard]] bool mid_frame() const {
    return pending_.has_value() || buffered_bytes() > 0;
  }

 private:
  std::uint32_t max_body_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  std::optional<FrameHeader> pending_;  ///< validated header awaiting its body
  ProtocolError error_;
  std::uint64_t error_request_id_ = 0;
};

}  // namespace parma::net
